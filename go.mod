module datainfra

go 1.22
