// Command voldemort-server runs one Voldemort storage node serving the
// binary socket protocol and the admin service.
//
// Usage:
//
//	voldemort-server -node 0 -cluster cluster.json -stores stores.json -data /var/voldemort
//	voldemort-server -demo                  # 1-node demo cluster with a "demo" store
//
// cluster.json is the topology (see internal/cluster); stores.json is a JSON
// array of store definitions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"datainfra/internal/cluster"
	"datainfra/internal/metrics"
	"datainfra/internal/trace"
	"datainfra/internal/voldemort"
)

func main() {
	var (
		nodeID      = flag.Int("node", 0, "this node's id in the cluster file")
		clusterFile = flag.String("cluster", "", "cluster topology JSON")
		storesFile  = flag.String("stores", "", "store definitions JSON")
		dataDir     = flag.String("data", "voldemort-data", "data directory")
		listen      = flag.String("listen", "", "listen address (default: the node's address from the cluster file)")
		metricsAddr = flag.String("metrics", "127.0.0.1:6676", "observability HTTP address (/metrics, /debug/pprof); empty disables")
		syncEvery   = flag.Int("sync-every", 0, "bitcask fsync batching: 0 group-commit-syncs every write (acked => on disk), n>0 flushes every n writes unsynced")
		cacheBytes  = flag.Int64("cache-bytes", 0, "hot-set read cache budget per store in bytes; 0 disables caching")
		demo        = flag.Bool("demo", false, "run a single-node demo cluster with a memory store named 'demo'")
	)
	flag.Parse()
	if os.Getenv("DATAINFRA_TRACE") != "" {
		trace.Enable(os.Stderr)
	}

	var clus *cluster.Cluster
	var defs []*cluster.StoreDef
	switch {
	case *demo:
		clus = cluster.Uniform("demo", 1, 8, 6666)
		defs = []*cluster.StoreDef{(&cluster.StoreDef{
			Name: "demo", Replication: 1, RequiredReads: 1, RequiredWrites: 1,
		}).WithDefaults()}
	case *clusterFile != "":
		data, err := os.ReadFile(*clusterFile)
		if err != nil {
			log.Fatalf("reading cluster file: %v", err)
		}
		clus = &cluster.Cluster{}
		if err := json.Unmarshal(data, clus); err != nil {
			log.Fatalf("parsing cluster file: %v", err)
		}
		if *storesFile != "" {
			data, err := os.ReadFile(*storesFile)
			if err != nil {
				log.Fatalf("reading stores file: %v", err)
			}
			defs, err = cluster.ParseStoreDefs(data)
			if err != nil {
				log.Fatalf("parsing stores file: %v", err)
			}
		}
	default:
		log.Fatal("need -cluster (and optionally -stores), or -demo")
	}

	srv, err := voldemort.NewServer(voldemort.ServerConfig{
		NodeID: *nodeID, Cluster: clus, DataDir: *dataDir, SyncEvery: *syncEvery,
		CacheBytes: *cacheBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, def := range defs {
		if err := srv.AddStore(def); err != nil {
			log.Fatalf("adding store %s: %v", def.Name, err)
		}
		log.Printf("serving store %s", def)
	}
	addr := *listen
	if addr == "" {
		addr = clus.NodeByID(*nodeID).Addr()
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voldemort node %d listening on %s (stores: %v)\n", *nodeID, bound, srv.StoreNames())
	if *metricsAddr != "" {
		obsAddr, stopObs, err := metrics.Serve(*metricsAddr, metrics.Default)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		defer stopObs()
		fmt.Printf("observability on http://%s/metrics (pprof at /debug/pprof/)\n", obsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
