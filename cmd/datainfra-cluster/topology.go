// Topology management: launching the site's servers as real OS processes,
// tracking them through externally-induced crashes and restarts, and turning
// health-probe transitions into fault windows for the SLO report.
//
// The driver deliberately holds the servers at arm's length. Every process is
// started from a binary with flags, observed only through its debug mux and
// its data-plane port, and killed with signals. Scenario scripts get the same
// interface through state files:
//
//	<dir>/state/<name>.pid   pid of the running process (rewritten on restart)
//	<dir>/state/<name>.cmd   the full command line, one space-joined line
//	<dir>/state/ready        created once the whole topology passed readiness
//
// so `kill -9 $(cat state/voldemort-1.pid)` followed by re-running the .cmd
// line is a faithful crash-restart — the same operations an operator would
// perform, with no driver cooperation.
package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"datainfra/internal/metrics"
)

// proc is one managed server process.
type proc struct {
	name    string   // state-file stem, e.g. "voldemort-1"
	bin     string   // absolute binary path
	args    []string // flags; must not contain spaces (state-file protocol)
	service string   // data-plane host:port (informational)
	metrics string   // debug-mux host:port — health and scrape target
}

// faultWindow is one observed unavailability interval of a process, from the
// first failed health probe to the first succeeding one.
type faultWindow struct {
	Target string    `json:"target"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// topology owns the process set and the health monitor.
type topology struct {
	dir    string // workdir: state/, logs/, data/ live under it
	procs  []*proc
	scrape *metrics.ScrapeClient

	mu      sync.Mutex
	windows []faultWindow
	open    map[string]int // target name -> index of open window

	stopMon chan struct{}
	monDone sync.WaitGroup
}

func newTopology(dir string) (*topology, error) {
	for _, sub := range []string{"state", "logs", "data"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &topology{
		dir:     dir,
		scrape:  metrics.NewScrapeClient(2 * time.Second),
		open:    map[string]int{},
		stopMon: make(chan struct{}),
	}, nil
}

func (t *topology) stateFile(name, ext string) string {
	return filepath.Join(t.dir, "state", name+"."+ext)
}

// launch starts a process, routes its output to logs/<name>.log, and writes
// the pid and cmd state files. The driver never Waits on the child beyond
// reaping — external kill -9 is part of normal operation.
func (t *topology) launch(p *proc) error {
	for _, a := range p.args {
		if strings.ContainsAny(a, " \t\n") {
			return fmt.Errorf("%s: argument %q contains whitespace; the state-file restart protocol cannot represent it", p.name, a)
		}
	}
	logf, err := os.OpenFile(filepath.Join(t.dir, "logs", p.name+".log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("starting %s: %w", p.name, err)
	}
	logf.Close()  // the child holds its own fd now
	go cmd.Wait() // reap if it dies while still our child
	if err := os.WriteFile(t.stateFile(p.name, "pid"),
		[]byte(strconv.Itoa(cmd.Process.Pid)+"\n"), 0o644); err != nil {
		return err
	}
	line := p.bin + " " + strings.Join(p.args, " ") + "\n"
	if err := os.WriteFile(t.stateFile(p.name, "cmd"), []byte(line), 0o644); err != nil {
		return err
	}
	t.procs = append(t.procs, p)
	return nil
}

// waitAllHealthy blocks until every process's debug mux answers /healthz.
func (t *topology) waitAllHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, p := range t.procs {
		left := time.Until(deadline)
		if left <= 0 {
			left = time.Second
		}
		if err := t.scrape.WaitHealthy(p.metrics, left); err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
	}
	return nil
}

// markReady drops the state/ready marker scenario scripts synchronise on.
func (t *topology) markReady() error {
	return os.WriteFile(filepath.Join(t.dir, "state", "ready"), []byte("ok\n"), 0o644)
}

// startMonitor begins probing every process's /healthz every interval,
// recording unhealthy intervals as fault windows.
func (t *topology) startMonitor(interval time.Duration) {
	for _, p := range t.procs {
		p := p
		t.monDone.Add(1)
		go func() {
			defer t.monDone.Done()
			healthy := true
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-t.stopMon:
					return
				case <-tick.C:
				}
				now := time.Now()
				up := t.scrape.Healthy(p.metrics)
				if up == healthy {
					continue
				}
				healthy = up
				t.mu.Lock()
				if !up {
					t.open[p.name] = len(t.windows)
					t.windows = append(t.windows, faultWindow{Target: p.name, Start: now})
				} else if i, ok := t.open[p.name]; ok {
					t.windows[i].End = now
					delete(t.open, p.name)
				}
				t.mu.Unlock()
			}
		}()
	}
}

// stopMonitor halts probing and closes any still-open windows at now.
func (t *topology) stopMonitor() []faultWindow {
	close(t.stopMon)
	t.monDone.Wait()
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	for name, i := range t.open {
		t.windows[i].End = now
		delete(t.open, name)
	}
	return append([]faultWindow(nil), t.windows...)
}

// teardown kills every process by its *current* pid file — a process the
// scenario script crashed and restarted has a different pid than the one the
// driver launched, and the pid file is the source of truth.
func (t *topology) teardown() {
	for _, p := range t.procs {
		data, err := os.ReadFile(t.stateFile(p.name, "pid"))
		if err != nil {
			continue
		}
		pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
		if err != nil || pid <= 0 {
			continue
		}
		_ = syscall.Kill(pid, syscall.SIGKILL)
	}
}

// freePort reserves an ephemeral TCP port by binding :0 and releasing it.
// The tiny race against another process is accepted: server startup fails
// loudly, and the scenario retries by rerunning.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port, nil
}

// freePortRun finds a base port with n consecutive free ports — the
// replicated kafka-broker process listens on -listen, -listen+1, ... for its
// in-process replica set.
func freePortRun(n int) (int, error) {
	for attempt := 0; attempt < 64; attempt++ {
		base, err := freePort()
		if err != nil {
			return 0, err
		}
		ok := true
		var held []net.Listener
		for i := 0; i < n; i++ {
			l, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", base+i))
			if err != nil {
				ok = false
				break
			}
			held = append(held, l)
		}
		for _, l := range held {
			l.Close()
		}
		if ok {
			return base, nil
		}
	}
	return 0, fmt.Errorf("no run of %d consecutive free ports found", n)
}
