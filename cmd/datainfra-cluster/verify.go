// Post-run convergence verification, entirely from the outside: client
// protocols and /metrics only. The contract each check enforces:
//
//   - Voldemort: every acked put is readable at R=W=N quorum with a sequence
//     number at least as high as the last acked one (monotone, because each
//     key has a single sequential writer). Hinted handoff and read repair are
//     given a bounded window to reconverge after the restart.
//   - Kafka: for every partition, the log end reaches past the highest acked
//     offset, and a full drain satisfies the formal replicated-log checker —
//     every acked message present at its exact offset, consumption gapless.
//   - Espresso: every acked document PUT reads back with a monotone sequence.
//   - Databus: the relay's last SCN covers the highest acked commit and a
//     fresh subscriber can stream to it.
package main

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"datainfra/internal/consistency"
	"datainfra/internal/espresso"
	"datainfra/internal/kafka"
	"datainfra/internal/voldemort"
)

// verifyResult is one subsystem's verdict for the SLO report.
type verifyResult struct {
	Subsystem string `json:"subsystem"`
	Checked   int    `json:"checked"` // units examined (keys, messages, docs, SCNs)
	Lost      int    `json:"lost"`    // acked writes that never converged
	Pass      bool   `json:"pass"`
	Detail    string `json:"detail,omitempty"`
}

// verifyVoldemort reads every acked key back at full quorum, retrying until
// the convergence deadline — the restarted node needs its hinted writes
// pushed back before R=N reads return the merged view.
func verifyVoldemort(factory *voldemort.ClientFactory, acked ackedSeqs, deadline time.Duration) verifyResult {
	res := verifyResult{Subsystem: "voldemort", Checked: len(acked)}
	cl, err := factory.Client(verifyStoreDef(), 9999)
	if err != nil {
		res.Detail = fmt.Sprintf("building verifier client: %v", err)
		res.Lost = len(acked)
		return res
	}
	pending := make(map[string]int64, len(acked))
	for k, v := range acked {
		pending[k] = v
	}
	until := time.Now().Add(deadline)
	for len(pending) > 0 && time.Now().Before(until) {
		for k, want := range pending {
			val, ok, err := cl.Get([]byte(k))
			if err != nil || !ok {
				continue
			}
			seq, valid := parseSeq(string(val))
			if valid && seq >= want {
				delete(pending, k)
			}
		}
		if len(pending) > 0 {
			time.Sleep(500 * time.Millisecond)
		}
	}
	res.Lost = len(pending)
	res.Pass = res.Lost == 0
	if !res.Pass {
		for k, want := range pending {
			res.Detail = fmt.Sprintf("first unconverged key %q (want seq >= %d); %d total", k, want, res.Lost)
			break
		}
	}
	return res
}

// verifyKafka drains every partition and runs the formal replicated-log
// checker against the acked ledger.
func verifyKafka(client *kafka.StaticClient, acked map[int][]consistency.ProducedMsg, partitions int, deadline time.Duration) verifyResult {
	res := verifyResult{Subsystem: "kafka"}
	until := time.Now().Add(deadline)
	for p := 0; p < partitions; p++ {
		ackedMsgs := acked[p]
		res.Checked += len(ackedMsgs)
		var maxAcked int64 = -1
		for _, m := range ackedMsgs {
			if m.Offset > maxAcked {
				maxAcked = m.Offset
			}
		}
		// The log end must cover every acked offset: the consumer-visible
		// high watermark reaches the producer's acks after failover.
		var earliest, latest int64
		for {
			var err error
			earliest, latest, err = client.Offsets(activityTopic, p)
			if err == nil && latest > maxAcked {
				break
			}
			if time.Now().After(until) {
				res.Lost += len(ackedMsgs)
				res.Detail = fmt.Sprintf("partition %d: log end %d never reached acked offset %d (err=%v)", p, latest, maxAcked, err)
				res.Pass = false
				return res
			}
			time.Sleep(200 * time.Millisecond)
		}
		consumed, err := drainPartition(client, p, earliest, latest)
		if err != nil {
			res.Lost += len(ackedMsgs)
			res.Detail = fmt.Sprintf("partition %d: drain: %v", p, err)
			res.Pass = false
			return res
		}
		check := consistency.ReplicatedPartition{
			Topic: activityTopic, Partition: p,
			Start: earliest, End: latest,
			Acked: ackedMsgs, Consumed: consumed,
		}
		if err := consistency.CheckKafkaReplicated(check); err != nil {
			res.Lost++
			res.Detail = fmt.Sprintf("partition %d: %v", p, err)
		}
	}
	res.Pass = res.Lost == 0
	return res
}

// drainPartition fetches [from, to) sequentially and decodes into the
// consistency checker's consumed-message form.
func drainPartition(client *kafka.StaticClient, partition int, from, to int64) ([]consistency.ConsumedMsg, error) {
	var out []consistency.ConsumedMsg
	offset := from
	for offset < to {
		chunk, err := client.Fetch(activityTopic, partition, offset, 1<<20)
		if err != nil {
			return nil, err
		}
		msgs, err := kafka.Decode(chunk, offset)
		if err != nil {
			return nil, err
		}
		if len(msgs) == 0 {
			return nil, fmt.Errorf("empty fetch at offset %d (log end %d)", offset, to)
		}
		for _, m := range msgs {
			out = append(out, consistency.ConsumedMsg{NextOffset: m.NextOffset, Payload: string(m.Payload)})
			offset = m.NextOffset
		}
	}
	return out, nil
}

// verifyEspresso reads every acked document back through the router.
func verifyEspresso(base string, acked ackedSeqs, deadline time.Duration) verifyResult {
	res := verifyResult{Subsystem: "espresso", Checked: len(acked)}
	cl := espresso.NewHTTPClient("http://"+base, nil)
	pending := make(map[string]int64, len(acked))
	for k, v := range acked {
		pending[k] = v
	}
	until := time.Now().Add(deadline)
	for len(pending) > 0 && time.Now().Before(until) {
		for k, want := range pending {
			artist, album, ok := strings.Cut(k, "/")
			if !ok {
				delete(pending, k)
				continue
			}
			doc, err := cl.Get("Music", "Album", artist, album)
			if err != nil {
				continue
			}
			title, _ := doc.Doc["title"].(string)
			seq, valid := parseSeq(title)
			if valid && seq >= want {
				delete(pending, k)
			}
		}
		if len(pending) > 0 {
			time.Sleep(200 * time.Millisecond)
		}
	}
	res.Lost = len(pending)
	res.Pass = res.Lost == 0
	if !res.Pass {
		for k, want := range pending {
			res.Detail = fmt.Sprintf("first unconverged doc %q (want seq >= %d); %d total", k, want, res.Lost)
			break
		}
	}
	return res
}

// verifyDatabus confirms the relay covers the highest acked commit SCN and a
// fresh subscriber can stream up to it.
func verifyDatabus(base string, maxCommit int64, deadline time.Duration) verifyResult {
	res := verifyResult{Subsystem: "databus", Checked: int(maxCommit)}
	if maxCommit == 0 {
		res.Pass = true
		return res
	}
	hc := &http.Client{Timeout: 2 * time.Second}
	var since int64
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		events, err := fetchStream(hc, base, since, 1000)
		if err != nil {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		for _, e := range events {
			if e.SCN > since {
				since = e.SCN
			}
		}
		if since >= maxCommit {
			res.Pass = true
			return res
		}
		if len(events) == 0 {
			time.Sleep(100 * time.Millisecond)
		}
	}
	res.Lost = int(maxCommit - since)
	res.Detail = fmt.Sprintf("subscriber stalled at SCN %d, acked commits reach %d", since, maxCommit)
	return res
}
