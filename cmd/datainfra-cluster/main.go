// Command datainfra-cluster launches the paper's full serving site as real
// OS processes — N Voldemort nodes, the Espresso router+storage process, a
// Databus relay, and an ISR-replicated Kafka broker set — waits for health,
// drives a closed-loop social workload against all four, and emits an SLO
// report as JSON: client-observed p99s, error budgets, burn rates, fault
// windows, and black-box convergence verification of every acknowledged
// write.
//
// It is the engine under scenarios/: the scripts start this driver, crash
// processes out from under it with kill -9 using the state files it
// publishes (see topology.go), restart them the same way, and then judge the
// run purely by the driver's exit code and report.
//
// Exit codes: 0 — SLO gate and verification passed; 1 — gate failed (report
// still written); 2 — the run could not be set up or completed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/espresso"
	"datainfra/internal/kafka"
	"datainfra/internal/metrics"
	"datainfra/internal/voldemort"
)

func main() {
	os.Exit(run())
}

// config is the parsed command line.
type config struct {
	dir         string
	binDir      string
	duration    time.Duration
	workers     int
	members     int
	voldNodes   int
	kafkaReps   int
	kafkaParts  int
	dbusFanout  int
	cacheBytes  int64
	report      string
	strict      bool
	seed        int64
	converge    time.Duration
	keepWorkdir bool
}

func parseFlags() *config {
	c := &config{}
	flag.StringVar(&c.dir, "dir", "", "workdir for state/, logs/, data/ (default: a fresh temp dir)")
	flag.StringVar(&c.binDir, "bin", "bin", "directory holding the server binaries (falls back to $PATH)")
	flag.DurationVar(&c.duration, "duration", 30*time.Second, "workload duration")
	flag.IntVar(&c.workers, "workers", 3, "closed-loop workers per subsystem")
	flag.IntVar(&c.members, "members", 2000, "member-id domain for the social workload (millions are fine)")
	flag.IntVar(&c.voldNodes, "voldemort-nodes", 3, "voldemort cluster size")
	flag.IntVar(&c.kafkaReps, "kafka-replicas", 3, "kafka replication factor (one process, in-process replica set)")
	flag.IntVar(&c.kafkaParts, "kafka-partitions", 2, "kafka partitions for the activity topic")
	flag.IntVar(&c.dbusFanout, "databus-consumers", 4, "concurrent databus subscribers (mixed JSON and binary zero-copy transports)")
	flag.Int64Var(&c.cacheBytes, "cache-bytes", 0, "hot-set read cache budget forwarded to the voldemort and espresso servers; 0 disables")
	flag.StringVar(&c.report, "report", "", "SLO report path (default: <dir>/slo.json)")
	flag.BoolVar(&c.strict, "slo-strict", false, "enforce latency and steady-state error budgets (for fault-free runs)")
	flag.Int64Var(&c.seed, "seed", 1, "workload random seed")
	flag.DurationVar(&c.converge, "converge-timeout", 60*time.Second, "post-run convergence deadline per subsystem")
	flag.BoolVar(&c.keepWorkdir, "keep", false, "keep the workdir on success (always kept on failure)")
	flag.Parse()
	return c
}

// workloadStoreDef is the availability-leaning client view of the follow
// store: N=2 with R=W=1 keeps serving through a single-node crash, hinted
// handoff repairs the dark replica afterwards.
func workloadStoreDef() *cluster.StoreDef {
	return (&cluster.StoreDef{
		Name: followStore, Engine: cluster.EngineBitcask,
		Replication: 2, RequiredReads: 1, RequiredWrites: 1,
		HintedHandoff: true, ReadRepair: true,
	}).WithDefaults()
}

// verifyStoreDef is the consistency-leaning view of the same store: R=W=N
// reads consult every replica, so a verified value survived the crash on
// all of them (or was repaired back).
func verifyStoreDef() *cluster.StoreDef {
	d := workloadStoreDef()
	d.RequiredReads = 2
	d.RequiredWrites = 2
	d.PreferredReads = 2
	d.PreferredWrites = 2
	return d
}

const followStore = "follow"

func run() int {
	cfg := parseFlags()
	log.SetPrefix("datainfra-cluster: ")
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	ownDir := cfg.dir == ""
	if ownDir {
		d, err := os.MkdirTemp("", "datainfra-cluster-")
		if err != nil {
			log.Printf("workdir: %v", err)
			return 2
		}
		cfg.dir = d
	}
	if cfg.report == "" {
		cfg.report = filepath.Join(cfg.dir, "slo.json")
	}

	topo, err := newTopology(cfg.dir)
	if err != nil {
		log.Printf("topology: %v", err)
		return 2
	}
	defer topo.teardown()

	site, err := buildSite(cfg, topo)
	if err != nil {
		log.Printf("site: %v", err)
		return 2
	}

	log.Printf("waiting for %d processes to report healthy", len(topo.procs))
	if err := topo.waitAllHealthy(30 * time.Second); err != nil {
		log.Printf("health: %v", err)
		return 2
	}
	if err := site.waitServing(60 * time.Second); err != nil {
		log.Printf("readiness: %v", err)
		return 2
	}
	if err := topo.markReady(); err != nil {
		log.Printf("ready marker: %v", err)
		return 2
	}
	log.Printf("topology ready (workdir %s); running workload for %v", cfg.dir, cfg.duration)

	started := time.Now()
	topo.startMonitor(250 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	var wg sync.WaitGroup
	site.vold.run(ctx, &wg)
	site.esp.run(ctx, &wg)
	site.kaf.run(ctx, &wg)
	site.dbus.run(ctx, &wg)
	wg.Wait()
	cancel()
	windows := topo.stopMonitor()
	log.Printf("workload done: %d fault windows observed", len(windows))

	// Verification needs the whole topology back: a scenario script may
	// restart a victim close to the end of the workload.
	if err := topo.waitAllHealthy(cfg.converge); err != nil {
		log.Printf("post-run health: %v", err)
		// Keep going: the report should still show what the run saw. The
		// verification phase will fail and fail the gate.
	}

	report := &sloReport{
		Started:   started,
		Duration:  cfg.duration.String(),
		Topology:  fmt.Sprintf("voldemort=%d kafka-replicas=%d kafka-partitions=%d espresso=1 databus=1 databus-consumers=%d members=%d cache-bytes=%d", cfg.voldNodes, cfg.kafkaReps, cfg.kafkaParts, cfg.dbusFanout, cfg.members, cfg.cacheBytes),
		SLOStrict: cfg.strict,
		Subsystems: map[string]*subsystemReport{
			"voldemort": buildSubsystemReport(site.vold.stats, windows, cfg.strict),
			"espresso":  buildSubsystemReport(site.esp.stats, windows, cfg.strict),
			"kafka":     buildSubsystemReport(site.kaf.stats, windows, cfg.strict),
			"databus":   buildSubsystemReport(site.dbus.stats, windows, cfg.strict),
		},
		FaultWindows: windows,
	}

	maxCommit, _ := site.dbus.progress()
	fanout := &databusFanoutReport{
		Consumers:          cfg.dbusFanout,
		CommittedSCN:       maxCommit,
		SlowestConsumerSCN: site.dbus.slowestConsumed(),
	}
	fanout.ConsumerLagSCN = max(maxCommit-fanout.SlowestConsumerSCN, 0)
	if st, err := fetchRelayStats(nil, site.databusAddr); err == nil {
		fanout.RelayServedEvents = st.EventsServed
		fanout.RelayServedBytes = st.BytesServed
		fanout.RelayChunks = st.BufferedChunks
	}
	report.Databus = fanout

	log.Printf("verifying convergence (deadline %v per subsystem)", cfg.converge)
	report.Verification = []verifyResult{
		verifyVoldemort(site.verifyFactory, site.vold.ackedWrites(), cfg.converge),
		verifyKafka(site.kafkaClient, site.kaf.ackedProduces(), cfg.kafkaParts, cfg.converge),
		verifyEspresso(site.espressoAddr, site.esp.ackedWrites(), cfg.converge),
		verifyDatabus(site.databusAddr, maxCommit, cfg.converge),
	}
	report.Servers = scrapeServers(topo)
	finalizeReport(report)

	if err := writeReport(cfg.report, report); err != nil {
		log.Printf("writing report: %v", err)
		return 2
	}
	site.close()
	for _, v := range report.Verification {
		log.Printf("verify %-10s checked=%-6d lost=%-4d pass=%v %s", v.Subsystem, v.Checked, v.Lost, v.Pass, v.Detail)
	}
	if !report.Pass {
		log.Printf("SLO gate FAILED: %v (report: %s, logs: %s)", report.Faults, cfg.report, filepath.Join(cfg.dir, "logs"))
		return 1
	}
	log.Printf("SLO gate passed (report: %s)", cfg.report)
	if ownDir && !cfg.keepWorkdir && filepath.Dir(cfg.report) != cfg.dir {
		// Only self-created temp dirs are cleaned, and only when the report
		// lives elsewhere; a -dir workdir belongs to the caller (the
		// scenario scripts read its logs and state after the run).
		_ = os.RemoveAll(cfg.dir)
	}
	return 0
}

// site bundles the launched topology's client-side handles.
type site struct {
	clus          *cluster.Cluster
	verifyFactory *voldemort.ClientFactory
	kafkaClient   *kafka.StaticClient
	espressoAddr  string
	databusAddr   string
	kafkaAddrs    []string
	voldAddrs     []string

	vold *voldemortWorkload
	esp  *espressoWorkload
	kaf  *kafkaWorkload
	dbus *databusWorkload
}

func (s *site) close() {
	s.vold.factory.Close()
	s.verifyFactory.Close()
	s.kafkaClient.Close()
}

// resolveBin finds a server binary: in -bin, else on $PATH.
func resolveBin(binDir, name string) (string, error) {
	p := filepath.Join(binDir, name)
	if _, err := os.Stat(p); err == nil {
		abs, err := filepath.Abs(p)
		if err != nil {
			return "", err
		}
		return abs, nil
	}
	return exec.LookPath(name)
}

// buildSite allocates ports, writes topology files, and launches every
// process.
func buildSite(cfg *config, topo *topology) (*site, error) {
	s := &site{}

	// Voldemort: one process per node, shared cluster.json/stores.json.
	voldBin, err := resolveBin(cfg.binDir, "voldemort-server")
	if err != nil {
		return nil, err
	}
	clus := cluster.Uniform("scenario", cfg.voldNodes, 12, 0)
	for _, n := range clus.Nodes {
		port, err := freePort()
		if err != nil {
			return nil, err
		}
		n.Host, n.Port = "127.0.0.1", port
		s.voldAddrs = append(s.voldAddrs, n.Addr())
	}
	s.clus = clus
	clusterFile := filepath.Join(cfg.dir, "cluster.json")
	if err := writeJSON(clusterFile, clus); err != nil {
		return nil, err
	}
	storesFile := filepath.Join(cfg.dir, "stores.json")
	if err := writeJSON(storesFile, []*cluster.StoreDef{workloadStoreDef()}); err != nil {
		return nil, err
	}
	for _, n := range clus.Nodes {
		mport, err := freePort()
		if err != nil {
			return nil, err
		}
		name := "voldemort-" + strconv.Itoa(n.ID)
		err = topo.launch(&proc{
			name: name, bin: voldBin,
			args: []string{
				"-node", strconv.Itoa(n.ID),
				"-cluster", clusterFile,
				"-stores", storesFile,
				"-data", filepath.Join(cfg.dir, "data", name),
				"-listen", n.Addr(),
				"-metrics", "127.0.0.1:" + strconv.Itoa(mport),
				"-sync-every", "0",
				"-cache-bytes", strconv.FormatInt(cfg.cacheBytes, 10),
			},
			service: n.Addr(),
			metrics: "127.0.0.1:" + strconv.Itoa(mport),
		})
		if err != nil {
			return nil, err
		}
	}

	// Kafka: one process hosting the whole in-process replica set; broker i
	// listens on base+i, so the base needs a consecutive free run.
	kafkaBin, err := resolveBin(cfg.binDir, "kafka-broker")
	if err != nil {
		return nil, err
	}
	kbase, err := freePortRun(cfg.kafkaReps)
	if err != nil {
		return nil, err
	}
	kmetrics, err := freePort()
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.kafkaReps; i++ {
		s.kafkaAddrs = append(s.kafkaAddrs, "127.0.0.1:"+strconv.Itoa(kbase+i))
	}
	minISR := 2
	if cfg.kafkaReps < 2 {
		minISR = 1
	}
	err = topo.launch(&proc{
		name: "kafka", bin: kafkaBin,
		args: []string{
			"-data", filepath.Join(cfg.dir, "data", "kafka"),
			"-listen", s.kafkaAddrs[0],
			"-metrics", "127.0.0.1:" + strconv.Itoa(kmetrics),
			"-partitions", strconv.Itoa(cfg.kafkaParts),
			"-replicas", strconv.Itoa(cfg.kafkaReps),
			"-min-isr", strconv.Itoa(minISR),
			"-topics", activityTopic,
			"-flush-messages", "64",
			"-flush-interval", "5ms",
		},
		service: s.kafkaAddrs[0],
		metrics: "127.0.0.1:" + strconv.Itoa(kmetrics),
	})
	if err != nil {
		return nil, err
	}

	// Espresso: router + storage in one process, in-memory store.
	espBin, err := resolveBin(cfg.binDir, "espresso-server")
	if err != nil {
		return nil, err
	}
	eport, err := freePort()
	if err != nil {
		return nil, err
	}
	emetrics, err := freePort()
	if err != nil {
		return nil, err
	}
	s.espressoAddr = "127.0.0.1:" + strconv.Itoa(eport)
	err = topo.launch(&proc{
		name: "espresso", bin: espBin,
		args: []string{
			"-listen", s.espressoAddr,
			"-metrics", "127.0.0.1:" + strconv.Itoa(emetrics),
			"-cache-bytes", strconv.FormatInt(cfg.cacheBytes, 10),
		},
		service: s.espressoAddr,
		metrics: "127.0.0.1:" + strconv.Itoa(emetrics),
	})
	if err != nil {
		return nil, err
	}

	// Databus relay.
	dbusBin, err := resolveBin(cfg.binDir, "databus-relay")
	if err != nil {
		return nil, err
	}
	dport, err := freePort()
	if err != nil {
		return nil, err
	}
	dmetrics, err := freePort()
	if err != nil {
		return nil, err
	}
	s.databusAddr = "127.0.0.1:" + strconv.Itoa(dport)
	err = topo.launch(&proc{
		name: "databus", bin: dbusBin,
		args: []string{
			"-listen", s.databusAddr,
			"-metrics", "127.0.0.1:" + strconv.Itoa(dmetrics),
		},
		service: s.databusAddr,
		metrics: "127.0.0.1:" + strconv.Itoa(dmetrics),
	})
	if err != nil {
		return nil, err
	}

	// Client-side handles and workload drivers.
	workloadFactory := voldemort.NewClientFactory(clus, 2*time.Second)
	s.verifyFactory = voldemort.NewClientFactory(clus, 2*time.Second)
	s.kafkaClient = kafka.NewStaticClient(s.kafkaAddrs, 2*time.Second)
	s.vold = &voldemortWorkload{
		factory: workloadFactory, stats: newSubsystemStats("voldemort"),
		workers: cfg.workers, members: cfg.members, seed: cfg.seed,
	}
	s.esp = &espressoWorkload{
		base: s.espressoAddr, stats: newSubsystemStats("espresso"),
		workers: cfg.workers, seed: cfg.seed,
	}
	s.kaf = &kafkaWorkload{
		client: s.kafkaClient, stats: newSubsystemStats("kafka"),
		workers: cfg.workers, partitions: cfg.kafkaParts,
	}
	s.dbus = &databusWorkload{
		base: s.databusAddr, stats: newSubsystemStats("databus"),
		members: cfg.members, seed: cfg.seed, consumers: cfg.dbusFanout,
	}
	return s, nil
}

// waitServing probes each subsystem's data plane: /healthz only proves the
// debug mux is up (kafka mounts it before leader election finishes), so
// readiness means an actual client operation succeeds.
func (s *site) waitServing(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	// Voldemort: the socket protocol answers ping on every node.
	for i, addr := range s.voldAddrs {
		st := voldemort.DialStore(followStore, addr, time.Second)
		if err := pollUntil(deadline, func() error { return st.Ping() }); err != nil {
			return fmt.Errorf("voldemort node %d (%s): %w", i, addr, err)
		}
	}

	// Kafka: the topic resolves and every partition has an electable leader.
	if err := pollUntil(deadline, func() error {
		n, err := s.kafkaClient.Partitions(activityTopic)
		if err != nil {
			return err
		}
		for p := 0; p < n; p++ {
			if _, _, err := s.kafkaClient.Offsets(activityTopic, p); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("kafka: %w", err)
	}

	// Espresso: the router answers a document read (a 404 is an answer).
	esp := espresso.NewHTTPClient("http://"+s.espressoAddr, nil)
	if err := pollUntil(deadline, func() error {
		_, err := esp.Get("Music", "Album", "readiness", "probe")
		if errors.Is(err, espresso.ErrNoSuchDocument) {
			return nil
		}
		return err
	}); err != nil {
		return fmt.Errorf("espresso: %w", err)
	}

	// Databus: /stats answers.
	hc := &http.Client{Timeout: time.Second}
	if err := pollUntil(deadline, func() error {
		resp, err := hc.Get("http://" + s.databusAddr + "/stats")
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("stats: status %d", resp.StatusCode)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("databus: %w", err)
	}
	return nil
}

// pollUntil retries fn every 200ms until it succeeds or the deadline passes.
func pollUntil(deadline time.Time, fn func() error) error {
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// scrapeServers takes the final /metrics.json snapshot of every process for
// the report's server-side section.
func scrapeServers(topo *topology) map[string]serverMetricsReport {
	out := map[string]serverMetricsReport{}
	for _, p := range topo.procs {
		samples, err := topo.scrape.Scrape(p.metrics)
		if err != nil {
			continue
		}
		r := serverMetricsReport{Counters: map[string]int64{}, P99Ms: map[string]float64{}}
		for name, sm := range samples {
			switch {
			case sm.Value != nil:
				r.Counters[name] = *sm.Value
			case len(sm.Values) > 0:
				r.Counters[name] = metrics.LabelCount(samples, name)
			case sm.Histogram != nil:
				r.P99Ms[name] = float64(sm.Histogram.P99Ns) / float64(time.Millisecond)
			}
		}
		out[p.name] = r
	}
	return out
}

// writeJSON marshals v to path, pretty-printed.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
