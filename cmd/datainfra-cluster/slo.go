// The SLO report: the run's client-observed service levels, error budgets in
// the SRE sense (allowed error fraction over the run, burn rate as the ratio
// of actual to allowed), and the attribution of errors to the fault windows
// the health monitor observed.
//
// Attribution is what makes a kill -9 scenario meaningful: a crash is
// *supposed* to cost availability while the process is down, so errors inside
// a fault window (padded by a grace interval for detection lag and recovery
// tails) spend a separate budget from errors during steady state. The gate
// demands near-perfect availability outside fault windows and bounded burn
// inside them.
package main

import (
	"encoding/json"
	"os"
	"time"
)

// Grace padding around an observed fault window when classifying errors:
// the probe notices a crash up to one interval late (pre), and clients keep
// failing briefly after /healthz returns — leader re-election, socket-pool
// redial — so the window extends past recovery (post).
const (
	faultGracePre  = 2 * time.Second
	faultGracePost = 10 * time.Second
)

// sloBudget is one subsystem's SLO targets.
type sloBudget struct {
	P99         time.Duration // latency budget (steady-state; informational under faults)
	ErrorBudget float64       // allowed error fraction outside fault windows
	FaultBudget float64       // allowed error fraction counting everything, fault windows included
}

// budgets returns the per-subsystem targets. Outside fault windows the stack
// must be essentially clean; with a crash in the run, half the operations
// failing overall would still mean something is stuck after restart.
func budgets() map[string]sloBudget {
	return map[string]sloBudget{
		"voldemort": {P99: 150 * time.Millisecond, ErrorBudget: 0.01, FaultBudget: 0.5},
		"espresso":  {P99: 250 * time.Millisecond, ErrorBudget: 0.01, FaultBudget: 0.5},
		"kafka":     {P99: 500 * time.Millisecond, ErrorBudget: 0.01, FaultBudget: 0.5},
		"databus":   {P99: 250 * time.Millisecond, ErrorBudget: 0.01, FaultBudget: 0.5},
	}
}

// errorBudgetReport is the error-budget arithmetic for one subsystem.
type errorBudgetReport struct {
	AllowedFraction float64 `json:"allowedFraction"` // budget outside fault windows
	ActualFraction  float64 `json:"actualFraction"`  // errors/ops, all included
	BurnRate        float64 `json:"burnRate"`        // out-of-window fraction / allowed
}

// subsystemReport is one subsystem's section of the SLO report.
type subsystemReport struct {
	Ops    int64 `json:"ops"`
	Errors int64 `json:"errors"`

	ErrorsInFaultWindow  int64 `json:"errorsInFaultWindow"`
	ErrorsOutsideWindows int64 `json:"errorsOutsideWindows"`

	Availability          float64 `json:"availability"`          // 1 - errors/ops
	AvailabilityExclFault float64 `json:"availabilityExclFault"` // 1 - outside-errors/ops

	P50Ms float64 `json:"p50Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`

	P99BudgetMs float64           `json:"p99BudgetMs"`
	P99Met      bool              `json:"p99Met"`
	ErrorBudget errorBudgetReport `json:"errorBudget"`

	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// serverMetricsReport is the final scrape of one process's debug mux:
// scalar counters/gauges, vec sums, and histogram p99s in milliseconds.
type serverMetricsReport struct {
	Counters map[string]int64   `json:"counters,omitempty"`
	P99Ms    map[string]float64 `json:"p99Ms,omitempty"`
}

// databusFanoutReport is the relay's fan-out view of the run: how far the
// slowest of the N subscribers trailed the stream head at workload end, and
// the relay-side serve volume (events/bytes actually streamed — with N
// consumers, served events ≈ N × committed events unless consumers lagged).
type databusFanoutReport struct {
	Consumers          int   `json:"consumers"`
	CommittedSCN       int64 `json:"committedSCN"`
	SlowestConsumerSCN int64 `json:"slowestConsumerSCN"`
	ConsumerLagSCN     int64 `json:"consumerLagSCN"` // committed - slowest at workload end
	RelayServedEvents  int64 `json:"relayServedEvents"`
	RelayServedBytes   int64 `json:"relayServedBytes"`
	RelayChunks        int64 `json:"relayChunks"`
}

// sloReport is the run's full JSON artifact.
type sloReport struct {
	Started   time.Time `json:"started"`
	Duration  string    `json:"duration"`
	Topology  string    `json:"topology"`
	SLOStrict bool      `json:"sloStrict"`

	Subsystems   map[string]*subsystemReport    `json:"subsystems"`
	Databus      *databusFanoutReport           `json:"databusFanout,omitempty"`
	FaultWindows []faultWindow                  `json:"faultWindows"`
	Verification []verifyResult                 `json:"verification"`
	Servers      map[string]serverMetricsReport `json:"servers,omitempty"`

	Pass   bool     `json:"pass"`
	Faults []string `json:"failures,omitempty"` // human-readable gate violations
}

// inFaultWindow reports whether t falls inside any window padded by grace.
func inFaultWindow(t time.Time, windows []faultWindow) bool {
	for _, w := range windows {
		if t.After(w.Start.Add(-faultGracePre)) && t.Before(w.End.Add(faultGracePost)) {
			return true
		}
	}
	return false
}

// buildSubsystemReport folds one stats ledger plus the fault windows into a
// report section and applies the gate for that subsystem.
func buildSubsystemReport(s *subsystemStats, windows []faultWindow, strict bool) *subsystemReport {
	ops, errs, errTimes := s.snapshot()
	b, ok := budgets()[s.name]
	if !ok {
		// A subsystem without explicit targets gets the strictest ones;
		// also keeps the burn-rate division well-defined (JSON cannot
		// encode Inf).
		b = sloBudget{P99: 150 * time.Millisecond, ErrorBudget: 0.01, FaultBudget: 0.5}
	}
	r := &subsystemReport{
		Ops: ops, Errors: errs,
		P50Ms:       ms(s.hist.Percentile(50)),
		P99Ms:       ms(s.hist.Percentile(99)),
		MaxMs:       ms(s.hist.Max()),
		P99BudgetMs: ms(b.P99),
	}
	for _, t := range errTimes {
		if inFaultWindow(t, windows) {
			r.ErrorsInFaultWindow++
		} else {
			r.ErrorsOutsideWindows++
		}
	}
	if ops > 0 {
		r.Availability = 1 - float64(errs)/float64(ops)
		r.AvailabilityExclFault = 1 - float64(r.ErrorsOutsideWindows)/float64(ops)
	}
	r.ErrorBudget = errorBudgetReport{
		AllowedFraction: b.ErrorBudget,
		ActualFraction:  frac(errs, ops),
		BurnRate:        frac(r.ErrorsOutsideWindows, ops) / b.ErrorBudget,
	}
	r.P99Met = s.hist.Percentile(99) <= b.P99

	// The gate. Always: the subsystem must have done real work, errors
	// outside fault windows must fit the steady-state budget, and overall
	// errors must fit the fault budget. Strict runs (no injected faults)
	// additionally demand the latency budget and a clean overall error rate.
	r.Pass = true
	switch {
	case ops == 0:
		r.Pass, r.Detail = false, "no operations completed"
	case frac(r.ErrorsOutsideWindows, ops) > b.ErrorBudget:
		r.Pass, r.Detail = false, "error budget exhausted outside fault windows"
	case frac(errs, ops) > b.FaultBudget:
		r.Pass, r.Detail = false, "error rate excessive even accounting for fault windows"
	case strict && !r.P99Met:
		r.Pass, r.Detail = false, "p99 latency budget missed"
	case strict && frac(errs, ops) > b.ErrorBudget:
		r.Pass, r.Detail = false, "error budget exhausted (strict)"
	}
	return r
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func frac(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// finalizeReport applies the cross-cutting gate: every subsystem section and
// every verification verdict must pass.
func finalizeReport(r *sloReport) {
	r.Pass = true
	for name, sub := range r.Subsystems {
		if !sub.Pass {
			r.Pass = false
			r.Faults = append(r.Faults, name+": "+sub.Detail)
		}
	}
	for _, v := range r.Verification {
		if !v.Pass {
			r.Pass = false
			r.Faults = append(r.Faults, "verify "+v.Subsystem+": "+v.Detail)
		}
	}
}

// writeReport emits the report JSON (pretty-printed; CI archives it).
func writeReport(path string, r *sloReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
