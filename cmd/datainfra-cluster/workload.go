// The closed-loop social workload: Zipfian Company-Follow reads and writes
// against Voldemort, profile-style documents against Espresso, the change
// fan-out through the Databus relay, and activity events through Kafka.
//
// Every subsystem driver keeps two kinds of state:
//
//   - latency/error accounting (subsystemStats) for the SLO report, with
//     per-error timestamps so errors can later be attributed to fault windows;
//   - the acked-write ledger the verification phase replays from the outside:
//     a write enters the ledger only after the server acknowledged it, so
//     "no acked write lost" is checkable black-box.
//
// Writers shard the key space by worker (worker w owns ids ≡ w mod W), which
// makes per-key writes sequential and lets verification demand monotone
// sequence numbers instead of exact values — robust to last-write-wins
// resolution across a failover.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"datainfra/internal/consistency"
	"datainfra/internal/databus"
	"datainfra/internal/espresso"
	"datainfra/internal/kafka"
	"datainfra/internal/metrics"
	"datainfra/internal/voldemort"
	"datainfra/internal/workload"
)

// subsystemStats accumulates one subsystem's client-side view of the run.
type subsystemStats struct {
	name string
	hist *metrics.FixedHistogram

	mu       sync.Mutex
	ops      int64
	errs     int64
	errTimes []time.Time
}

func newSubsystemStats(name string) *subsystemStats {
	return &subsystemStats{name: name, hist: metrics.NewFixedHistogram()}
}

// record accounts one operation that started at start.
func (s *subsystemStats) record(start time.Time, err error) {
	s.hist.Observe(time.Since(start))
	s.mu.Lock()
	s.ops++
	if err != nil {
		s.errs++
		s.errTimes = append(s.errTimes, time.Now())
	}
	s.mu.Unlock()
}

// snapshot returns (ops, errs, error timestamps).
func (s *subsystemStats) snapshot() (int64, int64, []time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops, s.errs, append([]time.Time(nil), s.errTimes...)
}

// ackedSeqs is a worker-local ledger of the highest acknowledged sequence
// number per key. Workers own disjoint keys, so merging is collision-free.
type ackedSeqs map[string]int64

func mergeAcked(parts []ackedSeqs) ackedSeqs {
	out := ackedSeqs{}
	for _, p := range parts {
		for k, v := range p {
			if v > out[k] {
				out[k] = v
			}
		}
	}
	return out
}

// denseSeqs is the ledger at million-member cardinality: worker id owns
// member ids ≡ id (mod workers), so slot j holds the acked sequence for
// member id + workers*j. 8 bytes per owned id beats a string-keyed map
// entry by an order of magnitude, and the map the verifier wants is
// materialized lazily from the non-zero slots after the run.
type denseSeqs struct {
	workerID, workers int
	seqs              []int64
}

func newDenseSeqs(workerID, workers, members int) *denseSeqs {
	owned := members / workers
	if owned == 0 {
		owned = 1
	}
	return &denseSeqs{workerID: workerID, workers: workers, seqs: make([]int64, owned)}
}

// member returns the member id owned slot j maps to.
func (d *denseSeqs) member(j int) int { return d.workerID + d.workers*j }

// toAcked materializes the verifier's key→seq map from written slots.
func (d *denseSeqs) toAcked(keyspace string) ackedSeqs {
	out := ackedSeqs{}
	for j, seq := range d.seqs {
		if seq > 0 {
			out[string(workload.Key(keyspace, d.member(j)))] = seq
		}
	}
	return out
}

// errBackoff pauses a closed-loop worker after a failed operation. Without
// it a worker facing a dead server spins at connection-refused speed and the
// op count stops meaning anything; with it the loop stays closed — one
// outstanding request per worker — even through an outage.
func errBackoff(ctx context.Context, err error) {
	if err == nil {
		return
	}
	select {
	case <-ctx.Done():
	case <-time.After(50 * time.Millisecond):
	}
}

// seqValue renders a seq-prefixed value and parseSeq recovers the prefix.
func seqValue(seq int64, body string) string {
	return fmt.Sprintf("%d|%s", seq, body)
}

func parseSeq(v string) (int64, bool) {
	i := strings.IndexByte(v, '|')
	if i < 0 {
		return 0, false
	}
	var seq int64
	if _, err := fmt.Sscanf(v[:i], "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// --- Voldemort: Company-Follow read/write mix --------------------------------

const followKeyspace = "follow"

// voldemortWorkload drives the follow store with the paper's 60/40 mix
// over a member-id domain of cfg.members (millions are fine: per-worker
// ledgers are dense slices, not maps).
type voldemortWorkload struct {
	factory *voldemort.ClientFactory
	stats   *subsystemStats
	workers int
	members int
	seed    int64

	// acked[w] is touched only by worker w while running and read only
	// after the workload WaitGroup drains — no lock needed.
	acked []*denseSeqs
}

func (w *voldemortWorkload) run(ctx context.Context, wg *sync.WaitGroup) {
	w.acked = make([]*denseSeqs, w.workers)
	for i := 0; i < w.workers; i++ {
		w.acked[i] = newDenseSeqs(i, w.workers, w.members)
		wg.Add(1)
		go w.worker(ctx, wg, i)
	}
}

func (w *voldemortWorkload) worker(ctx context.Context, wg *sync.WaitGroup, id int) {
	defer wg.Done()
	cl, err := w.factory.Client(workloadStoreDef(), id)
	if err != nil {
		w.stats.record(time.Now(), err)
		return
	}
	acked := w.acked[id]
	readZ := workload.NewFastZipfian(w.members, 0.99, w.seed+int64(id))
	writeZ := workload.NewFastZipfian(len(acked.seqs), 0.99, w.seed+int64(100+id))
	mix := workload.NewMix(0.6, w.seed+int64(200+id))
	sizes := workload.NewSizeZipfian(32, 512, 0.99, w.seed+int64(300+id))
	for ctx.Err() == nil {
		start := time.Now()
		if mix.Read() {
			member := readZ.Next()
			_, _, err := cl.Get(workload.Key(followKeyspace, member))
			w.stats.record(start, err)
			errBackoff(ctx, err)
			continue
		}
		slot := writeZ.Next()
		member := acked.member(slot) // ids ≡ id (mod workers)
		key := workload.Key(followKeyspace, member)
		next := acked.seqs[slot] + 1
		val := seqValue(next, string(workload.Value(member, sizes.Next())))
		err := cl.Put(key, []byte(val))
		w.stats.record(start, err)
		if err == nil {
			acked.seqs[slot] = next
		}
		errBackoff(ctx, err)
	}
}

func (w *voldemortWorkload) ackedWrites() ackedSeqs {
	parts := make([]ackedSeqs, 0, len(w.acked))
	for _, d := range w.acked {
		parts = append(parts, d.toAcked(followKeyspace))
	}
	return mergeAcked(parts)
}

// --- Espresso: profile documents ---------------------------------------------

type espressoWorkload struct {
	base    string // router URL
	stats   *subsystemStats
	workers int
	seed    int64

	acked []ackedSeqs
}

const espressoAlbums = 50 // albums per worker-owned artist

func (w *espressoWorkload) run(ctx context.Context, wg *sync.WaitGroup) {
	w.acked = make([]ackedSeqs, w.workers)
	for i := 0; i < w.workers; i++ {
		w.acked[i] = ackedSeqs{}
		wg.Add(1)
		go w.worker(ctx, wg, i)
	}
}

func (w *espressoWorkload) worker(ctx context.Context, wg *sync.WaitGroup, id int) {
	defer wg.Done()
	cl := espresso.NewHTTPClient("http://"+w.base, nil)
	artist := fmt.Sprintf("artist-%d", id)
	albumZ := workload.NewFastZipfian(espressoAlbums, 0.99, w.seed+int64(id))
	mix := workload.NewMix(0.5, w.seed+int64(100+id))
	seq := ackedSeqs{}
	for ctx.Err() == nil {
		start := time.Now()
		album := fmt.Sprintf("album-%d", albumZ.Next())
		ledgerKey := artist + "/" + album
		if mix.Read() {
			_, err := cl.Get("Music", "Album", artist, album)
			if errors.Is(err, espresso.ErrNoSuchDocument) {
				err = nil // a miss is a correct answer, not a failure
			}
			w.stats.record(start, err)
			errBackoff(ctx, err)
			continue
		}
		next := seq[ledgerKey] + 1
		doc := map[string]any{
			"artist": artist,
			"title":  seqValue(next, album),
			"year":   1990 + int(next%30),
		}
		_, err := cl.Put("Music", "Album", []string{artist, album}, doc, "")
		w.stats.record(start, err)
		if err == nil {
			seq[ledgerKey] = next
			w.acked[id][ledgerKey] = next
		}
		errBackoff(ctx, err)
	}
}

func (w *espressoWorkload) ackedWrites() ackedSeqs { return mergeAcked(w.acked) }

// --- Kafka: activity events through the replicated cluster -------------------

const activityTopic = "activity"

type kafkaWorkload struct {
	client     *kafka.StaticClient
	stats      *subsystemStats
	workers    int
	partitions int

	mu    sync.Mutex
	acked map[int][]consistency.ProducedMsg // partition -> acked produces
}

func (w *kafkaWorkload) run(ctx context.Context, wg *sync.WaitGroup) {
	w.acked = map[int][]consistency.ProducedMsg{}
	for i := 0; i < w.workers; i++ {
		wg.Add(1)
		go w.worker(ctx, wg, i)
	}
}

func (w *kafkaWorkload) worker(ctx context.Context, wg *sync.WaitGroup, id int) {
	defer wg.Done()
	var seq int64
	for ctx.Err() == nil {
		seq++
		payload := fmt.Sprintf("w%d-seq%d", id, seq)
		partition := int(seq+int64(id)) % w.partitions
		start := time.Now()
		off, err := w.client.Produce(activityTopic, partition, kafka.NewMessageSet([]byte(payload)))
		w.stats.record(start, err)
		if err != nil {
			// The produce may or may not have landed; either way it is not
			// in the acked ledger, and the consistency checker tolerates
			// unacked messages in the log.
			errBackoff(ctx, err)
			continue
		}
		w.mu.Lock()
		w.acked[partition] = append(w.acked[partition],
			consistency.ProducedMsg{Offset: off, Payload: payload})
		w.mu.Unlock()
	}
}

func (w *kafkaWorkload) ackedProduces() map[int][]consistency.ProducedMsg {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[int][]consistency.ProducedMsg, len(w.acked))
	for p, msgs := range w.acked {
		out[p] = append([]consistency.ProducedMsg(nil), msgs...)
	}
	return out
}

// --- Databus: change capture fan-out -----------------------------------------

type databusWorkload struct {
	base      string // relay URL host:port
	stats     *subsystemStats
	members   int
	seed      int64
	consumers int // fan-out: concurrent subscribers (-databus-consumers)

	mu          sync.Mutex
	maxCommit   int64   // highest SCN the relay acked a commit at
	maxConsumed int64   // highest SCN any consumer has seen
	consumed    []int64 // per-consumer high-water SCN (lag = head - min)
}

type commitItem struct {
	Source  string `json:"source"`
	Key     string `json:"key"`
	Payload string `json:"payload"`
	Op      int    `json:"op"`
}

type streamEvent struct {
	SCN     int64  `json:"scn"`
	Key     string `json:"key"`
	Payload string `json:"payload"`
}

func (w *databusWorkload) run(ctx context.Context, wg *sync.WaitGroup) {
	if w.consumers <= 0 {
		w.consumers = 1
	}
	w.consumed = make([]int64, w.consumers)
	wg.Add(1 + w.consumers)
	go w.producer(ctx, wg)
	// Mixed subscriber population, the E8 shape: consumer 0 keeps the legacy
	// JSON endpoint; the rest speak the binary zero-copy transport, every
	// fourth with a server-side source filter.
	for c := 0; c < w.consumers; c++ {
		if c%2 == 0 {
			go w.consumer(ctx, wg, c)
		} else {
			go w.binaryConsumer(ctx, wg, c)
		}
	}
}

func (w *databusWorkload) producer(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	hc := &http.Client{Timeout: 2 * time.Second}
	keys := workload.NewFastZipfian(w.members, 0.99, w.seed)
	var seq int64
	for ctx.Err() == nil {
		batch := make([]commitItem, 0, 8)
		for i := 0; i < 8; i++ {
			seq++
			member := keys.Next()
			batch = append(batch, commitItem{
				Source:  "follow",
				Key:     string(workload.Key(followKeyspace, member)),
				Payload: fmt.Sprintf("change-%d", seq),
				Op:      0,
			})
		}
		body, _ := json.Marshal(batch)
		start := time.Now()
		resp, err := hc.Post("http://"+w.base+"/commit", "application/json", strings.NewReader(string(body)))
		var scn struct {
			SCN int64 `json:"scn"`
		}
		if err == nil {
			decErr := json.NewDecoder(resp.Body).Decode(&scn)
			resp.Body.Close()
			if decErr != nil {
				err = decErr
			} else if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("commit: status %d", resp.StatusCode)
			}
		}
		w.stats.record(start, err)
		if err == nil {
			w.mu.Lock()
			if scn.SCN > w.maxCommit {
				w.maxCommit = scn.SCN
			}
			w.mu.Unlock()
		}
		// Closed loop with a small pause: the relay is not the bottleneck
		// under test, steady fan-out is.
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (w *databusWorkload) consumer(ctx context.Context, wg *sync.WaitGroup, id int) {
	defer wg.Done()
	hc := &http.Client{Timeout: 2 * time.Second}
	var since int64
	for ctx.Err() == nil {
		events, err := fetchStream(hc, w.base, since, 500)
		if err != nil {
			// Consumer fetch failures are tracked on the same subsystem:
			// fan-out is only useful if subscribers can follow.
			w.stats.record(time.Now(), err)
			select {
			case <-ctx.Done():
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		for _, e := range events {
			if e.SCN > since {
				since = e.SCN
			}
		}
		if len(events) > 0 {
			w.advance(id, since)
		}
	}
}

// binaryConsumer follows the relay through the zero-copy binary transport
// mounted at /databus, reusing one Batch so the steady-state decode cost is
// an exact-size arena per page.
func (w *databusWorkload) binaryConsumer(ctx context.Context, wg *sync.WaitGroup, id int) {
	defer wg.Done()
	reader := &databus.HTTPReader{
		BaseURL: "http://" + w.base + "/databus",
		Client:  &http.Client{Timeout: 2 * time.Second},
	}
	var f *databus.Filter
	if id%4 == 3 {
		f = &databus.Filter{Sources: []string{"follow"}}
	}
	var batch databus.Batch
	var since int64
	for ctx.Err() == nil {
		resume, err := reader.ReadBatchBlocking(since, 500, f, time.Second, &batch)
		if err != nil {
			if errors.Is(err, databus.ErrSCNTooOld) {
				// Fell off the window (a long fault stall): re-join at the
				// window tail rather than sitting dead for the rest of the run.
				if st, serr := fetchRelayStats(reader.Client, w.base); serr == nil {
					since = st.MinSCN - 1
				}
				continue
			}
			w.stats.record(time.Now(), err)
			select {
			case <-ctx.Done():
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		since = resume
		if len(batch.Events) > 0 {
			w.advance(id, since)
		}
	}
}

// advance records consumer id's new high-water SCN.
func (w *databusWorkload) advance(id int, scn int64) {
	w.mu.Lock()
	if scn > w.consumed[id] {
		w.consumed[id] = scn
	}
	if scn > w.maxConsumed {
		w.maxConsumed = scn
	}
	w.mu.Unlock()
}

// fetchStream reads one /stream page after since.
func fetchStream(hc *http.Client, base string, since int64, max int) ([]streamEvent, error) {
	resp, err := hc.Get(fmt.Sprintf("http://%s/stream?since=%d&max=%d", base, since, max))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("stream: status %d", resp.StatusCode)
	}
	var events []streamEvent
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		return nil, err
	}
	return events, nil
}

// progress returns (highest committed SCN, highest consumed SCN).
func (w *databusWorkload) progress() (int64, int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.maxCommit, w.maxConsumed
}

// slowestConsumed returns the laggard's high-water SCN — relay head minus
// this is the fan-out lag the SLO report records.
func (w *databusWorkload) slowestConsumed() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	slowest := int64(-1)
	for _, s := range w.consumed {
		if slowest < 0 || s < slowest {
			slowest = s
		}
	}
	if slowest < 0 {
		return 0
	}
	return slowest
}

// relayStats mirrors the databus-relay /stats JSON.
type relayStats struct {
	LastSCN        int64 `json:"lastSCN"`
	MinSCN         int64 `json:"minSCN"`
	BufferedEvents int64 `json:"bufferedEvents"`
	BufferedBytes  int64 `json:"bufferedBytes"`
	BufferedChunks int64 `json:"bufferedChunks"`
	EventsServed   int64 `json:"eventsServed"`
	BytesServed    int64 `json:"bytesServed"`
}

func fetchRelayStats(hc *http.Client, base string) (relayStats, error) {
	var st relayStats
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Second}
	}
	resp, err := hc.Get("http://" + base + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return st, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}
