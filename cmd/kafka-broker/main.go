// Command kafka-broker runs Kafka brokers serving the binary TCP protocol,
// with segment-file persistence, batched flushing and time-based retention.
//
// Single-broker (legacy) mode:
//
//	kafka-broker -id 0 -data /var/kafka -listen :9092 -partitions 4 -retention 168h
//
// Replicated mode (-replicas > 1) runs a whole ISR-replicated cluster in one
// process — coordination (zk, the Helix controller, leader election) is
// in-process, while every broker serves clients on its own TCP port
// (-listen port, port+1, ...). Topics are registered up front with -topics;
// produces sent to a non-leader fail with "not the partition leader", so
// clients walk the brokers or use kafka.RoutedClient semantics. See
// DESIGN.md §10.
//
//	kafka-broker -data /var/kafka -listen :9092 -replicas 3 -min-isr 2 -topics events,orders
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"datainfra/internal/kafka"
	"datainfra/internal/metrics"
	"datainfra/internal/trace"
)

func main() {
	var (
		id          = flag.Int("id", 0, "broker id (single-broker mode)")
		dataDir     = flag.String("data", "kafka-data", "log directory")
		listen      = flag.String("listen", "127.0.0.1:9092", "listen address (replicated mode: first broker; the rest take successive ports)")
		metricsAddr = flag.String("metrics", "127.0.0.1:9192", "observability HTTP address (/metrics, /debug/pprof); empty disables")
		partitions  = flag.Int("partitions", 4, "partitions per topic")
		segment     = flag.Int64("segment-bytes", 64<<20, "segment roll size")
		flushN      = flag.Int("flush-messages", 100, "flush after N messages")
		flushMs     = flag.Duration("flush-interval", 50*time.Millisecond, "flush interval")
		retention   = flag.Duration("retention", 7*24*time.Hour, "segment retention (the paper's 7-day SLA)")
		replicas    = flag.Int("replicas", 1, "brokers in the ISR-replicated cluster; 1 = legacy single broker")
		minISR      = flag.Int("min-isr", 1, "in-sync replicas required to accept a produce (replicated mode)")
		topics      = flag.String("topics", "", "comma-separated topics to register for replication (replicated mode)")
	)
	flag.Parse()
	if os.Getenv("DATAINFRA_TRACE") != "" {
		trace.Enable(os.Stderr)
	}

	bcfg := kafka.BrokerConfig{
		PartitionsPerTopic: *partitions,
		Log: kafka.LogConfig{
			SegmentBytes:  *segment,
			FlushMessages: *flushN,
			FlushInterval: *flushMs,
			Retention:     *retention,
		},
	}

	if *metricsAddr != "" {
		obsAddr, stopObs, err := metrics.Serve(*metricsAddr, metrics.Default)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		defer stopObs()
		fmt.Printf("observability on http://%s/metrics (pprof at /debug/pprof/)\n", obsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *replicas > 1 {
		runReplicated(bcfg, *dataDir, *listen, *replicas, *minISR, *topics, sig)
		return
	}

	b, err := kafka.NewBroker(*id, *dataDir, bcfg)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := b.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kafka broker %d listening on %s (data: %s, retention: %v)\n", *id, addr, *dataDir, *retention)
	<-sig
	log.Println("shutting down")
	if err := b.Close(); err != nil {
		log.Fatal(err)
	}
}

func runReplicated(bcfg kafka.BrokerConfig, dataDir, listen string, replicas, minISR int, topics string, sig chan os.Signal) {
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		log.Fatalf("replicated mode needs host:port in -listen: %v", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("replicated mode needs a numeric -listen port: %v", err)
	}

	dirs := make([]string, replicas)
	for i := range dirs {
		dirs[i] = filepath.Join(dataDir, fmt.Sprintf("broker-%d", i))
	}
	c, err := kafka.NewReplicatedCluster(dirs, bcfg, kafka.ReplicatedConfig{
		Cluster: "kafka", Replicas: replicas, MinISR: minISR,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, rb := range c.Brokers() {
		addr, err := rb.Broker().Listen(net.JoinHostPort(host, strconv.Itoa(port+i)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kafka broker %s listening on %s (data: %s)\n", rb.Instance(), addr, dirs[i])
	}
	registered := 0
	for _, topic := range strings.Split(topics, ",") {
		topic = strings.TrimSpace(topic)
		if topic == "" {
			continue
		}
		if err := c.AddTopic(topic); err != nil {
			log.Fatalf("register topic %q: %v", topic, err)
		}
		registered++
	}
	if registered == 0 {
		log.Println("warning: no -topics registered; nothing will be replicated or elected")
	}
	fmt.Printf("isr cluster up: %d brokers, min-isr %d, %d topics\n", replicas, minISR, registered)
	<-sig
	log.Println("shutting down")
	c.Close()
}
