// Command kafka-broker runs one Kafka broker serving the binary TCP
// protocol, with segment-file persistence, batched flushing and time-based
// retention.
//
// Usage:
//
//	kafka-broker -id 0 -data /var/kafka -listen :9092 -partitions 4 -retention 168h
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datainfra/internal/kafka"
	"datainfra/internal/metrics"
	"datainfra/internal/trace"
)

func main() {
	var (
		id          = flag.Int("id", 0, "broker id")
		dataDir     = flag.String("data", "kafka-data", "log directory")
		listen      = flag.String("listen", "127.0.0.1:9092", "listen address")
		metricsAddr = flag.String("metrics", "127.0.0.1:9192", "observability HTTP address (/metrics, /debug/pprof); empty disables")
		partitions  = flag.Int("partitions", 4, "partitions per topic")
		segment     = flag.Int64("segment-bytes", 64<<20, "segment roll size")
		flushN      = flag.Int("flush-messages", 100, "flush after N messages")
		flushMs     = flag.Duration("flush-interval", 50*time.Millisecond, "flush interval")
		retention   = flag.Duration("retention", 7*24*time.Hour, "segment retention (the paper's 7-day SLA)")
	)
	flag.Parse()
	if os.Getenv("DATAINFRA_TRACE") != "" {
		trace.Enable(os.Stderr)
	}

	b, err := kafka.NewBroker(*id, *dataDir, kafka.BrokerConfig{
		PartitionsPerTopic: *partitions,
		Log: kafka.LogConfig{
			SegmentBytes:  *segment,
			FlushMessages: *flushN,
			FlushInterval: *flushMs,
			Retention:     *retention,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := b.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kafka broker %d listening on %s (data: %s, retention: %v)\n", *id, addr, *dataDir, *retention)
	if *metricsAddr != "" {
		obsAddr, stopObs, err := metrics.Serve(*metricsAddr, metrics.Default)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		defer stopObs()
		fmt.Printf("observability on http://%s/metrics (pprof at /debug/pprof/)\n", obsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	if err := b.Close(); err != nil {
		log.Fatal(err)
	}
}
