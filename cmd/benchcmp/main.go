// Command benchcmp compares two benchjson/v1 files (see cmd/benchjson and
// EXPERIMENTS.md) and fails when a named benchmark regressed: more than
// -threshold (default 20%) slower in ns/op, or any increase in allocs/op
// when -allocs is set. It is the perf gate wired into CI as
// `make bench-compare`, judging the current tree against the checked-in
// baseline (BENCH_PR5.json).
//
// Usage:
//
//	benchcmp -baseline BENCH_PR5.json -current BENCH_PR9.json \
//	    -bench BenchmarkBitcaskGet -bench BenchmarkMarshal
//
// With no -bench flags every benchmark present in BOTH files is compared.
// Benchmarks only present on one side are reported but never fail the gate
// (suites grow and shrink PR over PR).
//
// A frozen baseline is measured on whatever hardware recorded it, and CI
// runners drift: raw ns/op comparisons would flag a uniformly slower host
// as a regression of everything. With -normalize (the default) benchcmp
// divides every delta by the median current/baseline ns/op ratio across
// ALL benchmarks common to both files — a slower host shifts the median
// and cancels out, while a genuine regression of a few gated benchmarks
// barely moves it and still fails the gate. Pass -normalize=false for
// same-host comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchFile struct {
	Schema  string   `json:"schema"`
	Results []result `json:"results"`
}

// key identifies a benchmark across files: package + full name (including
// sub-benchmark path).
func key(r result) string { return r.Pkg + " " + r.Name }

func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "benchjson/v1" {
		return nil, fmt.Errorf("%s: unsupported schema %q", path, f.Schema)
	}
	out := make(map[string]result, len(f.Results))
	for _, r := range f.Results {
		out[key(r)] = r
	}
	return out, nil
}

// multiFlag collects repeated -bench flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var benches multiFlag
	baseline := flag.String("baseline", "", "baseline benchjson file")
	current := flag.String("current", "", "current benchjson file")
	threshold := flag.Float64("threshold", 20, "max allowed ns/op regression in percent")
	allocs := flag.Bool("allocs", false, "also fail on any allocs/op increase")
	normalize := flag.Bool("normalize", true, "divide deltas by the median ns/op ratio over all common benchmarks (cancels host-speed drift)")
	flag.Var(&benches, "bench", "benchmark name (substring match) to gate on; repeatable, default: all common benchmarks")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: need -baseline and -current")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	gated := func(name string) bool {
		if len(benches) == 0 {
			return true
		}
		for _, b := range benches {
			if strings.Contains(name, b) {
				return true
			}
		}
		return false
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Host-speed factor: the median ns/op ratio over every benchmark the
	// files share. A uniformly slower (or faster) host moves all ratios
	// together; a real regression of the few gated benchmarks barely
	// shifts the median.
	factor := 1.0
	if *normalize {
		var ratios []float64
		for _, k := range keys {
			b := base[k]
			if c, ok := cur[k]; ok && b.NsPerOp > 0 && c.NsPerOp > 0 {
				ratios = append(ratios, c.NsPerOp/b.NsPerOp)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			factor = ratios[len(ratios)/2]
			fmt.Printf("host-speed factor: %.2fx (median over %d common benchmarks)\n", factor, len(ratios))
		}
	}

	var failures []string
	compared := 0
	for _, k := range keys {
		b := base[k]
		if !gated(b.Name) {
			continue
		}
		c, ok := cur[k]
		if !ok {
			fmt.Printf("only in baseline: %s\n", k)
			continue
		}
		compared++
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp/(b.NsPerOp*factor) - 1) * 100
		}
		status := "ok"
		if delta > *threshold {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%%, threshold %.0f%%)",
				k, b.NsPerOp, c.NsPerOp, delta, *threshold))
		}
		if *allocs && c.AllocsPerOp > b.AllocsPerOp {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d -> %d",
				k, b.AllocsPerOp, c.AllocsPerOp))
		}
		fmt.Printf("%-60s %10.1f -> %10.1f ns/op  %+6.1f%%  %d -> %d allocs/op  %s\n",
			k, b.NsPerOp, c.NsPerOp, delta, b.AllocsPerOp, c.AllocsPerOp, status)
	}
	if len(benches) > 0 && compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no gated benchmark found in both files")
		os.Exit(2)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcmp: %d benchmark(s) within %.0f%% of baseline\n", compared, *threshold)
}
