// Command benchjson runs the repository's benchmark suites with -benchmem
// and writes the results as JSON (BENCH_PR5.json et al.) so the performance
// trajectory is machine-readable PR over PR. The output schema is documented
// in EXPERIMENTS.md.
//
// Usage: go run ./cmd/benchjson [-out BENCH_PR9.json] [-benchtime 0.5s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// suite is one `go test -bench` invocation.
type suite struct {
	Pkg       string // package path passed to go test
	Bench     string // -bench regexp
	Benchtime string // -benchtime value
	Cpu       string // -cpu value ("" = default GOMAXPROCS)
}

// suites covers the experiment harness (E*/FII*, one iteration each — they
// embed their own fixed workloads), the ablations with a real time budget,
// and the hot-path micro-benchmarks (storage engine, schema codec). The
// storage suite runs at -cpu=8 so the concurrent benchmarks actually
// exercise 8 goroutines regardless of the host's core count. Later suites
// override earlier results with the same benchmark name, so the ablation
// re-run supersedes its single-iteration smoke numbers.
// The transport suites (voldemort/kafka mux-vs-pool, databus blocking-read
// wake) measure the RPC pipelining introduced with internal/rpc; their
// headline rows run behind a simulated 1ms-RTT link where head-of-line
// blocking dominates.
var suites = []suite{
	{Pkg: ".", Bench: ".", Benchtime: "1x"},
	{Pkg: ".", Bench: "BenchmarkAblation", Benchtime: "0.3s"},
	{Pkg: "./internal/storage", Bench: ".", Benchtime: "2s", Cpu: "8"},
	{Pkg: "./internal/schema", Bench: ".", Benchtime: "0.5s"},
	{Pkg: "./internal/voldemort", Bench: "BenchmarkSocketStoreParallel", Benchtime: "0.3s"},
	{Pkg: "./internal/kafka", Bench: "BenchmarkRemoteBrokerProduceFetchParallel", Benchtime: "0.3s"},
	{Pkg: "./internal/databus", Bench: "BenchmarkRelay|BenchmarkDatabus", Benchtime: "0.3s"},
	{Pkg: "./internal/cache", Bench: ".", Benchtime: "0.5s"},
	{Pkg: "./internal/voldemort", Bench: "BenchmarkEngineStore", Benchtime: "0.5s"},
	{Pkg: "./internal/espresso", Bench: "BenchmarkNodeGet", Benchtime: "0.5s"},
	// The PR 9 headline gets a real budget so the steady-state hit rate —
	// not round-to-round bitcask layout noise — decides the number.
	{Pkg: ".", Bench: "BenchmarkAblationHotSetCache", Benchtime: "2s"},
}

// result is one benchmark line. NsPerOp is always set; BytesPerOp and
// AllocsPerOp come from -benchmem; Extra holds any custom b.ReportMetric
// columns (e.g. "%-reclaimed", "MB/s") keyed by unit.
type result struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_PR9.json", "output JSON file")
	benchtime := flag.String("benchtime", "", "override -benchtime for every suite")
	count := flag.Int("count", 1, "run each suite -count times and record the minimum ns/op per benchmark (noise-robust)")
	pkgs := flag.String("pkgs", "", "comma-separated substrings: only run suites whose package path matches one")
	macro := flag.String("macro", "", "optional datainfra-cluster slo.json to embed under \"macro\"")
	flag.Parse()

	var results []result
	for _, s := range suites {
		if *pkgs != "" {
			match := false
			for _, p := range strings.Split(*pkgs, ",") {
				if p != "" && strings.Contains(s.Pkg, p) {
					match = true
					break
				}
			}
			if !match {
				continue
			}
		}
		bt := s.Benchtime
		if *benchtime != "" {
			bt = *benchtime
		}
		args := []string{"test", "-run=NONE", "-bench=" + s.Bench, "-benchmem", "-benchtime=" + bt}
		if *count > 1 {
			args = append(args, "-count="+strconv.Itoa(*count))
		}
		if s.Cpu != "" {
			args = append(args, "-cpu="+s.Cpu)
		}
		args = append(args, s.Pkg)
		fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n%s\n", s.Pkg, err, outBytes)
			os.Exit(1)
		}
		// Within one suite, -count repeats the same configuration; keep
		// the fastest sample per benchmark (min damps scheduler noise).
		parsed := parseBenchOutput(s.Pkg, s.Cpu, string(outBytes))
		best := make(map[string]int)
		suiteResults := parsed[:0]
		for _, r := range parsed {
			if i, ok := best[r.Name]; ok {
				if r.NsPerOp < suiteResults[i].NsPerOp {
					suiteResults[i] = r
				}
				continue
			}
			best[r.Name] = len(suiteResults)
			suiteResults = append(suiteResults, r)
		}
		results = append(results, suiteResults...)
	}

	// Later suites supersede earlier results with the same (pkg, name).
	seen := make(map[string]int)
	deduped := results[:0]
	for _, r := range results {
		key := r.Pkg + " " + r.Name
		if i, ok := seen[key]; ok {
			deduped[i] = r
			continue
		}
		seen[key] = len(deduped)
		deduped = append(deduped, r)
	}
	results = deduped

	doc := map[string]any{
		"schema":  "benchjson/v1",
		"results": results,
	}
	if *macro != "" {
		data, err := os.ReadFile(*macro)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var slo any
		if err := json.Unmarshal(data, &slo); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *macro, err)
			os.Exit(1)
		}
		doc["macro"] = slo
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// parseBenchOutput extracts benchmark lines of the form
//
//	BenchmarkName-8   	 1000	 1234 ns/op	 56 B/op	 7 allocs/op	 3.2 extra/unit
//
// from go test output. cpu is the -cpu value the suite ran with ("" for the
// default): go test appends "-<procs>" to names when procs != 1, and only
// that exact suffix is stripped — sub-benchmark names like "every-1000"
// must survive intact.
func parseBenchOutput(pkg, cpu, out string) []result {
	procsSuffix := ""
	if cpu != "" {
		procsSuffix = "-" + cpu
	} else if n := runtime.GOMAXPROCS(0); n != 1 {
		procsSuffix = "-" + strconv.Itoa(n)
	}
	var results []result
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimSuffix(fields[0], procsSuffix)
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: name, Pkg: pkg, Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		results = append(results, r)
	}
	return results
}
