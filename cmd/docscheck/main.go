// Command docscheck is the markdown link checker behind `make docs-check`:
// it parses the repo's operator-facing documents, extracts every inline
// markdown link, and verifies that
//
//   - relative file targets exist (resolved against the document's own
//     directory), and any #fragment on them points at a real heading in the
//     target file,
//   - bare #fragment links point at a real heading in the same document,
//     using GitHub's anchor slug rules (lowercase, punctuation stripped,
//     spaces to dashes).
//
// External links (http, https, mailto) are recorded but not fetched — CI has
// no network, and a dead external link is a doc bug, not a build failure.
// Fenced code blocks are skipped so example snippets can show link syntax.
//
// Usage: docscheck [files...]   (defaults to the repo's top-level documents)
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// defaultDocs is the operator-facing set; ISSUE/CHANGES and friends are
// working files, not documentation.
var defaultDocs = []string{
	"README.md", "DESIGN.md", "OPERATIONS.md", "EXPERIMENTS.md", "ROADMAP.md",
}

var (
	// Inline links/images: [text](target) — the target ends at the first
	// unescaped ')'; titles ("...") inside the parens are tolerated.
	linkRE    = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)
	headingRE = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)
	// GitHub slugs drop everything that is not a word character, space or
	// dash (backticks, punctuation, the § sign...).
	slugStripRE = regexp.MustCompile(`[^\w\- ]`)
)

// slugify mirrors GitHub's heading → anchor transformation closely enough
// for this repo's ASCII headings.
func slugify(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	s = strings.ReplaceAll(s, "`", "")
	s = slugStripRE.ReplaceAllString(s, "")
	return strings.ReplaceAll(s, " ", "-")
}

// anchors returns the set of heading slugs in a markdown file, numbering
// duplicates the way GitHub does (slug, slug-1, slug-2, ...).
func anchors(text string) map[string]bool {
	out := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[2])
		if n := counts[slug]; n > 0 {
			out[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			out[slug] = true
		}
		counts[slug]++
	}
	return out
}

// links extracts every inline link target outside fenced code blocks.
func links(text string) []string {
	var out []string
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			out = append(out, m[1])
		}
	}
	return out
}

func external(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

func main() {
	docs := defaultDocs
	if len(os.Args) > 1 {
		docs = os.Args[1:]
	}

	anchorCache := map[string]map[string]bool{}
	load := func(path string) (string, error) {
		b, err := os.ReadFile(path)
		return string(b), err
	}

	bad, checked, externals := 0, 0, 0
	for _, doc := range docs {
		text, err := load(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			bad++
			continue
		}
		anchorCache[doc] = anchors(text)
		for _, target := range links(text) {
			checked++
			if external(target) {
				externals++
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := doc
			if file != "" {
				resolved = filepath.Join(filepath.Dir(doc), file)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "docscheck: %s: broken link %q: %s does not exist\n", doc, target, resolved)
					bad++
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				continue // fragments into non-markdown files are not checkable
			}
			if _, ok := anchorCache[resolved]; !ok {
				text, err := load(resolved)
				if err != nil {
					fmt.Fprintf(os.Stderr, "docscheck: %s: broken link %q: %v\n", doc, target, err)
					bad++
					continue
				}
				anchorCache[resolved] = anchors(text)
			}
			if !anchorCache[resolved][frag] {
				fmt.Fprintf(os.Stderr, "docscheck: %s: broken anchor %q: no heading slugs to #%s in %s\n",
					doc, target, frag, resolved)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s) across %d document(s)\n", bad, len(docs))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d documents, %d links checked (%d external, not fetched), all resolve\n",
		len(docs), checked, externals)
}
