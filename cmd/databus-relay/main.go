// Command databus-relay runs a Databus relay with an attached bootstrap
// server, exposed over a small HTTP API:
//
//	POST /commit            body: {"source":"s","key":"k","payload":"...","op":0}[]
//	                        commits one transaction; returns its SCN
//	GET  /stream?since=N&max=M[&source=s][&partition=p]
//	                        returns events after SCN N (JSON); 410 Gone when
//	                        the SCN fell off the buffer (use /bootstrap)
//	GET  /bootstrap?since=N returns the consolidated delta / snapshot and the
//	                        SCN to resume streaming from
//	GET  /stats             relay counters
//
// The binary fan-out transport (the framing databus.HTTPReader speaks, served
// zero-copy from the relay's encode-once ring) is mounted under /databus:
//
//	GET  /databus/stream    pre-encoded event frames, long-polling
//	GET  /databus/bootstrap binary catch-up with the resume SCN in a header
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"datainfra/internal/bootstrap"
	"datainfra/internal/databus"
	"datainfra/internal/metrics"
	"datainfra/internal/trace"
)

type commitItem struct {
	Source  string `json:"source"`
	Key     string `json:"key"`
	Payload string `json:"payload"`
	Op      int    `json:"op"`
}

type wireEvent struct {
	SCN       int64  `json:"scn"`
	TxnID     int64  `json:"txnId"`
	EndOfTxn  bool   `json:"endOfTxn"`
	Source    string `json:"source"`
	Op        int    `json:"op"`
	Key       string `json:"key"`
	Payload   string `json:"payload"`
	Partition int    `json:"partition"`
}

func toWire(e databus.Event) wireEvent {
	return wireEvent{
		SCN: e.SCN, TxnID: e.TxnID, EndOfTxn: e.EndOfTxn, Source: e.Source,
		Op: int(e.Op), Key: string(e.Key), Payload: string(e.Payload), Partition: e.Partition,
	}
}

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8600", "listen address")
		metricsAddr = flag.String("metrics", "127.0.0.1:8601", "observability HTTP address (/metrics, /debug/pprof); empty disables")
		maxEvents   = flag.Int("buffer-events", 1<<20, "relay buffer capacity (events)")
		maxBytes    = flag.Int("buffer-bytes", 256<<20, "relay buffer capacity (bytes)")
		partitions  = flag.Int("partitions", 16, "partitioning for server-side filters")
	)
	flag.Parse()
	if os.Getenv("DATAINFRA_TRACE") != "" {
		trace.Enable(os.Stderr)
	}

	source := databus.NewLogSource()
	relay := databus.NewRelay(databus.RelayConfig{MaxEvents: *maxEvents, MaxBytes: *maxBytes})
	relay.AttachSource(source, time.Millisecond)
	defer relay.Close()
	boot := bootstrap.New()
	bootClient, err := databus.NewClient(databus.ClientConfig{
		Relay: relay, Consumer: boot, PollExpiry: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	bootClient.Start()
	defer bootClient.Close()
	go func() {
		for range time.Tick(100 * time.Millisecond) {
			boot.ApplyOnce()
		}
	}()

	mux := http.NewServeMux()
	// Binary transport: consumers using databus.HTTPReader/HTTPBootstrap get
	// the relay's pre-encoded frames streamed zero-copy; the JSON endpoints
	// below stay for curl-friendly inspection and legacy callers.
	mux.Handle("/databus/", http.StripPrefix("/databus",
		&databus.Handler{Relay: relay, Boot: boot, PollExpiry: 500 * time.Millisecond}))
	mux.HandleFunc("POST /commit", func(w http.ResponseWriter, r *http.Request) {
		var items []commitItem
		if err := json.NewDecoder(r.Body).Decode(&items); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		events := make([]databus.Event, len(items))
		for i, it := range items {
			events[i] = databus.Event{
				Source: it.Source, Key: []byte(it.Key),
				Payload: []byte(it.Payload), Op: databus.Op(it.Op),
			}
			events[i].ComputePartition(*partitions)
		}
		scn := source.Commit(events...)
		fmt.Fprintf(w, `{"scn":%d}`+"\n", scn)
	})
	mux.HandleFunc("GET /stream", func(w http.ResponseWriter, r *http.Request) {
		since, _ := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
		max, _ := strconv.Atoi(r.URL.Query().Get("max"))
		if max == 0 {
			max = 1000
		}
		var f *databus.Filter
		if s := r.URL.Query().Get("source"); s != "" {
			f = &databus.Filter{Sources: []string{s}}
		}
		if p := r.URL.Query().Get("partition"); p != "" {
			n, err := strconv.Atoi(p)
			if err != nil {
				http.Error(w, "bad partition", http.StatusBadRequest)
				return
			}
			if f == nil {
				f = &databus.Filter{}
			}
			f.Partitions = []int{n}
		}
		events, err := relay.ReadBlocking(since, max, f, 500*time.Millisecond)
		if errors.Is(err, databus.ErrSCNTooOld) {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out := make([]wireEvent, len(events))
		for i, e := range events {
			out[i] = toWire(e)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("GET /bootstrap", func(w http.ResponseWriter, r *http.Request) {
		since, _ := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
		var out []wireEvent
		resume, err := boot.Catchup(since, nil, func(e databus.Event) error {
			out = append(out, toWire(e))
			return nil
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"resume": resume, "events": out})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"lastSCN":        relay.LastSCN(),
			"minSCN":         relay.MinSCN(),
			"bufferedEvents": relay.BufferedEvents(),
			"bufferedBytes":  relay.BufferedBytes(),
			"bufferedChunks": relay.BufferedChunks(),
			"eventsServed":   relay.EventsServed(),
			"bytesServed":    relay.BytesServed(),
			"waiters":        relay.Waiters(),
			"consumerLagSCN": max(relay.LastSCN()-bootClient.SCN(), 0),
			"bootstrapLog":   boot.LogLen(),
			"snapshotRows":   boot.SnapshotLen(),
		})
	})

	// The bootstrap consumer trails the relay head by design; its distance is
	// the canonical "consumer lag" an operator reads off this process.
	metrics.RegisterGaugeFunc("databus_client_lag_scn",
		"SCN distance between the relay head and the bootstrap consumer",
		func() int64 {
			lag := relay.LastSCN() - bootClient.SCN()
			if lag < 0 {
				return 0
			}
			return lag
		})
	if *metricsAddr != "" {
		obsAddr, stopObs, err := metrics.Serve(*metricsAddr, metrics.Default)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		defer stopObs()
		fmt.Printf("observability on http://%s/metrics (pprof at /debug/pprof/)\n", obsAddr)
	}
	fmt.Printf("databus relay listening on http://%s\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, withTrace(mux)))
}

// withTrace tags every API request with a trace ID — the caller's
// X-Datainfra-Trace header when present, a fresh one otherwise — echoes it
// on the response, and logs it when DATAINFRA_TRACE is set.
func withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(trace.Header)
		if id == "" {
			id = trace.NewID()
		}
		w.Header().Set(trace.Header, id)
		start := time.Now()
		next.ServeHTTP(w, r)
		trace.Logf(id, "databus-relay %s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
