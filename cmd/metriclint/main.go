// Command metriclint enforces the observability conventions of this repo
// (run by `make vet`):
//
//   - every name passed to a metrics.Register* call matches the
//     subsystem_signal_unit convention (lowercase, underscore-separated,
//     at least two segments),
//   - the final segment is a recognised unit suffix,
//   - the name is documented in OPERATIONS.md.
//
// It scans Go source literally (string literals in Register* calls), so
// dynamically built names are invisible to it — by design, the repo only
// registers compile-time constant names. Test files are skipped: tests may
// register throwaway instruments.
//
// Usage: metriclint [repo root]   (defaults to the current directory)
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	registerRE = regexp.MustCompile(`metrics\.Register(?:Counter|Gauge|Histogram|HistogramBuckets|CounterVec|GaugeVec|GaugeFunc)\(\s*"([^"]+)"`)
	nameRE     = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)
)

// unitSuffixes is the closed list of allowed trailing units; keep in sync
// with the "Naming convention" section of OPERATIONS.md.
var unitSuffixes = []string{
	"_total", "_bytes", "_seconds", "_events", "_messages",
	"_hints", "_scn", "_rows", "_state", "_nodes", "_requests", "_chunks",
}

func hasUnitSuffix(name string) bool {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	opsPath := filepath.Join(root, "OPERATIONS.md")
	ops, err := os.ReadFile(opsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(1)
	}
	opsText := string(ops)

	type site struct{ file, name string }
	var sites []site
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil
			}
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, m := range registerRE.FindAllStringSubmatch(string(src), -1) {
			sites = append(sites, site{file: rel, name: m[1]})
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(1)
	}

	bad := 0
	seen := map[string]bool{}
	for _, s := range sites {
		if !nameRE.MatchString(s.name) {
			fmt.Fprintf(os.Stderr, "metriclint: %s: %q violates subsystem_signal_unit naming\n", s.file, s.name)
			bad++
			continue
		}
		if !hasUnitSuffix(s.name) {
			fmt.Fprintf(os.Stderr, "metriclint: %s: %q lacks a unit suffix (one of %s)\n",
				s.file, s.name, strings.Join(unitSuffixes, " "))
			bad++
			continue
		}
		if !seen[s.name] && !strings.Contains(opsText, "`"+s.name) {
			fmt.Fprintf(os.Stderr, "metriclint: %s: %q is not documented in OPERATIONS.md\n", s.file, s.name)
			bad++
		}
		seen[s.name] = true
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d problem(s) across %d registration site(s)\n", bad, len(sites))
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d registration sites, %d distinct metrics, all named and documented\n", len(sites), len(seen))
}
