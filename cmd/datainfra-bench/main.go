// Command datainfra-bench regenerates the paper's prose-reported production
// numbers as tables: each experiment prints the paper's claim next to the
// measured value on this machine. The same experiments exist as testing.B
// benchmarks at the repository root; this binary is the human-readable
// harness (see EXPERIMENTS.md for recorded results and interpretation).
//
// Usage:
//
//	datainfra-bench                  # run everything
//	datainfra-bench -only e1,e9      # run a subset
//	datainfra-bench -seconds 5       # run each measurement longer
package main

import (
	"crypto/md5"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"datainfra/internal/bootstrap"
	"datainfra/internal/cluster"
	"datainfra/internal/databus"
	"datainfra/internal/kafka"
	"datainfra/internal/metrics"
	"datainfra/internal/ring"
	"datainfra/internal/roexport"
	"datainfra/internal/storage"
	"datainfra/internal/voldemort"
	"datainfra/internal/workload"
)

var (
	duration = flag.Duration("seconds", 2*time.Second, "time budget per measurement")
	only     = flag.String("only", "", "comma-separated experiment ids (e1,e2,e3,e5,e6,e8,e9,e10,e12,e17)")
	tmpRoot  = flag.String("tmp", "", "scratch directory (default: os temp)")
)

func wants(id string) bool {
	if *only == "" {
		return true
	}
	for _, s := range strings.Split(*only, ",") {
		if strings.TrimSpace(strings.ToLower(s)) == id {
			return true
		}
	}
	return false
}

func scratch(name string) string {
	root := *tmpRoot
	if root == "" {
		root = os.TempDir()
	}
	dir, err := os.MkdirTemp(root, "datainfra-bench-"+name+"-")
	if err != nil {
		panic(err)
	}
	return dir
}

func main() {
	flag.Parse()
	fmt.Println("datainfra-bench — reproducing the paper's reported numbers (shape, not absolutes)")
	if wants("e1") {
		e1()
	}
	if wants("e2") {
		e2()
	}
	if wants("e3") {
		e3()
	}
	if wants("e5") {
		e5()
	}
	if wants("e6") {
		e6()
	}
	if wants("e8") {
		e8()
	}
	if wants("e9") {
		e9()
	}
	if wants("e10") {
		e10()
	}
	if wants("e12") {
		e12()
	}
	if wants("e17") {
		e17()
	}
	resilienceReport()
}

// resilienceReport prints the process-wide retry/breaker/fault-injection
// counters accumulated across every experiment: how often transports retried,
// exhausted their budgets, tripped breakers or probed half-open ones. All
// zeros on a healthy in-process run — the table earns its keep when
// experiments run against flaky remote stores. The values come out of the
// metrics registry — the same numbers a /metrics scrape of this process
// would report — rather than any bench-private accounting.
func resilienceReport() {
	t := metrics.Table{Title: "Resilience counters (process-wide retry/breaker/injection totals)",
		Headers: []string{"counter", "value"}}
	for _, s := range metrics.Default.Snapshot() {
		if strings.HasPrefix(s.Name, "resilience_") && s.Value != nil {
			t.AddRow(s.Name, *s.Value)
		}
	}
	t.Render(os.Stdout)
}

// rwClient builds the 3-node in-process read-write cluster.
func rwClient(n, r, w int) *voldemort.Client {
	clus := cluster.Uniform("bench", 3, 24, 0)
	def := (&cluster.StoreDef{Name: "bench", Replication: n, RequiredReads: r, RequiredWrites: w}).WithDefaults()
	strategy, err := ring.NewConsistent(clus, n)
	if err != nil {
		panic(err)
	}
	stores := make(map[int]voldemort.Store)
	for _, node := range clus.Nodes {
		stores[node.ID] = voldemort.NewEngineStore(storage.NewMemory("bench"), node.ID, nil)
	}
	routed, err := voldemort.NewRouted(voldemort.RoutedConfig{Def: def, Cluster: clus, Strategy: strategy, Stores: stores})
	if err != nil {
		panic(err)
	}
	return voldemort.NewClient(routed, nil, 1)
}

func e1() {
	c := rwClient(2, 1, 1)
	const keys = 10000
	val := workload.Value(1, 1024)
	for i := 0; i < keys; i++ {
		c.Put(workload.Key("k", i), val)
	}
	mix := workload.NewMix(0.6, 42)
	gen := workload.NewUniform(keys, 43)
	hist := metrics.NewHistogram()
	meter := metrics.NewMeter()
	deadline := time.Now().Add(*duration)
	for time.Now().Before(deadline) {
		k := workload.Key("k", gen.Next())
		start := time.Now()
		if mix.Read() {
			c.Get(k)
		} else {
			c.Put(k, val)
		}
		hist.Observe(time.Since(start))
		meter.Add(1)
	}
	t := metrics.Table{Title: "E1 Voldemort read-write cluster (§II.C, 60/40 mix)",
		Headers: []string{"metric", "paper", "measured"}}
	t.AddRow("throughput", "~10K qps", fmt.Sprintf("%.0f qps", meter.Rate()))
	t.AddRow("avg latency", "3 ms", hist.Mean().Round(time.Microsecond))
	t.AddRow("p99 latency", "(n/a)", hist.Percentile(99).Round(time.Microsecond))
	t.Render(os.Stdout)
}

func e2() {
	dir := scratch("e2")
	defer os.RemoveAll(dir)
	const entries = 20000
	kvs := make([]storage.KV, entries)
	for i := range kvs {
		kvs[i] = storage.KV{Key: workload.Key("m", i), Value: workload.Value(i, 512)}
	}
	if err := storage.WriteReadOnlyFiles(filepath.Join(dir, "version-1"), kvs); err != nil {
		panic(err)
	}
	eng, err := storage.OpenReadOnly("pymk", dir)
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	c := voldemort.NewClient(voldemort.NewEngineStore(eng, 0, nil), nil, 1)
	gen := workload.NewUniform(entries, 7)
	hist := metrics.NewHistogram()
	meter := metrics.NewMeter()
	deadline := time.Now().Add(*duration)
	for time.Now().Before(deadline) {
		start := time.Now()
		c.Get(workload.Key("m", gen.Next()))
		hist.Observe(time.Since(start))
		meter.Add(1)
	}
	t := metrics.Table{Title: "E2 Voldemort read-only cluster (§II.C, PYMK store)",
		Headers: []string{"metric", "paper", "measured"}}
	t.AddRow("throughput", "~9K reads/s", fmt.Sprintf("%.0f qps", meter.Rate()))
	t.AddRow("avg latency", "<1 ms", hist.Mean().Round(time.Microsecond))
	t.Render(os.Stdout)
}

func e3() {
	c := rwClient(2, 1, 2)
	const members = 2000
	sizes := workload.NewSizeZipfian(64, 64<<10, 0.99, 11)
	for m := 0; m < members; m++ {
		c.Put(workload.Key("member", m), workload.Value(m, sizes.Next()))
	}
	gen := workload.NewFastZipfian(members, 0.99, 13)
	hist := metrics.NewHistogram()
	deadline := time.Now().Add(*duration)
	for time.Now().Before(deadline) {
		start := time.Now()
		c.Get(workload.Key("member", gen.Next()))
		hist.Observe(time.Since(start))
	}
	t := metrics.Table{Title: "E3 Company Follow stores (§II.C, Zipfian value sizes)",
		Headers: []string{"metric", "paper", "measured"}}
	t.AddRow("avg latency (large values)", "4 ms", hist.Mean().Round(time.Microsecond))
	t.AddRow("p99 latency", "(n/a)", hist.Percentile(99).Round(time.Microsecond))
	t.Render(os.Stdout)
}

func e5() {
	relay := databus.NewRelay(databus.RelayConfig{})
	defer relay.Close()
	payload := workload.Value(1, 512)
	for i := 1; i <= 100000; i++ {
		relay.Append(databus.Txn{SCN: int64(i), Events: []databus.Event{
			{Source: "profiles", Key: workload.Key("k", i), Payload: payload}}})
	}
	gen := workload.NewUniform(99000, 5)
	hist := metrics.NewHistogram()
	deadline := time.Now().Add(*duration)
	for time.Now().Before(deadline) {
		start := time.Now()
		relay.Read(int64(gen.Next()), 100, nil)
		hist.Observe(time.Since(start))
	}
	t := metrics.Table{Title: "E5 Databus relay serving path (§III.C)",
		Headers: []string{"metric", "paper", "measured"}}
	t.AddRow("serving latency", "<1 ms", hist.Mean().Round(time.Microsecond))
	t.AddRow("buffered events", "hundreds of millions (tens of GB)", relay.BufferedEvents())
	t.AddRow("buffered bytes", "tens of GB", relay.BufferedBytes())
	t.Render(os.Stdout)
}

func e6() {
	s := bootstrap.New()
	const updates, keys = 200000, 2000
	payload := workload.Value(1, 200)
	for i := 1; i <= updates; i++ {
		s.OnEvent(databus.Event{SCN: int64(i), TxnID: int64(i), EndOfTxn: true,
			Source: "s", Key: workload.Key("k", i%keys), Payload: payload})
	}
	start := time.Now()
	events, _, err := s.ConsolidatedDelta(0, nil)
	if err != nil {
		panic(err)
	}
	deltaTime := time.Since(start)
	t := metrics.Table{Title: "E6 Bootstrap consolidated delta = fast playback (§III.C)",
		Headers: []string{"metric", "full replay", "consolidated delta"}}
	t.AddRow("events delivered", updates, len(events))
	t.AddRow("playback ratio", "1x", fmt.Sprintf("%.0fx fewer", float64(updates)/float64(len(events))))
	t.AddRow("delta time", "-", deltaTime.Round(time.Millisecond))
	t.Render(os.Stdout)
}

func e8() {
	t := metrics.Table{Title: "E8 Relay fanout isolation (§III.C: consumers don't load the source)",
		Headers: []string{"consumers", "source pulls", "events delivered", "events/s"}}
	for _, consumers := range []int{1, 16, 128} {
		src := databus.NewLogSource()
		relay := databus.NewRelay(databus.RelayConfig{})
		payload := workload.Value(1, 256)
		const events = 5000
		for i := 0; i < events; i++ {
			src.Commit(databus.Event{Source: "s", Key: workload.Key("k", i), Payload: payload})
		}
		relay.PullOnce(src, events+10)
		start := time.Now()
		done := make(chan struct{}, consumers)
		for c := 0; c < consumers; c++ {
			go func() {
				var since int64
				for got := 0; got < events; {
					evs, err := relay.Read(since, 1000, nil)
					if err != nil {
						break
					}
					for _, e := range evs {
						since = e.SCN
					}
					got += len(evs)
				}
				done <- struct{}{}
			}()
		}
		for c := 0; c < consumers; c++ {
			<-done
		}
		el := time.Since(start)
		t.AddRow(consumers, relay.SourcePulls(), relay.EventsServed(),
			fmt.Sprintf("%.0f", float64(relay.EventsServed())/el.Seconds()))
		relay.Close()
	}
	t.Render(os.Stdout)
}

func activityEvent(i int) []byte {
	sum := md5.Sum([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
	return []byte(fmt.Sprintf(
		`{"timestamp":%d,"server":"app-%02d.prod.linkedin.com","event":"page_view","member":%d,"session":"%s","page":"/in/profile/%x","referrer":"https://www.linkedin.com/feed/"}`,
		1700000000000+int64(i)*137, i%20, 100000+i*7, hex.EncodeToString(sum[:]), sum[:6]))
}

func e9() {
	dir := scratch("e9")
	defer os.RemoveAll(dir)
	br, err := kafka.NewBroker(0, dir, kafka.BrokerConfig{
		PartitionsPerTopic: 4,
		Log:                kafka.LogConfig{FlushMessages: 1000, FlushInterval: 10 * time.Millisecond},
	})
	if err != nil {
		panic(err)
	}
	defer br.Close()
	p := kafka.NewProducer(br, kafka.ProducerConfig{BatchSize: 200})
	defer p.Close()
	meter := metrics.NewMeter()
	deadline := time.Now().Add(*duration)
	i := 0
	for time.Now().Before(deadline) {
		p.SendTo("activity", i%4, activityEvent(i))
		meter.Add(1)
		i++
	}
	p.Flush()
	t := metrics.Table{Title: "E9 Kafka production rate (§V.D)",
		Headers: []string{"metric", "paper", "measured"}}
	t.AddRow("produce rate", ">50K msgs/s peak (200K projected)", fmt.Sprintf("%.0f msgs/s", meter.Rate()))
	t.Render(os.Stdout)
}

func e10() {
	var set kafka.MessageSet
	for i := 0; i < 200; i++ {
		set.Append(kafka.NewMessage(activityEvent(i)))
	}
	compressed, err := set.Compress()
	if err != nil {
		panic(err)
	}
	t := metrics.Table{Title: "E10 Batch compression (§V.B)",
		Headers: []string{"metric", "paper", "measured"}}
	t.AddRow("bandwidth saved", "~2/3", fmt.Sprintf("%.0f%%", 100*(1-float64(compressed.Len())/float64(set.Len()))))
	t.AddRow("bytes (plain -> gzip)", "-", fmt.Sprintf("%d -> %d", set.Len(), compressed.Len()))
	t.Render(os.Stdout)
}

func e12() {
	dir := scratch("e12")
	defer os.RemoveAll(dir)
	mk := func(id int, sub string) *kafka.Broker {
		b, err := kafka.NewBroker(id, filepath.Join(dir, sub), kafka.BrokerConfig{
			PartitionsPerTopic: 1,
			Log:                kafka.LogConfig{FlushMessages: 1 << 30, FlushInterval: 20 * time.Millisecond},
		})
		if err != nil {
			panic(err)
		}
		return b
	}
	live, offline := mk(0, "live"), mk(1, "offline")
	defer live.Close()
	defer offline.Close()
	producer := kafka.NewProducer(live, kafka.ProducerConfig{BatchSize: 1 << 30, Linger: 20 * time.Millisecond})
	defer producer.Close()
	live.Partitions("e2e")
	mirror := kafka.NewMirror(live, offline, "e2e")
	if err := mirror.Start(); err != nil {
		panic(err)
	}
	defer mirror.Close()
	sc := kafka.NewSimpleConsumer(offline, 1<<20)
	hist := metrics.NewHistogram()
	var off int64
	for i := 0; i < 50; i++ {
		start := time.Now()
		producer.SendTo("e2e", 0, activityEvent(i))
		for {
			offline.FlushAll()
			msgs, err := sc.Consume("e2e", 0, off)
			if err == nil && len(msgs) > 0 {
				off = msgs[len(msgs)-1].NextOffset
				break
			}
			time.Sleep(time.Millisecond)
		}
		hist.Observe(time.Since(start))
	}
	t := metrics.Table{Title: "E12 End-to-end pipeline latency (§V.D, producer→live→mirror→offline)",
		Headers: []string{"metric", "paper", "measured"}}
	t.AddRow("e2e latency", "~10 s (production batch windows)", hist.Mean().Round(time.Millisecond))
	t.AddRow("batching share", "dominated by batch/flush windows", fmt.Sprintf("flush+linger = 40ms of %v", hist.Mean().Round(time.Millisecond)))
	t.Render(os.Stdout)
}

func e17() {
	dir := scratch("e17")
	defer os.RemoveAll(dir)
	clus := cluster.Uniform("ro", 3, 12, 0)
	strategy, _ := ring.NewConsistent(clus, 2)
	const entries = 100000
	kvs := make([]storage.KV, entries)
	for i := range kvs {
		kvs[i] = storage.KV{Key: workload.Key("m", i), Value: workload.Value(i, 128)}
	}
	engines := make([]*storage.ReadOnlyEngine, 3)
	targets := make([]roexport.NodeTarget, 3)
	for i := range engines {
		sd := filepath.Join(dir, fmt.Sprintf("node%d", i))
		e, err := storage.OpenReadOnly("pymk", sd)
		if err != nil {
			panic(err)
		}
		defer e.Close()
		engines[i] = e
		targets[i] = roexport.NodeTarget{NodeID: i, StoreDir: sd, Swap: e.Swap, Rollback: e.Rollback}
	}
	ctl := &roexport.Controller{
		Builder: &roexport.Builder{Cluster: clus, Strategy: strategy, OutDir: filepath.Join(dir, "hdfs"), Store: "pymk", Version: 1},
		Puller:  &roexport.Puller{},
		Targets: targets,
	}
	start := time.Now()
	if err := ctl.Run(kvs); err != nil {
		panic(err)
	}
	cycle := time.Since(start)
	start = time.Now()
	for _, e := range engines {
		e.Rollback()
	}
	rollback := time.Since(start)
	t := metrics.Table{Title: "E17 Read-only data cycle (Fig II.3: build → pull → swap)",
		Headers: []string{"metric", "paper", "measured"}}
	t.AddRow("full cycle (100K entries, 3 nodes, N=2)", "offline, minutes at TB scale", cycle.Round(time.Millisecond))
	t.AddRow("rollback", "instantaneous", rollback.Round(time.Microsecond))
	t.Render(os.Stdout)
}
