// Command kafka-mirror republishes topics from one Kafka cluster into
// another — the §V.D datacenter-local → aggregate topology. It consumes every
// partition of the configured topics from the source brokers, produces into
// the destination, and checkpoints per-partition source offsets to a local
// file (atomic rename) so a restarted mirror resumes where it durably left
// off: at-least-once into the aggregate, never lossy.
//
// Both sides are addressed as static broker lists; the client walks the list
// to find partition leaders and rides source failovers on its retry budget,
// so a replicated source (kafka-broker -replicas 3) needs no coordination
// plane shared with the mirror.
//
//	kafka-mirror -src 127.0.0.1:9092,127.0.0.1:9093,127.0.0.1:9094 \
//	             -dst 127.0.0.1:9292 \
//	             -topics events,orders -checkpoint /var/kafka/mirror.checkpoint \
//	             -origin dc-east -global-order
//
// With -global-order every mirrored message is wrapped in a MirrorEnvelope
// stamping its origin cluster ID and source-log position, so consumers of an
// aggregate fed by several mirrors can totally order the updates to a key
// across datacenters. See DESIGN.md §11 for the guarantees.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"datainfra/internal/kafka"
	"datainfra/internal/metrics"
	"datainfra/internal/trace"
)

func main() {
	var (
		src         = flag.String("src", "127.0.0.1:9092", "comma-separated source broker addresses")
		dst         = flag.String("dst", "127.0.0.1:9292", "comma-separated destination broker addresses")
		topics      = flag.String("topics", "", "comma-separated topics to mirror (every partition of each)")
		checkpoint  = flag.String("checkpoint", "mirror.checkpoint", "per-partition source offset file (atomic rename)")
		origin      = flag.String("origin", "", "origin cluster ID stamped into envelopes (required with -global-order)")
		globalOrder = flag.Bool("global-order", false, "wrap messages in causal-ordering envelopes (DESIGN.md §11)")
		fetchBytes  = flag.Int("fetch-bytes", 1<<20, "per-fetch byte cap at the source")
		fetchWait   = flag.Duration("fetch-wait", 250*time.Millisecond, "source long-poll at the log tail")
		retryPause  = flag.Duration("retry-pause", 10*time.Millisecond, "pause after an absorbed fetch/produce failure")
		dialTimeout = flag.Duration("timeout", 5*time.Second, "broker dial/request timeout")
		metricsAddr = flag.String("metrics", "127.0.0.1:9392", "observability HTTP address (/metrics, /debug/pprof); empty disables")
	)
	flag.Parse()
	if os.Getenv("DATAINFRA_TRACE") != "" {
		trace.Enable(os.Stderr)
	}

	topicList := splitList(*topics)
	if len(topicList) == 0 {
		log.Fatal("kafka-mirror needs -topics")
	}

	if *metricsAddr != "" {
		obsAddr, stopObs, err := metrics.Serve(*metricsAddr, metrics.Default)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		defer stopObs()
		fmt.Printf("observability on http://%s/metrics (pprof at /debug/pprof/)\n", obsAddr)
	}

	srcClient := kafka.NewStaticClient(splitList(*src), *dialTimeout)
	defer srcClient.Close()
	dstClient := kafka.NewStaticClient(splitList(*dst), *dialTimeout)
	defer dstClient.Close()

	mm, err := kafka.NewMirrorMaker(srcClient, dstClient, kafka.MirrorConfig{
		Topics:         topicList,
		CheckpointPath: *checkpoint,
		Origin:         *origin,
		GlobalOrder:    *globalOrder,
		FetchMaxBytes:  *fetchBytes,
		FetchWait:      *fetchWait,
		RetryPause:     *retryPause,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mm.Start(); err != nil {
		log.Fatal(err)
	}
	mode := "verbatim"
	if *globalOrder {
		mode = fmt.Sprintf("global-order origin=%s", *origin)
	}
	fmt.Printf("mirroring %s from [%s] to [%s] (%s, checkpoint: %s)\n",
		strings.Join(topicList, ","), *src, *dst, mode, *checkpoint)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	mm.Close()
	fmt.Printf("mirrored %d messages this run\n", mm.Mirrored())
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
