// Command espresso-server runs a complete Espresso deployment in one
// process — storage nodes, Databus relay, bootstrap server, Helix controller
// — and serves the document API over HTTP:
//
//	PUT    /Music/Album/Cher/Greatest_Hits      {"artist":"Cher",...}
//	GET    /Music/Album/Cher/Greatest_Hits
//	GET    /Music/Song/The_Beatles?query=lyrics:"lucy in the sky"
//	POST   /Music/*/Elton_John                  [{"table":"Album",...},...]
//	DELETE /Music/Album/Cher/Greatest_Hits
//
// The default schema is the paper's Music database (Artist/Album/Song); pass
// -db/-tables/-schemas files to serve your own.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"datainfra/internal/espresso"
	"datainfra/internal/metrics"
	"datainfra/internal/schema"
	"datainfra/internal/trace"
)

func musicDatabase(partitions, replicas int) (*espresso.Database, error) {
	db, err := espresso.NewDatabase(
		espresso.DatabaseSchema{Name: "Music", NumPartitions: partitions, Replicas: replicas},
		[]*espresso.TableSchema{
			{Name: "Artist", KeyParts: []string{"artist"}},
			{Name: "Album", KeyParts: []string{"artist", "album"}},
			{Name: "Song", KeyParts: []string{"artist", "album", "song"}},
		})
	if err != nil {
		return nil, err
	}
	schemas := map[string]string{
		"Artist": `{"name":"Artist","fields":[
			{"name":"name","type":"string"},
			{"name":"genre","type":"string","index":"exact"}]}`,
		"Album": `{"name":"Album","fields":[
			{"name":"artist","type":"string","index":"exact"},
			{"name":"title","type":"string"},
			{"name":"year","type":"long"}]}`,
		"Song": `{"name":"Song","fields":[
			{"name":"title","type":"string"},
			{"name":"lyrics","type":"string","index":"text"},
			{"name":"durationSec","type":"long"}]}`,
	}
	for table, s := range schemas {
		if _, err := db.SetDocumentSchema(table, schema.MustParse(s)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8700", "HTTP listen address")
		metricsAddr = flag.String("metrics", "127.0.0.1:8701", "observability HTTP address (/metrics, /debug/pprof); empty disables")
		nodes       = flag.Int("nodes", 3, "storage nodes")
		partitions  = flag.Int("partitions", 8, "database partitions")
		replicas    = flag.Int("replicas", 2, "replicas per partition")
		cacheBytes  = flag.Int64("cache-bytes", 0, "document read cache budget per node in bytes; 0 disables caching")
	)
	flag.Parse()
	if os.Getenv("DATAINFRA_TRACE") != "" {
		trace.Enable(os.Stderr)
	}

	db, err := musicDatabase(*partitions, *replicas)
	if err != nil {
		log.Fatal(err)
	}
	c, err := espresso.NewCluster(db)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	c.EnableDocCache(*cacheBytes)
	for i := 0; i < *nodes; i++ {
		if _, err := c.AddNode(fmt.Sprintf("node-%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("waiting for %d partitions to master across %d nodes...", *partitions, *nodes)
	if err := c.WaitForMasters(30e9); err != nil {
		log.Fatal(err)
	}
	if *metricsAddr != "" {
		obsAddr, stopObs, err := metrics.Serve(*metricsAddr, metrics.Default)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		defer stopObs()
		fmt.Printf("observability on http://%s/metrics (pprof at /debug/pprof/)\n", obsAddr)
	}
	fmt.Printf("espresso serving database %q on http://%s\n", db.Schema.Name, *listen)
	log.Fatal(http.ListenAndServe(*listen, espresso.NewHandler(c)))
}
