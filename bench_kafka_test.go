// Kafka experiments E9–E14 (see DESIGN.md §3 and EXPERIMENTS.md).
package datainfra

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"datainfra/internal/kafka"
	"datainfra/internal/workload"
	"datainfra/internal/zk"
)

// activityEvent renders a realistic JSON user-activity payload (~230 bytes),
// the data shape of §V.D: shared structure (field names, hostnames, URLs)
// that compresses well, plus per-event entropy (timestamps, member ids and a
// session token) that does not — which is what puts batch compression near
// the paper's "save about 2/3" rather than at an artificial extreme.
func activityEvent(i int) []byte {
	sum := md5.Sum([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
	token := hex.EncodeToString(sum[:])
	return []byte(fmt.Sprintf(
		`{"timestamp":%d,"server":"app-%02d.prod.linkedin.com","event":"page_view","member":%d,"session":"%s","page":"/in/profile/%x","referrer":"https://www.linkedin.com/feed/"}`,
		1700000000000+int64(i)*137, i%20, 100000+i*7, token, sum[:6]))
}

func newBenchBroker(b *testing.B, partitions int) *kafka.Broker {
	b.Helper()
	br, err := kafka.NewBroker(0, b.TempDir(), kafka.BrokerConfig{
		PartitionsPerTopic: partitions,
		Log:                kafka.LogConfig{FlushMessages: 1000, FlushInterval: 10 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { br.Close() })
	return br
}

// BenchmarkE9KafkaProduce reproduces §V.D: LinkedIn's peak production rate
// was >50K messages/s across the cluster, projected to 200K. A single
// in-process broker should comfortably exceed that rate.
func BenchmarkE9KafkaProduce(b *testing.B) {
	br := newBenchBroker(b, 4)
	p := kafka.NewProducer(br, kafka.ProducerConfig{BatchSize: 200})
	defer p.Close()
	payload := activityEvent(1)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.SendTo("activity", i%4, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	p.Flush()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkE9KafkaConsume measures the sequential pull path.
func BenchmarkE9KafkaConsume(b *testing.B) {
	br := newBenchBroker(b, 1)
	p := kafka.NewProducer(br, kafka.ProducerConfig{BatchSize: 200})
	const preload = 200000
	payload := activityEvent(1)
	for i := 0; i < preload; i++ {
		if err := p.SendTo("activity", 0, payload); err != nil {
			b.Fatal(err)
		}
	}
	p.Close()
	br.FlushAll()
	sc := kafka.NewSimpleConsumer(br, 300<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	var off int64
	consumed := 0
	for consumed < b.N {
		msgs, err := sc.Consume("activity", 0, off)
		if err != nil {
			b.Fatal(err)
		}
		if len(msgs) == 0 {
			off = 0 // wrap: re-consume from the head (consumers may rewind)
			continue
		}
		consumed += len(msgs)
		off = msgs[len(msgs)-1].NextOffset
	}
	b.StopTimer()
	b.ReportMetric(float64(consumed)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkE10Compression reproduces §V.B: batch compression saves about
// 2/3 of the network bandwidth on activity-event traffic. The metric
// "bandwidth-ratio" should sit near 0.33.
func BenchmarkE10Compression(b *testing.B) {
	var set kafka.MessageSet
	for i := 0; i < 200; i++ {
		set.Append(kafka.NewMessage(activityEvent(i)))
	}
	b.SetBytes(int64(set.Len()))
	b.ReportAllocs()
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compressed, err := set.Compress()
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(compressed.Len()) / float64(set.Len())
	}
	b.StopTimer()
	b.ReportMetric(ratio, "bandwidth-ratio")
}

// BenchmarkE11ZeroCopy is the §V.B sendfile ablation over identical TCP
// transports: a server streams 1 MB chunks of a Kafka segment file to a
// client either via io.CopyN straight from the file (the kernel can use
// sendfile — no application buffer) or via the 4-copy userspace path (read
// the chunk into an application buffer, then write that buffer).
func BenchmarkE11ZeroCopy(b *testing.B) {
	// Build a segment file through the normal log path.
	dir := b.TempDir()
	l, err := kafka.OpenLog(dir, kafka.LogConfig{FlushMessages: 1000, SegmentBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	payload := workload.Value(1, 1024)
	for i := 0; i < 50000; i++ {
		if _, err := l.Append(kafka.NewMessageSet(payload)); err != nil {
			b.Fatal(err)
		}
	}
	l.Flush()
	const chunk = 1 << 20
	f, _, _, err := l.SectionReader(0, chunk)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()

	serve := func(b *testing.B, zeroCopy bool) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			var one [1]byte
			buf := make([]byte, chunk)
			for {
				if _, err := conn.Read(one[:]); err != nil {
					return // client done
				}
				if zeroCopy {
					// file -> socket directly; io.CopyN over *os.File lets
					// the runtime use sendfile(2) on Linux.
					if _, err := f.Seek(0, io.SeekStart); err != nil {
						return
					}
					if _, err := io.CopyN(conn, f, chunk); err != nil {
						return
					}
				} else {
					// file -> application buffer -> socket: the extra copies
					// of §V.B's four-step description.
					if _, err := f.ReadAt(buf, 0); err != nil {
						return
					}
					if _, err := conn.Write(buf); err != nil {
						return
					}
				}
			}
		}()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		sink := make([]byte, 64<<10)
		b.SetBytes(chunk)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conn.Write([]byte{1}); err != nil {
				b.Fatal(err)
			}
			remaining := chunk
			for remaining > 0 {
				n, err := conn.Read(sink)
				if err != nil {
					b.Fatal(err)
				}
				remaining -= n
			}
		}
	}
	b.Run("sendfile-path", func(b *testing.B) { serve(b, true) })
	b.Run("userspace-copy", func(b *testing.B) { serve(b, false) })
}

// BenchmarkE12PipelineLatency reproduces §V.D's end-to-end pipeline: with
// production-like batching at every hop (producer batches, broker flush
// intervals, mirror poll), a message takes seconds, dominated by batching
// delays, not compute. Absolute numbers scale down with our smaller batch
// windows; the shape (latency ≈ sum of batch/flush windows ≫ single-hop
// compute) is the claim under test.
func BenchmarkE12PipelineLatency(b *testing.B) {
	live, err := kafka.NewBroker(0, b.TempDir(), kafka.BrokerConfig{
		PartitionsPerTopic: 1,
		Log:                kafka.LogConfig{FlushMessages: 1 << 30, FlushInterval: 20 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer live.Close()
	offline, err := kafka.NewBroker(1, b.TempDir(), kafka.BrokerConfig{
		PartitionsPerTopic: 1,
		Log:                kafka.LogConfig{FlushMessages: 1 << 30, FlushInterval: 20 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer offline.Close()
	producer := kafka.NewProducer(live, kafka.ProducerConfig{BatchSize: 1 << 30, Linger: 20 * time.Millisecond})
	defer producer.Close()
	mirror := kafka.NewMirror(live, offline, "e2e")
	if _, err := live.Partitions("e2e"); err != nil {
		b.Fatal(err)
	}
	if err := mirror.Start(); err != nil {
		b.Fatal(err)
	}
	defer mirror.Close()
	sc := kafka.NewSimpleConsumer(offline, 1<<20)
	var off int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := producer.SendTo("e2e", 0, activityEvent(i)); err != nil {
			b.Fatal(err)
		}
		// wait for the message to surface in the offline cluster
		for {
			offline.FlushAll()
			msgs, err := sc.Consume("e2e", 0, off)
			if err == nil && len(msgs) > 0 {
				off = msgs[len(msgs)-1].NextOffset
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		b.ReportMetric(float64(time.Since(start).Milliseconds()), "e2e-ms")
	}
}

// BenchmarkE14Rebalance measures consumer-group rebalance time as members
// join (§V.C: rebalancing is an infrequent event whose cost is amortized).
func BenchmarkE14Rebalance(b *testing.B) {
	for _, members := range []int{2, 8} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			for iter := 0; iter < b.N; iter++ {
				b.StopTimer()
				srv := zk.NewServer()
				br, err := kafka.NewBroker(0, b.TempDir(), kafka.BrokerConfig{PartitionsPerTopic: 16})
				if err != nil {
					b.Fatal(err)
				}
				clients := map[int]kafka.BrokerClient{0: br}
				if _, err := br.Partitions("t"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				gs := make([]*kafka.GroupConsumer, members)
				for m := 0; m < members; m++ {
					g, err := kafka.NewGroupConsumer(srv, "g", fmt.Sprintf("c%d", m), []string{"t"}, clients, kafka.GroupConfig{FromEarliest: true})
					if err != nil {
						b.Fatal(err)
					}
					gs[m] = g
				}
				// wait for a disjoint full cover
				deadline := time.Now().Add(10 * time.Second)
				for {
					total := 0
					for _, g := range gs {
						total += len(g.Owned("t"))
					}
					if total == 16 {
						break
					}
					if time.Now().After(deadline) {
						b.Fatal("rebalance never settled")
					}
					time.Sleep(time.Millisecond)
				}
				b.StopTimer()
				for _, g := range gs {
					g.Close()
				}
				br.Close()
				b.StartTimer()
			}
		})
	}
}
