# Build, vet and test the whole reproduction. Pure stdlib Go ≥ 1.22;
# no external dependencies and nothing to install beyond the toolchain.

GO ?= go

# Packages whose concurrency-heavy paths (quorum fanout, hinted handoff,
# retry/breaker, chaos fault injection, broker protocol, metrics registry)
# get an extra pass under the race detector.
RACE_PKGS = ./internal/resilience ./internal/failure ./internal/voldemort ./internal/kafka ./internal/metrics

.PHONY: all build vet test check test-race bench clean

all: check

build:
	$(GO) build ./...

# vet also enforces the observability conventions: metric names follow
# subsystem_signal_unit and every registered metric is documented in
# OPERATIONS.md.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/metriclint

test:
	$(GO) test ./...

# The tier-1 gate: everything must build, vet clean and pass.
check: build vet test

# Race pass over the resilience/chaos surface. The chaos suites use fixed
# seeds, so failures here are real interleaving bugs, not flaky schedules.
test-race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# The experiment harness (root package) — see EXPERIMENTS.md.
bench:
	$(GO) test -bench=. -benchtime=1x .

clean:
	$(GO) clean ./...
