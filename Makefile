# Build, vet and test the whole reproduction. Pure stdlib Go ≥ 1.22;
# no external dependencies and nothing to install beyond the toolchain.

GO ?= go

# Packages whose concurrency-heavy paths (quorum fanout, hinted handoff,
# retry/breaker, chaos fault injection, broker protocol, metrics registry,
# replication/apply loops, watch dispatch, history recording) get an extra
# pass under the race detector.
RACE_PKGS = ./internal/rpc ./internal/resilience ./internal/failure ./internal/voldemort ./internal/kafka ./internal/metrics ./internal/espresso ./internal/databus ./internal/helix ./internal/zk ./internal/consistency ./internal/storage ./internal/schema ./internal/cache

# Fuzz targets with checked-in seed corpora: binary decoders that must never
# panic on arbitrary bytes.
FUZZ_TARGETS = FuzzUnmarshal/internal/schema FuzzResolve/internal/schema FuzzDecode/internal/kafka

.PHONY: all build vet test check test-race bench bench-json bench-compare bench-smoke verify fuzz-smoke docs-check bins scenarios clean

all: check

build:
	$(GO) build ./...

# vet also enforces the observability conventions: metric names follow
# subsystem_signal_unit and every registered metric is documented in
# OPERATIONS.md.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/metriclint

test:
	$(GO) test ./...

# The tier-1 gate: everything must build, vet clean and pass.
check: build vet test

# Race pass over the resilience/chaos surface. The chaos suites use fixed
# seeds, so failures here are real interleaving bugs, not flaky schedules.
test-race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# The experiment harness (root package) — see EXPERIMENTS.md.
bench:
	$(GO) test -bench=. -benchtime=1x .

# Machine-readable benchmark results: runs the experiment (E*/Ablation),
# hot-path (storage, schema, cache), transport-pipelining (voldemort, kafka,
# databus fan-out) and cached-read (EngineStore, espresso Node) benchmark
# suites with -benchmem and writes BENCH_PR10.json. BENCH_PR5.json and
# BENCH_PR10.json are the frozen baselines bench-compare judges against. The
# schema is documented in EXPERIMENTS.md.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR10.json

# The perf regression gate: re-runs the baseline's hot-path suites (5
# samples each, min taken) and fails on a >20% normalized ns/op regression
# (or any allocs/op increase) of the named benchmarks. benchcmp divides
# deltas by the median ratio across every common benchmark, so a uniformly
# slower CI host cancels out instead of failing the gate. The gated names
# are the seed hot paths that measure reproducibly across hosts (allocs are
# compared strictly for all of them); BenchmarkMemoryGet and the one-shot
# BenchmarkUnmarshal drift ±30-50% between identical-code runs on shared
# hardware and are recorded but not gated. See cmd/benchcmp.
BENCH_GATE = -bench BenchmarkBitcaskGet -bench BenchmarkMarshal -bench BenchmarkUnmarshalReuse
# The databus relay serve path is gated against the BENCH_PR10.json baseline:
# single-page serve (filtered and not; allocs must stay 0 on the unfiltered
# path) and the 1/16/128-consumer fan-out. BenchmarkDatabusAppend drifts
# ±50% between identical-code runs on shared hardware (GC pacing vs the
# 256 KiB chunk churn) and is recorded but not gated, like BenchmarkMemoryGet
# above; its allocs still can't regress silently — append allocations show up
# in the gated fan-out rows' strict allocs/op compare.
DATABUS_GATE = -bench BenchmarkDatabusServePage -bench BenchmarkDatabusFanOut
bench-compare:
	$(GO) run ./cmd/benchjson -out /tmp/bench_current.json -pkgs internal/storage,internal/schema -benchtime 0.5s -count 5
	$(GO) run ./cmd/benchcmp -baseline BENCH_PR5.json -current /tmp/bench_current.json -allocs $(BENCH_GATE)
	$(GO) run ./cmd/benchjson -out /tmp/bench_databus.json -pkgs internal/databus -benchtime 0.3s -count 5
	$(GO) run ./cmd/benchcmp -baseline BENCH_PR10.json -current /tmp/bench_databus.json -allocs $(DATABUS_GATE)

# Compile every benchmark and run each once — benchmarks can't silently rot.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Generator-driven consistency verification: seeded concurrent workloads
# against all four systems under fault injection, histories checked against
# the formal models in internal/consistency. Override the workload with
# VERIFY_SEED=n. See EXPERIMENTS.md.
verify:
	$(GO) test -run 'TestVerify' -count=1 -v .

# Documentation gate: every markdown link and #anchor in the operator-facing
# documents resolves (docscheck), and every registered metric follows the
# naming convention and is documented in OPERATIONS.md (metriclint).
docs-check:
	$(GO) run ./cmd/docscheck
	$(GO) run ./cmd/metriclint

# Every server and tool binary, built where the scenario suite (and an
# operator poking at the stack) expects them.
bins:
	$(GO) build -o bin/ ./cmd/...

# Tier-2 verification: the black-box scenario suite. Real OS processes, real
# kill -9 mid-workload, convergence and no-acked-write-loss checked from the
# outside, SLO reports in scenario-artifacts/. Knobs: SCENARIO_DURATION_SECS,
# SCENARIO_ARTIFACTS. See EXPERIMENTS.md and scenarios/.
scenarios: bins
	./scenarios/run_all.sh

# A short fuzzing pass over every fuzz target (3s each) — enough to replay
# the seed corpus plus a burst of mutated inputs in CI.
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		name=$${t%%/*}; pkg=$${t#*/}; \
		echo "fuzz $$name ./$$pkg"; \
		$(GO) test -run '^$$' -fuzz "^$$name\$$" -fuzztime=3s "./$$pkg" || exit 1; \
	done

clean:
	$(GO) clean ./...
