#!/usr/bin/env bash
# Crash-restart a Voldemort storage node mid-workload. The stack must keep
# serving at R=W=1 through the outage, the restarted node must take hinted
# writes back, and post-run verification must read every acked write at full
# R=W=N quorum — no acked write lost — while the SLO report attributes the
# outage's errors to the node's fault window.
. "$(dirname "$0")/lib.sh"

scenario_start kill_voldemort

sleep "$((DURATION_SECS / 4))"
crash voldemort-1
sleep 5
restart voldemort-1

scenario_finish

require_report '"pass": true' "SLO gate with fault-window accounting"
require_report '"target": "voldemort-1"' "fault window recorded for the crashed node"
scenario_pass
