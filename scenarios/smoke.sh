#!/usr/bin/env bash
# Fault-free baseline: the full topology under the social workload must meet
# the strict SLO — latency budgets included — and converge with zero loss.
. "$(dirname "$0")/lib.sh"

scenario_start smoke -slo-strict
scenario_finish

require_report '"pass": true' "strict SLO gate"
require_report '"faultWindows": \[\]\|"faultWindows": null' "no fault windows in a clean run"
scenario_pass
