#!/usr/bin/env bash
# Run the whole black-box scenario suite sequentially. Any scenario failure
# fails the suite; SLO reports land in $SCENARIO_ARTIFACTS either way.
set -euo pipefail
cd "$(dirname "$0")"

scenarios=(smoke.sh kill_voldemort.sh kill_kafka_leader.sh)
failed=()

for s in "${scenarios[@]}"; do
    if ! bash "$s"; then
        failed+=("$s")
    fi
done

if [ "${#failed[@]}" -gt 0 ]; then
    echo "scenario suite FAILED: ${failed[*]}"
    exit 1
fi
echo "scenario suite passed (${#scenarios[@]} scenarios)"
