#!/usr/bin/env bash
# Crash-restart the Kafka broker process mid-workload — it hosts the leader
# of every partition, so this is a leader kill for all of them at once. After
# restart the log must reopen from its flush checkpoints, the log end must
# reach past every acknowledged offset, and a full black-box drain must
# satisfy the formal replicated-log checker: every acked message present at
# its exact offset, consumption gapless.
. "$(dirname "$0")/lib.sh"

scenario_start kill_kafka_leader

sleep "$((DURATION_SECS / 4))"
crash kafka
sleep 5
restart kafka

scenario_finish

require_report '"pass": true' "SLO gate with fault-window accounting"
require_report '"target": "kafka"' "fault window recorded for the crashed broker set"
scenario_pass
