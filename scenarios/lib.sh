# Shared helpers for the black-box scenario suite.
#
# Every scenario follows the same shape (modeled on dolt's bats suite): start
# the datainfra-cluster driver against freshly built binaries, synchronise on
# its state/ready marker, inject faults with nothing but kill -9 and the
# state files the driver publishes, then judge the run by the driver's exit
# code plus grep assertions on the SLO report JSON.
#
# Knobs (environment):
#   SCENARIO_DURATION_SECS  workload length per scenario (default 30)
#   SCENARIO_ARTIFACTS      where SLO reports land (default ./scenario-artifacts)

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BIN="$ROOT/bin"
DURATION_SECS="${SCENARIO_DURATION_SECS:-30}"
ARTIFACTS="${SCENARIO_ARTIFACTS:-$ROOT/scenario-artifacts}"

NAME=""
DIR=""
REPORT=""
DRIVER_PID=""

# scenario_start <name> [extra driver flags...] — launch the driver in the
# background and wait for the whole topology to pass readiness.
scenario_start() {
    NAME="$1"; shift
    DIR="$(mktemp -d "${TMPDIR:-/tmp}/scenario-$NAME-XXXXXX")"
    mkdir -p "$ARTIFACTS"
    REPORT="$ARTIFACTS/$NAME.slo.json"
    echo "=== scenario $NAME (workdir $DIR, ${DURATION_SECS}s workload)"
    trap scenario_cleanup EXIT
    "$BIN/datainfra-cluster" \
        -dir "$DIR" -bin "$BIN" \
        -duration "${DURATION_SECS}s" -report "$REPORT" \
        "$@" > "$DIR/driver.log" 2>&1 &
    DRIVER_PID=$!

    local i
    for i in $(seq 1 240); do
        [ -f "$DIR/state/ready" ] && return 0
        if ! kill -0 "$DRIVER_PID" 2>/dev/null; then
            echo "FAIL: $NAME: driver exited before the topology was ready"
            cat "$DIR/driver.log"
            exit 1
        fi
        sleep 0.5
    done
    echo "FAIL: $NAME: topology never became ready"
    cat "$DIR/driver.log"
    exit 1
}

# scenario_cleanup — belt and braces for aborted runs: the driver tears its
# processes down on a normal exit, but a failing script must not leak either.
scenario_cleanup() {
    if [ -n "$DRIVER_PID" ] && kill -0 "$DRIVER_PID" 2>/dev/null; then
        kill -9 "$DRIVER_PID" 2>/dev/null || true
    fi
    local pidfile
    for pidfile in "$DIR"/state/*.pid; do
        [ -f "$pidfile" ] || continue
        kill -9 "$(cat "$pidfile")" 2>/dev/null || true
    done
}

# crash <proc> — kill -9 a topology process by its pid state file.
crash() {
    local pid
    pid="$(cat "$DIR/state/$1.pid")"
    kill -9 "$pid"
    echo "crashed $1 (pid $pid) with SIGKILL"
}

# restart <proc> — relaunch a crashed process from its recorded command line,
# exactly as an operator would, and publish the new pid.
restart() {
    local cmd
    cmd="$(cat "$DIR/state/$1.cmd")"
    # shellcheck disable=SC2086 # word splitting is the protocol: args are space-free
    nohup $cmd >> "$DIR/logs/$1.log" 2>&1 &
    echo "$!" > "$DIR/state/$1.pid"
    echo "restarted $1 (pid $!)"
}

# scenario_finish — wait for the driver; its exit code is the primary gate.
scenario_finish() {
    local status=0
    wait "$DRIVER_PID" || status=$?
    DRIVER_PID=""
    echo "--- driver log tail ($NAME)"
    tail -n 12 "$DIR/driver.log"
    if [ "$status" -ne 0 ]; then
        echo "FAIL: $NAME: driver exited $status (SLO gate or setup failure)"
        echo "--- server logs: $DIR/logs"
        exit 1
    fi
}

# require_report <pattern> <why> — grep assertion against the SLO report.
require_report() {
    if ! grep -q "$1" "$REPORT"; then
        echo "FAIL: $NAME: report $REPORT missing $1 ($2)"
        exit 1
    fi
}

# scenario_pass — final banner; workdir is removed on success.
scenario_pass() {
    rm -rf "$DIR"
    trap - EXIT
    echo "PASS: $NAME (report: $REPORT)"
}
