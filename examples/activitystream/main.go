// Activity stream (§V): user-activity events flow through Kafka — batched,
// compressed producers publish to the live cluster; a consumer group fans
// the stream across members for online processing; the embedded mirror
// consumer replicates everything to the offline cluster for batch analysis;
// and the §V.D audit pipeline verifies no event was lost anywhere.
//
//	go run ./examples/activitystream
package main

import (
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"datainfra/internal/kafka"
	"datainfra/internal/zk"
)

func main() {
	tmp, err := os.MkdirTemp("", "activity-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// One broker per datacenter: live (user-facing) and offline (analytics).
	live, err := kafka.NewBroker(0, tmp+"/live", kafka.BrokerConfig{
		PartitionsPerTopic: 4,
		Log:                kafka.LogConfig{FlushMessages: 50, FlushInterval: 5 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()
	offline, err := kafka.NewBroker(1, tmp+"/offline", kafka.BrokerConfig{
		PartitionsPerTopic: 4,
		Log:                kafka.LogConfig{FlushMessages: 50, FlushInterval: 5 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer offline.Close()

	// Producer with batching, gzip compression and the audit emitter.
	audit := kafka.NewAuditEmitter("frontend-1", live, 100*time.Millisecond)
	producer := kafka.NewProducer(live, kafka.ProducerConfig{BatchSize: 25, Compression: true})
	producer.EnableAudit(audit)

	// Online consumers: a 2-member consumer group jointly consuming the
	// topic (point-to-point within the group).
	coord := zk.NewServer()
	brokers := map[int]kafka.BrokerClient{0: live}
	var processed atomic.Int64
	for m := 0; m < 2; m++ {
		g, err := kafka.NewGroupConsumer(coord, "news-relevance", fmt.Sprintf("worker-%d", m),
			[]string{"page_views"}, brokers, kafka.GroupConfig{FromEarliest: true})
		if err != nil {
			log.Fatal(err)
		}
		defer g.Close()
		go func() {
			for range g.Messages() {
				processed.Add(1)
			}
		}()
	}

	// Mirror to the offline datacenter.
	if _, err := live.Partitions("page_views"); err != nil {
		log.Fatal(err)
	}
	mirror := kafka.NewMirror(live, offline, "page_views")
	if err := mirror.Start(); err != nil {
		log.Fatal(err)
	}
	defer mirror.Close()

	// The site generates events.
	const total = 1000
	for i := 0; i < total; i++ {
		payload := fmt.Sprintf(`{"member":%d,"page":"/in/profile","ts":%d}`, 1000+i%100, time.Now().UnixMilli())
		if err := producer.Send("page_views", []byte(fmt.Sprintf("m%d", i%100)), []byte(payload)); err != nil {
			log.Fatal(err)
		}
	}
	if err := producer.Flush(); err != nil {
		log.Fatal(err)
	}

	// Wait for the online group and the mirror to drain.
	deadline := time.Now().Add(10 * time.Second)
	for processed.Load() < total || mirror.Copied() < total {
		if time.Now().After(deadline) {
			log.Fatalf("pipeline stuck: online=%d mirrored=%d", processed.Load(), mirror.Copied())
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("online consumer group processed %d events across 2 workers\n", processed.Load())
	fmt.Printf("mirror replicated %d events to the offline datacenter\n", mirror.Copied())
	fmt.Printf("producer shipped %d bytes after compression\n", producer.BytesOnWire())

	// Audit (§V.D): compare the producer's claimed counts with what reached
	// the brokers.
	producer.Close()
	audit.Close()
	if err := live.FlushAll(); err != nil { // expose the final audit records
		log.Fatal(err)
	}
	auditor := kafka.NewAuditor()
	sc := kafka.NewSimpleConsumer(live, 1<<20)
	parts, _ := live.Partitions("page_views")
	for p := 0; p < parts; p++ {
		var off int64
		for {
			msgs, err := sc.Consume("page_views", p, off)
			if err != nil || len(msgs) == 0 {
				break
			}
			for range msgs {
				auditor.Observe("page_views")
			}
			off = msgs[len(msgs)-1].NextOffset
		}
	}
	claimed, ok, err := auditor.Verify(live)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit: producer claims %d events, broker holds %d — match=%v\n",
		claimed["page_views"], auditor.Received("page_views"), ok)
	if !ok || claimed["page_views"] != total {
		log.Fatal("AUDIT FAILED: data loss detected")
	}
}
