// Site pipeline (Figure I.1): the whole architecture in one process. Profile
// writes land in Espresso (primary storage); Databus fans every change out
// to a Voldemort read cache and the people-search index; user-activity
// events flow through Kafka from the live datacenter to the offline cluster
// via the embedded mirror consumer.
//
//	go run ./examples/sitepipeline
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"datainfra/internal/core"
	"datainfra/internal/espresso"
	"datainfra/internal/schema"
)

func main() {
	db, err := espresso.NewDatabase(
		espresso.DatabaseSchema{Name: "Members", NumPartitions: 8, Replicas: 2},
		[]*espresso.TableSchema{{Name: "Profile", KeyParts: []string{"member"}}})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Profile", schema.MustParse(`{
		"name":"Profile","fields":[
			{"name":"name","type":"string"},
			{"name":"headline","type":"string","index":"text"},
			{"name":"company","type":"string","index":"exact"}]}`)); err != nil {
		log.Fatal(err)
	}

	tmp, err := os.MkdirTemp("", "sitepipeline-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	p, err := core.NewPipeline(core.PipelineConfig{
		Database: db, StorageNodes: 3, KafkaDataDir: tmp,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	fmt.Println("pipeline up: 3 espresso nodes -> databus -> {voldemort cache, search index}; kafka live -> mirror -> offline")

	// Members edit their profiles (writes hit the primary store).
	profiles := map[string]map[string]any{
		"jkreps":   {"name": "Jay Kreps", "headline": "distributed systems and logs", "company": "LinkedIn"},
		"nneha":    {"name": "Neha Narkhede", "headline": "stream processing systems", "company": "LinkedIn"},
		"rsumbaly": {"name": "Roshan Sumbaly", "headline": "serving systems and stores", "company": "LinkedIn"},
	}
	for member, doc := range profiles {
		key := espresso.DocKey{Table: "Profile", Parts: []string{member}}
		if _, err := p.Write(key, doc); err != nil {
			log.Fatal(err)
		}
	}

	// Each profile view is tracked through the Kafka pipeline.
	for i := 0; i < 300; i++ {
		member := []string{"jkreps", "nneha", "rsumbaly"}[i%3]
		payload := fmt.Sprintf(`{"viewer":%d,"viewed":"%s"}`, i, member)
		if err := p.Track("profile_views", []byte(member), []byte(payload)); err != nil {
			log.Fatal(err)
		}
	}
	p.Activity.Flush()
	if err := p.StartMirror("profile_views"); err != nil {
		log.Fatal(err)
	}

	// The Databus subscribers converge.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cacheOK := p.CacheHas(espresso.DocKey{Table: "Profile", Parts: []string{"jkreps"}})
		hits := p.SearchText("headline", "systems")
		if cacheOK && len(hits) == 3 && p.Mirror.Copied() >= 300 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("subscribers lagged: cache=%v search=%d mirrored=%d", cacheOK, len(hits), p.Mirror.Copied())
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("databus-fed search: headline contains 'systems':")
	for _, id := range p.SearchText("headline", "systems") {
		fmt.Printf("  %s\n", id)
	}
	fmt.Println("databus-fed cache: jkreps profile cached =", p.CacheHas(espresso.DocKey{Table: "Profile", Parts: []string{"jkreps"}}))
	fmt.Printf("kafka mirror: %d profile-view events in the offline datacenter\n", p.Mirror.Copied())

	// A profile edit propagates everywhere.
	key := espresso.DocKey{Table: "Profile", Parts: []string{"jkreps"}}
	if _, err := p.Write(key, map[string]any{
		"name": "Jay Kreps", "headline": "logs and storage unified", "company": "Confluent"}); err != nil {
		log.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for len(p.SearchText("headline", "unified")) == 0 {
		if time.Now().After(deadline) {
			log.Fatal("search never absorbed the edit")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("profile edit propagated to the search index:", p.SearchText("headline", "unified"))
}
