// Company Follow (§II.C): the paper's first Voldemort application. Two
// read-write stores form a cache-like layer over the primary database —
// member→companies-followed and company→members-following — both fed by a
// Databus relay so they stay in sync with primary-store commits. Server-side
// list.append transforms update the lists without shipping them back and
// forth.
//
//	go run ./examples/companyfollow
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/databus"
	"datainfra/internal/ring"
	"datainfra/internal/storage"
	"datainfra/internal/voldemort"
)

// followEvent is the change record the primary database emits when a member
// follows a company.
type followEvent struct {
	Member  string `json:"member"`
	Company string `json:"company"`
}

func newStore(name string, clus *cluster.Cluster) (*voldemort.Client, map[int]voldemort.Store) {
	def := (&cluster.StoreDef{Name: name, Replication: 2, RequiredReads: 1, RequiredWrites: 2}).WithDefaults()
	strategy, err := ring.NewConsistent(clus, 2)
	if err != nil {
		log.Fatal(err)
	}
	stores := make(map[int]voldemort.Store)
	for _, n := range clus.Nodes {
		stores[n.ID] = voldemort.NewEngineStore(storage.NewMemory(name), n.ID, nil)
	}
	routed, err := voldemort.NewRouted(voldemort.RoutedConfig{
		Def: def, Cluster: clus, Strategy: strategy, Stores: stores,
	})
	if err != nil {
		log.Fatal(err)
	}
	return voldemort.NewClient(routed, nil, 1), stores
}

func main() {
	clus := cluster.Uniform("follow", 3, 24, 0)
	memberToCompanies, _ := newStore("member-follows", clus)
	companyToMembers, _ := newStore("company-followers", clus)

	// The primary database's transaction log, relayed by Databus.
	primary := databus.NewLogSource()
	relay := databus.NewRelay(databus.RelayConfig{})
	defer relay.Close()
	relay.AttachSource(primary, time.Millisecond)

	// The Databus consumer populates BOTH stores from each follow event —
	// "both stores are fed by a Databus relay and are populated whenever a
	// user follows a new company" (§II.C).
	consumer := databus.ConsumerFuncs{Event: func(e databus.Event) error {
		var f followEvent
		if err := json.Unmarshal(e.Payload, &f); err != nil {
			return err
		}
		companyJSON, _ := json.Marshal(f.Company)
		memberJSON, _ := json.Marshal(f.Member)
		if err := memberToCompanies.PutWithTransform(
			[]byte(f.Member), companyJSON, voldemort.Transform{Name: "list.append"}); err != nil {
			return err
		}
		return companyToMembers.PutWithTransform(
			[]byte(f.Company), memberJSON, voldemort.Transform{Name: "list.append"})
	}}
	client, err := databus.NewClient(databus.ClientConfig{Relay: relay, Consumer: consumer})
	if err != nil {
		log.Fatal(err)
	}
	client.Start()
	defer client.Close()

	// Members follow companies (writes hit the primary DB; the cache layer
	// follows via CDC).
	follows := []followEvent{
		{"jkreps", "LinkedIn"}, {"jkreps", "Confluent"},
		{"nneha", "LinkedIn"}, {"nneha", "Confluent"},
		{"rsumbaly", "LinkedIn"}, {"rsumbaly", "Coursera"},
	}
	for _, f := range follows {
		payload, _ := json.Marshal(f)
		primary.Commit(databus.Event{Source: "follows", Key: []byte(f.Member + "/" + f.Company), Payload: payload})
	}

	// Wait for the pipeline to drain.
	deadline := time.Now().Add(5 * time.Second)
	for client.SCN() < primary.LastSCN() {
		if time.Now().After(deadline) {
			log.Fatal("pipeline did not drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Feed queries: "who does jkreps follow?" / "who follows LinkedIn?"
	show := func(store *voldemort.Client, key string) {
		value, ok, err := store.Get([]byte(key))
		if err != nil || !ok {
			log.Fatalf("get %s: (%v, %v)", key, ok, err)
		}
		fmt.Printf("  %-10s -> %s\n", key, value)
	}
	fmt.Println("member -> companies followed:")
	show(memberToCompanies, "jkreps")
	show(memberToCompanies, "nneha")
	fmt.Println("company -> followers:")
	show(companyToMembers, "LinkedIn")
	show(companyToMembers, "Confluent")

	// Server-side sub-list retrieval (Figure II.2 method 3): first follower
	// only, without shipping the full list.
	sub, _, err := companyToMembers.GetWithTransform([]byte("LinkedIn"),
		voldemort.Transform{Name: "list.slice", Arg: voldemort.SliceArg(0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first follower of LinkedIn (server-side slice): %s\n", sub)
}
