// People You May Know (§II.C): the paper's flagship read-only store. An
// offline ("Hadoop") job computes, for every member, a scored list of
// recommended members; the Figure II.3 pipeline builds sorted index/data
// files, pulls them to each Voldemort node into a versioned directory and
// atomically swaps — with instantaneous rollback if the new model misbehaves.
//
//	go run ./examples/pymk
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/ring"
	"datainfra/internal/roexport"
	"datainfra/internal/storage"
	"datainfra/internal/voldemort"
)

// recommendation is one scored People-You-May-Know entry.
type recommendation struct {
	Member string  `json:"member"`
	Score  float64 `json:"score"`
}

// offlineJob simulates the multi-stage Hadoop link-prediction algorithm:
// for every member it emits a scored recommendation list. Scores change
// between runs as the graph and model iterate (§II.C).
func offlineJob(members int, modelVersion int64) []storage.KV {
	r := rand.New(rand.NewSource(modelVersion))
	kvs := make([]storage.KV, members)
	for i := range kvs {
		recs := make([]recommendation, 3)
		for j := range recs {
			recs[j] = recommendation{
				Member: fmt.Sprintf("member-%d", r.Intn(members)),
				Score:  float64(r.Intn(1000)) / 1000,
			}
		}
		value, _ := json.Marshal(recs)
		kvs[i] = storage.KV{Key: []byte(fmt.Sprintf("member-%d", i)), Value: value}
	}
	return kvs
}

func main() {
	tmp, err := os.MkdirTemp("", "pymk-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// A 3-node Voldemort cluster serving the read-only store with N=2.
	clus := cluster.Uniform("pymk", 3, 24, 0)
	strategy, err := ring.NewConsistent(clus, 2)
	if err != nil {
		log.Fatal(err)
	}
	engines := make([]*storage.ReadOnlyEngine, 3)
	targets := make([]roexport.NodeTarget, 3)
	stores := make(map[int]voldemort.Store)
	for i := range engines {
		dir := filepath.Join(tmp, fmt.Sprintf("node-%d", i))
		e, err := storage.OpenReadOnly("pymk", dir)
		if err != nil {
			log.Fatal(err)
		}
		defer e.Close()
		engines[i] = e
		targets[i] = roexport.NodeTarget{NodeID: i, StoreDir: dir, Swap: e.Swap, Rollback: e.Rollback}
		stores[i] = voldemort.NewEngineStore(e, i, nil)
	}
	def := (&cluster.StoreDef{Name: "pymk", Engine: cluster.EngineReadOnly,
		Replication: 2, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	routed, err := voldemort.NewRouted(voldemort.RoutedConfig{
		Def: def, Cluster: clus, Strategy: strategy, Stores: stores,
	})
	if err != nil {
		log.Fatal(err)
	}
	client := voldemort.NewClient(routed, nil, 1)

	const members = 5000
	run := func(version int) {
		ctl := &roexport.Controller{
			Builder: &roexport.Builder{
				Cluster: clus, Strategy: strategy,
				OutDir: filepath.Join(tmp, "hdfs"), Store: "pymk", Version: version,
			},
			Puller:  &roexport.Puller{Throttle: &roexport.Throttler{BytesPerSec: 64 << 20}},
			Targets: targets,
		}
		start := time.Now()
		if err := ctl.Run(offlineJob(members, int64(version))); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deployed model version %d in %v (throttled pull)\n", version, time.Since(start).Round(time.Millisecond))
	}

	// First model deployment.
	run(1)
	show := func(member string) {
		value, ok, err := client.Get([]byte(member))
		if err != nil || !ok {
			log.Fatalf("get %s: (%v, %v)", member, ok, err)
		}
		fmt.Printf("  %s may know: %s\n", member, value)
	}
	show("member-42")

	// The algorithm iterates; a new version is built and swapped in with no
	// downtime.
	run(2)
	show("member-42")

	// The new model misbehaves — instantaneous rollback on every node.
	start := time.Now()
	for _, e := range engines {
		if err := e.Rollback(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("rolled back all 3 nodes in %v\n", time.Since(start).Round(time.Microsecond))
	show("member-42")

	// Latency check: the paper reports sub-millisecond averages for this
	// store.
	var total time.Duration
	const probes = 2000
	for i := 0; i < probes; i++ {
		k := []byte(fmt.Sprintf("member-%d", rand.Intn(members)))
		start := time.Now()
		if _, _, err := client.Get(k); err != nil {
			log.Fatal(err)
		}
		total += time.Since(start)
	}
	fmt.Printf("average read latency over %d probes: %v (paper: <1 ms)\n",
		probes, (total / probes).Round(time.Microsecond))
}
