// Quickstart: each of the four systems in a few lines — a Voldemort
// key-value store with vector-clock versioning, a Databus change stream, an
// Espresso document put/get, and a Kafka produce/consume round trip.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"datainfra/internal/databus"
	"datainfra/internal/espresso"
	"datainfra/internal/kafka"
	"datainfra/internal/schema"
	"datainfra/internal/storage"
	"datainfra/internal/versioned"
	"datainfra/internal/voldemort"
)

func main() {
	voldemortDemo()
	databusDemo()
	espressoDemo()
	kafkaDemo()
}

func voldemortDemo() {
	fmt.Println("--- Voldemort: versioned key-value store ---")
	store := voldemort.NewEngineStore(storage.NewMemory("profiles"), 0, nil)
	client := voldemort.NewClient(store, nil, 1)

	if err := client.Put([]byte("member:1001"), []byte(`{"name":"Jay"}`)); err != nil {
		log.Fatal(err)
	}
	value, ok, err := client.Get([]byte("member:1001"))
	if err != nil || !ok {
		log.Fatalf("get: (%v, %v)", ok, err)
	}
	fmt.Printf("  get member:1001 -> %s\n", value)

	// applyUpdate: the optimistic read-modify-write loop of Figure II.2.
	for i := 0; i < 3; i++ {
		err := client.ApplyUpdate([]byte("views:1001"), 10, func(cur *versioned.Versioned) ([]byte, error) {
			n := 0
			if cur != nil {
				json.Unmarshal(cur.Value, &n)
			}
			return json.Marshal(n + 1)
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	views, _, _ := client.Get([]byte("views:1001"))
	fmt.Printf("  applyUpdate counter views:1001 -> %s\n", views)
}

func databusDemo() {
	fmt.Println("--- Databus: change data capture ---")
	source := databus.NewLogSource() // the primary DB's transaction log
	relay := databus.NewRelay(databus.RelayConfig{})
	defer relay.Close()
	relay.AttachSource(source, time.Millisecond)

	consumer := databus.ConsumerFuncs{
		Event: func(e databus.Event) error {
			fmt.Printf("  CDC event scn=%d source=%s key=%s\n", e.SCN, e.Source, e.Key)
			return nil
		},
	}
	client, err := databus.NewClient(databus.ClientConfig{Relay: relay, Consumer: consumer})
	if err != nil {
		log.Fatal(err)
	}
	source.Commit(databus.Event{Source: "profiles", Key: []byte("member:1001"), Payload: []byte("v2")})
	time.Sleep(10 * time.Millisecond) // let the relay pull
	if _, err := client.Poll(); err != nil {
		log.Fatal(err)
	}
}

func espressoDemo() {
	fmt.Println("--- Espresso: documents with schemas and secondary indexes ---")
	db, err := espresso.NewDatabase(
		espresso.DatabaseSchema{Name: "Music", NumPartitions: 4, Replicas: 1},
		[]*espresso.TableSchema{{Name: "Album", KeyParts: []string{"artist", "album"}}})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Album", schema.MustParse(`{
		"name":"Album","fields":[
			{"name":"artist","type":"string","index":"exact"},
			{"name":"title","type":"string"},
			{"name":"year","type":"long"}]}`)); err != nil {
		log.Fatal(err)
	}
	node := espresso.NewNode("solo", db, databus.NewLogSource())
	for p := 0; p < 4; p++ {
		node.SetRole(p, true)
	}
	key := espresso.DocKey{Table: "Album", Parts: []string{"Cher", "Greatest_Hits"}}
	if _, err := node.Put(key, map[string]any{"artist": "Cher", "title": "Greatest Hits", "year": int64(1999)}, ""); err != nil {
		log.Fatal(err)
	}
	row, err := node.Get(key)
	if err != nil {
		log.Fatal(err)
	}
	doc, _ := node.Document(row)
	fmt.Printf("  GET /Music/Album/Cher/Greatest_Hits -> %v (etag %s)\n", doc["title"], row.Etag)
}

func kafkaDemo() {
	fmt.Println("--- Kafka: pub/sub over a segment-file log ---")
	dir, err := os.MkdirTemp("", "quickstart-kafka-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	broker, err := kafka.NewBroker(0, dir, kafka.BrokerConfig{PartitionsPerTopic: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()
	producer := kafka.NewProducer(broker, kafka.ProducerConfig{BatchSize: 2})
	producer.SendTo("clicks", 0, []byte(`{"member":1001,"page":"/feed"}`))
	producer.SendTo("clicks", 0, []byte(`{"member":1002,"page":"/jobs"}`))
	producer.Close()
	broker.FlushAll()

	consumer := kafka.NewSimpleConsumer(broker, 1<<20)
	msgs, err := consumer.Consume("clicks", 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range msgs {
		fmt.Printf("  consumed @%d: %s\n", m.NextOffset, m.Payload)
	}
}
