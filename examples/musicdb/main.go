// Music database (§IV.A): the paper's running Espresso example — Artists,
// Albums and Songs addressed hierarchically, a multi-table transaction
// posting a new album with its songs, the secondary-index lyrics query, a
// schema evolution, and a master failover with no data loss. Runs the full
// cluster: storage nodes, Databus replication, Helix mastership.
//
//	go run ./examples/musicdb
package main

import (
	"fmt"
	"log"
	"time"

	"datainfra/internal/espresso"
	"datainfra/internal/schema"
)

func main() {
	db, err := espresso.NewDatabase(
		espresso.DatabaseSchema{Name: "Music", NumPartitions: 8, Replicas: 2},
		[]*espresso.TableSchema{
			{Name: "Artist", KeyParts: []string{"artist"}},
			{Name: "Album", KeyParts: []string{"artist", "album"}},
			{Name: "Song", KeyParts: []string{"artist", "album", "song"}},
		})
	if err != nil {
		log.Fatal(err)
	}
	mustRegister(db, "Artist", `{"name":"Artist","fields":[
		{"name":"name","type":"string"},
		{"name":"genre","type":"string","index":"exact"}]}`)
	mustRegister(db, "Album", `{"name":"Album","fields":[
		{"name":"artist","type":"string","index":"exact"},
		{"name":"title","type":"string"},
		{"name":"year","type":"long"}]}`)
	mustRegister(db, "Song", `{"name":"Song","fields":[
		{"name":"title","type":"string"},
		{"name":"lyrics","type":"string","index":"text"},
		{"name":"durationSec","type":"long"}]}`)

	c, err := espresso.NewCluster(db)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.AddNode(fmt.Sprintf("node-%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.WaitForMasters(15 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster up: 8 partitions, 2 replicas, 3 storage nodes")

	put := func(key espresso.DocKey, doc map[string]any) {
		node := route(c, key)
		if _, err := node.Put(key, doc, ""); err != nil {
			log.Fatalf("put %v: %v", key, err)
		}
	}

	// Singleton and collection documents from the paper's URI examples.
	put(espresso.DocKey{Table: "Artist", Parts: []string{"The_Beatles"}},
		map[string]any{"name": "The Beatles", "genre": "rock"})
	put(espresso.DocKey{Table: "Song", Parts: []string{"The_Beatles", "Sgt_Pepper", "Lucy_in_the_Sky_with_Diamonds"}},
		map[string]any{"title": "Lucy in the Sky with Diamonds",
			"lyrics": "Picture yourself in a boat on a river ... Lucy in the sky with diamonds", "durationSec": int64(208)})
	put(espresso.DocKey{Table: "Song", Parts: []string{"The_Beatles", "Magical_Mystery_Tour", "I_am_the_Walrus"}},
		map[string]any{"title": "I am the Walrus",
			"lyrics": "I am he as you are he ... see how they fly, Lucy in the sky", "durationSec": int64(274)})

	// Multi-table transaction (§IV.A): "post a new album for an artist to
	// the Album table and each of the album's songs to the Song table in a
	// single transaction".
	node := route(c, espresso.DocKey{Table: "Album", Parts: []string{"Elton_John"}})
	_, err = node.Commit([]espresso.Write{
		{Key: espresso.DocKey{Table: "Album", Parts: []string{"Elton_John", "Greatest_Hits"}},
			Doc: map[string]any{"artist": "Elton John", "title": "Greatest Hits", "year": int64(1974)}},
		{Key: espresso.DocKey{Table: "Song", Parts: []string{"Elton_John", "Greatest_Hits", "Rocket_Man"}},
			Doc: map[string]any{"title": "Rocket Man", "lyrics": "I think it's gonna be a long long time", "durationSec": int64(281)}},
		{Key: espresso.DocKey{Table: "Song", Parts: []string{"Elton_John", "Greatest_Hits", "Daniel"}},
			Doc: map[string]any{"title": "Daniel", "lyrics": "Daniel is travelling tonight on a plane", "durationSec": int64(223)}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed album + 2 songs in one transaction")

	// The paper's secondary-index query:
	// GET /Music/Song/The_Beatles?query=lyrics:"Lucy in the sky"
	rows, err := route(c, espresso.DocKey{Table: "Song", Parts: []string{"The_Beatles"}}).
		Query("Song", "The_Beatles", "lyrics", "Lucy in the sky")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query lyrics:\"Lucy in the sky\" matched %d songs:\n", len(rows))
	for _, row := range rows {
		fmt.Printf("  /Music%s\n", row.Key)
	}

	// Schema evolution (§IV.A): add a label field with a default; old
	// documents keep reading.
	if _, err := db.SetDocumentSchema("Album", schema.MustParse(`{"name":"Album","fields":[
		{"name":"artist","type":"string","index":"exact"},
		{"name":"title","type":"string"},
		{"name":"year","type":"long"},
		{"name":"label","type":"string","default":"unknown"}]}`)); err != nil {
		log.Fatal(err)
	}
	key := espresso.DocKey{Table: "Album", Parts: []string{"Elton_John", "Greatest_Hits"}}
	row, err := route(c, key).Get(key)
	if err != nil {
		log.Fatal(err)
	}
	doc, _ := route(c, key).Document(row)
	fmt.Printf("after schema evolution, v%d document reads label=%q\n", row.SchemaVersion, doc["label"])

	// Failover (§IV.B): kill the master of the Beatles' partition; a slave
	// catches up from the Databus relay and takes over.
	beatlesPartition := db.PartitionOf("The_Beatles")
	master, err := c.MasterOf(beatlesPartition)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("killing %s (master of partition %d)...\n", master.Node.ID, beatlesPartition)
	start := time.Now()
	if err := c.KillNode(master.Node.ID); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		m, err := c.MasterOf(beatlesPartition)
		if err == nil && m.Node.ID != master.Node.ID && m.Node.IsMaster(beatlesPartition) {
			fmt.Printf("%s mastered partition %d after %v\n", m.Node.ID, beatlesPartition,
				time.Since(start).Round(time.Millisecond))
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("failover never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The data survived.
	rows, err = route(c, espresso.DocKey{Table: "Song", Parts: []string{"The_Beatles"}}).
		Query("Song", "The_Beatles", "lyrics", "Lucy in the sky")
	if err != nil || len(rows) != 2 {
		log.Fatalf("post-failover query: (%d, %v)", len(rows), err)
	}
	fmt.Println("post-failover query still matches 2 songs — no data lost")
}

func route(c *espresso.Cluster, key espresso.DocKey) *espresso.Node {
	deadline := time.Now().Add(10 * time.Second)
	for {
		node, err := c.Route(key.ResourceID())
		if err == nil {
			return node
		}
		if time.Now().After(deadline) {
			log.Fatalf("routing %v: %v", key, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustRegister(db *espresso.Database, table, s string) {
	if _, err := db.SetDocumentSchema(table, schema.MustParse(s)); err != nil {
		log.Fatal(err)
	}
}
