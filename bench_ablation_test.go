// Ablation benchmarks for the design choices DESIGN.md calls out: producer
// batching (§V.D "publish to the local Kafka brokers in batches"), the
// bitcask fsync policy (durability-vs-throughput), and relay transaction
// batching.
package datainfra

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"datainfra/internal/kafka"
	"datainfra/internal/storage"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
	"datainfra/internal/voldemort"
	"datainfra/internal/workload"
)

// BenchmarkAblationProducerBatching shows why producers batch: per-message
// broker round trips versus amortized message-set appends.
func BenchmarkAblationProducerBatching(b *testing.B) {
	for _, batch := range []int{1, 20, 200} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			br, err := kafka.NewBroker(0, b.TempDir(), kafka.BrokerConfig{
				PartitionsPerTopic: 1,
				Log:                kafka.LogConfig{FlushMessages: 1000},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer br.Close()
			p := kafka.NewProducer(br, kafka.ProducerConfig{BatchSize: batch, Linger: time.Second})
			defer p.Close()
			payload := workload.Value(1, 200)
			b.SetBytes(200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.SendTo("t", 0, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			p.Flush()
		})
	}
}

// BenchmarkAblationFsyncPolicy quantifies the bitcask durability knob:
// fsync on every write versus batched syncs (the BDB-style trade-off the
// read-write stores live with).
func BenchmarkAblationFsyncPolicy(b *testing.B) {
	for _, every := range []int{0, 100, 1000} { // 0 = sync every write
		name := "every-write"
		if every > 0 {
			name = fmt.Sprintf("every-%d", every)
		}
		b.Run(name, func(b *testing.B) {
			eng, err := storage.OpenBitcask("f", b.TempDir(), every)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			val := workload.Value(1, 512)
			b.SetBytes(512)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := vclock.New().Increment(0, int64(i))
				if err := eng.Put(workload.Key("k", i), versioned.With(val, c)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGroupCommit isolates the group-commit win: N concurrent
// writers under the fsync-every-write policy. writers=1 is the degenerate
// case (every Put pays its own fsync); higher writer counts should see
// per-op cost fall as the commit loop folds their records into shared
// fsyncs.
func BenchmarkAblationGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			eng, err := storage.OpenBitcask("g", b.TempDir(), 0)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			val := workload.Value(1, 512)
			var seq atomic.Int64
			b.SetBytes(512)
			prev := runtime.GOMAXPROCS(writers)
			defer runtime.GOMAXPROCS(prev)
			b.SetParallelism(1) // GOMAXPROCS goroutines total
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					c := vclock.New().Increment(0, i)
					if err := eng.Put(workload.Key("k", int(i)), versioned.With(val, c)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkAblationCompaction measures bitcask compaction cost against the
// garbage it reclaims (the log-structured design's maintenance bill).
func BenchmarkAblationCompaction(b *testing.B) {
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		eng, err := storage.OpenBitcask("c", b.TempDir(), 1000)
		if err != nil {
			b.Fatal(err)
		}
		val := workload.Value(1, 512)
		clock := vclock.New()
		// 20k writes over 1k keys: 95% garbage
		for i := 0; i < 20000; i++ {
			clock = clock.Incremented(0, int64(i))
			if err := eng.Put(workload.Key("k", i%1000), versioned.With(val, clock)); err != nil {
				b.Fatal(err)
			}
		}
		before := eng.Size()
		b.StartTimer()
		if err := eng.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		after := eng.Size()
		b.ReportMetric(float64(before-after)/float64(before)*100, "%-reclaimed")
		eng.Close()
		b.StartTimer()
	}
}

// BenchmarkAblationHotSetCache is the hot-set read cache ablation: the
// same Zipfian(0.99) Get stream against a bitcask-backed EngineStore
// with the cache off versus on (budget sized so the hot set is
// resident, warmed to steady state). This is the serving-tier shape
// the paper describes — the top ~1% of keys absorb most reads, so an
// in-memory hot set turns disk reads into near-RAM lookups.
func BenchmarkAblationHotSetCache(b *testing.B) {
	const nkeys = 50_000
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = workload.Key("member", i)
	}
	for _, cfg := range []struct {
		name  string
		bytes int64
	}{{"cache=off", 0}, {"cache=on", 64 << 20}} {
		b.Run(cfg.name, func(b *testing.B) {
			eng, err := storage.OpenBitcask("hot", b.TempDir(), 1000)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			es := voldemort.NewEngineStore(eng, 0, nil).EnableCache(cfg.bytes)
			val := workload.Value(1, 128)
			for i, k := range keys {
				c := vclock.New().Increment(0, int64(i))
				if err := es.Put(k, versioned.With(val, c), nil); err != nil {
					b.Fatal(err)
				}
			}
			z := workload.NewFastZipfian(nkeys, 0.99, 7)
			if cfg.bytes > 0 {
				for i := 0; i < 2*nkeys; i++ {
					if _, err := es.Get(keys[z.Next()], nil); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := es.Get(keys[z.Next()], nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if c := es.Cache(); c != nil {
				st := c.Stats()
				if total := st.Hits + st.Misses; total > 0 {
					b.ReportMetric(float64(st.Hits)/float64(total)*100, "hit%")
				}
			}
		})
	}
}
