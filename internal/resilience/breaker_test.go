package resilience

import (
	"errors"
	"io"
	"testing"
	"time"

	"datainfra/internal/failure"
)

// BreakerSet must satisfy the voldemort failure detector contract.
var _ failure.Detector = (*BreakerSet)(nil)

// fakeClock is a manual clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func breakerCfg(c *fakeClock) BreakerConfig {
	return BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second, Now: c.now, Counters: NewCounters()}
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(breakerCfg(clk))
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("allow %d: %v", i, err)
		}
		b.Record(io.EOF)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("allow while open = %v, want ErrBreakerOpen", err)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(breakerCfg(clk))
	b.Record(io.EOF)
	b.Record(io.EOF)
	b.Record(nil) // streak broken
	b.Record(io.EOF)
	b.Record(io.EOF)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (streak reset by success)", b.State())
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	clk := newFakeClock()
	cfg := breakerCfg(clk)
	b := NewBreaker(cfg)
	for i := 0; i < 3; i++ {
		b.Record(io.EOF)
	}
	clk.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open after cooldown", b.State())
	}
	// One probe slot: first Allow admitted, second rejected.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted, want rejection")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
	if got := cfg.Counters.HalfOpenProbes.Value(); got != 1 {
		t.Fatalf("half-open probes = %d, want 1", got)
	}
	if got := cfg.Counters.BreakerOpens.Value(); got != 1 {
		t.Fatalf("breaker opens = %d, want 1", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(breakerCfg(clk))
	for i := 0; i < 3; i++ {
		b.Record(io.EOF)
	}
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	b.Record(io.EOF)
	if b.State() != Open {
		t.Fatalf("state = %v, want re-opened after failed probe", b.State())
	}
	// And the cooldown starts over.
	clk.advance(time.Second / 2)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("admitted before the new cooldown elapsed")
	}
	clk.advance(time.Second / 2)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after second cooldown: %v", err)
	}
}

func TestBreakerDoClassifiesAppErrorsAsSuccess(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(breakerCfg(clk))
	appErr := errors.New("obsolete version")
	for i := 0; i < 10; i++ {
		err := b.Do(func() error { return appErr }, IsTransient)
		if !errors.Is(err, appErr) {
			t.Fatalf("Do = %v, want the app error surfaced", err)
		}
	}
	if b.State() != Closed {
		t.Fatalf("state = %v; app-level errors must not trip the breaker", b.State())
	}
}

func TestBreakerSetImplementsDetectorSemantics(t *testing.T) {
	clk := newFakeClock()
	s := NewBreakerSet(breakerCfg(clk))
	if !s.Available(7) {
		t.Fatal("fresh node should be available")
	}
	for i := 0; i < 3; i++ {
		s.RecordFailure(7)
	}
	if s.Available(7) {
		t.Fatal("node should be banned after threshold failures")
	}
	if !s.Available(8) {
		t.Fatal("other nodes unaffected")
	}
	clk.advance(time.Second)
	if !s.Available(7) { // half-open probe slot
		t.Fatal("cooldown elapsed: one probe should be admitted")
	}
	s.RecordSuccess(7)
	if !s.Available(7) || !s.Available(7) {
		t.Fatal("node should be fully available after successful probe")
	}
}
