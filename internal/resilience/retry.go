package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Policy describes a bounded retry loop with exponential backoff and full
// jitter (each pause is uniform in [0, cap], the AWS "full jitter" variant,
// which decorrelates competing clients after a shared failure). The zero
// value is usable and means "the defaults below".
type Policy struct {
	// MaxAttempts bounds total attempts including the first; default 4.
	// A value of 1 disables retries.
	MaxAttempts int
	// InitialBackoff caps the first pause; default 5ms.
	InitialBackoff time.Duration
	// MaxBackoff caps every pause; default 500ms.
	MaxBackoff time.Duration
	// Multiplier grows the cap per attempt; default 2.
	Multiplier float64
	// Retryable classifies errors; nil means IsTransient. A non-retryable
	// error aborts the loop and is returned unchanged, preserving the
	// caller's errors.Is matching.
	Retryable func(error) bool
	// Sleep pauses between attempts; nil means a context-aware sleep.
	// Injectable so chaos tests can run on a virtual clock.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand yields uniform samples in [0,1) for jitter; nil uses a process
	// -wide locked source. Injectable for deterministic tests.
	Rand func() float64
	// Counters receives attempt accounting; nil means the package Metrics.
	Counters *Counters
}

var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(1))
)

func defaultRand() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRng.Float64()
}

func ctxSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Retryable == nil {
		p.Retryable = IsTransient
	}
	if p.Sleep == nil {
		p.Sleep = ctxSleep
	}
	if p.Rand == nil {
		p.Rand = defaultRand
	}
	if p.Counters == nil {
		p.Counters = Metrics
	}
	return p
}

// backoff returns the jittered pause before retry number n (n >= 1).
func (p Policy) backoff(n int) time.Duration {
	cap := float64(p.InitialBackoff)
	for i := 1; i < n; i++ {
		cap *= p.Multiplier
		if cap >= float64(p.MaxBackoff) {
			cap = float64(p.MaxBackoff)
			break
		}
	}
	return time.Duration(p.Rand() * cap)
}

// Retry runs fn until it succeeds, returns a non-retryable error, the policy
// is exhausted, or ctx is done. The last error is returned unchanged so
// errors.Is/As matching at call sites keeps working.
func Retry(ctx context.Context, p Policy, fn func() error) error {
	_, err := RetryValue(ctx, p, func() (struct{}, error) { return struct{}{}, fn() })
	return err
}

// RetryValue is Retry for functions that produce a value.
func RetryValue[T any](ctx context.Context, p Policy, fn func() (T, error)) (T, error) {
	p = p.withDefaults()
	var zero T
	var lastErr error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return zero, lastErr
			}
			return zero, err
		}
		p.Counters.inc(p.Counters.Attempts)
		if attempt > 1 {
			p.Counters.inc(p.Counters.Retries)
		}
		v, err := fn()
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !p.Retryable(err) {
			return zero, err
		}
		if attempt == p.MaxAttempts {
			break
		}
		if err := p.Sleep(ctx, p.backoff(attempt)); err != nil {
			return zero, lastErr
		}
	}
	p.Counters.inc(p.Counters.Exhausted)
	return zero, lastErr
}
