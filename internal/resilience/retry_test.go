package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// virtualSleep collects requested pauses without actually sleeping.
type virtualSleep struct {
	pauses []time.Duration
}

func (v *virtualSleep) sleep(_ context.Context, d time.Duration) error {
	v.pauses = append(v.pauses, d)
	return nil
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	vs := &virtualSleep{}
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts:    5,
		InitialBackoff: 10 * time.Millisecond,
		Sleep:          vs.sleep,
		Rand:           func() float64 { return 0.5 },
	}, func() error {
		calls++
		if calls < 3 {
			return io.ErrUnexpectedEOF
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(vs.pauses) != 2 {
		t.Fatalf("pauses = %v, want 2 entries", vs.pauses)
	}
	// Full jitter with Rand=0.5: half of 10ms, then half of 20ms.
	if vs.pauses[0] != 5*time.Millisecond || vs.pauses[1] != 10*time.Millisecond {
		t.Fatalf("pauses = %v, want [5ms 10ms]", vs.pauses)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	perm := errors.New("application says no")
	calls := 0
	err := Retry(context.Background(), Policy{MaxAttempts: 5, Sleep: (&virtualSleep{}).sleep}, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) {
		t.Fatalf("err = %v, want the permanent error unchanged", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRetryExhaustsAndReturnsLastError(t *testing.T) {
	last := fmt.Errorf("boom: %w", io.EOF)
	calls := 0
	err := Retry(context.Background(), Policy{MaxAttempts: 3, Sleep: (&virtualSleep{}).sleep}, func() error {
		calls++
		return last
	})
	if !errors.Is(err, io.EOF) || err.Error() != last.Error() {
		t.Fatalf("err = %v, want last error", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryHonoursContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, Policy{MaxAttempts: 10}, func() error {
		calls++
		cancel() // cancel mid-flight: the sleep must abort the loop
		return io.EOF
	})
	if err == nil {
		t.Fatal("want error after cancellation")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no attempts after cancel)", calls)
	}
}

func TestRetryValueReturnsValue(t *testing.T) {
	attempts := 0
	v, err := RetryValue(context.Background(), Policy{Sleep: (&virtualSleep{}).sleep}, func() (string, error) {
		attempts++
		if attempts == 1 {
			return "", io.ErrUnexpectedEOF
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("got (%q, %v), want (ok, nil)", v, err)
	}
}

func TestBackoffIsCappedAtMax(t *testing.T) {
	p := Policy{InitialBackoff: 10 * time.Millisecond, MaxBackoff: 25 * time.Millisecond,
		Rand: func() float64 { return 1 }}.withDefaults()
	if got := p.backoff(10); got > 25*time.Millisecond {
		t.Fatalf("backoff(10) = %v, want <= 25ms", got)
	}
}

type fakeNetErr struct{}

func (fakeNetErr) Error() string   { return "fake net error" }
func (fakeNetErr) Timeout() bool   { return true }
func (fakeNetErr) Temporary() bool { return true }

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{fakeNetErr{}, true},
		{fmt.Errorf("wrap: %w", fakeNetErr{}), true},
		{ErrInjected, true},
		{ErrInjectedDrop, true},
		{ErrBreakerOpen, false},
		{errors.New("unknown store"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryCounters(t *testing.T) {
	ctr := NewCounters()
	_ = Retry(context.Background(), Policy{MaxAttempts: 3, Counters: ctr, Sleep: (&virtualSleep{}).sleep},
		func() error { return io.EOF })
	if ctr.Attempts.Value() != 3 || ctr.Retries.Value() != 2 || ctr.Exhausted.Value() != 1 {
		t.Fatalf("counters attempts=%d retries=%d exhausted=%d, want 3/2/1",
			ctr.Attempts.Value(), ctr.Retries.Value(), ctr.Exhausted.Value())
	}
}
