package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the root of every injected fault; IsTransient treats it as
// retryable, so wrapped stores and transports exercise the same recovery
// paths a real network failure would.
var ErrInjected = errors.New("resilience: injected fault")

// ErrInjectedDrop marks an injected connection drop.
var ErrInjectedDrop = fmt.Errorf("%w: connection dropped", ErrInjected)

// Injector decides, per named operation, whether to fault. Implementations
// may sleep to model latency spikes and return an error to model failures; a
// nil return means proceed normally.
type Injector interface {
	Inject(op string) error
}

// NopInjector never faults.
type NopInjector struct{}

// Inject returns nil.
func (NopInjector) Inject(string) error { return nil }

// FaultPlan gives the per-operation fault probabilities. All probabilities
// are rolled independently in a fixed order (latency, drop, error) so a
// fixed seed yields a reproducible fault schedule.
type FaultPlan struct {
	// LatencyProb is the chance of stalling for Latency before the verdict.
	LatencyProb float64
	// Latency is the injected stall; default 2ms.
	Latency time.Duration
	// DropProb is the chance of returning ErrInjectedDrop (connection-level
	// failure: the wrapped conn, if any, is also closed).
	DropProb float64
	// ErrProb is the chance of returning Err.
	ErrProb float64
	// Err is the injected error; default ErrInjected.
	Err error
	// ShortWriteProb is the chance a FaultyConn write is cut short (partial
	// write followed by a dropped connection).
	ShortWriteProb float64
}

// DeterministicInjector is the seeded Injector used by the chaos suites: one
// PRNG behind a mutex, an injectable sleeper (virtual clocks in tests), and
// per-operation fault plans. With a fixed seed and a fixed sequence of
// Inject calls, the fault schedule is fully reproducible.
type DeterministicInjector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	sleep  func(time.Duration)
	plans  map[string]FaultPlan
	def    FaultPlan
	hasDef bool
	counts map[string]int64 // fault kind -> occurrences
	armed  bool

	counters *Counters
}

// NewInjector seeds a deterministic injector. It starts armed with no plans,
// i.e. faulting nothing.
func NewInjector(seed int64) *DeterministicInjector {
	return &DeterministicInjector{
		rng:      rand.New(rand.NewSource(seed)),
		sleep:    time.Sleep,
		plans:    make(map[string]FaultPlan),
		counts:   make(map[string]int64),
		armed:    true,
		counters: Metrics,
	}
}

// SetSleep replaces the sleeper (virtual clock in tests).
func (d *DeterministicInjector) SetSleep(fn func(time.Duration)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sleep = fn
}

// Plan sets the fault plan for op ("" is not special; use Default for the
// catch-all).
func (d *DeterministicInjector) Plan(op string, p FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.plans[op] = p
}

// Default sets the catch-all plan used for operations without their own.
func (d *DeterministicInjector) Default(p FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.def, d.hasDef = p, true
}

// Disarm stops all fault injection (heal the network); Arm resumes it.
func (d *DeterministicInjector) Disarm() { d.setArmed(false) }

// Arm (re-)enables fault injection.
func (d *DeterministicInjector) Arm() { d.setArmed(true) }

func (d *DeterministicInjector) setArmed(v bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.armed = v
}

func (d *DeterministicInjector) plan(op string) (FaultPlan, bool) {
	if p, ok := d.plans[op]; ok {
		return p, true
	}
	if d.hasDef {
		return d.def, true
	}
	return FaultPlan{}, false
}

func (d *DeterministicInjector) count(kind string) {
	d.counts[kind]++
	if d.counters != nil {
		d.counters.inc(d.counters.Injected)
	}
}

// Inject implements Injector: rolls latency, then drop, then error.
func (d *DeterministicInjector) Inject(op string) error {
	d.mu.Lock()
	if !d.armed {
		d.mu.Unlock()
		return nil
	}
	p, ok := d.plan(op)
	if !ok {
		d.mu.Unlock()
		return nil
	}
	var stall time.Duration
	if p.LatencyProb > 0 && d.rng.Float64() < p.LatencyProb {
		stall = p.Latency
		if stall == 0 {
			stall = 2 * time.Millisecond
		}
		d.count("latency")
	}
	var err error
	if p.DropProb > 0 && d.rng.Float64() < p.DropProb {
		err = ErrInjectedDrop
		d.count("drop")
	} else if p.ErrProb > 0 && d.rng.Float64() < p.ErrProb {
		err = p.Err
		if err == nil {
			err = ErrInjected
		}
		d.count("error")
	}
	sleep := d.sleep
	d.mu.Unlock()
	if stall > 0 {
		sleep(stall)
	}
	return err
}

// Counts returns a copy of the per-kind fault tallies
// (latency/drop/error/shortwrite).
func (d *DeterministicInjector) Counts() map[string]int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int64, len(d.counts))
	for k, v := range d.counts {
		out[k] = v
	}
	return out
}

// Total returns how many faults have been injected.
func (d *DeterministicInjector) Total() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, v := range d.counts {
		n += v
	}
	return n
}

// String renders the tallies in sorted order (diagnostics).
func (d *DeterministicInjector) String() string {
	c := d.Counts()
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "faults{"
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, c[k])
	}
	return s + "}"
}

// shortWrite decides whether to cut a write of n bytes short; returns how
// many bytes to let through and true when faulting.
func (d *DeterministicInjector) shortWrite(op string, n int) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.armed {
		return n, false
	}
	p, ok := d.plan(op)
	if !ok || p.ShortWriteProb <= 0 || d.rng.Float64() >= p.ShortWriteProb {
		return n, false
	}
	d.count("shortwrite")
	return n / 2, true
}

// FaultyConn wraps a net.Conn with injected connection faults: reads and
// writes consult the injector (latency/drop/error) and writes may be cut
// short — the partial bytes hit the wire, the connection is closed and the
// caller sees an error, modelling a peer dying mid-frame.
type FaultyConn struct {
	net.Conn
	inj *DeterministicInjector
	op  string
}

// WrapConn wraps c so its reads/writes fault according to op's plan.
func (d *DeterministicInjector) WrapConn(op string, c net.Conn) net.Conn {
	return &FaultyConn{Conn: c, inj: d, op: op}
}

// Read injects before delegating; a drop closes the underlying conn.
func (c *FaultyConn) Read(p []byte) (int, error) {
	if err := c.inj.Inject(c.op + ".read"); err != nil {
		c.Conn.Close()
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write injects (including short writes) before delegating.
func (c *FaultyConn) Write(p []byte) (int, error) {
	if err := c.inj.Inject(c.op + ".write"); err != nil {
		c.Conn.Close()
		return 0, err
	}
	if n, fault := c.inj.shortWrite(c.op+".write", len(p)); fault {
		wrote, _ := c.Conn.Write(p[:n])
		c.Conn.Close()
		return wrote, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, wrote, len(p))
	}
	return c.Conn.Write(p)
}

// FaultyListener wraps a listener so accepted connections carry op's fault
// plan — the server-side counterpart of WrapConn.
type FaultyListener struct {
	net.Listener
	inj *DeterministicInjector
	op  string
}

// WrapListener wraps ln; every accepted conn is a FaultyConn for op.
func (d *DeterministicInjector) WrapListener(op string, ln net.Listener) net.Listener {
	return &FaultyListener{Listener: ln, inj: d, op: op}
}

// Accept wraps the accepted connection.
func (l *FaultyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.WrapConn(l.op, c), nil
}
