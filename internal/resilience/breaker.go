package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Allow while the breaker is rejecting
// requests. It is deliberately not transient: retry loops fail fast on it.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// State is a breaker state.
type State int

// Breaker states.
const (
	Closed   State = iota // requests flow, failures are counted
	Open                  // requests are rejected until OpenTimeout passes
	HalfOpen              // a limited number of probes test recovery
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value means the defaults below.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open the breaker;
	// default 5.
	FailureThreshold int
	// OpenTimeout is how long the breaker rejects before probing; default 1s.
	OpenTimeout time.Duration
	// HalfOpenProbes is how many trial requests are admitted (and must all
	// succeed) to close again; default 1. A failure during half-open reopens.
	HalfOpenProbes int
	// Now is the clock; injectable for deterministic tests.
	Now func() time.Time
	// Counters receives open/probe accounting; nil means the package Metrics.
	Counters *Counters
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Counters == nil {
		c.Counters = Metrics
	}
	return c
}

// Breaker is a closed/open/half-open circuit breaker: consecutive failures
// trip it open, open calls fail fast without touching the dependency, and
// after a cooldown a bounded number of probes decide between closing and
// reopening. It protects dependencies the way the Voldemort bannage detector
// protects nodes — the BreakerSet below literally implements that package's
// Detector interface.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when we last tripped
	probes    int       // probes admitted this half-open round
	successes int       // probe successes this half-open round
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State reports the current state (advancing open -> half-open if the
// cooldown has passed).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

// advanceLocked moves open -> half-open once the cooldown elapses.
func (b *Breaker) advanceLocked() {
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		b.state = HalfOpen
		b.probes, b.successes = 0, 0
	}
}

// Allow asks to perform a request: nil means go ahead (and implies the
// caller will Record the outcome), ErrBreakerOpen means fail fast. While
// half-open only HalfOpenProbes callers are admitted per round.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case Closed:
		return nil
	case HalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			b.cfg.Counters.inc(b.cfg.Counters.HalfOpenProbes)
			return nil
		}
		return ErrBreakerOpen
	default:
		return ErrBreakerOpen
	}
}

// Record reports the outcome of an admitted request. Classification of err
// is the caller's business: pass nil for success (application-level errors
// that prove the dependency is reachable should be recorded as success).
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		switch b.state {
		case HalfOpen:
			b.successes++
			if b.successes >= b.cfg.HalfOpenProbes {
				b.state = Closed
				b.failures = 0
			}
		default:
			b.failures = 0
		}
		return
	}
	switch b.state {
	case HalfOpen:
		b.trip()
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.cfg.Counters.inc(b.cfg.Counters.BreakerOpens)
}

// Do runs fn under the breaker: Allow, run, Record. classify (optional)
// downgrades application-level errors to successes for breaker accounting.
func (b *Breaker) Do(fn func() error, classify func(error) bool) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	if err != nil && (classify == nil || classify(err)) {
		b.Record(err)
	} else {
		b.Record(nil)
	}
	return err
}

// BreakerSet keys breakers by node id and implements the voldemort failure
// detector contract (failure.Detector is structural — Available /
// RecordSuccess / RecordFailure), so a routed store can use circuit breaking
// as its bannage policy: threshold trips ban the node, the open timeout
// plays the role of the async probe interval, and half-open probes are the
// recovery pings.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[int]*Breaker
}

// NewBreakerSet builds an empty set; breakers are created on first use.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, m: make(map[int]*Breaker)}
}

// Breaker returns the breaker for node, creating it if needed.
func (s *BreakerSet) Breaker(node int) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[node]
	if !ok {
		b = NewBreaker(s.cfg)
		s.m[node] = b
	}
	return b
}

// Available implements failure.Detector: a node is available when its
// breaker admits a request (half-open admission consumes a probe slot, which
// is exactly the single-inflight recovery semantics we want).
func (s *BreakerSet) Available(node int) bool {
	return s.Breaker(node).Allow() == nil
}

// RecordSuccess implements failure.Detector.
func (s *BreakerSet) RecordSuccess(node int) { s.Breaker(node).Record(nil) }

// RecordFailure implements failure.Detector.
func (s *BreakerSet) RecordFailure(node int) { s.Breaker(node).Record(ErrBreakerOpen) }
