package resilience

import (
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestInjectorDeterministicSchedule(t *testing.T) {
	run := func() ([]error, map[string]int64) {
		inj := NewInjector(42)
		inj.SetSleep(func(time.Duration) {})
		inj.Plan("op", FaultPlan{DropProb: 0.3, ErrProb: 0.3, LatencyProb: 0.2})
		var errs []error
		for i := 0; i < 200; i++ {
			errs = append(errs, inj.Inject("op"))
		}
		return errs, inj.Counts()
	}
	e1, c1 := run()
	e2, c2 := run()
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) || (e1[i] != nil && !errors.Is(e2[i], e1[i])) {
			t.Fatalf("schedule diverged at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("counts diverged: %v vs %v", c1, c2)
	}
	if c1["drop"] == 0 || c1["error"] == 0 || c1["latency"] == 0 {
		t.Fatalf("expected every fault kind to fire over 200 rolls, got %v", c1)
	}
}

func TestInjectorDisarmHealsEverything(t *testing.T) {
	inj := NewInjector(1)
	inj.Default(FaultPlan{DropProb: 1})
	if err := inj.Inject("x"); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("armed injector with DropProb=1 returned %v", err)
	}
	inj.Disarm()
	for i := 0; i < 50; i++ {
		if err := inj.Inject("x"); err != nil {
			t.Fatalf("disarmed injector faulted: %v", err)
		}
	}
	inj.Arm()
	if err := inj.Inject("x"); err == nil {
		t.Fatal("re-armed injector did not fault")
	}
}

func TestInjectorUnplannedOpNeverFaults(t *testing.T) {
	inj := NewInjector(1)
	inj.Plan("risky", FaultPlan{ErrProb: 1})
	for i := 0; i < 20; i++ {
		if err := inj.Inject("safe"); err != nil {
			t.Fatalf("op without a plan faulted: %v", err)
		}
	}
}

func TestFaultyConnShortWriteAndDrop(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	inj := NewInjector(7)
	inj.Plan("conn.write", FaultPlan{ShortWriteProb: 1})
	fc := inj.WrapConn("conn", client)

	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := server.Read(buf)
		done <- buf[:n]
	}()
	payload := []byte("0123456789abcdef")
	n, err := fc.Write(payload)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write not reported: n=%d err=%v", n, err)
	}
	if n >= len(payload) {
		t.Fatalf("wrote %d bytes, want a partial write", n)
	}
	got := <-done
	if len(got) != n {
		t.Fatalf("peer saw %d bytes, writer reported %d", len(got), n)
	}
	// The connection is dead after the fault.
	if _, err := fc.Write(payload); err == nil {
		t.Fatal("write on dropped connection succeeded")
	}
}

func TestFaultyConnReadDrop(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	inj := NewInjector(3)
	inj.Plan("conn.read", FaultPlan{DropProb: 1})
	fc := inj.WrapConn("conn", client)
	if _, err := fc.Read(make([]byte, 8)); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("read = %v, want injected drop", err)
	}
	if !IsTransient(errors.Join(io.EOF)) {
		t.Fatal("sanity: wrapped EOF should stay transient")
	}
}
