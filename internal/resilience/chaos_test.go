package resilience

// End-to-end chaos tests for the resilience layer itself: a fake service
// behind injector + breaker + retry. Invariants: an operation acknowledged by
// Retry was applied exactly once; a hard outage trips the breaker and fails
// fast; healing plus the open timeout closes it again through a half-open
// probe; and the whole run — fault schedule, ack set, counter values — is a
// pure function of the seed.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// chaosService applies ops unless the injector faults first; it counts how
// many times each op was applied so exactly-once claims are checkable.
type chaosService struct {
	inj     *DeterministicInjector
	applied map[string]int
}

func (s *chaosService) do(op string) error {
	if err := s.inj.Inject("svc"); err != nil {
		return err
	}
	s.applied[op]++
	return nil
}

// runChaosRound drives n ops through Retry against a freshly seeded
// injector and returns the acked op names, the apply counts and the fault
// schedule. Sleeping and jitter are pinned so the run is reproducible.
func runChaosRound(seed int64, n int) (acked []string, applied map[string]int, faults map[string]int64) {
	inj := NewInjector(seed)
	inj.SetSleep(func(time.Duration) {})
	inj.Plan("svc", FaultPlan{DropProb: 0.2, ErrProb: 0.15, LatencyProb: 0.1})
	svc := &chaosService{inj: inj, applied: make(map[string]int)}

	p := Policy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
		Rand:        func() float64 { return 0.5 },
		Counters:    NewCounters(),
	}
	for i := 0; i < n; i++ {
		op := fmt.Sprintf("op%d", i)
		if err := Retry(context.Background(), p, func() error { return svc.do(op) }); err == nil {
			acked = append(acked, op)
		}
	}
	return acked, svc.applied, inj.Counts()
}

// TestChaosAckedOpsApplyExactlyOnce: whatever the fault schedule does, an op
// acknowledged by the retry layer was applied exactly once (faults strike
// before the service mutates state, so retries of failed attempts never
// double-apply), and an op never acked may have been applied at most... never
// — this service faults before applying, so unacked ops with exhausted
// budgets applied zero times only if every attempt faulted.
func TestChaosAckedOpsApplyExactlyOnce(t *testing.T) {
	acked, applied, faults := runChaosRound(11, 400)
	if len(acked) == 0 || len(acked) == 400 {
		t.Fatalf("%d/400 acked; chaos run is vacuous", len(acked))
	}
	var total int64
	for _, v := range faults {
		total += v
	}
	if total == 0 {
		t.Fatal("no faults injected; chaos run is vacuous")
	}
	ackedSet := make(map[string]bool, len(acked))
	for _, op := range acked {
		if applied[op] != 1 {
			t.Fatalf("acked op %s applied %d times, want exactly 1", op, applied[op])
		}
		ackedSet[op] = true
	}
	for op, n := range applied {
		if !ackedSet[op] && n != 0 {
			t.Fatalf("unacked op %s applied %d times; service faults before applying", op, n)
		}
	}
}

// TestChaosRunIsDeterministic: two rounds with the same seed agree on every
// observable — acks, apply counts, and the per-kind fault tallies.
func TestChaosRunIsDeterministic(t *testing.T) {
	acked1, applied1, faults1 := runChaosRound(23, 300)
	acked2, applied2, faults2 := runChaosRound(23, 300)
	if len(acked1) != len(acked2) {
		t.Fatalf("ack counts diverged: %d vs %d", len(acked1), len(acked2))
	}
	for i := range acked1 {
		if acked1[i] != acked2[i] {
			t.Fatalf("ack %d diverged: %s vs %s", i, acked1[i], acked2[i])
		}
	}
	for op, n := range applied1 {
		if applied2[op] != n {
			t.Fatalf("apply count for %s diverged: %d vs %d", op, n, applied2[op])
		}
	}
	for kind, n := range faults1 {
		if faults2[kind] != n {
			t.Fatalf("fault tally %s diverged: %d vs %d", kind, n, faults2[kind])
		}
	}
	// And a different seed must actually reshuffle the schedule.
	_, _, faults3 := runChaosRound(24, 300)
	same := true
	for kind, n := range faults1 {
		if faults3[kind] != n {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault tallies; injector ignores the seed")
	}
}

// TestChaosBreakerTripsAndRecovers: a hard outage behind breaker + retry
// trips the breaker (subsequent calls fail fast with ErrBreakerOpen, no
// attempts hitting the service); after the fault heals and the open timeout
// elapses, a half-open probe closes the breaker and traffic flows again.
func TestChaosBreakerTripsAndRecovers(t *testing.T) {
	inj := NewInjector(31)
	inj.SetSleep(func(time.Duration) {})
	inj.Plan("svc", FaultPlan{DropProb: 1}) // total outage
	svc := &chaosService{inj: inj, applied: make(map[string]int)}

	now := time.Unix(0, 0)
	ctr := NewCounters()
	br := NewBreaker(BreakerConfig{
		FailureThreshold: 5,
		OpenTimeout:      time.Second,
		Now:              func() time.Time { return now },
		Counters:         ctr,
	})
	p := Policy{
		MaxAttempts: 2,
		Sleep:       func(context.Context, time.Duration) error { return nil },
		Rand:        func() float64 { return 0.5 },
		Counters:    ctr,
	}
	call := func(op string) error {
		return Retry(context.Background(), p, func() error {
			if err := br.Allow(); err != nil {
				return err
			}
			err := svc.do(op)
			br.Record(err)
			return err
		})
	}

	// Outage: enough calls to trip the threshold.
	for i := 0; i < 5; i++ {
		if err := call(fmt.Sprintf("down%d", i)); err == nil {
			t.Fatalf("call %d succeeded during a total outage", i)
		}
	}
	if br.State() != Open {
		t.Fatalf("breaker %v after %d consecutive failures, want Open", br.State(), 5)
	}
	if err := call("fastfail"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	faultsAtOpen := inj.Total()
	if err := call("fastfail2"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	if inj.Total() != faultsAtOpen {
		t.Fatal("open breaker let attempts through to the service")
	}

	// Heal, let the open timeout pass: half-open probe closes the breaker.
	inj.Disarm()
	now = now.Add(2 * time.Second)
	if err := call("probe"); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if br.State() != Closed {
		t.Fatalf("breaker %v after successful probe, want Closed", br.State())
	}
	if svc.applied["probe"] != 1 {
		t.Fatalf("probe applied %d times, want 1", svc.applied["probe"])
	}
	if ctr.BreakerOpens.Value() == 0 || ctr.HalfOpenProbes.Value() == 0 {
		t.Fatalf("counters missed the trip/probe: opens=%d probes=%d",
			ctr.BreakerOpens.Value(), ctr.HalfOpenProbes.Value())
	}
	if err := call("after"); err != nil || svc.applied["after"] != 1 {
		t.Fatalf("traffic after recovery: (%v, applied %d)", err, svc.applied["after"])
	}
}
