// Package resilience is the shared failure-handling layer for every
// cross-node path in the repository: context-aware retries with exponential
// backoff and full jitter, a closed/open/half-open circuit breaker that
// cooperates with the voldemort failure detector, and a deterministic fault
// injector used by the chaos test suites to prove the paper's recovery
// stories (Voldemort bannage + hinted handoff §II.B, Databus pull-and-retry
// consumers §III.C, Kafka broker reconnects §V) actually hold under
// connection drops, latency spikes, error returns and short writes.
package resilience

import (
	"errors"
	"io"
	"net"

	"datainfra/internal/metrics"
)

// Counters aggregates the resilience-layer event counters. A nil field is
// never written, so callers may populate only what they report.
type Counters struct {
	// Attempts counts every operation attempt made under Retry.
	Attempts *metrics.Counter
	// Retries counts attempts beyond the first (i.e. actual re-tries).
	Retries *metrics.Counter
	// Exhausted counts Retry calls that ran out of attempts.
	Exhausted *metrics.Counter
	// BreakerOpens counts closed/half-open -> open transitions.
	BreakerOpens *metrics.Counter
	// HalfOpenProbes counts trial requests admitted while half-open.
	HalfOpenProbes *metrics.Counter
	// Injected counts faults delivered by injectors wired to these counters.
	Injected *metrics.Counter
}

// NewCounters returns a fully populated counter set.
func NewCounters() *Counters {
	return &Counters{
		Attempts:       metrics.NewCounter(),
		Retries:        metrics.NewCounter(),
		Exhausted:      metrics.NewCounter(),
		BreakerOpens:   metrics.NewCounter(),
		HalfOpenProbes: metrics.NewCounter(),
		Injected:       metrics.NewCounter(),
	}
}

// Metrics is the process-wide default counter set; policies and breakers
// built with a nil Counters field record here, and cmd/datainfra-bench
// prints it after chaos runs. Its counters are registered in the metrics
// registry, so every server's /metrics endpoint exports them alongside the
// system instruments (documented in OPERATIONS.md).
var Metrics = &Counters{
	Attempts: metrics.RegisterCounter("resilience_retry_attempts_total",
		"operation attempts made under Retry (first tries included)"),
	Retries: metrics.RegisterCounter("resilience_retry_retries_total",
		"attempts beyond the first — actual re-tries"),
	Exhausted: metrics.RegisterCounter("resilience_retry_exhausted_total",
		"Retry calls that ran out of attempts and surfaced the error"),
	BreakerOpens: metrics.RegisterCounter("resilience_breaker_opens_total",
		"circuit-breaker transitions to open (closed or half-open origin)"),
	HalfOpenProbes: metrics.RegisterCounter("resilience_breaker_half_open_probes_total",
		"trial requests admitted through a half-open breaker"),
	Injected: metrics.RegisterCounter("resilience_injected_faults_total",
		"faults delivered by injectors wired to the default counters"),
}

// Snapshot returns the default counter values keyed by name, in a stable
// order useful for table rendering: see SnapshotOrder.
func Snapshot() map[string]int64 {
	return map[string]int64{
		"attempts":         Metrics.Attempts.Value(),
		"retries":          Metrics.Retries.Value(),
		"exhausted":        Metrics.Exhausted.Value(),
		"breaker_opens":    Metrics.BreakerOpens.Value(),
		"half_open_probes": Metrics.HalfOpenProbes.Value(),
		"injected_faults":  Metrics.Injected.Value(),
	}
}

// SnapshotOrder is the display order for Snapshot keys.
var SnapshotOrder = []string{
	"attempts", "retries", "exhausted",
	"breaker_opens", "half_open_probes", "injected_faults",
}

func (c *Counters) inc(ctr *metrics.Counter) {
	if c != nil && ctr != nil {
		ctr.Inc()
	}
}

// IsTransient is the default retryability classifier: network/transport
// failures (timeouts, resets, unexpected EOFs) and injected faults are
// transient; anything else — application-level errors such as obsolete
// versions, unknown stores or out-of-range offsets — is permanent and must
// surface to the caller unchanged.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrBreakerOpen) {
		// The breaker said stop; spinning on it within one Retry call cannot
		// help and defeats the fail-fast purpose.
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, ErrInjected)
}
