package databus

import (
	"sort"
	"sync"
	"time"
)

// LogSource is an in-memory transaction log implementing ChangeSource — the
// stand-in for a primary database's replication log (the Oracle/MySQL
// adapters of §III.A). Producers commit transactions; relays pull them. It
// is also what the Espresso storage node's binlog shipper feeds.
type LogSource struct {
	mu      sync.RWMutex
	txns    []Txn
	nextSCN int64
	now     func() time.Time
}

// NewLogSource returns an empty log with SCNs starting at 1.
func NewLogSource() *LogSource {
	return &LogSource{nextSCN: 1, now: time.Now}
}

// Commit appends events as one transaction, assigning the next SCN, and
// returns it. Events get commit timestamps and transaction stamps.
func (s *LogSource) Commit(events ...Event) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	scn := s.nextSCN
	s.nextSCN++
	ts := s.now().UnixMilli()
	for i := range events {
		events[i].SCN = scn
		events[i].TxnID = scn
		events[i].EndOfTxn = i == len(events)-1
		if events[i].Timestamp == 0 {
			events[i].Timestamp = ts
		}
	}
	s.txns = append(s.txns, Txn{SCN: scn, Events: events})
	return scn
}

// Pull implements ChangeSource: transactions with SCN > sinceSCN, replayable
// from any point — the source of truth owns the full log.
func (s *LogSource) Pull(sinceSCN int64, limit int) ([]Txn, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.txns), func(i int) bool { return s.txns[i].SCN > sinceSCN })
	if i >= len(s.txns) {
		return nil, nil
	}
	end := i + limit
	if limit <= 0 || end > len(s.txns) {
		end = len(s.txns)
	}
	out := make([]Txn, end-i)
	copy(out, s.txns[i:end])
	return out, nil
}

// LastSCN returns the newest committed SCN.
func (s *LogSource) LastSCN() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextSCN - 1
}

// Len returns the number of committed transactions.
func (s *LogSource) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.txns)
}

// RelayChain adapts a Relay into a ChangeSource so relays can be chained
// ("connected directly to the database, or to other relays to provide
// replicated availability", §III.C).
type RelayChain struct{ Upstream *Relay }

// Pull reads transactions from the upstream relay buffer.
func (c *RelayChain) Pull(sinceSCN int64, limit int) ([]Txn, error) {
	events, err := c.Upstream.Read(sinceSCN, limit*4, nil)
	if err != nil {
		return nil, err
	}
	var out []Txn
	var cur *Txn
	for _, e := range events {
		if cur == nil || cur.SCN != e.TxnID {
			out = append(out, Txn{SCN: e.TxnID})
			cur = &out[len(out)-1]
		}
		cur.Events = append(cur.Events, e)
	}
	// Drop a trailing incomplete window: it will be re-read next pull.
	if len(out) > 0 {
		last := out[len(out)-1]
		if !last.Events[len(last.Events)-1].EndOfTxn {
			out = out[:len(out)-1]
		}
	}
	return out, nil
}
