package databus

import "datainfra/internal/metrics"

// Process-wide instruments for the Databus hot paths (documented in
// OPERATIONS.md, checked by cmd/metriclint). The relay exposes its buffer
// window and SCN positions — the numbers an operator compares against a
// consumer's checkpoint to read replication lag (§III.C). The client counts
// delivery, bootstrap handoffs and relay failovers, and reports which mode
// its pull loop is in. Gauges are last-writer-wins when several relays or
// clients share a process (tests); production runs one per process.
var (
	mRelayAppended = metrics.RegisterCounter("databus_relay_appended_events_total",
		"change events buffered from sources (after SCN stamping)")
	mRelayServed = metrics.RegisterCounter("databus_relay_served_events_total",
		"events streamed to pulling clients")
	mRelayBufferedEvents = metrics.RegisterGauge("databus_relay_buffered_events",
		"events currently held in the relay window")
	mRelayBufferedBytes = metrics.RegisterGauge("databus_relay_buffered_bytes",
		"bytes currently held in the relay window")
	mRelayLastSCN = metrics.RegisterGauge("databus_relay_last_scn",
		"highest SCN buffered by the relay (the stream head)")
	mRelayMinSCN = metrics.RegisterGauge("databus_relay_min_scn",
		"oldest SCN still buffered; consumers behind this must bootstrap")
	mRelayServedBytes = metrics.RegisterCounter("databus_relay_served_bytes_total",
		"wire-frame bytes streamed to pulling clients")
	mRelayAppendErrors = metrics.RegisterCounter("databus_relay_append_errors_total",
		"transactions rejected on append (non-monotonic SCN from a source)")
	mRelayBufferedChunks = metrics.RegisterGauge("databus_relay_buffered_chunks",
		"encode-once ring segments currently held in the relay window")
	mRelayEvictedChunks = metrics.RegisterCounter("databus_relay_evicted_chunks_total",
		"ring segments dropped whole to keep the window within budget")
	mRelayBlockedReaders = metrics.RegisterGauge("databus_relay_blocked_requests",
		"long-poll reads currently parked on the append broadcast")
	mClientDelivered = metrics.RegisterCounter("databus_client_delivered_events_total",
		"events delivered to consumer callbacks (after retries)")
	mClientBootstraps = metrics.RegisterCounter("databus_client_bootstraps_total",
		"falls off the relay window into the bootstrap service")
	mClientFailovers = metrics.RegisterCounter("databus_client_failovers_total",
		"pull-loop switches to another configured relay")
	mClientSCN = metrics.RegisterGauge("databus_client_scn",
		"latest transaction-boundary checkpoint reached by a client")
	mClientPullState = metrics.RegisterGauge("databus_client_pull_state",
		"pull-loop mode: 0 stopped, 1 streaming from relay, 2 bootstrapping")
)

// Pull-loop states exported by databus_client_pull_state.
const (
	pullStopped      = 0
	pullStreaming    = 1
	pullBootstrapped = 2
)
