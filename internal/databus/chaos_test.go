package databus

// Chaos tests for the client pull loop (§III.C) under a deterministic fault
// schedule: a flaky relay transport and a flaky consumer must not break the
// invariants — checkpoint SCNs strictly increase, delivery order never goes
// backwards, every transaction is delivered at least once, and a hard relay
// outage fails over to a standby relay without losing stream position.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"datainfra/internal/resilience"
)

// faultyReader routes relay reads through a fault injector.
type faultyReader struct {
	inner EventReader
	inj   resilience.Injector
	op    string
}

func (f *faultyReader) ReadBlocking(sinceSCN int64, maxEvents int, fil *Filter, timeout time.Duration) ([]Event, error) {
	if err := f.inj.Inject(f.op); err != nil {
		return nil, err
	}
	return f.inner.ReadBlocking(sinceSCN, maxEvents, fil, timeout)
}

// chaosConsumer records delivery order and checkpoints; OnEvent optionally
// flakes through the injector to exercise the client's redelivery budget.
type chaosConsumer struct {
	mu          sync.Mutex
	seen        []int64 // event SCNs in delivery order
	checkpoints []int64
	flake       resilience.Injector
}

func (c *chaosConsumer) OnEvent(e Event) error {
	if c.flake != nil {
		if err := c.flake.Inject("consumer.onevent"); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.seen = append(c.seen, e.SCN)
	c.mu.Unlock()
	return nil
}

func (c *chaosConsumer) OnCheckpoint(scn int64) {
	c.mu.Lock()
	c.checkpoints = append(c.checkpoints, scn)
	c.mu.Unlock()
}

func (c *chaosConsumer) snapshot() (seen, checkpoints []int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.seen...), append([]int64(nil), c.checkpoints...)
}

func fillRelay(t *testing.T, r *Relay, txns, eventsPerTxn int) {
	t.Helper()
	for i := 1; i <= txns; i++ {
		events := make([]Event, eventsPerTxn)
		for j := range events {
			events[j] = Event{
				Source:  "chaos",
				Key:     []byte(fmt.Sprintf("k%d-%d", i, j)),
				Payload: []byte(fmt.Sprintf("v%d-%d", i, j)),
			}
		}
		if err := r.Append(Txn{SCN: int64(i), Events: events}); err != nil {
			t.Fatal(err)
		}
	}
}

func chaosPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:    5,
		InitialBackoff: 100 * time.Microsecond,
		MaxBackoff:     2 * time.Millisecond,
	}
}

// verifyStream asserts the paper's consumption invariants over a recorded
// run: checkpoints strictly increase and cover every transaction, delivery
// order is SCN-monotone (redelivery of an incomplete transaction after a
// fault may repeat an SCN but never rewinds), and every event SCN was seen.
func verifyStream(t *testing.T, seen, checkpoints []int64, txns, eventsPerTxn int) {
	t.Helper()
	if len(checkpoints) != txns {
		t.Fatalf("%d checkpoints for %d transactions", len(checkpoints), txns)
	}
	for i, scn := range checkpoints {
		if scn != int64(i+1) {
			t.Fatalf("checkpoint %d = SCN %d, want %d: not strictly increasing txn boundaries", i, scn, i+1)
		}
	}
	counts := make(map[int64]int)
	prev := int64(0)
	for i, scn := range seen {
		if scn < prev {
			t.Fatalf("delivery %d rewound: SCN %d after %d", i, scn, prev)
		}
		prev = scn
		counts[scn]++
	}
	for i := 1; i <= txns; i++ {
		if counts[int64(i)] < eventsPerTxn {
			t.Fatalf("txn %d delivered %d of %d events: at-least-once violated", i, counts[int64(i)], eventsPerTxn)
		}
	}
}

func pumpUntilCaughtUp(t *testing.T, c *Client, lastSCN int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.SCN() < lastSCN {
		if _, err := c.Poll(); err != nil {
			t.Fatalf("poll at SCN %d: %v", c.SCN(), err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("stuck at SCN %d of %d", c.SCN(), lastSCN)
		}
	}
}

// TestChaosFlakyRelayAndConsumer drops ~30% of relay reads and fails ~20% of
// first consumer deliveries; the pull loop must still deliver every
// transaction with strictly increasing checkpoints.
func TestChaosFlakyRelayAndConsumer(t *testing.T) {
	const txns, perTxn = 100, 2
	relay := NewRelay(RelayConfig{})
	defer relay.Close()
	fillRelay(t, relay, txns, perTxn)

	inj := resilience.NewInjector(1)
	inj.Plan("relay.read", resilience.FaultPlan{DropProb: 0.3})
	inj.Plan("consumer.onevent", resilience.FaultPlan{ErrProb: 0.2})

	cons := &chaosConsumer{flake: inj}
	c, err := NewClient(ClientConfig{
		Relay:      &faultyReader{inner: relay, inj: inj, op: "relay.read"},
		Consumer:   cons,
		BatchSize:  7, // deliberately splits transactions across batches
		Retries:    10,
		Retry:      chaosPolicy(),
		PollExpiry: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pumpUntilCaughtUp(t, c, txns)
	if inj.Total() == 0 {
		t.Fatal("no faults injected; chaos run is vacuous")
	}
	seen, checkpoints := cons.snapshot()
	verifyStream(t, seen, checkpoints, txns, perTxn)
}

// TestChaosRelayFailoverMidStream hard-fails the primary relay halfway
// through consumption; the client must switch to the standby and finish the
// stream from its checkpoint — no lost or rewound transactions.
func TestChaosRelayFailoverMidStream(t *testing.T) {
	const txns, perTxn = 60, 2
	primary := NewRelay(RelayConfig{})
	standby := NewRelay(RelayConfig{})
	defer primary.Close()
	defer standby.Close()
	fillRelay(t, primary, txns, perTxn)
	fillRelay(t, standby, txns, perTxn)

	inj := resilience.NewInjector(2)
	inj.Plan("primary.read", resilience.FaultPlan{DropProb: 1})
	inj.Disarm() // healthy until mid-stream

	cons := &chaosConsumer{}
	c, err := NewClient(ClientConfig{
		Relay:      &faultyReader{inner: primary, inj: inj, op: "primary.read"},
		Relays:     []EventReader{standby},
		Consumer:   cons,
		BatchSize:  8,
		Retry:      chaosPolicy(),
		PollExpiry: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pumpUntilCaughtUp(t, c, txns/2)
	if c.Failovers() != 0 {
		t.Fatalf("failed over %d times while the primary was healthy", c.Failovers())
	}
	inj.Arm() // primary dies mid-stream
	pumpUntilCaughtUp(t, c, txns)
	if c.Failovers() == 0 {
		t.Fatal("primary outage never triggered a relay failover")
	}

	seen, checkpoints := cons.snapshot()
	verifyStream(t, seen, checkpoints, txns, perTxn)
}
