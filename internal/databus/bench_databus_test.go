package databus_test

// Fan-out benchmarks for the relay serve path (§III.C, E8 isolation): the
// relay must serve hundreds of consumers from one in-memory buffer, so the
// cost that matters is per page *per consumer* — copies, allocations and
// re-encoding that scale with fan-out. BenchmarkDatabusFanOut reports
// ns/page-consumer so 1-vs-128-consumer runs are directly comparable; the
// before/after table lives in EXPERIMENTS.md and the JSON rows in
// BENCH_PR10.json (gated by `make bench-compare`).

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"datainfra/internal/databus"
)

const (
	benchWindow  = 8192 // events buffered in the relay under test
	benchPage    = 256  // events per serve page
	benchPayload = 256  // payload bytes per event
)

// benchRelay builds a relay holding benchWindow single-event transactions
// with benchPayload-byte payloads across two sources (so filtered runs match
// half the window).
func benchRelay(b *testing.B) *databus.Relay {
	b.Helper()
	r := databus.NewRelay(databus.RelayConfig{MaxEvents: 1 << 20})
	b.Cleanup(r.Close)
	payload := make([]byte, benchPayload)
	for i := 0; i < benchWindow; i++ {
		src := "follow"
		if i%2 == 1 {
			src = "profile"
		}
		e := databus.Event{Source: src, Key: []byte(fmt.Sprintf("member:%08d", i)), Payload: payload}
		e.ComputePartition(16)
		if err := r.Append(databus.Txn{SCN: int64(i + 1), Events: []databus.Event{e}}); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// servePage streams one unfiltered page of the relay window to w in the HTTP
// wire framing — the cost one caught-up consumer puts on the relay per poll.
func servePage(b *testing.B, r *databus.Relay, w io.Writer, since int64, f *databus.Filter) int {
	n, _, err := r.StreamTo(w, since, benchPage, f)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkDatabusAppend measures append throughput: SCN stamping plus the
// encode-once wire framing of a 4-event transaction.
func BenchmarkDatabusAppend(b *testing.B) {
	r := databus.NewRelay(databus.RelayConfig{MaxEvents: 1 << 18})
	defer r.Close()
	payload := make([]byte, benchPayload)
	events := make([]databus.Event, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range events {
			events[j] = databus.Event{Source: "follow", Key: []byte("member:00000042"), Payload: payload}
		}
		if err := r.Append(databus.Txn{SCN: int64(i + 1), Events: events}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(4 * (benchPayload + 64)))
}

// BenchmarkDatabusServePage is the single-consumer serve cost: one page of
// the window encoded into the HTTP wire framing.
func BenchmarkDatabusServePage(b *testing.B) {
	r := benchRelay(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		since := int64((i * benchPage) % (benchWindow - benchPage))
		if got := servePage(b, r, io.Discard, since, nil); got < benchPage {
			b.Fatalf("page at %d returned %d events", since, got)
		}
	}
}

// BenchmarkDatabusServePageFiltered is the same page serve through a source
// filter matching half the window (no projection).
func BenchmarkDatabusServePageFiltered(b *testing.B) {
	r := benchRelay(b)
	f := &databus.Filter{Sources: []string{"follow"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		since := int64((i * benchPage) % (benchWindow - 2*benchPage))
		if got := servePage(b, r, io.Discard, since, f); got == 0 {
			b.Fatalf("filtered page at %d returned nothing", since)
		}
	}
}

// BenchmarkDatabusFanOut has N concurrent consumers each page through the
// whole window once per iteration — the E8 shape. ns/page-consumer is the
// per-consumer serve cost; flat across consumers=1..128 means fan-out does
// not amplify per-consumer work.
func BenchmarkDatabusFanOut(b *testing.B) {
	for _, consumers := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("consumers=%d", consumers), func(b *testing.B) {
			r := benchRelay(b)
			pagesPerPass := benchWindow / benchPage
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < consumers; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						var f *databus.Filter
						if c%4 == 3 { // every 4th consumer is filtered
							f = &databus.Filter{Sources: []string{"follow"}}
						}
						since := int64(0)
						for since < benchWindow {
							events, last, err := r.StreamTo(io.Discard, since, benchPage, f)
							if err != nil {
								b.Error(err)
								return
							}
							if events == 0 {
								break
							}
							since = last
						}
					}(c)
				}
				wg.Wait()
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perOp/float64(consumers*pagesPerPass), "ns/page-consumer")
		})
	}
}

// BenchmarkDatabusCatchup is the cold-SCN catch-up: an in-process Client
// starting at SCN 0 consumes the whole window through its delivery loop
// (decode + consumer callbacks + checkpoints). allocs/op divided by
// benchWindow is the client-side per-event allocation cost.
func BenchmarkDatabusCatchup(b *testing.B) {
	r := benchRelay(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int
		cl, err := databus.NewClient(databus.ClientConfig{
			Relay:     r,
			BatchSize: benchPage,
			Consumer: databus.ConsumerFuncs{Event: func(e databus.Event) error {
				got++
				return nil
			}},
			PollExpiry: 0, // non-blocking at tail: default applies but never hit
		})
		if err != nil {
			b.Fatal(err)
		}
		for got < benchWindow {
			n, err := cl.Poll()
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatalf("stalled at %d/%d", got, benchWindow)
			}
		}
		cl.Close()
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perOp/float64(benchWindow), "ns/event")
}
