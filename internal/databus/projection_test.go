package databus

import (
	"encoding/json"
	"testing"
)

func TestFilterProjectionReducesJSONPayloads(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	wide := []byte(`{"name":"Jay","headline":"logs","company":"LinkedIn","summary":"a very long biography field that subscribers rarely need"}`)
	r.Append(Txn{SCN: 1, Events: []Event{{Source: "profiles", Key: []byte("m1"), Payload: wide}}})

	f := &Filter{Project: []string{"name", "company"}}
	events, err := r.Read(0, 10, f)
	if err != nil || len(events) != 1 {
		t.Fatalf("Read = (%d, %v)", len(events), err)
	}
	var got map[string]string
	if err := json.Unmarshal(events[0].Payload, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["name"] != "Jay" || got["company"] != "LinkedIn" {
		t.Fatalf("projected = %v", got)
	}
	if len(events[0].Payload) >= len(wide) {
		t.Fatalf("projection did not shrink payload: %d vs %d", len(events[0].Payload), len(wide))
	}
	// the relay's stored copy is untouched
	full, _ := r.Read(0, 10, nil)
	if string(full[0].Payload) != string(wide) {
		t.Fatal("projection mutated the buffered event")
	}
}

func TestFilterProjectionPassesNonJSON(t *testing.T) {
	f := &Filter{Project: []string{"a"}}
	e := Event{Source: "s", Key: []byte("k"), Payload: []byte{0x01, 0x02, 0x03}}
	out := f.Apply(&e)
	if string(out.Payload) != string(e.Payload) {
		t.Fatal("binary payload mangled by projection")
	}
}

func TestFilterProjectionMissingFields(t *testing.T) {
	f := &Filter{Project: []string{"nope"}}
	e := Event{Source: "s", Key: []byte("k"), Payload: []byte(`{"a":1}`)}
	out := f.Apply(&e)
	var got map[string]any
	if err := json.Unmarshal(out.Payload, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("projected = %v", got)
	}
}

func TestNilFilterApplyClones(t *testing.T) {
	var f *Filter
	e := Event{Source: "s", Key: []byte("k"), Payload: []byte("v")}
	out := f.Apply(&e)
	out.Payload[0] = 'X'
	if e.Payload[0] == 'X' {
		t.Fatal("Apply returned aliased payload")
	}
}
