package databus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datainfra/internal/resilience"
)

// Consumer receives the Databus callbacks (push interface, §III.C). OnEvent
// returning an error triggers the client library's retry logic; OnCheckpoint
// fires at transaction boundaries with the restart SCN.
type Consumer interface {
	OnEvent(e Event) error
	OnCheckpoint(scn int64)
}

// ConsumerFuncs adapts plain functions to Consumer.
type ConsumerFuncs struct {
	Event      func(e Event) error
	Checkpoint func(scn int64)
}

// OnEvent calls Event if set.
func (c ConsumerFuncs) OnEvent(e Event) error {
	if c.Event != nil {
		return c.Event(e)
	}
	return nil
}

// OnCheckpoint calls Checkpoint if set.
func (c ConsumerFuncs) OnCheckpoint(scn int64) {
	if c.Checkpoint != nil {
		c.Checkpoint(scn)
	}
}

// EventReader is the pull surface of a relay (in-process or a remote
// transport): events after sinceSCN, blocking up to timeout when caught up.
type EventReader interface {
	ReadBlocking(sinceSCN int64, maxEvents int, f *Filter, timeout time.Duration) ([]Event, error)
}

// BatchReader is the allocation-frugal pull surface: the batch's Events
// slice (and transport scratch) are reused across calls, while each batch's
// keys and payloads live in a fresh exact-size arena so consumers may retain
// delivered events. Relay and HTTPReader implement it; Client prefers it
// automatically when its reader does.
type BatchReader interface {
	ReadBatchBlocking(sinceSCN int64, maxEvents int, f *Filter, timeout time.Duration, b *Batch) (int64, error)
}

// BootstrapSource serves arbitrary look-back queries when the relay buffer
// no longer covers the client's SCN (§III.C bootstrap server). Catchup
// streams events (consolidated delta or snapshot+replay as it sees fit) and
// returns the SCN at which relay consumption may resume.
type BootstrapSource interface {
	Catchup(sinceSCN int64, f *Filter, fn func(Event) error) (int64, error)
}

// ClientConfig assembles a Databus client.
type ClientConfig struct {
	Relay     EventReader
	Relays    []EventReader   // optional failover relays tried after Relay
	Bootstrap BootstrapSource // optional; without it ErrSCNTooOld is fatal
	Consumer  Consumer
	Filter    *Filter
	FromSCN   int64 // resume point (0 = start of stream)
	BatchSize int   // events per poll; default 512
	Retries   int   // per-event OnEvent retries; default 3
	// Retry shapes the backoff used both between relay read attempts and
	// between OnEvent retries (exponential + full jitter). Zero value =
	// resilience defaults. Its MaxAttempts applies to relay reads; OnEvent
	// attempts are governed by Retries.
	Retry      resilience.Policy
	PollExpiry time.Duration // blocking-read timeout; default 100ms
}

// Client is the Databus client library: it tracks progress in the event
// stream, switches automatically between the relay and the bootstrap
// service, retries failing consumers and checkpoints at transaction
// boundaries (§III.C).
type Client struct {
	cfg    ClientConfig
	relays []EventReader // primary first, then failovers
	active int           // index into relays; touched only by the poll loop
	batch  Batch         // reused decode buffers for BatchReader relays

	scn        atomic.Int64
	bootstraps atomic.Int64
	delivered  atomic.Int64
	failovers  atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	stop   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	err    atomic.Value // last fatal error
}

// NewClient validates the configuration.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Relay == nil {
		return nil, errors.New("databus: client needs a relay")
	}
	if cfg.Consumer == nil {
		return nil, errors.New("databus: client needs a consumer")
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 512
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.PollExpiry == 0 {
		cfg.PollExpiry = 100 * time.Millisecond
	}
	c := &Client{
		cfg:    cfg,
		relays: append([]EventReader{cfg.Relay}, cfg.Relays...),
		stop:   make(chan struct{}),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.scn.Store(cfg.FromSCN)
	return c, nil
}

// SCN returns the client's current checkpoint.
func (c *Client) SCN() int64 { return c.scn.Load() }

// Delivered returns the number of events handed to the consumer.
func (c *Client) Delivered() int64 { return c.delivered.Load() }

// Bootstraps returns how many times the client fell back to the bootstrap
// service.
func (c *Client) Bootstraps() int64 { return c.bootstraps.Load() }

// Failovers returns how many times the client switched to another relay
// after exhausting read retries against the current one.
func (c *Client) Failovers() int64 { return c.failovers.Load() }

// Err returns the fatal error that stopped the client, if any.
func (c *Client) Err() error {
	if v := c.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Start launches the consumption loop.
func (c *Client) Start() {
	c.wg.Add(1)
	go c.run()
}

// Poll runs one synchronous consumption step (for tests and simple apps):
// it reads a batch and delivers it, returning the number of events handled.
func (c *Client) Poll() (int, error) {
	return c.step()
}

func (c *Client) run() {
	defer c.wg.Done()
	mClientPullState.Set(pullStreaming)
	defer mClientPullState.Set(pullStopped)
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		if _, err := c.step(); err != nil {
			c.err.Store(err)
			return
		}
	}
}

func (c *Client) step() (int, error) {
	events, err := c.readBatch()
	switch {
	case errors.Is(err, ErrSCNTooOld):
		return c.bootstrap()
	case errors.Is(err, ErrClosed):
		return 0, err
	case err != nil:
		return 0, fmt.Errorf("databus: relay read: %w", err)
	}
	return c.deliver(events)
}

// readBatch pulls the next batch from the active relay, retrying transient
// failures with backoff + jitter instead of spinning, and failing over to
// the next configured relay once the retry budget against the current one is
// spent (§III.C: consumers pull, so switching relays is just pointing the
// pull loop elsewhere — SCN progress carries over). Non-transient results
// (ErrSCNTooOld, ErrClosed, application errors) surface immediately.
func (c *Client) readBatch() ([]Event, error) {
	var lastErr error
	for i := 0; i < len(c.relays); i++ {
		idx := (c.active + i) % len(c.relays)
		relay := c.relays[idx]
		events, err := resilience.RetryValue(c.ctx, c.cfg.Retry, func() ([]Event, error) {
			if br, ok := relay.(BatchReader); ok {
				_, err := br.ReadBatchBlocking(c.scn.Load(), c.cfg.BatchSize, c.cfg.Filter, c.cfg.PollExpiry, &c.batch)
				return c.batch.Events, err
			}
			return relay.ReadBlocking(c.scn.Load(), c.cfg.BatchSize, c.cfg.Filter, c.cfg.PollExpiry)
		})
		if err == nil || !resilience.IsTransient(err) {
			if idx != c.active {
				c.active = idx
				c.failovers.Add(1)
				mClientFailovers.Inc()
			}
			return events, err
		}
		lastErr = err
	}
	return nil, lastErr
}

func (c *Client) bootstrap() (int, error) {
	if c.cfg.Bootstrap == nil {
		return 0, fmt.Errorf("databus: fell off relay buffer at SCN %d and no bootstrap server configured", c.scn.Load())
	}
	c.bootstraps.Add(1)
	mClientBootstraps.Inc()
	mClientPullState.Set(pullBootstrapped)
	defer mClientPullState.Set(pullStreaming)
	n := 0
	resume, err := c.cfg.Bootstrap.Catchup(c.scn.Load(), c.cfg.Filter, func(e Event) error {
		if err := c.deliverOne(e); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, fmt.Errorf("databus: bootstrap catchup: %w", err)
	}
	c.scn.Store(resume)
	mClientSCN.Set(resume)
	c.cfg.Consumer.OnCheckpoint(resume)
	return n, nil
}

func (c *Client) deliver(events []Event) (int, error) {
	n := 0
	for _, e := range events {
		if err := c.deliverOne(e); err != nil {
			return n, err
		}
		n++
		if e.EndOfTxn {
			// Checkpoint at transaction boundaries: at-least-once with
			// transactional semantics.
			c.scn.Store(e.SCN)
			mClientSCN.Set(e.SCN)
			c.cfg.Consumer.OnCheckpoint(e.SCN)
		}
	}
	return n, nil
}

func (c *Client) deliverOne(e Event) error {
	// Every OnEvent error is retryable up to the budget (the consumer asked
	// for redelivery), but with jittered backoff instead of a tight loop.
	p := c.cfg.Retry
	p.MaxAttempts = c.cfg.Retries + 1
	if p.InitialBackoff == 0 {
		p.InitialBackoff = time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	p.Retryable = func(error) bool { return true }
	err := resilience.Retry(c.ctx, p, func() error { return c.cfg.Consumer.OnEvent(e) })
	if err != nil {
		return fmt.Errorf("databus: consumer failed %d times on SCN %d: %w", c.cfg.Retries+1, e.SCN, err)
	}
	c.delivered.Add(1)
	mClientDelivered.Inc()
	return nil
}

// Close stops the loop (aborting any in-flight backoff sleeps).
func (c *Client) Close() {
	c.once.Do(func() {
		close(c.stop)
		c.cancel()
	})
	c.wg.Wait()
}
