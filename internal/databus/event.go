// Package databus implements the change-data-capture pipeline of §III: a
// Relay captures commit-ordered changes from a source database, serializes
// them into a compact binary form, and buffers them in an in-memory circular
// buffer indexed by sequence number; Databus clients consume the stream with
// transactional semantics, at-least-once delivery and automatic switchover
// to a bootstrap server (package bootstrap) when they fall behind the
// relay's memory.
//
// Observability: the relay's buffer window and SCN positions, and the
// client's delivery/bootstrap/failover activity and pull-loop state, are
// exported through internal/metrics (names under databus_*, catalogued in
// OPERATIONS.md) — subtracting a client's checkpoint gauge from the relay
// head gauge is how an operator reads replication lag.
package databus

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"datainfra/internal/ring"
)

// Op is the kind of change an event carries.
type Op byte

// Change kinds.
const (
	OpUpsert Op = 0
	OpDelete Op = 1
)

// Event is one Databus CDC event: a sequence number in the commit order of
// the source database, metadata, and the serialized change payload (§III.C).
type Event struct {
	SCN           int64  // commit sequence number, strictly increasing per source DB
	TxnID         int64  // all events of one transaction share this
	EndOfTxn      bool   // marks the transaction window boundary
	Source        string // logical source, e.g. "member_profile"
	Op            Op
	Key           []byte
	Payload       []byte // schema-encoded row image (empty for deletes)
	SchemaVersion int
	Timestamp     int64 // commit time, ms
	Partition     int   // hash partition of Key, precomputed for server-side filters
}

// ComputePartition stamps the event's partition for an N-way partitioning.
func (e *Event) ComputePartition(numPartitions int) {
	e.Partition = ring.Hash(e.Key, numPartitions)
}

// SizeBytes approximates the buffered footprint of the event.
func (e *Event) SizeBytes() int {
	return 48 + len(e.Source) + len(e.Key) + len(e.Payload)
}

// Clone deep-copies the event.
func (e *Event) Clone() Event {
	out := *e
	out.Key = append([]byte(nil), e.Key...)
	out.Payload = append([]byte(nil), e.Payload...)
	return out
}

// Txn is an atomic group of events sharing one commit (§III.B "transaction
// boundaries": an insert into a mailbox and the unread-count update must be
// seen together).
type Txn struct {
	SCN    int64
	Events []Event
}

// errors
var (
	// ErrSCNTooOld means the requested sequence number has fallen off the
	// relay's circular buffer: the client must bootstrap.
	ErrSCNTooOld = errors.New("databus: SCN no longer in relay buffer")
	// ErrNonMonotonicSCN guards the commit-order invariant on append.
	ErrNonMonotonicSCN = errors.New("databus: SCN not increasing")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("databus: closed")
)

// Binary event codec (length-delimited, used by the HTTP/socket transports,
// the relay's chunked ring and the bootstrap log). The encoding has a fixed
// 45-byte header followed by the variable source/key/payload sections, so
// the relay can peek at filter-relevant fields (source, partition, flags)
// without decoding — see frameMatch.

// Fixed offsets inside an encoded event (not counting the u32 frame-length
// prefix a wire frame carries in front of it).
const (
	evOffFlags     = 24 // after SCN, TxnID, Timestamp
	evOffPartition = 29 // after flags + schema version
	evOffSrcLen    = 33
	evOffSrc       = 37
	evFixedBytes   = 45 // header + the three section length words
	frameHdrBytes  = 4  // u32 frame-length prefix
)

// encodedSize is the exact byte length of the event's encoding.
func (e *Event) encodedSize() int {
	return evFixedBytes + len(e.Source) + len(e.Key) + len(e.Payload)
}

// appendEvent appends the event's encoding to buf (no length prefix).
func appendEvent(buf []byte, e *Event) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.SCN))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.TxnID))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Timestamp))
	flags := byte(e.Op)
	if e.EndOfTxn {
		flags |= 0x80
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.SchemaVersion))
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.Partition))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Source)))
	buf = append(buf, e.Source...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Key)))
	buf = append(buf, e.Key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Payload)))
	buf = append(buf, e.Payload...)
	return buf
}

// appendEventFrame appends the wire frame — u32 length + encoding — to buf.
// This is the form the relay ring stores, byte-identical to what the HTTP
// transport puts on the wire, so serving is a straight copy.
func appendEventFrame(buf []byte, e *Event) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.encodedSize()))
	return appendEvent(buf, e)
}

// MarshalBinary encodes the event.
func (e *Event) MarshalBinary() ([]byte, error) {
	return appendEvent(make([]byte, 0, e.encodedSize()), e), nil
}

// UnmarshalBinary decodes an event written by MarshalBinary.
func (e *Event) UnmarshalBinary(data []byte) error {
	return decodeEvent(e, data, nil, nil)
}

// decodeEvent decodes into e. With a non-nil arena, Key and Payload are
// sub-sliced out of it instead of individually allocated — the arena must
// have enough spare capacity for both, or earlier events' slices would be
// invalidated by reallocation. With a non-nil intern map, source names are
// deduplicated across events (a stream carries few distinct sources).
func decodeEvent(e *Event, data []byte, arena *[]byte, intern map[string]string) error {
	r := breader{b: data}
	var err error
	if e.SCN, err = r.i64(); err != nil {
		return err
	}
	if e.TxnID, err = r.i64(); err != nil {
		return err
	}
	if e.Timestamp, err = r.i64(); err != nil {
		return err
	}
	flags, err := r.u8()
	if err != nil {
		return err
	}
	e.Op = Op(flags & 0x7f)
	e.EndOfTxn = flags&0x80 != 0
	sv, err := r.i32()
	if err != nil {
		return err
	}
	e.SchemaVersion = sv
	if e.Partition, err = r.i32(); err != nil {
		return err
	}
	src, err := r.blob()
	if err != nil {
		return err
	}
	if intern != nil {
		s, ok := intern[string(src)]
		if !ok {
			s = string(src)
			intern[s] = s
		}
		e.Source = s
	} else {
		e.Source = string(src)
	}
	if e.Key, err = r.blob(); err != nil {
		return err
	}
	e.Key = arenaCopy(arena, e.Key)
	if e.Payload, err = r.blob(); err != nil {
		return err
	}
	e.Payload = arenaCopy(arena, e.Payload)
	if len(r.b) != 0 {
		return fmt.Errorf("databus: %d trailing bytes in event", len(r.b))
	}
	return nil
}

// arenaCopy copies b into the arena (or a fresh allocation when arena is
// nil) and returns the owned copy.
func arenaCopy(arena *[]byte, b []byte) []byte {
	if arena == nil {
		return append([]byte(nil), b...)
	}
	start := len(*arena)
	*arena = append(*arena, b...)
	return (*arena)[start:len(*arena):len(*arena)]
}

// frameMatch evaluates the filter against an encoded event without decoding
// or allocating: source and partition sit at known offsets.
func frameMatch(f *Filter, ev []byte) bool {
	if f == nil {
		return true
	}
	if len(f.Sources) > 0 {
		n := int(binary.BigEndian.Uint32(ev[evOffSrcLen:]))
		src := ev[evOffSrc : evOffSrc+n]
		ok := false
		for _, s := range f.Sources {
			if s == string(src) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Partitions != nil {
		p := int(int32(binary.BigEndian.Uint32(ev[evOffPartition:])))
		ok := false
		for _, q := range f.Partitions {
			if q == p {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// frameBodyBytes is the key+payload byte count of an encoded event — the
// arena space a batch decode of it needs.
func frameBodyBytes(ev []byte) int {
	n := int(binary.BigEndian.Uint32(ev[evOffSrcLen:]))
	return len(ev) - evFixedBytes - n
}

// Batch is a reusable container for client-side batch reads. The Events
// slice and internal scratch are recycled across calls; the byte arena
// backing each batch's keys and payloads is allocated fresh per call and
// never reused, so consumers may retain any Event (and its slices) — only
// the Events slice header itself is invalidated by the next read.
type Batch struct {
	Events []Event

	intern  map[string]string // source-name dedup, lives across batches
	scratch []byte            // transport scratch (HTTP body staging)
}

// reset prepares the batch for refilling.
func (b *Batch) reset() {
	b.Events = b.Events[:0]
	if b.intern == nil {
		b.intern = make(map[string]string, 4)
	}
}

type breader struct{ b []byte }

var errShort = errors.New("databus: truncated event")

func (r *breader) i64() (int64, error) {
	if len(r.b) < 8 {
		return 0, errShort
	}
	v := int64(binary.BigEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v, nil
}
func (r *breader) i32() (int, error) {
	if len(r.b) < 4 {
		return 0, errShort
	}
	v := int(int32(binary.BigEndian.Uint32(r.b)))
	r.b = r.b[4:]
	return v, nil
}
func (r *breader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, errShort
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}
func (r *breader) blob() ([]byte, error) {
	n, err := r.i32()
	if err != nil {
		return nil, err
	}
	if n < 0 || len(r.b) < n {
		return nil, errShort
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}

// Filter is a server-side predicate pushed down to the relay and bootstrap
// servers so each client receives only its partition slice (§III.B data
// source / subscriber isolation).
type Filter struct {
	// Sources restricts to the named sources; empty means all.
	Sources []string
	// Partitions restricts to the listed partitions; nil means all.
	Partitions []int
	// Project, when non-empty, is the declarative data transformation of
	// §III.E's future work: JSON-object payloads are reduced to the listed
	// top-level fields before leaving the relay, so subscribers that need
	// two fields of a wide row don't pay for the whole row. Non-JSON
	// payloads pass through untouched.
	Project []string
}

// Match reports whether the filter admits e.
func (f *Filter) Match(e *Event) bool {
	if f == nil {
		return true
	}
	if len(f.Sources) > 0 {
		ok := false
		for _, s := range f.Sources {
			if s == e.Source {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Partitions != nil {
		ok := false
		for _, p := range f.Partitions {
			if p == e.Partition {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Apply returns the event as the filter's subscriber should see it: a clone
// with the payload projected when Project is set. Must be called only on
// events that Match.
func (f *Filter) Apply(e *Event) Event {
	out := e.Clone()
	if f != nil {
		out.Payload = f.projectPayload(out.Payload)
	}
	return out
}

// projectPayload reduces a JSON-object payload to the projected fields;
// non-JSON payloads (and non-projecting filters) pass through untouched.
func (f *Filter) projectPayload(payload []byte) []byte {
	if f == nil || len(f.Project) == 0 || len(payload) == 0 {
		return payload
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(payload, &obj); err != nil {
		return payload // not a JSON object: pass through
	}
	kept := make(map[string]json.RawMessage, len(f.Project))
	for _, field := range f.Project {
		if v, ok := obj[field]; ok {
			kept[field] = v
		}
	}
	projected, err := json.Marshal(kept)
	if err != nil {
		return payload
	}
	return projected
}
