package databus

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Relay captures changes from a source database, serializes them and buffers
// them in an in-memory circular buffer that serves Databus clients from a
// given sequence number (§III.C). The buffer is bounded by event count and
// bytes; old events are evicted and such clients are redirected to the
// bootstrap server via ErrSCNTooOld.
//
// A relay is shared-nothing and stateless across restarts: it re-pulls from
// the source, which owns the transaction log and drives ordering (§III.D).
type Relay struct {
	mu       sync.RWMutex
	events   []Event // SCN-ordered window
	bytes    int
	maxCount int
	maxBytes int
	lastSCN  int64
	minSCN   int64 // smallest SCN still buffered

	subsMu sync.Mutex
	subs   []chan struct{} // wakeups for blocking readers

	sourcePulls atomic.Int64 // how many times we hit the source (E8)
	served      atomic.Int64 // events served to clients

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// RelayConfig bounds the circular buffer.
type RelayConfig struct {
	MaxEvents int // default 1<<20
	MaxBytes  int // default 256 MB
}

// NewRelay builds an empty relay.
func NewRelay(cfg RelayConfig) *Relay {
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 1 << 20
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 256 << 20
	}
	return &Relay{
		maxCount: cfg.MaxEvents,
		maxBytes: cfg.MaxBytes,
		stop:     make(chan struct{}),
	}
}

// ChangeSource is a transaction log provider — the abstraction behind the
// Oracle and MySQL adapters (§III.A). The source is the source of truth: it
// assigns commit sequence numbers and can replay from any SCN.
type ChangeSource interface {
	// Pull returns up to limit transactions with SCN > sinceSCN, in commit
	// order. An empty result means the caller is caught up.
	Pull(sinceSCN int64, limit int) ([]Txn, error)
}

// AttachSource starts a background goroutine pulling from src every
// interval. Multiple relays can attach to the same source (replicated
// availability) or to another relay (chaining).
func (r *Relay) AttachSource(src ChangeSource, interval time.Duration) {
	if interval == 0 {
		interval = 10 * time.Millisecond
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.PullOnce(src, 1024)
			}
		}
	}()
}

// PullOnce pulls a batch from the source into the buffer; it returns the
// number of transactions appended.
func (r *Relay) PullOnce(src ChangeSource, limit int) int {
	r.sourcePulls.Add(1)
	txns, err := src.Pull(r.LastSCN(), limit)
	if err != nil || len(txns) == 0 {
		return 0
	}
	n := 0
	for _, txn := range txns {
		if err := r.Append(txn); err == nil {
			n++
		}
	}
	return n
}

// SourcePulls reports how many times the relay hit the source — the E8
// isolation metric (hundreds of consumers must not increase this).
func (r *Relay) SourcePulls() int64 { return r.sourcePulls.Load() }

// EventsServed reports the total events streamed to clients.
func (r *Relay) EventsServed() int64 { return r.served.Load() }

// Append buffers one transaction. Events receive the txn's SCN stamping and
// the final event is marked EndOfTxn, preserving transaction boundaries.
func (r *Relay) Append(txn Txn) error {
	if len(txn.Events) == 0 {
		return nil
	}
	r.mu.Lock()
	if txn.SCN <= r.lastSCN {
		r.mu.Unlock()
		return fmt.Errorf("%w: txn SCN %d after %d", ErrNonMonotonicSCN, txn.SCN, r.lastSCN)
	}
	for i := range txn.Events {
		e := txn.Events[i]
		e.SCN = txn.SCN
		e.TxnID = txn.SCN
		e.EndOfTxn = i == len(txn.Events)-1
		r.events = append(r.events, e)
		r.bytes += e.SizeBytes()
	}
	r.lastSCN = txn.SCN
	if r.minSCN == 0 {
		r.minSCN = txn.SCN
	}
	r.evictLocked()
	mRelayAppended.Add(int64(len(txn.Events)))
	mRelayBufferedEvents.Set(int64(len(r.events)))
	mRelayBufferedBytes.Set(int64(r.bytes))
	mRelayLastSCN.Set(r.lastSCN)
	mRelayMinSCN.Set(r.minSCN)
	r.mu.Unlock()
	r.wake()
	return nil
}

// evictLocked drops whole transactions from the head while over budget.
func (r *Relay) evictLocked() {
	for (len(r.events) > r.maxCount || r.bytes > r.maxBytes) && len(r.events) > 0 {
		// find the end of the first transaction
		first := r.events[0].TxnID
		cut := 0
		for cut < len(r.events) && r.events[cut].TxnID == first {
			r.bytes -= r.events[cut].SizeBytes()
			cut++
		}
		r.events = r.events[cut:]
		if len(r.events) > 0 {
			r.minSCN = r.events[0].SCN
		} else {
			r.minSCN = r.lastSCN + 1
		}
	}
}

func (r *Relay) wake() {
	r.subsMu.Lock()
	for _, ch := range r.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	r.subsMu.Unlock()
}

// notify returns a channel pulsed on every append.
func (r *Relay) notify() chan struct{} {
	ch := make(chan struct{}, 1)
	r.subsMu.Lock()
	r.subs = append(r.subs, ch)
	r.subsMu.Unlock()
	return ch
}

// LastSCN returns the newest buffered sequence number.
func (r *Relay) LastSCN() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lastSCN
}

// MinSCN returns the oldest buffered sequence number.
func (r *Relay) MinSCN() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.minSCN
}

// BufferedEvents returns the current buffer length (diagnostics).
func (r *Relay) BufferedEvents() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.events)
}

// BufferedBytes returns the approximate buffered footprint.
func (r *Relay) BufferedBytes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.bytes
}

// Read returns up to maxEvents events with SCN > sinceSCN passing the
// filter, never splitting a transaction window. If sinceSCN predates the
// buffer, ErrSCNTooOld is returned and the client must bootstrap.
func (r *Relay) Read(sinceSCN int64, maxEvents int, f *Filter) ([]Event, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.events) == 0 {
		if sinceSCN < r.minSCN-1 && r.minSCN > 0 {
			return nil, fmt.Errorf("%w: since=%d, buffer starts at %d", ErrSCNTooOld, sinceSCN, r.minSCN)
		}
		return nil, nil
	}
	if sinceSCN < r.minSCN-1 {
		return nil, fmt.Errorf("%w: since=%d, buffer starts at %d", ErrSCNTooOld, sinceSCN, r.minSCN)
	}
	// Binary search for the first event with SCN > sinceSCN.
	i := sort.Search(len(r.events), func(i int) bool { return r.events[i].SCN > sinceSCN })
	if maxEvents <= 0 {
		maxEvents = 1 << 20
	}
	out := make([]Event, 0, min(maxEvents, len(r.events)-i))
	lastIncludedTxn := int64(-1)
	for ; i < len(r.events); i++ {
		e := &r.events[i]
		if len(out) >= maxEvents && e.TxnID != lastIncludedTxn {
			break // only stop at a transaction boundary
		}
		if f.Match(e) {
			out = append(out, f.Apply(e))
			lastIncludedTxn = e.TxnID
		}
	}
	r.served.Add(int64(len(out)))
	mRelayServed.Add(int64(len(out)))
	return out, nil
}

// ReadBlocking behaves like Read but waits up to timeout for new events when
// the client is caught up.
func (r *Relay) ReadBlocking(sinceSCN int64, maxEvents int, f *Filter, timeout time.Duration) ([]Event, error) {
	events, err := r.Read(sinceSCN, maxEvents, f)
	if err != nil || len(events) > 0 {
		return events, err
	}
	ch := r.notify()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case <-deadline.C:
			return nil, nil
		case <-r.stop:
			return nil, ErrClosed
		case <-ch:
			events, err := r.Read(sinceSCN, maxEvents, f)
			if err != nil || len(events) > 0 {
				return events, err
			}
		}
	}
}

// Close stops background pulls.
func (r *Relay) Close() {
	r.stopped.Do(func() { close(r.stop) })
	r.wg.Wait()
}
