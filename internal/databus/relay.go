package databus

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Relay captures changes from a source database, serializes them and buffers
// them in an in-memory window that serves Databus clients from a given
// sequence number (§III.C). The window is a chunked ring of immutable,
// encode-once segments: Append stamps the transaction and writes each event's
// wire frame exactly once into the current chunk, so serving hundreds of
// consumers is a binary search plus straight byte copies — no re-encoding,
// no per-consumer event cloning, and no global lock held during response I/O
// (the E8 isolation property: consumer count must not amplify relay work,
// let alone source load).
//
// The buffer is bounded by event count and bytes; eviction drops whole
// chunks from the head in O(1), and clients that have fallen behind the
// window are redirected to the bootstrap server via ErrSCNTooOld.
//
// A relay is shared-nothing and stateless across restarts: it re-pulls from
// the source, which owns the transaction log and drives ordering (§III.D).
type Relay struct {
	mu     sync.RWMutex
	chunks []*chunk // SCN-ascending; the last chunk is still growing
	count  int      // buffered events across all chunks
	bytes  int      // buffered frame bytes across all chunks

	lastSCN int64
	minSCN  int64 // smallest SCN still buffered

	// epoch is closed and replaced on every append: a broadcast that costs
	// nothing per blocked reader and leaves nothing behind when a reader
	// gives up (the subscriber-channel list it replaces grew forever).
	epoch chan struct{}

	maxCount    int
	maxBytes    int
	chunkBytes  int // seal the growing chunk at this size
	chunkEvents int // ... or at this many events, whichever comes first

	waiters     atomic.Int64 // blocked ReadBlocking/stream calls right now
	sourcePulls atomic.Int64 // how many times we hit the source (E8)
	served      atomic.Int64 // events served to clients
	servedBytes atomic.Int64 // frame bytes served to clients

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// chunk is one segment of the ring: concatenated wire frames plus a
// per-frame SCN index and frame offsets. Chunks are append-only — existing
// bytes and index entries are never rewritten — so a view captured under the
// relay lock stays valid after the lock is released, and an evicted chunk
// stays readable for whoever still holds a reference to it.
type chunk struct {
	buf  []byte  // wire frames: u32 BE length + encoded event
	scns []int64 // per-frame SCN (== TxnID; one txn's frames are contiguous)
	offs []int32 // frame start offsets; offs[len(scns)] == len(buf)

	firstSCN int64
	lastSCN  int64
}

// RelayConfig bounds the circular buffer.
type RelayConfig struct {
	MaxEvents int // default 1<<20
	MaxBytes  int // default 256 MB
	// ChunkBytes is the target segment size; eviction granularity is one
	// chunk. Default 256 KiB, clamped so a chunk never exceeds 1/8 of the
	// byte or event budget (tiny test buffers still evict finely).
	ChunkBytes int
}

// NewRelay builds an empty relay.
func NewRelay(cfg RelayConfig) *Relay {
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 1 << 20
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 256 << 20
	}
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = 256 << 10
	}
	chunkBytes := min(cfg.ChunkBytes, max(1, cfg.MaxBytes/8))
	return &Relay{
		maxCount:    cfg.MaxEvents,
		maxBytes:    cfg.MaxBytes,
		chunkBytes:  chunkBytes,
		chunkEvents: max(1, cfg.MaxEvents/8),
		epoch:       make(chan struct{}),
		stop:        make(chan struct{}),
	}
}

// ChangeSource is a transaction log provider — the abstraction behind the
// Oracle and MySQL adapters (§III.A). The source is the source of truth: it
// assigns commit sequence numbers and can replay from any SCN.
type ChangeSource interface {
	// Pull returns up to limit transactions with SCN > sinceSCN, in commit
	// order. An empty result means the caller is caught up.
	Pull(sinceSCN int64, limit int) ([]Txn, error)
}

// AttachSource starts a background goroutine pulling from src every
// interval. Multiple relays can attach to the same source (replicated
// availability) or to another relay (chaining). Pull and append failures are
// counted (databus_relay_append_errors_total) and retried next tick — the
// source owns the log, so re-pulling from LastSCN is always safe.
func (r *Relay) AttachSource(src ChangeSource, interval time.Duration) {
	if interval == 0 {
		interval = 10 * time.Millisecond
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				_, _ = r.PullOnce(src, 1024)
			}
		}
	}()
}

// PullOnce pulls a batch from the source into the buffer; it returns the
// number of transactions appended. The first append failure stops the batch
// and is returned — skipping a bad transaction and appending the ones after
// it would silently tear a hole in the commit order.
func (r *Relay) PullOnce(src ChangeSource, limit int) (int, error) {
	r.sourcePulls.Add(1)
	txns, err := src.Pull(r.LastSCN(), limit)
	if err != nil {
		return 0, fmt.Errorf("databus: source pull after SCN %d: %w", r.LastSCN(), err)
	}
	n := 0
	for _, txn := range txns {
		if err := r.Append(txn); err != nil {
			return n, fmt.Errorf("databus: relay append: %w", err)
		}
		n++
	}
	return n, nil
}

// SourcePulls reports how many times the relay hit the source — the E8
// isolation metric (hundreds of consumers must not increase this).
func (r *Relay) SourcePulls() int64 { return r.sourcePulls.Load() }

// EventsServed reports the total events streamed to clients.
func (r *Relay) EventsServed() int64 { return r.served.Load() }

// BytesServed reports the total wire-frame bytes streamed to clients.
func (r *Relay) BytesServed() int64 { return r.servedBytes.Load() }

// Waiters reports how many blocking reads are parked right now. It is
// bounded by the number of concurrent callers — the leak regression gate.
func (r *Relay) Waiters() int64 { return r.waiters.Load() }

// Append buffers one transaction: each event is stamped with the txn's SCN
// (the final one marked EndOfTxn, preserving transaction boundaries) and
// serialized into its wire frame exactly once, into the growing chunk.
func (r *Relay) Append(txn Txn) error {
	if len(txn.Events) == 0 {
		return nil
	}
	r.mu.Lock()
	if txn.SCN <= r.lastSCN {
		r.mu.Unlock()
		mRelayAppendErrors.Inc()
		return fmt.Errorf("%w: txn SCN %d after %d", ErrNonMonotonicSCN, txn.SCN, r.lastSCN)
	}
	c := r.activeChunkLocked()
	if c.firstSCN == 0 {
		c.firstSCN = txn.SCN
	}
	for i := range txn.Events {
		e := txn.Events[i]
		e.SCN = txn.SCN
		e.TxnID = txn.SCN
		e.EndOfTxn = i == len(txn.Events)-1
		start := len(c.buf)
		c.buf = appendEventFrame(c.buf, &e)
		c.scns = append(c.scns, txn.SCN)
		c.offs = append(c.offs, int32(len(c.buf)))
		r.bytes += len(c.buf) - start
	}
	c.lastSCN = txn.SCN
	r.count += len(txn.Events)
	r.lastSCN = txn.SCN
	if r.minSCN == 0 {
		r.minSCN = txn.SCN
	}
	r.evictLocked()
	mRelayAppended.Add(int64(len(txn.Events)))
	mRelayBufferedEvents.Set(int64(r.count))
	mRelayBufferedBytes.Set(int64(r.bytes))
	mRelayBufferedChunks.Set(int64(len(r.chunks)))
	mRelayLastSCN.Set(r.lastSCN)
	mRelayMinSCN.Set(r.minSCN)
	// Broadcast: closing the epoch channel wakes every parked reader at
	// once; the next epoch is already in place before the lock drops.
	close(r.epoch)
	r.epoch = make(chan struct{})
	r.mu.Unlock()
	return nil
}

// activeChunkLocked returns the chunk to append into, sealing the previous
// one (by simply starting a new one — sealed means "no longer growing") when
// it has reached the segment target. A transaction is never split across
// chunks, so eviction and txn windows stay aligned.
func (r *Relay) activeChunkLocked() *chunk {
	if n := len(r.chunks); n > 0 {
		c := r.chunks[n-1]
		if len(c.buf) < r.chunkBytes && len(c.scns) < r.chunkEvents {
			return c
		}
	}
	c := &chunk{
		buf:  make([]byte, 0, r.chunkBytes+r.chunkBytes/4),
		offs: make([]int32, 1, 64),
	}
	r.chunks = append(r.chunks, c)
	return c
}

// evictLocked drops whole chunks from the head while over budget — O(1) per
// chunk, no memmove, no per-event bookkeeping. Readers holding a view of an
// evicted chunk keep reading it; the memory is reclaimed when the last
// reference drops.
func (r *Relay) evictLocked() {
	evicted := false
	for len(r.chunks) > 0 && (r.count > r.maxCount || r.bytes > r.maxBytes) {
		c := r.chunks[0]
		r.count -= len(c.scns)
		r.bytes -= len(c.buf)
		r.chunks[0] = nil
		r.chunks = r.chunks[1:]
		evicted = true
		mRelayEvictedChunks.Inc()
	}
	if !evicted {
		return
	}
	if len(r.chunks) > 0 {
		r.minSCN = r.chunks[0].firstSCN
	} else {
		r.minSCN = r.lastSCN + 1
	}
}

// LastSCN returns the newest buffered sequence number.
func (r *Relay) LastSCN() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lastSCN
}

// MinSCN returns the oldest buffered sequence number.
func (r *Relay) MinSCN() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.minSCN
}

// BufferedEvents returns the current buffer length (diagnostics).
func (r *Relay) BufferedEvents() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.count
}

// BufferedBytes returns the buffered wire-frame footprint.
func (r *Relay) BufferedBytes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.bytes
}

// BufferedChunks returns the current segment count (diagnostics).
func (r *Relay) BufferedChunks() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.chunks)
}

// frameView is a consistent snapshot of one chunk's frames, captured under
// the relay lock and safe to read after it is released: chunks only ever
// grow, and never in place below the captured lengths.
type frameView struct {
	buf  []byte  // frame bytes [0 : offs[len(scns)]]
	scns []int64 // per-frame SCNs
	offs []int32 // len(scns)+1 frame boundaries
	lo   int     // first frame index after sinceSCN
}

// snapshotInto captures zero-copy views of the frames after sinceSCN into
// dst (reusing its capacity), stopping once at least maxFrames frames are
// covered — a transaction never spans chunks, so the txn-boundary extension
// of a read can never need a chunk beyond the captured ones. nil views with
// nil error means the caller is caught up.
func (r *Relay) snapshotInto(dst []frameView, sinceSCN int64, maxFrames int) ([]frameView, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if sinceSCN < r.minSCN-1 && r.minSCN > 0 {
		return nil, fmt.Errorf("%w: since=%d, buffer starts at %d", ErrSCNTooOld, sinceSCN, r.minSCN)
	}
	if r.count == 0 || sinceSCN >= r.lastSCN {
		return nil, nil
	}
	ci := sort.Search(len(r.chunks), func(i int) bool { return r.chunks[i].lastSCN > sinceSCN })
	covered := 0
	for ; ci < len(r.chunks) && covered < maxFrames; ci++ {
		c := r.chunks[ci]
		n := len(c.scns)
		if n == 0 {
			continue
		}
		lo := 0
		if c.scns[0] <= sinceSCN {
			lo = sort.Search(n, func(i int) bool { return c.scns[i] > sinceSCN })
		}
		if lo >= n {
			continue
		}
		dst = append(dst, frameView{
			buf:  c.buf[:c.offs[n]],
			scns: c.scns[:n:n],
			offs: c.offs[: n+1 : n+1],
			lo:   lo,
		})
		covered += n - lo
	}
	return dst, nil
}

// Read returns up to maxEvents events with SCN > sinceSCN passing the
// filter, never splitting a transaction window. If sinceSCN predates the
// buffer, ErrSCNTooOld is returned and the client must bootstrap. Events are
// decoded fresh from the ring — the caller owns them.
func (r *Relay) Read(sinceSCN int64, maxEvents int, f *Filter) ([]Event, error) {
	var out []Event
	err := r.readInto(sinceSCN, maxEvents, f, func(n int) {
		out = make([]Event, 0, n)
	}, func(ev []byte) error {
		var e Event
		if err := decodeEvent(&e, ev, nil, nil); err != nil {
			return err
		}
		e.Payload = f.projectPayload(e.Payload)
		out = append(out, e)
		return nil
	})
	return out, err
}

// ReadBatch fills b with up to maxEvents events after sinceSCN, reusing the
// batch's Events slice and allocating one exact-size byte arena for every
// key and payload in the batch (consumers may retain events; the arena is
// never recycled). It returns the resume SCN — the SCN of the last event in
// the batch, or sinceSCN when caught up.
func (r *Relay) ReadBatch(sinceSCN int64, maxEvents int, f *Filter, b *Batch) (int64, error) {
	b.reset()
	var arena []byte
	resume := sinceSCN
	err := r.readInto(sinceSCN, maxEvents, f, func(n int) {
		if cap(b.Events) < n {
			b.Events = make([]Event, 0, n)
		}
	}, func(ev []byte) error {
		arena = arenaEnsure(arena, frameBodyBytes(ev))
		var e Event
		if err := decodeEvent(&e, ev, &arena, b.intern); err != nil {
			return err
		}
		e.Payload = f.projectPayload(e.Payload)
		b.Events = append(b.Events, e)
		resume = e.SCN
		return nil
	})
	return resume, err
}

// arenaEnsure grows the arena's spare capacity to at least need bytes
// without disturbing earlier sub-slices (growth allocates a fresh block
// rather than copying — handed-out slices keep pointing at the old one).
func arenaEnsure(arena []byte, need int) []byte {
	if cap(arena)-len(arena) >= need {
		return arena
	}
	block := 64 << 10
	if need > block {
		block = need
	}
	return make([]byte, 0, block)
}

// readInto walks matching frames after sinceSCN, calling sized once with the
// frame-count upper bound and emit for each matching encoded event, honoring
// maxEvents at transaction boundaries. The walk happens on an immutable
// snapshot — no relay lock is held while emit runs.
func (r *Relay) readInto(sinceSCN int64, maxEvents int, f *Filter, sized func(int), emit func(ev []byte) error) error {
	if maxEvents <= 0 {
		maxEvents = 1 << 20
	}
	var vbuf [8]frameView
	views, err := r.snapshotInto(vbuf[:0], sinceSCN, maxEvents)
	if err != nil || views == nil {
		return err
	}
	total := 0
	for i := range views {
		total += len(views[i].scns) - views[i].lo
	}
	sized(min(total, maxEvents))
	n, bytes := 0, 0
	lastTxn := int64(-1)
	defer func() {
		if n > 0 {
			r.served.Add(int64(n))
			r.servedBytes.Add(int64(bytes))
			mRelayServed.Add(int64(n))
			mRelayServedBytes.Add(int64(bytes))
		}
	}()
	for _, v := range views {
		for i := v.lo; i < len(v.scns); i++ {
			if n >= maxEvents && v.scns[i] != lastTxn {
				return nil // only stop at a transaction boundary
			}
			ev := v.buf[v.offs[i]+frameHdrBytes : v.offs[i+1]]
			if !frameMatch(f, ev) {
				continue
			}
			if err := emit(ev); err != nil {
				return err
			}
			n++
			bytes += len(ev) + frameHdrBytes
			lastTxn = v.scns[i]
		}
	}
	return nil
}

// StreamTo writes up to maxEvents events after sinceSCN to w in the HTTP
// wire framing, returning the count written and the SCN to resume from. The
// unfiltered path is zero-copy and allocation-free: pre-encoded frames are
// written straight from the ring in contiguous runs, and the relay lock is
// not held during any Write. Filtered streams peek at each frame's source
// and partition without decoding; only projection decodes events.
func (r *Relay) StreamTo(w io.Writer, sinceSCN int64, maxEvents int, f *Filter) (int, int64, error) {
	if maxEvents <= 0 {
		maxEvents = 1 << 20
	}
	var vbuf [8]frameView
	views, err := r.snapshotInto(vbuf[:0], sinceSCN, maxEvents)
	if err != nil || views == nil {
		return 0, sinceSCN, err
	}
	project := f != nil && len(f.Project) > 0
	n, bytes := 0, 0
	resume := sinceSCN
	lastTxn := int64(-1)
	defer func() {
		if n > 0 {
			r.served.Add(int64(n))
			r.servedBytes.Add(int64(bytes))
			mRelayServed.Add(int64(n))
			mRelayServedBytes.Add(int64(bytes))
		}
	}()
	for _, v := range views {
		run := -1 // start frame of the pending contiguous write, -1 = none
		flush := func(end int) error {
			if run < 0 {
				return nil
			}
			b := v.buf[v.offs[run]:v.offs[end]]
			run = -1
			if len(b) == 0 {
				return nil
			}
			bytes += len(b)
			_, err := w.Write(b)
			return err
		}
		for i := v.lo; i < len(v.scns); i++ {
			if n >= maxEvents && v.scns[i] != lastTxn {
				return n, resume, flush(i)
			}
			ev := v.buf[v.offs[i]+frameHdrBytes : v.offs[i+1]]
			if !frameMatch(f, ev) {
				if err := flush(i); err != nil {
					return n, resume, err
				}
				continue
			}
			if project {
				if err := flush(i); err != nil {
					return n, resume, err
				}
				var e Event
				if err := decodeEvent(&e, ev, nil, nil); err != nil {
					return n, resume, err
				}
				e.Payload = f.projectPayload(e.Payload)
				if err := writeEventFrame(w, &e); err != nil {
					return n, resume, err
				}
				bytes += frameHdrBytes + e.encodedSize()
			} else if run < 0 {
				run = i
			}
			n++
			resume = v.scns[i]
			lastTxn = v.scns[i]
		}
		if err := flush(len(v.scns)); err != nil {
			return n, resume, err
		}
	}
	return n, resume, nil
}

// notify returns the current epoch channel: it is closed by the next append,
// waking every reader that selected on it. Nothing is registered, so a
// reader that times out leaves no trace behind.
func (r *Relay) notify() <-chan struct{} {
	r.mu.RLock()
	ch := r.epoch
	r.mu.RUnlock()
	return ch
}

// ReadBlocking behaves like Read but waits up to timeout for new events when
// the client is caught up.
func (r *Relay) ReadBlocking(sinceSCN int64, maxEvents int, f *Filter, timeout time.Duration) ([]Event, error) {
	var events []Event
	err := r.blockingLoop(timeout, func() (bool, error) {
		var err error
		events, err = r.Read(sinceSCN, maxEvents, f)
		return len(events) > 0, err
	})
	return events, err
}

// ReadBatchBlocking is ReadBatch with ReadBlocking's wait semantics; it
// implements BatchReader for the in-process relay.
func (r *Relay) ReadBatchBlocking(sinceSCN int64, maxEvents int, f *Filter, timeout time.Duration, b *Batch) (int64, error) {
	resume := sinceSCN
	err := r.blockingLoop(timeout, func() (bool, error) {
		var err error
		resume, err = r.ReadBatch(sinceSCN, maxEvents, f, b)
		return len(b.Events) > 0, err
	})
	return resume, err
}

// blockingLoop runs attempt until it yields events, errors, or the timeout
// passes. The epoch channel is captured before each attempt, so an append
// racing the attempt can never be missed — its close is already pending.
func (r *Relay) blockingLoop(timeout time.Duration, attempt func() (bool, error)) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ch := r.notify()
		ok, err := attempt()
		if err != nil || ok {
			return err
		}
		r.waiters.Add(1)
		mRelayBlockedReaders.Set(r.waiters.Load())
		select {
		case <-deadline.C:
			r.waiters.Add(-1)
			return nil
		case <-r.stop:
			r.waiters.Add(-1)
			return ErrClosed
		case <-ch:
			r.waiters.Add(-1)
		}
	}
}

// Close stops background pulls and fails parked blocking reads.
func (r *Relay) Close() {
	r.stopped.Do(func() { close(r.stop) })
	r.wg.Wait()
}
