package databus_test

import (
	"datainfra/internal/databus"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"datainfra/internal/bootstrap"
)

// newHTTPPipeline boots a relay (+bootstrap) behind an httptest server.
func newHTTPPipeline(t *testing.T, relayCap int) (*databus.LogSource, *databus.Relay, *bootstrap.Server, *httptest.Server) {
	t.Helper()
	src := databus.NewLogSource()
	relay := databus.NewRelay(databus.RelayConfig{MaxEvents: relayCap})
	t.Cleanup(relay.Close)
	relay.AttachSource(src, time.Millisecond)
	boot := bootstrap.New()
	bc, err := databus.NewClient(databus.ClientConfig{Relay: relay, Consumer: boot, PollExpiry: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	bc.Start()
	t.Cleanup(bc.Close)
	srv := httptest.NewServer(&databus.Handler{Relay: relay, Boot: boot, PollExpiry: 50 * time.Millisecond})
	t.Cleanup(srv.Close)
	return src, relay, boot, srv
}

func TestHTTPStreamRoundTrip(t *testing.T) {
	src, relay, _, srv := newHTTPPipeline(t, 1<<16)
	for i := 0; i < 10; i++ {
		src.Commit(databus.Event{Source: "s", Key: []byte(fmt.Sprintf("k%d", i)), Payload: []byte("v"), Op: databus.OpUpsert})
	}
	deadline := time.Now().Add(2 * time.Second)
	for relay.LastSCN() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("relay lagged")
		}
		time.Sleep(time.Millisecond)
	}
	reader := &databus.HTTPReader{BaseURL: srv.URL}
	events, err := reader.ReadBlocking(0, 100, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].SCN != 1 || string(events[0].Key) != "k0" || !events[0].EndOfTxn {
		t.Fatalf("first event = %+v", events[0])
	}
	// resume mid-stream with a filter
	events, err = reader.ReadBlocking(5, 100, &databus.Filter{Sources: []string{"s"}}, time.Second)
	if err != nil || len(events) != 5 {
		t.Fatalf("resume = (%d, %v)", len(events), err)
	}
	events, err = reader.ReadBlocking(5, 100, &databus.Filter{Sources: []string{"other"}}, time.Second)
	if err != nil || len(events) != 0 {
		t.Fatalf("filtered = (%d, %v)", len(events), err)
	}
}

func TestHTTPStreamGoneTriggersBootstrapPath(t *testing.T) {
	src, relay, boot, srv := newHTTPPipeline(t, 4)
	// Commit at a pace the tiny relay's bootstrap subscriber can follow --
	// the point here is that *late-joining* clients fall off the buffer,
	// not the bootstrap server itself.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 50; i++ {
		scn := src.Commit(databus.Event{Source: "s", Key: []byte(fmt.Sprintf("k%d", i%5)), Payload: []byte(fmt.Sprintf("v%d", i)), Op: databus.OpUpsert})
		for boot.LastSCN() < scn {
			if time.Now().After(deadline) {
				t.Fatalf("bootstrap lagged at %d", boot.LastSCN())
			}
			time.Sleep(time.Millisecond)
		}
	}
	_ = relay
	reader := &databus.HTTPReader{BaseURL: srv.URL}
	_, err := reader.ReadBlocking(0, 100, nil, time.Second)
	if err == nil {
		t.Fatal("off-buffer read succeeded")
	}
	// full remote client: relay + bootstrap switchover
	seen := map[string]string{}
	cl, err := databus.NewClient(databus.ClientConfig{
		Relay:     reader,
		Bootstrap: &databus.HTTPBootstrap{BaseURL: srv.URL},
		Consumer: databus.ConsumerFuncs{Event: func(e databus.Event) error {
			seen[string(e.Key)] = string(e.Payload)
			return nil
		}},
		PollExpiry: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Poll(); err != nil {
		t.Fatal(err)
	}
	if cl.Bootstraps() != 1 {
		t.Fatalf("bootstraps = %d", cl.Bootstraps())
	}
	if cl.SCN() != 50 {
		t.Fatalf("resume SCN = %d", cl.SCN())
	}
	// the consolidated delta must reflect the latest value per key
	if len(seen) != 5 || seen["k4"] != "v49" {
		t.Fatalf("state = %v", seen)
	}
}

func TestHTTPEndToEndLiveConsumption(t *testing.T) {
	src, _, _, srv := newHTTPPipeline(t, 1<<16)
	var got int
	cl, err := databus.NewClient(databus.ClientConfig{
		Relay:     &databus.HTTPReader{BaseURL: srv.URL},
		Bootstrap: &databus.HTTPBootstrap{BaseURL: srv.URL},
		Consumer: databus.ConsumerFuncs{Event: func(e databus.Event) error {
			got++
			return nil
		}},
		PollExpiry: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		src.Commit(databus.Event{Source: "s", Key: []byte(fmt.Sprintf("k%d", i)), Payload: []byte("v")})
	}
	deadline := time.Now().Add(5 * time.Second)
	for got < 25 {
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d/25 over HTTP", got)
		}
		if _, err := cl.Poll(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHTTPPartitionFilter(t *testing.T) {
	src, relay, _, srv := newHTTPPipeline(t, 1<<16)
	for i := 0; i < 40; i++ {
		e := databus.Event{Source: "s", Key: []byte(fmt.Sprintf("k%d", i)), Payload: []byte("v")}
		e.ComputePartition(4)
		src.Commit(e)
	}
	deadline := time.Now().Add(2 * time.Second)
	for relay.LastSCN() < 40 {
		if time.Now().After(deadline) {
			t.Fatal("relay lagged")
		}
		time.Sleep(time.Millisecond)
	}
	reader := &databus.HTTPReader{BaseURL: srv.URL}
	events, err := reader.ReadBlocking(0, 100, &databus.Filter{Partitions: []int{2}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("partition filter returned nothing")
	}
	for _, e := range events {
		if e.Partition != 2 {
			t.Fatalf("leaked partition %d", e.Partition)
		}
	}
}
