package databus

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func ev(source, key, payload string) Event {
	return Event{Source: source, Key: []byte(key), Payload: []byte(payload)}
}

func TestEventCodecRoundTrip(t *testing.T) {
	e := Event{
		SCN: 42, TxnID: 42, EndOfTxn: true, Source: "profiles",
		Op: OpDelete, Key: []byte("k"), Payload: []byte("p"),
		SchemaVersion: 3, Timestamp: 1234, Partition: 7,
	}
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Event
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.SCN != 42 || !got.EndOfTxn || got.Source != "profiles" || got.Op != OpDelete ||
		string(got.Key) != "k" || string(got.Payload) != "p" || got.SchemaVersion != 3 ||
		got.Timestamp != 1234 || got.Partition != 7 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestEventCodecCorrupt(t *testing.T) {
	e := ev("s", "k", "p")
	data, _ := e.MarshalBinary()
	for _, cut := range []int{0, 8, len(data) - 1} {
		var got Event
		if err := got.UnmarshalBinary(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	var got Event
	if err := got.UnmarshalBinary(append(append([]byte{}, data...), 1)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestRelayAppendRead(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	for i := 1; i <= 10; i++ {
		if err := r.Append(Txn{SCN: int64(i), Events: []Event{ev("s", fmt.Sprintf("k%d", i), "v")}}); err != nil {
			t.Fatal(err)
		}
	}
	events, err := r.Read(0, 100, nil)
	if err != nil || len(events) != 10 {
		t.Fatalf("Read(0) = (%d, %v)", len(events), err)
	}
	if events[0].SCN != 1 || events[9].SCN != 10 {
		t.Fatalf("order: %d..%d", events[0].SCN, events[9].SCN)
	}
	// resume mid-stream
	events, _ = r.Read(7, 100, nil)
	if len(events) != 3 || events[0].SCN != 8 {
		t.Fatalf("Read(7): %d events from %d", len(events), events[0].SCN)
	}
	// caught up
	events, _ = r.Read(10, 100, nil)
	if len(events) != 0 {
		t.Fatalf("caught-up read returned %d events", len(events))
	}
}

func TestRelayMonotonicSCN(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	r.Append(Txn{SCN: 5, Events: []Event{ev("s", "k", "v")}})
	if err := r.Append(Txn{SCN: 5, Events: []Event{ev("s", "k", "v")}}); !errors.Is(err, ErrNonMonotonicSCN) {
		t.Fatalf("equal SCN err = %v", err)
	}
	if err := r.Append(Txn{SCN: 3, Events: []Event{ev("s", "k", "v")}}); !errors.Is(err, ErrNonMonotonicSCN) {
		t.Fatalf("lower SCN err = %v", err)
	}
}

func TestRelayTxnBoundariesPreserved(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	// txn with 3 events (mailbox insert + unread count + index update)
	r.Append(Txn{SCN: 1, Events: []Event{ev("mail", "m1", "a"), ev("counts", "m1", "b"), ev("idx", "m1", "c")}})
	events, _ := r.Read(0, 100, nil)
	if len(events) != 3 {
		t.Fatalf("%d events", len(events))
	}
	if events[0].EndOfTxn || events[1].EndOfTxn || !events[2].EndOfTxn {
		t.Fatalf("EndOfTxn flags wrong: %v %v %v", events[0].EndOfTxn, events[1].EndOfTxn, events[2].EndOfTxn)
	}
	for _, e := range events {
		if e.TxnID != 1 || e.SCN != 1 {
			t.Fatalf("txn stamping wrong: %+v", e)
		}
	}
}

func TestRelayNeverSplitsTxnAtBatchBoundary(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	r.Append(Txn{SCN: 1, Events: []Event{ev("s", "a", "1"), ev("s", "b", "2"), ev("s", "c", "3")}})
	r.Append(Txn{SCN: 2, Events: []Event{ev("s", "d", "4")}})
	// maxEvents=2 lands mid-txn: the relay must extend to the boundary.
	events, err := r.Read(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("%d events returned, want full txn of 3", len(events))
	}
	if !events[2].EndOfTxn {
		t.Fatal("batch does not end at a txn boundary")
	}
}

func TestRelayFilterBySourceAndPartition(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	for i := 1; i <= 20; i++ {
		e := ev("s", fmt.Sprintf("k%d", i), "v")
		if i%2 == 0 {
			e.Source = "other"
		}
		e.ComputePartition(4)
		r.Append(Txn{SCN: int64(i), Events: []Event{e}})
	}
	events, _ := r.Read(0, 100, &Filter{Sources: []string{"other"}})
	if len(events) != 10 {
		t.Fatalf("source filter: %d events", len(events))
	}
	all, _ := r.Read(0, 100, nil)
	partCount := map[int]int{}
	for _, e := range all {
		partCount[e.Partition]++
	}
	events, _ = r.Read(0, 100, &Filter{Partitions: []int{2}})
	if len(events) != partCount[2] {
		t.Fatalf("partition filter: %d events, want %d", len(events), partCount[2])
	}
	for _, e := range events {
		if e.Partition != 2 {
			t.Fatalf("leaked partition %d", e.Partition)
		}
	}
}

func TestRelayEvictionSignalsSCNTooOld(t *testing.T) {
	r := NewRelay(RelayConfig{MaxEvents: 10})
	defer r.Close()
	for i := 1; i <= 30; i++ {
		r.Append(Txn{SCN: int64(i), Events: []Event{ev("s", "k", "v")}})
	}
	if r.BufferedEvents() > 10 {
		t.Fatalf("buffer holds %d events, cap 10", r.BufferedEvents())
	}
	_, err := r.Read(0, 100, nil)
	if !errors.Is(err, ErrSCNTooOld) {
		t.Fatalf("old read err = %v", err)
	}
	// recent reads still work
	events, err := r.Read(25, 100, nil)
	if err != nil || len(events) != 5 {
		t.Fatalf("recent read = (%d, %v)", len(events), err)
	}
}

func TestRelayEvictionByBytes(t *testing.T) {
	r := NewRelay(RelayConfig{MaxEvents: 1 << 20, MaxBytes: 4096})
	defer r.Close()
	payload := make([]byte, 512)
	for i := 1; i <= 100; i++ {
		r.Append(Txn{SCN: int64(i), Events: []Event{{Source: "s", Key: []byte("k"), Payload: payload}}})
	}
	if r.BufferedBytes() > 4096+1024 {
		t.Fatalf("buffered %d bytes, budget 4096", r.BufferedBytes())
	}
}

func TestRelayBlockingReadWakes(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	done := make(chan []Event, 1)
	go func() {
		events, _ := r.ReadBlocking(0, 10, nil, 2*time.Second)
		done <- events
	}()
	time.Sleep(20 * time.Millisecond)
	r.Append(Txn{SCN: 1, Events: []Event{ev("s", "k", "v")}})
	select {
	case events := <-done:
		if len(events) != 1 {
			t.Fatalf("woke with %d events", len(events))
		}
	case <-time.After(time.Second):
		t.Fatal("blocking read never woke")
	}
}

func TestLogSourceCommitPull(t *testing.T) {
	src := NewLogSource()
	src.Commit(ev("s", "a", "1"))
	src.Commit(ev("s", "b", "2"), ev("s", "c", "3"))
	if src.LastSCN() != 2 || src.Len() != 2 {
		t.Fatalf("LastSCN=%d Len=%d", src.LastSCN(), src.Len())
	}
	txns, err := src.Pull(0, 10)
	if err != nil || len(txns) != 2 {
		t.Fatalf("Pull = (%d, %v)", len(txns), err)
	}
	if len(txns[1].Events) != 2 || !txns[1].Events[1].EndOfTxn {
		t.Fatalf("txn 2 = %+v", txns[1])
	}
	txns, _ = src.Pull(1, 10)
	if len(txns) != 1 || txns[0].SCN != 2 {
		t.Fatalf("Pull(1) = %+v", txns)
	}
	txns, _ = src.Pull(2, 10)
	if len(txns) != 0 {
		t.Fatal("caught-up pull returned txns")
	}
}

func TestRelayAttachedToSource(t *testing.T) {
	src := NewLogSource()
	r := NewRelay(RelayConfig{})
	defer r.Close()
	r.AttachSource(src, 2*time.Millisecond)
	for i := 0; i < 10; i++ {
		src.Commit(ev("s", fmt.Sprintf("k%d", i), "v"))
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.LastSCN() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("relay only reached SCN %d", r.LastSCN())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.SourcePulls() == 0 {
		t.Fatal("source pulls not counted")
	}
}

func TestRelayChainReplication(t *testing.T) {
	src := NewLogSource()
	primary := NewRelay(RelayConfig{})
	defer primary.Close()
	secondary := NewRelay(RelayConfig{})
	defer secondary.Close()
	for i := 0; i < 5; i++ {
		src.Commit(ev("s", fmt.Sprintf("k%d", i), "v"), ev("t", fmt.Sprintf("k%d", i), "w"))
	}
	primary.PullOnce(src, 100)
	secondary.PullOnce(&RelayChain{Upstream: primary}, 100)
	if secondary.LastSCN() != primary.LastSCN() {
		t.Fatalf("chained relay at SCN %d, primary at %d", secondary.LastSCN(), primary.LastSCN())
	}
	a, _ := primary.Read(0, 100, nil)
	b, _ := secondary.Read(0, 100, nil)
	if len(a) != len(b) {
		t.Fatalf("chained relay has %d events, primary %d", len(b), len(a))
	}
}

type collectingConsumer struct {
	mu          sync.Mutex
	events      []Event
	checkpoints []int64
	failFirstN  atomic.Int64
}

func (c *collectingConsumer) OnEvent(e Event) error {
	if c.failFirstN.Load() > 0 {
		c.failFirstN.Add(-1)
		return errors.New("transient consumer failure")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
	return nil
}

func (c *collectingConsumer) OnCheckpoint(scn int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checkpoints = append(c.checkpoints, scn)
}

func (c *collectingConsumer) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func TestClientConsumesAndCheckpoints(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	cons := &collectingConsumer{}
	cl, err := NewClient(ClientConfig{Relay: r, Consumer: cons, PollExpiry: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.Append(Txn{SCN: 1, Events: []Event{ev("s", "a", "1"), ev("s", "b", "2")}})
	r.Append(Txn{SCN: 2, Events: []Event{ev("s", "c", "3")}})
	if _, err := cl.Poll(); err != nil {
		t.Fatal(err)
	}
	if cons.count() != 3 {
		t.Fatalf("consumed %d events", cons.count())
	}
	if cl.SCN() != 2 {
		t.Fatalf("checkpoint at %d, want 2", cl.SCN())
	}
	cons.mu.Lock()
	cps := append([]int64{}, cons.checkpoints...)
	cons.mu.Unlock()
	if len(cps) != 2 || cps[0] != 1 || cps[1] != 2 {
		t.Fatalf("checkpoints = %v", cps)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	cons := &collectingConsumer{}
	cons.failFirstN.Store(2)
	cl, _ := NewClient(ClientConfig{Relay: r, Consumer: cons, Retries: 3, PollExpiry: 10 * time.Millisecond})
	r.Append(Txn{SCN: 1, Events: []Event{ev("s", "a", "1")}})
	if _, err := cl.Poll(); err != nil {
		t.Fatalf("retries should have absorbed transient failures: %v", err)
	}
	if cons.count() != 1 {
		t.Fatalf("consumed %d", cons.count())
	}
}

func TestClientFailsAfterRetryBudget(t *testing.T) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	cons := &collectingConsumer{}
	cons.failFirstN.Store(100)
	cl, _ := NewClient(ClientConfig{Relay: r, Consumer: cons, Retries: 2, PollExpiry: 10 * time.Millisecond})
	r.Append(Txn{SCN: 1, Events: []Event{ev("s", "a", "1")}})
	if _, err := cl.Poll(); err == nil {
		t.Fatal("poll succeeded despite persistent consumer failure")
	}
}

type fakeBootstrap struct {
	calls  atomic.Int64
	events []Event
	resume int64
}

func (b *fakeBootstrap) Catchup(sinceSCN int64, f *Filter, fn func(Event) error) (int64, error) {
	b.calls.Add(1)
	for _, e := range b.events {
		if err := fn(e); err != nil {
			return 0, err
		}
	}
	return b.resume, nil
}

func TestClientSwitchesToBootstrapAndBack(t *testing.T) {
	r := NewRelay(RelayConfig{MaxEvents: 4})
	defer r.Close()
	for i := 1; i <= 20; i++ {
		r.Append(Txn{SCN: int64(i), Events: []Event{ev("s", fmt.Sprintf("k%d", i), "v")}})
	}
	// Bootstrap pretends to deliver the consolidated past up to SCN 18.
	bs := &fakeBootstrap{resume: 18, events: []Event{
		{SCN: 18, TxnID: 18, EndOfTxn: true, Source: "s", Key: []byte("old"), Payload: []byte("consolidated")},
	}}
	cons := &collectingConsumer{}
	cl, _ := NewClient(ClientConfig{Relay: r, Bootstrap: bs, Consumer: cons, PollExpiry: 10 * time.Millisecond})
	// First poll: SCN 0 is off-buffer -> bootstrap.
	if _, err := cl.Poll(); err != nil {
		t.Fatal(err)
	}
	if bs.calls.Load() != 1 {
		t.Fatalf("bootstrap called %d times", bs.calls.Load())
	}
	if cl.SCN() != 18 {
		t.Fatalf("resume SCN = %d, want 18", cl.SCN())
	}
	// Second poll: back on the relay for 19..20.
	if _, err := cl.Poll(); err != nil {
		t.Fatal(err)
	}
	if cl.SCN() != 20 {
		t.Fatalf("final SCN = %d, want 20", cl.SCN())
	}
	if cl.Bootstraps() != 1 {
		t.Fatalf("bootstraps = %d", cl.Bootstraps())
	}
	if cons.count() != 3 { // 1 consolidated + 2 live
		t.Fatalf("consumed %d events", cons.count())
	}
}

func TestClientWithoutBootstrapFailsOffBuffer(t *testing.T) {
	r := NewRelay(RelayConfig{MaxEvents: 2})
	defer r.Close()
	for i := 1; i <= 10; i++ {
		r.Append(Txn{SCN: int64(i), Events: []Event{ev("s", "k", "v")}})
	}
	cons := &collectingConsumer{}
	cl, _ := NewClient(ClientConfig{Relay: r, Consumer: cons, PollExpiry: 10 * time.Millisecond})
	if _, err := cl.Poll(); err == nil {
		t.Fatal("off-buffer poll without bootstrap succeeded")
	}
}

func TestClientBackgroundRun(t *testing.T) {
	src := NewLogSource()
	r := NewRelay(RelayConfig{})
	defer r.Close()
	r.AttachSource(src, 2*time.Millisecond)
	cons := &collectingConsumer{}
	cl, _ := NewClient(ClientConfig{Relay: r, Consumer: cons, PollExpiry: 20 * time.Millisecond})
	cl.Start()
	defer cl.Close()
	for i := 0; i < 50; i++ {
		src.Commit(ev("s", fmt.Sprintf("k%d", i), "v"))
	}
	deadline := time.Now().Add(3 * time.Second)
	for cons.count() < 50 {
		if time.Now().After(deadline) {
			t.Fatalf("background client consumed %d/50", cons.count())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRelayAppend(b *testing.B) {
	r := NewRelay(RelayConfig{MaxEvents: 1 << 18})
	defer r.Close()
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Append(Txn{SCN: int64(i + 1), Events: []Event{{Source: "s", Key: []byte("k"), Payload: payload}}})
	}
}

func BenchmarkRelayRead(b *testing.B) {
	r := NewRelay(RelayConfig{MaxEvents: 1 << 18})
	defer r.Close()
	payload := make([]byte, 256)
	for i := 0; i < 10000; i++ {
		r.Append(Txn{SCN: int64(i + 1), Events: []Event{{Source: "s", Key: []byte("k"), Payload: payload}}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		since := int64(i % 9000)
		if _, err := r.Read(since, 100, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelayReadBlocking measures the parked-reader wake path: a reader
// blocked at the relay tail, an append arriving, and the read returning. The
// reported wake-ns/op is the latency from append completion to read return
// (the fixed pre-append sleep that lets the reader park is excluded).
func BenchmarkRelayReadBlocking(b *testing.B) {
	r := NewRelay(RelayConfig{})
	defer r.Close()
	payload := make([]byte, 256)
	appended := make(chan time.Time, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var wake time.Duration
	for i := 0; i < b.N; i++ {
		scn := int64(i + 1)
		go func() {
			time.Sleep(20 * time.Microsecond) // let the reader park first
			r.Append(Txn{SCN: scn, Events: []Event{{Source: "s", Key: []byte("k"), Payload: payload}}})
			appended <- time.Now()
		}()
		evs, err := r.ReadBlocking(scn-1, 10, nil, time.Second)
		readDone := time.Now()
		appendDone := <-appended
		if err != nil {
			b.Fatal(err)
		}
		if len(evs) != 1 {
			b.Fatalf("read %d events at scn %d", len(evs), scn)
		}
		if d := readDone.Sub(appendDone); d > 0 {
			wake += d
		}
	}
	b.ReportMetric(float64(wake.Nanoseconds())/float64(b.N), "wake-ns/op")
}
