package databus_test

// Fan-out correctness and resource-bound tests for the chunked-ring relay:
// the long-poll path must leave no state behind per poll (the old relay
// leaked one subscriber channel per ReadBlocking), PullOnce must surface
// append failures instead of tearing holes in the commit order, and — E8 —
// source load and per-consumer serve cost must not scale with consumer
// count, even with appends and chunk eviction racing the readers.

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"datainfra/internal/databus"
	"datainfra/internal/metrics"
)

// TestReadBlockingLeakFree is the subscriber-leak regression test: 10k
// caught-up blocking polls must leave zero parked waiters and a bounded
// heap. The pre-chunked-ring relay registered one channel in r.subs per
// poll and never removed it (~1 MiB across 10k polls), failing both checks.
func TestReadBlockingLeakFree(t *testing.T) {
	r := databus.NewRelay(databus.RelayConfig{MaxEvents: 128})
	defer r.Close()
	for i := 1; i <= 8; i++ {
		mustAppend(t, r, int64(i), "follow", i)
	}
	head := r.LastSCN()

	const polls = 10000
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < polls; i++ {
		events, err := r.ReadBlocking(head, 64, nil, time.Microsecond)
		if err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
		if len(events) != 0 {
			t.Fatalf("poll %d: caught-up read returned %d events", i, len(events))
		}
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if w := r.Waiters(); w != 0 {
		t.Fatalf("%d waiters still registered after %d finished polls", w, polls)
	}
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > 512<<10 {
		t.Fatalf("heap grew %d bytes across %d caught-up polls; blocking reads are leaking", growth, polls)
	}
}

// failingSource returns a fixed batch whose middle transaction violates SCN
// monotonicity, then nothing.
type failingSource struct{ pulled bool }

func (s *failingSource) Pull(sinceSCN int64, limit int) ([]databus.Txn, error) {
	if s.pulled {
		return nil, nil
	}
	s.pulled = true
	mk := func(scn int64) databus.Txn {
		return databus.Txn{SCN: scn, Events: []databus.Event{{Source: "follow", Key: []byte("k"), Payload: []byte("v")}}}
	}
	return []databus.Txn{mk(5), mk(3), mk(7)}, nil
}

// TestPullOnceSurfacesAppendError: a non-monotonic transaction mid-batch
// must stop the batch, surface the error, bump the append-errors counter,
// and leave the transactions after the bad one un-appended (appending past
// a rejected txn would silently tear a hole in the commit order).
func TestPullOnceSurfacesAppendError(t *testing.T) {
	appendErrors := metrics.RegisterCounter("databus_relay_append_errors_total", "")
	errsBefore := appendErrors.Value()

	r := databus.NewRelay(databus.RelayConfig{MaxEvents: 128})
	defer r.Close()
	n, err := r.PullOnce(&failingSource{}, 100)
	if !errors.Is(err, databus.ErrNonMonotonicSCN) {
		t.Fatalf("PullOnce error = %v, want ErrNonMonotonicSCN", err)
	}
	if n != 1 {
		t.Fatalf("PullOnce appended %d txns before the bad one, want 1", n)
	}
	if last := r.LastSCN(); last != 5 {
		t.Fatalf("LastSCN = %d after rejected batch, want 5 (txn 7 must not ride past txn 3's rejection)", last)
	}
	if got := r.BufferedEvents(); got != 1 {
		t.Fatalf("BufferedEvents = %d, want 1", got)
	}
	if d := appendErrors.Value() - errsBefore; d != 1 {
		t.Fatalf("databus_relay_append_errors_total moved by %d, want 1", d)
	}

	// A source pull failure surfaces too (and appends nothing).
	boom := errors.New("source down")
	_, err = r.PullOnce(pullFunc(func(int64, int) ([]databus.Txn, error) { return nil, boom }), 10)
	if !errors.Is(err, boom) {
		t.Fatalf("PullOnce pull error = %v, want wrapped %v", err, boom)
	}
}

type pullFunc func(sinceSCN int64, limit int) ([]databus.Txn, error)

func (f pullFunc) Pull(sinceSCN int64, limit int) ([]databus.Txn, error) { return f(sinceSCN, limit) }

func mustAppend(tb testing.TB, r *databus.Relay, scn int64, source string, seq int) {
	tb.Helper()
	e := databus.Event{
		Source:  source,
		Key:     []byte(fmt.Sprintf("k:%08d", scn)),
		Payload: []byte(fmt.Sprintf("p:%08d:%d", scn, seq)),
	}
	e.ComputePartition(16)
	if err := r.Append(databus.Txn{SCN: scn, Events: []databus.Event{e}}); err != nil {
		tb.Fatalf("append SCN %d: %v", scn, err)
	}
}

// TestE8IsolationFanOut drives 200 concurrent consumers — mixed filtered and
// unfiltered, some over HTTP — against one relay while a producer appends
// (and the small window forces continuous chunk eviction). Asserts the E8
// property: SourcePulls is exactly the producer's pull count, i.e. serving
// 200 consumers put zero additional load on the source. Every consumer
// stream must be strictly SCN-ordered with untorn events (key and payload
// re-derivable from the SCN); filtered consumers must see only their source.
func TestE8IsolationFanOut(t *testing.T) {
	const (
		totalTxns = 1024
		window    = 512 // half the stream: eviction races the readers
		consumers = 200
		httpEvery = 25 // consumers 24, 49, ... go through the HTTP transport
	)
	r := databus.NewRelay(databus.RelayConfig{MaxEvents: window})
	defer r.Close()
	srv := httptest.NewServer(&databus.Handler{Relay: r, PollExpiry: 20 * time.Millisecond})
	defer srv.Close()

	// The producer is the only path to the source: it commits to a LogSource
	// and pulls explicitly, so SourcePulls has a deterministic expected value.
	src := databus.NewLogSource()
	done := make(chan struct{})
	var producerPulls int64
	var wgProd sync.WaitGroup
	wgProd.Add(1)
	go func() {
		defer wgProd.Done()
		defer close(done)
		for scn := 1; scn <= totalTxns; scn++ {
			src.Commit(databus.Event{
				Source:  []string{"follow", "profile"}[scn%2],
				Key:     []byte(fmt.Sprintf("k:%08d", scn)),
				Payload: []byte(fmt.Sprintf("p:%08d:0", scn)),
			})
			if scn%8 == 0 || scn == totalTxns {
				if _, err := r.PullOnce(src, 16); err != nil {
					t.Errorf("producer pull: %v", err)
					return
				}
				producerPulls++
			}
		}
	}()

	verify := func(c int, e *databus.Event, lastSCN int64, filtered string) error {
		if e.SCN <= lastSCN {
			return fmt.Errorf("consumer %d: SCN went %d -> %d", c, lastSCN, e.SCN)
		}
		if filtered != "" && e.Source != filtered {
			return fmt.Errorf("consumer %d: filtered stream leaked source %q at SCN %d", c, e.Source, e.SCN)
		}
		wantKey := fmt.Sprintf("k:%08d", e.SCN)
		wantPayload := fmt.Sprintf("p:%08d:0", e.SCN)
		if string(e.Key) != wantKey || string(e.Payload) != wantPayload {
			return fmt.Errorf("consumer %d: torn event at SCN %d: key=%q payload=%q", c, e.SCN, e.Key, e.Payload)
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			filtered := ""
			var f *databus.Filter
			if c%4 == 3 {
				filtered = "follow"
				f = &databus.Filter{Sources: []string{filtered}}
			}
			var reader databus.EventReader = r
			if c%httpEvery == httpEvery-1 {
				reader = &databus.HTTPReader{BaseURL: srv.URL}
			}
			var batch databus.Batch
			useBatch := c%2 == 0
			since, seen := int64(0), 0
			for {
				var events []databus.Event
				var err error
				if br, ok := reader.(databus.BatchReader); ok && useBatch {
					_, err = br.ReadBatchBlocking(since, 128, f, 10*time.Millisecond, &batch)
					events = batch.Events
				} else {
					events, err = reader.ReadBlocking(since, 128, f, 10*time.Millisecond)
				}
				if errors.Is(err, databus.ErrSCNTooOld) {
					since = r.MinSCN() - 1 // fell off the window: re-join at its tail
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("consumer %d: %v", c, err)
					return
				}
				for i := range events {
					if verr := verify(c, &events[i], since, filtered); verr != nil {
						errs <- verr
						return
					}
					since = events[i].SCN
					seen++
				}
				if len(events) == 0 {
					select {
					case <-done:
						// The final txn's source is "follow", so filtered
						// consumers reach totalTxns too.
						if since >= int64(totalTxns) {
							if seen == 0 {
								errs <- fmt.Errorf("consumer %d: saw no events", c)
							}
							return
						}
					default:
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wgProd.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	if got := r.SourcePulls(); got != producerPulls {
		t.Fatalf("SourcePulls = %d with %d consumers, want exactly the producer's %d: consumers must never reach the source (E8)",
			got, consumers, producerPulls)
	}
	if evicted := r.BufferedEvents(); evicted > window {
		t.Fatalf("window holds %d events, budget %d", evicted, window)
	}
	if w := r.Waiters(); w != 0 {
		t.Fatalf("%d waiters leaked after all consumers exited", w)
	}
}
