package databus

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"datainfra/internal/resilience"
)

// HTTP transport: relays and bootstrap servers serve their event streams
// over plain HTTP with a compact binary framing (u32 length + encoded event,
// terminated by a zero-length frame), so Databus clients in other processes
// use the same client library against a remote pipeline.

// Paths served by Handler.
const (
	StreamPath    = "/stream"
	BootstrapPath = "/bootstrap"
	resumeHeader  = "X-Databus-Resume-SCN"
)

// Handler serves a Relay (and optionally a bootstrap source) over HTTP.
type Handler struct {
	Relay *Relay
	Boot  BootstrapSource // optional
	// PollExpiry bounds how long /stream blocks when the client is caught
	// up; default 250ms.
	PollExpiry time.Duration
}

// ServeHTTP dispatches /stream and /bootstrap.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case StreamPath:
		h.stream(w, r)
	case BootstrapPath:
		h.bootstrap(w, r)
	default:
		http.NotFound(w, r)
	}
}

func parseFilter(r *http.Request) (*Filter, error) {
	var f *Filter
	if s := r.URL.Query().Get("sources"); s != "" {
		f = &Filter{Sources: strings.Split(s, ",")}
	}
	if p := r.URL.Query().Get("partitions"); p != "" {
		if f == nil {
			f = &Filter{}
		}
		for _, part := range strings.Split(p, ",") {
			n, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("databus: bad partition %q", part)
			}
			f.Partitions = append(f.Partitions, n)
		}
	}
	if proj := r.URL.Query().Get("project"); proj != "" {
		if f == nil {
			f = &Filter{}
		}
		f.Project = strings.Split(proj, ",")
	}
	return f, nil
}

func writeEventFrame(w io.Writer, e *Event) error {
	data, err := e.MarshalBinary()
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

func writeTerminator(w io.Writer) error {
	var hdr [4]byte
	_, err := w.Write(hdr[:])
	return err
}

// countingWriter distinguishes "failed before any byte hit the wire" (an
// HTTP error status is still possible) from a mid-stream failure.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// stream serves one long-poll page. Events go straight from the relay's
// encode-once ring to the response writer (StreamTo) — no []Event
// materialization, no re-encoding, no relay lock held during socket writes.
// When the client is caught up the handler parks on the relay's append
// broadcast until events arrive, the poll expiry passes, or the client goes
// away; nothing is registered, so an abandoned poll leaves no state behind.
func (h *Handler) stream(w http.ResponseWriter, r *http.Request) {
	since, _ := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	if max <= 0 {
		max = 1000
	}
	f, err := parseFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	expiry := h.PollExpiry
	if expiry == 0 {
		expiry = 250 * time.Millisecond
	}
	deadline := time.NewTimer(expiry)
	defer deadline.Stop()
	cw := &countingWriter{w: w}
	for {
		// Capture the broadcast channel before reading so an append racing
		// the read can never be missed.
		ch := h.Relay.notify()
		w.Header().Set("Content-Type", "application/x-databus-events")
		n, _, err := h.Relay.StreamTo(cw, since, max, f)
		switch {
		case errors.Is(err, ErrSCNTooOld):
			http.Error(w, err.Error(), http.StatusGone)
			return
		case err != nil:
			if cw.n == 0 {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return // mid-stream failure: the framing's truncation is the signal
		}
		if n > 0 {
			_ = writeTerminator(w)
			return
		}
		h.Relay.waiters.Add(1)
		mRelayBlockedReaders.Set(h.Relay.Waiters())
		select {
		case <-deadline.C:
			h.Relay.waiters.Add(-1)
			_ = writeTerminator(w) // empty batch: the client re-polls
			return
		case <-r.Context().Done():
			h.Relay.waiters.Add(-1)
			return
		case <-h.Relay.stop:
			h.Relay.waiters.Add(-1)
			_ = writeTerminator(w)
			return
		case <-ch:
			h.Relay.waiters.Add(-1)
		}
	}
}

func (h *Handler) bootstrap(w http.ResponseWriter, r *http.Request) {
	if h.Boot == nil {
		http.Error(w, "databus: no bootstrap source", http.StatusNotImplemented)
		return
	}
	since, _ := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
	f, err := parseFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Buffer the catch-up so the resume SCN can travel in a header.
	var events []Event
	resume, err := h.Boot.Catchup(since, f, func(e Event) error {
		events = append(events, e)
		return nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-databus-events")
	w.Header().Set(resumeHeader, strconv.FormatInt(resume, 10))
	for i := range events {
		if err := writeEventFrame(w, &events[i]); err != nil {
			return
		}
	}
	_ = writeTerminator(w)
}

// errServerStatus marks a 5xx from the remote end: the request was well-
// formed but the server (or an intermediary) failed, so a retry may help.
var errServerStatus = errors.New("databus: remote server error")

// retryableHTTP classifies transport failures and 5xx responses as worth
// retrying; 4xx (including 410 Gone = ErrSCNTooOld) surface immediately.
func retryableHTTP(err error) bool {
	return resilience.IsTransient(err) || errors.Is(err, errServerStatus)
}

// httpRetryDefaults is the transport-level policy for remote relays and
// bootstrap servers: a couple of quick re-GETs with jitter. The Databus
// client layers its own read retry/failover on top.
var httpRetryDefaults = resilience.Policy{
	MaxAttempts:    3,
	InitialBackoff: 5 * time.Millisecond,
	MaxBackoff:     200 * time.Millisecond,
	Retryable:      retryableHTTP,
}

// HTTPReader is an EventReader over a remote relay's /stream endpoint, so
// ClientConfig.Relay can point across the network.
type HTTPReader struct {
	BaseURL string // e.g. "http://relay-1:8600"
	Client  *http.Client
	// Retry overrides the transport retry policy; zero value = 3 attempts
	// with jittered backoff.
	Retry *resilience.Policy
}

func (h *HTTPReader) httpClient() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

func retryPolicy(override *resilience.Policy) resilience.Policy {
	if override == nil {
		return httpRetryDefaults
	}
	p := *override
	if p.Retryable == nil {
		p.Retryable = retryableHTTP
	}
	return p
}

func filterQuery(f *Filter) string {
	if f == nil {
		return ""
	}
	var sb strings.Builder
	if len(f.Sources) > 0 {
		sb.WriteString("&sources=" + strings.Join(f.Sources, ","))
	}
	if f.Partitions != nil {
		parts := make([]string, len(f.Partitions))
		for i, p := range f.Partitions {
			parts[i] = strconv.Itoa(p)
		}
		sb.WriteString("&partitions=" + strings.Join(parts, ","))
	}
	if len(f.Project) > 0 {
		sb.WriteString("&project=" + strings.Join(f.Project, ","))
	}
	return sb.String()
}

func readEventFrames(r io.Reader) ([]Event, error) {
	var out []Event
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF && len(out) == 0 {
				return out, nil
			}
			return out, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 {
			return out, nil
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return out, err
		}
		var e Event
		if err := e.UnmarshalBinary(buf); err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// ReadBlocking implements EventReader against the remote relay. Blocking is
// server-side (the relay holds the request until events arrive or its poll
// expiry passes). Connection failures and 5xx responses are retried with
// backoff + jitter; events are only parsed from a successful response, so
// retries never deliver a partial batch twice.
func (h *HTTPReader) ReadBlocking(sinceSCN int64, maxEvents int, f *Filter, timeout time.Duration) ([]Event, error) {
	url := fmt.Sprintf("%s%s?since=%d&max=%d%s", h.BaseURL, StreamPath, sinceSCN, maxEvents, filterQuery(f))
	return resilience.RetryValue(context.Background(), retryPolicy(h.Retry), func() ([]Event, error) {
		resp, err := h.httpClient().Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return readEventFrames(resp.Body)
		case resp.StatusCode == http.StatusGone:
			msg, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("%w: %s", ErrSCNTooOld, strings.TrimSpace(string(msg)))
		case resp.StatusCode >= 500:
			msg, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("%w: remote relay: %s: %s", errServerStatus, resp.Status, strings.TrimSpace(string(msg)))
		default:
			msg, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("databus: remote relay: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
	})
}

// ReadBatchBlocking implements BatchReader against the remote relay: the
// response body is staged into the batch's reusable scratch buffer, then
// decoded into the batch's reusable Events slice with one exact-size byte
// arena for all keys and payloads — steady-state cost is ~2 allocations per
// batch regardless of batch size.
func (h *HTTPReader) ReadBatchBlocking(sinceSCN int64, maxEvents int, f *Filter, timeout time.Duration, b *Batch) (int64, error) {
	b.reset()
	url := fmt.Sprintf("%s%s?since=%d&max=%d%s", h.BaseURL, StreamPath, sinceSCN, maxEvents, filterQuery(f))
	_, err := resilience.RetryValue(context.Background(), retryPolicy(h.Retry), func() (int, error) {
		b.scratch = b.scratch[:0]
		resp, err := h.httpClient().Get(url)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			b.scratch, err = appendAll(b.scratch, resp.Body)
			return len(b.scratch), err
		case resp.StatusCode == http.StatusGone:
			msg, _ := io.ReadAll(resp.Body)
			return 0, fmt.Errorf("%w: %s", ErrSCNTooOld, strings.TrimSpace(string(msg)))
		case resp.StatusCode >= 500:
			msg, _ := io.ReadAll(resp.Body)
			return 0, fmt.Errorf("%w: remote relay: %s: %s", errServerStatus, resp.Status, strings.TrimSpace(string(msg)))
		default:
			msg, _ := io.ReadAll(resp.Body)
			return 0, fmt.Errorf("databus: remote relay: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
	})
	if err != nil {
		return sinceSCN, err
	}
	return decodeStagedFrames(b, sinceSCN)
}

// appendAll reads r to EOF into dst, reusing dst's capacity across calls.
func appendAll(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// decodeStagedFrames decodes the wire frames staged in b.scratch into
// b.Events. Two passes: the first validates framing and sizes the arena
// exactly, the second decodes with source interning. Returns the resume SCN
// (last event's SCN, or sinceSCN when the batch is empty).
func decodeStagedFrames(b *Batch, sinceSCN int64) (int64, error) {
	data := b.scratch
	frames, body := 0, 0
	for off := 0; off+frameHdrBytes <= len(data); {
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n == 0 {
			break
		}
		off += frameHdrBytes
		if n < evFixedBytes || off+n > len(data) {
			return sinceSCN, errShort
		}
		body += frameBodyBytes(data[off : off+n])
		frames++
		off += n
	}
	if frames == 0 {
		return sinceSCN, nil
	}
	if cap(b.Events) < frames {
		b.Events = make([]Event, 0, frames)
	}
	arena := make([]byte, 0, body)
	resume := sinceSCN
	for off := 0; off+frameHdrBytes <= len(data); {
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n == 0 {
			break
		}
		off += frameHdrBytes
		var e Event
		if err := decodeEvent(&e, data[off:off+n], &arena, b.intern); err != nil {
			return resume, err
		}
		b.Events = append(b.Events, e)
		resume = e.SCN
		off += n
	}
	return resume, nil
}

// HTTPBootstrap is a BootstrapSource over a remote /bootstrap endpoint.
type HTTPBootstrap struct {
	BaseURL string
	Client  *http.Client
	// Retry overrides the transport retry policy; zero value = 3 attempts
	// with jittered backoff.
	Retry *resilience.Policy
}

// Catchup implements BootstrapSource. The fetch (request + full body read)
// is retried as a unit and the callback only runs after a complete, healthy
// response, so a mid-stream connection drop never double-delivers events.
func (h *HTTPBootstrap) Catchup(sinceSCN int64, f *Filter, fn func(Event) error) (int64, error) {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := fmt.Sprintf("%s%s?since=%d%s", h.BaseURL, BootstrapPath, sinceSCN, filterQuery(f))
	type catchup struct {
		resume int64
		events []Event
	}
	got, err := resilience.RetryValue(context.Background(), retryPolicy(h.Retry), func() (catchup, error) {
		resp, err := client.Get(url)
		if err != nil {
			return catchup{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			status := errors.New("databus")
			if resp.StatusCode >= 500 {
				status = errServerStatus
			}
			return catchup{}, fmt.Errorf("%w: remote bootstrap: %s: %s", status, resp.Status, strings.TrimSpace(string(msg)))
		}
		resume, err := strconv.ParseInt(resp.Header.Get(resumeHeader), 10, 64)
		if err != nil {
			return catchup{}, fmt.Errorf("databus: remote bootstrap: bad resume header: %w", err)
		}
		events, err := readEventFrames(resp.Body)
		if err != nil {
			return catchup{}, err
		}
		return catchup{resume: resume, events: events}, nil
	})
	if err != nil {
		return 0, err
	}
	for _, e := range got.events {
		if err := fn(e); err != nil {
			return 0, err
		}
	}
	return got.resume, nil
}
