package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The observability plane: a named Registry holding counters, gauges and
// bounded fixed-bucket histograms, scraped over HTTP by operators (see
// OPERATIONS.md). Instruments are registered once by name and shared
// process-wide; registration is idempotent so a package can hold its
// instruments in vars and tests can spin up many servers without collisions.

// nameRE is the subsystem_signal_unit convention: lowercase snake_case with
// at least two segments. cmd/metriclint additionally checks the final
// segment against the documented unit list.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// Kind tags what an instrument measures.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Gauge is a settable instantaneous value (queue depth, lag, current SCN),
// safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a zeroed gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets spans 25µs to 10s exponentially — wide enough for
// an in-memory get and a timed-out cross-node quorum write alike.
var DefaultLatencyBuckets = []time.Duration{
	25 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond,
	250 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// FixedHistogram is a bounded-memory latency histogram: samples land in
// fixed buckets (plus an implicit +Inf bucket), so unlike the sample-slice
// Histogram its footprint does not grow with traffic. Percentiles are
// estimated as the upper bound of the bucket containing the rank.
type FixedHistogram struct {
	bounds []time.Duration // ascending upper bounds
	counts []atomic.Int64  // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewFixedHistogram builds a histogram over the given ascending bucket upper
// bounds (DefaultLatencyBuckets when none are given).
func NewFixedHistogram(bounds ...time.Duration) *FixedHistogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not ascending at %d", i))
		}
	}
	return &FixedHistogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *FixedHistogram) Observe(d time.Duration) {
	// Binary search for the first bound >= d.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Time runs fn and records its latency.
func (h *FixedHistogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Count returns the number of samples.
func (h *FixedHistogram) Count() int64 { return h.count.Load() }

// Mean returns the average sample.
func (h *FixedHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed sample.
func (h *FixedHistogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Sum returns the total of all observed samples.
func (h *FixedHistogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Percentile estimates the p-th percentile (0 < p <= 100) using a
// ceil-style rank over cumulative bucket counts; the answer is the upper
// bound of the bucket holding that rank (the true max for the +Inf bucket).
func (h *FixedHistogram) Percentile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.Max()
		}
	}
	return h.Max()
}

// Buckets returns (upper bound, cumulative count) pairs including +Inf.
func (h *FixedHistogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		b := BucketCount{Count: cum}
		if i < len(h.bounds) {
			b.UpperBound = h.bounds[i]
		} else {
			b.Inf = true
		}
		out = append(out, b)
	}
	return out
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperBound time.Duration
	Inf        bool
	Count      int64
}

// Summary renders "count=… mean=… p50=… p99=… max=…".
func (h *FixedHistogram) Summary() string {
	return fmt.Sprintf("count=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(),
		h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// CounterVec is a set of counters sharing one name, split by a single label
// (e.g. per-partition, per-opcode). Children are created on first use.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// With returns the child counter for the label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.m[value]; ok {
		return c
	}
	c = NewCounter()
	v.m[value] = c
	return c
}

// GaugeVec is a set of gauges sharing one name, split by a single label.
type GaugeVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Gauge
}

// With returns the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.m[value]; ok {
		return g
	}
	g = NewGauge()
	v.m[value] = g
	return g
}

func sortedLabels[T any](m map[string]T, mu *sync.RWMutex) []string {
	mu.RLock()
	defer mu.RUnlock()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// entry is one registered instrument.
type entry struct {
	name, help string
	kind       Kind

	counter    *Counter
	gauge      *Gauge
	gaugeFn    func() int64
	hist       *FixedHistogram
	counterVec *CounterVec
	gaugeVec   *GaugeVec
}

// Registry holds named instruments and renders snapshots. The zero value is
// not usable; call NewRegistry (or use Default).
type Registry struct {
	mu      sync.RWMutex
	order   []string
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// Default is the process-wide registry: package-level Register* helpers and
// every cmd/* server's /metrics endpoint use it.
var Default = NewRegistry()

func (r *Registry) register(name, help string, kind Kind, build func() *entry) *entry {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: name %q violates the subsystem_signal_unit convention", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e
	}
	e := build()
	e.name, e.help, e.kind = name, help, kind
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// RegisterCounter returns the named counter, creating it on first call.
func (r *Registry) RegisterCounter(name, help string) *Counter {
	e := r.register(name, help, KindCounter, func() *entry {
		return &entry{counter: NewCounter()}
	})
	if e.counter == nil {
		panic(fmt.Sprintf("metrics: %q is a counter vec, not a counter", name))
	}
	return e.counter
}

// RegisterGauge returns the named gauge, creating it on first call.
func (r *Registry) RegisterGauge(name, help string) *Gauge {
	e := r.register(name, help, KindGauge, func() *entry {
		return &entry{gauge: NewGauge()}
	})
	if e.gauge == nil {
		panic(fmt.Sprintf("metrics: %q is not a plain gauge", name))
	}
	return e.gauge
}

// RegisterGaugeFunc registers a gauge whose value is computed at scrape
// time (lag gauges: relay SCN minus consumer SCN). Re-registering replaces
// the function — the latest instance wins, which lets tests and restarted
// components rebind the name.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() int64) {
	e := r.register(name, help, KindGauge, func() *entry {
		return &entry{}
	})
	r.mu.Lock()
	e.gauge = nil
	e.gaugeFn = fn
	r.mu.Unlock()
}

// RegisterHistogram returns the named fixed-bucket histogram, creating it
// (with DefaultLatencyBuckets) on first call.
func (r *Registry) RegisterHistogram(name, help string) *FixedHistogram {
	e := r.register(name, help, KindHistogram, func() *entry {
		return &entry{hist: NewFixedHistogram()}
	})
	return e.hist
}

// RegisterHistogramBuckets returns the named fixed-bucket histogram,
// creating it with the given ascending bucket upper bounds on first call
// (first registration wins; later calls return the existing instrument).
// Counting histograms — pipeline depth, batch sizes — pass small integer
// bounds encoded as nanosecond durations.
func (r *Registry) RegisterHistogramBuckets(name, help string, bounds ...time.Duration) *FixedHistogram {
	e := r.register(name, help, KindHistogram, func() *entry {
		return &entry{hist: NewFixedHistogram(bounds...)}
	})
	return e.hist
}

// RegisterCounterVec returns the named label-split counter family.
func (r *Registry) RegisterCounterVec(name, help, label string) *CounterVec {
	e := r.register(name, help, KindCounter, func() *entry {
		return &entry{counterVec: &CounterVec{label: label, m: map[string]*Counter{}}}
	})
	if e.counterVec == nil {
		panic(fmt.Sprintf("metrics: %q is a plain counter, not a vec", name))
	}
	return e.counterVec
}

// RegisterGaugeVec returns the named label-split gauge family.
func (r *Registry) RegisterGaugeVec(name, help, label string) *GaugeVec {
	e := r.register(name, help, KindGauge, func() *entry {
		return &entry{gaugeVec: &GaugeVec{label: label, m: map[string]*Gauge{}}}
	})
	if e.gaugeVec == nil {
		panic(fmt.Sprintf("metrics: %q is a plain gauge, not a vec", name))
	}
	return e.gaugeVec
}

// Package-level helpers registering on Default -------------------------------

// RegisterCounter registers name on the Default registry.
func RegisterCounter(name, help string) *Counter { return Default.RegisterCounter(name, help) }

// RegisterGauge registers name on the Default registry.
func RegisterGauge(name, help string) *Gauge { return Default.RegisterGauge(name, help) }

// RegisterGaugeFunc registers name on the Default registry.
func RegisterGaugeFunc(name, help string, fn func() int64) {
	Default.RegisterGaugeFunc(name, help, fn)
}

// RegisterHistogram registers name on the Default registry.
func RegisterHistogram(name, help string) *FixedHistogram {
	return Default.RegisterHistogram(name, help)
}

// RegisterHistogramBuckets registers name on the Default registry.
func RegisterHistogramBuckets(name, help string, bounds ...time.Duration) *FixedHistogram {
	return Default.RegisterHistogramBuckets(name, help, bounds...)
}

// RegisterCounterVec registers name on the Default registry.
func RegisterCounterVec(name, help, label string) *CounterVec {
	return Default.RegisterCounterVec(name, help, label)
}

// RegisterGaugeVec registers name on the Default registry.
func RegisterGaugeVec(name, help, label string) *GaugeVec {
	return Default.RegisterGaugeVec(name, help, label)
}

// Snapshot ----------------------------------------------------------------

// LabelValue is one (label value, number) pair of a vec sample.
type LabelValue struct {
	Label string `json:"label"`
	Value int64  `json:"value"`
}

// HistogramSnapshot is the JSON shape of a histogram sample.
type HistogramSnapshot struct {
	Count   int64 `json:"count"`
	SumNs   int64 `json:"sum_ns"`
	MeanNs  int64 `json:"mean_ns"`
	P50Ns   int64 `json:"p50_ns"`
	P99Ns   int64 `json:"p99_ns"`
	MaxNs   int64 `json:"max_ns"`
	Buckets []struct {
		LeNs  int64 `json:"le_ns"` // -1 means +Inf
		Count int64 `json:"count"`
	} `json:"buckets"`
}

// Sample is one metric in a snapshot.
type Sample struct {
	Name      string             `json:"name"`
	Kind      Kind               `json:"kind"`
	Help      string             `json:"help,omitempty"`
	Value     *int64             `json:"value,omitempty"`
	Label     string             `json:"label,omitempty"`
	Values    []LabelValue       `json:"values,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot captures every instrument in registration order.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	entries := make([]entry, len(names))
	for i, n := range names {
		// Copy the entry, not its pointer: RegisterGaugeFunc rebinds the
		// gauge/gaugeFn fields under the write lock, and the instrument
		// reads below happen after this lock is released.
		entries[i] = *r.entries[n]
	}
	r.mu.RUnlock()

	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Kind: e.kind, Help: e.help}
		switch {
		case e.counter != nil:
			v := e.counter.Value()
			s.Value = &v
		case e.gauge != nil:
			v := e.gauge.Value()
			s.Value = &v
		case e.gaugeFn != nil:
			v := e.gaugeFn()
			s.Value = &v
		case e.hist != nil:
			h := e.hist
			hs := &HistogramSnapshot{
				Count:  h.Count(),
				SumNs:  int64(h.Sum()),
				MeanNs: int64(h.Mean()),
				P50Ns:  int64(h.Percentile(50)),
				P99Ns:  int64(h.Percentile(99)),
				MaxNs:  int64(h.Max()),
			}
			for _, b := range h.Buckets() {
				le := int64(b.UpperBound)
				if b.Inf {
					le = -1
				}
				hs.Buckets = append(hs.Buckets, struct {
					LeNs  int64 `json:"le_ns"`
					Count int64 `json:"count"`
				}{le, b.Count})
			}
			s.Histogram = hs
		case e.counterVec != nil:
			s.Label = e.counterVec.label
			for _, k := range sortedLabels(e.counterVec.m, &e.counterVec.mu) {
				s.Values = append(s.Values, LabelValue{Label: k, Value: e.counterVec.With(k).Value()})
			}
		case e.gaugeVec != nil:
			s.Label = e.gaugeVec.label
			for _, k := range sortedLabels(e.gaugeVec.m, &e.gaugeVec.mu) {
				s.Values = append(s.Values, LabelValue{Label: k, Value: e.gaugeVec.With(k).Value()})
			}
		}
		out = append(out, s)
	}
	return out
}

// WriteText renders the snapshot in the Prometheus text exposition style:
// HELP/TYPE comments, `name value` lines, `name{label="v"} value` for vecs,
// and cumulative `_bucket`/`_count`/`_sum` lines for histograms (durations
// in seconds).
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		switch {
		case s.Value != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.Name, *s.Value); err != nil {
				return err
			}
		case s.Histogram != nil:
			h := s.Histogram
			for _, b := range h.Buckets {
				le := "+Inf"
				if b.LeNs >= 0 {
					le = formatSeconds(b.LeNs)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, le, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", s.Name, h.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", s.Name, formatSeconds(h.SumNs)); err != nil {
				return err
			}
		default:
			for _, lv := range s.Values {
				if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", s.Name, s.Label, lv.Label, lv.Value); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// formatSeconds renders nanoseconds as a decimal seconds string without
// trailing zeros (0.0025, 1, 0.000025).
func formatSeconds(ns int64) string {
	f := float64(ns) / 1e9
	return fmt.Sprintf("%g", f)
}

// WriteJSON renders the snapshot as a JSON document {"metrics": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"metrics": r.Snapshot()})
}
