package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.RegisterCounter("test_registry_hits_total", "hits")
	b := r.RegisterCounter("test_registry_hits_total", "hits")
	if a != b {
		t.Fatal("re-registration should return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared counter value = %d, want 1", b.Value())
	}
}

func TestRegistryNameConvention(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"NoCaps", "single", "trailing_", "_leading", "dash-name"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should have panicked", bad)
				}
			}()
			r.RegisterCounter(bad, "")
		}()
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("test_kind_events_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name should panic")
		}
	}()
	r.RegisterGauge("test_kind_events_total", "")
}

// TestRegistryConcurrency exercises registration, increments, vec children
// and snapshots from many goroutines; run under -race (Makefile test-race).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.RegisterCounter("test_conc_ops_total", "ops").Inc()
				r.RegisterGauge("test_conc_depth_events", "depth").Set(int64(j))
				r.RegisterHistogram("test_conc_latency_seconds", "lat").Observe(time.Duration(j) * time.Microsecond)
				r.RegisterCounterVec("test_conc_vec_ops_total", "ops", "op").With(fmt.Sprintf("op%d", j%3)).Inc()
				r.RegisterGaugeVec("test_conc_lag_events", "lag", "partition").With(fmt.Sprintf("%d", i)).Set(int64(j))
				r.RegisterGaugeFunc("test_conc_fn_events", "fn", func() int64 { return int64(j) })
				if j%50 == 0 {
					_ = r.Snapshot()
					var buf bytes.Buffer
					_ = r.WriteText(&buf)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.RegisterCounter("test_conc_ops_total", "ops").Value(); got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
	var total int64
	vec := r.RegisterCounterVec("test_conc_vec_ops_total", "ops", "op")
	for _, op := range []string{"op0", "op1", "op2"} {
		total += vec.With(op).Value()
	}
	if total != 8*200 {
		t.Fatalf("vec total = %d, want %d", total, 8*200)
	}
}

// TestSnapshotGolden pins the exact text exposition format.
func TestSnapshotGolden(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("demo_requests_total", "requests served").Add(42)
	r.RegisterGauge("demo_queue_events", "queued events").Set(7)
	r.RegisterGaugeFunc("demo_lag_scn", "relay minus consumer SCN", func() int64 { return 3 })
	h := r.RegisterHistogram("demo_latency_seconds", "request latency")
	h.Observe(30 * time.Microsecond) // bucket le=50µs
	h.Observe(40 * time.Microsecond) // bucket le=50µs
	h.Observe(2 * time.Millisecond)  // bucket le=2.5ms
	v := r.RegisterCounterVec("demo_ops_total", "ops by kind", "op")
	v.With("get").Add(5)
	v.With("put").Add(9)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP demo_requests_total requests served",
		"# TYPE demo_requests_total counter",
		"demo_requests_total 42",
		"# HELP demo_queue_events queued events",
		"# TYPE demo_queue_events gauge",
		"demo_queue_events 7",
		"# HELP demo_lag_scn relay minus consumer SCN",
		"# TYPE demo_lag_scn gauge",
		"demo_lag_scn 3",
		"# HELP demo_latency_seconds request latency",
		"# TYPE demo_latency_seconds histogram",
		`demo_latency_seconds_bucket{le="2.5e-05"} 0`,
		`demo_latency_seconds_bucket{le="5e-05"} 2`,
		`demo_latency_seconds_bucket{le="0.0001"} 2`,
		`demo_latency_seconds_bucket{le="0.00025"} 2`,
		`demo_latency_seconds_bucket{le="0.0005"} 2`,
		`demo_latency_seconds_bucket{le="0.001"} 2`,
		`demo_latency_seconds_bucket{le="0.0025"} 3`,
		`demo_latency_seconds_bucket{le="0.005"} 3`,
		`demo_latency_seconds_bucket{le="0.01"} 3`,
		`demo_latency_seconds_bucket{le="0.025"} 3`,
		`demo_latency_seconds_bucket{le="0.05"} 3`,
		`demo_latency_seconds_bucket{le="0.1"} 3`,
		`demo_latency_seconds_bucket{le="0.25"} 3`,
		`demo_latency_seconds_bucket{le="0.5"} 3`,
		`demo_latency_seconds_bucket{le="1"} 3`,
		`demo_latency_seconds_bucket{le="2.5"} 3`,
		`demo_latency_seconds_bucket{le="5"} 3`,
		`demo_latency_seconds_bucket{le="10"} 3`,
		`demo_latency_seconds_bucket{le="+Inf"} 3`,
		"demo_latency_seconds_count 3",
		"demo_latency_seconds_sum 0.00207",
		"# HELP demo_ops_total ops by kind",
		"# TYPE demo_ops_total counter",
		`demo_ops_total{op="get"} 5`,
		`demo_ops_total{op="put"} 9`,
		"",
	}, "\n")
	if buf.String() != want {
		t.Fatalf("text exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("demo_requests_total", "requests").Add(5)
	r.RegisterHistogram("demo_latency_seconds", "lat").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Sample `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "demo_requests_total" || *doc.Metrics[0].Value != 5 {
		t.Fatalf("bad counter sample: %+v", doc.Metrics[0])
	}
	if doc.Metrics[1].Histogram == nil || doc.Metrics[1].Histogram.Count != 1 {
		t.Fatalf("bad histogram sample: %+v", doc.Metrics[1])
	}
}

func TestFixedHistogramPercentile(t *testing.T) {
	h := NewFixedHistogram()
	for i := 0; i < 99; i++ {
		h.Observe(40 * time.Microsecond)
	}
	h.Observe(4 * time.Second)
	if got := h.Percentile(50); got != 50*time.Microsecond {
		t.Fatalf("p50 = %v, want 50µs bucket bound", got)
	}
	// The single outlier is the 100th of 100 samples: p100 (and p99.5)
	// must land in its bucket, p99 in the dense one.
	if got := h.Percentile(100); got != 5*time.Second {
		t.Fatalf("p100 = %v, want 5s bucket bound", got)
	}
	if got := h.Percentile(99); got != 50*time.Microsecond {
		t.Fatalf("p99 = %v, want 50µs bucket bound", got)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 4*time.Second {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestFixedHistogramOverflowBucket(t *testing.T) {
	h := NewFixedHistogram(time.Millisecond)
	h.Observe(30 * time.Second) // beyond every bound -> +Inf bucket
	if got := h.Percentile(99); got != 30*time.Second {
		t.Fatalf("+Inf bucket percentile should report the true max, got %v", got)
	}
}

func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("demo_requests_total", "").Add(3)
	srv := httptest.NewServer(NewDebugMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "demo_requests_total 3") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"demo_requests_total"`) {
		t.Fatalf("/metrics?format=json: code=%d body=%q", code, body)
	}
	if code, _ := get("/metrics.json"); code != 200 {
		t.Fatalf("/metrics.json: code=%d", code)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz: code=%d", code)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}
