package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler serves the registry as text (Prometheus exposition style) or, when
// the request asks for JSON (?format=json or Accept: application/json), as a
// JSON snapshot.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// JSONHandler always serves the JSON snapshot.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// NewDebugMux builds the standard operator mux every cmd/* server mounts:
//
//	/metrics        text exposition (add ?format=json for the JSON snapshot)
//	/metrics.json   JSON snapshot
//	/healthz        liveness probe (200 "ok")
//	/debug/pprof/*  CPU, heap, goroutine, block and mutex profiles
//
// See OPERATIONS.md for scrape and profiling examples.
func NewDebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug mux for r on addr in a background goroutine and
// returns the bound address and a shutdown func. Commands use it so the
// observability plane never blocks the data plane's startup path.
func Serve(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
