// Package metrics is the repository's observability plane. It has two
// halves:
//
//   - Bench instruments: the unbounded sample-slice Histogram, the Meter and
//     the Table renderer the benchmark harness uses to print
//     paper-versus-measured rows (this file).
//   - The Registry (registry.go): named counters, gauges, lag gauge funcs
//     and bounded fixed-bucket histograms shared process-wide, scraped over
//     HTTP via the /metrics + /debug/pprof mux in http.go. Every production
//     hot path (Voldemort routed quorum ops, Espresso request/commit, the
//     Databus relay and client, Kafka produce/consume/replication, the
//     resilience layer's retries and breakers) registers its instruments
//     here under the subsystem_signal_unit naming convention enforced by
//     cmd/metriclint and documented metric-by-metric in OPERATIONS.md.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The resilience layer uses counters to account retry attempts, breaker
// opens and half-open probes so chaos runs can report them.
type Counter struct {
	n atomic.Int64
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add counts n more events.
func (c *Counter) Add(n int64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Histogram collects duration samples and reports percentiles.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Time runs fn and records its latency.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using a ceil-style
// rank: the smallest sample such that at least p% of samples are <= it.
// (A truncating index would report p99 of a 10-sample run as the 89th
// percentile sample.)
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sortLocked()
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// Summary renders "mean=… p50=… p99=… max=…".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%v p50=%v p99=%v max=%v",
		h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// Meter measures throughput over a run. It is monotonic-clock safe: the
// start instant is taken from time.Now (which carries Go's monotonic
// reading), a zero-value Meter lazily starts at its first use instead of
// measuring against the wall-clock epoch, and a start instant that lost its
// monotonic reading (deep-copied, round-tripped through encoding) can never
// produce a negative rate.
type Meter struct {
	mu    sync.Mutex
	count int64
	start time.Time
}

// NewMeter starts counting now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// startLocked lazily initializes the start instant (zero-value Meters).
func (m *Meter) startLocked() {
	if m.start.IsZero() {
		m.start = time.Now()
	}
}

// Add counts n operations.
func (m *Meter) Add(n int64) {
	m.mu.Lock()
	m.startLocked()
	m.count += n
	m.mu.Unlock()
}

// Elapsed returns the (non-negative) time since the meter started.
func (m *Meter) Elapsed() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.startLocked()
	el := time.Since(m.start)
	if el < 0 {
		return 0
	}
	return el
}

// Rate returns operations per second since start.
func (m *Meter) Rate() float64 {
	el := m.Elapsed().Seconds()
	m.mu.Lock()
	count := m.count
	m.mu.Unlock()
	if el <= 0 {
		return 0
	}
	return float64(count) / el
}

// Count returns the total.
func (m *Meter) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Table renders experiment rows with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// AddRow appends one row (cells are stringified).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}
