package metrics

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestScrapeRoundTrip serves a registry through the standard debug mux and
// reads it back with the scrape client: scalar values, vec sums and
// histogram percentiles must survive the JSON round trip.
func TestScrapeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("scrape_test_ops_total", "test").Add(7)
	r.RegisterGauge("scrape_test_lag_scn", "test").Set(42)
	v := r.RegisterCounterVec("scrape_test_reqs_total", "test", "op")
	v.With("get").Add(3)
	v.With("put").Add(4)
	h := r.RegisterHistogram("scrape_test_latency_seconds", "test")
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}

	srv := httptest.NewServer(NewDebugMux(r))
	defer srv.Close()

	c := NewScrapeClient(time.Second)
	if !c.Healthy(srv.URL) {
		t.Fatal("healthz probe failed against a live mux")
	}
	if err := c.WaitHealthy(srv.URL, time.Second); err != nil {
		t.Fatal(err)
	}

	samples, err := c.Scrape(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := Value(samples, "scrape_test_ops_total"); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if got := Value(samples, "scrape_test_lag_scn"); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}
	if got := LabelCount(samples, "scrape_test_reqs_total"); got != 7 {
		t.Fatalf("vec sum = %d, want 7", got)
	}
	hs := samples["scrape_test_latency_seconds"].Histogram
	if hs == nil {
		t.Fatal("histogram sample missing")
	}
	if hs.Count != 100 {
		t.Fatalf("histogram count = %d, want 100", hs.Count)
	}
	if hs.P99Ns <= 0 {
		t.Fatalf("histogram p99 = %d, want > 0", hs.P99Ns)
	}
	if got := Value(samples, "scrape_test_missing_total"); got != 0 {
		t.Fatalf("missing metric = %d, want 0", got)
	}
}

// TestScrapeDownTarget: a dead target must fail fast and read as unhealthy.
func TestScrapeDownTarget(t *testing.T) {
	c := NewScrapeClient(200 * time.Millisecond)
	if c.Healthy("127.0.0.1:1") {
		t.Fatal("closed port reported healthy")
	}
	if _, err := c.Scrape("127.0.0.1:1"); err == nil {
		t.Fatal("scrape of closed port succeeded")
	}
}
