package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if p := h.Percentile(50); p < 49*time.Millisecond || p > 52*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Percentile(99); p < 98*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if m := h.Mean(); m < 50*time.Millisecond || m > 51*time.Millisecond {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Microsecond)
				_ = h.Percentile(90)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(100)
	if m.Count() != 100 {
		t.Fatalf("Count = %d", m.Count())
	}
	if m.Rate() <= 0 {
		t.Fatal("Rate not positive")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "E1", Headers: []string{"metric", "paper", "measured"}}
	tab.AddRow("qps", "10K", 12345)
	tab.AddRow("latency", "3ms", "2.5ms")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"E1", "metric", "qps", "12345", "2.5ms", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
