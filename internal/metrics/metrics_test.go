package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if p := h.Percentile(50); p < 49*time.Millisecond || p > 52*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Percentile(99); p < 98*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if m := h.Mean(); m < 50*time.Millisecond || m > 51*time.Millisecond {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Microsecond)
				_ = h.Percentile(90)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

// TestHistogramPercentileCeilRank pins the ceil-style rank: p99 of a small
// sample count must return the top sample, not truncate toward p98.
func TestHistogramPercentileCeilRank(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	// rank = ceil(0.99*10) = 10 -> the 10 ms sample. The old truncating
	// index returned samples[int(0.99*9)] = samples[8] = 9 ms.
	if p := h.Percentile(99); p != 10*time.Millisecond {
		t.Fatalf("p99 of 10 samples = %v, want 10ms", p)
	}
	if p := h.Percentile(50); p != 5*time.Millisecond {
		t.Fatalf("p50 of 10 samples = %v, want 5ms (ceil(0.5*10)=5th)", p)
	}
	if p := h.Percentile(100); p != 10*time.Millisecond {
		t.Fatalf("p100 = %v, want max", p)
	}
	one := NewHistogram()
	one.Observe(time.Second)
	if p := one.Percentile(1); p != time.Second {
		t.Fatalf("p1 of a single sample = %v, want that sample", p)
	}
}

func TestMeterZeroValueAndMonotonic(t *testing.T) {
	// Zero-value Meter must lazily start at first use, not at the wall-clock
	// epoch (which would make every rate ~0).
	var m Meter
	m.Add(1000)
	time.Sleep(2 * time.Millisecond)
	if r := m.Rate(); r <= 0 || r > 1e9 {
		t.Fatalf("zero-value meter rate = %v, want sane positive value", r)
	}
	// A start instant in the wall-clock future (monotonic reading stripped,
	// clock stepped) must clamp to zero elapsed/rate, never go negative.
	bad := &Meter{start: time.Now().Round(0).Add(time.Hour)}
	bad.Add(50)
	// Add lazily initializes only zero starts, so the bogus start survives.
	if el := bad.Elapsed(); el != 0 {
		t.Fatalf("future-start meter elapsed = %v, want 0", el)
	}
	if r := bad.Rate(); r != 0 {
		t.Fatalf("future-start meter rate = %v, want 0", r)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(100)
	if m.Count() != 100 {
		t.Fatalf("Count = %d", m.Count())
	}
	if m.Rate() <= 0 {
		t.Fatal("Rate not positive")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "E1", Headers: []string{"metric", "paper", "measured"}}
	tab.AddRow("qps", "10K", 12345)
	tab.AddRow("latency", "3ms", "2.5ms")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"E1", "metric", "qps", "12345", "2.5ms", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
