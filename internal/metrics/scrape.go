package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// This file is the client side of the observability plane: a scrape client
// for the debug mux every cmd/* server mounts (see NewDebugMux). It is what
// black-box harnesses — cmd/datainfra-cluster above all — use to read a
// process's health and metrics from the outside, over nothing but HTTP.

// ScrapeClient reads /healthz and /metrics.json from a server's debug mux.
// The zero value is not usable; build one with NewScrapeClient.
type ScrapeClient struct {
	hc *http.Client
}

// NewScrapeClient builds a scrape client. timeout bounds every request
// (0 means 5s): a scrape target that is down must fail fast, because health
// probing is how fault windows are detected.
func NewScrapeClient(timeout time.Duration) *ScrapeClient {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	return &ScrapeClient{hc: &http.Client{Timeout: timeout}}
}

// normalizeBase accepts "host:port" or "http://host:port" and returns the
// latter with no trailing slash.
func normalizeBase(base string) string {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/")
}

// Healthy probes GET {base}/healthz and reports whether the target answered
// 200 within the client timeout.
func (c *ScrapeClient) Healthy(base string) bool {
	resp, err := c.hc.Get(normalizeBase(base) + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// WaitHealthy polls /healthz until the target answers or the timeout passes.
func (c *ScrapeClient) WaitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if c.Healthy(base) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("metrics: %s not healthy after %v", base, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Scrape fetches {base}/metrics.json and returns the samples keyed by metric
// name — the registry's JSON snapshot, parsed back into the same Sample type
// the server serialized.
func (c *ScrapeClient) Scrape(base string) (map[string]Sample, error) {
	url := normalizeBase(base) + "/metrics.json"
	resp, err := c.hc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: GET %s: status %d", url, resp.StatusCode)
	}
	var doc struct {
		Metrics []Sample `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("metrics: parse %s: %w", url, err)
	}
	out := make(map[string]Sample, len(doc.Metrics))
	for _, s := range doc.Metrics {
		out[s.Name] = s
	}
	return out, nil
}

// Value returns the scalar value of a counter/gauge sample, or 0 when the
// metric is absent or not scalar — scrape consumers treat a missing metric
// as zero, the Prometheus convention.
func Value(samples map[string]Sample, name string) int64 {
	s, ok := samples[name]
	if !ok || s.Value == nil {
		return 0
	}
	return *s.Value
}

// LabelCount sums every labelled value of a vec sample — e.g. total requests
// across all ops of voldemort_server_requests_total.
func LabelCount(samples map[string]Sample, name string) int64 {
	s, ok := samples[name]
	if !ok {
		return 0
	}
	var sum int64
	for _, lv := range s.Values {
		sum += lv.Value
	}
	return sum
}
