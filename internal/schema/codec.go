package schema

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Binary encoding, Avro-shaped: longs are zig-zag varints; strings/bytes are
// length-prefixed; optionals carry a 1-byte presence marker; arrays and maps
// a varint count; records encode fields in schema order. No field names or
// types on the wire — the schema (and its registry version) carries them,
// which is the compactness Databus relies on.

// ErrTruncated is returned for short input.
var ErrTruncated = errors.New("schema: truncated input")

type encoder struct {
	b    []byte
	keys []string // map-key scratch, reused across encodes (one level deep)
}

func (e *encoder) long(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}
func (e *encoder) bytes(p []byte) {
	e.long(int64(len(p)))
	e.b = append(e.b, p...)
}
func (e *encoder) str(s string) {
	e.long(int64(len(s)))
	e.b = append(e.b, s...)
}
func (e *encoder) double(f float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(f))
}
func (e *encoder) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// decoder walks the wire bytes. Decoded strings are written into one shared
// arena (a strings.Builder, pre-grown to the input length) and returned as
// zero-copy slices of its accumulated string — one allocation for all string
// data per decode instead of one per string. Appending to the Builder never
// mutates already-returned bytes, so earlier slices stay valid even if the
// arena grows.
type decoder struct {
	b     []byte
	arena strings.Builder
	reuse *Decoder // non-nil when decoding through a reusable Decoder
}

// newMap and newSlice are the container allocation points of the decode
// walk; a reusable Decoder satisfies them from its scratch pools.
func (d *decoder) newMap(hint int) map[string]any {
	if d.reuse != nil {
		return d.reuse.nextMap(hint)
	}
	return make(map[string]any, hint)
}

// newSlice returns a slice to append into plus its scratch index (-1 when
// not pooled); the caller hands the final slice back through putSlice so
// capacity grown by append survives into the next Decode.
func (d *decoder) newSlice(hint int) ([]any, int) {
	if d.reuse != nil {
		return d.reuse.nextSlice(hint)
	}
	return make([]any, 0, hint), -1
}

func (d *decoder) putSlice(idx int, s []any) {
	if d.reuse != nil && idx >= 0 {
		d.reuse.slices[idx] = s
	}
}

// str copies p into the arena and returns it as a string view.
func (d *decoder) str(p []byte) string {
	if len(p) == 0 {
		return ""
	}
	start := d.arena.Len()
	d.arena.Write(p)
	return d.arena.String()[start : start+len(p)]
}

func (d *decoder) long() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.b = d.b[n:]
	return v, nil
}
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.long()
	if err != nil {
		return nil, err
	}
	if n < 0 || int64(len(d.b)) < n {
		return nil, ErrTruncated
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v, nil
}
func (d *decoder) double() (float64, error) {
	if len(d.b) < 8 {
		return 0, ErrTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v, nil
}
func (d *decoder) bool() (bool, error) {
	if len(d.b) < 1 {
		return false, ErrTruncated
	}
	v := d.b[0] != 0
	d.b = d.b[1:]
	return v, nil
}

// encPool recycles encoders (buffer + map-key scratch) across Marshal calls:
// steady-state encoding allocates only the exact-size result copy.
var encPool = sync.Pool{
	New: func() any { return &encoder{b: make([]byte, 0, 1024)} },
}

// Marshal encodes a record value (map[string]any) under r. Missing fields
// take their defaults; unknown fields are rejected.
func Marshal(r *Record, value map[string]any) ([]byte, error) {
	if err := checkKnownFields(r, value); err != nil {
		return nil, err
	}
	e := encPool.Get().(*encoder)
	e.b = e.b[:0]
	err := encodeRecord(e, r, value)
	if err != nil {
		encPool.Put(e)
		return nil, err
	}
	out := make([]byte, len(e.b))
	copy(out, e.b)
	encPool.Put(e)
	return out, nil
}

// AppendMarshal encodes value under r, appending to dst, and returns the
// extended slice — the zero-copy variant for callers that own a reusable
// buffer (the Espresso commit path, the Kafka producer).
func AppendMarshal(dst []byte, r *Record, value map[string]any) ([]byte, error) {
	if err := checkKnownFields(r, value); err != nil {
		return dst, err
	}
	e := encPool.Get().(*encoder)
	own := e.b
	e.b = dst
	err := encodeRecord(e, r, value)
	out := e.b
	e.b = own[:0]
	encPool.Put(e)
	if err != nil {
		return dst, err
	}
	return out, nil
}

func checkKnownFields(r *Record, value map[string]any) error {
	for k := range value {
		if _, ok := r.FieldByName(k); !ok {
			return fmt.Errorf("schema: record %q has no field %q", r.Name, k)
		}
	}
	return nil
}

func encodeRecord(e *encoder, r *Record, value map[string]any) error {
	for _, f := range r.Fields {
		v, present := value[f.Name]
		if !present {
			var err error
			v, err = f.defaultValue()
			if err != nil {
				return err
			}
		}
		if err := encodeField(e, f, v); err != nil {
			return err
		}
	}
	return nil
}

func encodeField(e *encoder, f *Field, v any) error {
	if f.Optional {
		if v == nil {
			e.bool(false)
			return nil
		}
		e.bool(true)
	} else if v == nil && f.Type != TypeNull {
		return fmt.Errorf("schema: nil for non-optional field %q", f.Name)
	}
	// Containers are walked in place when they already carry the right
	// runtime type — the recursion coerces each element. coerceJSON (which
	// rebuilds containers) is only the fallback for JSON-shaped input.
	switch f.Type {
	case TypeNull:
		return nil
	case TypeArray:
		arr, ok := v.([]any)
		if !ok {
			cv, err := coerceJSON(f, v)
			if err != nil {
				return err
			}
			arr = cv.([]any)
		}
		e.long(int64(len(arr)))
		for _, item := range arr {
			if err := encodeField(e, f.Items, item); err != nil {
				return err
			}
		}
		return nil
	case TypeMap:
		m, ok := v.(map[string]any)
		if !ok {
			cv, err := coerceJSON(f, v)
			if err != nil {
				return err
			}
			m = cv.(map[string]any)
		}
		// Borrow the encoder's key scratch; nested maps (rare) fall back to
		// a fresh allocation since the scratch is checked out until the loop
		// below finishes.
		keys := e.keys[:0]
		e.keys = nil
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic wire form
		e.long(int64(len(m)))
		for _, k := range keys {
			e.str(k)
			if err := encodeField(e, f.Items, m[k]); err != nil {
				e.keys = keys[:0]
				return err
			}
		}
		e.keys = keys[:0]
		return nil
	case TypeRecord:
		m, ok := v.(map[string]any)
		if !ok {
			return fmt.Errorf("schema: field %q: record value must be a map, got %T", f.Name, v)
		}
		return encodeRecord(e, f.Record, m)
	}
	cv, err := coerceJSON(f, v)
	if err != nil {
		return err
	}
	switch f.Type {
	case TypeBoolean:
		e.bool(cv.(bool))
	case TypeInt, TypeLong:
		e.long(cv.(int64))
	case TypeFloat, TypeDouble:
		e.double(cv.(float64))
	case TypeString:
		e.str(cv.(string))
	case TypeBytes:
		e.bytes(cv.([]byte))
	default:
		return fmt.Errorf("schema: cannot encode type %q", f.Type)
	}
	return nil
}

// Unmarshal decodes data written under r back into a map.
func Unmarshal(r *Record, data []byte) (map[string]any, error) {
	d := decoder{b: data}
	// All string data combined cannot exceed the input length, so one grow
	// makes the arena never reallocate.
	d.arena.Grow(len(data))
	v, err := decodeRecord(&d, r)
	if err != nil {
		return nil, err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("schema: %d trailing bytes", len(d.b))
	}
	return v, nil
}

func decodeRecord(d *decoder, r *Record) (map[string]any, error) {
	out := d.newMap(len(r.Fields))
	for _, f := range r.Fields {
		v, err := decodeField(d, f)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", f.Name, err)
		}
		out[f.Name] = v
	}
	return out, nil
}

func decodeField(d *decoder, f *Field) (any, error) {
	if f.Optional {
		present, err := d.bool()
		if err != nil {
			return nil, err
		}
		if !present {
			return nil, nil
		}
	}
	switch f.Type {
	case TypeNull:
		return nil, nil
	case TypeBoolean:
		return d.bool()
	case TypeInt, TypeLong:
		return d.long()
	case TypeFloat, TypeDouble:
		return d.double()
	case TypeString:
		b, err := d.bytes()
		if err != nil {
			return nil, err
		}
		return d.str(b), nil
	case TypeBytes:
		b, err := d.bytes()
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	case TypeArray:
		n, err := d.long()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > int64(len(d.b))+1 {
			return nil, ErrTruncated
		}
		out, sidx := d.newSlice(int(n))
		for i := int64(0); i < n; i++ {
			v, err := decodeField(d, f.Items)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		d.putSlice(sidx, out)
		return out, nil
	case TypeMap:
		n, err := d.long()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > int64(len(d.b))+1 {
			return nil, ErrTruncated
		}
		out := d.newMap(int(n))
		for i := int64(0); i < n; i++ {
			k, err := d.bytes()
			if err != nil {
				return nil, err
			}
			v, err := decodeField(d, f.Items)
			if err != nil {
				return nil, err
			}
			out[d.str(k)] = v
		}
		return out, nil
	case TypeRecord:
		return decodeRecord(d, f.Record)
	}
	return nil, fmt.Errorf("schema: cannot decode type %q", f.Type)
}

// IndexedStrings walks data (written under r) and yields the value of each
// top-level indexed string field, skipping everything else without
// materializing it — the secondary-index maintenance path needs only these,
// so it should not pay for a full decode. Yielded strings are copies (backed
// by one shared arena per call), safe to retain. Returning false from fn
// stops the walk.
func IndexedStrings(r *Record, data []byte, fn func(f *Field, v string) bool) error {
	d := decoder{b: data}
	for _, f := range r.Fields {
		if f.Index == IndexNone || f.Type != TypeString {
			if err := skipField(&d, f); err != nil {
				return err
			}
			continue
		}
		if f.Optional {
			present, err := d.bool()
			if err != nil {
				return err
			}
			if !present {
				continue
			}
		}
		b, err := d.bytes()
		if err != nil {
			return err
		}
		if !fn(f, d.str(b)) {
			return nil
		}
	}
	return nil
}

// Decoder decodes values written under one schema while reusing its output
// containers: the map returned by Decode (including nested maps and slices)
// is cleared and refilled by the NEXT Decode call, so callers must finish
// with (or deep-copy) one result before asking for another. In exchange,
// steady-state decoding allocates only the per-call string arena and the
// unavoidable interface boxing of scalar values — roughly half the
// allocations of the one-shot Unmarshal. This is the right tool for hot
// loops that inspect a record and move on (the Espresso apply path, the
// Databus consumer), not for callers that retain decoded values.
//
// A Decoder is not safe for concurrent use.
type Decoder struct {
	r      *Record
	maps   []map[string]any // visitation-ordered container scratch
	slices [][]any
	mi, si int
}

// NewDecoder returns a reusable decoder for records written under r.
func NewDecoder(r *Record) *Decoder {
	return &Decoder{r: r}
}

// Decode decodes data; the result is valid until the next Decode call.
func (dec *Decoder) Decode(data []byte) (map[string]any, error) {
	dec.mi, dec.si = 0, 0
	d := decoder{b: data, reuse: dec}
	d.arena.Grow(len(data))
	v, err := decodeRecord(&d, dec.r)
	if err != nil {
		return nil, err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("schema: %d trailing bytes", len(d.b))
	}
	return v, nil
}

func (dec *Decoder) nextMap(hint int) map[string]any {
	if dec.mi < len(dec.maps) {
		m := dec.maps[dec.mi]
		dec.mi++
		clear(m)
		return m
	}
	m := make(map[string]any, hint)
	dec.maps = append(dec.maps, m)
	dec.mi++
	return m
}

func (dec *Decoder) nextSlice(hint int) ([]any, int) {
	idx := dec.si
	dec.si++
	if idx < len(dec.slices) {
		return dec.slices[idx][:0], idx
	}
	dec.slices = append(dec.slices, nil)
	return make([]any, 0, hint), idx
}

// skipField advances past a field without materializing it (used by
// resolution when the reader dropped a writer field).
func skipField(d *decoder, f *Field) error {
	if f.Optional {
		present, err := d.bool()
		if err != nil {
			return err
		}
		if !present {
			return nil
		}
	}
	switch f.Type {
	case TypeNull:
		return nil
	case TypeBoolean:
		_, err := d.bool()
		return err
	case TypeInt, TypeLong:
		_, err := d.long()
		return err
	case TypeFloat, TypeDouble:
		_, err := d.double()
		return err
	case TypeString, TypeBytes:
		_, err := d.bytes()
		return err
	case TypeArray:
		n, err := d.long()
		if err != nil {
			return err
		}
		// Bound the loop like decodeField does: zero-width items (nulls,
		// empty records) would otherwise let a corrupt count spin for up to
		// 2^63 iterations.
		if n < 0 || n > int64(len(d.b))+1 {
			return ErrTruncated
		}
		for i := int64(0); i < n; i++ {
			if err := skipField(d, f.Items); err != nil {
				return err
			}
		}
		return nil
	case TypeMap:
		n, err := d.long()
		if err != nil {
			return err
		}
		if n < 0 || n > int64(len(d.b))+1 {
			return ErrTruncated
		}
		for i := int64(0); i < n; i++ {
			if _, err := d.bytes(); err != nil {
				return err
			}
			if err := skipField(d, f.Items); err != nil {
				return err
			}
		}
		return nil
	case TypeRecord:
		for _, sub := range f.Record.Fields {
			if err := skipField(d, sub); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("schema: cannot skip type %q", f.Type)
}
