package schema

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Binary encoding, Avro-shaped: longs are zig-zag varints; strings/bytes are
// length-prefixed; optionals carry a 1-byte presence marker; arrays and maps
// a varint count; records encode fields in schema order. No field names or
// types on the wire — the schema (and its registry version) carries them,
// which is the compactness Databus relies on.

// ErrTruncated is returned for short input.
var ErrTruncated = errors.New("schema: truncated input")

type encoder struct{ b []byte }

func (e *encoder) long(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}
func (e *encoder) bytes(p []byte) {
	e.long(int64(len(p)))
	e.b = append(e.b, p...)
}
func (e *encoder) double(f float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(f))
}
func (e *encoder) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

type decoder struct{ b []byte }

func (d *decoder) long() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.b = d.b[n:]
	return v, nil
}
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.long()
	if err != nil {
		return nil, err
	}
	if n < 0 || int64(len(d.b)) < n {
		return nil, ErrTruncated
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v, nil
}
func (d *decoder) double() (float64, error) {
	if len(d.b) < 8 {
		return 0, ErrTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v, nil
}
func (d *decoder) bool() (bool, error) {
	if len(d.b) < 1 {
		return false, ErrTruncated
	}
	v := d.b[0] != 0
	d.b = d.b[1:]
	return v, nil
}

// Marshal encodes a record value (map[string]any) under r. Missing fields
// take their defaults; unknown fields are rejected.
func Marshal(r *Record, value map[string]any) ([]byte, error) {
	for k := range value {
		if _, ok := r.FieldByName(k); !ok {
			return nil, fmt.Errorf("schema: record %q has no field %q", r.Name, k)
		}
	}
	var e encoder
	if err := encodeRecord(&e, r, value); err != nil {
		return nil, err
	}
	return e.b, nil
}

func encodeRecord(e *encoder, r *Record, value map[string]any) error {
	for _, f := range r.Fields {
		v, present := value[f.Name]
		if !present {
			var err error
			v, err = f.defaultValue()
			if err != nil {
				return err
			}
		}
		if err := encodeField(e, f, v); err != nil {
			return err
		}
	}
	return nil
}

func encodeField(e *encoder, f *Field, v any) error {
	if f.Optional {
		if v == nil {
			e.bool(false)
			return nil
		}
		e.bool(true)
	} else if v == nil && f.Type != TypeNull {
		return fmt.Errorf("schema: nil for non-optional field %q", f.Name)
	}
	cv, err := coerceJSON(f, v)
	if err != nil && f.Type != TypeNull {
		return err
	}
	switch f.Type {
	case TypeNull:
		return nil
	case TypeBoolean:
		e.bool(cv.(bool))
	case TypeInt, TypeLong:
		e.long(cv.(int64))
	case TypeFloat, TypeDouble:
		e.double(cv.(float64))
	case TypeString:
		e.bytes([]byte(cv.(string)))
	case TypeBytes:
		e.bytes(cv.([]byte))
	case TypeArray:
		arr := cv.([]any)
		e.long(int64(len(arr)))
		for _, item := range arr {
			if err := encodeField(e, f.Items, item); err != nil {
				return err
			}
		}
	case TypeMap:
		m := cv.(map[string]any)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic wire form
		e.long(int64(len(m)))
		for _, k := range keys {
			e.bytes([]byte(k))
			if err := encodeField(e, f.Items, m[k]); err != nil {
				return err
			}
		}
	case TypeRecord:
		return encodeRecord(e, f.Record, cv.(map[string]any))
	default:
		return fmt.Errorf("schema: cannot encode type %q", f.Type)
	}
	return nil
}

// Unmarshal decodes data written under r back into a map.
func Unmarshal(r *Record, data []byte) (map[string]any, error) {
	d := decoder{b: data}
	v, err := decodeRecord(&d, r)
	if err != nil {
		return nil, err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("schema: %d trailing bytes", len(d.b))
	}
	return v, nil
}

func decodeRecord(d *decoder, r *Record) (map[string]any, error) {
	out := make(map[string]any, len(r.Fields))
	for _, f := range r.Fields {
		v, err := decodeField(d, f)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", f.Name, err)
		}
		out[f.Name] = v
	}
	return out, nil
}

func decodeField(d *decoder, f *Field) (any, error) {
	if f.Optional {
		present, err := d.bool()
		if err != nil {
			return nil, err
		}
		if !present {
			return nil, nil
		}
	}
	switch f.Type {
	case TypeNull:
		return nil, nil
	case TypeBoolean:
		return d.bool()
	case TypeInt, TypeLong:
		return d.long()
	case TypeFloat, TypeDouble:
		return d.double()
	case TypeString:
		b, err := d.bytes()
		return string(b), err
	case TypeBytes:
		b, err := d.bytes()
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	case TypeArray:
		n, err := d.long()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > int64(len(d.b))+1 {
			return nil, ErrTruncated
		}
		out := make([]any, 0, n)
		for i := int64(0); i < n; i++ {
			v, err := decodeField(d, f.Items)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case TypeMap:
		n, err := d.long()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > int64(len(d.b))+1 {
			return nil, ErrTruncated
		}
		out := make(map[string]any, n)
		for i := int64(0); i < n; i++ {
			k, err := d.bytes()
			if err != nil {
				return nil, err
			}
			v, err := decodeField(d, f.Items)
			if err != nil {
				return nil, err
			}
			out[string(k)] = v
		}
		return out, nil
	case TypeRecord:
		return decodeRecord(d, f.Record)
	}
	return nil, fmt.Errorf("schema: cannot decode type %q", f.Type)
}

// skipField advances past a field without materializing it (used by
// resolution when the reader dropped a writer field).
func skipField(d *decoder, f *Field) error {
	if f.Optional {
		present, err := d.bool()
		if err != nil {
			return err
		}
		if !present {
			return nil
		}
	}
	switch f.Type {
	case TypeNull:
		return nil
	case TypeBoolean:
		_, err := d.bool()
		return err
	case TypeInt, TypeLong:
		_, err := d.long()
		return err
	case TypeFloat, TypeDouble:
		_, err := d.double()
		return err
	case TypeString, TypeBytes:
		_, err := d.bytes()
		return err
	case TypeArray:
		n, err := d.long()
		if err != nil {
			return err
		}
		// Bound the loop like decodeField does: zero-width items (nulls,
		// empty records) would otherwise let a corrupt count spin for up to
		// 2^63 iterations.
		if n < 0 || n > int64(len(d.b))+1 {
			return ErrTruncated
		}
		for i := int64(0); i < n; i++ {
			if err := skipField(d, f.Items); err != nil {
				return err
			}
		}
		return nil
	case TypeMap:
		n, err := d.long()
		if err != nil {
			return err
		}
		if n < 0 || n > int64(len(d.b))+1 {
			return ErrTruncated
		}
		for i := int64(0); i < n; i++ {
			if _, err := d.bytes(); err != nil {
				return err
			}
			if err := skipField(d, f.Items); err != nil {
				return err
			}
		}
		return nil
	case TypeRecord:
		for _, sub := range f.Record.Fields {
			if err := skipField(d, sub); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("schema: cannot skip type %q", f.Type)
}
