package schema

// Fuzz targets for the binary decode paths: Unmarshal and Resolve consume
// untrusted bytes (Databus payloads, Espresso documents, registry data) and
// must reject corrupt input with an error — never a panic, a huge
// allocation, or a near-infinite skip loop. The seed corpus covers valid
// encodings, truncations, and the historical crashers: negative and
// absurdly large collection counts in front of zero-width items.

import (
	"encoding/binary"
	"testing"
)

// fuzzReader exercises every wire type, with the zero-width hazards (null
// items, empty nested records) included deliberately.
var fuzzReader = MustParse(`{
	"name": "Fuzz",
	"fields": [
		{"name": "nulls", "type": "array", "items": {"name": "n", "type": "null"}},
		{"name": "id", "type": "long"},
		{"name": "name", "type": "string"},
		{"name": "ratio", "type": "double", "optional": true},
		{"name": "flags", "type": "array", "items": {"name": "flag", "type": "boolean"}},
		{"name": "counts", "type": "map", "items": {"name": "c", "type": "long"}},
		{"name": "nested", "type": "record", "record": {
			"name": "Inner",
			"fields": [
				{"name": "a", "type": "int"},
				{"name": "b", "type": "bytes"}
			]}}
	]}`)

// fuzzWriter is fuzzReader plus fields the reader dropped — they route
// through skipField, including the unbounded-loop shapes (arrays and maps of
// zero-width items).
var fuzzWriter = MustParse(`{
	"name": "Fuzz",
	"fields": [
		{"name": "droppedNulls", "type": "array", "items": {"name": "n", "type": "null"}},
		{"name": "droppedEmpties", "type": "array", "items": {"name": "e", "type": "record", "record": {"name": "Empty", "fields": []}}},
		{"name": "droppedMap", "type": "map", "items": {"name": "v", "type": "null"}},
		{"name": "nulls", "type": "array", "items": {"name": "n", "type": "null"}},
		{"name": "id", "type": "int"},
		{"name": "name", "type": "string"},
		{"name": "ratio", "type": "double", "optional": true},
		{"name": "flags", "type": "array", "items": {"name": "flag", "type": "boolean"}},
		{"name": "counts", "type": "map", "items": {"name": "c", "type": "long"}},
		{"name": "nested", "type": "record", "record": {
			"name": "Inner",
			"fields": [
				{"name": "a", "type": "int"},
				{"name": "b", "type": "bytes"}
			]}}
	]}`)

func fuzzValue(t testing.TB) map[string]any {
	t.Helper()
	return map[string]any{
		"nulls": []any{nil, nil},
		"id":    int64(42),
		"name":  "espresso",
		"ratio": 0.5,
		"flags": []any{true, false, true},
		"counts": map[string]any{
			"a": int64(1),
			"b": int64(-7),
		},
		"nested": map[string]any{"a": int64(9), "b": []byte{0xde, 0xad}},
	}
}

func fuzzSeeds(t testing.TB, r *Record) [][]byte {
	t.Helper()
	valid, err := Marshal(r, fuzzValue(t))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0xff
	return [][]byte{
		valid,
		valid[:len(valid)/2],
		corrupt,
		{},
		// The historical crashers: collection counts that cannot fit the
		// remaining bytes, in front of zero-width items. A negative count
		// used to panic make([]any, 0, n); a huge one used to spin the skip
		// loop for up to 2^63 iterations or attempt the allocation.
		binary.AppendVarint(nil, 1<<40),
		binary.AppendVarint(nil, -5),
	}
}

func FuzzUnmarshal(f *testing.F) {
	for _, seed := range fuzzSeeds(f, fuzzReader) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(fuzzReader, data)
		if err != nil {
			return // rejected cleanly
		}
		// Anything the decoder accepts must re-encode.
		if _, err := Marshal(fuzzReader, v); err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
	})
}

func FuzzResolve(f *testing.F) {
	for _, seed := range fuzzSeeds(f, fuzzWriter) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Resolve(fuzzWriter, fuzzReader, data)
		if err != nil {
			return
		}
		if _, err := Marshal(fuzzReader, v); err != nil {
			t.Fatalf("resolved value does not re-encode under the reader: %v", err)
		}
	})
}

// The crashers above, pinned as plain regression tests so `go test` (not
// just -fuzz) guards them forever.

func TestSkipFieldRejectsHugeCount(t *testing.T) {
	// fuzzWriter's first field is a dropped array of nulls: a huge count
	// must be rejected as truncated input, not skipped item by item.
	data := binary.AppendVarint(nil, 1<<40)
	if _, err := Resolve(fuzzWriter, fuzzReader, data); err == nil {
		t.Fatal("huge zero-width array count accepted")
	}
}

func TestResolveArrayRejectsNegativeCount(t *testing.T) {
	// fuzzReader's first field is an array the reader keeps: resolveArray
	// must guard the count before allocating.
	data := binary.AppendVarint(nil, -3)
	if _, err := Resolve(fuzzReader, fuzzReader, data); err == nil {
		t.Fatal("negative array count accepted")
	}
	if _, err := Unmarshal(fuzzReader, data); err == nil {
		t.Fatal("negative array count accepted by Unmarshal")
	}
}

func TestResolveRoundTrip(t *testing.T) {
	data, err := Marshal(fuzzWriter, map[string]any{
		"droppedNulls":   []any{nil},
		"droppedEmpties": []any{map[string]any{}, map[string]any{}},
		"droppedMap":     map[string]any{"x": nil},
		"nulls":          []any{nil, nil},
		"id":             int64(7),
		"name":           "roundtrip",
		"ratio":          nil,
		"flags":          []any{false},
		"counts":         map[string]any{"k": int64(3)},
		"nested":         map[string]any{"a": int64(1), "b": []byte("bb")},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Resolve(fuzzWriter, fuzzReader, data)
	if err != nil {
		t.Fatal(err)
	}
	if v["id"] != int64(7) || v["name"] != "roundtrip" {
		t.Fatalf("resolved value corrupted: %v", v)
	}
	if _, dropped := v["droppedNulls"]; dropped {
		t.Fatal("dropped writer field leaked into the reader value")
	}
}
