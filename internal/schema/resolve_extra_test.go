package schema

import (
	"reflect"
	"testing"
)

func TestResolveSkipsEveryFieldKind(t *testing.T) {
	// Writer has one field of every kind; reader keeps only the sentinel —
	// exercising skipField across the full type zoo.
	writer := MustParse(`{"name":"W","fields":[
		{"name":"n","type":"null"},
		{"name":"b","type":"boolean"},
		{"name":"i","type":"int"},
		{"name":"l","type":"long"},
		{"name":"f","type":"float"},
		{"name":"d","type":"double"},
		{"name":"s","type":"string"},
		{"name":"by","type":"bytes"},
		{"name":"arr","type":"array","items":{"name":"e","type":"string"}},
		{"name":"m","type":"map","items":{"name":"v","type":"long"}},
		{"name":"rec","type":"record","record":{"name":"Inner","fields":[
			{"name":"x","type":"long"},{"name":"opt","type":"string","optional":true}]}},
		{"name":"optSkip","type":"double","optional":true},
		{"name":"keep","type":"string"}
	]}`)
	reader := MustParse(`{"name":"W","fields":[{"name":"keep","type":"string"}]}`)
	value := map[string]any{
		"n": nil, "b": true, "i": int64(1), "l": int64(2), "f": 1.5, "d": 2.5,
		"s": "str", "by": []byte{9}, "arr": []any{"a", "b"},
		"m":       map[string]any{"k": int64(7)},
		"rec":     map[string]any{"x": int64(3), "opt": "present"},
		"optSkip": 9.0, "keep": "survivor",
	}
	data, err := Marshal(writer, value)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resolve(writer, reader, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, map[string]any{"keep": "survivor"}) {
		t.Fatalf("resolved = %#v", got)
	}
	// and the optional-absent variant of every optional field
	value["optSkip"] = nil
	value["rec"] = map[string]any{"x": int64(3), "opt": nil}
	data, _ = Marshal(writer, value)
	if _, err := Resolve(writer, reader, data); err != nil {
		t.Fatal(err)
	}
}

func TestResolveNestedRecordFieldChanges(t *testing.T) {
	v1 := MustParse(`{"name":"O","fields":[
		{"name":"inner","type":"record","record":{"name":"I","fields":[
			{"name":"a","type":"int"},{"name":"drop","type":"string"}]}}
	]}`)
	v2 := MustParse(`{"name":"O","fields":[
		{"name":"inner","type":"record","record":{"name":"I","fields":[
			{"name":"a","type":"long"},
			{"name":"added","type":"string","default":"dflt"}]}}
	]}`)
	data, err := Marshal(v1, map[string]any{"inner": map[string]any{"a": int64(5), "drop": "bye"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resolve(v1, v2, data)
	if err != nil {
		t.Fatal(err)
	}
	inner := got["inner"].(map[string]any)
	if inner["a"] != int64(5) || inner["added"] != "dflt" {
		t.Fatalf("inner = %#v", inner)
	}
	if _, leaked := inner["drop"]; leaked {
		t.Fatal("dropped nested field leaked")
	}
}

func TestResolveArrayElementPromotion(t *testing.T) {
	v1 := MustParse(`{"name":"A","fields":[{"name":"xs","type":"array","items":{"name":"e","type":"int"}}]}`)
	v2 := MustParse(`{"name":"A","fields":[{"name":"xs","type":"array","items":{"name":"e","type":"double"}}]}`)
	data, _ := Marshal(v1, map[string]any{"xs": []any{int64(1), int64(2), int64(3)}})
	got, err := Resolve(v1, v2, data)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{1.0, 2.0, 3.0}
	if !reflect.DeepEqual(got["xs"], want) {
		t.Fatalf("xs = %#v", got["xs"])
	}
}

func TestResolveOptionalityChange(t *testing.T) {
	// required -> optional is readable
	v1 := MustParse(`{"name":"P","fields":[{"name":"s","type":"string"}]}`)
	v2 := MustParse(`{"name":"P","fields":[{"name":"s","type":"string","optional":true}]}`)
	data, _ := Marshal(v1, map[string]any{"s": "val"})
	got, err := Resolve(v1, v2, data)
	if err != nil {
		t.Fatal(err)
	}
	if got["s"] != "val" {
		t.Fatalf("s = %#v", got["s"])
	}
	// optional-written-as-nil read by a reader with a default
	v3 := MustParse(`{"name":"P","fields":[{"name":"s","type":"string","optional":true}]}`)
	v4 := MustParse(`{"name":"P","fields":[{"name":"s","type":"string","default":"fallback"}]}`)
	data, _ = Marshal(v3, map[string]any{"s": nil})
	got, err = Resolve(v3, v4, data)
	if err != nil {
		t.Fatal(err)
	}
	if got["s"] != "fallback" {
		t.Fatalf("s = %#v", got["s"])
	}
}

func TestZeroValuesForAllKinds(t *testing.T) {
	r := MustParse(`{"name":"Z","fields":[
		{"name":"b","type":"boolean"},
		{"name":"l","type":"long"},
		{"name":"d","type":"double"},
		{"name":"s","type":"string"},
		{"name":"by","type":"bytes"},
		{"name":"arr","type":"array","items":{"name":"e","type":"string"}},
		{"name":"m","type":"map","items":{"name":"v","type":"long"}},
		{"name":"rec","type":"record","record":{"name":"I","fields":[{"name":"x","type":"long"}]}}
	]}`)
	data, err := Marshal(r, map[string]any{}) // everything defaults to zero
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(r, data)
	if err != nil {
		t.Fatal(err)
	}
	if got["b"] != false || got["l"] != int64(0) || got["d"] != 0.0 || got["s"] != "" {
		t.Fatalf("scalars = %#v", got)
	}
	if len(got["arr"].([]any)) != 0 || len(got["m"].(map[string]any)) != 0 {
		t.Fatalf("composites = %#v", got)
	}
	if got["rec"].(map[string]any)["x"] != int64(0) {
		t.Fatalf("rec = %#v", got["rec"])
	}
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	r := MustParse(songSchema)
	again, err := Parse(r.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Fields) != len(r.Fields) || again.Name != r.Name {
		t.Fatalf("JSON round trip lost structure")
	}
}

func TestRegistrySubjects(t *testing.T) {
	reg := NewRegistry()
	reg.Register("a", MustParse(`{"name":"A","fields":[]}`))
	reg.Register("b", MustParse(`{"name":"B","fields":[]}`))
	subs := reg.Subjects()
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v", subs)
	}
}
