package schema

import (
	"fmt"
	"sync"
)

// Registry stores versioned schemas per subject (an Espresso table, a
// Databus source). Registration enforces that every new version can read
// data written under all prior versions — the compatibility rule that makes
// document schemas "freely evolvable" (§IV.A) without rewriting stored data.
type Registry struct {
	mu       sync.RWMutex
	subjects map[string][]*Record // version v at index v-1
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{subjects: make(map[string][]*Record)}
}

// Register adds a new schema version for subject, returning the assigned
// version (1-based). The new schema must be able to read every prior
// version's data.
func (r *Registry) Register(subject string, rec *Record) (int, error) {
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for v, prior := range r.subjects[subject] {
		if err := CanRead(prior, rec); err != nil {
			return 0, fmt.Errorf("schema: subject %q: new schema incompatible with v%d: %w", subject, v+1, err)
		}
	}
	r.subjects[subject] = append(r.subjects[subject], rec)
	return len(r.subjects[subject]), nil
}

// Get returns version v of subject's schema.
func (r *Registry) Get(subject string, version int) (*Record, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	versions := r.subjects[subject]
	if version < 1 || version > len(versions) {
		return nil, fmt.Errorf("schema: subject %q has no version %d (have %d)", subject, version, len(versions))
	}
	return versions[version-1], nil
}

// Latest returns the newest schema and its version for subject.
func (r *Registry) Latest(subject string) (*Record, int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	versions := r.subjects[subject]
	if len(versions) == 0 {
		return nil, 0, fmt.Errorf("schema: subject %q not registered", subject)
	}
	return versions[len(versions)-1], len(versions), nil
}

// Subjects lists the registered subjects.
func (r *Registry) Subjects() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.subjects))
	for s := range r.subjects {
		out = append(out, s)
	}
	return out
}

// DecodeLatest decodes data written under writerVersion of subject into the
// latest schema's shape — the standard consumer path for evolved documents.
func (r *Registry) DecodeLatest(subject string, writerVersion int, data []byte) (map[string]any, error) {
	writer, err := r.Get(subject, writerVersion)
	if err != nil {
		return nil, err
	}
	reader, latest, err := r.Latest(subject)
	if err != nil {
		return nil, err
	}
	if latest == writerVersion {
		return Unmarshal(writer, data)
	}
	return Resolve(writer, reader, data)
}
