// Package schema is the Avro substitute (§III.C): JSON-declared record
// schemas, a compact zig-zag varint binary encoding that needs no generated
// code, writer/reader schema resolution for compatible evolution, and a
// versioned registry. Databus serializes change events with it; Espresso
// documents are stored as schema-versioned binary blobs (§IV.A).
package schema

import (
	"encoding/json"
	"fmt"
)

// Type enumerates field types.
type Type string

// Supported types.
const (
	TypeNull    Type = "null"
	TypeBoolean Type = "boolean"
	TypeInt     Type = "int"
	TypeLong    Type = "long"
	TypeFloat   Type = "float"
	TypeDouble  Type = "double"
	TypeString  Type = "string"
	TypeBytes   Type = "bytes"
	TypeArray   Type = "array"
	TypeMap     Type = "map"
	TypeRecord  Type = "record"
)

// IndexKind is the Espresso indexing annotation on a field (§IV.A "fields
// within the document schema may be annotated with indexing constraints").
type IndexKind string

// Index annotations.
const (
	IndexNone  IndexKind = ""
	IndexExact IndexKind = "exact" // equality lookups
	IndexText  IndexKind = "text"  // tokenized free-text search
)

// Field is one record field.
type Field struct {
	Name     string          `json:"name"`
	Type     Type            `json:"type"`
	Items    *Field          `json:"items,omitempty"`  // array element / map value type
	Record   *Record         `json:"record,omitempty"` // nested record
	Optional bool            `json:"optional,omitempty"`
	Default  json.RawMessage `json:"default,omitempty"`
	Index    IndexKind       `json:"index,omitempty"`
}

// Record is a named record schema.
type Record struct {
	Name   string   `json:"name"`
	Fields []*Field `json:"fields"`
}

// Parse decodes and validates a record schema from JSON.
func Parse(data []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// MustParse panics on error; for package-level schema constants.
func MustParse(data string) *Record {
	r, err := Parse([]byte(data))
	if err != nil {
		panic(err)
	}
	return r
}

// Validate checks structural invariants.
func (r *Record) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("schema: record without name")
	}
	seen := map[string]bool{}
	for _, f := range r.Fields {
		if f.Name == "" {
			return fmt.Errorf("schema: record %q has unnamed field", r.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("schema: record %q has duplicate field %q", r.Name, f.Name)
		}
		seen[f.Name] = true
		if err := f.validate(r.Name); err != nil {
			return err
		}
	}
	return nil
}

func (f *Field) validate(rec string) error {
	switch f.Type {
	case TypeNull, TypeBoolean, TypeInt, TypeLong, TypeFloat, TypeDouble, TypeString, TypeBytes:
		return nil
	case TypeArray, TypeMap:
		if f.Items == nil {
			return fmt.Errorf("schema: %s.%s: %s without items", rec, f.Name, f.Type)
		}
		return f.Items.validate(rec)
	case TypeRecord:
		if f.Record == nil {
			return fmt.Errorf("schema: %s.%s: record type without record definition", rec, f.Name)
		}
		return f.Record.Validate()
	default:
		return fmt.Errorf("schema: %s.%s: unknown type %q", rec, f.Name, f.Type)
	}
}

// FieldByName returns the field with the given name.
func (r *Record) FieldByName(name string) (*Field, bool) {
	for _, f := range r.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// IndexedFields returns the fields carrying an index annotation, for the
// Espresso secondary-index builder.
func (r *Record) IndexedFields() []*Field {
	var out []*Field
	for _, f := range r.Fields {
		if f.Index != IndexNone {
			out = append(out, f)
		}
	}
	return out
}

// JSON renders the schema back to its JSON form.
func (r *Record) JSON() []byte {
	data, err := json.Marshal(r)
	if err != nil {
		panic("schema: marshal of validated schema failed: " + err.Error())
	}
	return data
}

// defaultValue materializes a field's default as a runtime value.
func (f *Field) defaultValue() (any, error) {
	if f.Default == nil {
		if f.Optional {
			return nil, nil
		}
		return zeroOf(f)
	}
	var v any
	if err := json.Unmarshal(f.Default, &v); err != nil {
		return nil, fmt.Errorf("schema: field %q default: %w", f.Name, err)
	}
	return coerceJSON(f, v)
}

func zeroOf(f *Field) (any, error) {
	switch f.Type {
	case TypeNull:
		return nil, nil
	case TypeBoolean:
		return false, nil
	case TypeInt, TypeLong:
		return int64(0), nil
	case TypeFloat, TypeDouble:
		return float64(0), nil
	case TypeString:
		return "", nil
	case TypeBytes:
		return []byte{}, nil
	case TypeArray:
		return []any{}, nil
	case TypeMap:
		return map[string]any{}, nil
	case TypeRecord:
		m := map[string]any{}
		for _, sub := range f.Record.Fields {
			v, err := sub.defaultValue()
			if err != nil {
				return nil, err
			}
			m[sub.Name] = v
		}
		return m, nil
	}
	return nil, fmt.Errorf("schema: no zero for %q", f.Type)
}

// coerceJSON converts a generic JSON value into the runtime representation
// for f (json numbers arrive as float64).
func coerceJSON(f *Field, v any) (any, error) {
	if v == nil {
		if f.Optional || f.Type == TypeNull {
			return nil, nil
		}
		return nil, fmt.Errorf("schema: null for non-optional field %q", f.Name)
	}
	switch f.Type {
	case TypeInt, TypeLong:
		switch n := v.(type) {
		case float64:
			return int64(n), nil
		case int64:
			return v, nil // already the wire type: avoid re-boxing
		case int:
			return int64(n), nil
		}
	case TypeFloat, TypeDouble:
		switch n := v.(type) {
		case float64:
			return v, nil // already the wire type: avoid re-boxing
		case int64:
			return float64(n), nil
		case int:
			return float64(n), nil
		}
	case TypeBoolean:
		if _, ok := v.(bool); ok {
			return v, nil
		}
	case TypeString:
		if _, ok := v.(string); ok {
			return v, nil
		}
	case TypeBytes:
		switch b := v.(type) {
		case string:
			return []byte(b), nil
		case []byte:
			return v, nil
		}
	case TypeArray:
		if arr, ok := v.([]any); ok {
			out := make([]any, len(arr))
			for i, e := range arr {
				c, err := coerceJSON(f.Items, e)
				if err != nil {
					return nil, err
				}
				out[i] = c
			}
			return out, nil
		}
	case TypeMap:
		if m, ok := v.(map[string]any); ok {
			out := make(map[string]any, len(m))
			for k, e := range m {
				c, err := coerceJSON(f.Items, e)
				if err != nil {
					return nil, err
				}
				out[k] = c
			}
			return out, nil
		}
	case TypeRecord:
		if m, ok := v.(map[string]any); ok {
			out := make(map[string]any, len(m))
			for _, sub := range f.Record.Fields {
				e, present := m[sub.Name]
				if !present {
					d, err := sub.defaultValue()
					if err != nil {
						return nil, err
					}
					out[sub.Name] = d
					continue
				}
				c, err := coerceJSON(sub, e)
				if err != nil {
					return nil, err
				}
				out[sub.Name] = c
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("schema: field %q: cannot coerce %T to %s", f.Name, v, f.Type)
}
