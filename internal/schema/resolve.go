package schema

import "fmt"

// Resolution implements the evolution rules Espresso relies on ("new document
// schemas must be compatible according to the Avro schema resolution rules",
// §IV.A): data written under the writer schema is decoded through the lens of
// the reader schema. Fields are matched by name; fields the reader dropped
// are skipped; fields the reader added must carry defaults (or be optional);
// int widens to long, and int/long widen to double.

// CanRead reports whether a reader schema can decode data written under
// writer — the registry's compatibility check for schema evolution.
func CanRead(writer, reader *Record) error {
	for _, rf := range reader.Fields {
		wf, ok := writer.FieldByName(rf.Name)
		if !ok {
			if rf.Default == nil && !rf.Optional {
				return fmt.Errorf("schema: reader field %q has no writer field and no default", rf.Name)
			}
			continue
		}
		if err := compatible(wf, rf); err != nil {
			return err
		}
	}
	return nil
}

func compatible(wf, rf *Field) error {
	if wf.Type == rf.Type {
		switch wf.Type {
		case TypeArray, TypeMap:
			return compatible(wf.Items, rf.Items)
		case TypeRecord:
			return CanRead(wf.Record, rf.Record)
		}
		return nil
	}
	if promotable(wf.Type, rf.Type) {
		return nil
	}
	return fmt.Errorf("schema: field %q: cannot read %s as %s", rf.Name, wf.Type, rf.Type)
}

func promotable(from, to Type) bool {
	switch from {
	case TypeInt:
		return to == TypeLong || to == TypeFloat || to == TypeDouble
	case TypeLong:
		return to == TypeFloat || to == TypeDouble
	case TypeFloat:
		return to == TypeDouble
	}
	return false
}

// Resolve decodes data written under writer into the reader's shape.
func Resolve(writer, reader *Record, data []byte) (map[string]any, error) {
	if err := CanRead(writer, reader); err != nil {
		return nil, err
	}
	d := decoder{b: data}
	out, err := resolveRecord(&d, writer, reader)
	if err != nil {
		return nil, err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("schema: %d trailing bytes after resolve", len(d.b))
	}
	return out, nil
}

func resolveRecord(d *decoder, writer, reader *Record) (map[string]any, error) {
	out := make(map[string]any, len(reader.Fields))
	// Walk writer fields in wire order: decode the ones the reader wants,
	// skip the rest.
	for _, wf := range writer.Fields {
		rf, wanted := reader.FieldByName(wf.Name)
		if !wanted {
			if err := skipField(d, wf); err != nil {
				return nil, fmt.Errorf("skipping %q: %w", wf.Name, err)
			}
			continue
		}
		v, err := resolveField(d, wf, rf)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", wf.Name, err)
		}
		out[rf.Name] = v
	}
	// Reader-only fields take defaults.
	for _, rf := range reader.Fields {
		if _, ok := out[rf.Name]; ok {
			continue
		}
		v, err := rf.defaultValue()
		if err != nil {
			return nil, err
		}
		out[rf.Name] = v
	}
	return out, nil
}

func resolveField(d *decoder, wf, rf *Field) (any, error) {
	if wf.Type == rf.Type && wf.Optional == rf.Optional {
		switch wf.Type {
		case TypeRecord:
			if wf.Optional {
				present, err := d.bool()
				if err != nil {
					return nil, err
				}
				if !present {
					return nil, nil
				}
			}
			return resolveRecord(d, wf.Record, rf.Record)
		case TypeArray:
			return resolveArray(d, wf, rf)
		default:
			return decodeField(d, wf)
		}
	}
	// Decode under the writer's shape, then promote.
	v, err := decodeField(d, wf)
	if err != nil {
		return nil, err
	}
	if v == nil {
		if rf.Optional {
			return nil, nil
		}
		return rf.defaultValue()
	}
	switch rf.Type {
	case TypeLong, TypeInt:
		if n, ok := v.(int64); ok {
			return n, nil
		}
	case TypeFloat, TypeDouble:
		switch n := v.(type) {
		case int64:
			return float64(n), nil
		case float64:
			return n, nil
		}
	default:
		return v, nil
	}
	return nil, fmt.Errorf("cannot promote %T to %s", v, rf.Type)
}

func resolveArray(d *decoder, wf, rf *Field) (any, error) {
	n, err := d.long()
	if err != nil {
		return nil, err
	}
	// Same sanity bound as decodeField: a count that cannot possibly fit in
	// the remaining bytes is corrupt input, not a huge (or negative)
	// allocation request.
	if n < 0 || n > int64(len(d.b))+1 {
		return nil, ErrTruncated
	}
	out := make([]any, 0, n)
	for i := int64(0); i < n; i++ {
		v, err := resolveField(d, wf.Items, rf.Items)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
