package schema

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const songSchema = `{
	"name": "Song",
	"fields": [
		{"name": "artist", "type": "string", "index": "exact"},
		{"name": "album", "type": "string"},
		{"name": "title", "type": "string"},
		{"name": "year", "type": "long"},
		{"name": "durationSec", "type": "int"},
		{"name": "lyrics", "type": "string", "index": "text"},
		{"name": "tags", "type": "array", "items": {"name": "tag", "type": "string"}},
		{"name": "plays", "type": "map", "items": {"name": "n", "type": "long"}},
		{"name": "explicit", "type": "boolean"},
		{"name": "rating", "type": "double", "optional": true}
	]
}`

func song() map[string]any {
	return map[string]any{
		"artist":      "Etta James",
		"album":       "Gold",
		"title":       "At Last",
		"year":        int64(1960),
		"durationSec": int64(180),
		"lyrics":      "at last my love has come along",
		"tags":        []any{"soul", "classic"},
		"plays":       map[string]any{"us": int64(100), "uk": int64(42)},
		"explicit":    false,
		"rating":      4.9,
	}
}

func TestParseValidates(t *testing.T) {
	if _, err := Parse([]byte(songSchema)); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`{"fields":[]}`, // no name
		`{"name":"X","fields":[{"name":"","type":"string"}]}`,
		`{"name":"X","fields":[{"name":"a","type":"string"},{"name":"a","type":"long"}]}`,
		`{"name":"X","fields":[{"name":"a","type":"frobnicator"}]}`,
		`{"name":"X","fields":[{"name":"a","type":"array"}]}`,  // array w/o items
		`{"name":"X","fields":[{"name":"a","type":"record"}]}`, // record w/o def
		`not json`,
	}
	for i, s := range bad {
		if _, err := Parse([]byte(s)); err == nil {
			t.Errorf("case %d: invalid schema accepted: %s", i, s)
		}
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	r := MustParse(songSchema)
	data, err := Marshal(r, song())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(r, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, song()) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, song())
	}
}

func TestMarshalDefaults(t *testing.T) {
	r := MustParse(`{"name":"D","fields":[
		{"name":"a","type":"string","default":"hello"},
		{"name":"b","type":"long"},
		{"name":"c","type":"double","optional":true}
	]}`)
	data, err := Marshal(r, map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(r, data)
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != "hello" || got["b"] != int64(0) || got["c"] != nil {
		t.Fatalf("defaults = %#v", got)
	}
}

func TestMarshalRejectsUnknownField(t *testing.T) {
	r := MustParse(`{"name":"D","fields":[{"name":"a","type":"string"}]}`)
	if _, err := Marshal(r, map[string]any{"nope": 1}); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestMarshalRejectsNilRequired(t *testing.T) {
	r := MustParse(`{"name":"D","fields":[{"name":"a","type":"string"}]}`)
	if _, err := Marshal(r, map[string]any{"a": nil}); err == nil {
		t.Fatal("nil for required field accepted")
	}
}

func TestNestedRecord(t *testing.T) {
	r := MustParse(`{"name":"Outer","fields":[
		{"name":"inner","type":"record","record":{"name":"Inner","fields":[
			{"name":"x","type":"long"},{"name":"y","type":"string"}
		]}}
	]}`)
	v := map[string]any{"inner": map[string]any{"x": int64(7), "y": "nested"}}
	data, err := Marshal(r, v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(r, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("nested mismatch: %#v", got)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	r := MustParse(songSchema)
	data, _ := Marshal(r, song())
	for _, cut := range []int{1, len(data) / 2, len(data) - 1} {
		if _, err := Unmarshal(r, data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := Unmarshal(r, append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestResolveAddedFieldWithDefault(t *testing.T) {
	v1 := MustParse(`{"name":"P","fields":[{"name":"name","type":"string"}]}`)
	v2 := MustParse(`{"name":"P","fields":[
		{"name":"name","type":"string"},
		{"name":"headline","type":"string","default":"(none)"}
	]}`)
	data, _ := Marshal(v1, map[string]any{"name": "jay"})
	got, err := Resolve(v1, v2, data)
	if err != nil {
		t.Fatal(err)
	}
	if got["name"] != "jay" || got["headline"] != "(none)" {
		t.Fatalf("resolved = %#v", got)
	}
}

func TestResolveDroppedFieldSkipped(t *testing.T) {
	v1 := MustParse(`{"name":"P","fields":[
		{"name":"name","type":"string"},
		{"name":"legacy","type":"array","items":{"name":"e","type":"long"}},
		{"name":"age","type":"long"}
	]}`)
	v2 := MustParse(`{"name":"P","fields":[
		{"name":"name","type":"string"},
		{"name":"age","type":"long"}
	]}`)
	data, _ := Marshal(v1, map[string]any{
		"name": "jay", "legacy": []any{int64(1), int64(2)}, "age": int64(30)})
	got, err := Resolve(v1, v2, data)
	if err != nil {
		t.Fatal(err)
	}
	if got["name"] != "jay" || got["age"] != int64(30) {
		t.Fatalf("resolved = %#v", got)
	}
	if _, leaked := got["legacy"]; leaked {
		t.Fatal("dropped field leaked through")
	}
}

func TestResolvePromotion(t *testing.T) {
	v1 := MustParse(`{"name":"P","fields":[{"name":"n","type":"int"}]}`)
	v2 := MustParse(`{"name":"P","fields":[{"name":"n","type":"double"}]}`)
	data, _ := Marshal(v1, map[string]any{"n": int64(42)})
	got, err := Resolve(v1, v2, data)
	if err != nil {
		t.Fatal(err)
	}
	if got["n"] != float64(42) {
		t.Fatalf("promoted = %#v", got["n"])
	}
}

func TestCanReadRejectsIncompatible(t *testing.T) {
	v1 := MustParse(`{"name":"P","fields":[{"name":"n","type":"string"}]}`)
	v2 := MustParse(`{"name":"P","fields":[{"name":"n","type":"long"}]}`)
	if err := CanRead(v1, v2); err == nil {
		t.Fatal("string->long read accepted")
	}
	// new required field without default
	v3 := MustParse(`{"name":"P","fields":[
		{"name":"n","type":"string"},{"name":"req","type":"long"}
	]}`)
	if err := CanRead(v1, v3); err == nil {
		t.Fatal("new required field without default accepted")
	}
}

func TestRegistryEvolution(t *testing.T) {
	reg := NewRegistry()
	v1 := MustParse(`{"name":"P","fields":[{"name":"name","type":"string"}]}`)
	v, err := reg.Register("profiles", v1)
	if err != nil || v != 1 {
		t.Fatalf("Register v1 = (%d, %v)", v, err)
	}
	v2 := MustParse(`{"name":"P","fields":[
		{"name":"name","type":"string"},
		{"name":"company","type":"string","default":""}
	]}`)
	v, err = reg.Register("profiles", v2)
	if err != nil || v != 2 {
		t.Fatalf("Register v2 = (%d, %v)", v, err)
	}
	// incompatible evolution rejected
	bad := MustParse(`{"name":"P","fields":[{"name":"name","type":"long"}]}`)
	if _, err := reg.Register("profiles", bad); err == nil {
		t.Fatal("incompatible schema registered")
	}
	// decode v1 data through latest
	data, _ := Marshal(v1, map[string]any{"name": "neha"})
	got, err := reg.DecodeLatest("profiles", 1, data)
	if err != nil {
		t.Fatal(err)
	}
	if got["name"] != "neha" || got["company"] != "" {
		t.Fatalf("DecodeLatest = %#v", got)
	}
	if _, err := reg.Get("profiles", 3); err == nil {
		t.Fatal("missing version returned")
	}
	if _, _, err := reg.Latest("nothere"); err == nil {
		t.Fatal("missing subject returned")
	}
}

func TestIndexedFields(t *testing.T) {
	r := MustParse(songSchema)
	idx := r.IndexedFields()
	if len(idx) != 2 {
		t.Fatalf("%d indexed fields, want 2", len(idx))
	}
	names := []string{idx[0].Name, idx[1].Name}
	if !strings.Contains(strings.Join(names, ","), "artist") ||
		!strings.Contains(strings.Join(names, ","), "lyrics") {
		t.Fatalf("indexed = %v", names)
	}
}

// Property: marshal → unmarshal is the identity for random values conforming
// to a mixed schema.
func TestPropCodecIdentity(t *testing.T) {
	r := MustParse(`{"name":"R","fields":[
		{"name":"s","type":"string"},
		{"name":"n","type":"long"},
		{"name":"f","type":"double"},
		{"name":"b","type":"boolean"},
		{"name":"raw","type":"bytes"},
		{"name":"list","type":"array","items":{"name":"e","type":"long"}},
		{"name":"opt","type":"string","optional":true}
	]}`)
	f := func(seed int64) bool {
		rng := rand.NewSource(seed)
		rn := rand.New(rng)
		v := map[string]any{
			"s":    randStr(rn),
			"n":    rn.Int63() - rn.Int63(),
			"f":    rn.NormFloat64(),
			"b":    rn.Intn(2) == 0,
			"raw":  []byte(randStr(rn)),
			"list": []any{rn.Int63n(100), rn.Int63n(100)},
		}
		if rn.Intn(2) == 0 {
			v["opt"] = randStr(rn)
		} else {
			v["opt"] = nil
		}
		data, err := Marshal(r, v)
		if err != nil {
			return false
		}
		got, err := Unmarshal(r, data)
		if err != nil {
			return false
		}
		if !bytes.Equal(got["raw"].([]byte), v["raw"].([]byte)) {
			return false
		}
		delete(got, "raw")
		delete(v, "raw")
		return reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randStr(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func BenchmarkMarshal(b *testing.B) {
	r := MustParse(songSchema)
	v := song()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(r, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	r := MustParse(songSchema)
	data, _ := Marshal(r, song())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(r, data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecoderReuse(t *testing.T) {
	r := MustParse(songSchema)
	a := song()
	b := song()
	b["artist"] = "Aretha Franklin"
	b["tags"] = []any{"soul", "gospel", "classic"}
	b["plays"] = map[string]any{"fr": int64(7)}
	da, err := Marshal(r, a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Marshal(r, b)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(r)
	// Alternate decodes through the same Decoder: each result must match
	// its input exactly even though the containers are recycled.
	for i := 0; i < 6; i++ {
		data, want := da, a
		if i%2 == 1 {
			data, want = db, b
		}
		got, err := dec.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: decode mismatch:\n got %#v\nwant %#v", i, got, want)
		}
	}
	if _, err := dec.Decode(da[:len(da)-2]); err == nil {
		t.Fatal("truncated input accepted")
	}
	got, err := dec.Decode(db)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatal("decode after error mismatch")
	}
}

func BenchmarkUnmarshalReuse(b *testing.B) {
	r := MustParse(songSchema)
	data, _ := Marshal(r, song())
	dec := NewDecoder(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIndexedStrings(t *testing.T) {
	r := MustParse(songSchema)
	data, err := Marshal(r, song())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	if err := IndexedStrings(r, data, func(f *Field, v string) bool {
		got[f.Name] = v
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"artist": "Etta James",
		"lyrics": "at last my love has come along",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("indexed strings = %#v, want %#v", got, want)
	}

	// Optional indexed strings honor the presence marker.
	opt := MustParse(`{"name":"O","fields":[
		{"name":"pad","type":"long"},
		{"name":"a","type":"string","index":"exact","optional":true},
		{"name":"b","type":"string","index":"text"}
	]}`)
	for _, val := range []map[string]any{
		{"pad": int64(9), "a": "present", "b": "tail"},
		{"pad": int64(9), "a": nil, "b": "tail"},
	} {
		data, err := Marshal(opt, val)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]string{}
		if err := IndexedStrings(opt, data, func(f *Field, v string) bool {
			seen[f.Name] = v
			return true
		}); err != nil {
			t.Fatal(err)
		}
		wantN := 2
		if val["a"] == nil {
			wantN = 1
		}
		if len(seen) != wantN || seen["b"] != "tail" {
			t.Fatalf("val %v: seen %v", val, seen)
		}
	}
}
