package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyClocksEqual(t *testing.T) {
	a, b := New(), New()
	if got := a.Compare(b); got != Equal {
		t.Fatalf("empty clocks compare %v, want Equal", got)
	}
}

func TestIncrementOrders(t *testing.T) {
	a := New()
	b := a.Incremented(1, 10)
	if got := a.Compare(b); got != Before {
		t.Fatalf("a.Compare(b) = %v, want Before", got)
	}
	if got := b.Compare(a); got != After {
		t.Fatalf("b.Compare(a) = %v, want After", got)
	}
	c := b.Incremented(1, 20)
	if got := a.Compare(c); got != Before {
		t.Fatalf("transitive: a.Compare(c) = %v, want Before", got)
	}
}

func TestConcurrent(t *testing.T) {
	base := New().Increment(0, 1)
	a := base.Incremented(1, 2)
	b := base.Incremented(2, 2)
	if got := a.Compare(b); got != Concurrent {
		t.Fatalf("a.Compare(b) = %v, want Concurrent", got)
	}
	if got := b.Compare(a); got != Concurrent {
		t.Fatalf("b.Compare(a) = %v, want Concurrent", got)
	}
	m := a.Merge(b)
	if got := m.Compare(a); got != After {
		t.Fatalf("merge.Compare(a) = %v, want After", got)
	}
	if got := m.Compare(b); got != After {
		t.Fatalf("merge.Compare(b) = %v, want After", got)
	}
}

func TestVersionOf(t *testing.T) {
	c := New().Increment(3, 0).Increment(3, 0).Increment(7, 0)
	if got := c.VersionOf(3); got != 2 {
		t.Fatalf("VersionOf(3) = %d, want 2", got)
	}
	if got := c.VersionOf(7); got != 1 {
		t.Fatalf("VersionOf(7) = %d, want 1", got)
	}
	if got := c.VersionOf(99); got != 0 {
		t.Fatalf("VersionOf(99) = %d, want 0", got)
	}
}

func TestCloneIsolation(t *testing.T) {
	a := New().Increment(1, 0)
	b := a.Clone()
	b.Increment(1, 0)
	if a.VersionOf(1) != 1 || b.VersionOf(1) != 2 {
		t.Fatalf("clone not isolated: a=%v b=%v", a, b)
	}
}

func TestFromEntriesDedup(t *testing.T) {
	c := FromEntries([]Entry{{1, 5}, {1, 3}, {2, 1}}, 0)
	if c.VersionOf(1) != 5 {
		t.Fatalf("duplicate entry should keep max, got %d", c.VersionOf(1))
	}
	if c.VersionOf(2) != 1 {
		t.Fatalf("VersionOf(2) = %d", c.VersionOf(2))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := New().Increment(0, 5).Increment(4, 6).Increment(4, 7).Increment(1, 8)
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Compare(c) != Equal {
		t.Fatalf("round trip mismatch: %v vs %v", got, c)
	}
	if got.Timestamp != c.Timestamp {
		t.Fatalf("timestamp lost: %d vs %d", got.Timestamp, c.Timestamp)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 1},
		{0, 1, 0, 0, 0, 0, 0, 0, 0, 0}, // claims 1 entry, too short
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: Decode(%v) succeeded, want error", i, data)
		}
	}
}

func randomClock(r *rand.Rand) *Clock {
	c := New()
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		node := int32(r.Intn(6))
		for k := r.Intn(3) + 1; k > 0; k-- {
			c.Increment(node, 0)
		}
	}
	return c
}

// Property: Compare is antisymmetric — a BEFORE b iff b AFTER a; EQUAL and
// CONCURRENT are symmetric.
func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomClock(r), randomClock(r)
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Before:
			return ba == After
		case After:
			return ba == Before
		default:
			return ab == ba
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is a least upper bound — result is After-or-Equal both
// inputs, and merging is commutative.
func TestPropMergeLUB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomClock(r), randomClock(r)
		m := a.Merge(b)
		if rel := m.Compare(a); rel != After && rel != Equal {
			return false
		}
		if rel := m.Compare(b); rel != After && rel != Equal {
			return false
		}
		return m.Compare(b.Merge(a)) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal is the identity.
func TestPropCodecIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomClock(r)
		data, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return got.Compare(c) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompare(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomClock(r), randomClock(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}

func BenchmarkMarshal(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	c := randomClock(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = c.MarshalBinary()
	}
}
