// Package vclock implements vector clocks for versioning tuples, following
// Lamport's happened-before relation [LAM78] as used by Voldemort (§II of the
// paper) to detect concurrent updates to the same key.
//
// A Clock maps node IDs to logical counters. Clocks are compared with
// Compare, which returns one of Before, After, Equal or Concurrent. Divergent
// (Concurrent) versions are surfaced to the application for resolution, as in
// Dynamo.
package vclock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Occurred describes the relation of one clock to another.
type Occurred int

// Relations returned by Compare: a.Compare(b) == Before means a happened
// strictly before b.
const (
	Before Occurred = iota
	After
	Equal
	Concurrent
)

// String returns a human-readable name for the relation.
func (o Occurred) String() string {
	switch o {
	case Before:
		return "BEFORE"
	case After:
		return "AFTER"
	case Equal:
		return "EQUAL"
	case Concurrent:
		return "CONCURRENT"
	default:
		return fmt.Sprintf("Occurred(%d)", int(o))
	}
}

// Entry is a single (node, counter) pair in a clock.
type Entry struct {
	Node    int32
	Version uint64
}

// Clock is a vector clock: a set of per-node counters plus a wall-clock
// timestamp used only for diagnostics (never for ordering decisions).
//
// The zero value is a valid, empty clock.
type Clock struct {
	entries   []Entry // sorted by Node, no duplicates
	Timestamp int64   // milliseconds since epoch, informational only
}

// New returns an empty clock.
func New() *Clock { return &Clock{} }

// FromEntries builds a clock from arbitrary (node, version) pairs. Duplicate
// nodes keep the max version.
func FromEntries(entries []Entry, ts int64) *Clock {
	c := &Clock{Timestamp: ts}
	for _, e := range entries {
		if v := c.VersionOf(e.Node); e.Version > v {
			c.set(e.Node, e.Version)
		}
	}
	return c
}

func (c *Clock) set(node int32, version uint64) {
	i := sort.Search(len(c.entries), func(i int) bool { return c.entries[i].Node >= node })
	if i < len(c.entries) && c.entries[i].Node == node {
		c.entries[i].Version = version
		return
	}
	c.entries = append(c.entries, Entry{})
	copy(c.entries[i+1:], c.entries[i:])
	c.entries[i] = Entry{Node: node, Version: version}
}

// VersionOf returns the counter for node, or 0 if absent.
func (c *Clock) VersionOf(node int32) uint64 {
	i := sort.Search(len(c.entries), func(i int) bool { return c.entries[i].Node >= node })
	if i < len(c.entries) && c.entries[i].Node == node {
		return c.entries[i].Version
	}
	return 0
}

// Entries returns a copy of the clock's entries sorted by node id.
func (c *Clock) Entries() []Entry {
	out := make([]Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// Increment bumps the counter for node and updates the timestamp.
// It returns the receiver for chaining.
func (c *Clock) Increment(node int32, ts int64) *Clock {
	c.set(node, c.VersionOf(node)+1)
	c.Timestamp = ts
	return c
}

// Incremented returns a copy of c with node's counter bumped, leaving c
// untouched. This is the operation a Voldemort client performs before a put.
func (c *Clock) Incremented(node int32, ts int64) *Clock {
	return c.Clone().Increment(node, ts)
}

// Clone returns a deep copy of the clock.
func (c *Clock) Clone() *Clock {
	out := &Clock{Timestamp: c.Timestamp}
	out.entries = make([]Entry, len(c.entries))
	copy(out.entries, c.entries)
	return out
}

// Compare reports the relation of c to other.
func (c *Clock) Compare(other *Clock) Occurred {
	var cBigger, oBigger bool
	i, j := 0, 0
	for i < len(c.entries) && j < len(other.entries) {
		a, b := c.entries[i], other.entries[j]
		switch {
		case a.Node == b.Node:
			if a.Version > b.Version {
				cBigger = true
			} else if a.Version < b.Version {
				oBigger = true
			}
			i++
			j++
		case a.Node < b.Node:
			cBigger = true
			i++
		default:
			oBigger = true
			j++
		}
	}
	if i < len(c.entries) {
		cBigger = true
	}
	if j < len(other.entries) {
		oBigger = true
	}
	switch {
	case cBigger && oBigger:
		return Concurrent
	case cBigger:
		return After
	case oBigger:
		return Before
	default:
		return Equal
	}
}

// Merge returns the least upper bound of c and other: per-node max of the
// counters. The result happens after (or equals) both inputs.
func (c *Clock) Merge(other *Clock) *Clock {
	out := c.Clone()
	for _, e := range other.entries {
		if e.Version > out.VersionOf(e.Node) {
			out.set(e.Node, e.Version)
		}
	}
	if other.Timestamp > out.Timestamp {
		out.Timestamp = other.Timestamp
	}
	return out
}

// String renders the clock as "{n0:3, n2:1} ts=...".
func (c *Clock) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range c.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "n%d:%d", e.Node, e.Version)
	}
	b.WriteByte('}')
	return b.String()
}

// ErrCorruptClock is returned by Decode for malformed input.
var ErrCorruptClock = errors.New("vclock: corrupt encoding")

// MarshalBinary encodes the clock as:
//
//	uint16 numEntries | repeated (int32 node, uint64 version) | int64 timestamp
//
// all big-endian, matching the compactness goals of Voldemort's wire format.
func (c *Clock) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 2+len(c.entries)*12+8)
	binary.BigEndian.PutUint16(buf[0:2], uint16(len(c.entries)))
	off := 2
	for _, e := range c.entries {
		binary.BigEndian.PutUint32(buf[off:], uint32(e.Node))
		binary.BigEndian.PutUint64(buf[off+4:], e.Version)
		off += 12
	}
	binary.BigEndian.PutUint64(buf[off:], uint64(c.Timestamp))
	return buf, nil
}

// UnmarshalBinary decodes a clock written by MarshalBinary.
func (c *Clock) UnmarshalBinary(data []byte) error {
	if len(data) < 10 {
		return ErrCorruptClock
	}
	n := int(binary.BigEndian.Uint16(data[0:2]))
	want := 2 + n*12 + 8
	if len(data) != want {
		return fmt.Errorf("%w: have %d bytes, want %d", ErrCorruptClock, len(data), want)
	}
	c.entries = make([]Entry, 0, n)
	off := 2
	var prev int32 = -1 << 31
	for i := 0; i < n; i++ {
		node := int32(binary.BigEndian.Uint32(data[off:]))
		ver := binary.BigEndian.Uint64(data[off+4:])
		if node <= prev && i > 0 {
			return fmt.Errorf("%w: entries not strictly sorted", ErrCorruptClock)
		}
		prev = node
		c.entries = append(c.entries, Entry{Node: node, Version: ver})
		off += 12
	}
	c.Timestamp = int64(binary.BigEndian.Uint64(data[off:]))
	return nil
}

// Decode parses a clock from data.
func Decode(data []byte) (*Clock, error) {
	c := New()
	if err := c.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return c, nil
}
