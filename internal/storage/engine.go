// Package storage provides Voldemort's pluggable storage engines (§II.B,
// Figure II.1). Every engine implements the same Engine interface, which is
// what lets the routing, repair and admin layers interchange and mock them:
//
//   - MemoryEngine: in-heap versioned map (tests, caches)
//   - BitcaskEngine: durable append-only log + hash index, the BerkeleyDB-JE
//     substitute for read-write traffic
//   - ReadOnlyEngine: immutable index/data files built offline (Fig II.3),
//     binary-searched by sorted MD5 key digests, with versioned directories
//     for instantaneous rollback
package storage

import (
	"errors"

	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// Common engine errors.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("storage: engine closed")
	// ErrReadOnly is returned by mutation methods on read-only engines.
	ErrReadOnly = errors.New("storage: engine is read-only")
	// ErrNoSuchKey may be returned by Delete when the key is absent; Get on a
	// missing key returns an empty version slice, not an error.
	ErrNoSuchKey = errors.New("storage: no such key")
)

// Engine is the uniform storage contract. All methods are safe for
// concurrent use.
type Engine interface {
	// Name returns the store name the engine backs.
	Name() string

	// Get returns all mutually concurrent versions stored for key.
	// A missing key yields an empty slice and no error.
	Get(key []byte) ([]*versioned.Versioned, error)

	// Put inserts v, enforcing the anti-chain invariant: it fails with
	// versioned.ErrObsoleteVersion if an existing version's clock dominates
	// or equals v's clock, and discards versions that v dominates.
	Put(key []byte, v *versioned.Versioned) error

	// Delete removes versions of key dominated by clock (a nil clock removes
	// everything). It reports whether anything was deleted.
	Delete(key []byte, clock *vclock.Clock) (bool, error)

	// Entries iterates all (key, versions) pairs. Iteration stops early if
	// fn returns false. The callback must not retain the key slice.
	Entries(fn func(key []byte, versions []*versioned.Versioned) bool) error

	// Len returns the number of live keys.
	Len() int

	// Close releases resources. Further calls fail with ErrClosed.
	Close() error
}

// deleteVersions removes versions dominated by clock from vs, returning the
// survivors and whether anything was removed. A nil clock removes all.
func deleteVersions(vs []*versioned.Versioned, clock *vclock.Clock) ([]*versioned.Versioned, bool) {
	if clock == nil {
		return nil, len(vs) > 0
	}
	kept := vs[:0]
	removed := false
	for _, v := range vs {
		if rel := v.Clock.Compare(clock); rel == vclock.Before || rel == vclock.Equal {
			removed = true
			continue
		}
		kept = append(kept, v)
	}
	return kept, removed
}
