package storage

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// BenchmarkBitcaskPutParallel measures concurrent writers under the
// fsync-every-write policy (syncEvery=0) — the case group commit exists for:
// N writers in flight should pay ~one fsync per batch, not one each.
func BenchmarkBitcaskPutParallel(b *testing.B) {
	e, err := OpenBitcask("bench", b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	val := bytes.Repeat([]byte("x"), 1024)
	var seq atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(1) // GOMAXPROCS goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			k := []byte(fmt.Sprintf("key-%d", i))
			c := vclock.New().Increment(0, i)
			if err := e.Put(k, versioned.With(val, c)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBitcaskGetParallel measures concurrent readers over a populated
// store: with a sharded keydir and a dedicated read fd these should scale
// with GOMAXPROCS instead of serializing on the engine lock.
func BenchmarkBitcaskGetParallel(b *testing.B) {
	e, err := OpenBitcask("bench", b.TempDir(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	val := bytes.Repeat([]byte("x"), 1024)
	const n = 10000
	for i := 0; i < n; i++ {
		c := vclock.New().Increment(0, int64(i))
		if err := e.Put([]byte(fmt.Sprintf("key-%d", i)), versioned.With(val, c)); err != nil {
			b.Fatal(err)
		}
	}
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			if _, err := e.Get([]byte(fmt.Sprintf("key-%d", i%n))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
