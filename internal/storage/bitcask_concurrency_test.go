package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// TestBitcaskParallelStress exercises the sharded keydir and group-commit
// paths under -race: writers, readers, deleters and a compactor all run
// concurrently against one engine, then every surviving key is checked.
func TestBitcaskParallelStress(t *testing.T) {
	e, err := OpenBitcask("stress", t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const (
		writers      = 4
		keysPerGor   = 40
		readers      = 4
		compactRuns  = 3
		deletedEvery = 5
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keysPerGor; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", g, i))
				c := vclock.New().Increment(int32(g), int64(i))
				if err := e.Put(k, versioned.With([]byte(fmt.Sprintf("v%d-%d", g, i)), c)); err != nil {
					t.Errorf("put %s: %v", k, err)
					return
				}
				if i%deletedEvery == 0 {
					if _, err := e.Delete(k, nil); err != nil {
						t.Errorf("delete %s: %v", k, err)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keysPerGor*2; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", g%writers, i%keysPerGor))
				if _, err := e.Get(k); err != nil {
					t.Errorf("get %s: %v", k, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < compactRuns; i++ {
			if err := e.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	for g := 0; g < writers; g++ {
		for i := 0; i < keysPerGor; i++ {
			if i%deletedEvery == 0 {
				continue // deleted by its writer
			}
			k := []byte(fmt.Sprintf("w%d-k%d", g, i))
			vs, err := e.Get(k)
			if err != nil {
				t.Fatalf("get %s after stress: %v", k, err)
			}
			if len(vs) != 1 || !bytes.Equal(vs[0].Value, []byte(fmt.Sprintf("v%d-%d", g, i))) {
				t.Fatalf("key %s: wrong value after stress: %v", k, vs)
			}
		}
	}
}

// TestBitcaskCrashDurability asserts the group-commit contract: once a
// syncEvery==0 Put has returned, its bytes are on disk — so a copy of the
// log file taken WITHOUT closing the engine (simulating a crash right after
// the ack) must recover every acked write.
func TestBitcaskCrashDurability(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenBitcask("crash", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const writers, keysPerGor = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keysPerGor; i++ {
				k := []byte(fmt.Sprintf("g%d-k%d", g, i))
				c := vclock.New().Increment(int32(g), int64(i))
				if err := e.Put(k, versioned.With([]byte(fmt.Sprintf("val-%d-%d", g, i)), c)); err != nil {
					t.Errorf("put %s: %v", k, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Simulate the crash: snapshot the log as it exists on disk right now —
	// no Close, no extra flush — and recover a fresh engine from the copy.
	data, err := os.ReadFile(filepath.Join(dir, logFileName))
	if err != nil {
		t.Fatal(err)
	}
	crashDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(crashDir, logFileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenBitcask("crash-reopen", crashDir, 0)
	if err != nil {
		t.Fatalf("reopen after simulated crash: %v", err)
	}
	defer re.Close()

	for g := 0; g < writers; g++ {
		for i := 0; i < keysPerGor; i++ {
			k := []byte(fmt.Sprintf("g%d-k%d", g, i))
			vs, err := re.Get(k)
			if err != nil {
				t.Fatalf("get %s after crash recovery: %v", k, err)
			}
			if len(vs) != 1 || !bytes.Equal(vs[0].Value, []byte(fmt.Sprintf("val-%d-%d", g, i))) {
				t.Fatalf("acked write %s lost across simulated crash: %v", k, vs)
			}
		}
	}
	if got, want := re.Len(), writers*keysPerGor; got != want {
		t.Fatalf("recovered %d keys, want %d", got, want)
	}
}

// TestBitcaskCompactDuringWrites hammers Put while Compact runs repeatedly,
// then verifies the final state and that a reopen agrees with it — the
// incremental compaction's delta re-copy must not lose concurrent updates.
func TestBitcaskCompactDuringWrites(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenBitcask("cdw", dir, 0)
	if err != nil {
		t.Fatal(err)
	}

	const keys, rounds = 20, 10
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		clocks := make([]*vclock.Clock, keys)
		for i := range clocks {
			clocks[i] = vclock.New()
		}
		for r := 0; r < rounds; r++ {
			for i := 0; i < keys; i++ {
				c := clocks[i].Incremented(0, int64(r*keys+i))
				clocks[i] = c
				if err := e.Put([]byte(fmt.Sprintf("k%d", i)), versioned.With([]byte(fmt.Sprintf("r%d", r)), c)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if err := e.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	want := make(map[string][]byte)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		vs, err := e.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1 {
			t.Fatalf("key %s: %d versions", k, len(vs))
		}
		want[k] = vs[0].Value
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenBitcask("cdw", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, v := range want {
		vs, err := re.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1 || !bytes.Equal(vs[0].Value, v) {
			t.Fatalf("key %s diverged across reopen: got %v want %s", k, vs, v)
		}
	}
}
