package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// engineConformance runs the shared Engine contract against any
// implementation — the pluggability promise of Figure II.1.
func engineConformance(t *testing.T, e Engine) {
	t.Helper()

	// missing key: empty result, no error
	vs, err := e.Get([]byte("missing"))
	if err != nil || len(vs) != 0 {
		t.Fatalf("Get missing = (%v, %v), want empty", vs, err)
	}

	// put + get
	c1 := vclock.New().Increment(0, 1)
	if err := e.Put([]byte("k"), versioned.With([]byte("v1"), c1)); err != nil {
		t.Fatal(err)
	}
	vs, err = e.Get([]byte("k"))
	if err != nil || len(vs) != 1 || string(vs[0].Value) != "v1" {
		t.Fatalf("Get after put = (%v, %v)", vs, err)
	}

	// obsolete put rejected
	if err := e.Put([]byte("k"), versioned.With([]byte("stale"), vclock.New())); !errors.Is(err, versioned.ErrObsoleteVersion) {
		t.Fatalf("stale put err = %v, want ErrObsoleteVersion", err)
	}

	// superseding put replaces
	c2 := c1.Incremented(0, 2)
	if err := e.Put([]byte("k"), versioned.With([]byte("v2"), c2)); err != nil {
		t.Fatal(err)
	}
	vs, _ = e.Get([]byte("k"))
	if len(vs) != 1 || string(vs[0].Value) != "v2" {
		t.Fatalf("superseding put: got %v", vs)
	}

	// concurrent put keeps both
	cc := vclock.New().Increment(9, 3)
	if err := e.Put([]byte("k"), versioned.With([]byte("vc"), cc)); err != nil {
		t.Fatal(err)
	}
	vs, _ = e.Get([]byte("k"))
	if len(vs) != 2 {
		t.Fatalf("concurrent versions: got %d, want 2", len(vs))
	}

	// delete with merged clock removes all
	merged := c2.Merge(cc).Incremented(0, 4)
	removed, err := e.Delete([]byte("k"), merged)
	if err != nil || !removed {
		t.Fatalf("Delete = (%v, %v)", removed, err)
	}
	vs, _ = e.Get([]byte("k"))
	if len(vs) != 0 {
		t.Fatalf("after delete: %v", vs)
	}

	// delete missing
	removed, err = e.Delete([]byte("nothere"), nil)
	if err != nil || removed {
		t.Fatalf("Delete missing = (%v, %v)", removed, err)
	}

	// entries iteration
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("it-%d", i))
		if err := e.Put(k, versioned.With([]byte{byte(i)}, vclock.New().Increment(0, 1))); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := e.Entries(func(k []byte, vs []*versioned.Versioned) bool {
		if bytes.HasPrefix(k, []byte("it-")) {
			count++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("Entries visited %d it- keys, want 10", count)
	}
	if e.Len() < 10 {
		t.Fatalf("Len = %d, want >= 10", e.Len())
	}

	// early stop
	visits := 0
	_ = e.Entries(func([]byte, []*versioned.Versioned) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("early-stop Entries visited %d, want 1", visits)
	}

	// closed
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close err = %v", err)
	}
}

// openAppend opens the bitcask log file for appending raw bytes (test-only
// corruption injection).
func openAppend(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, logFileName), os.O_WRONLY|os.O_APPEND, 0o644)
}

func TestMemoryConformance(t *testing.T) {
	engineConformance(t, NewMemory("test"))
}

func TestBitcaskConformance(t *testing.T) {
	e, err := OpenBitcask("test", t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	engineConformance(t, e)
}

func TestBitcaskBatchedSyncConformance(t *testing.T) {
	e, err := OpenBitcask("test", t.TempDir(), 100)
	if err != nil {
		t.Fatal(err)
	}
	engineConformance(t, e)
}

func TestMemoryGetReturnsCopies(t *testing.T) {
	e := NewMemory("test")
	defer e.Close()
	c := vclock.New().Increment(0, 1)
	if err := e.Put([]byte("k"), versioned.With([]byte("abc"), c)); err != nil {
		t.Fatal(err)
	}
	vs, _ := e.Get([]byte("k"))
	vs[0].Value[0] = 'X'
	vs2, _ := e.Get([]byte("k"))
	if string(vs2[0].Value) != "abc" {
		t.Fatal("Get returned aliased value slice")
	}
}

func TestBitcaskRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenBitcask("test", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		c := vclock.New().Increment(0, int64(i))
		if err := e.Put(k, versioned.With([]byte(fmt.Sprintf("val-%d", i)), c)); err != nil {
			t.Fatal(err)
		}
	}
	// overwrite some, delete some
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		vs, _ := e.Get(k)
		c := vs[0].Clock.Incremented(0, 100)
		if err := e.Put(k, versioned.With([]byte("updated"), c)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 40; i < 50; i++ {
		if _, err := e.Delete([]byte(fmt.Sprintf("key-%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenBitcask("test", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 40 {
		t.Fatalf("recovered %d keys, want 40", re.Len())
	}
	vs, err := re.Get([]byte("key-5"))
	if err != nil || len(vs) != 1 || string(vs[0].Value) != "updated" {
		t.Fatalf("recovered key-5 = (%v, %v), want updated", vs, err)
	}
	vs, _ = re.Get([]byte("key-45"))
	if len(vs) != 0 {
		t.Fatal("deleted key survived recovery")
	}
}

func TestBitcaskTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenBitcask("test", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := vclock.New().Increment(0, 1)
	if err := e.Put([]byte("good"), versioned.With([]byte("data"), c)); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Append garbage simulating a torn write.
	f, err := openAppend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenBitcask("test", dir, 0)
	if err != nil {
		t.Fatalf("recovery with torn tail failed: %v", err)
	}
	defer re.Close()
	vs, err := re.Get([]byte("good"))
	if err != nil || len(vs) != 1 {
		t.Fatalf("valid record lost after torn tail: (%v, %v)", vs, err)
	}
	// and the engine still accepts writes after truncation
	c2 := c.Incremented(0, 2)
	if err := re.Put([]byte("good"), versioned.With([]byte("data2"), c2)); err != nil {
		t.Fatal(err)
	}
}

func TestBitcaskCompact(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenBitcask("test", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	c := vclock.New()
	for i := 0; i < 100; i++ {
		c = c.Incremented(0, int64(i))
		if err := e.Put([]byte("hot"), versioned.With(bytes.Repeat([]byte("x"), 100), c)); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Size()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	after := e.Size()
	if after >= before/10 {
		t.Fatalf("compaction barely helped: %d -> %d", before, after)
	}
	vs, err := e.Get([]byte("hot"))
	if err != nil || len(vs) != 1 {
		t.Fatalf("data lost in compaction: (%v, %v)", vs, err)
	}
	// writes continue to work post-compaction and survive reopen
	c = c.Incremented(0, 1000)
	if err := e.Put([]byte("post"), versioned.With([]byte("compact"), c)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	re, err := OpenBitcask("test", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("post-compaction reopen: %d keys, want 2", re.Len())
	}
}

func TestBitcaskConcurrent(t *testing.T) {
	e, err := OpenBitcask("test", t.TempDir(), 50)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("g%d-k%d", g, i))
				c := vclock.New().Increment(int32(g), int64(i))
				if err := e.Put(k, versioned.With([]byte("v"), c)); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Get(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if e.Len() != 800 {
		t.Fatalf("Len = %d, want 800", e.Len())
	}
}

func TestReadOnlyBasics(t *testing.T) {
	dir := t.TempDir()
	kvs := make([]KV, 1000)
	for i := range kvs {
		kvs[i] = KV{
			Key:   []byte(fmt.Sprintf("member-%d", i)),
			Value: []byte(fmt.Sprintf("recs-for-%d", i)),
		}
	}
	if err := WriteReadOnlyFiles(versionDir(dir, 1), kvs); err != nil {
		t.Fatal(err)
	}
	e, err := OpenReadOnly("pymk", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Version() != 1 {
		t.Fatalf("serving version %d, want 1", e.Version())
	}
	if e.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", e.Len())
	}
	for i := 0; i < 1000; i += 37 {
		vs, err := e.Get([]byte(fmt.Sprintf("member-%d", i)))
		if err != nil || len(vs) != 1 {
			t.Fatalf("Get member-%d = (%v, %v)", i, vs, err)
		}
		if string(vs[0].Value) != fmt.Sprintf("recs-for-%d", i) {
			t.Fatalf("wrong value for member-%d: %q", i, vs[0].Value)
		}
	}
	vs, err := e.Get([]byte("member-99999"))
	if err != nil || len(vs) != 0 {
		t.Fatalf("missing key = (%v, %v)", vs, err)
	}
	if err := e.Put([]byte("x"), versioned.New([]byte("y"))); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put err = %v, want ErrReadOnly", err)
	}
	if _, err := e.Delete([]byte("x"), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete err = %v, want ErrReadOnly", err)
	}
}

func TestReadOnlySwapAndRollback(t *testing.T) {
	dir := t.TempDir()
	mk := func(v int, val string) {
		if err := WriteReadOnlyFiles(versionDir(dir, v), []KV{{[]byte("k"), []byte(val)}}); err != nil {
			t.Fatal(err)
		}
	}
	mk(1, "one")
	e, err := OpenReadOnly("s", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	mk(2, "two")
	if err := e.Swap(2); err != nil {
		t.Fatal(err)
	}
	vs, _ := e.Get([]byte("k"))
	if string(vs[0].Value) != "two" {
		t.Fatalf("after swap: %q", vs[0].Value)
	}
	if err := e.Rollback(); err != nil {
		t.Fatal(err)
	}
	vs, _ = e.Get([]byte("k"))
	if string(vs[0].Value) != "one" {
		t.Fatalf("after rollback: %q", vs[0].Value)
	}
	if e.Version() != 1 {
		t.Fatalf("version after rollback = %d", e.Version())
	}
	// rolling back below the lowest version fails
	if err := e.Rollback(); err == nil {
		t.Fatal("rollback below lowest version succeeded")
	}
}

func TestReadOnlyOpensEmptyStore(t *testing.T) {
	e, err := OpenReadOnly("empty", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Len() != 0 {
		t.Fatalf("empty store Len = %d", e.Len())
	}
	vs, err := e.Get([]byte("anything"))
	if err != nil || len(vs) != 0 {
		t.Fatalf("Get on empty = (%v, %v)", vs, err)
	}
}

func TestReadOnlyEntriesOrderAndCount(t *testing.T) {
	dir := t.TempDir()
	kvs := []KV{{[]byte("a"), []byte("1")}, {[]byte("b"), []byte("2")}, {[]byte("c"), []byte("3")}}
	if err := WriteReadOnlyFiles(versionDir(dir, 0), kvs); err != nil {
		t.Fatal(err)
	}
	e, err := OpenReadOnly("s", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seen := map[string]string{}
	if err := e.Entries(func(k []byte, vs []*versioned.Versioned) bool {
		seen[string(k)] = string(vs[0].Value)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen["b"] != "2" {
		t.Fatalf("Entries = %v", seen)
	}
}

// Property: a bitcask engine and a memory engine fed the same random
// operation sequence end in the same state (the pluggability contract).
func TestPropEnginesEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mem := NewMemory("m")
		bc, err := OpenBitcask("b", t.TempDir(), 10)
		if err != nil {
			return false
		}
		defer bc.Close()
		defer mem.Close()
		clocks := map[string]*vclock.Clock{}
		for i := 0; i < 60; i++ {
			k := fmt.Sprintf("k%d", r.Intn(8))
			switch r.Intn(3) {
			case 0, 1: // put with advancing clock
				c := clocks[k]
				if c == nil {
					c = vclock.New()
				}
				c = c.Incremented(0, int64(i))
				clocks[k] = c
				v := versioned.With([]byte(fmt.Sprintf("v%d", i)), c)
				e1 := mem.Put([]byte(k), v.Clone())
				e2 := bc.Put([]byte(k), v.Clone())
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			case 2: // delete everything
				d1, _ := mem.Delete([]byte(k), nil)
				d2, _ := bc.Delete([]byte(k), nil)
				if d1 != d2 {
					return false
				}
				delete(clocks, k)
			}
		}
		if mem.Len() != bc.Len() {
			return false
		}
		equal := true
		_ = mem.Entries(func(k []byte, vs []*versioned.Versioned) bool {
			other, err := bc.Get(k)
			if err != nil || len(other) != len(vs) {
				equal = false
				return false
			}
			if !bytes.Equal(other[0].Value, vs[0].Value) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMemoryPut(b *testing.B) {
	e := NewMemory("bench")
	defer e.Close()
	benchPut(b, e)
}

func BenchmarkBitcaskPut(b *testing.B) {
	e, err := OpenBitcask("bench", b.TempDir(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	benchPut(b, e)
}

func benchPut(b *testing.B, e Engine) {
	val := bytes.Repeat([]byte("x"), 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		c := vclock.New().Increment(0, int64(i))
		if err := e.Put(k, versioned.With(val, c)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryGet(b *testing.B) {
	e := NewMemory("bench")
	defer e.Close()
	benchGet(b, e)
}

func BenchmarkBitcaskGet(b *testing.B) {
	e, err := OpenBitcask("bench", b.TempDir(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	benchGet(b, e)
}

func benchGet(b *testing.B, e Engine) {
	val := bytes.Repeat([]byte("x"), 1024)
	const n = 10000
	for i := 0; i < n; i++ {
		c := vclock.New().Increment(0, int64(i))
		if err := e.Put([]byte(fmt.Sprintf("key-%d", i)), versioned.With(val, c)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Get([]byte(fmt.Sprintf("key-%d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadOnlyGet(b *testing.B) {
	dir := b.TempDir()
	const n = 10000
	kvs := make([]KV, n)
	val := bytes.Repeat([]byte("x"), 1024)
	for i := range kvs {
		kvs[i] = KV{Key: []byte(fmt.Sprintf("key-%d", i)), Value: val}
	}
	if err := WriteReadOnlyFiles(versionDir(dir, 0), kvs); err != nil {
		b.Fatal(err)
	}
	e, err := OpenReadOnly("bench", dir)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Get([]byte(fmt.Sprintf("key-%d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}
