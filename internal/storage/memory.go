package storage

import (
	"sync"

	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// MemoryEngine is a thread-safe in-heap engine. It is the default for tests,
// quickstarts, and cache-like stores where durability is not required.
type MemoryEngine struct {
	name string

	mu     sync.RWMutex
	data   map[string][]*versioned.Versioned
	closed bool
}

// NewMemory returns an empty in-memory engine for the named store.
func NewMemory(name string) *MemoryEngine {
	return &MemoryEngine{name: name, data: make(map[string][]*versioned.Versioned)}
}

// Name returns the store name.
func (e *MemoryEngine) Name() string { return e.name }

// Get returns the stored concurrent versions for key.
func (e *MemoryEngine) Get(key []byte) ([]*versioned.Versioned, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	vs := e.data[string(key)]
	out := make([]*versioned.Versioned, len(vs))
	for i, v := range vs {
		out[i] = v.Clone()
	}
	return out, nil
}

// Put inserts v under the anti-chain rule.
func (e *MemoryEngine) Put(key []byte, v *versioned.Versioned) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	k := string(key)
	next, err := versioned.Add(e.data[k], v.Clone())
	if err != nil {
		return err
	}
	e.data[k] = next
	return nil
}

// Delete removes dominated versions.
func (e *MemoryEngine) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false, ErrClosed
	}
	k := string(key)
	vs, ok := e.data[k]
	if !ok {
		return false, nil
	}
	kept, removed := deleteVersions(vs, clock)
	if len(kept) == 0 {
		delete(e.data, k)
	} else {
		e.data[k] = kept
	}
	return removed, nil
}

// Entries iterates a snapshot of the keys.
func (e *MemoryEngine) Entries(fn func(key []byte, versions []*versioned.Versioned) bool) error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(e.data))
	for k := range e.data {
		keys = append(keys, k)
	}
	e.mu.RUnlock()

	for _, k := range keys {
		e.mu.RLock()
		vs := e.data[k]
		cp := make([]*versioned.Versioned, len(vs))
		for i, v := range vs {
			cp[i] = v.Clone()
		}
		e.mu.RUnlock()
		if len(cp) == 0 {
			continue
		}
		if !fn([]byte(k), cp) {
			return nil
		}
	}
	return nil
}

// Len returns the number of live keys.
func (e *MemoryEngine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.data)
}

// Close marks the engine closed.
func (e *MemoryEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}
