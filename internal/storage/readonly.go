package storage

import (
	"bufio"
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// ReadOnlyEngine serves static data produced offline (§II.B, Figure II.3).
// Each data deployment lives in a versioned directory "version-N" containing
// an index file (sorted 8-byte MD5 key digests + data offsets) and a data
// file (full key + value records). Lookups binary-search the index. Keeping
// multiple versioned directories allows instantaneous rollback.
//
// Values are served with an empty vector clock: the offline system is the
// single writer, so there is nothing to version.
type ReadOnlyEngine struct {
	name string
	dir  string // store directory containing version-N subdirs

	mu      sync.RWMutex
	version int
	index   []byte // loaded index file: records of (8B digest, 8B offset)
	data    *os.File
	count   int
	closed  bool
}

const roIndexEntrySize = 16 // 8-byte md5 prefix + 8-byte data offset

// KV is one key/value pair handed to the read-only builder.
type KV struct {
	Key, Value []byte
}

// versionDir returns dir/version-N.
func versionDir(dir string, v int) string {
	return filepath.Join(dir, fmt.Sprintf("version-%d", v))
}

// WriteReadOnlyFiles builds the index and data files for one node/partition
// chunk into destDir. Entries are sorted by MD5 digest, matching what the
// offline (Hadoop-substitute) build produces via its sort phase.
func WriteReadOnlyFiles(destDir string, kvs []KV) error {
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return err
	}
	type rec struct {
		digest [8]byte
		kv     KV
	}
	recs := make([]rec, len(kvs))
	for i, kv := range kvs {
		sum := md5.Sum(kv.Key)
		copy(recs[i].digest[:], sum[:8])
		recs[i].kv = kv
	}
	sort.Slice(recs, func(i, j int) bool {
		return bytes.Compare(recs[i].digest[:], recs[j].digest[:]) < 0
	})

	dataF, err := os.Create(filepath.Join(destDir, "data"))
	if err != nil {
		return err
	}
	defer dataF.Close()
	idxF, err := os.Create(filepath.Join(destDir, "index"))
	if err != nil {
		return err
	}
	defer idxF.Close()

	dw := bufio.NewWriter(dataF)
	iw := bufio.NewWriter(idxF)
	var off int64
	var hdr [6]byte // keyLen u16, valLen u32
	var idxEnt [roIndexEntrySize]byte
	for _, r := range recs {
		copy(idxEnt[:8], r.digest[:])
		binary.BigEndian.PutUint64(idxEnt[8:], uint64(off))
		if _, err := iw.Write(idxEnt[:]); err != nil {
			return err
		}
		binary.BigEndian.PutUint16(hdr[0:2], uint16(len(r.kv.Key)))
		binary.BigEndian.PutUint32(hdr[2:6], uint32(len(r.kv.Value)))
		if _, err := dw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := dw.Write(r.kv.Key); err != nil {
			return err
		}
		if _, err := dw.Write(r.kv.Value); err != nil {
			return err
		}
		off += int64(len(hdr)) + int64(len(r.kv.Key)) + int64(len(r.kv.Value))
	}
	if err := dw.Flush(); err != nil {
		return err
	}
	if err := iw.Flush(); err != nil {
		return err
	}
	if err := dataF.Sync(); err != nil {
		return err
	}
	return idxF.Sync()
}

// OpenReadOnly opens the store at dir, serving the highest version-N
// directory present. If none exists, an empty version-0 is created.
func OpenReadOnly(name, dir string) (*ReadOnlyEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	vs, err := ListVersions(dir)
	if err != nil {
		return nil, err
	}
	if len(vs) == 0 {
		if err := WriteReadOnlyFiles(versionDir(dir, 0), nil); err != nil {
			return nil, err
		}
		vs = []int{0}
	}
	e := &ReadOnlyEngine{name: name, dir: dir, version: -1}
	if err := e.swapLocked(vs[len(vs)-1]); err != nil {
		return nil, err
	}
	return e, nil
}

// ListVersions returns the sorted version numbers present under dir.
func ListVersions(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var vs []int
	for _, ent := range ents {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "version-") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(ent.Name(), "version-"))
		if err != nil {
			continue
		}
		vs = append(vs, n)
	}
	sort.Ints(vs)
	return vs, nil
}

// swapLocked loads version v. Caller must hold mu or be in the constructor.
func (e *ReadOnlyEngine) swapLocked(v int) error {
	vd := versionDir(e.dir, v)
	idx, err := os.ReadFile(filepath.Join(vd, "index"))
	if err != nil {
		return fmt.Errorf("readonly %s: load index v%d: %w", e.name, v, err)
	}
	if len(idx)%roIndexEntrySize != 0 {
		return fmt.Errorf("readonly %s: index v%d size %d not a multiple of %d",
			e.name, v, len(idx), roIndexEntrySize)
	}
	data, err := os.Open(filepath.Join(vd, "data"))
	if err != nil {
		return fmt.Errorf("readonly %s: open data v%d: %w", e.name, v, err)
	}
	if e.data != nil {
		e.data.Close()
	}
	e.index = idx
	e.data = data
	e.version = v
	e.count = len(idx) / roIndexEntrySize
	return nil
}

// Swap atomically switches serving to version v (the Swap phase of Fig II.3).
func (e *ReadOnlyEngine) Swap(v int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	return e.swapLocked(v)
}

// Rollback switches back to the highest version below the current one —
// the "instantaneous rollback" the versioned layout exists for.
func (e *ReadOnlyEngine) Rollback() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	vs, err := ListVersions(e.dir)
	if err != nil {
		return err
	}
	var prev = -1
	for _, v := range vs {
		if v < e.version && v > prev {
			prev = v
		}
	}
	if prev < 0 {
		return fmt.Errorf("readonly %s: no version below %d to roll back to", e.name, e.version)
	}
	return e.swapLocked(prev)
}

// Version returns the currently served version number.
func (e *ReadOnlyEngine) Version() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// Name returns the store name.
func (e *ReadOnlyEngine) Name() string { return e.name }

// Get binary-searches the digest index, then verifies the full key in the
// data file (adjacent probing handles 8-byte digest collisions).
func (e *ReadOnlyEngine) Get(key []byte) ([]*versioned.Versioned, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	sum := md5.Sum(key)
	digest := sum[:8]
	n := e.count
	i := sort.Search(n, func(i int) bool {
		return bytes.Compare(e.index[i*roIndexEntrySize:i*roIndexEntrySize+8], digest) >= 0
	})
	for ; i < n; i++ {
		ent := e.index[i*roIndexEntrySize : (i+1)*roIndexEntrySize]
		if !bytes.Equal(ent[:8], digest) {
			break
		}
		off := int64(binary.BigEndian.Uint64(ent[8:]))
		k, v, err := e.readAt(off)
		if err != nil {
			return nil, err
		}
		if bytes.Equal(k, key) {
			return []*versioned.Versioned{versioned.With(v, vclock.New())}, nil
		}
	}
	return nil, nil
}

func (e *ReadOnlyEngine) readAt(off int64) (key, value []byte, err error) {
	var hdr [6]byte
	if _, err := e.data.ReadAt(hdr[:], off); err != nil {
		return nil, nil, err
	}
	keyLen := int(binary.BigEndian.Uint16(hdr[0:2]))
	valLen := int(binary.BigEndian.Uint32(hdr[2:6]))
	buf := make([]byte, keyLen+valLen)
	if _, err := e.data.ReadAt(buf, off+6); err != nil {
		return nil, nil, err
	}
	return buf[:keyLen], buf[keyLen:], nil
}

// Put always fails: the data cycle replaces whole versions.
func (e *ReadOnlyEngine) Put([]byte, *versioned.Versioned) error { return ErrReadOnly }

// Delete always fails.
func (e *ReadOnlyEngine) Delete([]byte, *vclock.Clock) (bool, error) { return false, ErrReadOnly }

// Entries iterates every record in digest order.
func (e *ReadOnlyEngine) Entries(fn func(key []byte, versions []*versioned.Versioned) bool) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	for i := 0; i < e.count; i++ {
		off := int64(binary.BigEndian.Uint64(e.index[i*roIndexEntrySize+8 : (i+1)*roIndexEntrySize]))
		k, v, err := e.readAt(off)
		if err != nil {
			return err
		}
		if !fn(k, []*versioned.Versioned{versioned.With(v, vclock.New())}) {
			return nil
		}
	}
	return nil
}

// Len returns the number of records in the served version.
func (e *ReadOnlyEngine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.count
}

// Close releases the data file.
func (e *ReadOnlyEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if e.data != nil {
		return e.data.Close()
	}
	return nil
}
