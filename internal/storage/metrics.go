package storage

import "datainfra/internal/metrics"

// Instruments for the bitcask group-commit loop (documented in OPERATIONS.md,
// checked by cmd/metriclint). Batch size is the group-commit win made
// visible: under concurrent writers it should sit well above 1, meaning N
// Puts shared one fsync.
var (
	mCommitBatch = metrics.RegisterGauge("storage_commit_batch_events",
		"records flushed by the most recent group-commit cycle")
	mCommitLatency = metrics.RegisterHistogram("storage_commit_latency_seconds",
		"group-commit cycle latency (flush + fsync + waiter wakeup)")
)
