package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// BitcaskEngine is the durable read-write engine — the BerkeleyDB-JE
// substitute. Writes append the key's full version set to a log file and
// update an in-memory hash index; reads are a single ReadAt. Recovery scans
// the log (last record for a key wins); Compact rewrites live records into a
// fresh log and atomically swaps it in.
//
// The hot paths are built for concurrency:
//
//   - Group commit: concurrent Puts append to the shared bufio writer under
//     a short critical section, publish their index entry, and park on the
//     commit notifier. A dedicated commit goroutine flushes the buffer and
//     (under the syncEvery==0 policy) issues ONE fsync for everything
//     appended since the last cycle, then wakes every waiter — N concurrent
//     writers pay one fsync instead of N, with unchanged durability: a Put
//     returns only after its bytes are synced.
//   - Sharded keydir: the index is split across 16 independently locked
//     shards, so concurrent Gets and Puts on different keys never touch the
//     same lock.
//   - Lock-free reads: Gets resolve the record location from a shard and
//     ReadAt a dedicated read-only fd — they take no writer lock. A read of
//     a record still sitting in the write buffer (read-your-own-write inside
//     the commit window) waits for the next flush instead of forcing one
//     inline.
//   - Incremental compaction: live records are copied shard by shard while
//     writes continue; only the final delta re-copy and file swap runs under
//     the engine-wide gate.
type BitcaskEngine struct {
	name string
	dir  string
	// syncEvery flushes after this many writes (0 = flush+fsync every
	// commit cycle, i.e. every write is durable before its Put returns).
	syncEvery int

	// gate: normal operations hold it for read; Compact's swap phase and
	// Close hold it for write. closed is only written under gate (write).
	gate   sync.RWMutex
	closed bool

	shards [numShards]indexShard

	// writer state: the append path. wmu critical sections are short (no
	// I/O beyond buffered writes) — that is what group commit buys.
	wmu      sync.Mutex
	f        *os.File
	w        *bufio.Writer
	offset   int64
	pending  int // records appended since the last flush
	unsynced int // records since the last flush trigger (syncEvery>0 policy)

	// rf is the dedicated read fd; replaced only under gate (write).
	rf *os.File

	// commit notifier state. flushedAtomic mirrors flushedOff for the
	// lock-free reader fast path.
	waitMu        sync.Mutex
	waitCond      *sync.Cond
	flushedOff    int64
	syncedOff     int64
	commitErr     error
	flushedAtomic atomic.Int64

	// commitRunMu serializes commit cycles against each other and against
	// Compact's swap phase (lock order: gate < commitRunMu < wmu).
	commitRunMu sync.Mutex

	kick chan struct{}
	quit chan struct{}
	done chan struct{}
}

const numShards = 16

type indexShard struct {
	mu sync.RWMutex
	m  map[string]recordLoc
}

type recordLoc struct {
	offset int64
	size   int64
}

const (
	recHeaderSize = 4 + 4 + 4 + 1 // crc, keyLen, dataLen, flags
	flagTombstone = 1
	logFileName   = "data.bitcask"
)

func shardIndex(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % numShards)
}

func (e *BitcaskEngine) shardOf(key []byte) *indexShard {
	return &e.shards[shardIndex(key)]
}

// OpenBitcask opens (creating if needed) a bitcask store in dir. syncEvery
// controls fsync batching: 0 syncs every write (group-committed across
// concurrent writers); n>0 flushes every n writes without an explicit sync.
func OpenBitcask(name, dir string, syncEvery int) (*BitcaskEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bitcask %s: %w", name, err)
	}
	path := filepath.Join(dir, logFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bitcask %s: %w", name, err)
	}
	e := &BitcaskEngine{
		name:      name,
		dir:       dir,
		f:         f,
		syncEvery: syncEvery,
		kick:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	e.waitCond = sync.NewCond(&e.waitMu)
	for i := range e.shards {
		e.shards[i].m = make(map[string]recordLoc)
	}
	if err := e.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(e.offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(e.offset); err != nil { // drop a torn tail record
		f.Close()
		return nil, err
	}
	rf, err := os.Open(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("bitcask %s: read fd: %w", name, err)
	}
	e.rf = rf
	e.w = bufio.NewWriter(f)
	e.flushedOff = e.offset
	e.syncedOff = e.offset
	e.flushedAtomic.Store(e.offset)
	go e.commitLoop()
	return e, nil
}

// recover scans the log, rebuilding the index; a corrupt record ends the scan
// (the tail is truncated by the caller), which is the crash-recovery rule.
func (e *BitcaskEngine) recover() error {
	r := bufio.NewReader(e.f)
	var off int64
	hdr := make([]byte, recHeaderSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return err
		}
		crc := binary.BigEndian.Uint32(hdr[0:4])
		keyLen := binary.BigEndian.Uint32(hdr[4:8])
		dataLen := binary.BigEndian.Uint32(hdr[8:12])
		flags := hdr[12]
		body := make([]byte, int(keyLen)+int(dataLen))
		if _, err := io.ReadFull(r, body); err != nil {
			break // torn write at the tail
		}
		if crc32.ChecksumIEEE(body) != crc {
			break // corruption: stop at last valid record
		}
		key := body[:keyLen]
		size := int64(recHeaderSize) + int64(len(body))
		sh := e.shardOf(key)
		if flags&flagTombstone != 0 {
			delete(sh.m, string(key))
		} else {
			sh.m[string(key)] = recordLoc{offset: off, size: size}
		}
		off += size
	}
	e.offset = off
	return nil
}

// Name returns the store name.
func (e *BitcaskEngine) Name() string { return e.name }

// appendVersions encodes vs onto dst (length-prefixed version records).
func appendVersions(dst []byte, vs []*versioned.Versioned) ([]byte, error) {
	var lenBuf [4]byte
	for _, v := range vs {
		b, err := v.MarshalBinary()
		if err != nil {
			return dst, err
		}
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
		dst = append(dst, lenBuf[:]...)
		dst = append(dst, b...)
	}
	return dst, nil
}

func decodeVersions(data []byte) ([]*versioned.Versioned, error) {
	var out []*versioned.Versioned
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("bitcask: truncated version list")
		}
		n := binary.BigEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < n {
			return nil, fmt.Errorf("bitcask: truncated version record")
		}
		var v versioned.Versioned
		if err := v.UnmarshalBinary(data[:n]); err != nil {
			return nil, err
		}
		out = append(out, &v)
		data = data[n:]
	}
	return out, nil
}

// scratchPool holds reusable encode/read buffers for the record hot path.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// append writes one record into the shared write buffer under a short
// critical section and returns its location plus the end offset the caller
// must wait on for durability. It does no disk I/O of its own — the commit
// loop owns flush and fsync.
func (e *BitcaskEngine) append(key, data []byte, flags byte) (recordLoc, int64, error) {
	var hdr [recHeaderSize]byte
	crc := crc32.Update(0, crc32.IEEETable, key)
	crc = crc32.Update(crc, crc32.IEEETable, data)
	binary.BigEndian.PutUint32(hdr[0:4], crc)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(data)))
	hdr[12] = flags

	e.wmu.Lock()
	if e.commitErrSticky() != nil {
		err := e.commitErrSticky()
		e.wmu.Unlock()
		return recordLoc{}, 0, err
	}
	if _, err := e.w.Write(hdr[:]); err != nil {
		e.wmu.Unlock()
		return recordLoc{}, 0, err
	}
	if _, err := e.w.Write(key); err != nil {
		e.wmu.Unlock()
		return recordLoc{}, 0, err
	}
	if _, err := e.w.Write(data); err != nil {
		e.wmu.Unlock()
		return recordLoc{}, 0, err
	}
	loc := recordLoc{offset: e.offset, size: int64(recHeaderSize + len(key) + len(data))}
	e.offset += loc.size
	end := e.offset
	e.pending++
	e.unsynced++
	wantKick := e.syncEvery == 0 || e.unsynced >= e.syncEvery
	if wantKick {
		e.unsynced = 0
	}
	e.wmu.Unlock()
	if wantKick {
		e.kickCommit()
	}
	return loc, end, nil
}

func (e *BitcaskEngine) commitErrSticky() error {
	e.waitMu.Lock()
	err := e.commitErr
	e.waitMu.Unlock()
	return err
}

func (e *BitcaskEngine) kickCommit() {
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// commitLoop is the group-commit goroutine: each cycle flushes everything
// appended since the last one and, under the sync-every-write policy, issues
// a single fsync on behalf of all of it.
func (e *BitcaskEngine) commitLoop() {
	defer close(e.done)
	for {
		select {
		case <-e.quit:
			return
		case <-e.kick:
			e.runCommit()
		}
	}
}

// maxAggregationYields bounds how long runCommit waits for a batch to stop
// growing before committing it. Each step is a scheduler yield, so a lone
// writer pays one no-op yield while a stampede of writers woken by the
// previous cycle all land in the same batch.
const maxAggregationYields = 8

// runCommit performs one flush(+fsync) cycle and wakes the parked writers
// and readers it made visible/durable.
func (e *BitcaskEngine) runCommit() {
	e.commitRunMu.Lock()
	defer e.commitRunMu.Unlock()
	start := time.Now()

	if e.syncEvery == 0 {
		// Aggregate: writers released by the previous cycle's broadcast
		// re-append one at a time; yielding until pending stabilizes folds
		// them into one fsync instead of letting the first re-arrival
		// trigger a near-empty cycle.
		e.wmu.Lock()
		last := e.pending
		e.wmu.Unlock()
		for i := 0; i < maxAggregationYields; i++ {
			runtime.Gosched()
			e.wmu.Lock()
			cur := e.pending
			e.wmu.Unlock()
			if cur == last {
				break
			}
			last = cur
		}
	}

	e.wmu.Lock()
	batch := e.pending
	if batch == 0 {
		e.wmu.Unlock()
		return
	}
	err := e.w.Flush()
	end := e.offset
	f := e.f
	e.pending = 0
	e.wmu.Unlock()

	// fsync outside wmu: writers keep appending to the buffer while the
	// disk syncs — the next batch forms during this one's fsync.
	if err == nil && e.syncEvery == 0 {
		err = f.Sync()
	}

	e.waitMu.Lock()
	if err != nil {
		e.commitErr = err
	} else {
		e.flushedOff = end
		e.flushedAtomic.Store(end)
		if e.syncEvery == 0 {
			e.syncedOff = end
		}
	}
	e.waitMu.Unlock()
	e.waitCond.Broadcast()

	mCommitBatch.Set(int64(batch))
	mCommitLatency.Observe(time.Since(start))
}

// waitSynced parks until everything up to end is fsynced (or a commit error
// surfaces). Callers must have kicked the committer.
func (e *BitcaskEngine) waitSynced(end int64) error {
	e.waitMu.Lock()
	for e.commitErr == nil && e.syncedOff < end {
		e.waitCond.Wait()
	}
	err := e.commitErr
	e.waitMu.Unlock()
	return err
}

// ensureFlushed makes the bytes up to end visible to the read fd, parking on
// the commit notifier if they are still in the write buffer (the rare
// read-your-own-write-inside-the-commit-window case).
func (e *BitcaskEngine) ensureFlushed(end int64) error {
	if e.flushedAtomic.Load() >= end {
		return nil
	}
	e.kickCommit()
	e.waitMu.Lock()
	for e.commitErr == nil && e.flushedOff < end {
		e.waitCond.Wait()
	}
	err := e.commitErr
	e.waitMu.Unlock()
	return err
}

// readRecord loads and decodes the version set at loc from the read fd. It
// takes no writer lock; callers hold the gate for read.
func (e *BitcaskEngine) readRecord(loc recordLoc) ([]*versioned.Versioned, error) {
	if err := e.ensureFlushed(loc.offset + loc.size); err != nil {
		return nil, err
	}
	bp := scratchPool.Get().(*[]byte)
	buf := (*bp)[:0]
	if cap(buf) < int(loc.size) {
		buf = make([]byte, loc.size)
	} else {
		buf = buf[:loc.size]
	}
	vs, err := e.readRecordInto(buf, loc)
	*bp = buf[:0]
	scratchPool.Put(bp)
	return vs, err
}

func (e *BitcaskEngine) readRecordInto(buf []byte, loc recordLoc) ([]*versioned.Versioned, error) {
	if _, err := e.rf.ReadAt(buf, loc.offset); err != nil {
		return nil, err
	}
	keyLen := binary.BigEndian.Uint32(buf[4:8])
	return decodeVersions(buf[recHeaderSize+int(keyLen):])
}

// Get returns the version set for key. Reads contend with nothing: a shard
// read-lock for the index lookup, then a positioned read on the read fd.
func (e *BitcaskEngine) Get(key []byte) ([]*versioned.Versioned, error) {
	e.gate.RLock()
	defer e.gate.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	sh := e.shardOf(key)
	sh.mu.RLock()
	loc, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	return e.readRecord(loc)
}

// Put appends the updated version set for key. The read-modify-write is
// serialized per shard; the append itself is a short critical section on the
// shared writer, and the durability wait (syncEvery==0) happens with no
// locks held — that is the group-commit window.
func (e *BitcaskEngine) Put(key []byte, v *versioned.Versioned) error {
	e.gate.RLock()
	defer e.gate.RUnlock()
	if e.closed {
		return ErrClosed
	}
	sh := e.shardOf(key)
	sh.mu.Lock()
	k := string(key)
	var current []*versioned.Versioned
	if loc, ok := sh.m[k]; ok {
		var err error
		current, err = e.readRecord(loc)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	next, err := versioned.Add(current, v)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	bp := scratchPool.Get().(*[]byte)
	data, err := appendVersions((*bp)[:0], next)
	if err != nil {
		*bp = data[:0]
		scratchPool.Put(bp)
		sh.mu.Unlock()
		return err
	}
	loc, end, err := e.append(key, data, 0)
	*bp = data[:0]
	scratchPool.Put(bp)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	sh.m[k] = loc
	sh.mu.Unlock()
	if e.syncEvery == 0 {
		return e.waitSynced(end)
	}
	return nil
}

// Delete removes dominated versions; a full removal appends a tombstone.
func (e *BitcaskEngine) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	e.gate.RLock()
	defer e.gate.RUnlock()
	if e.closed {
		return false, ErrClosed
	}
	sh := e.shardOf(key)
	sh.mu.Lock()
	k := string(key)
	loc, ok := sh.m[k]
	if !ok {
		sh.mu.Unlock()
		return false, nil
	}
	current, err := e.readRecord(loc)
	if err != nil {
		sh.mu.Unlock()
		return false, err
	}
	kept, removed := deleteVersions(current, clock)
	if !removed {
		sh.mu.Unlock()
		return false, nil
	}
	var end int64
	if len(kept) == 0 {
		if _, end, err = e.append(key, nil, flagTombstone); err != nil {
			sh.mu.Unlock()
			return false, err
		}
		delete(sh.m, k)
	} else {
		bp := scratchPool.Get().(*[]byte)
		data, err := appendVersions((*bp)[:0], kept)
		if err != nil {
			*bp = data[:0]
			scratchPool.Put(bp)
			sh.mu.Unlock()
			return false, err
		}
		var newLoc recordLoc
		newLoc, end, err = e.append(key, data, 0)
		*bp = data[:0]
		scratchPool.Put(bp)
		if err != nil {
			sh.mu.Unlock()
			return false, err
		}
		sh.m[k] = newLoc
	}
	sh.mu.Unlock()
	if e.syncEvery == 0 {
		if err := e.waitSynced(end); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Entries iterates all live keys.
func (e *BitcaskEngine) Entries(fn func(key []byte, versions []*versioned.Versioned) bool) error {
	e.gate.RLock()
	defer e.gate.RUnlock()
	if e.closed {
		return ErrClosed
	}
	var keys []string
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	for _, k := range keys {
		sh := e.shardOf([]byte(k))
		sh.mu.RLock()
		loc, ok := sh.m[k]
		sh.mu.RUnlock()
		if !ok {
			continue // deleted mid-iteration
		}
		vs, err := e.readRecord(loc)
		if err != nil {
			return err
		}
		if !fn([]byte(k), vs) {
			return nil
		}
	}
	return nil
}

// Len returns the number of live keys.
func (e *BitcaskEngine) Len() int {
	e.gate.RLock()
	defer e.gate.RUnlock()
	n := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Compact rewrites live records into a new log, dropping superseded records
// and tombstones, then atomically replaces the old log. It is incremental:
// the bulk copy proceeds shard by shard with writes still flowing; only the
// delta re-copy (keys updated during the bulk phase) and the file swap stall
// the engine.
func (e *BitcaskEngine) Compact() error {
	// Bulk phase: snapshot shard by shard and copy live records. Writers
	// and readers are unaffected (we hold the gate for read like they do).
	e.gate.RLock()
	if e.closed {
		e.gate.RUnlock()
		return ErrClosed
	}

	tmpPath := filepath.Join(e.dir, logFileName+".compact")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		e.gate.RUnlock()
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	tw := bufio.NewWriter(tmp)
	copied := make(map[string]struct{ old, new recordLoc })
	var off int64
	copyRecord := func(k string, loc recordLoc) error {
		buf := make([]byte, loc.size)
		if err := e.ensureFlushed(loc.offset + loc.size); err != nil {
			return err
		}
		if _, err := e.rf.ReadAt(buf, loc.offset); err != nil {
			return err
		}
		if _, err := tw.Write(buf); err != nil {
			return err
		}
		copied[k] = struct{ old, new recordLoc }{loc, recordLoc{offset: off, size: loc.size}}
		off += loc.size
		return nil
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		snap := make(map[string]recordLoc, len(sh.m))
		for k, loc := range sh.m {
			snap[k] = loc
		}
		sh.mu.RUnlock()
		for k, loc := range snap {
			if err := copyRecord(k, loc); err != nil {
				e.gate.RUnlock()
				return fail(err)
			}
		}
	}
	e.gate.RUnlock()

	// Swap phase: stop the world briefly — re-copy only the records that
	// changed during the bulk phase, then swap the log.
	e.gate.Lock()
	defer e.gate.Unlock()
	if e.closed {
		return fail(ErrClosed)
	}
	e.commitRunMu.Lock()
	defer e.commitRunMu.Unlock()

	e.wmu.Lock()
	flushErr := e.w.Flush()
	e.pending = 0
	e.unsynced = 0
	e.wmu.Unlock()
	if flushErr != nil {
		return fail(flushErr)
	}
	e.waitMu.Lock()
	e.flushedOff = e.offset
	e.flushedAtomic.Store(e.offset)
	e.waitMu.Unlock()

	newIndex := make([]map[string]recordLoc, numShards)
	for i := range newIndex {
		newIndex[i] = make(map[string]recordLoc)
	}
	for i := range e.shards {
		sh := &e.shards[i]
		for k, loc := range sh.m {
			if c, ok := copied[k]; ok && c.old == loc {
				newIndex[i][k] = c.new
				continue
			}
			// Updated (or created) during the bulk phase: re-copy its
			// current record.
			buf := make([]byte, loc.size)
			if _, err := e.rf.ReadAt(buf, loc.offset); err != nil {
				return fail(err)
			}
			if _, err := tw.Write(buf); err != nil {
				return fail(err)
			}
			newIndex[i][k] = recordLoc{offset: off, size: loc.size}
			off += loc.size
		}
	}
	if err := tw.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	path := filepath.Join(e.dir, logFileName)
	if err := os.Rename(tmpPath, path); err != nil {
		return fail(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		return err
	}
	e.f.Close()
	e.rf.Close()
	e.f = tmp
	e.rf = rf
	e.w = bufio.NewWriter(tmp)
	if _, err := tmp.Seek(off, io.SeekStart); err != nil {
		return err
	}
	for i := range e.shards {
		e.shards[i].m = newIndex[i]
	}
	e.offset = off
	e.waitMu.Lock()
	e.flushedOff = off
	e.syncedOff = off
	e.flushedAtomic.Store(off)
	e.waitMu.Unlock()
	e.waitCond.Broadcast()
	return nil
}

// Size returns the current log size in bytes (garbage included).
func (e *BitcaskEngine) Size() int64 {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.offset
}

// Close flushes, syncs and closes the log.
func (e *BitcaskEngine) Close() error {
	e.gate.Lock()
	defer e.gate.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.quit)
	<-e.done
	e.commitRunMu.Lock()
	defer e.commitRunMu.Unlock()
	e.rf.Close()
	if err := e.w.Flush(); err != nil {
		e.f.Close()
		return err
	}
	if err := e.f.Sync(); err != nil {
		e.f.Close()
		return err
	}
	return e.f.Close()
}
