package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// BitcaskEngine is the durable read-write engine — the BerkeleyDB-JE
// substitute. Writes append the key's full version set to a log file and
// update an in-memory hash index; reads are a single ReadAt. Recovery scans
// the log (last record for a key wins); Compact rewrites live records into a
// fresh log and atomically swaps it in.
type BitcaskEngine struct {
	name string
	dir  string

	mu     sync.RWMutex
	f      *os.File
	w      *bufio.Writer
	offset int64
	index  map[string]recordLoc
	closed bool
	// syncEvery flushes+fsyncs after this many writes (0 = every write).
	syncEvery int
	unsynced  int
}

type recordLoc struct {
	offset int64
	size   int64
}

const (
	recHeaderSize = 4 + 4 + 4 + 1 // crc, keyLen, dataLen, flags
	flagTombstone = 1
	logFileName   = "data.bitcask"
)

// OpenBitcask opens (creating if needed) a bitcask store in dir. syncEvery
// controls fsync batching: 0 syncs every write; n>0 syncs every n writes.
func OpenBitcask(name, dir string, syncEvery int) (*BitcaskEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bitcask %s: %w", name, err)
	}
	path := filepath.Join(dir, logFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bitcask %s: %w", name, err)
	}
	e := &BitcaskEngine{
		name:      name,
		dir:       dir,
		f:         f,
		index:     make(map[string]recordLoc),
		syncEvery: syncEvery,
	}
	if err := e.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(e.offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(e.offset); err != nil { // drop a torn tail record
		f.Close()
		return nil, err
	}
	e.w = bufio.NewWriter(f)
	return e, nil
}

// recover scans the log, rebuilding the index; a corrupt record ends the scan
// (the tail is truncated by the caller), which is the crash-recovery rule.
func (e *BitcaskEngine) recover() error {
	r := bufio.NewReader(e.f)
	var off int64
	hdr := make([]byte, recHeaderSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return err
		}
		crc := binary.BigEndian.Uint32(hdr[0:4])
		keyLen := binary.BigEndian.Uint32(hdr[4:8])
		dataLen := binary.BigEndian.Uint32(hdr[8:12])
		flags := hdr[12]
		body := make([]byte, int(keyLen)+int(dataLen))
		if _, err := io.ReadFull(r, body); err != nil {
			break // torn write at the tail
		}
		if crc32.ChecksumIEEE(body) != crc {
			break // corruption: stop at last valid record
		}
		key := string(body[:keyLen])
		size := int64(recHeaderSize) + int64(len(body))
		if flags&flagTombstone != 0 {
			delete(e.index, key)
		} else {
			e.index[key] = recordLoc{offset: off, size: size}
		}
		off += size
	}
	e.offset = off
	return nil
}

// Name returns the store name.
func (e *BitcaskEngine) Name() string { return e.name }

func encodeVersions(vs []*versioned.Versioned) ([]byte, error) {
	var out []byte
	var lenBuf [4]byte
	for _, v := range vs {
		b, err := v.MarshalBinary()
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
		out = append(out, lenBuf[:]...)
		out = append(out, b...)
	}
	return out, nil
}

func decodeVersions(data []byte) ([]*versioned.Versioned, error) {
	var out []*versioned.Versioned
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("bitcask: truncated version list")
		}
		n := binary.BigEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < n {
			return nil, fmt.Errorf("bitcask: truncated version record")
		}
		var v versioned.Versioned
		if err := v.UnmarshalBinary(data[:n]); err != nil {
			return nil, err
		}
		out = append(out, &v)
		data = data[n:]
	}
	return out, nil
}

// appendRecord writes a record and returns its location. Caller holds mu.
func (e *BitcaskEngine) appendRecord(key []byte, data []byte, flags byte) (recordLoc, error) {
	body := make([]byte, 0, len(key)+len(data))
	body = append(body, key...)
	body = append(body, data...)
	hdr := make([]byte, recHeaderSize)
	binary.BigEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(body))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(data)))
	hdr[12] = flags
	if _, err := e.w.Write(hdr); err != nil {
		return recordLoc{}, err
	}
	if _, err := e.w.Write(body); err != nil {
		return recordLoc{}, err
	}
	loc := recordLoc{offset: e.offset, size: int64(len(hdr) + len(body))}
	e.offset += loc.size
	e.unsynced++
	if e.syncEvery == 0 || e.unsynced >= e.syncEvery {
		if err := e.w.Flush(); err != nil {
			return recordLoc{}, err
		}
		if e.syncEvery == 0 {
			if err := e.f.Sync(); err != nil {
				return recordLoc{}, err
			}
		}
		e.unsynced = 0
	}
	return loc, nil
}

// readRecord loads and decodes the version set at loc. Caller holds mu (read).
func (e *BitcaskEngine) readRecord(loc recordLoc) ([]*versioned.Versioned, error) {
	buf := make([]byte, loc.size)
	if _, err := e.f.ReadAt(buf, loc.offset); err != nil {
		return nil, err
	}
	keyLen := binary.BigEndian.Uint32(buf[4:8])
	return decodeVersions(buf[recHeaderSize+int(keyLen):])
}

// Get returns the version set for key.
func (e *BitcaskEngine) Get(key []byte) ([]*versioned.Versioned, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	loc, ok := e.index[string(key)]
	if !ok {
		return nil, nil
	}
	if err := e.w.Flush(); err != nil { // make buffered writes visible to ReadAt
		return nil, err
	}
	return e.readRecord(loc)
}

// Put appends the updated version set for key.
func (e *BitcaskEngine) Put(key []byte, v *versioned.Versioned) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	k := string(key)
	var current []*versioned.Versioned
	if loc, ok := e.index[k]; ok {
		if err := e.w.Flush(); err != nil {
			return err
		}
		var err error
		current, err = e.readRecord(loc)
		if err != nil {
			return err
		}
	}
	next, err := versioned.Add(current, v)
	if err != nil {
		return err
	}
	data, err := encodeVersions(next)
	if err != nil {
		return err
	}
	loc, err := e.appendRecord(key, data, 0)
	if err != nil {
		return err
	}
	e.index[k] = loc
	return nil
}

// Delete removes dominated versions; a full removal appends a tombstone.
func (e *BitcaskEngine) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false, ErrClosed
	}
	k := string(key)
	loc, ok := e.index[k]
	if !ok {
		return false, nil
	}
	if err := e.w.Flush(); err != nil {
		return false, err
	}
	current, err := e.readRecord(loc)
	if err != nil {
		return false, err
	}
	kept, removed := deleteVersions(current, clock)
	if !removed {
		return false, nil
	}
	if len(kept) == 0 {
		if _, err := e.appendRecord(key, nil, flagTombstone); err != nil {
			return false, err
		}
		delete(e.index, k)
		return true, nil
	}
	data, err := encodeVersions(kept)
	if err != nil {
		return false, err
	}
	newLoc, err := e.appendRecord(key, data, 0)
	if err != nil {
		return false, err
	}
	e.index[k] = newLoc
	return true, nil
}

// Entries iterates all live keys.
func (e *BitcaskEngine) Entries(fn func(key []byte, versions []*versioned.Versioned) bool) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if err := e.w.Flush(); err != nil {
		e.mu.Unlock()
		return err
	}
	keys := make([]string, 0, len(e.index))
	for k := range e.index {
		keys = append(keys, k)
	}
	e.mu.Unlock()

	for _, k := range keys {
		e.mu.Lock()
		loc, ok := e.index[k]
		if !ok {
			e.mu.Unlock()
			continue
		}
		if err := e.w.Flush(); err != nil {
			e.mu.Unlock()
			return err
		}
		vs, err := e.readRecord(loc)
		e.mu.Unlock()
		if err != nil {
			return err
		}
		if !fn([]byte(k), vs) {
			return nil
		}
	}
	return nil
}

// Len returns the number of live keys.
func (e *BitcaskEngine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.index)
}

// Compact rewrites live records into a new log, dropping superseded records
// and tombstones, then atomically replaces the old log.
func (e *BitcaskEngine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := e.w.Flush(); err != nil {
		return err
	}
	tmpPath := filepath.Join(e.dir, logFileName+".compact")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	tw := bufio.NewWriter(tmp)
	newIndex := make(map[string]recordLoc, len(e.index))
	var off int64
	for k, loc := range e.index {
		buf := make([]byte, loc.size)
		if _, err := e.f.ReadAt(buf, loc.offset); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		if _, err := tw.Write(buf); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		newIndex[k] = recordLoc{offset: off, size: loc.size}
		off += loc.size
	}
	if err := tw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	path := filepath.Join(e.dir, logFileName)
	if err := os.Rename(tmpPath, path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	e.f.Close()
	e.f = tmp
	e.w = bufio.NewWriter(tmp)
	if _, err := tmp.Seek(off, io.SeekStart); err != nil {
		return err
	}
	e.index = newIndex
	e.offset = off
	e.unsynced = 0
	return nil
}

// Size returns the current log size in bytes (garbage included).
func (e *BitcaskEngine) Size() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.offset
}

// Close flushes, syncs and closes the log.
func (e *BitcaskEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if err := e.w.Flush(); err != nil {
		e.f.Close()
		return err
	}
	if err := e.f.Sync(); err != nil {
		e.f.Close()
		return err
	}
	return e.f.Close()
}
