package ring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"datainfra/internal/cluster"
)

func testCluster(t *testing.T, nodes, partitions int) *cluster.Cluster {
	t.Helper()
	return cluster.Uniform("test", nodes, partitions, 7000)
}

func TestHashRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		p := Hash([]byte(fmt.Sprintf("key-%d", i)), 16)
		if p < 0 || p >= 16 {
			t.Fatalf("Hash out of range: %d", p)
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	if Hash([]byte("abc"), 64) != Hash([]byte("abc"), 64) {
		t.Fatal("Hash not deterministic")
	}
}

func TestHashUniform(t *testing.T) {
	const parts, keys = 8, 16000
	counts := make([]int, parts)
	for i := 0; i < keys; i++ {
		counts[Hash([]byte(fmt.Sprintf("key-%d", i)), parts)]++
	}
	want := keys / parts
	for p, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("partition %d has %d keys, expected near %d — hash badly skewed", p, c, want)
		}
	}
}

func TestConsistentDistinctNodes(t *testing.T) {
	c := testCluster(t, 4, 32)
	r, err := NewConsistent(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		nodes := r.NodeList([]byte(fmt.Sprintf("key-%d", i)))
		if len(nodes) != 3 {
			t.Fatalf("key %d: %d replicas, want 3", i, len(nodes))
		}
		seen := map[int]bool{}
		for _, n := range nodes {
			if seen[n.ID] {
				t.Fatalf("key %d: duplicate node %d in replica set", i, n.ID)
			}
			seen[n.ID] = true
		}
	}
}

func TestConsistentPrimaryIsHashPartition(t *testing.T) {
	c := testCluster(t, 4, 32)
	r, _ := NewConsistent(c, 2)
	key := []byte("hello")
	parts := r.PartitionList(key)
	if parts[0] != Hash(key, 32) {
		t.Fatalf("first replica partition %d != hash partition %d", parts[0], Hash(key, 32))
	}
	if r.Master(key) != Hash(key, 32) {
		t.Fatalf("Master mismatch")
	}
}

func TestConsistentReplicationBounds(t *testing.T) {
	c := testCluster(t, 2, 8)
	if _, err := NewConsistent(c, 3); err == nil {
		t.Fatal("replication > nodes accepted")
	}
	if _, err := NewConsistent(c, 0); err == nil {
		t.Fatal("replication 0 accepted")
	}
}

func TestReplicaPartitionsFor(t *testing.T) {
	c := testCluster(t, 3, 9)
	r, _ := NewConsistent(c, 2)
	// Union over all nodes must cover every partition (each primary partition
	// replicates somewhere).
	union := map[int]bool{}
	for id := 0; id < 3; id++ {
		for p := range r.ReplicaPartitionsFor(id) {
			union[p] = true
		}
	}
	if len(union) != 9 {
		t.Fatalf("replica partitions union covers %d/9 partitions", len(union))
	}
	// A node's own partitions are always in its replica set.
	own := r.ReplicaPartitionsFor(0)
	for _, p := range c.NodeByID(0).Partitions {
		if !own[p] {
			t.Fatalf("node 0's own partition %d missing from its replica set", p)
		}
	}
}

func TestZonedSpansZones(t *testing.T) {
	c := cluster.UniformZoned("zoned", 6, 24, 2, 7100)
	r, err := NewZoned(c, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		nodes := r.NodeList([]byte(fmt.Sprintf("key-%d", i)))
		if len(nodes) != 3 {
			t.Fatalf("key %d: %d replicas, want 3", i, len(nodes))
		}
		zones := map[int]bool{}
		ids := map[int]bool{}
		for _, n := range nodes {
			zones[n.ZoneID] = true
			if ids[n.ID] {
				t.Fatalf("duplicate node in zoned replica set")
			}
			ids[n.ID] = true
		}
		if len(zones) < 2 {
			t.Fatalf("key %d: replicas span %d zones, want >=2", i, len(zones))
		}
	}
}

func TestZonedPrefersLocalZone(t *testing.T) {
	c := cluster.UniformZoned("zoned", 6, 24, 3, 7100)
	for zone := 0; zone < 3; zone++ {
		r, err := NewZoned(c, 3, 3, zone)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			nodes := r.NodeList([]byte(fmt.Sprintf("key-%d", i)))
			if nodes[0].ZoneID != zone {
				t.Fatalf("client zone %d: first replica in zone %d", zone, nodes[0].ZoneID)
			}
		}
	}
}

func TestZonedValidation(t *testing.T) {
	c := cluster.UniformZoned("zoned", 4, 8, 2, 7100)
	if _, err := NewZoned(c, 2, 3, 0); err == nil {
		t.Fatal("requiredZones > zones accepted")
	}
	if _, err := NewZoned(c, 2, 1, 9); err == nil {
		t.Fatal("unknown client zone accepted")
	}
}

// Property: replica sets are stable — the same key always routes to the same
// ordered node list, and every key yields exactly N distinct nodes.
func TestPropRoutingStableAndComplete(t *testing.T) {
	c := testCluster(t, 5, 40)
	r, _ := NewConsistent(c, 3)
	f := func(key []byte) bool {
		a, b := r.NodeList(key), r.NodeList(key)
		if len(a) != 3 || len(b) != 3 {
			return false
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reassigning an unrelated partition does not change routing for
// keys whose replica walk never crosses it (stability under small topology
// changes is what makes rebalancing proxying tractable).
func TestPropUnrelatedReassignmentStable(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	base := testCluster(t, 5, 40)
	strat, _ := NewConsistent(base, 2)
	for trial := 0; trial < 50; trial++ {
		key := []byte(fmt.Sprintf("key-%d", r.Intn(10000)))
		before := strat.PartitionList(key)
		touched := map[int]bool{}
		for _, p := range before {
			touched[p] = true
		}
		// pick a partition not in the key's walk range
		victim := r.Intn(40)
		if touched[victim] {
			continue
		}
		// also skip partitions between master and last replica (the walk range)
		inWalk := false
		for i := 0; i < 40; i++ {
			p := (before[0] + i) % 40
			if p == victim {
				inWalk = true
			}
			if p == before[len(before)-1] {
				break
			}
		}
		if inWalk {
			continue
		}
		clone := base.Clone()
		owner, _ := clone.OwnerOf(victim)
		if err := clone.SetOwner(victim, (owner.ID+1)%5); err != nil {
			t.Fatal(err)
		}
		strat2, _ := NewConsistent(clone, 2)
		after := strat2.PartitionList(key)
		if len(before) != len(after) {
			t.Fatalf("replica count changed: %v vs %v", before, after)
		}
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("unrelated reassignment changed routing: %v vs %v", before, after)
			}
		}
	}
}

func BenchmarkPartitionList(b *testing.B) {
	c := cluster.Uniform("bench", 8, 128, 7000)
	r, _ := NewConsistent(c, 3)
	key := []byte("benchmark-key")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.PartitionList(key)
	}
}

func BenchmarkZonedNodeList(b *testing.B) {
	c := cluster.UniformZoned("bench", 9, 128, 3, 7000)
	r, _ := NewZoned(c, 3, 2, 0)
	key := []byte("benchmark-key")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.NodeList(key)
	}
}
