// Package ring implements Voldemort's consistent-hashing routing (§II.B):
// keys are hashed (MD5) onto a ring of equal-sized logical partitions; the
// replica set for a key is found by jumping the ring from the key's primary
// partition until N-1 further partitions on *distinct nodes* are collected.
// The non-order-preserving hash prevents hot spots.
//
// A zone-aware variant adds the constraint that the replica set must span a
// required number of zones, walking each zone's proximity list.
package ring

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"

	"datainfra/internal/cluster"
)

// Strategy computes the ordered replica lists for keys. Implementations are
// pluggable per Figure II.1.
type Strategy interface {
	// PartitionList returns the ordered partition replica list for key.
	PartitionList(key []byte) []int
	// NodeList returns the ordered nodes responsible for key, preference
	// order first (primary first).
	NodeList(key []byte) []*cluster.Node
	// Master returns the primary partition for key.
	Master(key []byte) int
	// Replication returns N, the number of replicas maintained.
	Replication() int
}

// Hash maps a key to a partition id in [0, numPartitions). MD5 is used for
// its uniformity, exactly as the paper describes for both routing and the
// read-only store index.
func Hash(key []byte, numPartitions int) int {
	sum := md5.Sum(key)
	v := binary.BigEndian.Uint32(sum[0:4])
	return int(v % uint32(numPartitions))
}

// Consistent is the plain consistent-hashing strategy: jump the ring until
// N partitions on distinct nodes are found.
type Consistent struct {
	c *cluster.Cluster
	n int
}

// NewConsistent builds a Strategy over the cluster with replication factor n.
func NewConsistent(c *cluster.Cluster, n int) (*Consistent, error) {
	if n < 1 || n > len(c.Nodes) {
		return nil, fmt.Errorf("ring: replication %d invalid for %d nodes", n, len(c.Nodes))
	}
	return &Consistent{c: c, n: n}, nil
}

// Replication returns N.
func (r *Consistent) Replication() int { return r.n }

// Master returns the primary partition for key.
func (r *Consistent) Master(key []byte) int { return Hash(key, r.c.NumPartitions) }

// PartitionList walks the ring from the key's primary partition, collecting
// partitions until n distinct nodes are covered.
func (r *Consistent) PartitionList(key []byte) []int {
	return r.partitionListFrom(Hash(key, r.c.NumPartitions))
}

func (r *Consistent) partitionListFrom(start int) []int {
	parts := make([]int, 0, r.n)
	seen := make(map[int]bool, r.n)
	for i := 0; i < r.c.NumPartitions && len(parts) < r.n; i++ {
		p := (start + i) % r.c.NumPartitions
		owner, err := r.c.OwnerOf(p)
		if err != nil {
			continue
		}
		if !seen[owner.ID] {
			seen[owner.ID] = true
			parts = append(parts, p)
		}
	}
	return parts
}

// NodeList maps PartitionList through the ownership table.
func (r *Consistent) NodeList(key []byte) []*cluster.Node {
	parts := r.PartitionList(key)
	nodes := make([]*cluster.Node, 0, len(parts))
	for _, p := range parts {
		if n, err := r.c.OwnerOf(p); err == nil {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// ReplicaPartitionsFor returns, for a given node, the set of partitions whose
// replica lists include any partition owned by that node. Used by
// rebalancing and the read-only build to decide which keys belong on a node.
func (r *Consistent) ReplicaPartitionsFor(nodeID int) map[int]bool {
	out := make(map[int]bool)
	for p := 0; p < r.c.NumPartitions; p++ {
		for _, q := range r.partitionListFrom(p) {
			owner, err := r.c.OwnerOf(q)
			if err == nil && owner.ID == nodeID {
				out[p] = true
			}
		}
	}
	return out
}

// Zoned is the multi-datacenter routing variant: the ring walk carries the
// extra constraint that replicas must span at least requiredZones zones,
// preferring the client's local zone first, then zones in proximity order.
type Zoned struct {
	c             *cluster.Cluster
	n             int
	requiredZones int
	clientZone    int
}

// NewZoned builds a zone-aware Strategy. clientZone orders the preference
// list so the nearest replicas come first.
func NewZoned(c *cluster.Cluster, n, requiredZones, clientZone int) (*Zoned, error) {
	if n < 1 || n > len(c.Nodes) {
		return nil, fmt.Errorf("ring: replication %d invalid for %d nodes", n, len(c.Nodes))
	}
	if requiredZones < 1 || requiredZones > len(c.Zones) {
		return nil, fmt.Errorf("ring: requiredZones %d invalid for %d zones", requiredZones, len(c.Zones))
	}
	if c.ZoneByID(clientZone) == nil {
		return nil, fmt.Errorf("ring: unknown client zone %d", clientZone)
	}
	return &Zoned{c: c, n: n, requiredZones: requiredZones, clientZone: clientZone}, nil
}

// Replication returns N.
func (r *Zoned) Replication() int { return r.n }

// Master returns the primary partition for key.
func (r *Zoned) Master(key []byte) int { return Hash(key, r.c.NumPartitions) }

// PartitionList jumps the ring collecting partitions on distinct nodes with
// the zone-count constraint: while fewer than requiredZones zones are
// represented, a partition is only accepted if it adds a new zone.
func (r *Zoned) PartitionList(key []byte) []int {
	start := Hash(key, r.c.NumPartitions)
	parts := make([]int, 0, r.n)
	seenNode := make(map[int]bool, r.n)
	seenZone := make(map[int]bool, r.requiredZones)
	// First pass: enforce zone diversity.
	for i := 0; i < r.c.NumPartitions && len(seenZone) < r.requiredZones && len(parts) < r.n; i++ {
		p := (start + i) % r.c.NumPartitions
		owner, err := r.c.OwnerOf(p)
		if err != nil || seenNode[owner.ID] || seenZone[owner.ZoneID] {
			continue
		}
		seenNode[owner.ID] = true
		seenZone[owner.ZoneID] = true
		parts = append(parts, p)
	}
	// Second pass: fill remaining replicas on any distinct nodes.
	for i := 0; i < r.c.NumPartitions && len(parts) < r.n; i++ {
		p := (start + i) % r.c.NumPartitions
		owner, err := r.c.OwnerOf(p)
		if err != nil || seenNode[owner.ID] {
			continue
		}
		seenNode[owner.ID] = true
		parts = append(parts, p)
	}
	return parts
}

// NodeList returns the replica nodes ordered nearest-zone-first: the client's
// own zone, then zones by the client zone's proximity list.
func (r *Zoned) NodeList(key []byte) []*cluster.Node {
	parts := r.PartitionList(key)
	nodes := make([]*cluster.Node, 0, len(parts))
	for _, p := range parts {
		if n, err := r.c.OwnerOf(p); err == nil {
			nodes = append(nodes, n)
		}
	}
	rank := r.zoneRank()
	// Stable sort by zone distance, preserving ring order within a zone.
	out := make([]*cluster.Node, 0, len(nodes))
	for dist := 0; dist <= len(r.c.Zones); dist++ {
		for _, n := range nodes {
			if rank[n.ZoneID] == dist {
				out = append(out, n)
			}
		}
	}
	return out
}

func (r *Zoned) zoneRank() map[int]int {
	rank := map[int]int{r.clientZone: 0}
	z := r.c.ZoneByID(r.clientZone)
	for i, other := range z.ProximityList {
		rank[other] = i + 1
	}
	// Zones missing from the proximity list go last.
	last := len(rank)
	for _, zone := range r.c.Zones {
		if _, ok := rank[zone.ID]; !ok {
			rank[zone.ID] = last
		}
	}
	return rank
}
