package failure

import "datainfra/internal/metrics"

// Process-wide instruments for the bannage detector (documented in
// OPERATIONS.md, checked by cmd/metriclint). The banned-node gauge moves by
// deltas (ban +1, recovery -1) so several detectors in one process — routed
// stores each own one — aggregate naturally.
var (
	mBans = metrics.RegisterCounter("failure_node_bans_total",
		"nodes banned after the windowed success ratio fell below threshold")
	mRecoveries = metrics.RegisterCounter("failure_node_recoveries_total",
		"banned nodes recovered via successful operation, probe, or MarkUp")
	mBannedNodes = metrics.RegisterGauge("failure_banned_nodes",
		"nodes currently banned across all detectors in this process")
)
