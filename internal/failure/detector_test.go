package failure

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAlwaysUp(t *testing.T) {
	var d AlwaysUp
	d.RecordFailure(1)
	d.RecordFailure(1)
	if !d.Available(1) {
		t.Fatal("AlwaysUp banned a node")
	}
}

func TestBansBelowThreshold(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.8, MinRequests: 5}, nil)
	defer d.Close()
	for i := 0; i < 3; i++ {
		d.RecordSuccess(1)
	}
	for i := 0; i < 4; i++ {
		d.RecordFailure(1)
	}
	if d.Available(1) {
		t.Fatal("node with 3/7 success ratio still available")
	}
	if d.Available(2) {
		// node 2 untouched, should be up
	} else {
		t.Fatal("untouched node banned")
	}
}

func TestNoBanBeforeMinRequests(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.8, MinRequests: 10}, nil)
	defer d.Close()
	for i := 0; i < 5; i++ {
		d.RecordFailure(1)
	}
	if !d.Available(1) {
		t.Fatal("banned before MinRequests observations")
	}
}

func TestSuccessUnbans(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.9, MinRequests: 2}, nil)
	defer d.Close()
	d.RecordFailure(1)
	d.RecordFailure(1)
	if d.Available(1) {
		t.Fatal("not banned")
	}
	d.RecordSuccess(1)
	if !d.Available(1) {
		t.Fatal("success did not unban")
	}
}

func TestWindowReset(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.8, MinRequests: 4, Window: time.Second, Now: clock}, nil)
	defer d.Close()
	d.RecordFailure(1)
	d.RecordFailure(1)
	d.RecordFailure(1)
	now = now.Add(2 * time.Second) // window expires
	d.RecordFailure(1)             // only 1 observation in the new window
	if !d.Available(1) {
		t.Fatal("stale window failures caused ban")
	}
}

func TestAsyncProbeRecovers(t *testing.T) {
	var ok atomic.Bool
	prober := ProberFunc(func(node int) error {
		if ok.Load() {
			return nil
		}
		return errors.New("down")
	})
	d := NewSuccessRatio(SuccessRatioConfig{
		Threshold: 0.9, MinRequests: 2, ProbeInterval: 5 * time.Millisecond,
	}, prober)
	defer d.Close()
	d.RecordFailure(7)
	d.RecordFailure(7)
	if d.Available(7) {
		t.Fatal("not banned")
	}
	time.Sleep(30 * time.Millisecond)
	if d.Available(7) {
		t.Fatal("recovered while probe failing")
	}
	ok.Store(true)
	deadline := time.Now().Add(time.Second)
	for !d.Available(7) {
		if time.Now().After(deadline) {
			t.Fatal("probe success did not unban node")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBannedList(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.9, MinRequests: 1}, nil)
	defer d.Close()
	d.RecordFailure(3)
	banned := d.Banned()
	if len(banned) != 1 || banned[0] != 3 {
		t.Fatalf("Banned() = %v, want [3]", banned)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.5, MinRequests: 100}, nil)
	defer d.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if i%2 == 0 {
					d.RecordSuccess(g % 3)
				} else {
					d.RecordFailure(g % 3)
				}
				d.Available(g % 3)
			}
		}(g)
	}
	wg.Wait()
}
