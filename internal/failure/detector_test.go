package failure

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAlwaysUp(t *testing.T) {
	var d AlwaysUp
	d.RecordFailure(1)
	d.RecordFailure(1)
	if !d.Available(1) {
		t.Fatal("AlwaysUp banned a node")
	}
}

func TestBansBelowThreshold(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.8, MinRequests: 5}, nil)
	defer d.Close()
	for i := 0; i < 3; i++ {
		d.RecordSuccess(1)
	}
	for i := 0; i < 4; i++ {
		d.RecordFailure(1)
	}
	if d.Available(1) {
		t.Fatal("node with 3/7 success ratio still available")
	}
	if d.Available(2) {
		// node 2 untouched, should be up
	} else {
		t.Fatal("untouched node banned")
	}
}

func TestNoBanBeforeMinRequests(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.8, MinRequests: 10}, nil)
	defer d.Close()
	for i := 0; i < 5; i++ {
		d.RecordFailure(1)
	}
	if !d.Available(1) {
		t.Fatal("banned before MinRequests observations")
	}
}

func TestSuccessUnbans(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.9, MinRequests: 2}, nil)
	defer d.Close()
	d.RecordFailure(1)
	d.RecordFailure(1)
	if d.Available(1) {
		t.Fatal("not banned")
	}
	d.RecordSuccess(1)
	if !d.Available(1) {
		t.Fatal("success did not unban")
	}
}

func TestWindowReset(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.8, MinRequests: 4, Window: time.Second, Now: clock}, nil)
	defer d.Close()
	d.RecordFailure(1)
	d.RecordFailure(1)
	d.RecordFailure(1)
	now = now.Add(2 * time.Second) // window expires
	d.RecordFailure(1)             // only 1 observation in the new window
	if !d.Available(1) {
		t.Fatal("stale window failures caused ban")
	}
}

// Regression: a node banned just before the window expires used to have its
// counters zeroed by roll() while staying banned with a stale bannedAt — and
// a later below-threshold window would overwrite bannedAt as if the outage
// had just begun. The window roll must not touch ban bookkeeping.
func TestWindowRollPreservesBanBookkeeping(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.8, MinRequests: 4, Window: time.Second, Now: clock}, nil)
	defer d.Close()

	for i := 0; i < 4; i++ {
		d.RecordFailure(1) // 0/4 < 0.8: banned now
	}
	bannedAt, ok := d.BannedSince(1)
	if !ok || !bannedAt.Equal(now) {
		t.Fatalf("BannedSince = (%v, %v), want (%v, true)", bannedAt, ok, now)
	}

	now = now.Add(2 * time.Second) // window expires while banned
	d.RecordFailure(1)             // would roll+zero the window pre-fix
	if d.Available(1) {
		t.Fatal("window roll unbanned the node")
	}
	if got, ok := d.BannedSince(1); !ok || !got.Equal(bannedAt) {
		t.Fatalf("bannedAt changed across window roll: got (%v, %v), want (%v, true)", got, ok, bannedAt)
	}

	// More failures in the "new" window must not restamp the ban time.
	now = now.Add(3 * time.Second)
	d.RecordFailure(1)
	d.RecordFailure(1)
	if got, _ := d.BannedSince(1); !got.Equal(bannedAt) {
		t.Fatalf("bannedAt restamped by post-roll failures: got %v, want %v", got, bannedAt)
	}

	// Recovery clears the bookkeeping and starts a fresh window, so the
	// pre-outage failure history cannot instantly re-ban the node.
	d.RecordSuccess(1)
	if !d.Available(1) {
		t.Fatal("success did not unban")
	}
	if _, ok := d.BannedSince(1); ok {
		t.Fatal("BannedSince still set after recovery")
	}
	d.RecordFailure(1) // 1 failure in a fresh window: nowhere near MinRequests
	if !d.Available(1) {
		t.Fatal("stale pre-outage history re-banned a recovered node")
	}
}

func TestAsyncProbeRecovers(t *testing.T) {
	var ok atomic.Bool
	prober := ProberFunc(func(node int) error {
		if ok.Load() {
			return nil
		}
		return errors.New("down")
	})
	d := NewSuccessRatio(SuccessRatioConfig{
		Threshold: 0.9, MinRequests: 2, ProbeInterval: 5 * time.Millisecond,
	}, prober)
	defer d.Close()
	d.RecordFailure(7)
	d.RecordFailure(7)
	if d.Available(7) {
		t.Fatal("not banned")
	}
	time.Sleep(30 * time.Millisecond)
	if d.Available(7) {
		t.Fatal("recovered while probe failing")
	}
	ok.Store(true)
	deadline := time.Now().Add(time.Second)
	for !d.Available(7) {
		if time.Now().After(deadline) {
			t.Fatal("probe success did not unban node")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBannedList(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.9, MinRequests: 1}, nil)
	defer d.Close()
	d.RecordFailure(3)
	banned := d.Banned()
	if len(banned) != 1 || banned[0] != 3 {
		t.Fatalf("Banned() = %v, want [3]", banned)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := NewSuccessRatio(SuccessRatioConfig{Threshold: 0.5, MinRequests: 100}, nil)
	defer d.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if i%2 == 0 {
					d.RecordSuccess(g % 3)
				} else {
					d.RecordFailure(g % 3)
				}
				d.Available(g % 3)
			}
		}(g)
	}
	wg.Wait()
}
