// Package failure implements Voldemort's failure detectors (§II.B): routing
// consults an up-to-date availability status per storage node so clients
// avoid hammering overloaded or dead servers. The primary implementation is
// the bannage/success-ratio detector the paper describes: a node is marked
// down when its ratio of successful operations falls below a threshold, and
// is considered online again only when an asynchronous recovery probe can
// contact it.
package failure

import (
	"sync"
	"time"
)

// Detector tracks per-node availability.
type Detector interface {
	// Available reports whether node is believed up.
	Available(node int) bool
	// RecordSuccess notes a successful operation against node.
	RecordSuccess(node int)
	// RecordFailure notes a failed operation against node.
	RecordFailure(node int)
}

// Prober checks liveness of a node out-of-band; used by the async recovery
// loop to bring banned nodes back.
type Prober interface {
	Ping(node int) error
}

// ProberFunc adapts a function to the Prober interface.
type ProberFunc func(node int) error

// Ping calls f(node).
func (f ProberFunc) Ping(node int) error { return f(node) }

// AlwaysUp is a Detector that never bans anything; the default for tests and
// single-node deployments.
type AlwaysUp struct{}

// Available always reports true.
func (AlwaysUp) Available(int) bool { return true }

// RecordSuccess is a no-op.
func (AlwaysUp) RecordSuccess(int) {}

// RecordFailure is a no-op.
func (AlwaysUp) RecordFailure(int) {}

type nodeStats struct {
	success, total int
	windowStart    time.Time
	banned         bool
	bannedAt       time.Time
}

// SuccessRatioConfig tunes the success-ratio detector.
type SuccessRatioConfig struct {
	// Threshold is the minimum success ratio; below it the node is banned.
	Threshold float64
	// MinRequests is how many operations must be observed in a window before
	// the ratio is acted on (avoids banning on a single blip).
	MinRequests int
	// Window resets the counters periodically so old history ages out.
	Window time.Duration
	// ProbeInterval is how often the async thread re-probes banned nodes.
	ProbeInterval time.Duration
	// Now is the clock; defaults to time.Now (injectable for tests).
	Now func() time.Time
}

func (c *SuccessRatioConfig) withDefaults() {
	if c.Threshold == 0 {
		c.Threshold = 0.8
	}
	if c.MinRequests == 0 {
		c.MinRequests = 10
	}
	if c.Window == 0 {
		c.Window = 10 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// SuccessRatio is the bannage detector: below-threshold success ratio bans a
// node; only a successful async probe (or explicit MarkUp) unbans it.
type SuccessRatio struct {
	cfg SuccessRatioConfig

	mu    sync.Mutex
	nodes map[int]*nodeStats

	prober Prober
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewSuccessRatio builds the detector. If prober is non-nil, a background
// goroutine probes banned nodes every ProbeInterval and unbans them on a
// successful ping; call Close to stop it.
func NewSuccessRatio(cfg SuccessRatioConfig, prober Prober) *SuccessRatio {
	cfg.withDefaults()
	d := &SuccessRatio{
		cfg:    cfg,
		nodes:  make(map[int]*nodeStats),
		prober: prober,
		stop:   make(chan struct{}),
	}
	if prober != nil {
		d.wg.Add(1)
		go d.recoveryLoop()
	}
	return d
}

// Close stops the async recovery loop.
func (d *SuccessRatio) Close() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	d.wg.Wait()
}

func (d *SuccessRatio) stats(node int) *nodeStats {
	s, ok := d.nodes[node]
	if !ok {
		s = &nodeStats{windowStart: d.cfg.Now()}
		d.nodes[node] = s
	}
	return s
}

// Available reports whether node is not banned.
func (d *SuccessRatio) Available(node int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.stats(node).banned
}

// RecordSuccess counts a success; a success also immediately unbans the node
// (we evidently reached it).
func (d *SuccessRatio) RecordSuccess(node int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats(node)
	if s.banned {
		// Recovery: clear the ban and start a fresh window so the pre-outage
		// failure history cannot immediately re-ban a healthy node.
		s.banned = false
		s.bannedAt = time.Time{}
		s.success, s.total = 0, 0
		s.windowStart = d.cfg.Now()
		mRecoveries.Inc()
		mBannedNodes.Dec()
	}
	d.roll(s)
	s.total++
	s.success++
}

// RecordFailure counts a failure and bans the node if the windowed success
// ratio dropped below threshold.
func (d *SuccessRatio) RecordFailure(node int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats(node)
	d.roll(s)
	s.total++
	if s.total >= d.cfg.MinRequests {
		ratio := float64(s.success) / float64(s.total)
		if ratio < d.cfg.Threshold && !s.banned {
			s.banned = true
			s.bannedAt = d.cfg.Now()
			mBans.Inc()
			mBannedNodes.Inc()
		}
	}
}

func (d *SuccessRatio) roll(s *nodeStats) {
	if d.cfg.Now().Sub(s.windowStart) <= d.cfg.Window {
		return
	}
	// Banned nodes keep their window: ageing out the counters would leave
	// the node banned-with-no-evidence (and a stale bannedAt), and worse, a
	// subsequent re-ban would overwrite bannedAt as if the outage had just
	// begun. The ban bookkeeping is cleared only by the paths that actually
	// prove recovery — a successful operation, a probe, or MarkUp.
	if s.banned {
		return
	}
	s.windowStart = d.cfg.Now()
	s.success, s.total = 0, 0
}

// MarkUp forcibly unbans a node (admin override / successful probe).
func (d *SuccessRatio) MarkUp(node int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats(node)
	if s.banned {
		mRecoveries.Inc()
		mBannedNodes.Dec()
	}
	s.banned = false
	s.bannedAt = time.Time{}
	s.success, s.total = 0, 0
	s.windowStart = d.cfg.Now()
}

// BannedSince reports when node was banned; ok is false when the node is not
// currently banned.
func (d *SuccessRatio) BannedSince(node int) (time.Time, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, exists := d.nodes[node]
	if !exists || !s.banned {
		return time.Time{}, false
	}
	return s.bannedAt, true
}

// Banned returns the ids of currently banned nodes (diagnostics).
func (d *SuccessRatio) Banned() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for id, s := range d.nodes {
		if s.banned {
			out = append(out, id)
		}
	}
	return out
}

func (d *SuccessRatio) recoveryLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			for _, id := range d.Banned() {
				if err := d.prober.Ping(id); err == nil {
					d.MarkUp(id)
				}
			}
		}
	}
}
