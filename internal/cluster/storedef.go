package cluster

import (
	"encoding/json"
	"fmt"
)

// EngineType identifies a storage-engine implementation behind the pluggable
// Store interface of Figure II.1.
type EngineType string

// Supported engine types.
const (
	EngineMemory   EngineType = "memory"   // in-heap, for tests and caches
	EngineBitcask  EngineType = "bitcask"  // durable log-structured (BDB substitute)
	EngineReadOnly EngineType = "readonly" // static index/data files built offline
)

// RoutingTier says whether the client or the server walks the ring.
type RoutingTier string

// Routing tiers.
const (
	RouteClient RoutingTier = "client"
	RouteServer RoutingTier = "server"
)

// StoreDef is the per-store ("database table") configuration described in
// §II.B: replication factor, required reads/writes, engine and serialization
// choices, and optional zone-routing requirements.
type StoreDef struct {
	Name            string      `json:"name"`
	Engine          EngineType  `json:"engine"`
	Routing         RoutingTier `json:"routing"`
	Replication     int         `json:"replication"`     // N
	RequiredReads   int         `json:"requiredReads"`   // R
	RequiredWrites  int         `json:"requiredWrites"`  // W
	PreferredReads  int         `json:"preferredReads"`  // defaults to N
	PreferredWrites int         `json:"preferredWrites"` // defaults to N
	ZoneCountReads  int         `json:"zoneCountReads"`  // zones that must answer a read
	ZoneCountWrites int         `json:"zoneCountWrites"` // zones that must ack a write
	KeySerializer   string      `json:"keySerializer"`   // e.g. "string", "bytes", "json"
	ValueSerializer string      `json:"valueSerializer"` // e.g. "string", "bytes", "json"
	RetentionDays   int         `json:"retentionDays"`   // 0 = keep forever
	HintedHandoff   bool        `json:"hintedHandoff"`   // enable write hints (§II.B repair)
	ReadRepair      bool        `json:"readRepair"`      // enable read repair (§II.B repair)
}

// Validate checks the quorum arithmetic.
func (d *StoreDef) Validate(numNodes int) error {
	if d.Name == "" {
		return fmt.Errorf("storedef: empty name")
	}
	if d.Replication < 1 {
		return fmt.Errorf("storedef %q: replication %d < 1", d.Name, d.Replication)
	}
	if d.Replication > numNodes {
		return fmt.Errorf("storedef %q: replication %d exceeds cluster size %d", d.Name, d.Replication, numNodes)
	}
	if d.RequiredReads < 1 || d.RequiredReads > d.Replication {
		return fmt.Errorf("storedef %q: requiredReads %d outside [1,%d]", d.Name, d.RequiredReads, d.Replication)
	}
	if d.RequiredWrites < 1 || d.RequiredWrites > d.Replication {
		return fmt.Errorf("storedef %q: requiredWrites %d outside [1,%d]", d.Name, d.RequiredWrites, d.Replication)
	}
	return nil
}

// WithDefaults fills PreferredReads/Writes and engine defaults, returning the
// receiver for chaining.
func (d *StoreDef) WithDefaults() *StoreDef {
	if d.PreferredReads == 0 {
		d.PreferredReads = d.Replication
	}
	if d.PreferredWrites == 0 {
		d.PreferredWrites = d.Replication
	}
	if d.Engine == "" {
		d.Engine = EngineMemory
	}
	if d.Routing == "" {
		d.Routing = RouteClient
	}
	if d.KeySerializer == "" {
		d.KeySerializer = "bytes"
	}
	if d.ValueSerializer == "" {
		d.ValueSerializer = "bytes"
	}
	return d
}

// String summarizes the quorum configuration.
func (d *StoreDef) String() string {
	return fmt.Sprintf("%s[N=%d R=%d W=%d %s]", d.Name, d.Replication, d.RequiredReads, d.RequiredWrites, d.Engine)
}

// ParseStoreDefs decodes a JSON array of store definitions.
func ParseStoreDefs(data []byte) ([]*StoreDef, error) {
	var defs []*StoreDef
	if err := json.Unmarshal(data, &defs); err != nil {
		return nil, fmt.Errorf("storedef: %w", err)
	}
	for _, d := range defs {
		d.WithDefaults()
	}
	return defs, nil
}
