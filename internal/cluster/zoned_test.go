package cluster

import "testing"

func TestUniformZonedLayout(t *testing.T) {
	c := UniformZoned("z", 6, 12, 3, 7000)
	if len(c.Zones) != 3 {
		t.Fatalf("%d zones", len(c.Zones))
	}
	// nodes spread round-robin over zones
	perZone := map[int]int{}
	for _, n := range c.Nodes {
		perZone[n.ZoneID]++
	}
	for z, n := range perZone {
		if n != 2 {
			t.Fatalf("zone %d has %d nodes", z, n)
		}
	}
	// proximity lists enumerate every other zone exactly once
	for _, z := range c.Zones {
		if len(z.ProximityList) != 2 {
			t.Fatalf("zone %d proximity = %v", z.ID, z.ProximityList)
		}
		seen := map[int]bool{z.ID: true}
		for _, other := range z.ProximityList {
			if seen[other] {
				t.Fatalf("zone %d proximity repeats %d", z.ID, other)
			}
			seen[other] = true
		}
		if len(seen) != 3 {
			t.Fatalf("zone %d proximity incomplete: %v", z.ID, z.ProximityList)
		}
	}
	// all partitions owned
	for p := 0; p < 12; p++ {
		if _, err := c.OwnerOf(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestZoneByID(t *testing.T) {
	c := UniformZoned("z", 4, 8, 2, 7000)
	if c.ZoneByID(1) == nil {
		t.Fatal("zone 1 missing")
	}
	if c.ZoneByID(9) != nil {
		t.Fatal("phantom zone")
	}
}
