// Package cluster holds the topology metadata a Voldemort deployment stores
// on every node (§II.A of the paper): the full node→partition map, zone
// definitions with proximity lists, and per-store configuration (replication
// factor N, required reads R, required writes W).
//
// Keeping the complete topology on every node is the design choice that
// reduces lookups from Chord's O(log N) to O(1).
package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Zone is a group of co-located nodes (typically a datacenter). ProximityList
// orders the other zones by network distance, nearest first.
type Zone struct {
	ID            int   `json:"id"`
	ProximityList []int `json:"proximityList"`
}

// Node is one Voldemort server: a unique id, an address, the zone it lives
// in, and the set of logical partitions it owns.
type Node struct {
	ID         int    `json:"id"`
	Host       string `json:"host"`
	Port       int    `json:"port"`
	ZoneID     int    `json:"zoneId"`
	Partitions []int  `json:"partitions"`
}

// Addr returns the host:port dial address for the node.
func (n *Node) Addr() string { return fmt.Sprintf("%s:%d", n.Host, n.Port) }

// Cluster is the full topology: every node and zone, plus the total number of
// logical partitions the hash ring is split into.
type Cluster struct {
	Name          string  `json:"name"`
	NumPartitions int     `json:"numPartitions"`
	Nodes         []*Node `json:"nodes"`
	Zones         []*Zone `json:"zones"`

	partitionOwner map[int]int // partition id -> node id
}

// New assembles and validates a cluster. Every partition in [0,numPartitions)
// must be owned by exactly one node.
func New(name string, numPartitions int, nodes []*Node, zones []*Zone) (*Cluster, error) {
	c := &Cluster{Name: name, NumPartitions: numPartitions, Nodes: nodes, Zones: zones}
	if err := c.reindex(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Cluster) reindex() error {
	if c.NumPartitions <= 0 {
		return fmt.Errorf("cluster %q: numPartitions must be positive, got %d", c.Name, c.NumPartitions)
	}
	c.partitionOwner = make(map[int]int, c.NumPartitions)
	seenNode := make(map[int]bool)
	for _, n := range c.Nodes {
		if seenNode[n.ID] {
			return fmt.Errorf("cluster %q: duplicate node id %d", c.Name, n.ID)
		}
		seenNode[n.ID] = true
		for _, p := range n.Partitions {
			if p < 0 || p >= c.NumPartitions {
				return fmt.Errorf("cluster %q: node %d owns out-of-range partition %d", c.Name, n.ID, p)
			}
			if owner, dup := c.partitionOwner[p]; dup {
				return fmt.Errorf("cluster %q: partition %d owned by both node %d and node %d", c.Name, p, owner, n.ID)
			}
			c.partitionOwner[p] = n.ID
		}
	}
	if len(c.partitionOwner) != c.NumPartitions {
		return fmt.Errorf("cluster %q: %d of %d partitions unowned", c.Name,
			c.NumPartitions-len(c.partitionOwner), c.NumPartitions)
	}
	return nil
}

// NodeByID returns the node with the given id, or nil.
func (c *Cluster) NodeByID(id int) *Node {
	for _, n := range c.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// ZoneByID returns the zone with the given id, or nil.
func (c *Cluster) ZoneByID(id int) *Zone {
	for _, z := range c.Zones {
		if z.ID == id {
			return z
		}
	}
	return nil
}

// OwnerOf returns the node owning partition p.
func (c *Cluster) OwnerOf(p int) (*Node, error) {
	id, ok := c.partitionOwner[p]
	if !ok {
		return nil, fmt.Errorf("cluster %q: no owner for partition %d", c.Name, p)
	}
	return c.NodeByID(id), nil
}

// SetOwner reassigns partition p to node id (used during rebalancing) and
// updates both the owner index and the per-node partition lists.
func (c *Cluster) SetOwner(p, nodeID int) error {
	if p < 0 || p >= c.NumPartitions {
		return fmt.Errorf("cluster %q: partition %d out of range", c.Name, p)
	}
	newOwner := c.NodeByID(nodeID)
	if newOwner == nil {
		return fmt.Errorf("cluster %q: unknown node %d", c.Name, nodeID)
	}
	if old, ok := c.partitionOwner[p]; ok {
		if old == nodeID {
			return nil
		}
		oldNode := c.NodeByID(old)
		kept := oldNode.Partitions[:0]
		for _, q := range oldNode.Partitions {
			if q != p {
				kept = append(kept, q)
			}
		}
		oldNode.Partitions = kept
	}
	newOwner.Partitions = append(newOwner.Partitions, p)
	sort.Ints(newOwner.Partitions)
	c.partitionOwner[p] = nodeID
	return nil
}

// Clone deep-copies the cluster so a rebalance plan can be applied to a copy.
func (c *Cluster) Clone() *Cluster {
	nodes := make([]*Node, len(c.Nodes))
	for i, n := range c.Nodes {
		parts := make([]int, len(n.Partitions))
		copy(parts, n.Partitions)
		nodes[i] = &Node{ID: n.ID, Host: n.Host, Port: n.Port, ZoneID: n.ZoneID, Partitions: parts}
	}
	zones := make([]*Zone, len(c.Zones))
	for i, z := range c.Zones {
		prox := make([]int, len(z.ProximityList))
		copy(prox, z.ProximityList)
		zones[i] = &Zone{ID: z.ID, ProximityList: prox}
	}
	out, err := New(c.Name, c.NumPartitions, nodes, zones)
	if err != nil {
		panic("cluster: clone of valid cluster invalid: " + err.Error())
	}
	return out
}

// MarshalJSON serializes the cluster config.
func (c *Cluster) MarshalJSON() ([]byte, error) {
	type alias Cluster
	return json.Marshal((*alias)(c))
}

// UnmarshalJSON parses and validates a cluster config.
func (c *Cluster) UnmarshalJSON(data []byte) error {
	type alias Cluster
	if err := json.Unmarshal(data, (*alias)(c)); err != nil {
		return err
	}
	return c.reindex()
}

// Uniform builds a cluster of n nodes in one zone with numPartitions spread
// round-robin — the standard test and quickstart topology.
func Uniform(name string, n, numPartitions, basePort int) *Cluster {
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{ID: i, Host: "127.0.0.1", Port: basePort + i, ZoneID: 0}
	}
	for p := 0; p < numPartitions; p++ {
		nodes[p%n].Partitions = append(nodes[p%n].Partitions, p)
	}
	c, err := New(name, numPartitions, nodes, []*Zone{{ID: 0}})
	if err != nil {
		panic("cluster: uniform construction failed: " + err.Error())
	}
	return c
}

// UniformZoned builds a cluster with nodes spread evenly across zones;
// node i goes to zone i%zones, partitions assigned round-robin so replicas
// can land in distinct zones.
func UniformZoned(name string, n, numPartitions, zones, basePort int) *Cluster {
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{ID: i, Host: "127.0.0.1", Port: basePort + i, ZoneID: i % zones}
	}
	for p := 0; p < numPartitions; p++ {
		nodes[p%n].Partitions = append(nodes[p%n].Partitions, p)
	}
	zs := make([]*Zone, zones)
	for z := range zs {
		var prox []int
		for o := 1; o < zones; o++ {
			prox = append(prox, (z+o)%zones)
		}
		zs[z] = &Zone{ID: z, ProximityList: prox}
	}
	c, err := New(name, numPartitions, nodes, zs)
	if err != nil {
		panic("cluster: zoned construction failed: " + err.Error())
	}
	return c
}
