package cluster

import (
	"encoding/json"
	"testing"
)

func TestUniformCoversAllPartitions(t *testing.T) {
	c := Uniform("t", 3, 12, 7000)
	for p := 0; p < 12; p++ {
		n, err := c.OwnerOf(p)
		if err != nil {
			t.Fatalf("partition %d unowned: %v", p, err)
		}
		if n == nil {
			t.Fatalf("partition %d owner nil", p)
		}
	}
}

func TestNewRejectsUnownedPartition(t *testing.T) {
	nodes := []*Node{{ID: 0, Partitions: []int{0, 1}}}
	if _, err := New("bad", 3, nodes, nil); err == nil {
		t.Fatal("unowned partition accepted")
	}
}

func TestNewRejectsDuplicateOwnership(t *testing.T) {
	nodes := []*Node{
		{ID: 0, Partitions: []int{0, 1}},
		{ID: 1, Partitions: []int{1}},
	}
	if _, err := New("bad", 2, nodes, nil); err == nil {
		t.Fatal("duplicate partition ownership accepted")
	}
}

func TestNewRejectsDuplicateNodeID(t *testing.T) {
	nodes := []*Node{
		{ID: 0, Partitions: []int{0}},
		{ID: 0, Partitions: []int{1}},
	}
	if _, err := New("bad", 2, nodes, nil); err == nil {
		t.Fatal("duplicate node id accepted")
	}
}

func TestNewRejectsOutOfRangePartition(t *testing.T) {
	nodes := []*Node{{ID: 0, Partitions: []int{0, 5}}}
	if _, err := New("bad", 2, nodes, nil); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestSetOwnerMovesPartition(t *testing.T) {
	c := Uniform("t", 2, 4, 7000)
	owner, _ := c.OwnerOf(0)
	target := 1 - owner.ID
	if err := c.SetOwner(0, target); err != nil {
		t.Fatal(err)
	}
	newOwner, _ := c.OwnerOf(0)
	if newOwner.ID != target {
		t.Fatalf("owner of 0 is %d, want %d", newOwner.ID, target)
	}
	// old node's list must not contain 0 anymore
	for _, p := range c.NodeByID(owner.ID).Partitions {
		if p == 0 {
			t.Fatal("old owner still lists partition 0")
		}
	}
	// new node's list must contain 0
	found := false
	for _, p := range c.NodeByID(target).Partitions {
		if p == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("new owner does not list partition 0")
	}
}

func TestSetOwnerErrors(t *testing.T) {
	c := Uniform("t", 2, 4, 7000)
	if err := c.SetOwner(99, 0); err == nil {
		t.Fatal("out-of-range partition move accepted")
	}
	if err := c.SetOwner(0, 42); err == nil {
		t.Fatal("unknown target node accepted")
	}
}

func TestCloneIsolation(t *testing.T) {
	c := Uniform("t", 2, 4, 7000)
	clone := c.Clone()
	owner, _ := c.OwnerOf(0)
	if err := clone.SetOwner(0, 1-owner.ID); err != nil {
		t.Fatal(err)
	}
	origOwner, _ := c.OwnerOf(0)
	if origOwner.ID != owner.ID {
		t.Fatal("mutation of clone leaked into original")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := UniformZoned("t", 4, 8, 2, 7000)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var got Cluster
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.NumPartitions != 8 || len(got.Nodes) != 4 || len(got.Zones) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := got.OwnerOf(7); err != nil {
		t.Fatalf("owner index not rebuilt after unmarshal: %v", err)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	bad := []byte(`{"name":"x","numPartitions":4,"nodes":[{"id":0,"partitions":[0,1]}]}`)
	var c Cluster
	if err := json.Unmarshal(bad, &c); err == nil {
		t.Fatal("invalid cluster config accepted")
	}
}

func TestStoreDefValidate(t *testing.T) {
	d := (&StoreDef{Name: "s", Replication: 2, RequiredReads: 1, RequiredWrites: 2}).WithDefaults()
	if err := d.Validate(3); err != nil {
		t.Fatal(err)
	}
	cases := []*StoreDef{
		{Name: "", Replication: 1, RequiredReads: 1, RequiredWrites: 1},
		{Name: "s", Replication: 0, RequiredReads: 1, RequiredWrites: 1},
		{Name: "s", Replication: 4, RequiredReads: 1, RequiredWrites: 1}, // > nodes
		{Name: "s", Replication: 2, RequiredReads: 3, RequiredWrites: 1},
		{Name: "s", Replication: 2, RequiredReads: 1, RequiredWrites: 0},
	}
	for i, bad := range cases {
		if err := bad.Validate(3); err == nil {
			t.Errorf("case %d: invalid storedef accepted: %v", i, bad)
		}
	}
}

func TestStoreDefDefaults(t *testing.T) {
	d := (&StoreDef{Name: "s", Replication: 3, RequiredReads: 2, RequiredWrites: 2}).WithDefaults()
	if d.PreferredReads != 3 || d.PreferredWrites != 3 {
		t.Fatalf("preferred defaults wrong: %+v", d)
	}
	if d.Engine != EngineMemory || d.Routing != RouteClient {
		t.Fatalf("engine/routing defaults wrong: %+v", d)
	}
}

func TestParseStoreDefs(t *testing.T) {
	data := []byte(`[{"name":"a","replication":2,"requiredReads":1,"requiredWrites":1},
		{"name":"b","engine":"bitcask","replication":1,"requiredReads":1,"requiredWrites":1}]`)
	defs, err := ParseStoreDefs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 2 || defs[1].Engine != EngineBitcask {
		t.Fatalf("parse mismatch: %+v", defs)
	}
	if _, err := ParseStoreDefs([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
