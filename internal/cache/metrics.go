package cache

import "datainfra/internal/metrics"

// Exported instruments are vectors labelled by cache name so every
// cache in a process shares one registration. Two cache instances
// created with the same Name aggregate into the same series; per
// instance numbers come from Stats().
var (
	mHits          = metrics.RegisterCounterVec("cache_hit_total", "reads served from the hot-set cache", "cache")
	mMisses        = metrics.RegisterCounterVec("cache_miss_total", "reads that fell through to the backend", "cache")
	mEvictions     = metrics.RegisterCounterVec("cache_eviction_total", "entries evicted by the CLOCK sweep to fit the byte budget", "cache")
	mInvalidations = metrics.RegisterCounterVec("cache_invalidation_total", "write-through invalidations (including whole-cache flushes)", "cache")
	mCollapsed     = metrics.RegisterCounterVec("cache_load_collapsed_total", "misses that piggybacked on another caller's in-flight backend fetch", "cache")
	mBytes         = metrics.RegisterGaugeVec("cache_bytes", "resident bytes charged against the cache budget", "cache")
	mEntries       = metrics.RegisterGaugeVec("cache_resident_rows", "entries currently resident in the cache", "cache")
)

type cacheMetrics struct {
	hits          *metrics.Counter
	misses        *metrics.Counter
	evictions     *metrics.Counter
	invalidations *metrics.Counter
	collapsed     *metrics.Counter
	bytes         *metrics.Gauge
	entries       *metrics.Gauge
}

func metricsFor(name string) cacheMetrics {
	return cacheMetrics{
		hits:          mHits.With(name),
		misses:        mMisses.With(name),
		evictions:     mEvictions.With(name),
		invalidations: mInvalidations.With(name),
		collapsed:     mCollapsed.With(name),
		bytes:         mBytes.With(name),
		entries:       mEntries.With(name),
	}
}
