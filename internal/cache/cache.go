package cache

import (
	"sync"
	"sync/atomic"
)

// Config parameterises a Cache.
type Config[V any] struct {
	// Name labels this cache's metrics (cache_hit_total{cache="Name"}).
	Name string
	// MaxBytes is the total byte budget across all shards. Must be > 0.
	MaxBytes int64
	// Shards is rounded up to a power of two; 0 means 16.
	Shards int
	// SizeOf charges an entry against the byte budget. It must account
	// for the key and the value payload. Entries larger than a shard's
	// budget are served to the caller but never cached.
	SizeOf func(key string, v V) int64
}

// Stats is a point-in-time snapshot of one Cache instance's counters.
// (The exported cache_* metrics aggregate all caches sharing a Name;
// Stats is always per-instance.)
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Collapsed     int64 // loads that piggybacked on another caller's fetch
	Bytes         int64
	Entries       int64
}

type entry[V any] struct {
	key  string
	val  V
	size int64
	idx  int         // position in the shard's CLOCK ring
	ref  atomic.Bool // CLOCK reference bit, set on every hit
}

// resv is an outstanding load reservation for one key. It exists only
// while at least one loader is in flight (refs > 0); Invalidate bumps
// gen so the fenced Commit drops the stale value.
type resv struct {
	key  string
	gen  uint64
	refs int
}

// call is a singleflight slot: the leader loads, waiters block on wg.
// gen records the key's generation when the load began; a caller whose
// read starts after a later invalidation must not join this call (the
// leader's backend read predates the write, so sharing its result
// would be a stale read, not a concurrent one).
type call[V any] struct {
	wg   sync.WaitGroup
	gen  uint64
	val  V
	err  error
	dups int64
}

type shard[V any] struct {
	mu    sync.RWMutex
	m     map[string]*entry[V]
	ring  []*entry[V]
	hand  int
	bytes int64
	resv  map[string]*resv
	calls map[string]*call[V]
}

// Cache is a sharded, byte-budgeted hot-set cache. All methods are
// safe for concurrent use. Cached values are shared between callers
// and must not be mutated.
type Cache[V any] struct {
	name   string
	shards []shard[V]
	mask   uint64
	budget int64 // per shard
	sizeOf func(string, V) int64

	entryPool sync.Pool
	resvPool  sync.Pool
	callPool  sync.Pool

	hits, misses, evictions, invalidations, collapsed atomic.Int64
	bytes, entries                                    atomic.Int64

	met cacheMetrics
}

// New builds a Cache. MaxBytes must be positive and SizeOf non-nil.
func New[V any](cfg Config[V]) *Cache[V] {
	if cfg.MaxBytes <= 0 {
		panic("cache: MaxBytes must be > 0")
	}
	if cfg.SizeOf == nil {
		panic("cache: SizeOf must be set")
	}
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	budget := cfg.MaxBytes / int64(shards)
	if budget < 1 {
		budget = 1
	}
	c := &Cache[V]{
		name:   cfg.Name,
		shards: make([]shard[V], shards),
		mask:   uint64(shards - 1),
		budget: budget,
		sizeOf: cfg.SizeOf,
		met:    metricsFor(cfg.Name),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry[V])
		c.shards[i].resv = make(map[string]*resv)
		c.shards[i].calls = make(map[string]*call[V])
	}
	c.entryPool.New = func() any { return new(entry[V]) }
	c.resvPool.New = func() any { return new(resv) }
	c.callPool.New = func() any { return new(call[V]) }
	return c
}

// fnv-1a, inlined so key lookup never allocates.
func hashKey(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (c *Cache[V]) shard(key []byte) *shard[V] {
	return &c.shards[hashKey(key)&c.mask]
}

// Get returns the cached value for key, if present.
func (c *Cache[V]) Get(key []byte) (V, bool) {
	s := c.shard(key)
	s.mu.RLock()
	e := s.m[string(key)]
	if e != nil {
		e.ref.Store(true)
		v := e.val
		s.mu.RUnlock()
		c.hits.Add(1)
		c.met.hits.Inc()
		return v, true
	}
	s.mu.RUnlock()
	c.misses.Add(1)
	c.met.misses.Inc()
	var zero V
	return zero, false
}

// Token fences one backend load against concurrent invalidation. It
// must be finished with exactly one Commit or Release call.
type Token[V any] struct {
	c   *Cache[V]
	s   *shard[V]
	r   *resv
	gen uint64
}

// Reserve records the key's current generation before the caller reads
// the backend. If Invalidate runs between Reserve and Commit, the
// commit is dropped and the stale value never enters the cache.
func (c *Cache[V]) Reserve(key []byte) Token[V] {
	s := c.shard(key)
	s.mu.Lock()
	r := s.reserveLocked(c, key)
	gen := r.gen
	s.mu.Unlock()
	return Token[V]{c: c, s: s, r: r, gen: gen}
}

// reserveLocked finds or creates the reservation for key and takes a ref.
func (s *shard[V]) reserveLocked(c *Cache[V], key []byte) *resv {
	r := s.resv[string(key)]
	if r == nil {
		ks := string(key)
		r = c.resvPool.Get().(*resv)
		r.key = ks
		r.gen = 0
		r.refs = 0
		s.resv[ks] = r
	}
	r.refs++
	return r
}

func (s *shard[V]) releaseLocked(c *Cache[V], r *resv) {
	r.refs--
	if r.refs == 0 {
		delete(s.resv, r.key)
		r.key = ""
		c.resvPool.Put(r)
	}
}

// Commit installs v for the reserved key unless the key was
// invalidated since Reserve. It reports whether the value was cached.
func (t Token[V]) Commit(v V) bool {
	t.s.mu.Lock()
	ok := t.r.gen == t.gen
	if ok {
		ok = t.c.installLocked(t.s, t.r.key, v)
	}
	t.s.releaseLocked(t.c, t.r)
	t.s.mu.Unlock()
	return ok
}

// Release abandons the reservation without installing anything (for
// example when the backend load failed).
func (t Token[V]) Release() {
	t.s.mu.Lock()
	t.s.releaseLocked(t.c, t.r)
	t.s.mu.Unlock()
}

// installLocked inserts or replaces the entry for key, evicting with
// CLOCK until the shard fits its budget. Oversized values are skipped;
// the return reports whether the value is now resident.
func (c *Cache[V]) installLocked(s *shard[V], key string, v V) bool {
	size := c.sizeOf(key, v)
	if old := s.m[key]; old != nil {
		c.removeLocked(s, old)
	}
	if size > c.budget {
		return false
	}
	// CLOCK sweep: second-chance entries with the ref bit set; evict
	// the first entry found clear. Terminates because every pass either
	// evicts (shrinks the ring) or clears a bit.
	for s.bytes+size > c.budget && len(s.ring) > 0 {
		e := s.ring[s.hand]
		if e.ref.Load() {
			e.ref.Store(false)
			s.hand++
			if s.hand >= len(s.ring) {
				s.hand = 0
			}
			continue
		}
		c.removeLocked(s, e)
		c.evictions.Add(1)
		c.met.evictions.Inc()
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
	}
	e := c.entryPool.Get().(*entry[V])
	e.key = key
	e.val = v
	e.size = size
	e.idx = len(s.ring)
	e.ref.Store(false)
	s.ring = append(s.ring, e)
	s.m[key] = e
	s.bytes += size
	c.bytes.Add(size)
	c.entries.Add(1)
	c.met.bytes.Add(size)
	c.met.entries.Inc()
	return true
}

// removeLocked unlinks e from the shard (swap-delete in the ring) and
// returns it to the pool.
func (c *Cache[V]) removeLocked(s *shard[V], e *entry[V]) {
	last := len(s.ring) - 1
	moved := s.ring[last]
	s.ring[e.idx] = moved
	moved.idx = e.idx
	s.ring[last] = nil
	s.ring = s.ring[:last]
	delete(s.m, e.key)
	s.bytes -= e.size
	c.bytes.Add(-e.size)
	c.entries.Add(-1)
	c.met.bytes.Add(-e.size)
	c.met.entries.Dec()
	var zero V
	e.key = ""
	e.val = zero
	c.entryPool.Put(e)
}

// Invalidate removes any cached entry for key and fences every
// in-flight load of it so a racing Commit cannot resurrect stale data.
// Call it AFTER the backend mutation is applied.
func (c *Cache[V]) Invalidate(key []byte) {
	s := c.shard(key)
	s.mu.Lock()
	if r := s.resv[string(key)]; r != nil {
		r.gen++
	}
	if e := s.m[string(key)]; e != nil {
		c.removeLocked(s, e)
	}
	s.mu.Unlock()
	c.invalidations.Add(1)
	c.met.invalidations.Inc()
}

// InvalidateAll drops every cached entry and fences every in-flight
// load. Used when the backend changes wholesale (partition delete,
// read-only store swap).
func (c *Cache[V]) InvalidateAll() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, r := range s.resv {
			r.gen++
		}
		for len(s.ring) > 0 {
			c.removeLocked(s, s.ring[len(s.ring)-1])
		}
		s.hand = 0
		s.mu.Unlock()
	}
	c.invalidations.Add(1)
	c.met.invalidations.Inc()
}

// GetOrLoad returns the cached value for key, or collapses concurrent
// misses into one call of load. The loader runs outside all cache
// locks; its result is installed only if the key was not invalidated
// while it ran. Errors are propagated to every waiter and not cached.
//
// load receives the key back so callers can pass a pre-built function
// value and keep the hit path allocation-free.
func (c *Cache[V]) GetOrLoad(key []byte, load func(key []byte) (V, error)) (V, error) {
	s := c.shard(key)
	s.mu.RLock()
	if e := s.m[string(key)]; e != nil {
		e.ref.Store(true)
		v := e.val
		s.mu.RUnlock()
		c.hits.Add(1)
		c.met.hits.Inc()
		return v, nil
	}
	s.mu.RUnlock()

	s.mu.Lock()
	// Re-check: the entry may have been installed while upgrading.
	if e := s.m[string(key)]; e != nil {
		e.ref.Store(true)
		v := e.val
		s.mu.Unlock()
		c.hits.Add(1)
		c.met.hits.Inc()
		return v, nil
	}
	if cl := s.calls[string(key)]; cl != nil {
		// Join only if the key has not been invalidated since the
		// leader's load began — the leader's reservation is alive for
		// the whole load, so its current gen is authoritative. If the
		// gens differ, fall through and start a fresh load (the stale
		// call keeps running for its own waiters but is replaced in
		// the slot, and its gen-fenced commit cannot install).
		if r := s.resv[string(key)]; r != nil && r.gen == cl.gen {
			cl.dups++
			s.mu.Unlock()
			cl.wg.Wait()
			c.collapsed.Add(1)
			c.met.collapsed.Inc()
			return cl.val, cl.err
		}
	}
	// Leader: publish the call slot and reserve before loading.
	ks := string(key)
	cl := c.callPool.Get().(*call[V])
	cl.dups = 0
	cl.wg.Add(1)
	r := s.reserveLocked(c, key)
	gen := r.gen
	cl.gen = gen
	s.calls[ks] = cl
	s.mu.Unlock()
	c.misses.Add(1)
	c.met.misses.Inc()

	v, err := load(key)

	s.mu.Lock()
	if s.calls[ks] == cl {
		delete(s.calls, ks)
	}
	if err == nil && r.gen == gen {
		c.installLocked(s, ks, v)
	}
	s.releaseLocked(c, r)
	dups := cl.dups
	s.mu.Unlock()

	cl.val, cl.err = v, err
	cl.wg.Done()
	if dups == 0 {
		// No waiter ever observed this slot (checked under the shard
		// lock after unpublishing), so it is safe to recycle.
		var zero V
		cl.val, cl.err = zero, nil
		c.callPool.Put(cl)
	}
	return v, err
}

// Stats snapshots this instance's counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Collapsed:     c.collapsed.Load(),
		Bytes:         c.bytes.Load(),
		Entries:       c.entries.Load(),
	}
}

// Name returns the metrics label this cache was built with.
func (c *Cache[V]) Name() string { return c.name }
