package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func newTest(t *testing.T, maxBytes int64, shards int) *Cache[string] {
	t.Helper()
	return New(Config[string]{
		Name:     "test",
		MaxBytes: maxBytes,
		Shards:   shards,
		SizeOf:   func(key string, v string) int64 { return int64(len(key) + len(v)) },
	})
}

func TestGetLoadInvalidate(t *testing.T) {
	c := newTest(t, 1<<20, 4)
	key := []byte("alpha")

	if _, ok := c.Get(key); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	loads := 0
	load := func(k []byte) (string, error) { loads++; return "v1", nil }
	if v, err := c.GetOrLoad(key, load); err != nil || v != "v1" {
		t.Fatalf("GetOrLoad = %q, %v", v, err)
	}
	if v, err := c.GetOrLoad(key, load); err != nil || v != "v1" {
		t.Fatalf("GetOrLoad (cached) = %q, %v", v, err)
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	if v, ok := c.Get(key); !ok || v != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}

	c.Invalidate(key)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit after invalidate")
	}
	st := c.Stats()
	if st.Hits < 2 || st.Misses < 2 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	c := newTest(t, 1<<20, 1)
	key := []byte("k")
	boom := errors.New("backend down")
	calls := 0
	if _, err := c.GetOrLoad(key, func([]byte) (string, error) { calls++; return "", boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("error result was cached")
	}
	// The next caller must retry the backend, not observe a cached error.
	if v, err := c.GetOrLoad(key, func([]byte) (string, error) { calls++; return "ok", nil }); err != nil || v != "ok" {
		t.Fatalf("retry = %q, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("loader calls = %d, want 2", calls)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	// One shard, budget 100 bytes, entries of 10 bytes each (5-byte key
	// + 5-byte value): at most 10 resident.
	c := newTest(t, 100, 1)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("k%04d", i))
		tok := c.Reserve(key)
		tok.Commit("12345")
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
	if st.Entries != 10 {
		t.Fatalf("entries = %d, want 10", st.Entries)
	}
	if st.Evictions != 40 {
		t.Fatalf("evictions = %d, want 40", st.Evictions)
	}
}

func TestClockPrefersHotEntries(t *testing.T) {
	c := newTest(t, 100, 1)
	hot := []byte("hot00")
	c.Reserve(hot).Commit("12345")
	for i := 0; i < 9; i++ {
		c.Reserve([]byte(fmt.Sprintf("c%04d", i))).Commit("12345")
	}
	// Touch the hot key so its ref bit survives the next sweep.
	if _, ok := c.Get(hot); !ok {
		t.Fatal("hot key missing before sweep")
	}
	// Insert enough cold keys to force eviction of half the shard.
	for i := 0; i < 5; i++ {
		c.Reserve([]byte(fmt.Sprintf("d%04d", i))).Commit("12345")
	}
	if _, ok := c.Get(hot); !ok {
		t.Fatal("CLOCK evicted the referenced hot entry")
	}
}

func TestOversizedEntrySkipped(t *testing.T) {
	c := newTest(t, 64, 1)
	big := make([]byte, 200)
	tok := c.Reserve([]byte("big"))
	if tok.Commit(string(big)) {
		t.Fatal("oversized entry reported as cached")
	}
	if _, ok := c.Get([]byte("big")); ok {
		t.Fatal("oversized entry resident")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplaceExistingEntry(t *testing.T) {
	c := newTest(t, 1<<20, 1)
	key := []byte("k")
	c.Reserve(key).Commit("one")
	c.Reserve(key).Commit("three")
	if v, ok := c.Get(key); !ok || v != "three" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != int64(len("k")+len("three")) {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInvalidationFencesInFlightLoad is the deterministic stale-read
// repro: a load reads the backend, an invalidation lands before the
// commit, and the stale value must not enter the cache.
func TestInvalidationFencesInFlightLoad(t *testing.T) {
	c := newTest(t, 1<<20, 4)
	key := []byte("user:42")

	tok := c.Reserve(key)
	// Loader has read "old" from the backend; a writer now updates the
	// backend and invalidates.
	c.Invalidate(key)
	if tok.Commit("old") {
		t.Fatal("fenced commit reported success")
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("stale value resurrected after invalidation")
	}

	// A reservation taken after the invalidation commits normally.
	tok = c.Reserve(key)
	if !tok.Commit("new") {
		t.Fatal("clean commit failed")
	}
	if v, _ := c.Get(key); v != "new" {
		t.Fatalf("Get = %q, want new", v)
	}
}

// TestInvalidationFencesGetOrLoad drives the same race through the
// singleflight path with a gated loader.
func TestInvalidationFencesGetOrLoad(t *testing.T) {
	c := newTest(t, 1<<20, 4)
	key := []byte("user:7")
	started := make(chan struct{})
	unblock := make(chan struct{})
	done := make(chan struct{})

	go func() {
		defer close(done)
		v, err := c.GetOrLoad(key, func([]byte) (string, error) {
			close(started)
			<-unblock
			return "stale", nil
		})
		// The caller still gets the value it read — a read concurrent
		// with a write may see either side.
		if err != nil || v != "stale" {
			t.Errorf("GetOrLoad = %q, %v", v, err)
		}
	}()

	<-started
	c.Invalidate(key) // writer updated the backend mid-load
	close(unblock)
	<-done

	if _, ok := c.Get(key); ok {
		t.Fatal("stale load was cached past the invalidation")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := newTest(t, 1<<20, 4)
	for i := 0; i < 100; i++ {
		c.Reserve([]byte(fmt.Sprintf("k%d", i))).Commit("v")
	}
	tok := c.Reserve([]byte("inflight"))
	c.InvalidateAll()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after flush = %+v", st)
	}
	if tok.Commit("stale") {
		t.Fatal("in-flight load committed past InvalidateAll")
	}
}

func TestSingleflightCollapses(t *testing.T) {
	c := newTest(t, 1<<20, 1)
	key := []byte("k")
	var loads atomic.Int64
	started := make(chan struct{})
	unblock := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.GetOrLoad(key, func([]byte) (string, error) {
			loads.Add(1)
			close(started)
			<-unblock
			return "v", nil
		})
	}()
	<-started
	// While the leader is parked in its loader, every concurrent caller
	// must either join the in-flight call or (after the leader commits)
	// hit the cache — the loader can never run a second time.
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrLoad(key, func([]byte) (string, error) {
				loads.Add(1)
				return "v", nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(unblock)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "v" {
			t.Fatalf("waiter %d got %q", i, v)
		}
	}
}

func TestSingleflightErrorFansOut(t *testing.T) {
	c := newTest(t, 1<<20, 1)
	key := []byte("k")
	boom := errors.New("injected fault")
	started := make(chan struct{})
	unblock := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 5)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = c.GetOrLoad(key, func([]byte) (string, error) {
			close(started)
			<-unblock
			return "", boom
		})
	}()
	<-started
	for i := 1; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.GetOrLoad(key, func([]byte) (string, error) {
				<-unblock // any late leader also fails
				return "", boom
			})
		}(i)
	}
	close(unblock)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d err = %v, want %v", i, err, boom)
		}
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("failed load left a cache entry")
	}
}

// TestSeededInvalidationRace is the randomized stale-read hunt: writers
// bump a backing store version and invalidate; readers assert they
// never observe a version older than one published before their read
// began. Run under -race via RACE_PKGS.
func TestSeededInvalidationRace(t *testing.T) {
	seed := int64(1)
	if s := testing.Verbose(); s {
		t.Logf("seed=%d", seed)
	}
	const (
		keys    = 64
		writers = 4
		readers = 8
		opsEach = 3000
	)
	c := New(Config[uint64]{
		Name:     "test",
		MaxBytes: 448, // ~8 entries per shard: force constant eviction alongside the race
		Shards:   4,
		SizeOf:   func(key string, v uint64) int64 { return int64(len(key)) + 8 },
	})
	var backing [keys]atomic.Uint64   // the "engine"
	var published [keys]atomic.Uint64 // version guaranteed visible (post-invalidate)

	keyName := func(i int) []byte { return []byte(fmt.Sprintf("row-%02d", i)) }

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < opsEach; i++ {
				k := rng.Intn(keys)
				v := backing[k].Add(1)
				c.Invalidate(keyName(k))
				// Only after the invalidation returns is v guaranteed
				// to be observed by future reads.
				for {
					cur := published[k].Load()
					if cur >= v || published[k].CompareAndSwap(cur, v) {
						break
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 1000 + int64(r)))
			for i := 0; i < opsEach; i++ {
				k := rng.Intn(keys)
				floor := published[k].Load()
				v, err := c.GetOrLoad(keyName(k), func([]byte) (uint64, error) {
					return backing[k].Load(), nil
				})
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if v < floor {
					t.Errorf("stale read on key %d: got version %d, published floor was %d", k, v, floor)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("race test never evicted — budget too large to stress CLOCK")
	}
}

// TestConcurrentChurn hammers every operation at once; the assertions
// are the race detector plus budget accounting staying consistent.
func TestConcurrentChurn(t *testing.T) {
	c := newTest(t, 2048, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				key := []byte(fmt.Sprintf("k%03d", rng.Intn(200)))
				switch rng.Intn(5) {
				case 0:
					c.Get(key)
				case 1:
					c.GetOrLoad(key, func(k []byte) (string, error) { return string(k), nil })
				case 2:
					c.Reserve(key).Commit("abcdefgh")
				case 3:
					c.Reserve(key).Release()
				case 4:
					c.Invalidate(key)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 || st.Entries < 0 {
		t.Fatalf("accounting went negative: %+v", st)
	}
	// Recount resident bytes against the shards directly.
	var bytes, entries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.m {
			bytes += e.size
			entries++
		}
		if len(s.m) != len(s.ring) {
			t.Errorf("shard %d: map %d vs ring %d", i, len(s.m), len(s.ring))
		}
		if len(s.resv) != 0 {
			t.Errorf("shard %d: %d leaked reservations", i, len(s.resv))
		}
		if len(s.calls) != 0 {
			t.Errorf("shard %d: %d leaked calls", i, len(s.calls))
		}
		s.mu.Unlock()
	}
	if bytes != st.Bytes || entries != st.Entries {
		t.Fatalf("accounting drift: counted %d bytes/%d entries, stats %+v", bytes, entries, st)
	}
}
