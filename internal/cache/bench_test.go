package cache

import (
	"fmt"
	"sync/atomic"
	"testing"

	"datainfra/internal/workload"
)

func newBench(b *testing.B, maxBytes int64) *Cache[[]byte] {
	b.Helper()
	return New(Config[[]byte]{
		Name:     "bench",
		MaxBytes: maxBytes,
		Shards:   16,
		SizeOf:   func(key string, v []byte) int64 { return int64(len(key) + len(v)) },
	})
}

// BenchmarkGetHit measures the steady-state hit path: one RLock, one
// map probe, one atomic ref-bit store. Must be zero-alloc.
func BenchmarkGetHit(b *testing.B) {
	c := newBench(b, 1<<26)
	val := make([]byte, 128)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("member:%07d", i))
		c.Reserve(keys[i]).Commit(val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(keys[i&1023]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkGetOrLoadHit is the hit path through the singleflight
// entrypoint — what EngineStore actually calls.
func BenchmarkGetOrLoadHit(b *testing.B) {
	c := newBench(b, 1<<26)
	val := make([]byte, 128)
	keys := make([][]byte, 1024)
	load := func(k []byte) ([]byte, error) { return val, nil }
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("member:%07d", i))
		c.Reserve(keys[i]).Commit(val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetOrLoad(keys[i&1023], load); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetOrLoadMissEvict measures the full miss path with CLOCK
// eviction on every install (budget much smaller than keyspace).
func BenchmarkGetOrLoadMissEvict(b *testing.B) {
	c := newBench(b, 64<<10)
	val := make([]byte, 128)
	load := func(k []byte) ([]byte, error) { return val, nil }
	keys := make([][]byte, 8192)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("member:%07d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride through a keyspace much larger than the budget so
		// nearly every access misses and evicts.
		if _, err := c.GetOrLoad(keys[(i*37)&8191], load); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZipfianParallel is the shape the serving tier sees: many
// goroutines, Zipfian(0.99) key popularity, byte budget covering only
// the hot set.
func BenchmarkZipfianParallel(b *testing.B) {
	const keyspace = 1 << 20
	c := newBench(b, 16<<20) // holds roughly the top 10% of keys
	val := make([]byte, 128)
	load := func(k []byte) ([]byte, error) { return val, nil }
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		z := workload.NewFastZipfian(keyspace, 0.99, seed.Add(1))
		key := make([]byte, 0, 32)
		for pb.Next() {
			key = fmt.Appendf(key[:0], "member:%07d", z.Next())
			if _, err := c.GetOrLoad(key, load); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := c.Stats()
	if total := st.Hits + st.Misses; total > 0 {
		b.ReportMetric(float64(st.Hits)/float64(total)*100, "hit%")
	}
}

// BenchmarkInvalidate measures the write-through invalidation cost a
// Put pays.
func BenchmarkInvalidate(b *testing.B) {
	c := newBench(b, 1<<26)
	val := make([]byte, 128)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("member:%07d", i))
		c.Reserve(keys[i]).Commit(val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Invalidate(keys[i&1023])
	}
}
