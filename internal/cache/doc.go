// Package cache provides a sharded, byte-budgeted, concurrency-safe
// hot-set cache with CLOCK eviction and a singleflight layer that
// collapses concurrent misses for the same key into one backend fetch.
//
// The cache is generic over the value type: Voldemort caches version
// sets ([]*versioned.Versioned) in front of EngineStore, Espresso
// caches document rows (*Row) in front of the partition store. Values
// must be treated as immutable once installed — every consumer of a
// cached value sees the same pointer.
//
// # Invalidation versus in-flight loads
//
// The fundamental race in any look-aside cache: a reader misses, reads
// the backend, and installs the result — but between the backend read
// and the install, a writer mutated the backend and invalidated the
// key. A naive cache re-installs the stale pre-write value, which then
// serves stale reads forever (until evicted). This cache makes that
// impossible with generation-fenced reservations:
//
//   - A loader calls Reserve(key) BEFORE reading the backend. The
//     reservation records the key's current generation.
//   - Invalidate(key) deletes any cached entry AND bumps the
//     generation of every outstanding reservation for the key.
//   - Commit(v) installs the loaded value only if the generation is
//     unchanged; otherwise the value is returned to the caller (a read
//     concurrent with the write — linearizable either way) but never
//     cached.
//
// Reservations are refcounted and exist only while loads are in
// flight, so invalidation fencing costs no tombstone memory.
//
// GetOrLoad wraps the Reserve/load/Commit dance with singleflight:
// concurrent misses for one key block on a single leader's backend
// fetch and share its result (errors are shared too, and never
// cached, so a failed load is retried by the next caller).
package cache
