package rpc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startEchoServer serves h on a fresh listener, sniffing the magic like the
// production servers do, and returns its address.
func startServer(t *testing.T, h Handler, opts ServeOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				nc2, muxed, err := Sniff(nc)
				if err != nil || !muxed {
					return
				}
				_ = ServeConn(nc2, h, opts)
			}(nc)
		}
	}()
	return ln.Addr().String()
}

func echoHandler(payload []byte) Response {
	out := make([]byte, len(payload))
	copy(out, payload)
	return Response{Payload: out}
}

// TestMuxCorrelation hammers one shared connection from many goroutines;
// every response must match its own request byte-for-byte, proving the
// correlation-ID demux never crosses responses.
func TestMuxCorrelation(t *testing.T) {
	addr := startServer(t, echoHandler, ServeOptions{})
	conn, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const goroutines, calls = 32, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				req := []byte(fmt.Sprintf("g%d-call%d", g, i))
				resp, err := conn.Call(req, 5*time.Second)
				if err != nil {
					errs <- fmt.Errorf("g%d call %d: %v", g, i, err)
					return
				}
				if !bytes.Equal(resp, req) {
					errs <- fmt.Errorf("g%d call %d: response %q crossed correlation ids", g, i, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMuxTimeoutAbandonsSlotWithoutPoisoningConn issues a slow request with
// a short timeout while fast requests keep flowing: the slow call times out,
// the connection survives, and the late response is silently dropped.
func TestMuxTimeoutAbandonsSlotWithoutPoisoningConn(t *testing.T) {
	release := make(chan struct{})
	h := func(payload []byte) Response {
		if string(payload) == "slow" {
			<-release
		}
		return echoHandler(payload)
	}
	addr := startServer(t, h, ServeOptions{})
	conn, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Keep traffic flowing so the stall detector doesn't fire.
	stopTraffic := make(chan struct{})
	var trafficWg sync.WaitGroup
	trafficWg.Add(1)
	go func() {
		defer trafficWg.Done()
		for {
			select {
			case <-stopTraffic:
				return
			default:
				_, _ = conn.Call([]byte("fast"), time.Second)
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	_, err = conn.Call([]byte("slow"), 50*time.Millisecond)
	if err != ErrCallTimeout {
		t.Fatalf("slow call error = %v, want ErrCallTimeout", err)
	}
	if conn.Dead() {
		t.Fatal("timeout poisoned the connection")
	}
	close(release) // late response arrives, must be dropped harmlessly
	resp, err := conn.Call([]byte("after"), time.Second)
	if err != nil || string(resp) != "after" {
		t.Fatalf("post-timeout call = (%q, %v)", resp, err)
	}
	close(stopTraffic)
	trafficWg.Wait()
	if conn.Dead() {
		t.Fatal("connection died after dropped late response")
	}
}

// TestMuxStallKillsConn proves a connection that stops responding entirely
// is torn down on timeout (the stall detector), so calls do not spin on a
// black-holed transport forever.
func TestMuxStallKillsConn(t *testing.T) {
	// A listener that accepts and reads but never responds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := nc.Read(buf); err != nil {
						nc.Close()
						return
					}
				}
			}(nc)
		}
	}()
	conn, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Call([]byte("x"), 50*time.Millisecond); err == nil {
		t.Fatal("call on black-holed conn succeeded")
	}
	if !conn.Dead() {
		t.Fatal("stalled connection not torn down")
	}
}

// TestMuxConnKillFailsAllInflight kills the server-side connection while
// requests are in flight: every caller must resolve with an error, none hang.
func TestMuxConnKillFailsAllInflight(t *testing.T) {
	var conns struct {
		sync.Mutex
		list []net.Conn
	}
	block := make(chan struct{})
	h := func(payload []byte) Response {
		<-block
		return echoHandler(payload)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			conns.Lock()
			conns.list = append(conns.list, nc)
			conns.Unlock()
			go func(nc net.Conn) {
				nc2, muxed, err := Sniff(nc)
				if err != nil || !muxed {
					nc.Close()
					return
				}
				_ = ServeConn(nc2, h, ServeOptions{})
				nc.Close()
			}(nc)
		}
	}()

	conn, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 20
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := conn.Call([]byte(fmt.Sprintf("req%d", i)), 10*time.Second)
			done <- err
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the calls get in flight
	conns.Lock()
	for _, nc := range conns.list {
		nc.Close()
	}
	conns.Unlock()
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("in-flight call succeeded after conn kill")
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("in-flight call %d never resolved after conn kill", i)
		}
	}
	close(block)
}

// TestMuxWorkerPoolBounded proves at most Workers handlers run concurrently
// on one connection.
func TestMuxWorkerPoolBounded(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int64
	release := make(chan struct{})
	h := func(payload []byte) Response {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-release
		cur.Add(-1)
		return echoHandler(payload)
	}
	addr := startServer(t, h, ServeOptions{Workers: workers})
	conn, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = conn.Call([]byte("x"), 10*time.Second)
		}()
	}
	// Wait until the pool saturates, then release everything.
	deadline := time.Now().Add(2 * time.Second)
	for peak.Load() < workers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // window for any over-spawn to show
	close(release)
	wg.Wait()
	if p := peak.Load(); p != workers {
		t.Fatalf("peak concurrent handlers = %d, want exactly %d", p, workers)
	}
}

// TestMuxStreamedResponse exercises the zero-copy-style streamed body path.
func TestMuxStreamedResponse(t *testing.T) {
	body := strings.Repeat("stream-body-", 1000)
	h := func(payload []byte) Response {
		return Response{
			Payload:   []byte{0x7}, // status-style prefix
			Stream:    strings.NewReader(body),
			StreamLen: int64(len(body)),
		}
	}
	addr := startServer(t, h, ServeOptions{})
	conn, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.Call([]byte("gimme"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1+len(body) || resp[0] != 0x7 || string(resp[1:]) != body {
		t.Fatalf("streamed response corrupt: %d bytes, first=%x", len(resp), resp[0])
	}
}

// TestClientRedialsAfterConnDeath proves the redialing Client transparently
// replaces a dead connection on the next call.
func TestClientRedialsAfterConnDeath(t *testing.T) {
	addr := startServer(t, echoHandler, ServeOptions{})
	cl := NewClient(addr, time.Second)
	defer cl.Close()

	resp, err := cl.Call([]byte("one"), time.Second)
	if err != nil || string(resp) != "one" {
		t.Fatalf("first call = (%q, %v)", resp, err)
	}
	cl.mu.Lock()
	cl.conn.fail(net.ErrClosed) // simulate transport death
	cl.mu.Unlock()
	resp, err = cl.Call([]byte("two"), time.Second)
	if err != nil || string(resp) != "two" {
		t.Fatalf("post-death call = (%q, %v)", resp, err)
	}
}

// TestSniffLegacyPassthrough proves non-mux bytes are replayed intact, so
// legacy clients coexist on the same port.
func TestSniffLegacyPassthrough(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	legacy := []byte{0x00, 0x00, 0x00, 0x03, 'a', 'b', 'c'}
	go func() { _, _ = c1.Write(legacy) }()
	nc, muxed, err := Sniff(c2)
	if err != nil {
		t.Fatal(err)
	}
	if muxed {
		t.Fatal("legacy frame misdetected as mux")
	}
	got := make([]byte, len(legacy))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, legacy) {
		t.Fatalf("replayed bytes = %x, want %x", got, legacy)
	}
	var n uint32 = binary.BigEndian.Uint32(got[:4])
	if n != 3 {
		t.Fatalf("length prefix corrupted: %d", n)
	}
}
