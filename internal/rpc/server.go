package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Response is one handler result. Payload is written first; when Stream is
// non-nil, StreamLen further bytes are copied from it directly to the
// socket after the buffered header is flushed — the zero-copy path for
// Kafka fetches (io.Copy from an *os.File section uses sendfile on Linux).
// The handler must guarantee Stream yields exactly StreamLen bytes; a short
// stream corrupts the framing and kills the connection.
type Response struct {
	Payload   []byte
	Stream    io.Reader
	StreamLen int64
}

// Handler processes one request payload into a response. Handlers run
// concurrently on the per-connection worker pool and must be safe for
// concurrent use.
type Handler func(payload []byte) Response

// ServeOptions tunes a per-connection server mux.
type ServeOptions struct {
	// Workers bounds concurrent handler invocations per connection;
	// default 16. Long-blocking handlers (long-poll fetches) each occupy
	// one worker.
	Workers int
	// Queue bounds requests read but not yet picked up by a worker;
	// default 64. A full queue stops the read loop, pushing backpressure
	// into TCP flow control.
	Queue int
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.Queue <= 0 {
		o.Queue = 64
	}
	return o
}

type job struct {
	id      uint64
	payload []byte
}

type outResp struct {
	id   uint64
	resp Response
}

// ServeConn runs the server half of the mux over nc until the peer
// disconnects: the calling goroutine reads frames continuously, a bounded
// worker pool dispatches them to h, and one writer goroutine serializes the
// possibly out-of-order responses. The Magic preamble must already have
// been consumed (see Sniff). ServeConn does not close nc.
func ServeConn(nc net.Conn, h Handler, opts ServeOptions) error {
	opts = opts.withDefaults()
	reqCh := make(chan job, opts.Queue)
	respCh := make(chan outResp, opts.Queue)

	// Serialized writer: frames are buffered and flushed when the response
	// queue momentarily drains, so bursts of small responses coalesce into
	// few syscalls. On a write error the conn is closed (which also stops
	// the read loop) and the remaining responses are drained and dropped.
	var writeErr error
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(nc, 32<<10)
		var hdr [headerLen]byte
		for out := range respCh {
			if writeErr != nil {
				continue // draining after failure
			}
			n := len(out.resp.Payload)
			total := int64(n) + out.resp.StreamLen
			if total > MaxFrame {
				writeErr = ErrFrameTooLarge
				nc.Close()
				continue
			}
			binary.BigEndian.PutUint32(hdr[0:4], uint32(8+total))
			binary.BigEndian.PutUint64(hdr[4:12], out.id)
			if _, err := bw.Write(hdr[:]); err != nil {
				writeErr = err
				nc.Close()
				continue
			}
			if _, err := bw.Write(out.resp.Payload); err != nil {
				writeErr = err
				nc.Close()
				continue
			}
			if out.resp.Stream != nil && out.resp.StreamLen > 0 {
				// Flush the buffered header so the stream can go straight
				// to the socket (sendfile-style for file sections).
				if err := bw.Flush(); err != nil {
					writeErr = err
					nc.Close()
					continue
				}
				copied, err := io.Copy(nc, io.LimitReader(out.resp.Stream, out.resp.StreamLen))
				if err == nil && copied != out.resp.StreamLen {
					err = fmt.Errorf("rpc: streamed response short: %d of %d bytes", copied, out.resp.StreamLen)
				}
				if err != nil {
					writeErr = err
					nc.Close()
					continue
				}
			}
			if len(respCh) == 0 {
				if err := bw.Flush(); err != nil {
					writeErr = err
					nc.Close()
				}
			}
		}
		if writeErr == nil {
			writeErr = bw.Flush()
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range reqCh {
				mServerQueue.Dec()
				mServerInflight.Inc()
				resp := h(j.payload)
				mServerInflight.Dec()
				mServerRequests.Inc()
				respCh <- outResp{id: j.id, resp: resp}
			}
		}()
	}

	// Read loop: one frame per iteration, each with its own payload buffer
	// (handlers run concurrently, so per-connection buffer reuse would race).
	// Reads are buffered: a pipelined burst of small frames costs one read
	// syscall, not two per frame.
	br := bufio.NewReaderSize(nc, 64<<10)
	var readErr error
	var hdr [headerLen]byte
	for {
		id, n, err := readFrameHeader(br, &hdr)
		if err != nil {
			readErr = err
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			readErr = err
			break
		}
		mServerQueue.Inc()
		reqCh <- job{id: id, payload: payload}
	}
	close(reqCh)
	wg.Wait()
	close(respCh)
	<-writerDone

	if readErr == io.EOF {
		readErr = nil // clean disconnect
	}
	if writeErr != nil {
		return writeErr
	}
	return readErr
}
