package rpc

import (
	"time"

	"datainfra/internal/metrics"
)

// Process-wide instruments for the multiplexed transport, documented in
// OPERATIONS.md and checked by cmd/metriclint. Gauges aggregate across every
// mux connection in the process (clients and servers alike), so a scrape
// shows total pipelining pressure; the depth histogram uses raw integer
// bucket bounds (encoded as nanoseconds) because it counts requests, not
// time.
var (
	mInflight = metrics.RegisterGauge("rpc_inflight_requests",
		"client calls registered and awaiting a response across all mux connections")
	mPipelineDepth = metrics.RegisterHistogramBuckets("rpc_pipeline_depth_requests",
		"in-flight requests sharing the connection at each send (bucket bounds are request counts)",
		1, 2, 4, 8, 16, 32, 64, 128, 256)
	mSendQueue = metrics.RegisterGauge("rpc_client_send_queue_requests",
		"request frames queued for a client writer goroutine")
	mTimeouts = metrics.RegisterCounter("rpc_client_timeouts_total",
		"calls abandoned by the per-request timeout (slot freed, connection kept)")
	mDials = metrics.RegisterCounter("rpc_client_dials_total",
		"multiplexed connections dialed")
	mConnErrors = metrics.RegisterCounter("rpc_client_conn_errors_total",
		"multiplexed connections torn down after a transport failure or stall")
	mServerQueue = metrics.RegisterGauge("rpc_server_queue_requests",
		"requests read off mux connections and waiting for a worker")
	mServerInflight = metrics.RegisterGauge("rpc_server_inflight_requests",
		"handler invocations currently executing on mux worker pools")
	mServerRequests = metrics.RegisterCounter("rpc_server_requests_total",
		"requests served over multiplexed connections")
)

// observeDepth records the pipeline depth (pending request count) at a send.
func observeDepth(depth int) {
	mPipelineDepth.Observe(time.Duration(depth))
}
