// Package rpc is the shared pipelined request/response transport used by
// the Voldemort socket protocol and the Kafka broker protocol. Both systems
// are dominated by small RPCs (quorum reads/writes in §II, produce/fetch in
// §V), and real Kafka's wire protocol multiplexes many in-flight requests
// per connection via correlation IDs; this package brings the same shape to
// the reproduction.
//
// Wire format: a multiplexed connection opens with a 4-byte magic so servers
// can keep serving the legacy lock-step framing on the same port (legacy
// frames begin with a u32 length below the 64 MB cap, which can never equal
// the magic). After the magic, both directions carry frames of
//
//	u32 length | u64 correlation id | payload
//
// where length counts the correlation id plus the payload. Responses may
// arrive in any order; the correlation id routes each one back to its
// caller. The payload is opaque to this package — Voldemort and Kafka keep
// their existing request/response encodings inside it.
//
// Client side, a Conn runs one writer goroutine (coalescing queued frames
// into single writes) and one reader goroutine (demultiplexing responses to
// per-request channels), so many goroutines share one TCP connection with
// many requests in flight. A timed-out request abandons its slot without
// poisoning the connection: the late response is dropped by the reader when
// its id is no longer pending. Server side, ServeConn reads frames
// continuously, dispatches to a bounded worker pool, and writes possibly
// out-of-order responses through a single serialized writer that also
// supports streamed (sendfile-style) bodies.
package rpc

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
)

// Magic is the 4-byte preamble a multiplexed client sends after dialing.
// Legacy frames start with a u32 length capped at 64 MB (high byte < 0x04),
// so these bytes can never begin a legacy frame.
var Magic = [4]byte{'R', 'P', 'X', '1'}

// MaxFrame caps a frame's payload, mirroring the legacy protocols' sanity cap.
const MaxFrame = 64 << 20

// frame header: u32 length | u64 correlation id.
const headerLen = 12

var (
	// ErrFrameTooLarge is returned when a peer announces an oversized frame.
	ErrFrameTooLarge = errors.New("rpc: frame exceeds max size")
	// ErrClosed is returned for calls on an explicitly closed client.
	ErrClosed = errors.New("rpc: client closed")
)

// appendFrame appends one wire frame for (id, payload) to dst.
func appendFrame(dst []byte, id uint64, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(8+len(payload)))
	dst = binary.BigEndian.AppendUint64(dst, id)
	return append(dst, payload...)
}

// readFrameHeader reads one frame header, returning the correlation id and
// payload length.
func readFrameHeader(r io.Reader, hdr *[headerLen]byte) (id uint64, n int, err error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	if length < 8 || length-8 > MaxFrame {
		return 0, 0, ErrFrameTooLarge
	}
	return binary.BigEndian.Uint64(hdr[4:12]), int(length - 8), nil
}

// Sniff reports whether conn opens with the mux magic, consuming it if so.
// For legacy connections the peeked bytes are replayed, so the caller can
// hand the returned conn to the legacy frame loop unchanged. Connections
// that close before sending 4 bytes surface the read error.
func Sniff(conn net.Conn) (net.Conn, bool, error) {
	var b [4]byte
	if _, err := io.ReadFull(conn, b[:]); err != nil {
		return conn, false, err
	}
	if b == Magic {
		return conn, true, nil
	}
	return &prefixedConn{Conn: conn, pre: b[:]}, false, nil
}

// prefixedConn replays sniffed bytes before reading from the underlying conn.
type prefixedConn struct {
	net.Conn
	pre []byte
}

func (p *prefixedConn) Read(b []byte) (int, error) {
	if len(p.pre) > 0 {
		n := copy(b, p.pre)
		p.pre = p.pre[n:]
		return n, nil
	}
	return p.Conn.Read(b)
}

// timeoutError is the per-request timeout failure. It implements net.Error
// with Timeout() == true so resilience.IsTransient classifies it retryable,
// matching the legacy deadline-exceeded behaviour.
type timeoutError struct{}

func (timeoutError) Error() string   { return "rpc: call timed out" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrCallTimeout is returned by Call when the per-request timeout fires
// while responses keep flowing on the connection (the slot is abandoned,
// the connection stays usable).
var ErrCallTimeout net.Error = timeoutError{}

// stalledError marks a connection killed because nothing was received for a
// full request timeout — the transport is presumed dead, all in-flight
// requests fail, and the next call redials.
type stalledError struct{}

func (stalledError) Error() string   { return "rpc: connection stalled (no traffic for a full timeout)" }
func (stalledError) Timeout() bool   { return true }
func (stalledError) Temporary() bool { return true }

// ErrConnStalled is the error pending calls receive when a stall is detected.
var ErrConnStalled net.Error = stalledError{}
