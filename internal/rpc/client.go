package rpc

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// result is one demultiplexed response (or the connection's fatal error).
type result struct {
	payload []byte
	err     error
}

// outFrame is one request handed to the writer goroutine.
type outFrame struct {
	id      uint64
	payload []byte
}

// sendQueueDepth bounds the writer goroutine's input queue; a full queue
// backpressures callers onto the TCP connection's own flow control.
const sendQueueDepth = 128

// Conn is one multiplexed client connection: one writer goroutine coalescing
// queued request frames into single writes, one reader goroutine routing
// response frames to per-request channels by correlation id. Any number of
// goroutines may Call concurrently; each call occupies one pending slot
// until its response, timeout, or the connection's death.
type Conn struct {
	nc    net.Conn
	sendq chan outFrame

	mu      sync.Mutex
	pending map[uint64]chan result
	nextID  uint64
	err     error // set once the conn is dead

	dead     chan struct{}
	deadOnce sync.Once

	lastRecv atomic.Int64 // UnixNano of the last frame (or byte of progress) read
}

// NewConn starts the mux over nc. The caller must already have sent (client
// side) the Magic preamble; tests may skip it when the peer is a raw
// ServeConn.
func NewConn(nc net.Conn) *Conn {
	c := &Conn{
		nc:      nc,
		sendq:   make(chan outFrame, sendQueueDepth),
		pending: make(map[uint64]chan result),
		dead:    make(chan struct{}),
	}
	c.lastRecv.Store(time.Now().UnixNano())
	go c.writeLoop()
	go c.readLoop()
	return c
}

// Dial connects to addr, sends the mux preamble, and returns the running Conn.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		_ = nc.SetWriteDeadline(time.Now().Add(timeout))
	}
	if _, err := nc.Write(Magic[:]); err != nil {
		nc.Close()
		return nil, err
	}
	_ = nc.SetWriteDeadline(time.Time{})
	mDials.Inc()
	return NewConn(nc), nil
}

// fail kills the connection exactly once: every pending and future call
// resolves with err, and both loops unwind.
func (c *Conn) fail(err error) {
	c.deadOnce.Do(func() {
		c.mu.Lock()
		c.err = err
		pend := c.pending
		c.pending = nil
		c.mu.Unlock()
		close(c.dead)
		c.nc.Close()
		for _, ch := range pend {
			ch <- result{err: err}
		}
		if len(pend) > 0 {
			mInflight.Add(-int64(len(pend)))
		}
	})
}

// Dead reports whether the connection has failed.
func (c *Conn) Dead() bool {
	select {
	case <-c.dead:
		return true
	default:
		return false
	}
}

// Err returns the fatal error after Dead, nil before.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down, failing in-flight calls with ErrClosed.
func (c *Conn) Close() error {
	c.fail(ErrClosed)
	return nil
}

// writeLoop drains the send queue, coalescing every queued frame into one
// buffer per wakeup so a burst of concurrent callers costs one syscall.
func (c *Conn) writeLoop() {
	buf := make([]byte, 0, 4096)
	for {
		select {
		case <-c.dead:
			return
		case f := <-c.sendq:
			mSendQueue.Dec()
			buf = appendFrame(buf[:0], f.id, f.payload)
		coalesce:
			for len(buf) < 256<<10 {
				select {
				case f2 := <-c.sendq:
					mSendQueue.Dec()
					buf = appendFrame(buf, f2.id, f2.payload)
				default:
					break coalesce
				}
			}
			if _, err := c.nc.Write(buf); err != nil {
				c.fail(err)
				return
			}
		}
	}
}

// readLoop demultiplexes response frames to their pending channels. Frames
// whose id is no longer pending belong to timed-out calls and are dropped.
// Reads are buffered so a burst of pipelined responses costs one syscall.
func (c *Conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var hdr [headerLen]byte
	for {
		id, n, err := readFrameHeader(br, &hdr)
		if err != nil {
			c.fail(err)
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			c.fail(err)
			return
		}
		c.lastRecv.Store(time.Now().UnixNano())
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- result{payload: payload}
			mInflight.Dec()
		}
	}
}

// forget abandons a pending slot, reporting whether it was still registered.
func (c *Conn) forget(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == nil {
		return false
	}
	if _, ok := c.pending[id]; !ok {
		return false
	}
	delete(c.pending, id)
	return true
}

// Call sends one request payload and blocks for its correlated response. A
// timeout abandons the slot without poisoning the connection — unless the
// connection received nothing at all for the whole wait, in which case it is
// presumed stalled and torn down (the legacy per-connection deadline's job).
// timeout <= 0 waits until the response or the connection's death.
func (c *Conn) Call(payload []byte, timeout time.Duration) ([]byte, error) {
	ch := make(chan result, 1)
	c.mu.Lock()
	if c.pending == nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	depth := len(c.pending)
	c.mu.Unlock()
	mInflight.Inc()
	observeDepth(depth)

	mSendQueue.Inc()
	select {
	case c.sendq <- outFrame{id: id, payload: payload}:
	case <-c.dead:
		mSendQueue.Dec()
		if c.forget(id) {
			mInflight.Dec()
			return nil, c.Err()
		}
		r := <-ch
		return r.payload, r.err
	}

	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case r := <-ch:
		return r.payload, r.err
	case <-timeoutCh:
		if time.Since(time.Unix(0, c.lastRecv.Load())) >= timeout {
			// Nothing arrived on this connection for a full timeout: the
			// transport is presumed dead, not merely this request slow.
			c.fail(ErrConnStalled)
		}
		if c.forget(id) {
			mInflight.Dec()
			mTimeouts.Inc()
			return nil, ErrCallTimeout
		}
		// The response (or the conn's death) raced the timer; take it.
		r := <-ch
		return r.payload, r.err
	}
}

// Client is a redialing wrapper: it keeps one multiplexed Conn to addr,
// dialing lazily and replacing the connection after transport failures.
// Retry policy stays with the caller (the resilience layer), exactly as with
// the old per-call connection pool.
type Client struct {
	addr        string
	dialTimeout time.Duration

	mu     sync.Mutex
	conn   *Conn
	closed bool
}

// NewClient returns a client for addr; no connection is made until the
// first Call.
func NewClient(addr string, dialTimeout time.Duration) *Client {
	if dialTimeout == 0 {
		dialTimeout = 5 * time.Second
	}
	return &Client{addr: addr, dialTimeout: dialTimeout}
}

// acquire returns the live Conn, dialing a fresh one if needed.
func (cl *Client) acquire() (*Conn, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil, ErrClosed
	}
	if cl.conn != nil && !cl.conn.Dead() {
		return cl.conn, nil
	}
	if cl.conn != nil {
		mConnErrors.Inc()
	}
	conn, err := Dial(cl.addr, cl.dialTimeout)
	if err != nil {
		return nil, err
	}
	cl.conn = conn
	return conn, nil
}

// Call issues one request over the shared multiplexed connection.
func (cl *Client) Call(payload []byte, timeout time.Duration) ([]byte, error) {
	conn, err := cl.acquire()
	if err != nil {
		return nil, err
	}
	return conn.Call(payload, timeout)
}

// Close tears down the current connection and rejects future calls.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.closed = true
	if cl.conn != nil {
		cl.conn.Close()
		cl.conn = nil
	}
	return nil
}
