package kafka

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"datainfra/internal/rpc"
	"datainfra/internal/zk"
)

// Broker stores topic partitions as Logs and serves produce/fetch (§V.A).
// Topics are created on first use with the configured partition count. The
// broker registers itself in zk so consumers discover brokers and partition
// counts (§V.C task 1).
type Broker struct {
	id      int
	dataDir string
	cfg     BrokerConfig

	mu     sync.RWMutex
	topics map[string][]*Log
	closed bool

	// Replication hooks (see ReplicatedBroker): when set, produces route
	// through the ISR layer (append + high-watermark ack) and op 6 serves
	// follower replica fetches.
	produceHandler ProduceHandler
	replicaHandler ReplicaHandler

	zkSess *zk.Session
	ln     net.Listener
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
	stop   chan struct{}
}

// BrokerConfig tunes a broker.
type BrokerConfig struct {
	PartitionsPerTopic int           // default 4
	Log                LogConfig     // per-partition log tuning
	CleanerInterval    time.Duration // retention sweep; default 1m, 0 uses default
}

func (c *BrokerConfig) withDefaults() {
	if c.PartitionsPerTopic == 0 {
		c.PartitionsPerTopic = 4
	}
	if c.CleanerInterval == 0 {
		c.CleanerInterval = time.Minute
	}
}

// NewBroker opens a broker over dataDir, reloading any existing topic logs.
func NewBroker(id int, dataDir string, cfg BrokerConfig) (*Broker, error) {
	cfg.withDefaults()
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	b := &Broker{
		id:      id,
		dataDir: dataDir,
		cfg:     cfg,
		topics:  map[string][]*Log{},
		conns:   map[net.Conn]bool{},
		stop:    make(chan struct{}),
	}
	// Recover topics from disk: dataDir/<topic>/<partition>/
	ents, err := os.ReadDir(dataDir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		if _, err := b.getOrCreateTopic(ent.Name()); err != nil {
			return nil, err
		}
	}
	b.wg.Add(1)
	go b.housekeeping()
	return b, nil
}

// ID returns the broker id.
func (b *Broker) ID() int { return b.id }

// ProduceHandler intercepts produce requests (the ISR layer gates the ack on
// the high watermark instead of the bare append).
type ProduceHandler func(topic string, partition int, set MessageSet) (int64, error)

// ReplicaHandler serves follower replica fetches: raw log bytes from offset
// (uncapped by the high watermark) plus the leader's current high watermark,
// long-polling up to wait at the durable tail. follower identifies the
// fetching replica so the leader can track its position for ISR accounting;
// epoch is the leader epoch the follower fetches under, rejected on mismatch.
type ReplicaHandler func(topic string, partition int, offset int64, maxBytes int, wait time.Duration, follower string, epoch int) (hw int64, chunk []byte, err error)

// SetProduceHandler routes produces through fn; nil restores direct appends.
func (b *Broker) SetProduceHandler(fn ProduceHandler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.produceHandler = fn
}

// SetReplicaHandler enables op 6 (replica fetch) through fn.
func (b *Broker) SetReplicaHandler(fn ReplicaHandler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.replicaHandler = fn
}

// Register announces the broker and its topics in zk (consumers watch these
// paths to trigger rebalances).
func (b *Broker) Register(srv *zk.Server, addr string) error {
	sess := srv.NewSession()
	if err := sess.CreateAll("/brokers/ids", nil); err != nil {
		sess.Close()
		return err
	}
	if _, err := sess.Create(fmt.Sprintf("/brokers/ids/%d", b.id), []byte(addr), zk.FlagEphemeral); err != nil {
		sess.Close()
		return err
	}
	b.mu.Lock()
	b.zkSess = sess
	b.mu.Unlock()
	// Announce existing topics.
	b.mu.RLock()
	names := make([]string, 0, len(b.topics))
	for t := range b.topics {
		names = append(names, t)
	}
	b.mu.RUnlock()
	for _, t := range names {
		if err := b.announceTopic(t); err != nil {
			return err
		}
	}
	return nil
}

func (b *Broker) announceTopic(topic string) error {
	b.mu.RLock()
	sess := b.zkSess
	n := len(b.topics[topic])
	b.mu.RUnlock()
	if sess == nil {
		return nil
	}
	if err := sess.CreateAll("/brokers/topics/"+topic, nil); err != nil {
		return err
	}
	p := fmt.Sprintf("/brokers/topics/%s/%d", topic, b.id)
	if ok, _ := sess.Exists(p); ok {
		_, err := sess.Set(p, []byte(fmt.Sprintf("%d", n)), -1)
		return err
	}
	_, err := sess.Create(p, []byte(fmt.Sprintf("%d", n)), zk.FlagEphemeral)
	return err
}

func (b *Broker) getOrCreateTopic(topic string) ([]*Log, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("kafka: broker closed")
	}
	if logs, ok := b.topics[topic]; ok {
		return logs, nil
	}
	logs := make([]*Log, b.cfg.PartitionsPerTopic)
	for p := range logs {
		dir := filepath.Join(b.dataDir, topic, fmt.Sprintf("%d", p))
		l, err := OpenLog(dir, b.cfg.Log)
		if err != nil {
			return nil, err
		}
		logs[p] = l
	}
	b.topics[topic] = logs
	return logs, nil
}

func (b *Broker) log(topic string, partition int) (*Log, error) {
	logs, err := b.getOrCreateTopic(topic)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= len(logs) {
		return nil, fmt.Errorf("kafka: topic %q has no partition %d", topic, partition)
	}
	return logs[partition], nil
}

// Produce appends a message set to a partition and returns its base offset.
// New topics announce themselves in zk.
func (b *Broker) Produce(topic string, partition int, set MessageSet) (int64, error) {
	b.mu.RLock()
	_, known := b.topics[topic]
	b.mu.RUnlock()
	l, err := b.log(topic, partition)
	if err != nil {
		return 0, err
	}
	off, err := l.Append(set)
	if err != nil {
		return 0, err
	}
	mProduceRequests.Inc()
	mProduceBytes.Add(int64(set.Len()))
	if !known {
		_ = b.announceTopic(topic)
	}
	return off, nil
}

// Fetch returns up to maxBytes of raw log from (topic, partition) starting
// at offset. Empty means caught up.
func (b *Broker) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	l, err := b.log(topic, partition)
	if err != nil {
		return nil, err
	}
	chunk, err := l.Read(offset, maxBytes)
	if err == nil {
		mFetchRequests.Inc()
		mFetchBytes.Add(int64(len(chunk)))
	}
	return chunk, err
}

// FetchWait is Fetch with a long poll: when the partition is caught up at
// offset it blocks until new flushed data arrives, wait elapses, or the
// broker shuts down — an empty result then means "still caught up". Consumers
// use it (via BlockingFetcher) to sit at the log tail without sleep-polling.
func (b *Broker) FetchWait(topic string, partition int, offset int64, maxBytes int, wait time.Duration) ([]byte, error) {
	l, err := b.log(topic, partition)
	if err != nil {
		return nil, err
	}
	chunk, err := l.Read(offset, maxBytes)
	if err != nil || len(chunk) > 0 {
		if err == nil {
			mFetchRequests.Inc()
			mFetchBytes.Add(int64(len(chunk)))
		}
		return chunk, err
	}
	if !l.WaitForData(offset, wait, b.stop) {
		mFetchRequests.Inc()
		return nil, nil
	}
	chunk, err = l.Read(offset, maxBytes)
	if err == nil {
		mFetchRequests.Inc()
		mFetchBytes.Add(int64(len(chunk)))
	}
	return chunk, err
}

// Offsets returns the earliest and latest valid offsets of a partition.
func (b *Broker) Offsets(topic string, partition int) (earliest, latest int64, err error) {
	l, err := b.log(topic, partition)
	if err != nil {
		return 0, 0, err
	}
	return l.Earliest(), l.Latest(), nil
}

// Partitions returns the partition count of a topic (creating it if new).
func (b *Broker) Partitions(topic string) (int, error) {
	logs, err := b.getOrCreateTopic(topic)
	if err != nil {
		return 0, err
	}
	return len(logs), nil
}

// Topics lists the broker's topics.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for t := range b.topics {
		out = append(out, t)
	}
	return out
}

// FlushAll forces all partition logs to flush (tests, shutdown).
func (b *Broker) FlushAll() error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, logs := range b.topics {
		for _, l := range logs {
			if err := l.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// housekeeping runs time-based flushes and the retention cleaner.
func (b *Broker) housekeeping() {
	defer b.wg.Done()
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	lastClean := time.Now()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.mu.RLock()
			var all []*Log
			for _, logs := range b.topics {
				all = append(all, logs...)
			}
			b.mu.RUnlock()
			for _, l := range all {
				_ = l.MaybeFlushByTime()
			}
			if time.Since(lastClean) >= b.cfg.CleanerInterval {
				lastClean = time.Now()
				for _, l := range all {
					_, _ = l.CleanOld(time.Now())
				}
			}
		}
	}
}

// CleanNow runs one retention sweep immediately (tests).
func (b *Broker) CleanNow(now time.Time) int {
	b.mu.RLock()
	var all []*Log
	for _, logs := range b.topics {
		all = append(all, logs...)
	}
	b.mu.RUnlock()
	n := 0
	for _, l := range all {
		r, _ := l.CleanOld(now)
		n += r
	}
	return n
}

// --- TCP transport -----------------------------------------------------------
//
// Two framings share the listen port. Legacy (lock-step): u32 len | u8 op |
// body, one request in flight per connection. Multiplexed: connections that
// open with the internal/rpc magic carry the same op|body payloads inside
// correlation-id frames, so many requests share one connection and responses
// may return out of order. Ops (identical under both framings):
//   1 produce:    topicLen u16 topic | partition u32 | set bytes  -> i64 offset
//   2 fetch:      topicLen u16 topic | partition u32 | offset i64 | max u32
//                 -> raw chunk (streamed from the segment file)
//   3 offsets:    topicLen u16 topic | partition u32 -> i64 earliest, i64 latest
//   4 partitions: topicLen u16 topic -> u32 count
//   5 fetch-wait: topicLen u16 topic | partition u32 | offset i64 | max u32 |
//                 waitMs u32 -> raw chunk; blocks server-side until data or
//                 waitMs (the long-poll fetch — under the mux it parks one
//                 worker, not the whole connection)
//   6 replica-fetch: topicLen u16 topic | partition u32 | offset i64 |
//                 max u32 | waitMs u32 | followerLen u16 follower
//                 -> hw i64 | raw chunk; the follower pull of ISR
//                 replication — uncapped by the high watermark, long-polling
//                 at the durable tail, and carrying the leader's hw back so
//                 followers advance their own visibility limit

// Broker protocol opcodes.
const (
	brokerOpProduce      = 1
	brokerOpFetch        = 2
	brokerOpOffsets      = 3
	brokerOpPartitions   = 4
	brokerOpFetchWait    = 5
	brokerOpReplicaFetch = 6
)

// maxFetchWait caps how long a fetch-wait request may park a server worker.
const maxFetchWait = 30 * time.Second

// Listen starts serving the broker protocol; returns the bound address.
func (b *Broker) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	b.mu.Lock()
	b.ln = ln
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			b.mu.Lock()
			if b.closed {
				b.mu.Unlock()
				conn.Close()
				return
			}
			b.conns[conn] = true
			b.mu.Unlock()
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				defer func() {
					conn.Close()
					b.mu.Lock()
					delete(b.conns, conn)
					b.mu.Unlock()
				}()
				// Route by preamble: mux connections announce themselves
				// with the rpc magic, everything else gets the legacy loop.
				nc, muxed, err := rpc.Sniff(conn)
				if err != nil {
					return
				}
				if muxed {
					_ = rpc.ServeConn(nc, b.handle, rpc.ServeOptions{})
					return
				}
				b.serveConn(nc)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

func (b *Broker) serveConn(conn net.Conn) {
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr)
		if n > 64<<20 {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		if err := writeLegacyResponse(conn, b.handle(body)); err != nil {
			return
		}
	}
}

// writeLegacyResponse frames one handler result for the lock-step protocol:
// u32 length | payload | streamed body.
func writeLegacyResponse(conn net.Conn, resp rpc.Response) error {
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, uint32(int64(len(resp.Payload))+resp.StreamLen))
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	if _, err := conn.Write(resp.Payload); err != nil {
		return err
	}
	if resp.Stream != nil && resp.StreamLen > 0 {
		copied, err := io.Copy(conn, io.LimitReader(resp.Stream, resp.StreamLen))
		if err == nil && copied != resp.StreamLen {
			err = fmt.Errorf("kafka: streamed response short: %d of %d bytes", copied, resp.StreamLen)
		}
		return err
	}
	return nil
}

func respErr(err error) rpc.Response {
	return rpc.Response{Payload: append([]byte{1}, err.Error()...)}
}

func respOK(payload []byte) rpc.Response {
	return rpc.Response{Payload: append([]byte{0}, payload...)}
}

// handle serves one op|body request payload, shared by the legacy lock-step
// loop and the multiplexed transport (where it runs on the per-connection
// worker pool, so it must be — and is — safe for concurrent use). The first
// response byte is the status flag; fetches return the chunk as a stream
// straight from the segment file (the §V.B sendfile-style path under either
// framing).
func (b *Broker) handle(body []byte) rpc.Response {
	if len(body) < 1 {
		return respErr(fmt.Errorf("empty request"))
	}
	op := body[0]
	body = body[1:]
	readTopic := func() (string, []byte, error) {
		if len(body) < 2 {
			return "", nil, fmt.Errorf("short request")
		}
		n := int(binary.BigEndian.Uint16(body))
		if len(body) < 2+n {
			return "", nil, fmt.Errorf("short topic")
		}
		return string(body[2 : 2+n]), body[2+n:], nil
	}
	switch op {
	case brokerOpProduce:
		topic, rest, err := readTopic()
		if err != nil {
			return respErr(err)
		}
		if len(rest) < 4 {
			return respErr(fmt.Errorf("short produce"))
		}
		partition := int(binary.BigEndian.Uint32(rest))
		b.mu.RLock()
		produce := b.produceHandler
		b.mu.RUnlock()
		var off int64
		if produce != nil {
			off, err = produce(topic, partition, MessageSet{buf: rest[4:]})
		} else {
			off, err = b.Produce(topic, partition, MessageSet{buf: rest[4:]})
		}
		if err != nil {
			return respErr(err)
		}
		var out [8]byte
		binary.BigEndian.PutUint64(out[:], uint64(off))
		return respOK(out[:])

	case brokerOpReplicaFetch:
		topic, rest, err := readTopic()
		if err != nil {
			return respErr(err)
		}
		if len(rest) < 26 {
			return respErr(fmt.Errorf("short replica fetch"))
		}
		partition := int(binary.BigEndian.Uint32(rest))
		offset := int64(binary.BigEndian.Uint64(rest[4:12]))
		maxBytes := int(binary.BigEndian.Uint32(rest[12:16]))
		wait := time.Duration(binary.BigEndian.Uint32(rest[16:20])) * time.Millisecond
		if wait > maxFetchWait {
			wait = maxFetchWait
		}
		epoch := int(int32(binary.BigEndian.Uint32(rest[20:24])))
		fn := int(binary.BigEndian.Uint16(rest[24:26]))
		if len(rest) < 26+fn {
			return respErr(fmt.Errorf("short replica fetch follower"))
		}
		follower := string(rest[26 : 26+fn])
		b.mu.RLock()
		replica := b.replicaHandler
		b.mu.RUnlock()
		if replica == nil {
			return respErr(fmt.Errorf("replication not enabled"))
		}
		hw, chunk, err := replica(topic, partition, offset, maxBytes, wait, follower, epoch)
		if err != nil {
			return respErr(err)
		}
		out := make([]byte, 0, 9+len(chunk))
		out = append(out, 0)
		out = binary.BigEndian.AppendUint64(out, uint64(hw))
		out = append(out, chunk...)
		return rpc.Response{Payload: out}

	case brokerOpFetch:
		topic, rest, err := readTopic()
		if err != nil {
			return respErr(err)
		}
		if len(rest) < 16 {
			return respErr(fmt.Errorf("short fetch"))
		}
		partition := int(binary.BigEndian.Uint32(rest))
		offset := int64(binary.BigEndian.Uint64(rest[4:12]))
		maxBytes := int(binary.BigEndian.Uint32(rest[12:16]))
		l, err := b.log(topic, partition)
		if err != nil {
			return respErr(err)
		}
		f, pos, n, err := l.SectionReader(offset, maxBytes)
		if err != nil {
			return respErr(err)
		}
		mFetchRequests.Inc()
		mFetchBytes.Add(n)
		return rpc.Response{Payload: []byte{0}, Stream: io.NewSectionReader(f, pos, n), StreamLen: n}

	case brokerOpFetchWait:
		topic, rest, err := readTopic()
		if err != nil {
			return respErr(err)
		}
		if len(rest) < 20 {
			return respErr(fmt.Errorf("short fetch-wait"))
		}
		partition := int(binary.BigEndian.Uint32(rest))
		offset := int64(binary.BigEndian.Uint64(rest[4:12]))
		maxBytes := int(binary.BigEndian.Uint32(rest[12:16]))
		wait := time.Duration(binary.BigEndian.Uint32(rest[16:20])) * time.Millisecond
		if wait > maxFetchWait {
			wait = maxFetchWait
		}
		chunk, err := b.FetchWait(topic, partition, offset, maxBytes, wait)
		if err != nil {
			return respErr(err)
		}
		return respOK(chunk)

	case brokerOpOffsets:
		topic, rest, err := readTopic()
		if err != nil {
			return respErr(err)
		}
		if len(rest) < 4 {
			return respErr(fmt.Errorf("short offsets"))
		}
		partition := int(binary.BigEndian.Uint32(rest))
		earliest, latest, err := b.Offsets(topic, partition)
		if err != nil {
			return respErr(err)
		}
		var out [16]byte
		binary.BigEndian.PutUint64(out[0:8], uint64(earliest))
		binary.BigEndian.PutUint64(out[8:16], uint64(latest))
		return respOK(out[:])

	case brokerOpPartitions:
		topic, _, err := readTopic()
		if err != nil {
			return respErr(err)
		}
		n, err := b.Partitions(topic)
		if err != nil {
			return respErr(err)
		}
		out, _ := json.Marshal(n)
		return respOK(out)

	default:
		return respErr(fmt.Errorf("unknown op %d", op))
	}
}

// Close stops serving and closes all logs.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	ln := b.ln
	sess := b.zkSess
	conns := make([]net.Conn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	close(b.stop)
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	b.wg.Wait()
	if sess != nil {
		sess.Close()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var firstErr error
	for _, logs := range b.topics {
		for _, l := range logs {
			if err := l.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
