package kafka

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestMessageSetEncodeDecode(t *testing.T) {
	set := NewMessageSet([]byte("one"), []byte("two"), []byte("three"))
	msgs, err := Decode(set.Bytes(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("decoded %d messages", len(msgs))
	}
	if string(msgs[0].Payload) != "one" || string(msgs[2].Payload) != "three" {
		t.Fatalf("payloads: %q %q %q", msgs[0].Payload, msgs[1].Payload, msgs[2].Payload)
	}
	// offsets are byte positions: increasing but not consecutive (§V.B)
	if msgs[0].NextOffset <= 100 || msgs[1].NextOffset <= msgs[0].NextOffset {
		t.Fatalf("offsets not increasing: %d %d", msgs[0].NextOffset, msgs[1].NextOffset)
	}
	want := int64(100 + set.Len())
	if msgs[2].NextOffset != want {
		t.Fatalf("final NextOffset = %d, want %d", msgs[2].NextOffset, want)
	}
}

func TestDecodePartialTail(t *testing.T) {
	set := NewMessageSet([]byte("complete"), []byte("torn"))
	data := set.Bytes()
	msgs, err := Decode(data[:len(data)-3], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Payload) != "complete" {
		t.Fatalf("partial decode = %v", msgs)
	}
}

func TestDecodeCorruptCRC(t *testing.T) {
	set := NewMessageSet([]byte("payload"))
	data := set.Bytes()
	data[len(data)-1] ^= 0xFF
	if _, err := Decode(data, 0); err == nil {
		t.Fatal("corrupt crc accepted")
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	payloads := [][]byte{}
	var set MessageSet
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf(`{"event":"page_view","member":%d,"page":"/in/profile"}`, i))
		payloads = append(payloads, p)
		set.Append(NewMessage(p))
	}
	compressed, err := set.Compress()
	if err != nil {
		t.Fatal(err)
	}
	if compressed.Len() >= set.Len() {
		t.Fatalf("compression grew the set: %d -> %d", set.Len(), compressed.Len())
	}
	msgs, err := Decode(compressed.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 50 {
		t.Fatalf("decoded %d inner messages", len(msgs))
	}
	for i, m := range msgs {
		if !bytes.Equal(m.Payload, payloads[i]) {
			t.Fatalf("message %d mismatch", i)
		}
		// every inner message resumes after the wrapper
		if m.NextOffset != int64(compressed.Len()) {
			t.Fatalf("inner NextOffset = %d, want %d", m.NextOffset, compressed.Len())
		}
	}
}

func TestE10CompressionRatio(t *testing.T) {
	// §V.B: "we save about 2/3 of the network bandwidth with compression".
	var set MessageSet
	for i := 0; i < 200; i++ {
		set.Append(NewMessage([]byte(fmt.Sprintf(
			`{"timestamp":%d,"server":"app-%02d.prod","event":"page_view","member":%d,"referrer":"https://www.linkedin.com/feed/","agent":"Mozilla/5.0"}`,
			1700000000000+int64(i), i%20, 100000+i*7))))
	}
	compressed, err := set.Compress()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(compressed.Len()) / float64(set.Len())
	if ratio > 0.45 {
		t.Fatalf("compression ratio %.2f; paper reports ~1/3 of original (save 2/3)", ratio)
	}
}

func TestLogAppendRead(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	off1, err := l.Append(NewMessageSet([]byte("a")))
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 0 {
		t.Fatalf("first offset = %d", off1)
	}
	off2, _ := l.Append(NewMessageSet([]byte("bb")))
	if off2 <= off1 {
		t.Fatalf("offsets not increasing: %d %d", off1, off2)
	}
	chunk, err := l.Read(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := Decode(chunk, 0)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("decode = (%d, %v)", len(msgs), err)
	}
	// fetch from mid-log
	chunk, _ = l.Read(off2, 1<<20)
	msgs, _ = Decode(chunk, off2)
	if len(msgs) != 1 || string(msgs[0].Payload) != "bb" {
		t.Fatalf("mid-log read = %v", msgs)
	}
	// caught up
	chunk, err = l.Read(l.Latest(), 1<<20)
	if err != nil || len(chunk) != 0 {
		t.Fatalf("caught-up read = (%d, %v)", len(chunk), err)
	}
	// out of range
	if _, err := l.Read(l.Latest()+1, 10); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("past-end read err = %v", err)
	}
}

func TestLogSegmentRoll(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 100)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(NewMessageSet(payload)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("only %d segments after 1000 bytes with 256-byte roll", l.Segments())
	}
	// reads spanning segments still deliver every message via re-fetch
	var got int
	off := l.Earliest()
	for off < l.Latest() {
		chunk, err := l.Read(off, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 {
			break
		}
		msgs, err := Decode(chunk, off)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			t.Fatal("no complete message in chunk")
		}
		got += len(msgs)
		off = msgs[len(msgs)-1].NextOffset
	}
	if got != 10 {
		t.Fatalf("read %d messages across segments", got)
	}
}

func TestLogFlushPolicyHidesUnflushed(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{FlushMessages: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(NewMessageSet([]byte("m1")))
	if l.Latest() != 0 {
		t.Fatalf("unflushed data visible: latest=%d", l.Latest())
	}
	l.Append(NewMessageSet([]byte("m2")))
	l.Append(NewMessageSet([]byte("m3"))) // third append triggers flush
	if l.Latest() == 0 {
		t.Fatal("flush did not expose messages")
	}
	chunk, _ := l.Read(0, 1<<20)
	msgs, _ := Decode(chunk, 0)
	if len(msgs) != 3 {
		t.Fatalf("visible messages = %d", len(msgs))
	}
}

func TestLogRecoveryTruncatesTornWrite(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(NewMessageSet([]byte("good")))
	l.Close()

	// simulate a torn write on the active segment
	f, err := os.OpenFile(filepath.Join(dir, segmentName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 9, 9})
	f.Close()

	re, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	chunk, err := re.Read(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := Decode(chunk, 0)
	if err != nil || len(msgs) != 1 || string(msgs[0].Payload) != "good" {
		t.Fatalf("recovery = (%v, %v)", msgs, err)
	}
	// appends continue cleanly after truncation
	if _, err := re.Append(NewMessageSet([]byte("after"))); err != nil {
		t.Fatal(err)
	}
}

func TestLogRetentionDeletesOldSegments(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{SegmentBytes: 128, Retention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	for i := 0; i < 10; i++ {
		l.Append(NewMessageSet(payload))
	}
	before := l.Segments()
	if before < 3 {
		t.Fatalf("need multiple segments, have %d", before)
	}
	// nothing is old yet
	n, _ := l.CleanOld(time.Now())
	if n != 0 {
		t.Fatalf("cleaner deleted %d fresh segments", n)
	}
	// two hours later everything but the active segment expires
	n, err = l.CleanOld(time.Now().Add(2 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if n != before-1 {
		t.Fatalf("cleaned %d, want %d", n, before-1)
	}
	if l.Segments() != 1 {
		t.Fatalf("%d segments remain", l.Segments())
	}
	// reading an expired offset now fails; earliest survives
	if _, err := l.Read(0, 10); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("expired offset err = %v", err)
	}
	if _, err := l.Read(l.Earliest(), 10); err != nil {
		t.Fatalf("earliest read: %v", err)
	}
}

func newTestBroker(t testing.TB) *Broker {
	t.Helper()
	b, err := NewBroker(0, t.TempDir(), BrokerConfig{PartitionsPerTopic: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func TestBrokerProduceFetch(t *testing.T) {
	b := newTestBroker(t)
	off, err := b.Produce("events", 0, NewMessageSet([]byte("hello")))
	if err != nil || off != 0 {
		t.Fatalf("Produce = (%d, %v)", off, err)
	}
	chunk, err := b.Fetch("events", 0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ := Decode(chunk, 0)
	if len(msgs) != 1 || string(msgs[0].Payload) != "hello" {
		t.Fatalf("fetch = %v", msgs)
	}
	if _, err := b.Fetch("events", 9, 0, 10); err == nil {
		t.Fatal("bad partition accepted")
	}
}

func TestBrokerPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBroker(0, dir, BrokerConfig{PartitionsPerTopic: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := b.Produce("t", i%2, NewMessageSet([]byte(fmt.Sprintf("m%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	b2, err := NewBroker(0, dir, BrokerConfig{PartitionsPerTopic: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	total := 0
	for p := 0; p < 2; p++ {
		earliest, latest, err := b2.Offsets("t", p)
		if err != nil {
			t.Fatal(err)
		}
		for off := earliest; off < latest; {
			chunk, _ := b2.Fetch("t", p, off, 1<<20)
			msgs, _ := Decode(chunk, off)
			if len(msgs) == 0 {
				break
			}
			total += len(msgs)
			off = msgs[len(msgs)-1].NextOffset
		}
	}
	if total != 20 {
		t.Fatalf("recovered %d messages", total)
	}
}

func TestProducerBatchingAndKeyedPartitioning(t *testing.T) {
	b := newTestBroker(t)
	p := NewProducer(b, ProducerConfig{BatchSize: 10})
	defer p.Close()
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("member-%d", i%4))
		if err := p.Send("activity", key, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Sent() != 40 {
		t.Fatalf("Sent = %d", p.Sent())
	}
	// all messages for one key land in one partition
	sc := NewSimpleConsumer(b, 1<<20)
	counts := map[int]int{}
	for part := 0; part < 2; part++ {
		off := int64(0)
		for {
			msgs, err := sc.Consume("activity", part, off)
			if err != nil || len(msgs) == 0 {
				break
			}
			counts[part] += len(msgs)
			off = msgs[len(msgs)-1].NextOffset
		}
	}
	if counts[0]+counts[1] != 40 {
		t.Fatalf("consumed %d+%d messages", counts[0], counts[1])
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("keyed partitioning put everything in one partition: %v", counts)
	}
}

func TestProducerCompressionOnWire(t *testing.T) {
	b := newTestBroker(t)
	plain := NewProducer(b, ProducerConfig{BatchSize: 100})
	gz := NewProducer(b, ProducerConfig{BatchSize: 100, Compression: true})
	defer plain.Close()
	defer gz.Close()
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf(`{"event":"click","member":%d,"page":"/feed","ts":%d}`, i, i*1000))
		plain.SendTo("plain", 0, payload)
		gz.SendTo("gzip", 0, payload)
	}
	plain.Flush()
	gz.Flush()
	if gz.BytesOnWire() >= plain.BytesOnWire()/2 {
		t.Fatalf("compression saved too little: %d vs %d bytes", gz.BytesOnWire(), plain.BytesOnWire())
	}
	// compressed pipeline still delivers every message
	sc := NewSimpleConsumer(b, 1<<20)
	msgs, err := sc.Consume("gzip", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 100 {
		t.Fatalf("consumed %d of 100 compressed messages", len(msgs))
	}
}

func TestStreamBlocksUntilPublish(t *testing.T) {
	b := newTestBroker(t)
	sc := NewSimpleConsumer(b, 1<<20)
	st := sc.StreamFrom("live", 0, 0)
	defer st.Close()
	got := make(chan string, 1)
	go func() {
		m, err := st.Next()
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- string(m.Payload)
	}()
	select {
	case v := <-got:
		t.Fatalf("Next returned %q before publish", v)
	case <-time.After(30 * time.Millisecond):
	}
	b.Produce("live", 0, NewMessageSet([]byte("now")))
	select {
	case v := <-got:
		if v != "now" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream never unblocked")
	}
}

func TestConsumerRewind(t *testing.T) {
	b := newTestBroker(t)
	for i := 0; i < 5; i++ {
		b.Produce("rw", 0, NewMessageSet([]byte(fmt.Sprintf("m%d", i))))
	}
	sc := NewSimpleConsumer(b, 1<<20)
	msgs, _ := sc.Consume("rw", 0, 0)
	if len(msgs) != 5 {
		t.Fatalf("first pass = %d", len(msgs))
	}
	// deliberately rewind to an old offset and re-consume (§V.B)
	again, err := sc.Consume("rw", 0, 0)
	if err != nil || len(again) != 5 {
		t.Fatalf("rewind = (%d, %v)", len(again), err)
	}
}

func TestRemoteBrokerOverTCP(t *testing.T) {
	b := newTestBroker(t)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rb := DialBroker(addr, time.Second)
	defer rb.Close()

	n, err := rb.Partitions("remote")
	if err != nil || n != 2 {
		t.Fatalf("Partitions = (%d, %v)", n, err)
	}
	off, err := rb.Produce("remote", 1, NewMessageSet([]byte("over-tcp")))
	if err != nil || off != 0 {
		t.Fatalf("Produce = (%d, %v)", off, err)
	}
	chunk, err := rb.Fetch("remote", 1, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ := Decode(chunk, 0)
	if len(msgs) != 1 || string(msgs[0].Payload) != "over-tcp" {
		t.Fatalf("fetch = %v", msgs)
	}
	earliest, latest, err := rb.Offsets("remote", 1)
	if err != nil || earliest != 0 || latest == 0 {
		t.Fatalf("Offsets = (%d, %d, %v)", earliest, latest, err)
	}
	// errors cross the wire
	if _, err := rb.Fetch("remote", 1, latest+100, 10); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("remote out-of-range err = %v", err)
	}
}

func BenchmarkLogAppend(b *testing.B) {
	l, err := OpenLog(b.TempDir(), LogConfig{FlushMessages: 1000})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	set := NewMessageSet(make([]byte, 200))
	b.SetBytes(int64(set.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProduceConsume(b *testing.B) {
	br, err := NewBroker(0, b.TempDir(), BrokerConfig{
		PartitionsPerTopic: 1,
		Log:                LogConfig{FlushMessages: 500},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer br.Close()
	p := NewProducer(br, ProducerConfig{BatchSize: 200})
	defer p.Close()
	payload := make([]byte, 200)
	b.SetBytes(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.SendTo("bench", 0, payload); err != nil {
			b.Fatal(err)
		}
	}
	p.Flush()
	br.FlushAll()
	b.StopTimer()
}

// countingBroker wraps an in-process broker and counts fetch-path calls. It
// implements BrokerClient only — no FetchWait — so streams over it take the
// jittered-backoff fallback at the tail.
type countingBroker struct {
	b          *Broker
	fetches    atomic.Int64
	fetchWaits atomic.Int64
}

func (c *countingBroker) Produce(topic string, partition int, set MessageSet) (int64, error) {
	return c.b.Produce(topic, partition, set)
}

func (c *countingBroker) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	c.fetches.Add(1)
	return c.b.Fetch(topic, partition, offset, maxBytes)
}

func (c *countingBroker) Offsets(topic string, partition int) (int64, int64, error) {
	return c.b.Offsets(topic, partition)
}

func (c *countingBroker) Partitions(topic string) (int, error) {
	return c.b.Partitions(topic)
}

// countingBlockingBroker additionally implements BlockingFetcher, steering
// streams onto the long-poll path.
type countingBlockingBroker struct {
	countingBroker
}

func (c *countingBlockingBroker) FetchWait(topic string, partition int, offset int64, maxBytes int, wait time.Duration) ([]byte, error) {
	c.fetchWaits.Add(1)
	return c.b.FetchWait(topic, partition, offset, maxBytes, wait)
}

// TestStreamTailLongPollNoBusySpin: a stream parked at the tail of an idle
// partition must issue only a handful of long-poll fetches (each parks
// server-side for maxWait), not a fixed-interval poll, and must still wake
// promptly when a message is finally produced.
func TestStreamTailLongPollNoBusySpin(t *testing.T) {
	cb := &countingBlockingBroker{countingBroker{b: newTestBroker(t)}}
	sc := NewSimpleConsumer(cb, 1<<20)
	st := sc.StreamFrom("idle", 0, 0)
	defer st.Close()

	got := make(chan string, 1)
	go func() {
		m, err := st.Next()
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- string(m.Payload)
	}()

	idle := 500 * time.Millisecond
	select {
	case v := <-got:
		t.Fatalf("Next returned %q on an idle partition", v)
	case <-time.After(idle):
	}
	// The old implementation polled every 2ms: ~250 fetches in this window.
	// Long-polling parks 250ms per call, so a parked stream issues ~2.
	if n := cb.fetchWaits.Load(); n > 8 {
		t.Fatalf("%d long-poll fetches in %v — stream is busy-spinning", n, idle)
	}
	if n := cb.fetches.Load(); n > 2 {
		t.Fatalf("%d plain fetches on the long-poll path", n)
	}

	start := time.Now()
	if _, err := cb.b.Produce("idle", 0, NewMessageSet([]byte("wake"))); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "wake" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked stream never woke after produce")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("wake took %v — long poll is not watching the flush point", d)
	}
	t.Logf("idle %v cost %d long-polls; wake latency %v", idle, cb.fetchWaits.Load(), time.Since(start))
}

// TestStreamTailBackoffNoBusySpin: against a broker with no long-poll
// support, the tail fallback must back off (jittered, doubling to a cap)
// rather than poll at a fixed 2ms — an idle consumer issues an order of
// magnitude fewer fetches than the old busy-poll.
func TestStreamTailBackoffNoBusySpin(t *testing.T) {
	cb := &countingBroker{b: newTestBroker(t)}
	sc := NewSimpleConsumer(cb, 1<<20)
	st := sc.StreamFrom("idle", 0, 0)
	defer st.Close()

	got := make(chan string, 1)
	go func() {
		m, err := st.Next()
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- string(m.Payload)
	}()

	idle := 400 * time.Millisecond
	select {
	case v := <-got:
		t.Fatalf("Next returned %q on an idle partition", v)
	case <-time.After(idle):
	}
	// Fixed 2ms polling would issue ~200 fetches here; doubling backoff
	// (2,4,8,...,50ms cap, plus jitter) issues roughly a dozen.
	if n := cb.fetches.Load(); n > 40 {
		t.Fatalf("%d fetches in %v — tail fallback is busy-spinning", n, idle)
	}
	if _, err := cb.b.Produce("idle", 0, NewMessageSet([]byte("wake"))); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "wake" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("backoff stream never woke after produce")
	}
	t.Logf("idle %v cost %d fetches on the backoff fallback", idle, cb.fetches.Load())
}
