package kafka

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"datainfra/internal/helix"
	"datainfra/internal/resilience"
	"datainfra/internal/zk"
)

// This file is the intra-cluster replication the paper names as Kafka's most
// important missing piece (§V.D), built the way production Kafka later did
// it: every topic partition has a replica set of brokers, one of which is
// elected leader through a Helix LeaderStandby state machine over zk.
// Followers pull the leader's log byte-identically (physical offsets — the
// message addresses — are preserved, so a consumer's saved offset survives
// failover exactly). The leader tracks an in-sync replica set (ISR) and a
// high watermark: the largest offset every ISR member has durably
// replicated. Produce acks gate on the high watermark and consumers never
// see bytes above it, so a message acked to a producer exists on every
// in-sync replica and cannot be lost by any single broker death. On leader
// death the Helix controller promotes an ISR member (the election preference
// filter keeps non-ISR replicas out), and clients re-resolve the leader from
// the zk metadata they already watch.

// Replication errors.
var (
	// ErrNotEnoughReplicas rejects produces while the ISR is below MinISR —
	// accepting them would ack writes a single failure could lose.
	ErrNotEnoughReplicas = errors.New("kafka: not enough in-sync replicas")
	// ErrAckTimeout reports a produce that appended to the leader log but was
	// not covered by the high watermark in time. The message may still
	// commit; a retrying producer makes delivery at-least-once (§V.D).
	ErrAckTimeout = errors.New("kafka: timed out waiting for replica acks")
)

// ReplicatedConfig tunes ISR replication.
type ReplicatedConfig struct {
	Cluster       string        // zk/helix namespace; default "kafka"
	Replicas      int           // replicas per partition incl. leader; default 2
	MinISR        int           // produces rejected below this ISR size; default 1
	AckTimeout    time.Duration // produce wait for the high watermark; default 5s
	MaxLagBytes   int64         // follower may trail this much and still join the ISR; default 0 (caught up)
	LagTimeout    time.Duration // follower silence before ISR eviction; default 2s
	FetchWait     time.Duration // follower long-poll at the leader tail; default 250ms
	FetchMaxBytes int           // replica fetch chunk cap; default 256 KiB
}

func (c *ReplicatedConfig) withDefaults() {
	if c.Cluster == "" {
		c.Cluster = "kafka"
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.MinISR == 0 {
		c.MinISR = 1
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.LagTimeout == 0 {
		c.LagTimeout = 2 * time.Second
	}
	if c.FetchWait == 0 {
		c.FetchWait = 250 * time.Millisecond
	}
	if c.FetchMaxBytes == 0 {
		c.FetchMaxBytes = 256 << 10
	}
	// A healthy idle follower reports its position once per long-poll; the
	// eviction timeout must comfortably exceed that cadence.
	if c.LagTimeout < 2*c.FetchWait {
		c.LagTimeout = 2 * c.FetchWait
	}
}

// isrRecord is the per-partition replication metadata in zk, the epoch CAS
// fencing a deposed leader: every publish is a compare-and-set on the znode
// version, so two brokers believing they lead the same partition cannot both
// win — the loser sees the version conflict and steps down.
type isrRecord struct {
	Epoch  int      `json:"epoch"`
	Leader string   `json:"leader"`
	ISR    []string `json:"isr"`
}

func isrPath(cluster, topic string, partition int) string {
	return fmt.Sprintf("/kafka/%s/isr/%s/%d", cluster, topic, partition)
}

func topicMetaPath(cluster, topic string) string {
	return fmt.Sprintf("/kafka/%s/topics/%s", cluster, topic)
}

// ReplicaPeer is the leader surface a follower replicates from; implemented
// by *RemoteBroker (TCP) and *ReplicatedBroker (in-process). epoch is the
// leader epoch the follower is fetching under (from the zk ISR record); the
// serving broker rejects any fetch whose epoch differs from its own, so a
// follower can never replicate from a stale leader and a stale leader learns
// of its deposition from the first higher-epoch fetch.
type ReplicaPeer interface {
	ReplicaFetch(topic string, partition int, offset int64, maxBytes int, wait time.Duration, follower string, epoch int) (hw int64, chunk []byte, err error)
}

// ClusterPeer is the full broker surface a routed client talks to.
type ClusterPeer interface {
	BrokerClient
	BlockingFetcher
}

// PeerResolver turns a Helix instance name into a connection to that broker.
type PeerResolver func(instance string) (ReplicaPeer, error)

// followerPos is the leader's view of one follower.
type followerPos struct {
	off  int64     // next offset the follower will fetch: everything below is durable there
	seen time.Time // last replica fetch
}

// partState is one partition's replication state on one broker.
type partState struct {
	topic string
	part  int

	// lead fences leader appends against demotion: Produce holds the read
	// side across its leadership check, append and flush; becomeStandby holds
	// the write side across the role flip and its divergence truncate. An
	// append can therefore never interleave with the truncate and leak local
	// bytes into a log that has become a follower replica.
	lead sync.RWMutex

	mu      sync.Mutex
	role    helix.State
	deposed bool // lost the epoch CAS: a newer leader exists
	epoch   int
	zkVer   int // ISR znode version for CAS publishes
	isr     map[string]bool
	pos     map[string]*followerPos
	hw      int64
	hwCh    chan struct{} // closed and replaced when hw advances

	stopFollower chan struct{}
	stopLeader   chan struct{}
	done         sync.WaitGroup
}

func (st *partState) label() string {
	return st.topic + "/" + strconv.Itoa(st.part)
}

// ReplicatedBroker wraps a Broker with ISR replication: it participates in
// the Helix LeaderStandby machine, leads or follows each assigned partition,
// and routes produces through high-watermark ack gating.
type ReplicatedBroker struct {
	broker   *Broker
	cfg      ReplicatedConfig
	instance string
	sess     *zk.Session
	helixP   *helix.Participant
	resolve  PeerResolver

	mu     sync.Mutex
	parts  map[topicPartition]*partState
	closed bool
	stop   chan struct{}
}

// NewReplicatedBroker attaches b to the replication cluster: it registers a
// Helix participant named "broker-<id>" and starts applying LeaderStandby
// transitions. resolve connects to peer brokers by instance name.
func NewReplicatedBroker(b *Broker, srv *zk.Server, cfg ReplicatedConfig, resolve PeerResolver) (*ReplicatedBroker, error) {
	cfg.withDefaults()
	rb := &ReplicatedBroker{
		broker:   b,
		cfg:      cfg,
		instance: fmt.Sprintf("broker-%d", b.ID()),
		sess:     srv.NewSession(),
		resolve:  resolve,
		parts:    map[topicPartition]*partState{},
		stop:     make(chan struct{}),
	}
	b.SetProduceHandler(rb.Produce)
	b.SetReplicaHandler(rb.ReplicaFetch)
	p, err := helix.NewParticipant(srv, cfg.Cluster, rb.instance, helix.StateModelFunc(rb.apply))
	if err != nil {
		rb.sess.Close()
		return nil, err
	}
	rb.helixP = p
	return rb, nil
}

// Instance returns the Helix instance name ("broker-<id>").
func (rb *ReplicatedBroker) Instance() string { return rb.instance }

// Broker returns the wrapped broker.
func (rb *ReplicatedBroker) Broker() *Broker { return rb.broker }

func (rb *ReplicatedBroker) state(tp topicPartition) *partState {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	st, ok := rb.parts[tp]
	if !ok {
		st = &partState{
			topic: tp.topic,
			part:  tp.partition,
			role:  helix.StateOffline,
			isr:   map[string]bool{},
			pos:   map[string]*followerPos{},
			hwCh:  make(chan struct{}),
		}
		rb.parts[tp] = st
	}
	return st
}

func (rb *ReplicatedBroker) lookup(topic string, partition int) (*partState, bool) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	st, ok := rb.parts[topicPartition{topic, partition}]
	return st, ok
}

// apply is the LeaderStandby StateModel.
func (rb *ReplicatedBroker) apply(t helix.Transition) error {
	st := rb.state(topicPartition{t.Resource, t.Partition})
	switch {
	case t.To == helix.StateStandby && t.From == helix.StateOffline:
		return rb.becomeStandby(st, false)
	case t.To == helix.StateLeader:
		return rb.becomeLeader(st)
	case t.To == helix.StateStandby && t.From == helix.StateLeader:
		return rb.becomeStandby(st, true)
	case t.To == helix.StateOffline:
		rb.stopRoles(st)
		st.mu.Lock()
		st.role = helix.StateOffline
		st.mu.Unlock()
		return nil
	}
	return nil
}

// stopRoles halts the partition's follower loop and leader ticker.
func (rb *ReplicatedBroker) stopRoles(st *partState) {
	st.mu.Lock()
	if st.stopFollower != nil {
		close(st.stopFollower)
		st.stopFollower = nil
	}
	if st.stopLeader != nil {
		close(st.stopLeader)
		st.stopLeader = nil
	}
	// Wake produce waiters so they observe the role change.
	close(st.hwCh)
	st.hwCh = make(chan struct{})
	st.mu.Unlock()
	st.done.Wait()
}

// becomeStandby starts following the partition leader. A demoted leader
// first truncates its unreplicated tail: bytes above the high watermark were
// never acked to any producer and must not survive into the new epoch (the
// new leader's log is the truth now).
func (rb *ReplicatedBroker) becomeStandby(st *partState, fromLeader bool) error {
	rb.stopRoles(st)
	l, err := rb.broker.log(st.topic, st.part)
	if err != nil {
		return err
	}
	stop := make(chan struct{})
	// Flip the role and truncate under the leadership write lock: an
	// in-flight leader append either completes first (and its unacked bytes
	// are cut here with the rest of the tail) or blocks until the truncate is
	// done and then sees the standby role and is rejected.
	st.lead.Lock()
	st.mu.Lock()
	st.role = helix.StateStandby
	st.deposed = false
	st.stopFollower = stop
	st.mu.Unlock()
	err = l.TruncateTo(l.Latest())
	st.lead.Unlock()
	if err != nil {
		return err
	}
	st.done.Add(1)
	go rb.followerLoop(st, l, stop)
	return nil
}

// becomeLeader takes over the partition: the ISR collapses to {self}, the
// high watermark becomes the local durable end (as an ISR member the log
// holds every acked byte), and the new epoch is fenced into zk with a CAS.
func (rb *ReplicatedBroker) becomeLeader(st *partState) error {
	rb.stopRoles(st)
	l, err := rb.broker.log(st.topic, st.part)
	if err != nil {
		return err
	}
	if err := l.Flush(); err != nil {
		return err
	}
	hw := l.FlushedEnd()
	l.SetLimit(hw)

	// Fence the new epoch: CAS over whatever the previous leader published.
	rec, ver := rb.readISR(st.topic, st.part)
	epoch := rec.Epoch + 1
	stop := make(chan struct{})
	st.mu.Lock()
	st.role = helix.StateLeader
	st.deposed = false
	st.epoch = epoch
	st.zkVer = ver
	st.isr = map[string]bool{rb.instance: true}
	st.pos = map[string]*followerPos{}
	st.hw = hw
	st.stopLeader = stop
	if err := rb.publishISRLocked(st); err != nil {
		st.mu.Unlock()
		return err
	}
	mPartitionHW.With(st.label()).Set(hw)
	mISRSize.With(st.label()).Set(1)
	st.mu.Unlock()

	st.done.Add(1)
	go rb.leaderLoop(st, stop)
	return nil
}

// readISR returns the partition's ISR record and znode version (-1 when the
// znode does not exist yet).
func (rb *ReplicatedBroker) readISR(topic string, partition int) (isrRecord, int) {
	data, stat, err := rb.sess.Get(isrPath(rb.cfg.Cluster, topic, partition))
	if err != nil {
		return isrRecord{}, -1
	}
	var rec isrRecord
	if json.Unmarshal(data, &rec) != nil {
		return isrRecord{}, stat.Version
	}
	return rec, stat.Version
}

// publishISRLocked CAS-writes the partition's ISR record. A version conflict
// means a newer leader fenced us out: the broker marks itself deposed and
// every produce waiter fails with ErrNotLeader. Caller holds st.mu.
func (rb *ReplicatedBroker) publishISRLocked(st *partState) error {
	members := make([]string, 0, len(st.isr))
	for m := range st.isr {
		members = append(members, m)
	}
	sort.Strings(members)
	data, err := json.Marshal(isrRecord{Epoch: st.epoch, Leader: rb.instance, ISR: members})
	if err != nil {
		return err
	}
	p := isrPath(rb.cfg.Cluster, st.topic, st.part)
	for attempt := 0; attempt < 3; attempt++ {
		if st.zkVer < 0 {
			if err := rb.sess.CreateAll(p, data); err != nil {
				return err
			}
			_, stat, err := rb.sess.Get(p)
			if err != nil {
				return err
			}
			st.zkVer = stat.Version
			return nil
		}
		stat, err := rb.sess.Set(p, data, st.zkVer)
		if err == nil {
			st.zkVer = stat.Version
			return nil
		}
		if !errors.Is(err, zk.ErrBadVersion) {
			return err
		}
		rec, ver := rb.readISR(st.topic, st.part)
		if rec.Epoch > st.epoch {
			st.deposed = true
			close(st.hwCh)
			st.hwCh = make(chan struct{})
			return fmt.Errorf("%w: fenced by epoch %d", ErrNotLeader, rec.Epoch)
		}
		st.zkVer = ver
	}
	return fmt.Errorf("kafka: isr publish for %s: version churn", st.label())
}

// Produce is the replicated produce path: reject unless leading with a full
// enough ISR, append + flush under the leadership read lock, then block until
// the high watermark covers the message (every in-sync replica has it
// durably) or AckTimeout passes.
func (rb *ReplicatedBroker) Produce(topic string, partition int, set MessageSet) (int64, error) {
	st, ok := rb.lookup(topic, partition)
	if !ok {
		return 0, fmt.Errorf("%w: %s/%d not assigned here", ErrNotLeader, topic, partition)
	}
	l, err := rb.broker.log(topic, partition)
	if err != nil {
		return 0, err
	}
	off, err := rb.leaderAppend(st, l, set)
	if err != nil {
		return 0, err
	}
	mProduceRequests.Inc()
	mProduceBytes.Add(int64(set.Len()))
	end := off + int64(set.Len())
	rb.advanceHW(st, l)

	deadline := time.NewTimer(rb.cfg.AckTimeout)
	defer deadline.Stop()
	for {
		st.mu.Lock()
		if st.hw >= end {
			st.mu.Unlock()
			return off, nil
		}
		if st.role != helix.StateLeader || st.deposed {
			st.mu.Unlock()
			return 0, fmt.Errorf("%w: deposed while awaiting acks for %s/%d", ErrNotLeader, topic, partition)
		}
		ch := st.hwCh
		st.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			mISRAckTimeouts.Inc()
			return 0, fmt.Errorf("%w: %s/%d offset %d", ErrAckTimeout, topic, partition, off)
		case <-rb.stop:
			return 0, errors.New("kafka: replicated broker closed")
		}
	}
}

// leaderAppend runs the leadership check, append and flush as one unit under
// the partition's leadership read lock, so a concurrent demotion (which takes
// the write side across its role flip and truncate) cannot interleave and
// leave locally-appended bytes in a log that has started following.
func (rb *ReplicatedBroker) leaderAppend(st *partState, l *Log, set MessageSet) (int64, error) {
	st.lead.RLock()
	defer st.lead.RUnlock()
	st.mu.Lock()
	if st.role != helix.StateLeader || st.deposed {
		st.mu.Unlock()
		return 0, fmt.Errorf("%w: %s/%d", ErrNotLeader, st.topic, st.part)
	}
	if n := len(st.isr); n < rb.cfg.MinISR {
		st.mu.Unlock()
		return 0, fmt.Errorf("%w: %s/%d has %d, need %d", ErrNotEnoughReplicas, st.topic, st.part, n, rb.cfg.MinISR)
	}
	st.mu.Unlock()
	off, err := l.Append(set)
	if err != nil {
		return 0, err
	}
	// Durable locally before followers can replicate it or the high
	// watermark can cover it.
	if err := l.Flush(); err != nil {
		return 0, err
	}
	return off, nil
}

// advanceHW recomputes the high watermark: the smallest durable position
// across the ISR (the leader's own position is its flushed end). Advancing
// it widens consumer visibility and wakes produce waiters.
func (rb *ReplicatedBroker) advanceHW(st *partState, l *Log) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.role != helix.StateLeader || st.deposed {
		return
	}
	min := l.FlushedEnd()
	for member := range st.isr {
		if member == rb.instance {
			continue
		}
		fp, ok := st.pos[member]
		if !ok {
			// No position report yet: this member cannot confirm anything
			// beyond the current watermark.
			if st.hw < min {
				min = st.hw
			}
			continue
		}
		if fp.off < min {
			min = fp.off
		}
	}
	if min > st.hw {
		st.hw = min
		l.SetLimit(min)
		close(st.hwCh)
		st.hwCh = make(chan struct{})
		mPartitionHW.With(st.label()).Set(min)
	}
}

// ReplicaFetch serves a follower's pull (op 6): fence the leader epoch,
// record the follower's position (its offset acks everything below), maybe
// readmit it to the ISR, return raw bytes past the high watermark cap,
// long-polling at the durable tail.
func (rb *ReplicatedBroker) ReplicaFetch(topic string, partition int, offset int64, maxBytes int, wait time.Duration, follower string, epoch int) (int64, []byte, error) {
	st, ok := rb.lookup(topic, partition)
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s/%d not assigned here", ErrNotLeader, topic, partition)
	}
	l, err := rb.broker.log(topic, partition)
	if err != nil {
		return 0, nil, err
	}
	st.mu.Lock()
	if st.role != helix.StateLeader || st.deposed {
		st.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %s/%d", ErrNotLeader, topic, partition)
	}
	if epoch != st.epoch {
		// Epoch fence (Kafka's FENCED_LEADER_EPOCH): a follower fetching
		// under a newer epoch proves a newer election this broker missed —
		// depose locally so produce waiters fail fast instead of waiting for
		// acks that will never come. A follower on an older epoch must
		// re-read the ISR record (and truncate) before its fetches count.
		ferr := fmt.Errorf("%w: %s/%d fetch epoch %d, leader epoch %d",
			ErrNotLeader, topic, partition, epoch, st.epoch)
		if epoch > st.epoch {
			st.deposed = true
			close(st.hwCh)
			st.hwCh = make(chan struct{})
		}
		st.mu.Unlock()
		return 0, nil, ferr
	}
	fp, ok := st.pos[follower]
	if !ok {
		fp = &followerPos{}
		st.pos[follower] = fp
	}
	fp.off = offset
	fp.seen = time.Now()
	if !st.isr[follower] && offset+rb.cfg.MaxLagBytes >= l.FlushedEnd() {
		st.isr[follower] = true
		if err := rb.publishISRLocked(st); err != nil {
			delete(st.isr, follower)
			st.mu.Unlock()
			return 0, nil, err
		}
		mISRExpands.Inc()
		mISRSize.With(st.label()).Set(int64(len(st.isr)))
	}
	st.mu.Unlock()

	rb.advanceHW(st, l)

	chunk, err := l.ReadUncapped(offset, maxBytes)
	if err != nil {
		return 0, nil, err
	}
	if len(chunk) == 0 && wait > 0 {
		if l.WaitForDataUncapped(offset, wait, rb.stop) {
			chunk, err = l.ReadUncapped(offset, maxBytes)
			if err != nil {
				return 0, nil, err
			}
		}
	}
	st.mu.Lock()
	hw := st.hw
	deposed := st.deposed || st.role != helix.StateLeader
	st.mu.Unlock()
	if deposed {
		return 0, nil, fmt.Errorf("%w: %s/%d", ErrNotLeader, topic, partition)
	}
	return hw, chunk, nil
}

// leaderLoop evicts silent followers from the ISR. Removing a laggard can
// advance the high watermark: the remaining members define what "fully
// replicated" means, exactly Kafka's acks=all semantics.
func (rb *ReplicatedBroker) leaderLoop(st *partState, stop chan struct{}) {
	defer st.done.Done()
	interval := rb.cfg.LagTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-rb.stop:
			return
		case <-t.C:
		}
		l, err := rb.broker.log(st.topic, st.part)
		if err != nil {
			continue
		}
		now := time.Now()
		st.mu.Lock()
		if st.role != helix.StateLeader || st.deposed {
			st.mu.Unlock()
			return
		}
		evicted := false
		for member := range st.isr {
			if member == rb.instance {
				continue
			}
			fp, ok := st.pos[member]
			if ok && now.Sub(fp.seen) <= rb.cfg.LagTimeout {
				continue
			}
			delete(st.isr, member)
			evicted = true
			mISRShrinks.Inc()
		}
		if evicted {
			if err := rb.publishISRLocked(st); err != nil {
				st.mu.Unlock()
				continue
			}
			mISRSize.With(st.label()).Set(int64(len(st.isr)))
		}
		st.mu.Unlock()
		if evicted {
			rb.advanceHW(st, l)
		}
	}
}

// maxReplicaFetchBytes caps the replica fetch window (and matches the wire
// frame limit); a single message can never legitimately exceed it.
const maxReplicaFetchBytes = 64 << 20

// followerLoop replicates the leader's log byte-for-byte: fetch from the
// local durable end, append at exactly that offset, flush, adopt the
// leader's high watermark as the local visibility limit. Chunks are cut at
// message boundaries so the local end — the next fetch offset and implicit
// ack — is always a valid message address.
func (rb *ReplicatedBroker) followerLoop(st *partState, l *Log, stop chan struct{}) {
	defer st.done.Done()
	var (
		peer       ReplicaPeer
		leaderName string
		epoch      = -1
	)
	fetchMax := rb.cfg.FetchMaxBytes
	pause := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-stop:
			return false
		case <-rb.stop:
			return false
		case <-t.C:
			return true
		}
	}
	// truncateToHW cuts the log back to the local high watermark — the
	// divergence repair: everything acked lies at or below the watermark and
	// is byte-identical on every ISR member, everything above may exist only
	// under a dead leadership and is refetched from the current leader.
	truncateToHW := func() bool {
		if err := l.TruncateTo(l.Latest()); err != nil {
			return false
		}
		return true
	}
	for {
		select {
		case <-stop:
			return
		case <-rb.stop:
			return
		default:
		}
		rec, _ := rb.readISR(st.topic, st.part)
		if rec.Leader == "" || rec.Leader == rb.instance {
			if !pause(5 * time.Millisecond) {
				return
			}
			continue
		}
		if peer == nil || leaderName != rec.Leader || epoch != rec.Epoch {
			// New leadership epoch: bytes replicated past the high watermark
			// may exist only on the previous leader — never acked, possibly
			// absent from (or different on) the new leader. Truncate to the
			// watermark before the first fetch so the local log stays a
			// byte-identical prefix of the new leader's log.
			if !truncateToHW() {
				if !pause(10 * time.Millisecond) {
					return
				}
				continue
			}
			p, err := rb.resolve(rec.Leader)
			if err != nil {
				if !pause(10 * time.Millisecond) {
					return
				}
				continue
			}
			peer, leaderName, epoch = p, rec.Leader, rec.Epoch
		}
		off := l.FlushedEnd()
		hw, chunk, err := peer.ReplicaFetch(st.topic, st.part, off, fetchMax, rb.cfg.FetchWait, rb.instance, epoch)
		if err != nil {
			switch {
			case errors.Is(err, ErrOffsetOutOfRange):
				// Our log diverges from (or ran ahead of) the leader's:
				// everything acked lies below our high watermark, so cut
				// back to it and re-fetch from there.
				truncateToHW()
			case errors.Is(err, ErrNotLeader):
				// Stale peer or epoch; re-resolve from zk next iteration.
				peer, leaderName, epoch = nil, "", -1
			}
			if !pause(10 * time.Millisecond) {
				return
			}
			continue
		}
		if len(chunk) > 0 {
			valid := validPrefix(chunk)
			if valid == 0 {
				if fetchMax >= maxReplicaFetchBytes {
					// Garbage even at the widest window: not an oversized
					// message but a misaligned chunk (divergence). Repair
					// and refetch instead of busy-spinning at the cap.
					truncateToHW()
					fetchMax = rb.cfg.FetchMaxBytes
					if !pause(10 * time.Millisecond) {
						return
					}
					continue
				}
				// First message exceeds the fetch window; widen and retry.
				fetchMax *= 2
				if fetchMax > maxReplicaFetchBytes {
					fetchMax = maxReplicaFetchBytes
				}
				continue
			}
			if err := l.AppendAt(off, chunk[:valid]); err != nil {
				continue
			}
			if err := l.Flush(); err != nil {
				continue
			}
			mReplicaMessages.Inc()
			fetchMax = rb.cfg.FetchMaxBytes
		}
		mReplicaLag.Set(hw - l.FlushedEnd())
		l.SetLimit(hw)
	}
}

// Close leaves the cluster: the Helix participant deregisters (its ephemeral
// vanishes, which is what the controller's failover reacts to), loops stop,
// and the wrapped broker shuts down.
func (rb *ReplicatedBroker) Close() error {
	rb.mu.Lock()
	if rb.closed {
		rb.mu.Unlock()
		return nil
	}
	rb.closed = true
	parts := make([]*partState, 0, len(rb.parts))
	for _, st := range rb.parts {
		parts = append(parts, st)
	}
	rb.mu.Unlock()
	close(rb.stop)
	rb.helixP.Close()
	for _, st := range parts {
		rb.stopRoles(st)
	}
	rb.sess.Close()
	return rb.broker.Close()
}

// Fetch, FetchWait, Offsets and Partitions serve from the local broker; the
// log's visibility limit already caps reads at the high watermark.

// Fetch implements BrokerClient.
func (rb *ReplicatedBroker) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	return rb.broker.Fetch(topic, partition, offset, maxBytes)
}

// FetchWait implements BlockingFetcher.
func (rb *ReplicatedBroker) FetchWait(topic string, partition int, offset int64, maxBytes int, wait time.Duration) ([]byte, error) {
	return rb.broker.FetchWait(topic, partition, offset, maxBytes, wait)
}

// Offsets implements BrokerClient.
func (rb *ReplicatedBroker) Offsets(topic string, partition int) (int64, int64, error) {
	return rb.broker.Offsets(topic, partition)
}

// Partitions implements BrokerClient.
func (rb *ReplicatedBroker) Partitions(topic string) (int, error) {
	return rb.broker.Partitions(topic)
}

// HighWatermark returns the partition's high watermark as this broker knows
// it (leaders: authoritative; followers: last value learned from the
// leader). Diagnostics and consistency checking.
func (rb *ReplicatedBroker) HighWatermark(topic string, partition int) int64 {
	if st, ok := rb.lookup(topic, partition); ok {
		st.mu.Lock()
		if st.role == helix.StateLeader {
			hw := st.hw
			st.mu.Unlock()
			return hw
		}
		st.mu.Unlock()
	}
	l, err := rb.broker.log(topic, partition)
	if err != nil {
		return 0
	}
	return l.Latest()
}

// Role returns the broker's current LeaderStandby state for a partition.
func (rb *ReplicatedBroker) Role(topic string, partition int) helix.State {
	st, ok := rb.lookup(topic, partition)
	if !ok {
		return helix.StateOffline
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.role
}

// ClientResolver turns an instance name into the client surface of that
// broker.
type ClientResolver func(instance string) (ClusterPeer, error)

// RoutedClient is a BrokerClient + BlockingFetcher over a replicated
// cluster: every operation resolves the partition leader from the zk ISR
// metadata (with a local cache), and leader changes — surfacing as
// ErrNotLeader or transport failures — invalidate the cache and retry, so a
// producer mid-stream rides a failover without seeing it.
type RoutedClient struct {
	sess    *zk.Session
	cluster string
	resolve ClientResolver
	retry   resilience.Policy

	mu      sync.Mutex
	leaders map[topicPartition]string
}

// NewRoutedClient builds a client over the cluster's zk metadata.
func NewRoutedClient(srv *zk.Server, cluster string, resolve ClientResolver) *RoutedClient {
	return &RoutedClient{
		sess:    srv.NewSession(),
		cluster: cluster,
		resolve: resolve,
		retry: resilience.Policy{
			MaxAttempts:    10,
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     250 * time.Millisecond,
			Retryable:      retryableRouted,
		},
		leaders: map[topicPartition]string{},
	}
}

// errNoLeader marks a partition whose election has not completed yet.
var errNoLeader = errors.New("kafka: no leader elected")

func retryableRouted(err error) bool {
	// ErrBreakerOpen is deliberately non-transient for a single endpoint
	// (resilience.IsTransient): hammering one broker's open breaker cannot
	// help. Routed clients walk a broker *list*, though, and an open breaker
	// on the cached leader is exactly the moment to invalidate the cache and
	// try the next broker — otherwise a dead leader stays pinned until its
	// breaker half-opens and every request fails fast in the meantime.
	return resilience.IsTransient(err) ||
		errors.Is(err, resilience.ErrBreakerOpen) ||
		errors.Is(err, ErrNotLeader) ||
		errors.Is(err, ErrNotEnoughReplicas) ||
		errors.Is(err, ErrAckTimeout) ||
		errors.Is(err, errNoLeader)
}

// SetRetryPolicy overrides the routing retry policy (tests). The Retryable
// classifier is preserved.
func (rc *RoutedClient) SetRetryPolicy(p resilience.Policy) {
	p.Retryable = retryableRouted
	rc.retry = p
}

func (rc *RoutedClient) leader(tp topicPartition) (string, error) {
	rc.mu.Lock()
	if inst, ok := rc.leaders[tp]; ok {
		rc.mu.Unlock()
		return inst, nil
	}
	rc.mu.Unlock()
	data, _, err := rc.sess.Get(isrPath(rc.cluster, tp.topic, tp.partition))
	if err != nil {
		return "", fmt.Errorf("%w: %s/%d", errNoLeader, tp.topic, tp.partition)
	}
	var rec isrRecord
	if json.Unmarshal(data, &rec) != nil || rec.Leader == "" {
		return "", fmt.Errorf("%w: %s/%d", errNoLeader, tp.topic, tp.partition)
	}
	rc.mu.Lock()
	rc.leaders[tp] = rec.Leader
	rc.mu.Unlock()
	return rec.Leader, nil
}

func (rc *RoutedClient) invalidate(tp topicPartition) {
	rc.mu.Lock()
	delete(rc.leaders, tp)
	rc.mu.Unlock()
}

// do runs fn against the partition leader, re-resolving and retrying on
// leader changes and transient failures.
func (rc *RoutedClient) do(topic string, partition int, fn func(ClusterPeer) error) error {
	tp := topicPartition{topic, partition}
	return resilience.Retry(context.Background(), rc.retry, func() error {
		inst, err := rc.leader(tp)
		if err != nil {
			return err
		}
		peer, err := rc.resolve(inst)
		if err != nil {
			rc.invalidate(tp)
			return err
		}
		if err := fn(peer); err != nil {
			if retryableRouted(err) {
				rc.invalidate(tp)
			}
			return err
		}
		return nil
	})
}

// Produce implements BrokerClient. Retrying across ack timeouts and
// failovers makes delivery at-least-once: an append whose ack was lost may
// be re-sent to the new leader.
func (rc *RoutedClient) Produce(topic string, partition int, set MessageSet) (int64, error) {
	var off int64
	err := rc.do(topic, partition, func(p ClusterPeer) error {
		var err error
		off, err = p.Produce(topic, partition, set)
		return err
	})
	return off, err
}

// Fetch implements BrokerClient.
func (rc *RoutedClient) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	var chunk []byte
	err := rc.do(topic, partition, func(p ClusterPeer) error {
		var err error
		chunk, err = p.Fetch(topic, partition, offset, maxBytes)
		return err
	})
	return chunk, err
}

// FetchWait implements BlockingFetcher.
func (rc *RoutedClient) FetchWait(topic string, partition int, offset int64, maxBytes int, wait time.Duration) ([]byte, error) {
	var chunk []byte
	err := rc.do(topic, partition, func(p ClusterPeer) error {
		var err error
		chunk, err = p.FetchWait(topic, partition, offset, maxBytes, wait)
		return err
	})
	return chunk, err
}

// Offsets implements BrokerClient.
func (rc *RoutedClient) Offsets(topic string, partition int) (int64, int64, error) {
	var earliest, latest int64
	err := rc.do(topic, partition, func(p ClusterPeer) error {
		var err error
		earliest, latest, err = p.Offsets(topic, partition)
		return err
	})
	return earliest, latest, err
}

// Partitions implements BrokerClient from the topic metadata znode.
func (rc *RoutedClient) Partitions(topic string) (int, error) {
	data, _, err := rc.sess.Get(topicMetaPath(rc.cluster, topic))
	if err != nil {
		return 0, fmt.Errorf("kafka: topic %q not registered: %w", topic, err)
	}
	n, err := strconv.Atoi(string(data))
	if err != nil {
		return 0, fmt.Errorf("kafka: topic %q metadata corrupt: %w", topic, err)
	}
	return n, nil
}

// Close releases the zk session.
func (rc *RoutedClient) Close() { rc.sess.Close() }

// ReplicatedCluster wires a whole in-process replicated cluster: zk, the
// Helix controller with ISR-aware election, and one ReplicatedBroker per
// data directory. The unit chaos and consistency suites drive it directly;
// cmd/kafka-broker exposes the same wiring over TCP.
type ReplicatedCluster struct {
	cfg  ReplicatedConfig
	bcfg BrokerConfig

	ZK         *zk.Server
	Controller *helix.Controller
	sess       *zk.Session

	mu      sync.Mutex
	brokers map[string]*ReplicatedBroker
}

// NewReplicatedCluster starts one broker per data directory, all joined to a
// fresh zk namespace and controller.
func NewReplicatedCluster(dataDirs []string, bcfg BrokerConfig, cfg ReplicatedConfig) (*ReplicatedCluster, error) {
	cfg.withDefaults()
	bcfg.withDefaults()
	srv := zk.NewServer()
	ctrl, err := helix.NewController(srv, cfg.Cluster)
	if err != nil {
		return nil, err
	}
	c := &ReplicatedCluster{
		cfg:        cfg,
		bcfg:       bcfg,
		ZK:         srv,
		Controller: ctrl,
		sess:       srv.NewSession(),
		brokers:    map[string]*ReplicatedBroker{},
	}
	for i, dir := range dataDirs {
		b, err := NewBroker(i, dir, bcfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		rb, err := NewReplicatedBroker(b, srv, cfg, c.peer)
		if err != nil {
			b.Close()
			c.Close()
			return nil, err
		}
		c.mu.Lock()
		c.brokers[rb.Instance()] = rb
		c.mu.Unlock()
	}
	ctrl.Start()
	return c, nil
}

func (c *ReplicatedCluster) peer(instance string) (ReplicaPeer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rb, ok := c.brokers[instance]
	if !ok {
		return nil, fmt.Errorf("kafka: unknown broker %q", instance)
	}
	return rb, nil
}

func (c *ReplicatedCluster) clientPeer(instance string) (ClusterPeer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rb, ok := c.brokers[instance]
	if !ok {
		return nil, fmt.Errorf("kafka: unknown broker %q", instance)
	}
	return rb, nil
}

// Broker returns a broker by instance name ("broker-<id>").
func (c *ReplicatedCluster) Broker(instance string) *ReplicatedBroker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.brokers[instance]
}

// Brokers lists the live brokers sorted by instance name.
func (c *ReplicatedCluster) Brokers() []*ReplicatedBroker {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.brokers))
	for n := range c.brokers {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*ReplicatedBroker, 0, len(names))
	for _, n := range names {
		out = append(out, c.brokers[n])
	}
	return out
}

// AddTopic registers a topic: its partition count goes into zk for clients,
// the Helix resource (LeaderStandby) triggers elections, and the ISR
// preference filter keeps out-of-sync replicas from ever being promoted —
// the invariant that makes high-watermark acks loss-free.
func (c *ReplicatedCluster) AddTopic(topic string) error {
	n := c.bcfg.PartitionsPerTopic
	if err := c.sess.CreateAll(topicMetaPath(c.cfg.Cluster, topic), []byte(strconv.Itoa(n))); err != nil {
		return err
	}
	c.Controller.SetPreferenceFilter(topic, c.isrPreference(topic))
	return c.Controller.AddResource(&helix.Resource{
		Name:          topic,
		NumPartitions: n,
		Replicas:      c.cfg.Replicas,
		StateModel:    helix.ModelLeaderStandby,
	})
}

// isrPreference orders a partition's election candidates: the recorded
// leader first (stickiness), then other ISR members, then the rest. An
// out-of-sync replica is only promoted when no ISR member survives — and
// then only because losing unacked data beats losing the whole partition
// (Kafka's unclean election, which MinISR >= 2 makes unreachable for acked
// messages while any single failure is in play).
func (c *ReplicatedCluster) isrPreference(topic string) helix.PreferenceFilter {
	return ISRPreference(c.sess, c.cfg.Cluster, topic)
}

// ISRPreference builds the election preference filter for a topic from the
// cluster's zk metadata; exported so TCP deployments (cmd/kafka-broker and
// the chaos suites) can wire the same election policy by hand.
func ISRPreference(sess *zk.Session, cluster, topic string) helix.PreferenceFilter {
	return func(partition int, chosen []string) []string {
		data, _, err := sess.Get(isrPath(cluster, topic, partition))
		if err != nil {
			return chosen
		}
		var rec isrRecord
		if json.Unmarshal(data, &rec) != nil {
			return chosen
		}
		inISR := map[string]bool{}
		for _, m := range rec.ISR {
			inISR[m] = true
		}
		var front, back []string
		for _, inst := range chosen {
			switch {
			case inst == rec.Leader && inISR[inst]:
				front = append([]string{inst}, front...)
			case inISR[inst]:
				front = append(front, inst)
			default:
				back = append(back, inst)
			}
		}
		return append(front, back...)
	}
}

// Client returns a leader-routing client over the cluster.
func (c *ReplicatedCluster) Client() *RoutedClient {
	return NewRoutedClient(c.ZK, c.cfg.Cluster, c.clientPeer)
}

// Kill removes a broker abruptly (its zk session expires, triggering
// failover) and returns it; nil when unknown.
func (c *ReplicatedCluster) Kill(instance string) *ReplicatedBroker {
	c.mu.Lock()
	rb, ok := c.brokers[instance]
	if ok {
		delete(c.brokers, instance)
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	rb.Close()
	return rb
}

// LeaderOf resolves the current leader instance of a partition from zk.
func (c *ReplicatedCluster) LeaderOf(topic string, partition int) (string, error) {
	data, _, err := c.sess.Get(isrPath(c.cfg.Cluster, topic, partition))
	if err != nil {
		return "", err
	}
	var rec isrRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return "", err
	}
	if rec.Leader == "" {
		return "", fmt.Errorf("%w: %s/%d", errNoLeader, topic, partition)
	}
	return rec.Leader, nil
}

// ISROf returns the recorded in-sync replica set of a partition.
func (c *ReplicatedCluster) ISROf(topic string, partition int) []string {
	data, _, err := c.sess.Get(isrPath(c.cfg.Cluster, topic, partition))
	if err != nil {
		return nil
	}
	var rec isrRecord
	if json.Unmarshal(data, &rec) != nil {
		return nil
	}
	return rec.ISR
}

// WaitForISR blocks until every partition of the topic has an elected
// leader and at least want ISR members, or the timeout passes.
func (c *ReplicatedCluster) WaitForISR(topic string, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	n := c.bcfg.PartitionsPerTopic
	for {
		ready := 0
		for p := 0; p < n; p++ {
			if len(c.ISROf(topic, p)) >= want {
				ready++
			}
		}
		if ready == n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("kafka: topic %q: %d/%d partitions reached isr>=%d", topic, ready, n, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close shuts down every broker, the controller and zk sessions.
func (c *ReplicatedCluster) Close() {
	c.mu.Lock()
	brokers := make([]*ReplicatedBroker, 0, len(c.brokers))
	for _, rb := range c.brokers {
		brokers = append(brokers, rb)
	}
	c.brokers = map[string]*ReplicatedBroker{}
	c.mu.Unlock()
	for _, rb := range brokers {
		rb.Close()
	}
	c.Controller.Close()
	c.sess.Close()
}
