package kafka

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ReplicaSet implements §V.D's stated future feature, intra-cluster
// replication: every topic partition is written to a leader broker and
// asynchronously replicated to a follower by per-partition fetchers (the
// same pull mechanism consumers use). Reads prefer the leader and fail over
// to the follower when the leader is unreachable, bounding message loss to
// the unreplicated tail.
type ReplicaSet struct {
	leader, follower BrokerClient

	mu         sync.Mutex
	fetchers   map[string]chan struct{} // topic -> stop channel
	leaderUp   atomic.Bool
	replicated atomic.Int64

	wg sync.WaitGroup
}

// NewReplicaSet pairs a leader with a follower.
func NewReplicaSet(leader, follower BrokerClient) *ReplicaSet {
	rs := &ReplicaSet{
		leader:   leader,
		follower: follower,
		fetchers: map[string]chan struct{}{},
	}
	rs.leaderUp.Store(true)
	return rs
}

// Replicated returns how many messages have reached the follower.
func (rs *ReplicaSet) Replicated() int64 { return rs.replicated.Load() }

// SetLeaderUp simulates leader failure/recovery (tests and operators).
func (rs *ReplicaSet) SetLeaderUp(up bool) { rs.leaderUp.Store(up) }

// Produce writes to the leader; the replica fetcher ships it to the
// follower asynchronously. Producing to a topic starts its replication.
func (rs *ReplicaSet) Produce(topic string, partition int, set MessageSet) (int64, error) {
	if !rs.leaderUp.Load() {
		return 0, errors.New("kafka: leader down")
	}
	off, err := rs.leader.Produce(topic, partition, set)
	if err != nil {
		return 0, err
	}
	rs.ensureFetcher(topic)
	return off, nil
}

func (rs *ReplicaSet) ensureFetcher(topic string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, ok := rs.fetchers[topic]; ok {
		return
	}
	stop := make(chan struct{})
	rs.fetchers[topic] = stop
	n, err := rs.leader.Partitions(topic)
	if err != nil {
		return
	}
	for p := 0; p < n; p++ {
		rs.wg.Add(1)
		go rs.replicate(topic, p, stop)
	}
}

// replicate is the follower's fetch loop: exactly a consumer that
// republishes into the follower's log.
func (rs *ReplicaSet) replicate(topic string, partition int, stop chan struct{}) {
	defer rs.wg.Done()
	sc := NewSimpleConsumer(rs.leader, 300<<10)
	var offset int64
	for {
		select {
		case <-stop:
			return
		default:
		}
		if !rs.leaderUp.Load() {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		msgs, err := sc.Consume(topic, partition, offset)
		if err != nil || len(msgs) == 0 {
			if err == nil {
				mReplicaLag.Set(0) // caught up with the leader's head
			}
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		for _, m := range msgs {
			if _, err := rs.follower.Produce(topic, partition, NewMessageSet(m.Payload)); err != nil {
				return
			}
			offset = m.NextOffset
			rs.replicated.Add(1)
			mReplicaMessages.Inc()
		}
		if _, latest, err := rs.leader.Offsets(topic, partition); err == nil {
			if lag := latest - offset; lag >= 0 {
				mReplicaLag.Set(lag)
			}
		}
	}
}

// Fetch reads from the leader, failing over to the follower when the leader
// is down. Note the follower's byte offsets differ from the leader's (its
// log was rewritten by republication), so failing-over consumers restart
// from the follower's earliest offset — the at-least-once contract.
func (rs *ReplicaSet) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	if rs.leaderUp.Load() {
		return rs.leader.Fetch(topic, partition, offset, maxBytes)
	}
	return rs.follower.Fetch(topic, partition, offset, maxBytes)
}

// Offsets consults whichever broker is serving.
func (rs *ReplicaSet) Offsets(topic string, partition int) (int64, int64, error) {
	if rs.leaderUp.Load() {
		return rs.leader.Offsets(topic, partition)
	}
	return rs.follower.Offsets(topic, partition)
}

// Partitions consults whichever broker is serving.
func (rs *ReplicaSet) Partitions(topic string) (int, error) {
	if rs.leaderUp.Load() {
		return rs.leader.Partitions(topic)
	}
	return rs.follower.Partitions(topic)
}

// Close stops every replica fetcher.
func (rs *ReplicaSet) Close() {
	rs.mu.Lock()
	for _, stop := range rs.fetchers {
		close(stop)
	}
	rs.fetchers = map[string]chan struct{}{}
	rs.mu.Unlock()
	rs.wg.Wait()
}
