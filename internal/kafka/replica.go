package kafka

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"datainfra/internal/resilience"
)

// ReplicaSet implements §V.D's stated future feature, intra-cluster
// replication: every topic partition is written to a leader broker and
// asynchronously replicated to a follower by per-partition fetchers (the
// same pull mechanism consumers use). Reads prefer the leader and fail over
// to the follower when the leader is unreachable, bounding message loss to
// the unreplicated tail.
type ReplicaSet struct {
	leader, follower BrokerClient
	retry            resilience.Policy

	mu         sync.Mutex
	fetchers   map[string]chan struct{} // topic -> stop channel
	leaderUp   atomic.Bool
	replicated atomic.Int64

	wg sync.WaitGroup
}

// NewReplicaSet pairs a leader with a follower.
func NewReplicaSet(leader, follower BrokerClient) *ReplicaSet {
	rs := &ReplicaSet{
		leader:   leader,
		follower: follower,
		fetchers: map[string]chan struct{}{},
		retry: resilience.Policy{
			MaxAttempts:    5,
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     100 * time.Millisecond,
		},
	}
	rs.leaderUp.Store(true)
	return rs
}

// SetRetryPolicy overrides the backoff used when republishing to the
// follower fails. Call before the first Produce.
func (rs *ReplicaSet) SetRetryPolicy(p resilience.Policy) { rs.retry = p }

// Replicated returns how many messages have reached the follower.
func (rs *ReplicaSet) Replicated() int64 { return rs.replicated.Load() }

// SetLeaderUp simulates leader failure/recovery (tests and operators).
func (rs *ReplicaSet) SetLeaderUp(up bool) { rs.leaderUp.Store(up) }

// Produce writes to the leader; the replica fetcher ships it to the
// follower asynchronously. Producing to a topic starts its replication.
func (rs *ReplicaSet) Produce(topic string, partition int, set MessageSet) (int64, error) {
	if !rs.leaderUp.Load() {
		return 0, errors.New("kafka: leader down")
	}
	off, err := rs.leader.Produce(topic, partition, set)
	if err != nil {
		return 0, err
	}
	rs.ensureFetcher(topic)
	return off, nil
}

func (rs *ReplicaSet) ensureFetcher(topic string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, ok := rs.fetchers[topic]; ok {
		return
	}
	// Look up the partition count before recording the fetcher: a failed
	// lookup must leave no entry behind, or the next Produce would see the
	// topic as covered and never start replication for it.
	n, err := rs.leader.Partitions(topic)
	if err != nil {
		return
	}
	stop := make(chan struct{})
	rs.fetchers[topic] = stop
	for p := 0; p < n; p++ {
		rs.wg.Add(1)
		go rs.replicate(topic, p, stop)
	}
}

// replicaPollWait is how long a caught-up replica fetcher parks server-side
// in a long-poll before re-checking liveness and stop signals.
const replicaPollWait = 250 * time.Millisecond

// replicate is the follower's fetch loop: exactly a consumer that
// republishes into the follower's log. Leaders that support FetchWait are
// long-polled, so a caught-up fetcher parks on the broker instead of
// sleep-polling the tail.
func (rs *ReplicaSet) replicate(topic string, partition int, stop chan struct{}) {
	defer rs.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	bf, blocking := rs.leader.(BlockingFetcher)
	sc := NewSimpleConsumer(rs.leader, 300<<10)
	var offset int64
	for {
		select {
		case <-stop:
			return
		default:
		}
		if !rs.leaderUp.Load() {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		var msgs []MessageAndOffset
		var err error
		if blocking {
			var chunk []byte
			chunk, err = bf.FetchWait(topic, partition, offset, 300<<10, replicaPollWait)
			if err == nil && len(chunk) > 0 {
				msgs, err = Decode(chunk, offset)
			}
		} else {
			msgs, err = sc.Consume(topic, partition, offset)
		}
		if err != nil || len(msgs) == 0 {
			if err == nil {
				mReplicaLag.Set(0) // caught up with the leader's head
				if blocking {
					continue // FetchWait already waited at the tail
				}
			}
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		for _, m := range msgs {
			payload := m.Payload
			if err := resilience.Retry(ctx, rs.retry, func() error {
				_, err := rs.follower.Produce(topic, partition, NewMessageSet(payload))
				return err
			}); err != nil {
				// The follower stayed unreachable through the backoff:
				// hold the offset and retry the remainder on the next
				// pass instead of silently abandoning the partition.
				break
			}
			offset = m.NextOffset
			rs.replicated.Add(1)
			mReplicaMessages.Inc()
		}
		if _, latest, err := rs.leader.Offsets(topic, partition); err == nil {
			if lag := latest - offset; lag >= 0 {
				mReplicaLag.Set(lag)
			}
		}
	}
}

// Fetch reads from the leader, failing over to the follower when the leader
// is down. Note the follower's byte offsets differ from the leader's (its
// log was rewritten by republication), so failing-over consumers restart
// from the follower's earliest offset — the at-least-once contract.
func (rs *ReplicaSet) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	if rs.leaderUp.Load() {
		return rs.leader.Fetch(topic, partition, offset, maxBytes)
	}
	return rs.follower.Fetch(topic, partition, offset, maxBytes)
}

// Offsets consults whichever broker is serving.
func (rs *ReplicaSet) Offsets(topic string, partition int) (int64, int64, error) {
	if rs.leaderUp.Load() {
		return rs.leader.Offsets(topic, partition)
	}
	return rs.follower.Offsets(topic, partition)
}

// Partitions consults whichever broker is serving.
func (rs *ReplicaSet) Partitions(topic string) (int, error) {
	if rs.leaderUp.Load() {
		return rs.leader.Partitions(topic)
	}
	return rs.follower.Partitions(topic)
}

// Close stops every replica fetcher.
func (rs *ReplicaSet) Close() {
	rs.mu.Lock()
	for _, stop := range rs.fetchers {
		close(stop)
	}
	rs.fetchers = map[string]chan struct{}{}
	rs.mu.Unlock()
	rs.wg.Wait()
}
