package kafka

import "datainfra/internal/metrics"

// Process-wide instruments for the Kafka hot paths (documented in
// OPERATIONS.md, checked by cmd/metriclint). Brokers count requests and
// bytes through the log; producers and consumers count message flow; the
// group consumer and replica fetcher expose lag, the operational signal the
// paper's audit pipeline (§V.C) exists to watch. Offsets in this Kafka
// generation are byte positions in the partition log, so lag is measured in
// bytes.
var (
	mProduceRequests = metrics.RegisterCounter("kafka_produce_requests_total",
		"produce requests handled by brokers")
	mProduceBytes = metrics.RegisterCounter("kafka_produce_bytes_total",
		"message-set bytes appended to broker logs")
	mFetchRequests = metrics.RegisterCounter("kafka_fetch_requests_total",
		"fetch requests handled by brokers")
	mFetchBytes = metrics.RegisterCounter("kafka_fetch_bytes_total",
		"raw log bytes returned to fetchers")
	mProducerMessages = metrics.RegisterCounter("kafka_producer_messages_total",
		"messages accepted by producers (batched, not yet necessarily shipped)")
	mProducerBytes = metrics.RegisterCounter("kafka_producer_wire_bytes_total",
		"batch bytes shipped to brokers (after optional compression)")
	mConsumerMessages = metrics.RegisterCounter("kafka_consumer_messages_total",
		"messages decoded by simple consumers (includes group fetchers)")
	mGroupRebalances = metrics.RegisterCounter("kafka_group_rebalances_total",
		"consumer-group rebalances executed")
	mGroupLag = metrics.RegisterGaugeVec("kafka_group_lag_bytes",
		"byte distance between the partition head and a group's committed position",
		"partition")
	mReplicaMessages = metrics.RegisterCounter("kafka_replica_messages_total",
		"messages republished by the intra-cluster replica fetcher")
	mReplicaLag = metrics.RegisterGauge("kafka_replica_lag_bytes",
		"byte distance between the leader log head and the replica fetcher")
	mISRSize = metrics.RegisterGaugeVec("kafka_isr_size_nodes",
		"replicas currently in sync on partitions led by this process",
		"partition")
	mISRShrinks = metrics.RegisterCounter("kafka_isr_shrinks_total",
		"followers evicted from an in-sync replica set for lagging or dying")
	mISRExpands = metrics.RegisterCounter("kafka_isr_expands_total",
		"followers readmitted to an in-sync replica set after catching up")
	mISRAckTimeouts = metrics.RegisterCounter("kafka_isr_ack_timeouts_total",
		"produces that timed out waiting for the high watermark to cover them")
	mPartitionHW = metrics.RegisterGaugeVec("kafka_partition_hw_bytes",
		"high watermark of partitions led by this process",
		"partition")
	mMirrorMessages = metrics.RegisterCounter("kafka_mirror_messages_total",
		"messages republished into the destination cluster by MirrorMaker (includes redelivered duplicates)")
	mMirrorBytes = metrics.RegisterCounter("kafka_mirror_bytes_total",
		"message-set bytes produced into the destination cluster by MirrorMaker")
	mMirrorLag = metrics.RegisterGaugeVec("kafka_mirror_lag_bytes",
		"source log head minus the mirror's position on a partition",
		"partition")
	mMirrorCheckpoints = metrics.RegisterCounter("kafka_mirror_checkpoints_total",
		"mirror checkpoint file writes (one per mirrored batch, atomic rename)")
	mMirrorCheckpointPos = metrics.RegisterGaugeVec("kafka_mirror_checkpoint_bytes",
		"last checkpointed source offset of a mirrored partition",
		"partition")
	mMirrorErrors = metrics.RegisterCounter("kafka_mirror_errors_total",
		"source fetch, decode, destination produce and checkpoint failures absorbed by the mirror's retry loop")
)
