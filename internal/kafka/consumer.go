package kafka

import (
	"errors"
	"math/rand"
	"time"
)

// BlockingFetcher is the optional long-poll extension of BrokerClient:
// FetchWait blocks server-side until data is available at offset or wait
// elapses, returning an empty chunk on timeout. *Broker (in-process) and
// *RemoteBroker (TCP, over the mux) both implement it; consumers probe for
// it so a caught-up stream parks on the broker instead of sleep-polling.
type BlockingFetcher interface {
	FetchWait(topic string, partition int, offset int64, maxBytes int, wait time.Duration) ([]byte, error)
}

// SimpleConsumer pulls raw chunks from one broker and decodes them — the
// low-level consumption primitive. The consumer, not the broker, tracks how
// much it has consumed (§V.B "distributed consumer state").
type SimpleConsumer struct {
	broker   BrokerClient
	maxBytes int
}

// NewSimpleConsumer builds a consumer; maxBytes is the per-fetch cap
// (typically hundreds of kilobytes, §V.B).
func NewSimpleConsumer(broker BrokerClient, maxBytes int) *SimpleConsumer {
	if maxBytes == 0 {
		maxBytes = 300 << 10
	}
	return &SimpleConsumer{broker: broker, maxBytes: maxBytes}
}

// Consume fetches and decodes messages from offset. An empty result means
// caught up. The returned messages carry the offsets to resume from.
func (c *SimpleConsumer) Consume(topic string, partition int, offset int64) ([]MessageAndOffset, error) {
	chunk, err := c.broker.Fetch(topic, partition, offset, c.maxBytes)
	if err != nil {
		return nil, err
	}
	if len(chunk) == 0 {
		return nil, nil
	}
	msgs, err := Decode(chunk, offset)
	if err == nil {
		mConsumerMessages.Add(int64(len(msgs)))
	}
	return msgs, err
}

// EarliestOffset returns the first valid offset of the partition.
func (c *SimpleConsumer) EarliestOffset(topic string, partition int) (int64, error) {
	earliest, _, err := c.broker.Offsets(topic, partition)
	return earliest, err
}

// LatestOffset returns the offset one past the last flushed message.
func (c *SimpleConsumer) LatestOffset(topic string, partition int) (int64, error) {
	_, latest, err := c.broker.Offsets(topic, partition)
	return latest, err
}

// Stream is the never-terminating message iterator of §V.A: Next blocks
// until a message is published or the stream is closed. Under the covers it
// issues pull requests keeping a buffer of decoded messages ready, and
// pipelines the fetch of the next chunk while the current one drains — the
// network round trip hides behind decode-and-deliver. At the log tail it
// long-polls brokers that support it (BlockingFetcher) and falls back to a
// jittered, capped backoff otherwise, so an idle consumer never busy-spins.
type Stream struct {
	consumer  *SimpleConsumer
	topic     string
	partition int
	offset    int64 // next offset the caller has not yet consumed
	fetchAt   int64 // next offset to fetch (past the buffer and any prefetch)
	buf       []MessageAndOffset
	closed    chan struct{}
	poll      time.Duration // base backoff for the non-blocking fallback
	maxWait   time.Duration // server-side long-poll budget per fetch

	pre      chan fetchResult // one-slot prefetch pipeline
	inflight bool
}

type fetchResult struct {
	msgs []MessageAndOffset
	err  error
}

// StreamFrom opens a blocking iterator over (topic, partition) starting at
// offset (which may be an old offset: consumers can deliberately rewind and
// re-consume, §V.B).
func (c *SimpleConsumer) StreamFrom(topic string, partition int, offset int64) *Stream {
	return &Stream{
		consumer:  c,
		topic:     topic,
		partition: partition,
		offset:    offset,
		fetchAt:   offset,
		closed:    make(chan struct{}),
		poll:      2 * time.Millisecond,
		maxWait:   250 * time.Millisecond,
		pre:       make(chan fetchResult, 1),
	}
}

// ErrStreamClosed is returned by Next after Close.
var ErrStreamClosed = errors.New("kafka: stream closed")

// Next returns the next message, blocking until one is available. It only
// fails when the stream is closed or the log rejects our offset.
func (s *Stream) Next() (MessageAndOffset, error) {
	backoff := s.poll
	for {
		if len(s.buf) > 0 {
			m := s.buf[0]
			s.buf = s.buf[1:]
			s.offset = m.NextOffset
			return m, nil
		}
		select {
		case <-s.closed:
			return MessageAndOffset{}, ErrStreamClosed
		default:
		}
		// Harvest the pipelined fetch first: it was issued when the previous
		// buffer loaded, so by now it has usually already landed.
		if s.inflight {
			var r fetchResult
			select {
			case r = <-s.pre:
			case <-s.closed:
				return MessageAndOffset{}, ErrStreamClosed
			}
			s.inflight = false
			if r.err != nil {
				return MessageAndOffset{}, r.err
			}
			if len(r.msgs) > 0 {
				s.load(r.msgs)
				continue
			}
			// The prefetch found nothing: we are at the tail.
		}
		msgs, err := s.fetchTail(&backoff)
		if err != nil {
			return MessageAndOffset{}, err
		}
		if len(msgs) > 0 {
			s.load(msgs)
		}
	}
}

// load installs a fetched batch and pipelines the fetch of the chunk after
// it, overlapping the next network round trip with consumption of this one.
func (s *Stream) load(msgs []MessageAndOffset) {
	s.buf = msgs
	s.fetchAt = msgs[len(msgs)-1].NextOffset
	s.inflight = true
	off := s.fetchAt
	go func() {
		msgs, err := s.consumer.Consume(s.topic, s.partition, off)
		s.pre <- fetchResult{msgs: msgs, err: err}
	}()
}

// fetchTail fetches when the stream is (or may be) caught up: a long poll
// when the broker supports it, otherwise a plain fetch followed by a
// jittered backoff sleep that doubles to a cap — never the fixed-interval
// busy-poll. A nil, nil return means still caught up; the caller loops.
func (s *Stream) fetchTail(backoff *time.Duration) ([]MessageAndOffset, error) {
	if bf, ok := s.consumer.broker.(BlockingFetcher); ok {
		chunk, err := bf.FetchWait(s.topic, s.partition, s.fetchAt, s.consumer.maxBytes, s.maxWait)
		if err != nil || len(chunk) == 0 {
			return nil, err
		}
		msgs, err := Decode(chunk, s.fetchAt)
		if err == nil {
			mConsumerMessages.Add(int64(len(msgs)))
		}
		return msgs, err
	}
	msgs, err := s.consumer.Consume(s.topic, s.partition, s.fetchAt)
	if err != nil || len(msgs) > 0 {
		return msgs, err
	}
	d := *backoff + time.Duration(rand.Int63n(int64(*backoff)+1))
	select {
	case <-s.closed:
		return nil, ErrStreamClosed
	case <-time.After(d):
	}
	if *backoff < 50*time.Millisecond {
		*backoff *= 2
	}
	return nil, nil
}

// Offset returns the offset of the next message Next will return — the
// caller's resume point.
func (s *Stream) Offset() int64 { return s.offset }

// Close unblocks Next.
func (s *Stream) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
}
