package kafka

import (
	"errors"
	"time"
)

// SimpleConsumer pulls raw chunks from one broker and decodes them — the
// low-level consumption primitive. The consumer, not the broker, tracks how
// much it has consumed (§V.B "distributed consumer state").
type SimpleConsumer struct {
	broker   BrokerClient
	maxBytes int
}

// NewSimpleConsumer builds a consumer; maxBytes is the per-fetch cap
// (typically hundreds of kilobytes, §V.B).
func NewSimpleConsumer(broker BrokerClient, maxBytes int) *SimpleConsumer {
	if maxBytes == 0 {
		maxBytes = 300 << 10
	}
	return &SimpleConsumer{broker: broker, maxBytes: maxBytes}
}

// Consume fetches and decodes messages from offset. An empty result means
// caught up. The returned messages carry the offsets to resume from.
func (c *SimpleConsumer) Consume(topic string, partition int, offset int64) ([]MessageAndOffset, error) {
	chunk, err := c.broker.Fetch(topic, partition, offset, c.maxBytes)
	if err != nil {
		return nil, err
	}
	if len(chunk) == 0 {
		return nil, nil
	}
	msgs, err := Decode(chunk, offset)
	if err == nil {
		mConsumerMessages.Add(int64(len(msgs)))
	}
	return msgs, err
}

// EarliestOffset returns the first valid offset of the partition.
func (c *SimpleConsumer) EarliestOffset(topic string, partition int) (int64, error) {
	earliest, _, err := c.broker.Offsets(topic, partition)
	return earliest, err
}

// LatestOffset returns the offset one past the last flushed message.
func (c *SimpleConsumer) LatestOffset(topic string, partition int) (int64, error) {
	_, latest, err := c.broker.Offsets(topic, partition)
	return latest, err
}

// Stream is the never-terminating message iterator of §V.A: Next blocks
// until a message is published or the stream is closed. Under the covers it
// issues pull requests keeping a buffer of decoded messages ready.
type Stream struct {
	consumer  *SimpleConsumer
	topic     string
	partition int
	offset    int64
	buf       []MessageAndOffset
	closed    chan struct{}
	poll      time.Duration
}

// StreamFrom opens a blocking iterator over (topic, partition) starting at
// offset (which may be an old offset: consumers can deliberately rewind and
// re-consume, §V.B).
func (c *SimpleConsumer) StreamFrom(topic string, partition int, offset int64) *Stream {
	return &Stream{
		consumer:  c,
		topic:     topic,
		partition: partition,
		offset:    offset,
		closed:    make(chan struct{}),
		poll:      2 * time.Millisecond,
	}
}

// ErrStreamClosed is returned by Next after Close.
var ErrStreamClosed = errors.New("kafka: stream closed")

// Next returns the next message, blocking until one is available. It only
// fails when the stream is closed or the log rejects our offset.
func (s *Stream) Next() (MessageAndOffset, error) {
	for {
		if len(s.buf) > 0 {
			m := s.buf[0]
			s.buf = s.buf[1:]
			s.offset = m.NextOffset
			return m, nil
		}
		select {
		case <-s.closed:
			return MessageAndOffset{}, ErrStreamClosed
		default:
		}
		msgs, err := s.consumer.Consume(s.topic, s.partition, s.offset)
		if err != nil {
			return MessageAndOffset{}, err
		}
		if len(msgs) == 0 {
			select {
			case <-s.closed:
				return MessageAndOffset{}, ErrStreamClosed
			case <-time.After(s.poll):
			}
			continue
		}
		s.buf = msgs
	}
}

// Offset returns the next offset the stream will fetch.
func (s *Stream) Offset() int64 { return s.offset }

// Close unblocks Next.
func (s *Stream) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
}
