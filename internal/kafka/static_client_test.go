package kafka

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// staticClientRig: an ISR-replicated cluster with every broker listening on
// a real TCP port, plus a StaticClient over the full address list — the
// deployment shape of cmd/kafka-broker -replicas N with an external client.
type staticClientRig struct {
	c     *ReplicatedCluster
	sc    *StaticClient
	addrs []string // addrs[i] serves broker-i
}

func newStaticClientRig(t *testing.T, replicas int) *staticClientRig {
	t.Helper()
	dirs := make([]string, replicas)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	c, err := NewReplicatedCluster(dirs,
		BrokerConfig{PartitionsPerTopic: 1, Log: LogConfig{FlushMessages: 1}},
		ReplicatedConfig{Cluster: "sc-test", Replicas: replicas, MinISR: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	rig := &staticClientRig{c: c}
	for i, rb := range c.Brokers() {
		addr, err := rb.Broker().Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		_ = i
		rig.addrs = append(rig.addrs, addr)
	}
	if err := c.AddTopic("events"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("events", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rig.sc = NewStaticClient(rig.addrs, time.Second)
	t.Cleanup(rig.sc.Close)
	return rig
}

// leaderIndex resolves the current leader's position in the client's broker
// list (instance names are "broker-<i>" and addrs[i] serves broker-i).
func (rig *staticClientRig) leaderIndex(t *testing.T) int {
	t.Helper()
	leader, err := rig.c.LeaderOf("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	var idx int
	if _, err := fmt.Sscanf(leader, "broker-%d", &idx); err != nil {
		t.Fatalf("unexpected leader instance %q: %v", leader, err)
	}
	return idx
}

// cachedLeader reads the client's leader cache for events/0.
func (rig *staticClientRig) cachedLeader() (int, bool) {
	rig.sc.mu.Lock()
	defer rig.sc.mu.Unlock()
	i, ok := rig.sc.leader[topicPartition{"events", 0}]
	return i, ok
}

// TestStaticClientLeaderCacheWalk: the first produce discovers the leader by
// walking the broker list past ErrNotLeader answers and remembers it; after
// the leader is killed the cached entry is invalidated and the walk
// converges on the promoted replica — while every acked produce stays
// readable at its offset.
func TestStaticClientLeaderCacheWalk(t *testing.T) {
	rig := newStaticClientRig(t, 3)

	if _, ok := rig.cachedLeader(); ok {
		t.Fatal("leader cache populated before any request")
	}
	off0, err := rig.sc.Produce("events", 0, NewMessageSet([]byte("m0")))
	if err != nil {
		t.Fatal(err)
	}
	cached, ok := rig.cachedLeader()
	if !ok {
		t.Fatal("leader cache empty after a successful produce")
	}
	if want := rig.leaderIndex(t); cached != want {
		t.Fatalf("cached leader %d, zk says %d", cached, want)
	}

	// Kill the leader out from under the cache.
	leader, _ := rig.c.LeaderOf("events", 0)
	rig.c.Kill(leader)
	off1, err := rig.sc.Produce("events", 0, NewMessageSet([]byte("m1")))
	if err != nil {
		t.Fatalf("produce across failover: %v", err)
	}
	if off1 <= off0 {
		t.Fatalf("offset went backwards across failover: %d then %d", off0, off1)
	}
	cached, ok = rig.cachedLeader()
	if !ok {
		t.Fatal("leader cache empty after failover produce")
	}
	if want := rig.leaderIndex(t); cached != want {
		t.Fatalf("cached leader %d after failover, zk says %d", cached, want)
	}

	// Both acked messages must be served by the promoted leader.
	assertLogContains(t, rig.sc, map[int64]string{off0: "m0", off1: "m1"})
}

// TestStaticClientConcurrentFailover: many goroutines share one StaticClient
// while the partition leader is killed mid-stream. Every acknowledged
// produce must keep its offset (unique, stable, re-readable) and the shared
// leader cache must converge — concurrent invalidate/remember races may
// never wedge the client.
func TestStaticClientConcurrentFailover(t *testing.T) {
	rig := newStaticClientRig(t, 3)

	const (
		producers   = 8
		perProducer = 30
	)
	type ack struct {
		offset  int64
		payload string
	}
	var (
		mu    sync.Mutex
		acked []ack
		wg    sync.WaitGroup
	)
	killAt := make(chan struct{})
	var killOnce sync.Once
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if p == 0 && i == perProducer/3 {
					killOnce.Do(func() { close(killAt) })
				}
				payload := fmt.Sprintf("p%d-%d", p, i)
				off, err := rig.sc.Produce("events", 0, NewMessageSet([]byte(payload)))
				if err != nil {
					// A produce rejected during the election window is
					// allowed; an acked one is the contract under test.
					continue
				}
				mu.Lock()
				acked = append(acked, ack{off, payload})
				mu.Unlock()
			}
		}(p)
	}
	go func() {
		<-killAt
		leader, err := rig.c.LeaderOf("events", 0)
		if err == nil {
			rig.c.Kill(leader)
		}
	}()
	wg.Wait()

	if len(acked) < producers*perProducer/2 {
		t.Fatalf("only %d/%d produces acked across one failover", len(acked), producers*perProducer)
	}
	seen := map[int64]string{}
	for _, a := range acked {
		if prev, dup := seen[a.offset]; dup {
			t.Fatalf("offset %d acked twice: %q and %q", a.offset, prev, a.payload)
		}
		seen[a.offset] = a.payload
	}
	if cached, ok := rig.cachedLeader(); !ok {
		t.Fatal("leader cache empty after the run")
	} else if want := rig.leaderIndex(t); cached != want {
		t.Fatalf("cached leader %d after failover, zk says %d", cached, want)
	}
	assertLogContains(t, rig.sc, seen)
}

// assertLogContains drains events/0 and checks that every acked offset holds
// exactly its acked payload.
func assertLogContains(t *testing.T, sc *StaticClient, want map[int64]string) {
	t.Helper()
	earliest, latest, err := sc.Offsets("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]string{}
	offset := earliest
	for offset < latest {
		chunk, err := sc.Fetch("events", 0, offset, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		msgs, err := Decode(chunk, offset)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			t.Fatalf("empty fetch at offset %d (log end %d)", offset, latest)
		}
		for _, m := range msgs {
			got[offset] = string(m.Payload)
			offset = m.NextOffset
		}
	}
	for off, payload := range want {
		if got[off] != payload {
			t.Fatalf("offset %d: log holds %q, acked %q", off, got[off], payload)
		}
	}
}
