package kafka

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCreateMessageStreamsDistributes(t *testing.T) {
	srv, clients, raw := groupRig(t, 1, 4)
	g, err := NewGroupConsumer(srv, "streams", "c1", []string{"t"}, clients, GroupConfig{FromEarliest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	streams := g.CreateMessageStreams("t", 2)
	if len(streams) != 2 {
		t.Fatalf("%d streams", len(streams))
	}
	var mu sync.Mutex
	perStream := make([]int, 2)
	partitionStream := map[PartitionID]int{}
	ordered := map[PartitionID][]int64{}
	var wg sync.WaitGroup
	for i, st := range streams {
		wg.Add(1)
		go func(i int, st <-chan GroupMsg) {
			defer wg.Done()
			for m := range st {
				mu.Lock()
				perStream[i]++
				if prev, seen := partitionStream[m.Partition]; seen && prev != i {
					t.Errorf("partition %v split across streams %d and %d", m.Partition, prev, i)
				}
				partitionStream[m.Partition] = i
				ordered[m.Partition] = append(ordered[m.Partition], m.NextOffset)
				mu.Unlock()
			}
		}(i, st)
	}

	p := NewProducer(raw[0], ProducerConfig{BatchSize: 10})
	const total = 200
	for i := 0; i < total; i++ {
		p.Send("t", []byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("m%d", i)))
	}
	p.Flush()
	p.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		got := perStream[0] + perStream[1]
		mu.Unlock()
		if got >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams received %d/%d", got, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.Close() // closes the member feed; demux closes the sub-streams
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if perStream[0] == 0 || perStream[1] == 0 {
		t.Fatalf("distribution skewed: %v", perStream)
	}
	// per-partition order preserved within its stream
	for p, offs := range ordered {
		for i := 1; i < len(offs); i++ {
			if offs[i] <= offs[i-1] {
				t.Fatalf("partition %v out of order: %v", p, offs)
			}
		}
	}
}

func TestCreateMessageStreamsSingle(t *testing.T) {
	srv, clients, raw := groupRig(t, 1, 2)
	g, err := NewGroupConsumer(srv, "single", "c1", []string{"t"}, clients, GroupConfig{FromEarliest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	streams := g.CreateMessageStreams("t", 0) // clamps to 1
	if len(streams) != 1 {
		t.Fatalf("%d streams", len(streams))
	}
	p := NewProducer(raw[0], ProducerConfig{BatchSize: 1})
	p.SendTo("t", 0, []byte("only"))
	p.Close()
	select {
	case m := <-streams[0]:
		if string(m.Payload) != "only" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream never delivered")
	}
}
