package kafka

import "datainfra/internal/ring"

// CreateMessageStreams is the §V.A consumer API: it splits this group
// member's feed for a topic into n sub-streams ("the messages published to
// that topic will be evenly distributed into these sub-streams"). A
// partition's messages always land in the same sub-stream, so per-partition
// ordering survives the split; each stream is the never-terminating iterator
// the paper describes (ranging over the channel blocks until messages
// arrive).
//
// Call it once per topic; the demultiplexer consumes the member's merged
// feed, so combining it with direct reads of Messages() would race.
func (g *GroupConsumer) CreateMessageStreams(topic string, n int) []<-chan GroupMsg {
	if n < 1 {
		n = 1
	}
	outs := make([]chan GroupMsg, n)
	for i := range outs {
		outs[i] = make(chan GroupMsg, g.cfg.StreamBuffer/n+1)
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			for _, out := range outs {
				close(out)
			}
		}()
		for {
			select {
			case <-g.stop:
				return
			case m, ok := <-g.ch:
				if !ok {
					return
				}
				if m.Topic != topic {
					continue
				}
				idx := ring.Hash([]byte(m.Partition.String()), n)
				select {
				case outs[idx] <- m:
				case <-g.stop:
					return
				}
			}
		}
	}()
	views := make([]<-chan GroupMsg, n)
	for i, out := range outs {
		views[i] = out
	}
	return views
}
