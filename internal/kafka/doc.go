// Package kafka implements the log-structured pub/sub system of §V: brokers
// persist each topic partition as a set of segment files; messages are
// addressed by their logical offset (the byte position in the partition log)
// rather than ids — increasing but not consecutive, exactly as the paper
// describes; producers batch and optionally gzip-compress message sets;
// consumers pull sequentially, own their offsets, and coordinate group
// membership through the zk package.
//
// On top of the single-broker core sit two replication tiers. The
// intra-cluster tier (isr.go, DESIGN.md §10) is the paper's headline
// future-work item: ReplicatedBroker keeps in-sync replica sets with
// high-watermark ack gating and byte-identical follower logs under
// Helix-elected leadership, ReplicatedCluster wires a whole cluster
// in-process, and RoutedClient resolves leaders through zk and rides
// failovers inside its retry policy — an acked message's offset never
// changes across a leader change. The cross-cluster tier (mirror.go,
// DESIGN.md §11) is §V.D's datacenter topology: MirrorMaker republishes a
// local cluster's partitions into an aggregate cluster with per-partition
// source offsets checkpointed via atomic rename (at-least-once resume,
// no loss across kill -9), optionally stamping every message with a
// MirrorEnvelope — origin cluster, source partition, source offset — so
// aggregate consumers keep per-key causal order across datacenters;
// StaticClient is the TCP counterpart of RoutedClient for clusters
// addressed as a fixed broker list.
//
// Observability: broker request/byte throughput, producer and consumer
// message flow, group rebalances and per-partition consumer lag, the
// intra-cluster replica's position, ISR membership churn and partition high
// watermarks, and the mirror's throughput/lag/checkpoint position are
// exported through internal/metrics (names under kafka_*, catalogued in
// OPERATIONS.md). Offsets are byte positions, so the lag gauges are
// measured in bytes.
package kafka
