package kafka

// Chaos test for ISR replication over real TCP (§V.D): three brokers listen
// on TCP behind deterministic fault proxies; followers replicate through the
// proxies, the routed client produces through them, and the elected leader is
// killed mid-produce while connections drop and stall. The contract under
// test is the tentpole invariant: no message acknowledged at the high
// watermark is lost or relocated by failover — the promoted leader serves it
// at exactly the offset the ack named.

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"datainfra/internal/consistency"
	"datainfra/internal/helix"
	"datainfra/internal/resilience"
	"datainfra/internal/zk"
)

// tcpReplicatedRig is a replicated cluster whose every inter-broker and
// client byte crosses a fault-injecting TCP proxy.
type tcpReplicatedRig struct {
	srv     *zk.Server
	ctrl    *helix.Controller
	sess    *zk.Session
	cfg     ReplicatedConfig
	proxies map[string]string // instance -> proxy address

	mu      sync.Mutex
	brokers map[string]*ReplicatedBroker
	remotes []*RemoteBroker
}

func newTCPReplicatedRig(t *testing.T, brokers int, cfg ReplicatedConfig, inj *resilience.DeterministicInjector) *tcpReplicatedRig {
	t.Helper()
	cfg.withDefaults()
	rig := &tcpReplicatedRig{
		srv:     zk.NewServer(),
		cfg:     cfg,
		proxies: map[string]string{},
		brokers: map[string]*ReplicatedBroker{},
	}
	ctrl, err := helix.NewController(rig.srv, cfg.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	rig.ctrl = ctrl
	rig.sess = rig.srv.NewSession()
	t.Cleanup(func() {
		rig.mu.Lock()
		rbs := rig.brokers
		rig.brokers = map[string]*ReplicatedBroker{}
		remotes := rig.remotes
		rig.remotes = nil
		rig.mu.Unlock()
		for _, rb := range rbs {
			rb.Close()
		}
		for _, r := range remotes {
			r.Close()
		}
		ctrl.Close()
		rig.sess.Close()
	})

	// Every replica-fetch crosses the target broker's proxy, so follower
	// pulls ride the same fault schedule as client traffic.
	resolve := func(instance string) (ReplicaPeer, error) {
		return rig.dial(instance)
	}
	for i := 0; i < brokers; i++ {
		b, err := NewBroker(i, t.TempDir(), BrokerConfig{PartitionsPerTopic: 1})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := b.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		instance := fmt.Sprintf("broker-%d", i)
		rig.proxies[instance] = startDropProxy(t, addr, inj)
		rb, err := NewReplicatedBroker(b, rig.srv, cfg, resolve)
		if err != nil {
			t.Fatal(err)
		}
		rig.brokers[instance] = rb
	}
	ctrl.Start()
	return rig
}

func (rig *tcpReplicatedRig) dial(instance string) (*RemoteBroker, error) {
	addr, ok := rig.proxies[instance]
	if !ok {
		return nil, fmt.Errorf("kafka: unknown broker %q", instance)
	}
	r := DialBroker(addr, time.Second)
	r.SetRetryPolicy(resilience.Policy{
		MaxAttempts:    6,
		InitialBackoff: 500 * time.Microsecond,
		MaxBackoff:     10 * time.Millisecond,
	})
	rig.mu.Lock()
	rig.remotes = append(rig.remotes, r)
	rig.mu.Unlock()
	return r, nil
}

func (rig *tcpReplicatedRig) addTopic(t *testing.T, topic string) {
	t.Helper()
	if err := rig.sess.CreateAll(topicMetaPath(rig.cfg.Cluster, topic), []byte("1")); err != nil {
		t.Fatal(err)
	}
	rig.ctrl.SetPreferenceFilter(topic, ISRPreference(rig.sess, rig.cfg.Cluster, topic))
	if err := rig.ctrl.AddResource(&helix.Resource{
		Name: topic, NumPartitions: 1, Replicas: rig.cfg.Replicas,
		StateModel: helix.ModelLeaderStandby,
	}); err != nil {
		t.Fatal(err)
	}
}

func (rig *tcpReplicatedRig) isrOf(topic string, partition int) (isrRecord, bool) {
	data, _, err := rig.sess.Get(isrPath(rig.cfg.Cluster, topic, partition))
	if err != nil {
		return isrRecord{}, false
	}
	var rec isrRecord
	if json.Unmarshal(data, &rec) != nil {
		return isrRecord{}, false
	}
	return rec, rec.Leader != ""
}

// kill closes a broker abruptly: its ephemeral expires, its listener and
// live connections die mid-flight.
func (rig *tcpReplicatedRig) kill(instance string) bool {
	rig.mu.Lock()
	rb, ok := rig.brokers[instance]
	delete(rig.brokers, instance)
	rig.mu.Unlock()
	if ok {
		rb.Close()
	}
	return ok
}

// TestChaosISRFailoverLeaderKillMidProduce is the tentpole chaos run: seeded
// connection drops, read-path kills and latency on every TCP link, the
// leader killed while producers are mid-stream, and the surviving cluster's
// log checked against the replicated-partition model — every HW-acked
// message served by the promoted leader at an unchanged offset.
func TestChaosISRFailoverLeaderKillMidProduce(t *testing.T) {
	inj := resilience.NewInjector(11)
	inj.Plan("proxy.accept", resilience.FaultPlan{DropProb: 0.15})
	inj.Plan("proxy.conn.read", resilience.FaultPlan{
		DropProb: 0.05, LatencyProb: 0.10, Latency: 300 * time.Microsecond,
	})

	rig := newTCPReplicatedRig(t, 3, ReplicatedConfig{
		Cluster: "chaos", Replicas: 3, MinISR: 2,
		FetchWait: 20 * time.Millisecond, LagTimeout: 400 * time.Millisecond,
		AckTimeout: 3 * time.Second,
	}, inj)
	rig.addTopic(t, "chaos")
	waitCond(t, "full ISR", 15*time.Second, func() bool {
		rec, ok := rig.isrOf("chaos", 0)
		return ok && len(rec.ISR) == 3
	})

	client := NewRoutedClient(rig.srv, "chaos", func(instance string) (ClusterPeer, error) {
		return rig.dial(instance)
	})
	defer client.Close()
	client.SetRetryPolicy(resilience.Policy{
		MaxAttempts:    20,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
	})

	const total, producers, killAfter = 60, 3, 20
	var mu sync.Mutex
	var acked []consistency.ProducedMsg
	ackedCh := make(chan struct{}, total)

	// The assassin: wait for killAfter acks, then kill the current leader
	// while the producers are still streaming.
	killedCh := make(chan string, 1)
	go func() {
		for i := 0; i < killAfter; i++ {
			<-ackedCh
		}
		if rec, ok := rig.isrOf("chaos", 0); ok && rig.kill(rec.Leader) {
			killedCh <- rec.Leader
			return
		}
		killedCh <- ""
	}()

	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < total; i += producers {
				payload := fmt.Sprintf("chaos-%03d", i)
				deadline := time.Now().Add(30 * time.Second)
				for {
					off, err := client.Produce("chaos", 0, NewMessageSet([]byte(payload)))
					if err == nil {
						mu.Lock()
						acked = append(acked, consistency.ProducedMsg{Offset: off, Payload: payload})
						mu.Unlock()
						ackedCh <- struct{}{}
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("produce %d never acknowledged across the failover: %v", i, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	killed := <-killedCh
	if killed == "" {
		t.Fatal("leader kill never happened; failover was not exercised")
	}
	if inj.Total() == 0 {
		t.Fatal("no faults injected; chaos run is vacuous")
	}

	// A new leader must be recorded, and it must be a surviving ISR member.
	var rec isrRecord
	waitCond(t, "promoted leader", 15*time.Second, func() bool {
		r, ok := rig.isrOf("chaos", 0)
		rec = r
		return ok && r.Leader != killed
	})

	// Consume the whole partition back through the faulty proxies and check
	// the replicated-log model: acked offsets unique, consumption gapless
	// and monotone, every acked message at exactly its acked offset.
	var earliest, latest int64
	deadline := time.Now().Add(20 * time.Second)
	for {
		var err error
		earliest, latest, err = client.Offsets("chaos", 0)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("offsets after failover: %v", err)
		}
	}
	var consumed []consistency.ConsumedMsg
	offset := earliest
	for offset < latest {
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d messages, stuck at offset %d of %d", len(consumed), offset, latest)
		}
		chunk, err := client.Fetch("chaos", 0, offset, 1<<20)
		if err != nil {
			continue // dropped connection; the deadline bounds the retries
		}
		msgs, err := Decode(chunk, offset)
		if err != nil {
			t.Fatalf("decode at offset %d: %v", offset, err)
		}
		for _, m := range msgs {
			consumed = append(consumed, consistency.ConsumedMsg{NextOffset: m.NextOffset, Payload: string(m.Payload)})
			offset = m.NextOffset
		}
	}
	err := consistency.CheckKafkaReplicated(consistency.ReplicatedPartition{
		Topic: "chaos", Partition: 0,
		Start: earliest, End: latest,
		Acked: acked, Consumed: consumed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("isr chaos: %d acked (%d consumed), leader %s killed mid-produce, %s promoted, epoch %d, under %s",
		len(acked), len(consumed), killed, rec.Leader, rec.Epoch, inj)
}
