package kafka

// Mux-versus-pool throughput benchmarks for the broker wire protocol. Each
// op is one produce plus one fetch — the dominant small request/response
// traffic of §V. As in the voldemort benchmarks, the headline comparison is
// mux at 16 callers (one shared pipelined connection) against the same
// callers serialized on one lock-step connection.

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startDelayProxy fronts target with a fixed one-way latency per direction
// (timestamped store-and-forward queue, so in-flight chunks overlap their
// propagation delay like on a real link). Same helper as the voldemort mux
// benchmarks: on loopback the RTT is pure CPU, so the head-of-line blocking
// the mux removes only becomes measurable behind a simulated link delay.
func startDelayProxy(tb testing.TB, target string, oneWay time.Duration) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			pipe := func(dst, src net.Conn) {
				type chunk struct {
					data []byte
					due  time.Time
				}
				q := make(chan chunk, 1024)
				go func() {
					defer dst.Close()
					for ch := range q {
						time.Sleep(time.Until(ch.due))
						if _, err := dst.Write(ch.data); err != nil {
							return
						}
					}
				}()
				buf := make([]byte, 64<<10)
				defer close(q)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						q <- chunk{data: append([]byte(nil), buf[:n]...), due: time.Now().Add(oneWay)}
					}
					if err != nil {
						return
					}
				}
			}
			go pipe(up, c)
			go pipe(c, up)
		}
	}()
	return ln.Addr().String()
}

func BenchmarkRemoteBrokerProduceFetchParallel(b *testing.B) {
	br, err := NewBroker(0, b.TempDir(), BrokerConfig{
		PartitionsPerTopic: 1,
		Log:                LogConfig{FlushMessages: 1000},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer br.Close()
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	set := NewMessageSet(make([]byte, 200))
	if _, err := br.Produce("bench", 0, set); err != nil {
		b.Fatal(err)
	}
	br.FlushAll() // fetch at offset 0 must see flushed data

	// 500µs each way = 1ms RTT, a realistic cross-rack order of magnitude.
	delayed := startDelayProxy(b, addr, 500*time.Microsecond)

	transports := []struct {
		name string
		dial func() *RemoteBroker
		sem  int // >0 caps client-side in-flight requests (lock-step conns)
	}{
		{name: "mux1conn", dial: func() *RemoteBroker { return DialBroker(addr, 2*time.Second) }},
		{name: "lockstep1conn", dial: func() *RemoteBroker { return DialBrokerPooled(addr, 2*time.Second) }, sem: 1},
		{name: "pool", dial: func() *RemoteBroker { return DialBrokerPooled(addr, 2*time.Second) }},
		{name: "mux1conn-rtt1ms", dial: func() *RemoteBroker { return DialBroker(delayed, 2*time.Second) }},
		{name: "lockstep1conn-rtt1ms", dial: func() *RemoteBroker { return DialBrokerPooled(delayed, 2*time.Second) }, sem: 1},
	}
	for _, tr := range transports {
		for _, callers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/callers=%d", tr.name, callers), func(b *testing.B) {
				rb := tr.dial()
				defer rb.Close()
				var sem chan struct{}
				if tr.sem > 0 {
					sem = make(chan struct{}, tr.sem)
				}
				var wg sync.WaitGroup
				b.ReportAllocs()
				b.ResetTimer()
				for c := 0; c < callers; c++ {
					n := b.N / callers
					if c < b.N%callers {
						n++
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							if sem != nil {
								sem <- struct{}{}
							}
							_, perr := rb.Produce("bench", 0, set)
							var ferr error
							if perr == nil {
								_, ferr = rb.Fetch("bench", 0, 0, 256)
							}
							if sem != nil {
								<-sem
							}
							if perr != nil {
								b.Error(perr)
								return
							}
							if ferr != nil {
								b.Error(ferr)
								return
							}
						}
					}(n)
				}
				wg.Wait()
			})
		}
	}
}
