package kafka

// Fuzz target for message-set parsing: Decode consumes fetch chunks straight
// off the wire (and, for compressed wrappers, gunzipped bytes), so it must
// reject arbitrary corruption with an error — never a panic — and the
// offsets it reports must never go backwards.

import (
	"testing"
)

func FuzzDecode(f *testing.F) {
	plain := NewMessageSet([]byte("hello"), []byte("world"))
	f.Add(plain.Bytes(), int64(0))

	compressed, err := plain.Compress()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(compressed.Bytes(), int64(100))

	// A valid set followed by a partial tail — the normal fetch-boundary case.
	tail := append(append([]byte(nil), plain.Bytes()...), 0, 0, 0, 42, 1)
	f.Add(tail, int64(7))

	corrupt := append([]byte(nil), plain.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt, int64(0))

	f.Add([]byte{0, 0, 0, 0}, int64(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 0}, int64(0))

	f.Fuzz(func(t *testing.T, chunk []byte, base int64) {
		if n := validPrefix(chunk); n < 0 || n > len(chunk) {
			t.Fatalf("validPrefix = %d of %d bytes", n, len(chunk))
		}
		msgs, err := Decode(chunk, base)
		if err != nil {
			return // rejected cleanly
		}
		last := base
		for _, m := range msgs {
			if m.NextOffset < last {
				t.Fatalf("offsets rewound: %d after %d", m.NextOffset, last)
			}
			last = m.NextOffset
		}
	})
}
