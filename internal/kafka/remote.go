package kafka

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"datainfra/internal/resilience"
)

// RemoteBroker is a BrokerClient over the TCP protocol, with a small
// connection pool. Transport failures (dead pooled connections, broker
// restarts, timeouts) are retried through the resilience layer with
// exponential backoff and full jitter, behind a circuit breaker that fails
// fast while the broker stays unreachable — the §V story of producers and
// consumers riding out broker reconnects. Application-level responses
// (error frames such as offset-out-of-range) are never retried.
type RemoteBroker struct {
	addr    string
	timeout time.Duration
	retry   resilience.Policy
	breaker *resilience.Breaker

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

// DialBroker connects lazily to the broker at addr.
func DialBroker(addr string, timeout time.Duration) *RemoteBroker {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	return &RemoteBroker{
		addr:    addr,
		timeout: timeout,
		retry: resilience.Policy{
			MaxAttempts:    4,
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     100 * time.Millisecond,
		},
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: 8,
			OpenTimeout:      250 * time.Millisecond,
		}),
	}
}

// SetRetryPolicy overrides the transport retry policy (tests, aggressive
// clients). It must be called before the first request.
func (r *RemoteBroker) SetRetryPolicy(p resilience.Policy) { r.retry = p }

func (r *RemoteBroker) getConn() (net.Conn, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("kafka: remote broker closed")
	}
	if n := len(r.conns); n > 0 {
		c := r.conns[n-1]
		r.conns = r.conns[:n-1]
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	return net.DialTimeout("tcp", r.addr, r.timeout)
}

// maxIdleConns bounds the idle connection pool: bursts may dial beyond it,
// but only this many connections are retained on return — the overflow is
// closed so bursty producers cannot pin fds forever.
const maxIdleConns = 4

func (r *RemoteBroker) putConn(c net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || len(r.conns) >= maxIdleConns {
		c.Close()
		return
	}
	r.conns = append(r.conns, c)
}

// call sends one framed request and reads the framed response, retrying
// transport failures (each retry on a fresh connection: callOnce discards
// the connection on any error).
func (r *RemoteBroker) call(req []byte) ([]byte, error) {
	return resilience.RetryValue(context.Background(), r.retry, func() ([]byte, error) {
		if err := r.breaker.Allow(); err != nil {
			return nil, err
		}
		body, err := r.callOnce(req)
		if err != nil && resilience.IsTransient(err) {
			r.breaker.Record(err)
		} else {
			// Success, or an application error: the broker is reachable.
			r.breaker.Record(nil)
		}
		return body, err
	})
}

// callOnce performs one request/response exchange on one connection.
func (r *RemoteBroker) callOnce(req []byte) ([]byte, error) {
	conn, err := r.getConn()
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(r.timeout)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("kafka: set deadline: %w", err)
	}
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, uint32(len(req)))
	if _, err := conn.Write(hdr); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(req); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := io.ReadFull(conn, hdr); err != nil {
		conn.Close()
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n < 1 || n > 64<<20 {
		conn.Close()
		return nil, fmt.Errorf("kafka: bad response frame %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("kafka: clear deadline: %w", err)
	}
	r.putConn(conn)
	if body[0] != 0 {
		msg := string(body[1:])
		if contains(msg, "offset out of range") {
			return nil, fmt.Errorf("%w: %s", ErrOffsetOutOfRange, msg)
		}
		return nil, errors.New("kafka: " + msg)
	}
	return body[1:], nil
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && searchStr(s, sub)
}

func searchStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func reqHeader(op byte, topic string) []byte {
	buf := make([]byte, 0, 3+len(topic))
	buf = append(buf, op)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(topic)))
	return append(buf, topic...)
}

// Produce implements BrokerClient. Transport retries make delivery
// at-least-once: a produce whose connection died after the broker appended
// but before the ack is re-sent, matching the paper's delivery guarantee
// ("messages are guaranteed to be delivered at least once", §V.D).
func (r *RemoteBroker) Produce(topic string, partition int, set MessageSet) (int64, error) {
	req := reqHeader(brokerOpProduce, topic)
	req = binary.BigEndian.AppendUint32(req, uint32(partition))
	req = append(req, set.Bytes()...)
	resp, err := r.call(req)
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, fmt.Errorf("kafka: bad produce response")
	}
	return int64(binary.BigEndian.Uint64(resp)), nil
}

// Fetch implements BrokerClient.
func (r *RemoteBroker) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	req := reqHeader(brokerOpFetch, topic)
	req = binary.BigEndian.AppendUint32(req, uint32(partition))
	req = binary.BigEndian.AppendUint64(req, uint64(offset))
	req = binary.BigEndian.AppendUint32(req, uint32(maxBytes))
	return r.call(req)
}

// Offsets implements BrokerClient.
func (r *RemoteBroker) Offsets(topic string, partition int) (int64, int64, error) {
	req := reqHeader(brokerOpOffsets, topic)
	req = binary.BigEndian.AppendUint32(req, uint32(partition))
	resp, err := r.call(req)
	if err != nil {
		return 0, 0, err
	}
	if len(resp) != 16 {
		return 0, 0, fmt.Errorf("kafka: bad offsets response")
	}
	return int64(binary.BigEndian.Uint64(resp[0:8])), int64(binary.BigEndian.Uint64(resp[8:16])), nil
}

// Partitions implements BrokerClient.
func (r *RemoteBroker) Partitions(topic string) (int, error) {
	resp, err := r.call(reqHeader(brokerOpPartitions, topic))
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(resp))
}

// Close drops pooled connections.
func (r *RemoteBroker) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = nil
}
