package kafka

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"datainfra/internal/resilience"
	"datainfra/internal/rpc"
)

// RemoteBroker is a BrokerClient over the TCP protocol. By default every
// request shares one multiplexed connection (internal/rpc) with many
// requests in flight, correlated by id — including long-poll fetches, which
// park server-side without blocking the other requests on the connection.
// The legacy one-request-per-connection pool survives behind
// DialBrokerPooled for wire tests and mux-versus-pool benchmarks. Transport
// failures (dead connections, broker restarts, timeouts) are retried through
// the resilience layer with exponential backoff and full jitter, behind a
// circuit breaker that fails fast while the broker stays unreachable — the
// §V story of producers and consumers riding out broker reconnects.
// Application-level responses (error frames such as offset-out-of-range) are
// never retried.
type RemoteBroker struct {
	addr    string
	timeout time.Duration
	retry   resilience.Policy
	breaker *resilience.Breaker

	mux    *rpc.Client // nil in pooled (legacy) mode
	pooled bool

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

// DialBroker connects lazily to the broker at addr, using a single
// multiplexed connection shared by all concurrent requests.
func DialBroker(addr string, timeout time.Duration) *RemoteBroker {
	r := newRemoteBroker(addr, timeout)
	r.mux = rpc.NewClient(addr, r.timeout)
	return r
}

// DialBrokerPooled connects using the legacy lock-step protocol over a small
// connection pool — one request in flight per connection. Kept for
// wire-compatibility tests and as the baseline the multiplexed transport is
// benchmarked against.
func DialBrokerPooled(addr string, timeout time.Duration) *RemoteBroker {
	r := newRemoteBroker(addr, timeout)
	r.pooled = true
	return r
}

func newRemoteBroker(addr string, timeout time.Duration) *RemoteBroker {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	return &RemoteBroker{
		addr:    addr,
		timeout: timeout,
		retry: resilience.Policy{
			MaxAttempts:    4,
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     100 * time.Millisecond,
		},
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: 8,
			OpenTimeout:      250 * time.Millisecond,
		}),
	}
}

// SetRetryPolicy overrides the transport retry policy (tests, aggressive
// clients). It must be called before the first request.
func (r *RemoteBroker) SetRetryPolicy(p resilience.Policy) { r.retry = p }

func (r *RemoteBroker) getConn() (net.Conn, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("kafka: remote broker closed")
	}
	if n := len(r.conns); n > 0 {
		c := r.conns[n-1]
		r.conns = r.conns[:n-1]
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	return net.DialTimeout("tcp", r.addr, r.timeout)
}

// maxIdleConns bounds the idle connection pool: bursts may dial beyond it,
// but only this many connections are retained on return — the overflow is
// closed so bursty producers cannot pin fds forever.
const maxIdleConns = 4

func (r *RemoteBroker) putConn(c net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || len(r.conns) >= maxIdleConns {
		c.Close()
		return
	}
	r.conns = append(r.conns, c)
}

// call sends one framed request and reads the framed response, retrying
// transport failures (each retry on a fresh connection: callOnce discards
// the connection on any error).
func (r *RemoteBroker) call(req []byte) ([]byte, error) {
	return r.callTimeout(req, r.timeout)
}

// callTimeout is call with an explicit per-request timeout — long-poll
// fetches need room for the server-side wait on top of the transport budget.
func (r *RemoteBroker) callTimeout(req []byte, timeout time.Duration) ([]byte, error) {
	return resilience.RetryValue(context.Background(), r.retry, func() ([]byte, error) {
		if err := r.breaker.Allow(); err != nil {
			return nil, err
		}
		body, err := r.callOnce(req, timeout)
		if err != nil && resilience.IsTransient(err) {
			r.breaker.Record(err)
		} else {
			// Success, or an application error: the broker is reachable.
			r.breaker.Record(nil)
		}
		return body, err
	})
}

// wireErrors maps error-frame substrings back to the package's typed errors:
// a typed error crossing the TCP boundary arrives as text, and the routing
// retry classifier (retryableRouted) needs the type back to ride out
// failovers and ISR shrinks instead of surfacing them as hard failures.
var wireErrors = []struct {
	sub string
	err error
}{
	{"offset out of range", ErrOffsetOutOfRange},
	{"not the partition leader", ErrNotLeader},
	{"not enough in-sync replicas", ErrNotEnoughReplicas},
	{"timed out waiting for replica acks", ErrAckTimeout},
	{"no leader elected", errNoLeader},
}

// parseStatus strips the status byte off a response body, mapping error
// frames to errors.
func parseStatus(body []byte) ([]byte, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("kafka: empty response frame")
	}
	if body[0] != 0 {
		msg := string(body[1:])
		for _, w := range wireErrors {
			if contains(msg, w.sub) {
				return nil, fmt.Errorf("%w: %s", w.err, msg)
			}
		}
		return nil, errors.New("kafka: " + msg)
	}
	return body[1:], nil
}

// callOnce performs one request/response exchange: over the shared
// multiplexed connection by default, or on a dedicated pooled connection in
// legacy mode. Mux timeouts abandon the request slot (the connection
// survives for other in-flight requests) and surface as transient
// net.Errors, so the retry loop treats them exactly like the legacy
// deadline kill.
func (r *RemoteBroker) callOnce(req []byte, timeout time.Duration) ([]byte, error) {
	if !r.pooled {
		body, err := r.mux.Call(req, timeout)
		if err != nil {
			return nil, err
		}
		return parseStatus(body)
	}
	conn, err := r.getConn()
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("kafka: set deadline: %w", err)
	}
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, uint32(len(req)))
	if _, err := conn.Write(hdr); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(req); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := io.ReadFull(conn, hdr); err != nil {
		conn.Close()
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n < 1 || n > 64<<20 {
		conn.Close()
		return nil, fmt.Errorf("kafka: bad response frame %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("kafka: clear deadline: %w", err)
	}
	r.putConn(conn)
	return parseStatus(body)
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && searchStr(s, sub)
}

func searchStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func reqHeader(op byte, topic string) []byte {
	buf := make([]byte, 0, 3+len(topic))
	buf = append(buf, op)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(topic)))
	return append(buf, topic...)
}

// Produce implements BrokerClient. Transport retries make delivery
// at-least-once: a produce whose connection died after the broker appended
// but before the ack is re-sent, matching the paper's delivery guarantee
// ("messages are guaranteed to be delivered at least once", §V.D).
func (r *RemoteBroker) Produce(topic string, partition int, set MessageSet) (int64, error) {
	req := reqHeader(brokerOpProduce, topic)
	req = binary.BigEndian.AppendUint32(req, uint32(partition))
	req = append(req, set.Bytes()...)
	resp, err := r.call(req)
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, fmt.Errorf("kafka: bad produce response")
	}
	return int64(binary.BigEndian.Uint64(resp)), nil
}

// Fetch implements BrokerClient.
func (r *RemoteBroker) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	req := reqHeader(brokerOpFetch, topic)
	req = binary.BigEndian.AppendUint32(req, uint32(partition))
	req = binary.BigEndian.AppendUint64(req, uint64(offset))
	req = binary.BigEndian.AppendUint32(req, uint32(maxBytes))
	return r.call(req)
}

// FetchWait implements BlockingFetcher: a fetch that long-polls server-side
// when the partition is caught up, so a consumer at the log tail parks on
// the broker instead of sleep-polling. The per-request timeout is widened to
// cover the server wait; over the mux the parked request does not block the
// connection's other traffic.
func (r *RemoteBroker) FetchWait(topic string, partition int, offset int64, maxBytes int, wait time.Duration) ([]byte, error) {
	req := reqHeader(brokerOpFetchWait, topic)
	req = binary.BigEndian.AppendUint32(req, uint32(partition))
	req = binary.BigEndian.AppendUint64(req, uint64(offset))
	req = binary.BigEndian.AppendUint32(req, uint32(maxBytes))
	req = binary.BigEndian.AppendUint32(req, uint32(wait/time.Millisecond))
	return r.callTimeout(req, r.timeout+wait)
}

// ReplicaFetch pulls raw log bytes for replication: uncapped by the high
// watermark, long-polling at the durable tail, returning the leader's current
// high watermark alongside the chunk. follower names the fetching replica so
// the leader tracks its position for ISR accounting; epoch fences the fetch
// against stale leadership (the serving broker rejects a mismatched epoch).
func (r *RemoteBroker) ReplicaFetch(topic string, partition int, offset int64, maxBytes int, wait time.Duration, follower string, epoch int) (int64, []byte, error) {
	req := reqHeader(brokerOpReplicaFetch, topic)
	req = binary.BigEndian.AppendUint32(req, uint32(partition))
	req = binary.BigEndian.AppendUint64(req, uint64(offset))
	req = binary.BigEndian.AppendUint32(req, uint32(maxBytes))
	req = binary.BigEndian.AppendUint32(req, uint32(wait/time.Millisecond))
	req = binary.BigEndian.AppendUint32(req, uint32(epoch))
	req = binary.BigEndian.AppendUint16(req, uint16(len(follower)))
	req = append(req, follower...)
	resp, err := r.callTimeout(req, r.timeout+wait)
	if err != nil {
		return 0, nil, err
	}
	if len(resp) < 8 {
		return 0, nil, fmt.Errorf("kafka: bad replica fetch response")
	}
	hw := int64(binary.BigEndian.Uint64(resp[:8]))
	return hw, resp[8:], nil
}

// Offsets implements BrokerClient.
func (r *RemoteBroker) Offsets(topic string, partition int) (int64, int64, error) {
	req := reqHeader(brokerOpOffsets, topic)
	req = binary.BigEndian.AppendUint32(req, uint32(partition))
	resp, err := r.call(req)
	if err != nil {
		return 0, 0, err
	}
	if len(resp) != 16 {
		return 0, 0, fmt.Errorf("kafka: bad offsets response")
	}
	return int64(binary.BigEndian.Uint64(resp[0:8])), int64(binary.BigEndian.Uint64(resp[8:16])), nil
}

// Partitions implements BrokerClient.
func (r *RemoteBroker) Partitions(topic string) (int, error) {
	resp, err := r.call(reqHeader(brokerOpPartitions, topic))
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(resp))
}

// Close drops the multiplexed connection and any pooled connections.
func (r *RemoteBroker) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = nil
	if r.mux != nil {
		r.mux.Close()
	}
}
