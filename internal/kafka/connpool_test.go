package kafka

import (
	"net"
	"testing"
	"time"
)

// TestRemoteBrokerPoolBounded proves the idle-connection cap: returning more
// connections than maxIdleConns retains exactly maxIdleConns and closes the
// overflow.
func TestRemoteBrokerPoolBounded(t *testing.T) {
	r := DialBroker("127.0.0.1:0", time.Second)
	defer r.Close()

	var client, server []net.Conn
	for i := 0; i < maxIdleConns+3; i++ {
		c, sv := net.Pipe()
		client = append(client, c)
		server = append(server, sv)
		r.putConn(c)
	}
	r.mu.Lock()
	pooled := len(r.conns)
	r.mu.Unlock()
	if pooled != maxIdleConns {
		t.Fatalf("pooled %d idle conns, want %d", pooled, maxIdleConns)
	}
	for i := maxIdleConns; i < len(server); i++ {
		sv := server[i]
		sv.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := sv.Read(make([]byte, 1)); err == nil {
			t.Fatalf("overflow conn %d still open after putConn", i)
		}
	}
	for _, c := range client {
		c.Close()
	}
	for _, sv := range server {
		sv.Close()
	}
}
