package kafka

// Chaos test for the remote broker path (§V): a TCP proxy in front of a real
// broker deterministically kills connections at accept according to a seeded
// fault schedule. The RemoteBroker's retry/backoff layer must ride out the
// drops so that every produce is acknowledged, acknowledged messages are
// never lost, and the log remains contiguous and in order.

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"datainfra/internal/resilience"
)

// startDropProxy forwards TCP connections to target, dropping some at accept
// time and killing established ones on the client→broker read path
// ("proxy.conn.read"). Drops land before a complete request is forwarded —
// the broker only acts on full length-prefixed frames — so a dropped
// connection can never have half-applied a request and retries stay
// duplicate-free.
func startDropProxy(t *testing.T, target string, inj *resilience.DeterministicInjector) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if inj.Inject("proxy.accept") != nil {
				c.Close()
				continue
			}
			go func(c net.Conn) {
				fc := inj.WrapConn("proxy.conn", c)
				defer fc.Close()
				up, err := net.Dial("tcp", target)
				if err != nil {
					return
				}
				defer up.Close()
				go func() { _, _ = io.Copy(up, fc) }()
				_, _ = io.Copy(fc, up)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestChaosRemoteBrokerRidesOutConnectionDrops produces and consumes through
// a proxy that kills 40% of connections. Invariants: every produce call is
// eventually acknowledged by the retry layer, no acknowledged message is
// lost, and fetched offsets advance monotonically with no gaps.
func TestChaosRemoteBrokerRidesOutConnectionDrops(t *testing.T) {
	b := newTestBroker(t)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	inj := resilience.NewInjector(5)
	inj.Plan("proxy.accept", resilience.FaultPlan{DropProb: 0.4})
	inj.Plan("proxy.conn.read", resilience.FaultPlan{DropProb: 0.25})
	proxyAddr := startDropProxy(t, addr, inj)

	rb := DialBroker(proxyAddr, time.Second)
	defer rb.Close()
	rb.SetRetryPolicy(resilience.Policy{
		MaxAttempts:    10,
		InitialBackoff: 200 * time.Microsecond,
		MaxBackoff:     5 * time.Millisecond,
	})

	const n = 50
	acked := make(map[string]int64, n)
	var lastOff int64 = -1
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("chaos-%d", i)
		off, err := rb.Produce("chaos", 0, NewMessageSet([]byte(payload)))
		if err != nil {
			t.Fatalf("produce %d never acknowledged through drops: %v", i, err)
		}
		if off <= lastOff {
			t.Fatalf("produce %d: offset %d not monotonically increasing after %d", i, off, lastOff)
		}
		lastOff = off
		acked[payload] = off
	}
	if inj.Total() == 0 {
		t.Fatal("no connections dropped; chaos run is vacuous")
	}
	t.Logf("acked %d produces through %s", n, inj)

	// Consume everything back through the same flaky proxy.
	var got []string
	offset := int64(0)
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("consumed only %d of %d messages", len(got), n)
		}
		chunk, err := rb.Fetch("chaos", 0, offset, 1<<20)
		if err != nil {
			t.Fatalf("fetch at offset %d: %v", offset, err)
		}
		msgs, err := Decode(chunk, offset)
		if err != nil {
			t.Fatalf("decode at offset %d: %v", offset, err)
		}
		for _, m := range msgs {
			if m.NextOffset <= offset {
				t.Fatalf("offsets rewound: next %d after %d", m.NextOffset, offset)
			}
			offset = m.NextOffset
			got = append(got, string(m.Payload))
		}
	}

	// Produce over a lossy transport is at-least-once: a connection killed
	// between the broker applying a request and the ack reaching the client
	// makes the retry append a duplicate. Duplicates of one produce are
	// adjacent (the producer is synchronous), so collapsing runs must yield
	// exactly the produce sequence — any other shape means loss or disorder.
	var dedup []string
	for _, payload := range got {
		if len(dedup) == 0 || dedup[len(dedup)-1] != payload {
			dedup = append(dedup, payload)
		}
	}
	if len(dedup) != n {
		t.Fatalf("log holds %d distinct messages, want %d (raw %d)", len(dedup), n, len(got))
	}
	for i, payload := range dedup {
		if want := fmt.Sprintf("chaos-%d", i); payload != want {
			t.Fatalf("log position %d = %q, want %q: order violated", i, payload, want)
		}
	}
	if dups := len(got) - len(dedup); dups > 0 {
		t.Logf("%d retry duplicates (at-least-once), none lost", dups)
	}
	for payload := range acked {
		found := false
		for _, g := range got {
			if g == payload {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("acknowledged message %q lost", payload)
		}
	}
}
