package kafka

// Chaos test for the remote broker path (§V): a TCP proxy in front of a real
// broker deterministically kills connections at accept according to a seeded
// fault schedule. The RemoteBroker's retry/backoff layer must ride out the
// drops so that every produce is acknowledged, acknowledged messages are
// never lost, and the log remains contiguous and in order.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"datainfra/internal/resilience"
)

// startDropProxy forwards TCP connections to target, dropping some at accept
// time and killing established ones on the client→broker read path
// ("proxy.conn.read"). Drops land before a complete request is forwarded —
// the broker only acts on full length-prefixed frames — so a dropped
// connection can never have half-applied a request and retries stay
// duplicate-free.
func startDropProxy(t *testing.T, target string, inj *resilience.DeterministicInjector) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if inj.Inject("proxy.accept") != nil {
				c.Close()
				continue
			}
			go func(c net.Conn) {
				fc := inj.WrapConn("proxy.conn", c)
				defer fc.Close()
				up, err := net.Dial("tcp", target)
				if err != nil {
					return
				}
				defer up.Close()
				go func() { _, _ = io.Copy(up, fc) }()
				_, _ = io.Copy(fc, up)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestChaosRemoteBrokerRidesOutConnectionDrops produces and consumes through
// a proxy that kills 40% of connections. Invariants: every produce call is
// eventually acknowledged by the retry layer, no acknowledged message is
// lost, and fetched offsets advance monotonically with no gaps.
func TestChaosRemoteBrokerRidesOutConnectionDrops(t *testing.T) {
	b := newTestBroker(t)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	inj := resilience.NewInjector(5)
	inj.Plan("proxy.accept", resilience.FaultPlan{DropProb: 0.4})
	inj.Plan("proxy.conn.read", resilience.FaultPlan{DropProb: 0.25})
	proxyAddr := startDropProxy(t, addr, inj)

	rb := DialBroker(proxyAddr, time.Second)
	defer rb.Close()
	rb.SetRetryPolicy(resilience.Policy{
		MaxAttempts:    10,
		InitialBackoff: 200 * time.Microsecond,
		MaxBackoff:     5 * time.Millisecond,
	})

	const n = 50
	acked := make(map[string]int64, n)
	var lastOff int64 = -1
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("chaos-%d", i)
		off, err := rb.Produce("chaos", 0, NewMessageSet([]byte(payload)))
		if err != nil {
			t.Fatalf("produce %d never acknowledged through drops: %v", i, err)
		}
		if off <= lastOff {
			t.Fatalf("produce %d: offset %d not monotonically increasing after %d", i, off, lastOff)
		}
		lastOff = off
		acked[payload] = off
	}
	if inj.Total() == 0 {
		t.Fatal("no connections dropped; chaos run is vacuous")
	}
	t.Logf("acked %d produces through %s", n, inj)

	// Consume everything back through the same flaky proxy.
	var got []string
	offset := int64(0)
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("consumed only %d of %d messages", len(got), n)
		}
		chunk, err := rb.Fetch("chaos", 0, offset, 1<<20)
		if err != nil {
			t.Fatalf("fetch at offset %d: %v", offset, err)
		}
		msgs, err := Decode(chunk, offset)
		if err != nil {
			t.Fatalf("decode at offset %d: %v", offset, err)
		}
		for _, m := range msgs {
			if m.NextOffset <= offset {
				t.Fatalf("offsets rewound: next %d after %d", m.NextOffset, offset)
			}
			offset = m.NextOffset
			got = append(got, string(m.Payload))
		}
	}

	// Produce over a lossy transport is at-least-once: a connection killed
	// between the broker applying a request and the ack reaching the client
	// makes the retry append a duplicate. Duplicates of one produce are
	// adjacent (the producer is synchronous), so collapsing runs must yield
	// exactly the produce sequence — any other shape means loss or disorder.
	var dedup []string
	for _, payload := range got {
		if len(dedup) == 0 || dedup[len(dedup)-1] != payload {
			dedup = append(dedup, payload)
		}
	}
	if len(dedup) != n {
		t.Fatalf("log holds %d distinct messages, want %d (raw %d)", len(dedup), n, len(got))
	}
	for i, payload := range dedup {
		if want := fmt.Sprintf("chaos-%d", i); payload != want {
			t.Fatalf("log position %d = %q, want %q: order violated", i, payload, want)
		}
	}
	if dups := len(got) - len(dedup); dups > 0 {
		t.Logf("%d retry duplicates (at-least-once), none lost", dups)
	}
	for payload := range acked {
		found := false
		for _, g := range got {
			if g == payload {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("acknowledged message %q lost", payload)
		}
	}
}

// TestChaosMuxConcurrentProduceFetchNoCrossing runs one producer per
// partition plus long-poll fetches, all multiplexed over the single shared
// connection, through a proxy injecting latency and mid-flight kills. The
// correlation invariant: every message fetched from partition p must have
// been produced by partition p's producer, in order (modulo adjacent
// at-least-once duplicates) — responses crossing correlation ids would
// surface as foreign payloads, disorder, or malformed fixed-size responses.
// Every request must resolve; none may hang on an abandoned slot.
func TestChaosMuxConcurrentProduceFetchNoCrossing(t *testing.T) {
	b := newTestBroker(t)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	inj := resilience.NewInjector(23)
	inj.Plan("proxy.conn.read", resilience.FaultPlan{
		DropProb: 0.02, LatencyProb: 0.10, Latency: 300 * time.Microsecond,
	})
	proxyAddr := startDropProxy(t, addr, inj)

	rb := DialBroker(proxyAddr, time.Second)
	defer rb.Close()
	rb.SetRetryPolicy(resilience.Policy{
		MaxAttempts:    12,
		InitialBackoff: 200 * time.Microsecond,
		MaxBackoff:     5 * time.Millisecond,
	})

	// One dropped connection fails every request in flight on the shared mux
	// conn at once, which can trip the circuit breaker — a deliberate
	// fail-fast, not a hang. Requests ride out open windows here the way a
	// real client would: back off briefly and reissue.
	rideBreaker := func(f func() error) error {
		deadline := time.Now().Add(30 * time.Second)
		for {
			err := f()
			if err == nil || !errors.Is(err, resilience.ErrBreakerOpen) || time.Now().After(deadline) {
				return err
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	const producers, msgs = 2, 60 // one producer per partition (test brokers have 2)
	// Prime every partition with its first message up front: partitions
	// materialize on first produce, and a long-poll fetch against a
	// not-yet-created partition is an application error, not a retryable one.
	for p := 0; p < producers; p++ {
		if _, err := rb.Produce("crossing", p, NewMessageSet([]byte(fmt.Sprintf("p%d-m0", p)))); err != nil {
			t.Fatalf("prime partition %d: %v", p, err)
		}
	}
	errCh := make(chan error, producers*2)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var lastOff int64 = -1
			for i := 1; i < msgs; i++ {
				payload := fmt.Sprintf("p%d-m%d", p, i)
				var off int64
				err := rideBreaker(func() (err error) {
					off, err = rb.Produce("crossing", p, NewMessageSet([]byte(payload)))
					return err
				})
				if err != nil {
					errCh <- fmt.Errorf("p%d produce %d never resolved: %v", p, i, err)
					return
				}
				if off <= lastOff {
					errCh <- fmt.Errorf("p%d produce %d: offset %d after %d — response crossed?", p, i, off, lastOff)
					return
				}
				lastOff = off
				if i%8 == 0 { // interleave fixed-shape requests on the same conn
					if err := rideBreaker(func() error {
						_, _, err := rb.Offsets("crossing", p)
						return err
					}); err != nil {
						errCh <- fmt.Errorf("p%d offsets never resolved: %v", p, err)
						return
					}
				}
			}
		}(p)
		// A concurrent long-poll reader per partition: FetchWait requests park
		// server-side on the shared mux conn while produces keep flowing.
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var offset int64
			var got []string
			deadline := time.Now().Add(45 * time.Second)
			for len(got) < msgs {
				if time.Now().After(deadline) {
					errCh <- fmt.Errorf("p%d reader: only %d/%d messages before deadline", p, len(got), msgs)
					return
				}
				var chunk []byte
				err := rideBreaker(func() (err error) {
					chunk, err = rb.FetchWait("crossing", p, offset, 1<<20, 50*time.Millisecond)
					return err
				})
				if err != nil {
					errCh <- fmt.Errorf("p%d fetch-wait at %d never resolved: %v", p, offset, err)
					return
				}
				if len(chunk) == 0 {
					continue // long-poll timed out; producer still working
				}
				decoded, err := Decode(chunk, offset)
				if err != nil {
					errCh <- fmt.Errorf("p%d decode at %d: %v", p, offset, err)
					return
				}
				for _, m := range decoded {
					offset = m.NextOffset
					s := string(m.Payload)
					var mp, mi int
					if _, err := fmt.Sscanf(s, "p%d-m%d", &mp, &mi); err != nil || mp != p {
						errCh <- fmt.Errorf("partition %d holds foreign payload %q: responses crossed correlation ids", p, s)
						return
					}
					if len(got) > 0 && got[len(got)-1] == s {
						continue // adjacent at-least-once duplicate
					}
					if mi != len(got) {
						errCh <- fmt.Errorf("partition %d: message %q at position %d — order violated", p, s, len(got))
						return
					}
					got = append(got, s)
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos workload hung: an in-flight mux request never resolved")
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if inj.Total() == 0 {
		t.Fatal("no faults injected; chaos run is vacuous")
	}
	t.Logf("mux produce/fetch-wait survived %s", inj)
}
