package kafka

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"datainfra/internal/helix"
	"datainfra/internal/zk"
)

func TestLogVisibilityLimit(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var sets []MessageSet
	var offs []int64
	for i := 0; i < 3; i++ {
		set := NewMessageSet([]byte(fmt.Sprintf("msg-%d", i)))
		off, err := l.Append(set)
		if err != nil {
			t.Fatal(err)
		}
		sets, offs = append(sets, set), append(offs, off)
	}
	end := l.FlushedEnd()

	// Cap visibility at the second message's start.
	l.SetLimit(offs[1])
	if got := l.Latest(); got != offs[1] {
		t.Fatalf("Latest = %d, want limit %d", got, offs[1])
	}
	chunk, err := l.Read(offs[0], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(chunk)) != offs[1]-offs[0] {
		t.Fatalf("capped read returned %d bytes, want %d", len(chunk), offs[1]-offs[0])
	}
	if _, err := l.Read(offs[1]+1, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("read past limit: err = %v, want ErrOffsetOutOfRange", err)
	}
	// The replica path sees everything durable.
	raw, err := l.ReadUncapped(offs[0], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != end-offs[0] {
		t.Fatalf("uncapped read returned %d bytes, want %d", len(raw), end-offs[0])
	}
	// Raising the limit past the end exposes everything.
	l.SetLimit(end + 100)
	if got := l.Latest(); got != end {
		t.Fatalf("Latest = %d, want flushed end %d", got, end)
	}
	l.SetLimit(-1)
	if got := l.Latest(); got != end {
		t.Fatalf("Latest with cap removed = %d, want %d", got, end)
	}
}

func TestLogAppendAtAndTruncate(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	leader, err := OpenLog(dirA, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := OpenLog(dirB, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	for i := 0; i < 5; i++ {
		if _, err := leader.Append(NewMessageSet([]byte(fmt.Sprintf("payload-%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := leader.ReadUncapped(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Replay in two chunks at exact offsets.
	half := int64(validPrefix(raw[:len(raw)/2]))
	if err := follower.AppendAt(0, raw[:half]); err != nil {
		t.Fatal(err)
	}
	if err := follower.AppendAt(half, raw[half:]); err != nil {
		t.Fatal(err)
	}
	if err := follower.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := follower.ReadUncapped(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, got) {
		t.Fatal("follower log is not byte-identical after AppendAt replay")
	}
	// Non-contiguous appends are rejected.
	if err := follower.AppendAt(half, raw[half:]); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("non-contiguous AppendAt: err = %v, want ErrOffsetOutOfRange", err)
	}
	// Truncate back to half and re-replay the tail.
	if err := follower.TruncateTo(half); err != nil {
		t.Fatal(err)
	}
	if end := follower.FlushedEnd(); end != half {
		t.Fatalf("FlushedEnd after truncate = %d, want %d", end, half)
	}
	if err := follower.AppendAt(half, raw[half:]); err != nil {
		t.Fatal(err)
	}
	if err := follower.TruncateTo(int64(len(raw)) + 50); err != nil {
		t.Fatalf("truncate past end must be a no-op, got %v", err)
	}
	if err := follower.TruncateTo(-1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("truncate below earliest: err = %v, want ErrOffsetOutOfRange", err)
	}
}

func TestLogLimitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for i := 0; i < 3; i++ {
		off, err := l.Append(NewMessageSet([]byte(fmt.Sprintf("msg-%d", i))))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// The high watermark covers the first two messages; the third is an
	// unacked tail.
	l.SetLimit(offs[2])
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Latest(); got != offs[2] {
		t.Fatalf("Latest after restart = %d, want restored limit %d", got, offs[2])
	}
	// The divergence truncate a replica runs on (re)joining now has a real
	// watermark to cut to: the unacked tail does not survive the restart.
	if err := re.TruncateTo(re.Latest()); err != nil {
		t.Fatal(err)
	}
	if got := re.FlushedEnd(); got != offs[2] {
		t.Fatalf("FlushedEnd after restart truncate = %d, want %d (unacked tail must be cut)", got, offs[2])
	}
	// Removing the cap removes the checkpoint.
	re.SetLimit(-1)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if got := third.Latest(); got != offs[2] {
		t.Fatalf("Latest with checkpoint removed = %d, want flushed end %d", got, offs[2])
	}
}

func TestParseStatusMapsReplicationErrors(t *testing.T) {
	cases := []struct {
		msg  string
		want error
	}{
		{"kafka: offset out of range: offset 9", ErrOffsetOutOfRange},
		{"kafka: not the partition leader: t/0", ErrNotLeader},
		{"kafka: not enough in-sync replicas: t/0 has 1, need 2", ErrNotEnoughReplicas},
		{"kafka: timed out waiting for replica acks: t/0 offset 4", ErrAckTimeout},
		{"kafka: no leader elected: t/0", errNoLeader},
	}
	for _, c := range cases {
		frame := append([]byte{1}, c.msg...)
		if _, err := parseStatus(frame); !errors.Is(err, c.want) {
			t.Fatalf("parseStatus(%q) = %v, want %v", c.msg, err, c.want)
		}
	}
	if _, err := parseStatus(append([]byte{1}, "something else"...)); err == nil {
		t.Fatal("unknown error frame must still surface an error")
	}
}

func newTestCluster(t *testing.T, brokers int, cfg ReplicatedConfig) *ReplicatedCluster {
	t.Helper()
	dirs := make([]string, brokers)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("broker-%d", i))
	}
	c, err := NewReplicatedCluster(dirs, BrokerConfig{PartitionsPerTopic: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestReplicatedProduceConsumeAndByteIdenticalLogs(t *testing.T) {
	c := newTestCluster(t, 3, ReplicatedConfig{
		Cluster: "t1", Replicas: 3, MinISR: 2,
		FetchWait: 20 * time.Millisecond, AckTimeout: 5 * time.Second,
	})
	if err := c.AddTopic("events"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("events", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	client := c.Client()
	defer client.Close()

	n, err := client.Partitions("events")
	if err != nil || n != 2 {
		t.Fatalf("Partitions = %d, %v; want 2", n, err)
	}
	var offsets []int64
	var payloads [][]byte
	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("event-%03d", i))
		off, err := client.Produce("events", 0, NewMessageSet(payload))
		if err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		offsets, payloads = append(offsets, off), append(payloads, payload)
	}

	// Consume everything back through the routed client.
	consumer := NewSimpleConsumer(client, 1<<20)
	msgs, err := consumer.Consume("events", 0, offsets[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != len(payloads) {
		t.Fatalf("consumed %d messages, want %d", len(msgs), len(payloads))
	}
	for i, m := range msgs {
		if !bytes.Equal(m.Payload, payloads[i]) {
			t.Fatalf("message %d: payload %q, want %q", i, m.Payload, payloads[i])
		}
		if i+1 < len(offsets) && m.NextOffset != offsets[i+1] {
			t.Fatalf("message %d: next offset %d, want %d", i, m.NextOffset, offsets[i+1])
		}
	}

	// Every replica's log must be byte-identical over the acked range —
	// a follower Fetch at a leader-issued offset returns the same bytes.
	leader, err := c.LeaderOf("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := c.Broker(leader).Broker().log("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ll.Read(offsets[0], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, rb := range c.Brokers() {
		if rb.Instance() == leader {
			continue
		}
		waitCond(t, "follower catch-up", 5*time.Second, func() bool {
			fl, err := rb.Broker().log("events", 0)
			if err != nil {
				return false
			}
			return fl.FlushedEnd() >= ll.FlushedEnd()
		})
		fl, err := rb.Broker().log("events", 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fl.ReadUncapped(offsets[0], 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("follower %s log differs from leader over acked range", rb.Instance())
		}
		checked++
	}
	if checked != 2 {
		t.Fatalf("checked %d followers, want 2", checked)
	}
}

func TestReplicatedFailoverPreservesConsumerOffset(t *testing.T) {
	c := newTestCluster(t, 3, ReplicatedConfig{
		Cluster: "t2", Replicas: 3, MinISR: 2,
		FetchWait: 20 * time.Millisecond, LagTimeout: 300 * time.Millisecond,
	})
	if err := c.AddTopic("orders"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("orders", 3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	client := c.Client()
	defer client.Close()

	var offsets []int64
	var payloads [][]byte
	for i := 0; i < 10; i++ {
		payload := []byte(fmt.Sprintf("order-%03d", i))
		off, err := client.Produce("orders", 1, NewMessageSet(payload))
		if err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		offsets, payloads = append(offsets, off), append(payloads, payload)
	}

	// A consumer reads half the stream and saves its offset.
	consumer := NewSimpleConsumer(client, 1<<20)
	msgs, err := consumer.Consume("orders", 1, offsets[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 {
		t.Fatalf("consumed %d, want 10", len(msgs))
	}
	saved := msgs[4].NextOffset // consumed through message 4

	// Kill the leader mid-stream.
	leader, err := c.LeaderOf("orders", 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Kill(leader)
	waitCond(t, "new leader", 10*time.Second, func() bool {
		l, err := c.LeaderOf("orders", 1)
		return err == nil && l != leader
	})

	// Resuming at the saved offset yields exactly messages 5..9 with
	// unchanged offsets: physical offsets survived the failover.
	waitCond(t, "resumed consumption", 10*time.Second, func() bool {
		rest, err := consumer.Consume("orders", 1, saved)
		return err == nil && len(rest) == 5
	})
	rest, err := consumer.Consume("orders", 1, saved)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range rest {
		if !bytes.Equal(m.Payload, payloads[5+i]) {
			t.Fatalf("post-failover message %d: payload %q, want %q", i, m.Payload, payloads[5+i])
		}
		if 6+i < len(offsets) && m.NextOffset != offsets[6+i] {
			t.Fatalf("post-failover message %d: next offset %d, want %d (offsets must survive failover)", i, m.NextOffset, offsets[6+i])
		}
	}
}

func TestProduceRejectedBelowMinISR(t *testing.T) {
	// Two brokers, MinISR 2: killing one must block produces instead of
	// accepting writes a single failure could lose.
	c := newTestCluster(t, 2, ReplicatedConfig{
		Cluster: "t3", Replicas: 2, MinISR: 2,
		FetchWait: 20 * time.Millisecond, LagTimeout: 200 * time.Millisecond,
	})
	if err := c.AddTopic("audit"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("audit", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	leader, err := c.LeaderOf("audit", 0)
	if err != nil {
		t.Fatal(err)
	}
	var follower string
	for _, rb := range c.Brokers() {
		if rb.Instance() != leader {
			follower = rb.Instance()
		}
	}
	c.Kill(follower)
	waitCond(t, "ISR shrink", 5*time.Second, func() bool {
		return len(c.ISROf("audit", 0)) < 2
	})
	_, err = c.Broker(leader).Produce("audit", 0, NewMessageSet([]byte("x")))
	if !errors.Is(err, ErrNotEnoughReplicas) {
		t.Fatalf("produce with shrunken ISR: err = %v, want ErrNotEnoughReplicas", err)
	}
}

func TestProduceToFollowerReturnsNotLeader(t *testing.T) {
	c := newTestCluster(t, 2, ReplicatedConfig{
		Cluster: "t4", Replicas: 2, MinISR: 1, FetchWait: 20 * time.Millisecond,
	})
	if err := c.AddTopic("logs"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("logs", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	leader, err := c.LeaderOf("logs", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range c.Brokers() {
		if rb.Instance() == leader {
			continue
		}
		if rb.Role("logs", 0) != helix.StateStandby {
			t.Fatalf("%s role = %s, want STANDBY", rb.Instance(), rb.Role("logs", 0))
		}
		_, err := rb.Produce("logs", 0, NewMessageSet([]byte("x")))
		if !errors.Is(err, ErrNotLeader) {
			t.Fatalf("produce to follower: err = %v, want ErrNotLeader", err)
		}
	}
}

func TestReplicaFetchEpochFencing(t *testing.T) {
	c := newTestCluster(t, 2, ReplicatedConfig{
		Cluster: "t5", Replicas: 2, MinISR: 1, FetchWait: 20 * time.Millisecond,
	})
	if err := c.AddTopic("fence"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("fence", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	leader, err := c.LeaderOf("fence", 0)
	if err != nil {
		t.Fatal(err)
	}
	rb := c.Broker(leader)
	data, _, err := c.sess.Get(isrPath("t5", "fence", 0))
	if err != nil {
		t.Fatal(err)
	}
	var rec isrRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}

	// A fetch under an older epoch is fenced, and must not depose the leader.
	if _, _, err := rb.ReplicaFetch("fence", 0, 0, 1<<20, 0, "broker-stale", rec.Epoch-1); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("stale-epoch replica fetch: err = %v, want ErrNotLeader", err)
	}
	if _, err := rb.Produce("fence", 0, NewMessageSet([]byte("still-leading"))); err != nil {
		t.Fatalf("produce after stale-epoch fetch: %v", err)
	}

	// A fetch under a newer epoch proves a newer election: fenced, and the
	// stale leader deposes itself so produce waiters fail fast.
	if _, _, err := rb.ReplicaFetch("fence", 0, 0, 1<<20, 0, "broker-new", rec.Epoch+1); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("newer-epoch replica fetch: err = %v, want ErrNotLeader", err)
	}
	if _, err := rb.Produce("fence", 0, NewMessageSet([]byte("deposed"))); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("produce on deposed leader: err = %v, want ErrNotLeader", err)
	}
}

// scriptedPeer serves ReplicaFetch straight from a local Log, standing in for
// a leader broker so followerLoop can be driven deterministically.
type scriptedPeer struct {
	l     *Log
	hw    int64
	epoch int
}

func (p *scriptedPeer) ReplicaFetch(topic string, partition int, offset int64, maxBytes int, wait time.Duration, follower string, epoch int) (int64, []byte, error) {
	if epoch != p.epoch {
		return 0, nil, fmt.Errorf("%w: fetch epoch %d, leader epoch %d", ErrNotLeader, epoch, p.epoch)
	}
	chunk, err := p.l.ReadUncapped(offset, maxBytes)
	if err != nil {
		return 0, nil, err
	}
	return p.hw, chunk, nil
}

// TestFollowerTruncatesUnackedTailOnEpochChange is the deterministic
// divergence regression: under epoch 1 the follower replicates the leader's
// log past the high watermark (an unacked tail); the epoch-2 leader's log has
// a *different* same-length tail at those offsets, already extended by new
// produces. A follower that merely swaps peers on the leader change fetches
// at its stale end, gets message-boundary-aligned bytes that parse cleanly,
// and corrupts silently below the future watermark. The fix: on an epoch
// bump, truncate to the local high watermark before the first fetch.
func TestFollowerTruncatesUnackedTailOnEpochChange(t *testing.T) {
	srv := zk.NewServer()
	sess := srv.NewSession()
	defer sess.Close()
	// The controller only sets up the cluster tree; it is never started, so
	// this test — not an election — decides epochs and leaders.
	ctrl, err := helix.NewController(srv, "t7")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	mkLog := func(msgs ...string) *Log {
		t.Helper()
		l, err := OpenLog(t.TempDir(), LogConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		for _, m := range msgs {
			if _, err := l.Append(NewMessageSet([]byte(m))); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	acked := []string{"acked-000", "acked-001", "acked-002"}
	// Epoch-1 leader: acked messages plus a tail it never acked.
	ackedOnly := mkLog(acked...)
	hw := ackedOnly.FlushedEnd()
	l1 := mkLog(append(append([]string{}, acked...), "unacked-old-tail")...)
	// Epoch-2 leader: same acked prefix, a different same-length tail (its
	// own unacked inheritance, now committed), plus post-failover produces.
	l2 := mkLog(append(append([]string{}, acked...), "unacked-new-tail", "post-failover-000")...)

	var mu sync.Mutex
	peers := map[string]*scriptedPeer{
		"alpha": {l: l1, hw: hw, epoch: 1},
	}
	resolve := func(instance string) (ReplicaPeer, error) {
		mu.Lock()
		defer mu.Unlock()
		p, ok := peers[instance]
		if !ok {
			return nil, fmt.Errorf("kafka: unknown broker %q", instance)
		}
		return p, nil
	}

	b, err := NewBroker(0, t.TempDir(), BrokerConfig{PartitionsPerTopic: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ReplicatedConfig{Cluster: "t7", FetchWait: 5 * time.Millisecond}
	rb, err := NewReplicatedBroker(b, srv, cfg, resolve)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	publish := func(rec isrRecord) {
		t.Helper()
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		p := isrPath("t7", "events", 0)
		if _, stat, err := sess.Get(p); err == nil {
			if _, err := sess.Set(p, data, stat.Version); err != nil {
				t.Fatal(err)
			}
			return
		}
		if err := sess.CreateAll(p, data); err != nil {
			t.Fatal(err)
		}
	}
	publish(isrRecord{Epoch: 1, Leader: "alpha", ISR: []string{"alpha", rb.Instance()}})

	// Start following (the transition the Helix controller would issue).
	if err := rb.apply(helix.Transition{
		Resource: "events", Partition: 0,
		From: helix.StateOffline, To: helix.StateStandby,
	}); err != nil {
		t.Fatal(err)
	}
	fl, err := rb.Broker().log("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	want1, err := l1.ReadUncapped(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "epoch-1 replication incl. unacked tail", 5*time.Second, func() bool {
		got, err := fl.ReadUncapped(0, 1<<20)
		return err == nil && bytes.Equal(want1, got)
	})
	if got := fl.Latest(); got != hw {
		t.Fatalf("follower visible end = %d, want high watermark %d", got, hw)
	}

	// Failover: epoch 2, new leader, log already longer than the follower's
	// stale end and boundary-aligned with it.
	mu.Lock()
	peers["beta"] = &scriptedPeer{l: l2, hw: l2.FlushedEnd(), epoch: 2}
	mu.Unlock()
	publish(isrRecord{Epoch: 2, Leader: "beta", ISR: []string{"beta", rb.Instance()}})

	want2, err := l2.ReadUncapped(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "epoch-2 convergence", 5*time.Second, func() bool {
		got, err := fl.ReadUncapped(0, 1<<20)
		return err == nil && bytes.Equal(want2, got)
	})
}

// TestFollowerUnackedTailRepairedOnFailover reproduces the follower-divergence
// hazard: both followers hold distinct unacked tails past the high watermark
// (as if replicated from a leadership that died before acking them), the
// leader is killed, and one of those followers is promoted. The surviving
// follower must truncate to the watermark when it sees the new leader epoch —
// otherwise its first fetch lands mid-log on the promoted leader and the
// replica silently diverges byte-for-byte.
func TestFollowerUnackedTailRepairedOnFailover(t *testing.T) {
	c := newTestCluster(t, 3, ReplicatedConfig{
		Cluster: "t6", Replicas: 3, MinISR: 2,
		FetchWait: 200 * time.Millisecond, LagTimeout: 500 * time.Millisecond,
	})
	if err := c.AddTopic("div"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("div", 3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	client := c.Client()
	defer client.Close()

	var payloads [][]byte
	var offsets []int64
	for i := 0; i < 5; i++ {
		payload := []byte(fmt.Sprintf("acked-%03d", i))
		off, err := client.Produce("div", 0, NewMessageSet(payload))
		if err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		payloads, offsets = append(payloads, payload), append(offsets, off)
	}
	leader, err := c.LeaderOf("div", 0)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := c.Broker(leader).Broker().log("div", 0)
	if err != nil {
		t.Fatal(err)
	}
	hw := ll.FlushedEnd()
	for _, rb := range c.Brokers() {
		if rb.Instance() == leader {
			continue
		}
		fl, err := rb.Broker().log("div", 0)
		if err != nil {
			t.Fatal(err)
		}
		waitCond(t, "follower catch-up", 5*time.Second, func() bool {
			return fl.FlushedEnd() >= hw
		})
	}

	// Give each follower a distinct, valid-framed tail past the high
	// watermark: same length, different content — the byte-divergence shape
	// that a message-boundary check alone cannot catch.
	i := 0
	for _, rb := range c.Brokers() {
		if rb.Instance() == leader {
			continue
		}
		fl, err := rb.Broker().log("div", 0)
		if err != nil {
			t.Fatal(err)
		}
		rogue := NewMessageSet([]byte(fmt.Sprintf("unacked-tail-%d", i)))
		if err := fl.AppendAt(fl.FlushedEnd(), rogue.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := fl.Flush(); err != nil {
			t.Fatal(err)
		}
		i++
	}
	c.Kill(leader)
	var promoted string
	waitCond(t, "promoted leader", 10*time.Second, func() bool {
		l, err := c.LeaderOf("div", 0)
		promoted = l
		return err == nil && l != leader
	})

	// Produce through the failover so the new leader's log grows past the
	// surviving follower's stale end — the exact window where a non-truncating
	// follower would fetch misaligned bytes and corrupt silently.
	for i := 5; i < 10; i++ {
		payload := []byte(fmt.Sprintf("acked-%03d", i))
		var off int64
		deadline := time.Now().Add(15 * time.Second)
		for {
			off, err = client.Produce("div", 0, NewMessageSet(payload))
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("produce %d across failover: %v", i, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		payloads, offsets = append(payloads, payload), append(offsets, off)
	}

	// Every surviving replica must converge to the promoted leader's log,
	// byte-identical over its full range.
	pl, err := c.Broker(promoted).Broker().log("div", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.ReadUncapped(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range c.Brokers() {
		if rb.Instance() == promoted {
			continue
		}
		fl, err := rb.Broker().log("div", 0)
		if err != nil {
			t.Fatal(err)
		}
		waitCond(t, "follower convergence", 10*time.Second, func() bool {
			got, err := fl.ReadUncapped(0, 1<<20)
			return err == nil && bytes.Equal(want, got)
		})
	}
	// And the acked stream is intact at unchanged offsets.
	consumer := NewSimpleConsumer(client, 1<<20)
	msgs, err := consumer.Consume("div", 0, offsets[0])
	if err != nil {
		t.Fatal(err)
	}
	byOffset := map[int64][]byte{}
	for i, m := range msgs {
		start := offsets[0]
		if i > 0 {
			start = msgs[i-1].NextOffset
		}
		byOffset[start] = m.Payload
	}
	for i, off := range offsets {
		if !bytes.Equal(byOffset[off], payloads[i]) {
			t.Fatalf("acked message %d at offset %d: got %q, want %q", i, off, byOffset[off], payloads[i])
		}
	}
}
