package kafka

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"datainfra/internal/helix"
)

func TestLogVisibilityLimit(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var sets []MessageSet
	var offs []int64
	for i := 0; i < 3; i++ {
		set := NewMessageSet([]byte(fmt.Sprintf("msg-%d", i)))
		off, err := l.Append(set)
		if err != nil {
			t.Fatal(err)
		}
		sets, offs = append(sets, set), append(offs, off)
	}
	end := l.FlushedEnd()

	// Cap visibility at the second message's start.
	l.SetLimit(offs[1])
	if got := l.Latest(); got != offs[1] {
		t.Fatalf("Latest = %d, want limit %d", got, offs[1])
	}
	chunk, err := l.Read(offs[0], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(chunk)) != offs[1]-offs[0] {
		t.Fatalf("capped read returned %d bytes, want %d", len(chunk), offs[1]-offs[0])
	}
	if _, err := l.Read(offs[1]+1, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("read past limit: err = %v, want ErrOffsetOutOfRange", err)
	}
	// The replica path sees everything durable.
	raw, err := l.ReadUncapped(offs[0], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != end-offs[0] {
		t.Fatalf("uncapped read returned %d bytes, want %d", len(raw), end-offs[0])
	}
	// Raising the limit past the end exposes everything.
	l.SetLimit(end + 100)
	if got := l.Latest(); got != end {
		t.Fatalf("Latest = %d, want flushed end %d", got, end)
	}
	l.SetLimit(-1)
	if got := l.Latest(); got != end {
		t.Fatalf("Latest with cap removed = %d, want %d", got, end)
	}
}

func TestLogAppendAtAndTruncate(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	leader, err := OpenLog(dirA, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := OpenLog(dirB, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	for i := 0; i < 5; i++ {
		if _, err := leader.Append(NewMessageSet([]byte(fmt.Sprintf("payload-%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := leader.ReadUncapped(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Replay in two chunks at exact offsets.
	half := int64(validPrefix(raw[:len(raw)/2]))
	if err := follower.AppendAt(0, raw[:half]); err != nil {
		t.Fatal(err)
	}
	if err := follower.AppendAt(half, raw[half:]); err != nil {
		t.Fatal(err)
	}
	if err := follower.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := follower.ReadUncapped(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, got) {
		t.Fatal("follower log is not byte-identical after AppendAt replay")
	}
	// Non-contiguous appends are rejected.
	if err := follower.AppendAt(half, raw[half:]); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("non-contiguous AppendAt: err = %v, want ErrOffsetOutOfRange", err)
	}
	// Truncate back to half and re-replay the tail.
	if err := follower.TruncateTo(half); err != nil {
		t.Fatal(err)
	}
	if end := follower.FlushedEnd(); end != half {
		t.Fatalf("FlushedEnd after truncate = %d, want %d", end, half)
	}
	if err := follower.AppendAt(half, raw[half:]); err != nil {
		t.Fatal(err)
	}
	if err := follower.TruncateTo(int64(len(raw)) + 50); err != nil {
		t.Fatalf("truncate past end must be a no-op, got %v", err)
	}
	if err := follower.TruncateTo(-1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("truncate below earliest: err = %v, want ErrOffsetOutOfRange", err)
	}
}

func newTestCluster(t *testing.T, brokers int, cfg ReplicatedConfig) *ReplicatedCluster {
	t.Helper()
	dirs := make([]string, brokers)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("broker-%d", i))
	}
	c, err := NewReplicatedCluster(dirs, BrokerConfig{PartitionsPerTopic: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestReplicatedProduceConsumeAndByteIdenticalLogs(t *testing.T) {
	c := newTestCluster(t, 3, ReplicatedConfig{
		Cluster: "t1", Replicas: 3, MinISR: 2,
		FetchWait: 20 * time.Millisecond, AckTimeout: 5 * time.Second,
	})
	if err := c.AddTopic("events"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("events", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	client := c.Client()
	defer client.Close()

	n, err := client.Partitions("events")
	if err != nil || n != 2 {
		t.Fatalf("Partitions = %d, %v; want 2", n, err)
	}
	var offsets []int64
	var payloads [][]byte
	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("event-%03d", i))
		off, err := client.Produce("events", 0, NewMessageSet(payload))
		if err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		offsets, payloads = append(offsets, off), append(payloads, payload)
	}

	// Consume everything back through the routed client.
	consumer := NewSimpleConsumer(client, 1<<20)
	msgs, err := consumer.Consume("events", 0, offsets[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != len(payloads) {
		t.Fatalf("consumed %d messages, want %d", len(msgs), len(payloads))
	}
	for i, m := range msgs {
		if !bytes.Equal(m.Payload, payloads[i]) {
			t.Fatalf("message %d: payload %q, want %q", i, m.Payload, payloads[i])
		}
		if i+1 < len(offsets) && m.NextOffset != offsets[i+1] {
			t.Fatalf("message %d: next offset %d, want %d", i, m.NextOffset, offsets[i+1])
		}
	}

	// Every replica's log must be byte-identical over the acked range —
	// a follower Fetch at a leader-issued offset returns the same bytes.
	leader, err := c.LeaderOf("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := c.Broker(leader).Broker().log("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ll.Read(offsets[0], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, rb := range c.Brokers() {
		if rb.Instance() == leader {
			continue
		}
		waitCond(t, "follower catch-up", 5*time.Second, func() bool {
			fl, err := rb.Broker().log("events", 0)
			if err != nil {
				return false
			}
			return fl.FlushedEnd() >= ll.FlushedEnd()
		})
		fl, err := rb.Broker().log("events", 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fl.ReadUncapped(offsets[0], 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("follower %s log differs from leader over acked range", rb.Instance())
		}
		checked++
	}
	if checked != 2 {
		t.Fatalf("checked %d followers, want 2", checked)
	}
}

func TestReplicatedFailoverPreservesConsumerOffset(t *testing.T) {
	c := newTestCluster(t, 3, ReplicatedConfig{
		Cluster: "t2", Replicas: 3, MinISR: 2,
		FetchWait: 20 * time.Millisecond, LagTimeout: 300 * time.Millisecond,
	})
	if err := c.AddTopic("orders"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("orders", 3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	client := c.Client()
	defer client.Close()

	var offsets []int64
	var payloads [][]byte
	for i := 0; i < 10; i++ {
		payload := []byte(fmt.Sprintf("order-%03d", i))
		off, err := client.Produce("orders", 1, NewMessageSet(payload))
		if err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		offsets, payloads = append(offsets, off), append(payloads, payload)
	}

	// A consumer reads half the stream and saves its offset.
	consumer := NewSimpleConsumer(client, 1 << 20)
	msgs, err := consumer.Consume("orders", 1, offsets[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 {
		t.Fatalf("consumed %d, want 10", len(msgs))
	}
	saved := msgs[4].NextOffset // consumed through message 4

	// Kill the leader mid-stream.
	leader, err := c.LeaderOf("orders", 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Kill(leader)
	waitCond(t, "new leader", 10*time.Second, func() bool {
		l, err := c.LeaderOf("orders", 1)
		return err == nil && l != leader
	})

	// Resuming at the saved offset yields exactly messages 5..9 with
	// unchanged offsets: physical offsets survived the failover.
	waitCond(t, "resumed consumption", 10*time.Second, func() bool {
		rest, err := consumer.Consume("orders", 1, saved)
		return err == nil && len(rest) == 5
	})
	rest, err := consumer.Consume("orders", 1, saved)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range rest {
		if !bytes.Equal(m.Payload, payloads[5+i]) {
			t.Fatalf("post-failover message %d: payload %q, want %q", i, m.Payload, payloads[5+i])
		}
		if 6+i < len(offsets) && m.NextOffset != offsets[6+i] {
			t.Fatalf("post-failover message %d: next offset %d, want %d (offsets must survive failover)", i, m.NextOffset, offsets[6+i])
		}
	}
}

func TestProduceRejectedBelowMinISR(t *testing.T) {
	// Two brokers, MinISR 2: killing one must block produces instead of
	// accepting writes a single failure could lose.
	c := newTestCluster(t, 2, ReplicatedConfig{
		Cluster: "t3", Replicas: 2, MinISR: 2,
		FetchWait: 20 * time.Millisecond, LagTimeout: 200 * time.Millisecond,
	})
	if err := c.AddTopic("audit"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("audit", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	leader, err := c.LeaderOf("audit", 0)
	if err != nil {
		t.Fatal(err)
	}
	var follower string
	for _, rb := range c.Brokers() {
		if rb.Instance() != leader {
			follower = rb.Instance()
		}
	}
	c.Kill(follower)
	waitCond(t, "ISR shrink", 5*time.Second, func() bool {
		return len(c.ISROf("audit", 0)) < 2
	})
	_, err = c.Broker(leader).Produce("audit", 0, NewMessageSet([]byte("x")))
	if !errors.Is(err, ErrNotEnoughReplicas) {
		t.Fatalf("produce with shrunken ISR: err = %v, want ErrNotEnoughReplicas", err)
	}
}

func TestProduceToFollowerReturnsNotLeader(t *testing.T) {
	c := newTestCluster(t, 2, ReplicatedConfig{
		Cluster: "t4", Replicas: 2, MinISR: 1, FetchWait: 20 * time.Millisecond,
	})
	if err := c.AddTopic("logs"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("logs", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	leader, err := c.LeaderOf("logs", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range c.Brokers() {
		if rb.Instance() == leader {
			continue
		}
		if rb.Role("logs", 0) != helix.StateStandby {
			t.Fatalf("%s role = %s, want STANDBY", rb.Instance(), rb.Role("logs", 0))
		}
		_, err := rb.Produce("logs", 0, NewMessageSet([]byte("x")))
		if !errors.Is(err, ErrNotLeader) {
			t.Fatalf("produce to follower: err = %v, want ErrNotLeader", err)
		}
	}
}
