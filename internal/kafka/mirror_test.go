package kafka

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestMirrorEnvelopeRoundTrip(t *testing.T) {
	in := MirrorEnvelope{Origin: "dc-east", Partition: 7, Seq: 1234567, Sub: 3, Payload: []byte("hello")}
	out, err := DecodeEnvelope(EncodeEnvelope(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Origin != in.Origin || out.Partition != in.Partition ||
		out.Seq != in.Seq || out.Sub != in.Sub || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mangled envelope: %+v -> %+v", in, out)
	}
	if _, err := DecodeEnvelope([]byte("raw payload")); !errors.Is(err, ErrCorruptEnvelope) {
		t.Fatalf("raw payload decoded as envelope: %v", err)
	}
	if _, err := DecodeEnvelope(EncodeEnvelope(in)[:5]); !errors.Is(err, ErrCorruptEnvelope) {
		t.Fatalf("truncated envelope decoded: %v", err)
	}
	empty := MirrorEnvelope{Origin: "x"}
	if out, err := DecodeEnvelope(EncodeEnvelope(empty)); err != nil || len(out.Payload) != 0 {
		t.Fatalf("empty payload round trip: %+v, %v", out, err)
	}
}

func newMirrorBroker(t *testing.T, id int) *Broker {
	t.Helper()
	b, err := NewBroker(id, t.TempDir(), BrokerConfig{PartitionsPerTopic: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// drainPayloads consumes a whole partition sequentially and returns the raw
// payloads in log order.
func drainPayloads(t *testing.T, b BrokerClient, topic string, partition int) [][]byte {
	t.Helper()
	earliest, latest, err := b.Offsets(topic, partition)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for off := earliest; off < latest; {
		chunk, err := b.Fetch(topic, partition, off, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		msgs, err := Decode(chunk, off)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			out = append(out, m.Payload)
			off = m.NextOffset
		}
	}
	return out
}

// waitMirrored polls until the destination partition holds at least want
// messages.
func waitMirrored(t *testing.T, dst BrokerClient, topic string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(drainPayloads(t, dst, topic, 0)) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("destination never reached %d messages", want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMirrorMakerCopiesInOrder(t *testing.T) {
	src, dst := newMirrorBroker(t, 0), newMirrorBroker(t, 1)
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := src.Produce("events", 0, NewMessageSet([]byte(fmt.Sprintf("m%02d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	mm, err := NewMirrorMaker(src, dst, MirrorConfig{
		Topics:         []string{"events"},
		CheckpointPath: filepath.Join(t.TempDir(), "mirror.checkpoint"),
		FetchWait:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mm.Start(); err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	waitMirrored(t, dst, "events", n)
	got := drainPayloads(t, dst, "events", 0)
	if len(got) != n {
		t.Fatalf("mirrored %d messages, want %d", len(got), n)
	}
	for i, p := range got {
		if want := fmt.Sprintf("m%02d", i); string(p) != want {
			t.Fatalf("message %d: got %q, want %q (order not preserved)", i, p, want)
		}
	}
	if mm.Mirrored() != n {
		t.Fatalf("Mirrored() = %d, want %d", mm.Mirrored(), n)
	}
}

func TestMirrorMakerGlobalOrderTwoOrigins(t *testing.T) {
	east, west, dst := newMirrorBroker(t, 0), newMirrorBroker(t, 1), newMirrorBroker(t, 2)
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := east.Produce("events", 0, NewMessageSet([]byte(fmt.Sprintf("e%02d", i)))); err != nil {
			t.Fatal(err)
		}
		if _, err := west.Produce("events", 0, NewMessageSet([]byte(fmt.Sprintf("w%02d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	for origin, src := range map[string]*Broker{"east": east, "west": west} {
		mm, err := NewMirrorMaker(src, dst, MirrorConfig{
			Topics:         []string{"events"},
			CheckpointPath: filepath.Join(dir, origin+".checkpoint"),
			Origin:         origin,
			GlobalOrder:    true,
			FetchWait:      10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mm.Start(); err != nil {
			t.Fatal(err)
		}
		defer mm.Close()
	}
	waitMirrored(t, dst, "events", 2*n)

	lastSeq := map[string]int64{"east": -1, "west": -1}
	counts := map[string]int{}
	for i, raw := range drainPayloads(t, dst, "events", 0) {
		env, err := DecodeEnvelope(raw)
		if err != nil {
			t.Fatalf("destination message %d: %v", i, err)
		}
		if env.Seq <= lastSeq[env.Origin] {
			t.Fatalf("origin %s: seq %d after %d — per-origin order broken", env.Origin, env.Seq, lastSeq[env.Origin])
		}
		lastSeq[env.Origin] = env.Seq
		counts[env.Origin]++
		if want := byte('e'); env.Origin == "west" {
			want = 'w'
		} else if env.Payload[0] != want {
			t.Fatalf("origin %s carries payload %q", env.Origin, env.Payload)
		}
	}
	if counts["east"] != n || counts["west"] != n {
		t.Fatalf("per-origin counts %v, want %d each", counts, n)
	}
}

func TestMirrorMakerEnvelopesCompressedWrappers(t *testing.T) {
	src, dst := newMirrorBroker(t, 0), newMirrorBroker(t, 1)
	set := NewMessageSet([]byte("a"), []byte("b"), []byte("c"))
	wrapped, err := set.Compress()
	if err != nil {
		t.Fatal(err)
	}
	off, err := src.Produce("events", 0, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewMirrorMaker(src, dst, MirrorConfig{
		Topics:         []string{"events"},
		CheckpointPath: filepath.Join(t.TempDir(), "mirror.checkpoint"),
		Origin:         "east",
		GlobalOrder:    true,
		FetchWait:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mm.Start(); err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	waitMirrored(t, dst, "events", 3)
	for i, raw := range drainPayloads(t, dst, "events", 0) {
		env, err := DecodeEnvelope(raw)
		if err != nil {
			t.Fatal(err)
		}
		if env.Seq != off || env.Sub != i {
			t.Fatalf("inner message %d stamped (seq=%d sub=%d), want (seq=%d sub=%d)",
				i, env.Seq, env.Sub, off, i)
		}
		if want := string([]byte{'a' + byte(i)}); string(env.Payload) != want {
			t.Fatalf("inner message %d payload %q, want %q", i, env.Payload, want)
		}
	}
}

// TestMirrorMakerCheckpointRestart is the deterministic crash-window test:
// the mirror is killed *between* producing a batch to the destination and
// persisting its checkpoint — the at-least-once window — then restarted from
// the checkpoint file. The restarted mirror must resume at exactly the
// checkpointed offset, re-deliver at most the one in-flight batch, and lose
// nothing.
func TestMirrorMakerCheckpointRestart(t *testing.T) {
	src, dst := newMirrorBroker(t, 0), newMirrorBroker(t, 1)
	const n = 30
	var offsets []int64
	for i := 0; i < n; i++ {
		off, err := src.Produce("events", 0, NewMessageSet([]byte(fmt.Sprintf("m%02d", i))))
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
	}
	// Each message is 3 payload bytes + 10 overhead = 13 bytes; a 40-byte
	// fetch window yields deterministic 3-message batches.
	const batchMsgs = 3
	cpPath := filepath.Join(t.TempDir(), "mirror.checkpoint")
	mm, err := NewMirrorMaker(src, dst, MirrorConfig{
		Topics:         []string{"events"},
		CheckpointPath: cpPath,
		Origin:         "east",
		GlobalOrder:    true,
		FetchMaxBytes:  40,
		FetchWait:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the partition's mirror goroutine after the third batch is in the
	// destination but before its checkpoint lands: batches 1-2 are
	// checkpointed, batch 3 is the in-flight redelivery window.
	killedAt := make(chan int64, 1)
	batches := 0
	mm.afterProduce = func(topic string, partition int, next int64) {
		batches++
		if batches == 3 {
			killedAt <- next
			runtime.Goexit() // simulated crash: wg.Done runs via defer, checkpoint does not
		}
	}
	if err := mm.Start(); err != nil {
		t.Fatal(err)
	}
	var next3 int64
	select {
	case next3 = <-killedAt:
	case <-time.After(10 * time.Second):
		t.Fatal("mirror never reached the third batch")
	}
	mm.Close()

	// The checkpoint on disk must be the end of batch 2, not batch 3.
	wantCP := offsets[2*batchMsgs] // start offset of message 7 = end of batch 2
	cp, ok := mm.Checkpoint("events", 0)
	if !ok || cp != wantCP {
		t.Fatalf("checkpoint after kill = %d (ok=%v), want %d", cp, ok, wantCP)
	}
	if data, err := os.ReadFile(cpPath); err != nil || len(data) == 0 {
		t.Fatalf("checkpoint file unreadable: %q, %v", data, err)
	}
	if next3 <= wantCP {
		t.Fatalf("batch 3 ended at %d, not past the checkpoint %d", next3, wantCP)
	}

	// Restart: a fresh MirrorMaker over the same checkpoint file.
	mm2, err := NewMirrorMaker(src, dst, MirrorConfig{
		Topics:         []string{"events"},
		CheckpointPath: cpPath,
		Origin:         "east",
		GlobalOrder:    true,
		FetchMaxBytes:  40,
		FetchWait:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := mm2.Checkpoint("events", 0); !ok || got != wantCP {
		t.Fatalf("restarted mirror resumes at %d (ok=%v), want checkpointed %d", got, ok, wantCP)
	}
	if err := mm2.Start(); err != nil {
		t.Fatal(err)
	}
	defer mm2.Close()
	waitMirrored(t, dst, "events", n+batchMsgs)

	// Zero loss, bounded redelivery: every source offset delivered, only the
	// in-flight batch twice, first occurrences in source order.
	seen := map[int64]int{}
	lastSeq := int64(-1)
	raws := drainPayloads(t, dst, "events", 0)
	for i, raw := range raws {
		env, err := DecodeEnvelope(raw)
		if err != nil {
			t.Fatalf("destination message %d: %v", i, err)
		}
		if seen[env.Seq] == 0 {
			if env.Seq <= lastSeq {
				t.Fatalf("first occurrence of seq %d after %d — causal order broken", env.Seq, lastSeq)
			}
			lastSeq = env.Seq
		}
		seen[env.Seq]++
	}
	for i, off := range offsets {
		if seen[off] == 0 {
			t.Fatalf("message %d (source offset %d) lost across the mirror restart", i, off)
		}
	}
	dups := len(raws) - len(seen)
	if dups != batchMsgs {
		t.Fatalf("redelivered %d messages, want exactly the killed batch (%d)", dups, batchMsgs)
	}
	for i, off := range offsets {
		wantCopies := 1
		if i >= 2*batchMsgs && i < 3*batchMsgs {
			wantCopies = 2
		}
		if seen[off] != wantCopies {
			t.Fatalf("message %d (offset %d) delivered %d times, want %d", i, off, seen[off], wantCopies)
		}
	}
}

// TestMirrorMakerRejectsCorruptCheckpoint: silently restarting from zero
// would re-mirror a whole cluster; a corrupt checkpoint must be an error.
func TestMirrorMakerRejectsCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mirror.checkpoint")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, dst := newMirrorBroker(t, 0), newMirrorBroker(t, 1)
	_, err := NewMirrorMaker(src, dst, MirrorConfig{Topics: []string{"t"}, CheckpointPath: path})
	if err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestStaticClientRidesFailover drives the TCP client against a 2-broker
// ISR cluster: it must find the leader by walking the address list, and
// re-find it after the leader dies.
func TestStaticClientRidesFailover(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	c, err := NewReplicatedCluster(dirs, BrokerConfig{PartitionsPerTopic: 1}, ReplicatedConfig{
		Cluster: "static", Replicas: 2, MinISR: 1,
		FetchWait: 20 * time.Millisecond, LagTimeout: 200 * time.Millisecond,
		AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	var addrs []string
	for _, rb := range c.Brokers() {
		addr, err := rb.Broker().Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	if err := c.AddTopic("events"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("events", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	sc := NewStaticClient(addrs, 2*time.Second)
	defer sc.Close()
	if n, err := sc.Partitions("events"); err != nil || n != 1 {
		t.Fatalf("partitions: %d, %v", n, err)
	}
	off1, err := sc.Produce("events", 0, NewMessageSet([]byte("before")))
	if err != nil {
		t.Fatalf("produce via static client: %v", err)
	}
	leader, err := c.LeaderOf("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Kill(leader)
	deadline := time.Now().Add(15 * time.Second)
	var off2 int64
	for {
		off2, err = sc.Produce("events", 0, NewMessageSet([]byte("after")))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("produce never succeeded after leader kill: %v", err)
		}
	}
	if off2 <= off1 {
		t.Fatalf("post-failover offset %d not past %d", off2, off1)
	}
	chunk, err := sc.Fetch("events", 0, off1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := Decode(chunk, off1)
	if err != nil || len(msgs) < 2 {
		t.Fatalf("post-failover fetch: %d msgs, %v", len(msgs), err)
	}
	if string(msgs[0].Payload) != "before" || string(msgs[1].Payload) != "after" {
		t.Fatalf("payloads %q, %q", msgs[0].Payload, msgs[1].Payload)
	}
}
