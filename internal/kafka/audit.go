package kafka

import (
	"encoding/json"
	"sync"
	"time"
)

// AuditTopic carries the monitoring events of §V.D: each producer
// periodically publishes, for every topic, the number of messages it
// produced in a fixed time window; consumers count what they received and
// compare, verifying no data loss along the pipeline.
const AuditTopic = "_audit"

// AuditRecord is one monitoring event.
type AuditRecord struct {
	Producer    string `json:"producer"`
	Topic       string `json:"topic"`
	WindowStart int64  `json:"windowStart"` // unix ms
	WindowEnd   int64  `json:"windowEnd"`
	Count       int64  `json:"count"`
}

// AuditEmitter counts produced messages per topic and periodically emits
// AuditRecords to the audit topic through its own producer path.
type AuditEmitter struct {
	producerID string
	broker     BrokerClient
	window     time.Duration

	mu          sync.Mutex
	counts      map[string]int64
	windowStart time.Time

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewAuditEmitter builds an emitter flushing counts every window.
func NewAuditEmitter(producerID string, broker BrokerClient, window time.Duration) *AuditEmitter {
	if window == 0 {
		window = time.Second
	}
	a := &AuditEmitter{
		producerID:  producerID,
		broker:      broker,
		window:      window,
		counts:      map[string]int64{},
		windowStart: time.Now(),
		stop:        make(chan struct{}),
	}
	a.wg.Add(1)
	go a.loop()
	return a
}

// Count notes one produced message for topic.
func (a *AuditEmitter) Count(topic string) {
	if topic == AuditTopic {
		return
	}
	a.mu.Lock()
	a.counts[topic]++
	a.mu.Unlock()
}

func (a *AuditEmitter) loop() {
	defer a.wg.Done()
	t := time.NewTicker(a.window)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.FlushWindow()
		}
	}
}

// FlushWindow emits the current window's counts immediately (also called on
// Close so no counts are lost).
func (a *AuditEmitter) FlushWindow() {
	a.mu.Lock()
	counts := a.counts
	start := a.windowStart
	a.counts = map[string]int64{}
	a.windowStart = time.Now()
	a.mu.Unlock()
	end := time.Now()
	for topic, n := range counts {
		rec := AuditRecord{
			Producer:    a.producerID,
			Topic:       topic,
			WindowStart: start.UnixMilli(),
			WindowEnd:   end.UnixMilli(),
			Count:       n,
		}
		data, err := json.Marshal(rec)
		if err != nil {
			continue
		}
		_, _ = a.broker.Produce(AuditTopic, 0, NewMessageSet(data))
	}
}

// Close flushes and stops the emitter.
func (a *AuditEmitter) Close() {
	close(a.stop)
	a.wg.Wait()
	a.FlushWindow()
}

// Auditor is the consumer side: it tallies received per-topic counts and
// reads the audit topic to compare.
type Auditor struct {
	mu       sync.Mutex
	received map[string]int64
}

// NewAuditor returns an empty tally.
func NewAuditor() *Auditor {
	return &Auditor{received: map[string]int64{}}
}

// Observe notes one consumed message.
func (a *Auditor) Observe(topic string) {
	a.mu.Lock()
	a.received[topic]++
	a.mu.Unlock()
}

// Received returns the consumed count for topic.
func (a *Auditor) Received(topic string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.received[topic]
}

// Verify reads all audit records from the broker and compares claimed
// production counts against the tally. It returns the per-topic claimed
// totals and whether every topic matches.
func (a *Auditor) Verify(broker BrokerClient) (map[string]int64, bool, error) {
	sc := NewSimpleConsumer(broker, 1<<20)
	earliest, err := sc.EarliestOffset(AuditTopic, 0)
	if err != nil {
		return nil, false, err
	}
	latest, err := sc.LatestOffset(AuditTopic, 0)
	if err != nil {
		return nil, false, err
	}
	claimed := map[string]int64{}
	for off := earliest; off < latest; {
		msgs, err := sc.Consume(AuditTopic, 0, off)
		if err != nil {
			return nil, false, err
		}
		if len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			var rec AuditRecord
			if err := json.Unmarshal(m.Payload, &rec); err != nil {
				continue
			}
			claimed[rec.Topic] += rec.Count
			off = m.NextOffset
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ok := true
	for topic, want := range claimed {
		if a.received[topic] != want {
			ok = false
		}
	}
	return claimed, ok, nil
}

// Mirror is the embedded consumer of §V.D: it pulls every message from a
// source cluster's topic and republishes to a destination broker — the
// live-datacenter → offline-datacenter replication pipeline feeding Hadoop.
type Mirror struct {
	src, dst BrokerClient
	topic    string

	stop chan struct{}
	wg   sync.WaitGroup
	sync.Mutex
	copied int64
}

// NewMirror builds (but does not start) a mirror for topic.
func NewMirror(src, dst BrokerClient, topic string) *Mirror {
	return &Mirror{src: src, dst: dst, topic: topic, stop: make(chan struct{})}
}

// Start launches one copier per source partition, starting at the earliest
// offsets.
func (m *Mirror) Start() error {
	n, err := m.src.Partitions(m.topic)
	if err != nil {
		return err
	}
	for p := 0; p < n; p++ {
		m.wg.Add(1)
		go m.copyLoop(p)
	}
	return nil
}

func (m *Mirror) copyLoop(partition int) {
	defer m.wg.Done()
	sc := NewSimpleConsumer(m.src, 300<<10)
	offset, err := sc.EarliestOffset(m.topic, partition)
	if err != nil {
		return
	}
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		msgs, err := sc.Consume(m.topic, partition, offset)
		if err != nil || len(msgs) == 0 {
			select {
			case <-m.stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		for _, msg := range msgs {
			if _, err := m.dst.Produce(m.topic, partition, NewMessageSet(msg.Payload)); err != nil {
				return
			}
			offset = msg.NextOffset
			m.Lock()
			m.copied++
			m.Unlock()
		}
	}
}

// Copied returns how many messages crossed the mirror.
func (m *Mirror) Copied() int64 {
	m.Lock()
	defer m.Unlock()
	return m.copied
}

// Close stops the copiers.
func (m *Mirror) Close() {
	close(m.stop)
	m.wg.Wait()
}
