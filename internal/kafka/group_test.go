package kafka

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"datainfra/internal/zk"
)

// groupRig boots n brokers (in-process) plus a zk server.
func groupRig(t testing.TB, brokers, partitions int) (*zk.Server, map[int]BrokerClient, []*Broker) {
	t.Helper()
	srv := zk.NewServer()
	clients := map[int]BrokerClient{}
	var raw []*Broker
	for i := 0; i < brokers; i++ {
		b, err := NewBroker(i, t.TempDir(), BrokerConfig{PartitionsPerTopic: partitions})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		clients[i] = b
		raw = append(raw, b)
	}
	return srv, clients, raw
}

func waitCond(t testing.TB, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGroupSingleConsumerGetsEverything(t *testing.T) {
	srv, clients, raw := groupRig(t, 2, 2)
	for _, b := range raw {
		for p := 0; p < 2; p++ {
			b.Produce("t", p, NewMessageSet([]byte(fmt.Sprintf("pre-%d-%d", b.ID(), p))))
		}
	}
	g, err := NewGroupConsumer(srv, "g1", "c1", []string{"t"}, clients, GroupConfig{FromEarliest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	seen := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for len(seen) < 4 {
		select {
		case m := <-g.Messages():
			seen[string(m.Payload)] = true
		case <-deadline:
			t.Fatalf("consumed %d/4 messages: %v", len(seen), seen)
		}
	}
	// single consumer owns every partition
	if got := len(g.Owned("t")); got != 4 {
		t.Fatalf("owned %d partitions, want 4", got)
	}
}

func TestGroupPartitionsDisjointlyCovered(t *testing.T) {
	srv, clients, _ := groupRig(t, 2, 4) // 8 partitions total
	var gs []*GroupConsumer
	for i := 0; i < 3; i++ {
		g, err := NewGroupConsumer(srv, "g2", fmt.Sprintf("c%d", i), []string{"t"}, clients, GroupConfig{FromEarliest: true})
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		gs = append(gs, g)
	}
	waitCond(t, "ownership to settle", 5*time.Second, func() bool {
		total := 0
		for _, g := range gs {
			total += len(g.Owned("t"))
		}
		return total == 8
	})
	// disjoint cover
	owner := map[PartitionID]string{}
	for i, g := range gs {
		for _, p := range g.Owned("t") {
			if prev, dup := owner[p]; dup {
				t.Fatalf("partition %v owned by both %s and c%d", p, prev, i)
			}
			owner[p] = fmt.Sprintf("c%d", i)
		}
	}
	if len(owner) != 8 {
		t.Fatalf("cover = %d/8", len(owner))
	}
	// roughly even: 8 partitions over 3 consumers -> 3/3/2
	for _, g := range gs {
		n := len(g.Owned("t"))
		if n < 2 || n > 3 {
			t.Fatalf("consumer owns %d partitions", n)
		}
	}
}

func TestGroupRebalanceOnMemberDeath(t *testing.T) {
	srv, clients, _ := groupRig(t, 1, 4)
	g1, err := NewGroupConsumer(srv, "g3", "c1", []string{"t"}, clients, GroupConfig{FromEarliest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Close()
	g2, err := NewGroupConsumer(srv, "g3", "c2", []string{"t"}, clients, GroupConfig{FromEarliest: true})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "both members owning", 5*time.Second, func() bool {
		return len(g1.Owned("t")) == 2 && len(g2.Owned("t")) == 2
	})
	g2.Close() // ephemeral vanishes, g1 must absorb everything
	waitCond(t, "survivor owning all", 5*time.Second, func() bool {
		return len(g1.Owned("t")) == 4
	})
}

func TestGroupPointToPointNoDuplicates(t *testing.T) {
	srv, clients, raw := groupRig(t, 1, 4)
	const total = 200
	// two members of ONE group jointly consume a single copy (§V.A)
	var mu sync.Mutex
	seen := map[string]int{}
	consume := func(g *GroupConsumer) {
		for m := range g.Messages() {
			mu.Lock()
			seen[string(m.Payload)]++
			mu.Unlock()
		}
	}
	g1, _ := NewGroupConsumer(srv, "p2p", "a", []string{"t"}, clients, GroupConfig{FromEarliest: true})
	g2, _ := NewGroupConsumer(srv, "p2p", "b", []string{"t"}, clients, GroupConfig{FromEarliest: true})
	defer g1.Close()
	defer g2.Close()
	go consume(g1)
	go consume(g2)
	waitCond(t, "ownership split", 5*time.Second, func() bool {
		return len(g1.Owned("t"))+len(g2.Owned("t")) == 4
	})
	p := NewProducer(raw[0], ProducerConfig{BatchSize: 10})
	defer p.Close()
	for i := 0; i < total; i++ {
		p.Send("t", []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("msg-%d", i)))
	}
	p.Flush()
	waitCond(t, "all messages consumed once", 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == total
	})
	mu.Lock()
	defer mu.Unlock()
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("message %s delivered %d times within one group", k, n)
		}
	}
}

func TestGroupPubSubIndependentCopies(t *testing.T) {
	srv, clients, raw := groupRig(t, 1, 2)
	const total = 50
	counts := make([]int, 2)
	var mu sync.Mutex
	for gi := 0; gi < 2; gi++ {
		g, err := NewGroupConsumer(srv, fmt.Sprintf("grp-%d", gi), "only", []string{"t"}, clients, GroupConfig{FromEarliest: true})
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		go func(gi int, g *GroupConsumer) {
			for range g.Messages() {
				mu.Lock()
				counts[gi]++
				mu.Unlock()
			}
		}(gi, g)
	}
	p := NewProducer(raw[0], ProducerConfig{BatchSize: 5})
	defer p.Close()
	for i := 0; i < total; i++ {
		p.Send("t", nil, []byte(fmt.Sprintf("m%d", i)))
	}
	p.Flush()
	waitCond(t, "both groups receiving full copies", 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return counts[0] == total && counts[1] == total
	})
}

func TestGroupOffsetsSurviveRestart(t *testing.T) {
	srv, clients, raw := groupRig(t, 1, 1)
	p := NewProducer(raw[0], ProducerConfig{BatchSize: 1})
	defer p.Close()
	for i := 0; i < 10; i++ {
		p.SendTo("t", 0, []byte(fmt.Sprintf("first-%d", i)))
	}
	g, _ := NewGroupConsumer(srv, "persist", "c", []string{"t"}, clients, GroupConfig{FromEarliest: true, CommitInterval: 5 * time.Millisecond})
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 10 {
		select {
		case <-g.Messages():
			got++
		case <-deadline:
			t.Fatalf("first run consumed %d/10", got)
		}
	}
	// allow an offset commit, then stop the consumer
	time.Sleep(50 * time.Millisecond)
	g.Close()

	for i := 0; i < 5; i++ {
		p.SendTo("t", 0, []byte(fmt.Sprintf("second-%d", i)))
	}
	g2, _ := NewGroupConsumer(srv, "persist", "c", []string{"t"}, clients, GroupConfig{FromEarliest: true})
	defer g2.Close()
	var second []string
	deadline = time.After(5 * time.Second)
	for len(second) < 5 {
		select {
		case m := <-g2.Messages():
			second = append(second, string(m.Payload))
		case <-deadline:
			t.Fatalf("second run consumed %d/5: %v", len(second), second)
		}
	}
	for _, s := range second {
		if len(s) < 6 || s[:6] != "second" {
			t.Fatalf("restart re-delivered committed message %q", s)
		}
	}
}

func TestAuditPipelineVerifiesNoLoss(t *testing.T) {
	srv, clients, raw := groupRig(t, 1, 2)
	_ = srv
	b := raw[0]
	emitter := NewAuditEmitter("producer-1", b, 50*time.Millisecond)
	p := NewProducer(b, ProducerConfig{BatchSize: 10})
	p.EnableAudit(emitter)
	const total = 120
	for i := 0; i < total; i++ {
		p.Send("tracked", []byte(fmt.Sprintf("k%d", i)), []byte("payload"))
	}
	p.Flush()
	p.Close()
	emitter.Close()

	auditor := NewAuditor()
	sc := NewSimpleConsumer(clients[0], 1<<20)
	for part := 0; part < 2; part++ {
		off := int64(0)
		for {
			msgs, err := sc.Consume("tracked", part, off)
			if err != nil || len(msgs) == 0 {
				break
			}
			for range msgs {
				auditor.Observe("tracked")
			}
			off = msgs[len(msgs)-1].NextOffset
		}
	}
	claimed, ok, err := auditor.Verify(clients[0])
	if err != nil {
		t.Fatal(err)
	}
	if claimed["tracked"] != total {
		t.Fatalf("audit claims %d, produced %d", claimed["tracked"], total)
	}
	if !ok {
		t.Fatalf("audit mismatch: claimed %v, received %d", claimed, auditor.Received("tracked"))
	}
}

func TestMirrorReplicatesToOfflineCluster(t *testing.T) {
	_, _, raw := groupRig(t, 2, 2)
	live, offline := raw[0], raw[1]
	p := NewProducer(live, ProducerConfig{BatchSize: 5})
	const total = 60
	for i := 0; i < total; i++ {
		p.Send("activity", []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("ev-%d", i)))
	}
	p.Flush()
	p.Close()

	m := NewMirror(live, offline, "activity")
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	waitCond(t, "mirror catch-up", 10*time.Second, func() bool { return m.Copied() == total })

	// offline cluster serves the full copy
	sc := NewSimpleConsumer(offline, 1<<20)
	got := 0
	for part := 0; part < 2; part++ {
		off := int64(0)
		for {
			msgs, err := sc.Consume("activity", part, off)
			if err != nil || len(msgs) == 0 {
				break
			}
			got += len(msgs)
			off = msgs[len(msgs)-1].NextOffset
		}
	}
	if got != total {
		t.Fatalf("offline cluster has %d/%d messages", got, total)
	}
}
