package kafka

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"datainfra/internal/ring"
)

// BrokerClient is the produce/fetch surface of a broker — implemented by
// *Broker (in-process) and *RemoteBroker (TCP).
type BrokerClient interface {
	Produce(topic string, partition int, set MessageSet) (int64, error)
	Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error)
	Offsets(topic string, partition int) (earliest, latest int64, err error)
	Partitions(topic string) (int, error)
}

// Partitioner picks the partition for a message: random when key is nil, or
// "semantically determined by a partitioning key and a partitioning
// function" (§V.C).
type Partitioner func(key []byte, numPartitions int) int

// DefaultPartitioner hashes non-nil keys and spreads nil keys randomly.
func DefaultPartitioner(key []byte, numPartitions int) int {
	if len(key) == 0 {
		return rand.Intn(numPartitions)
	}
	return ring.Hash(key, numPartitions)
}

// ProducerConfig tunes batching and compression.
type ProducerConfig struct {
	BatchSize   int           // messages per batch; default 1 (sync-ish)
	Linger      time.Duration // max time a batch waits; default 10ms
	Compression bool          // gzip whole batches (§V.B)
	Partitioner Partitioner
}

// Producer publishes messages to topics through a broker, buffering them
// into per-partition batches ("the frontend services publish to the local
// Kafka brokers in batches", §V.D).
type Producer struct {
	broker BrokerClient
	cfg    ProducerConfig

	mu      sync.Mutex
	batches map[topicPartition]*batch
	closed  bool

	// shipMu serializes batch hand-off to the broker between Flush and the
	// linger ticker. Without it a batch the ticker has already claimed (but
	// not yet shipped) is invisible to Flush, which then returns while
	// messages sent before the Flush call are still in flight.
	shipMu sync.Mutex

	sent        int64 // messages produced
	bytesOnWire int64 // bytes shipped to the broker (post-compression)

	audit *AuditEmitter // optional

	stop chan struct{}
	wg   sync.WaitGroup
}

// topicPartition keys the per-partition batch map; a struct key avoids the
// per-send string formatting a "topic/partition" key would cost.
type topicPartition struct {
	topic     string
	partition int
}

type batch struct {
	topic     string
	partition int
	set       MessageSet
	count     int
	started   time.Time
}

// batchPool recycles batch structs (and their MessageSet encode buffers)
// once shipped: the broker copies the set on Produce, so the buffer is free
// for reuse the moment ship returns.
var batchPool = sync.Pool{New: func() any { return new(batch) }}

func newBatch(topic string, partition int) *batch {
	b := batchPool.Get().(*batch)
	b.topic = topic
	b.partition = partition
	b.set.Reset()
	b.count = 0
	b.started = time.Now()
	return b
}

// NewProducer builds a producer over broker.
func NewProducer(broker BrokerClient, cfg ProducerConfig) *Producer {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 1
	}
	if cfg.Linger == 0 {
		cfg.Linger = 10 * time.Millisecond
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = DefaultPartitioner
	}
	p := &Producer{
		broker:  broker,
		cfg:     cfg,
		batches: map[topicPartition]*batch{},
		stop:    make(chan struct{}),
	}
	p.wg.Add(1)
	go p.lingerLoop()
	return p
}

// EnableAudit attaches an audit emitter (§V.D): the producer periodically
// publishes monitoring events counting its messages per topic per window.
func (p *Producer) EnableAudit(a *AuditEmitter) {
	p.mu.Lock()
	p.audit = a
	p.mu.Unlock()
}

// Send publishes one message. A nil key selects a random partition.
func (p *Producer) Send(topic string, key, payload []byte) error {
	n, err := p.broker.Partitions(topic)
	if err != nil {
		return err
	}
	partition := p.cfg.Partitioner(key, n)
	return p.SendTo(topic, partition, payload)
}

// SendTo publishes to an explicit partition.
func (p *Producer) SendTo(topic string, partition int, payload []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("kafka: producer closed")
	}
	k := topicPartition{topic, partition}
	b, ok := p.batches[k]
	if !ok {
		b = newBatch(topic, partition)
		p.batches[k] = b
	}
	b.set.Append(NewMessage(payload))
	b.count++
	p.sent++
	mProducerMessages.Inc()
	if p.audit != nil {
		p.audit.Count(topic)
	}
	var flush *batch
	if b.count >= p.cfg.BatchSize {
		flush = b
		delete(p.batches, k)
	}
	p.mu.Unlock()
	if flush != nil {
		return p.ship(flush)
	}
	return nil
}

func (p *Producer) ship(b *batch) error {
	set := b.set
	if p.cfg.Compression {
		var err error
		set, err = b.set.Compress()
		if err != nil {
			return err
		}
	}
	p.mu.Lock()
	p.bytesOnWire += int64(set.Len())
	p.mu.Unlock()
	mProducerBytes.Add(int64(set.Len()))
	_, err := p.broker.Produce(b.topic, b.partition, set)
	// Produce has fully consumed the set (brokers copy it into the log or
	// onto the wire), so the batch and its buffer can be recycled.
	batchPool.Put(b)
	return err
}

// Flush ships every pending batch, including any the linger ticker has
// claimed but not yet delivered: when Flush returns, every message from a
// completed SendTo call has reached the broker.
func (p *Producer) Flush() error {
	p.shipMu.Lock()
	defer p.shipMu.Unlock()
	p.mu.Lock()
	pending := make([]*batch, 0, len(p.batches))
	for k, b := range p.batches {
		pending = append(pending, b)
		delete(p.batches, k)
	}
	p.mu.Unlock()
	for _, b := range pending {
		if err := p.ship(b); err != nil {
			return err
		}
	}
	return nil
}

func (p *Producer) lingerLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Linger)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			// Claim and ship under shipMu as one unit so a concurrent Flush
			// cannot return before these batches reach the broker.
			p.shipMu.Lock()
			p.mu.Lock()
			var due []*batch
			for k, b := range p.batches {
				if time.Since(b.started) >= p.cfg.Linger {
					due = append(due, b)
					delete(p.batches, k)
				}
			}
			p.mu.Unlock()
			for _, b := range due {
				_ = p.ship(b)
			}
			p.shipMu.Unlock()
		}
	}
}

// Sent returns the number of messages produced.
func (p *Producer) Sent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// BytesOnWire returns post-compression bytes shipped — the E10 bandwidth
// metric.
func (p *Producer) BytesOnWire() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytesOnWire
}

// Close flushes and stops the producer.
func (p *Producer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	return p.Flush()
}
