package kafka

import (
	"fmt"
	"testing"
	"time"

	"datainfra/internal/zk"
)

func groupZK(t *testing.T) *zk.Server {
	t.Helper()
	return zk.NewServer()
}

// TestGroupConsumerRecoversFromRetention: when the retention cleaner deletes
// the consumer's position, the fetch loop must restart from the earliest
// surviving offset rather than dying (§V.B's time-based SLA interacts with
// §V.B's consumer-owned offsets).
func TestGroupConsumerRecoversFromRetention(t *testing.T) {
	srv, clients, _ := groupRig(t, 1, 1)
	broker, err := NewBroker(9, t.TempDir(), BrokerConfig{
		PartitionsPerTopic: 1,
		Log:                LogConfig{SegmentBytes: 256, Retention: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	clients[0] = broker
	_ = srv

	payload := make([]byte, 100)
	for i := 0; i < 10; i++ {
		if _, err := broker.Produce("t", 0, NewMessageSet(payload)); err != nil {
			t.Fatal(err)
		}
	}
	// expire everything but the active segment
	if n := broker.CleanNow(time.Now().Add(2 * time.Hour)); n == 0 {
		t.Fatal("cleaner removed nothing")
	}
	// a consumer whose stored offset predates the surviving log recovers
	coord := groupZK(t)
	g, err := NewGroupConsumer(coord, "ret", "c", []string{"t"}, map[int]BrokerClient{9: broker}, GroupConfig{FromEarliest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// store a stale offset (0) explicitly: the cleaner already deleted it
	sess := coord.NewSession()
	defer sess.Close()
	sess.CreateAll("/consumers/ret/offsets/t/9-0", []byte("0"))

	// produce a recognizable message after the cleanup
	if _, err := broker.Produce("t", 0, NewMessageSet([]byte("fresh"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case m := <-g.Messages():
			if string(m.Payload) == "fresh" {
				return // recovered and caught up
			}
		case <-deadline:
			t.Fatal("consumer never recovered from retention-induced offset loss")
		}
	}
}

func TestLogEarliestAdvancesWithRetention(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{SegmentBytes: 128, Retention: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append(NewMessageSet([]byte(fmt.Sprintf("message-%02d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Earliest()
	if _, err := l.CleanOld(time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if l.Earliest() <= before {
		t.Fatalf("earliest did not advance: %d -> %d", before, l.Earliest())
	}
	// the surviving tail is still fully readable
	off := l.Earliest()
	chunk, err := l.Read(off, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(chunk, off); err != nil {
		t.Fatal(err)
	}
}
