package kafka

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Log is one topic partition on disk: a set of segment files of roughly
// equal size, each named by the logical offset of its first message (§V.B
// "simple storage"). Appends go to the last segment; a configurable flush
// policy (message count or elapsed time) controls when data becomes visible
// to consumers; reads locate the segment by binary search over the base
// offsets and return raw bytes straight from the file.
type Log struct {
	dir string

	mu       sync.Mutex
	segments []*segment // sorted by baseOffset; last is active
	cfg      LogConfig

	unflushedCount int
	lastFlush      time.Time
	flushedTo      int64 // bytes below this offset are durable (flushed)

	// limit caps consumer visibility below flushedTo; -1 disables the cap.
	// Replicated partitions set it to the high watermark so consumers never
	// see messages the ISR has not fully acked (which a failover could lose).
	limit int64

	// watch is closed and replaced whenever the consumer-visible end (or the
	// durable end, for replica fetches) advances, waking long-poll fetches
	// parked in WaitForData. Visibility — not the append — is the wake point,
	// because consumers only see flushed data.
	watch chan struct{}
}

type segment struct {
	baseOffset int64
	f          *os.File
	size       int64
	mtime      time.Time
}

// LogConfig tunes a partition log.
type LogConfig struct {
	SegmentBytes  int64         // roll size; default 64 MB
	FlushMessages int           // flush after N appends; default 1 (every append)
	FlushInterval time.Duration // or after this much time; default 0 (disabled)
	Retention     time.Duration // segment max age; 0 = keep forever
}

func (c *LogConfig) withDefaults() {
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.FlushMessages == 0 {
		c.FlushMessages = 1
	}
}

func segmentName(base int64) string { return fmt.Sprintf("%020d.kafka", base) }

// hwCheckpointName holds the persisted visibility limit (the partition high
// watermark). Without it a restarted replica comes back with limit -1, its
// divergence truncate becomes a no-op, and an unacked on-disk tail from the
// old epoch survives into the new one.
const hwCheckpointName = "hw.checkpoint"

// OpenLog opens (creating if needed) the partition log in dir, recovering
// the active segment by truncating any torn tail.
func OpenLog(dir string, cfg LogConfig) (*Log, error) {
	cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, cfg: cfg, lastFlush: time.Now(), limit: -1, watch: make(chan struct{})}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []int64
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), ".kafka") {
			continue
		}
		base, err := strconv.ParseInt(strings.TrimSuffix(ent.Name(), ".kafka"), 10, 64)
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for i, base := range bases {
		f, err := os.OpenFile(filepath.Join(dir, segmentName(base)), os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		size := st.Size()
		if i == len(bases)-1 {
			// Recover the active segment: keep only the valid prefix.
			data := make([]byte, size)
			if _, err := f.ReadAt(data, 0); err != nil && size > 0 {
				f.Close()
				return nil, err
			}
			valid := int64(validPrefix(data))
			if valid < size {
				if err := f.Truncate(valid); err != nil {
					f.Close()
					return nil, err
				}
				size = valid
			}
		}
		l.segments = append(l.segments, &segment{baseOffset: base, f: f, size: size, mtime: st.ModTime()})
	}
	if len(l.segments) == 0 {
		if err := l.rollLocked(0); err != nil {
			return nil, err
		}
	}
	l.flushedTo = l.endOffsetLocked()
	// Restore the persisted high watermark as the visibility limit, so a
	// replica that restarts mid-epoch still knows where acked data ends and
	// TruncateTo(Latest()) cuts back to it. A missing or unparseable
	// checkpoint leaves the limit off, matching the pre-replication behavior.
	if data, err := os.ReadFile(filepath.Join(dir, hwCheckpointName)); err == nil {
		if hw, perr := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64); perr == nil && hw >= 0 {
			l.limit = hw
		}
	}
	return l, nil
}

func (l *Log) rollLocked(base int64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(base)), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	l.segments = append(l.segments, &segment{baseOffset: base, f: f, mtime: time.Now()})
	return nil
}

func (l *Log) active() *segment { return l.segments[len(l.segments)-1] }

func (l *Log) endOffsetLocked() int64 {
	a := l.active()
	return a.baseOffset + a.size
}

// Append writes the message set at the end of the log and returns the
// offset of its first byte. Data becomes consumer-visible per the flush
// policy ("a message is only exposed to the consumers after it is flushed").
func (l *Log) Append(set MessageSet) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.active()
	base := a.baseOffset + a.size
	if _, err := a.f.WriteAt(set.Bytes(), a.size); err != nil {
		return 0, err
	}
	a.size += int64(set.Len())
	a.mtime = time.Now()
	l.unflushedCount++
	if l.unflushedCount >= l.cfg.FlushMessages ||
		(l.cfg.FlushInterval > 0 && time.Since(l.lastFlush) >= l.cfg.FlushInterval) {
		if err := l.flushLocked(); err != nil {
			return 0, err
		}
	}
	if a.size >= l.cfg.SegmentBytes {
		if err := l.flushLocked(); err != nil {
			return 0, err
		}
		if err := l.rollLocked(a.baseOffset + a.size); err != nil {
			return 0, err
		}
	}
	return base, nil
}

func (l *Log) flushLocked() error {
	if err := l.active().f.Sync(); err != nil {
		return err
	}
	l.unflushedCount = 0
	l.lastFlush = time.Now()
	if end := l.endOffsetLocked(); end != l.flushedTo {
		l.flushedTo = end
		l.wakeLocked()
	}
	return nil
}

// wakeLocked wakes long-poll fetches; see WaitForData.
func (l *Log) wakeLocked() {
	close(l.watch)
	l.watch = make(chan struct{})
}

// visibleEndLocked is the consumer-visible end of the log: the flush point,
// further capped by the visibility limit when one is set.
func (l *Log) visibleEndLocked() int64 {
	end := l.flushedTo
	if l.limit >= 0 && l.limit < end {
		end = l.limit
	}
	return end
}

// SetLimit caps consumer visibility at limit (the partition high watermark);
// -1 removes the cap. Raising the visible end wakes parked long-poll fetches.
// The limit is checkpointed to disk so it survives restarts.
func (l *Log) SetLimit(limit int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if limit == l.limit {
		return
	}
	before := l.visibleEndLocked()
	l.limit = limit
	l.persistLimitLocked()
	if l.visibleEndLocked() > before {
		l.wakeLocked()
	}
}

// persistLimitLocked checkpoints the visibility limit. Written to a temp file
// and renamed so a crash leaves either the old or the new value, never a torn
// one. A stale (low) checkpoint is safe — the replica truncates further back
// and refetches from the leader — so write failures are deliberately ignored
// and the file is not fsynced.
func (l *Log) persistLimitLocked() {
	p := filepath.Join(l.dir, hwCheckpointName)
	if l.limit < 0 {
		_ = os.Remove(p)
		return
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatInt(l.limit, 10)), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, p)
}

// FlushedEnd returns the offset one past the last durable byte, ignoring the
// visibility limit — the replica fetch bound (followers replicate durable
// bytes the high watermark has not yet covered).
func (l *Log) FlushedEnd() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushedTo
}

// WaitForData blocks until the consumer-visible end of the log moves past
// offset, wait elapses, or stop closes; it reports whether data is now
// readable at offset. This is the broker half of long-poll fetches: a
// caught-up consumer parks here instead of sleep-polling.
func (l *Log) WaitForData(offset int64, wait time.Duration, stop <-chan struct{}) bool {
	return l.waitForData(offset, wait, stop, false)
}

// WaitForDataUncapped is WaitForData against the durable end of the log,
// ignoring the visibility limit — the long-poll used by replica fetches,
// which must see bytes before the high watermark covers them.
func (l *Log) WaitForDataUncapped(offset int64, wait time.Duration, stop <-chan struct{}) bool {
	return l.waitForData(offset, wait, stop, true)
}

func (l *Log) waitForData(offset int64, wait time.Duration, stop <-chan struct{}, uncapped bool) bool {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		l.mu.Lock()
		end := l.visibleEndLocked()
		if uncapped {
			end = l.flushedTo
		}
		visible := end > offset
		w := l.watch
		l.mu.Unlock()
		if visible {
			return true
		}
		select {
		case <-w:
			// the visible/durable end advanced; recheck against our offset.
		case <-deadline.C:
			return false
		case <-stop:
			return false
		}
	}
}

// AppendAt writes raw log bytes at exactly offset, which must equal the
// current end of the log (followers replay the leader's log byte-identically,
// so physical offsets — the message addresses — survive failover). The same
// flush and roll policy as Append applies.
func (l *Log) AppendAt(offset int64, raw []byte) error {
	if len(raw) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.active()
	end := a.baseOffset + a.size
	if offset != end {
		return fmt.Errorf("%w: append at %d, log ends at %d", ErrOffsetOutOfRange, offset, end)
	}
	if _, err := a.f.WriteAt(raw, a.size); err != nil {
		return err
	}
	a.size += int64(len(raw))
	a.mtime = time.Now()
	l.unflushedCount++
	if l.unflushedCount >= l.cfg.FlushMessages ||
		(l.cfg.FlushInterval > 0 && time.Since(l.lastFlush) >= l.cfg.FlushInterval) {
		if err := l.flushLocked(); err != nil {
			return err
		}
	}
	if a.size >= l.cfg.SegmentBytes {
		if err := l.flushLocked(); err != nil {
			return err
		}
		if err := l.rollLocked(a.baseOffset + a.size); err != nil {
			return err
		}
	}
	return nil
}

// TruncateTo discards every byte at and beyond offset — the divergence repair
// a deposed leader runs before rejoining as a follower (its unreplicated tail
// was never high-watermark-acked and must not survive). offset below the
// earliest retained byte is an error; offset at or past the end is a no-op.
func (l *Log) TruncateTo(offset int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset >= l.endOffsetLocked() {
		return nil
	}
	if offset < l.segments[0].baseOffset {
		return fmt.Errorf("%w: truncate to %d, log starts at %d",
			ErrOffsetOutOfRange, offset, l.segments[0].baseOffset)
	}
	// Drop whole segments past the cut, keeping at least the one holding it.
	for len(l.segments) > 1 && l.segments[len(l.segments)-1].baseOffset >= offset {
		seg := l.segments[len(l.segments)-1]
		seg.f.Close()
		if err := os.Remove(filepath.Join(l.dir, segmentName(seg.baseOffset))); err != nil {
			return err
		}
		l.segments = l.segments[:len(l.segments)-1]
	}
	a := l.active()
	if keep := offset - a.baseOffset; keep < a.size {
		if err := a.f.Truncate(keep); err != nil {
			return err
		}
		a.size = keep
		a.mtime = time.Now()
	}
	l.unflushedCount = 0
	if end := l.endOffsetLocked(); l.flushedTo > end {
		l.flushedTo = end
	}
	return nil
}

// Flush forces durability and visibility of everything appended.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// MaybeFlushByTime applies the time-based flush policy (called by the
// broker's background flusher).
func (l *Log) MaybeFlushByTime() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.FlushInterval > 0 && l.unflushedCount > 0 && time.Since(l.lastFlush) >= l.cfg.FlushInterval {
		return l.flushLocked()
	}
	return nil
}

// Earliest returns the smallest valid offset.
func (l *Log) Earliest() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segments[0].baseOffset
}

// Latest returns the offset one past the last consumer-visible byte — the
// flush point, further capped by the visibility limit when one is set.
func (l *Log) Latest() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.visibleEndLocked()
}

// Read returns up to maxBytes of raw log starting at offset, never past the
// consumer-visible end and never crossing a segment boundary (the consumer
// simply fetches again). An empty result means caught-up.
func (l *Log) Read(offset int64, maxBytes int) ([]byte, error) {
	return l.read(offset, maxBytes, false)
}

// ReadUncapped is Read against the durable end of the log, ignoring the
// visibility limit — the replica fetch path, which must replicate bytes the
// high watermark has not yet covered.
func (l *Log) ReadUncapped(offset int64, maxBytes int) ([]byte, error) {
	return l.read(offset, maxBytes, true)
}

func (l *Log) read(offset int64, maxBytes int, uncapped bool) ([]byte, error) {
	l.mu.Lock()
	end := l.visibleEndLocked()
	if uncapped {
		end = l.flushedTo
	}
	if offset < l.segments[0].baseOffset || offset > end {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: offset %d, log covers [%d,%d]",
			ErrOffsetOutOfRange, offset, l.segments[0].baseOffset, end)
	}
	// Locate the segment: last one with baseOffset <= offset.
	i := sort.Search(len(l.segments), func(i int) bool { return l.segments[i].baseOffset > offset }) - 1
	seg := l.segments[i]
	pos := offset - seg.baseOffset
	limit := seg.size
	if segEnd := seg.baseOffset + seg.size; segEnd > end {
		limit = end - seg.baseOffset
	}
	n := int64(maxBytes)
	if n > limit-pos {
		n = limit - pos
	}
	f := seg.f
	l.mu.Unlock()
	if n <= 0 {
		return nil, nil
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, pos); err != nil {
		return nil, err
	}
	return buf, nil
}

// SectionReader returns the segment file and in-file range covering a fetch,
// so transports can io.Copy straight from the page cache to the socket —
// the sendfile-style zero-copy path of §V.B (io.CopyN over an *os.File
// section lets the runtime use sendfile/splice on Linux).
func (l *Log) SectionReader(offset int64, maxBytes int) (*os.File, int64, int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	end := l.visibleEndLocked()
	if offset < l.segments[0].baseOffset || offset > end {
		return nil, 0, 0, fmt.Errorf("%w: offset %d", ErrOffsetOutOfRange, offset)
	}
	i := sort.Search(len(l.segments), func(i int) bool { return l.segments[i].baseOffset > offset }) - 1
	seg := l.segments[i]
	pos := offset - seg.baseOffset
	limit := seg.size
	if segEnd := seg.baseOffset + seg.size; segEnd > end {
		limit = end - seg.baseOffset
	}
	n := int64(maxBytes)
	if n > limit-pos {
		n = limit - pos
	}
	if n < 0 {
		n = 0
	}
	return seg.f, pos, n, nil
}

// CleanOld deletes whole segments older than the retention period — the
// time-based SLA retention policy of §V.B. The active segment is never
// deleted. Returns the number of segments removed.
func (l *Log) CleanOld(now time.Time) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.Retention == 0 {
		return 0, nil
	}
	removed := 0
	for len(l.segments) > 1 {
		seg := l.segments[0]
		if now.Sub(seg.mtime) < l.cfg.Retention {
			break
		}
		seg.f.Close()
		if err := os.Remove(filepath.Join(l.dir, segmentName(seg.baseOffset))); err != nil {
			return removed, err
		}
		l.segments = l.segments[1:]
		removed++
	}
	return removed, nil
}

// Segments returns the current segment count (diagnostics).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Close flushes and closes all segment files.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	if err := l.flushLocked(); err != nil {
		firstErr = err
	}
	for _, seg := range l.segments {
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
