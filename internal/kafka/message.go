package kafka

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Compression codecs carried in the message attributes byte.
const (
	CodecNone byte = 0
	CodecGzip byte = 1
)

const (
	msgMagic      byte = 1
	msgOverhead        = 4 + 1 + 1 + 4 // length + magic + attrs + crc
	msgHeaderSize      = 1 + 1 + 4     // magic + attrs + crc (covered by length)
)

// Message errors.
var (
	ErrCorruptMessage   = errors.New("kafka: corrupt message")
	ErrOffsetOutOfRange = errors.New("kafka: offset out of range")
	// ErrNotLeader rejects produces and replica fetches sent to a broker that
	// does not (or no longer) lead the partition; clients re-resolve the
	// leader from zk and retry.
	ErrNotLeader = errors.New("kafka: not the partition leader")
)

// Message is a payload of bytes, optionally a compressed wrapper holding a
// nested message set (§V.B "each producer can compress a set of messages").
type Message struct {
	Attrs   byte
	Payload []byte
}

// NewMessage wraps payload as an uncompressed message.
func NewMessage(payload []byte) Message { return Message{Payload: payload} }

// WireSize returns the on-disk footprint of the message.
func (m *Message) WireSize() int64 { return int64(msgOverhead + len(m.Payload)) }

// appendTo encodes the message: u32 length | magic | attrs | crc32 | payload.
func (m *Message) appendTo(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(msgHeaderSize+len(m.Payload)))
	buf = append(buf, msgMagic, m.Attrs)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(m.Payload))
	return append(buf, m.Payload...)
}

// MessageSet is a sequence of encoded messages — the unit producers send and
// brokers append (§V.B "the producer can submit a set of messages in a
// single send request").
type MessageSet struct{ buf []byte }

// NewMessageSet encodes payloads into a set.
func NewMessageSet(payloads ...[]byte) MessageSet {
	var s MessageSet
	for _, p := range payloads {
		s.Append(NewMessage(p))
	}
	return s
}

// Append adds a message.
func (s *MessageSet) Append(m Message) { s.buf = m.appendTo(s.buf) }

// Bytes returns the wire form.
func (s *MessageSet) Bytes() []byte { return s.buf }

// Reset empties the set, keeping its encode buffer for reuse — the producer
// recycles batch sets so steady-state publishing reallocates nothing.
func (s *MessageSet) Reset() { s.buf = s.buf[:0] }

// Len returns the byte length of the set.
func (s *MessageSet) Len() int { return len(s.buf) }

// Compress gzips the whole set into a single wrapper message, the unit
// stored on the broker and shipped to consumers ("the compressed data is
// stored in the broker and is eventually delivered to the consumer").
func (s *MessageSet) Compress() (MessageSet, error) {
	var z bytes.Buffer
	w := gzip.NewWriter(&z)
	if _, err := w.Write(s.buf); err != nil {
		return MessageSet{}, err
	}
	if err := w.Close(); err != nil {
		return MessageSet{}, err
	}
	var out MessageSet
	out.Append(Message{Attrs: CodecGzip, Payload: z.Bytes()})
	return out, nil
}

// decodeMessage parses one message at the start of data, returning it and
// the total bytes consumed. io.ErrShortBuffer means a partial message tail
// (normal at fetch-chunk boundaries).
func decodeMessage(data []byte) (Message, int, error) {
	if len(data) < 4 {
		return Message{}, 0, io.ErrShortBuffer
	}
	length := int(binary.BigEndian.Uint32(data))
	if length < msgHeaderSize {
		return Message{}, 0, fmt.Errorf("%w: length %d", ErrCorruptMessage, length)
	}
	if len(data) < 4+length {
		return Message{}, 0, io.ErrShortBuffer
	}
	body := data[4 : 4+length]
	if body[0] != msgMagic {
		return Message{}, 0, fmt.Errorf("%w: magic %d", ErrCorruptMessage, body[0])
	}
	attrs := body[1]
	crc := binary.BigEndian.Uint32(body[2:6])
	payload := body[6:]
	if crc32.ChecksumIEEE(payload) != crc {
		return Message{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorruptMessage)
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return Message{Attrs: attrs, Payload: out}, 4 + length, nil
}

// MessageAndOffset pairs a delivered payload with the offset to fetch next —
// the consumer computes "the id of the next message by adding the length of
// the current message to its id" (§V.B).
type MessageAndOffset struct {
	Payload    []byte
	NextOffset int64
}

// Decode iterates the complete messages in a fetched chunk starting at
// baseOffset, transparently unpacking compressed wrapper messages. A
// trailing partial message is ignored (the consumer re-fetches from the
// returned position).
func Decode(chunk []byte, baseOffset int64) ([]MessageAndOffset, error) {
	var out []MessageAndOffset
	pos := 0
	for pos < len(chunk) {
		m, n, err := decodeMessage(chunk[pos:])
		if errors.Is(err, io.ErrShortBuffer) {
			break
		}
		if err != nil {
			return nil, err
		}
		next := baseOffset + int64(pos+n)
		switch m.Attrs {
		case CodecNone:
			out = append(out, MessageAndOffset{Payload: m.Payload, NextOffset: next})
		case CodecGzip:
			inner, err := decompress(m.Payload)
			if err != nil {
				return nil, err
			}
			ipos := 0
			for ipos < len(inner) {
				im, in, err := decodeMessage(inner[ipos:])
				if err != nil {
					return nil, fmt.Errorf("kafka: inner message: %w", err)
				}
				// Inner messages all advance to the wrapper's end: offsets
				// are positions in the partition log, and the wrapper is the
				// unit that lives there.
				out = append(out, MessageAndOffset{Payload: im.Payload, NextOffset: next})
				ipos += in
			}
		default:
			return nil, fmt.Errorf("kafka: unknown codec %d", m.Attrs)
		}
		pos += n
	}
	return out, nil
}

func decompress(data []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// validPrefix scans data and returns the length of the longest prefix that
// consists of complete, checksum-valid messages — the crash-recovery rule
// for the active segment.
func validPrefix(data []byte) int {
	pos := 0
	for pos < len(data) {
		_, n, err := decodeMessage(data[pos:])
		if err != nil {
			break
		}
		pos += n
	}
	return pos
}
