package kafka

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"datainfra/internal/zk"
)

// PartitionID names one partition across the cluster: broker id + partition
// index within that broker.
type PartitionID struct {
	Broker    int
	Partition int
}

// String renders "broker-partition", the zk child-name form.
func (p PartitionID) String() string { return fmt.Sprintf("%d-%d", p.Broker, p.Partition) }

func parsePartitionID(s string) (PartitionID, error) {
	var b, p int
	if _, err := fmt.Sscanf(s, "%d-%d", &b, &p); err != nil {
		return PartitionID{}, err
	}
	return PartitionID{Broker: b, Partition: p}, nil
}

// GroupMsg is a message delivered through a consumer-group stream.
type GroupMsg struct {
	Topic      string
	Partition  PartitionID
	Payload    []byte
	NextOffset int64
}

// GroupConfig tunes a group consumer.
type GroupConfig struct {
	MaxFetchBytes  int           // per-fetch cap; default 300 KB
	CommitInterval time.Duration // auto offset commit; default 50ms
	StreamBuffer   int           // channel depth; default 1024
	FromEarliest   bool          // start at the log head when no offset is stored
}

// GroupConsumer is a member of a consumer group (§V.C): it registers itself
// in zk, watches for membership and broker changes, rebalances so each
// partition is consumed by exactly one member of the group, and tracks
// consumed offsets in zk. Different groups each get the full stream
// (publish/subscribe); members of one group share it (point-to-point).
type GroupConsumer struct {
	group, id string
	topics    []string
	brokers   map[int]BrokerClient
	cfg       GroupConfig

	sess *zk.Session

	mu         sync.Mutex
	owned      map[string]map[PartitionID]*fetcher // topic -> owned partitions
	rebalances int
	closed     bool

	ch   chan GroupMsg
	stop chan struct{}
	wg   sync.WaitGroup
}

type fetcher struct {
	stop chan struct{}
	done chan struct{}
}

// NewGroupConsumer registers the consumer and starts its rebalance and fetch
// machinery. Messages arrive on Messages().
func NewGroupConsumer(srv *zk.Server, group, id string, topics []string, brokers map[int]BrokerClient, cfg GroupConfig) (*GroupConsumer, error) {
	if cfg.MaxFetchBytes == 0 {
		cfg.MaxFetchBytes = 300 << 10
	}
	if cfg.CommitInterval == 0 {
		cfg.CommitInterval = 50 * time.Millisecond
	}
	if cfg.StreamBuffer == 0 {
		cfg.StreamBuffer = 1024
	}
	sess := srv.NewSession()
	g := &GroupConsumer{
		group:   group,
		id:      id,
		topics:  topics,
		brokers: brokers,
		cfg:     cfg,
		sess:    sess,
		owned:   map[string]map[PartitionID]*fetcher{},
		ch:      make(chan GroupMsg, cfg.StreamBuffer),
		stop:    make(chan struct{}),
	}
	idsDir := fmt.Sprintf("/consumers/%s/ids", group)
	if err := sess.CreateAll(idsDir, nil); err != nil {
		sess.Close()
		return nil, err
	}
	if _, err := sess.Create(idsDir+"/"+id, nil, zk.FlagEphemeral); err != nil {
		sess.Close()
		return nil, fmt.Errorf("kafka: registering consumer %s: %w", id, err)
	}
	g.wg.Add(1)
	go g.coordinatorLoop()
	return g, nil
}

// Messages returns the merged stream of all partitions this member owns.
func (g *GroupConsumer) Messages() <-chan GroupMsg { return g.ch }

// Rebalances reports how many rebalance passes have run (E14 metric).
func (g *GroupConsumer) Rebalances() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rebalances
}

// Owned returns the partitions this member currently consumes for topic.
func (g *GroupConsumer) Owned(topic string) []PartitionID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []PartitionID
	for p := range g.owned[topic] {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].String() < out[j].String()
	})
	return out
}

// allPartitions enumerates the cluster's partitions for topic (sorted).
func (g *GroupConsumer) allPartitions(topic string) []PartitionID {
	var out []PartitionID
	ids := make([]int, 0, len(g.brokers))
	for id := range g.brokers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n, err := g.brokers[id].Partitions(topic)
		if err != nil {
			continue
		}
		for p := 0; p < n; p++ {
			out = append(out, PartitionID{Broker: id, Partition: p})
		}
	}
	return out
}

// coordinatorLoop watches group membership and rebalances (§V.C: zk detects
// consumer addition/removal and triggers a rebalance in each consumer).
func (g *GroupConsumer) coordinatorLoop() {
	defer g.wg.Done()
	idsDir := fmt.Sprintf("/consumers/%s/ids", g.group)
	for {
		members, watch, err := g.sess.WatchChildren(idsDir)
		if err != nil {
			return
		}
		g.rebalance(members)
		select {
		case <-g.stop:
			return
		case <-watch:
		case <-time.After(200 * time.Millisecond):
			// periodic re-check (new topics/partitions appear without a
			// membership event)
		}
	}
}

// rebalance deterministically divides each topic's partitions among the
// sorted members; every member runs the same algorithm on the same zk data,
// so they agree without extra coordination.
func (g *GroupConsumer) rebalance(members []string) {
	sort.Strings(members)
	myIdx := -1
	for i, m := range members {
		if m == g.id {
			myIdx = i
		}
	}
	if myIdx < 0 {
		return // not registered (shutting down)
	}
	changed := false
	for _, topic := range g.topics {
		parts := g.allPartitions(topic)
		want := map[PartitionID]bool{}
		// Contiguous chunks: consumer i owns parts[i*k ... (i+1)*k) with the
		// first (len % members) consumers taking one extra.
		n, m := len(parts), len(members)
		if m > 0 {
			per, extra := n/m, n%m
			start := myIdx*per + min(myIdx, extra)
			count := per
			if myIdx < extra {
				count++
			}
			for i := start; i < start+count && i < n; i++ {
				want[parts[i]] = true
			}
		}
		g.mu.Lock()
		cur := g.owned[topic]
		if cur == nil {
			cur = map[PartitionID]*fetcher{}
			g.owned[topic] = cur
		}
		// stop fetchers for partitions no longer owned
		for p, f := range cur {
			if !want[p] {
				close(f.stop)
				delete(cur, p)
				changed = true
			}
		}
		// start fetchers for newly owned partitions
		for p := range want {
			if _, ok := cur[p]; !ok {
				f := &fetcher{stop: make(chan struct{}), done: make(chan struct{})}
				cur[p] = f
				g.wg.Add(1)
				go g.fetchLoop(topic, p, f)
				changed = true
			}
		}
		g.mu.Unlock()
	}
	if changed {
		g.mu.Lock()
		g.rebalances++
		g.mu.Unlock()
		mGroupRebalances.Inc()
	}
}

func (g *GroupConsumer) offsetPath(topic string, p PartitionID) string {
	return fmt.Sprintf("/consumers/%s/offsets/%s/%s", g.group, topic, p)
}

func (g *GroupConsumer) loadOffset(topic string, p PartitionID) (int64, bool) {
	data, _, err := g.sess.Get(g.offsetPath(topic, p))
	if err != nil {
		return 0, false
	}
	v, err := strconv.ParseInt(string(data), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (g *GroupConsumer) storeOffset(topic string, p PartitionID, offset int64) {
	path := g.offsetPath(topic, p)
	data := []byte(strconv.FormatInt(offset, 10))
	if ok, _ := g.sess.Exists(path); !ok {
		_ = g.sess.CreateAll(path, data)
		return
	}
	_, _ = g.sess.Set(path, data, -1)
}

// fetchLoop consumes one owned partition sequentially, delivering to the
// shared stream and committing offsets.
func (g *GroupConsumer) fetchLoop(topic string, p PartitionID, f *fetcher) {
	defer g.wg.Done()
	defer close(f.done)
	broker := g.brokers[p.Broker]
	if broker == nil {
		return
	}
	sc := NewSimpleConsumer(broker, g.cfg.MaxFetchBytes)
	offset, ok := g.loadOffset(topic, p)
	if !ok {
		var err error
		if g.cfg.FromEarliest {
			offset, err = sc.EarliestOffset(topic, p.Partition)
		} else {
			offset, err = sc.LatestOffset(topic, p.Partition)
		}
		if err != nil {
			return
		}
	}
	lastCommit := time.Now()
	// Consumer lag — the gap between the partition head and our committed
	// position — refreshes at commit cadence so the extra LatestOffset
	// round-trip stays off the per-message path.
	lagGauge := mGroupLag.With(topic + "/" + p.String())
	commit := func() {
		g.storeOffset(topic, p, offset)
		if latest, err := sc.LatestOffset(topic, p.Partition); err == nil {
			if lag := latest - offset; lag >= 0 {
				lagGauge.Set(lag)
			}
		}
		lastCommit = time.Now()
	}
	defer commit()
	for {
		select {
		case <-f.stop:
			return
		case <-g.stop:
			return
		default:
		}
		msgs, err := sc.Consume(topic, p.Partition, offset)
		if errors.Is(err, ErrOffsetOutOfRange) {
			// Retention deleted our position: restart from the earliest.
			offset, err = sc.EarliestOffset(topic, p.Partition)
			if err != nil {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		if len(msgs) == 0 {
			if time.Since(lastCommit) >= g.cfg.CommitInterval {
				commit()
			}
			select {
			case <-f.stop:
				return
			case <-g.stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		for _, m := range msgs {
			select {
			case g.ch <- GroupMsg{Topic: topic, Partition: p, Payload: m.Payload, NextOffset: m.NextOffset}:
				offset = m.NextOffset
			case <-f.stop:
				return
			case <-g.stop:
				return
			}
		}
		if time.Since(lastCommit) >= g.cfg.CommitInterval {
			commit()
		}
	}
}

// Close deregisters the member (triggering a rebalance in the survivors) and
// stops all fetchers.
func (g *GroupConsumer) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	close(g.stop)
	g.sess.Close() // removes the ephemeral registration
	g.wg.Wait()
}
