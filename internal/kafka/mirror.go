package kafka

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"datainfra/internal/resilience"
)

// This file is the cross-cluster mirroring tier of §V.D: the paper runs
// Kafka as per-datacenter *local* clusters whose messages are republished
// into *aggregate* clusters that hold the union of all datacenters. The
// legacy best-effort copier (kafka.Mirror in audit.go) loses its place on
// restart and its ordering on anything less than a perfect run; MirrorMaker
// replaces it with the production protocol: per-partition source offsets
// checkpointed through atomic renames (the hw.checkpoint pattern) so a
// restarted mirror resumes where it durably left off — at-least-once into
// the aggregate, never lossy — plus an opt-in global-ordering mode that
// stamps every mirrored message with a causal sequence (origin cluster ID +
// source partition + source offset) following the PAPERS.md "Global Message
// Ordering using Distributed Kafka Clusters" design, so an aggregate
// consumer can totally order the updates to a key across source clusters.

// Mirror errors.
var (
	// ErrCorruptEnvelope rejects bytes that do not parse as a global-ordering
	// envelope — a raw (non-enveloped) payload read by an envelope-aware
	// consumer, or genuine corruption.
	ErrCorruptEnvelope = errors.New("kafka: corrupt mirror envelope")
)

// --- Global-ordering envelope ------------------------------------------------

// MirrorEnvelope is the global-ordering stamp carried by every message a
// MirrorMaker republishes in GlobalOrder mode. (Origin, Partition, Seq, Sub)
// identifies the source-log position of the payload exactly once:
//
//   - Origin is the source cluster ID (one per datacenter-local cluster).
//   - Partition is the source partition index. A key is produced to one
//     partition of one origin, so per-key order is per-(Origin,Partition)
//     order.
//   - Seq is the source log offset the message started at — monotone within
//     a partition, stable across mirror restarts, identical on redelivery.
//   - Sub disambiguates the inner messages of one compressed wrapper, which
//     all live at the same source offset (§V.B).
//
// An aggregate consumer that orders messages for a key by (Seq, Sub), and
// two updates from different origins by (Seq, Sub, Origin), obtains a total
// order that is consistent with every origin's local (causal) order; see
// DESIGN.md §11 for what that does and does not promise.
type MirrorEnvelope struct {
	Origin    string
	Partition int
	Seq       int64
	Sub       int
	Payload   []byte
}

const (
	envMagic   byte = 'M'
	envVersion byte = 1
	// magic + version + u16 origin len + u32 partition + u64 seq + u16 sub
	envHeaderMin = 2 + 2 + 4 + 8 + 2
)

// EncodeEnvelope serialises the envelope:
//
//	'M' | version | u16 len(origin) | origin | u32 partition | u64 seq | u16 sub | payload
func EncodeEnvelope(e MirrorEnvelope) []byte {
	buf := make([]byte, 0, envHeaderMin+len(e.Origin)+len(e.Payload))
	buf = append(buf, envMagic, envVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Origin)))
	buf = append(buf, e.Origin...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.Partition))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Seq))
	buf = binary.BigEndian.AppendUint16(buf, uint16(e.Sub))
	return append(buf, e.Payload...)
}

// DecodeEnvelope parses an envelope produced by EncodeEnvelope.
func DecodeEnvelope(b []byte) (MirrorEnvelope, error) {
	if len(b) < envHeaderMin || b[0] != envMagic || b[1] != envVersion {
		return MirrorEnvelope{}, fmt.Errorf("%w: missing header", ErrCorruptEnvelope)
	}
	olen := int(binary.BigEndian.Uint16(b[2:4]))
	if len(b) < envHeaderMin+olen {
		return MirrorEnvelope{}, fmt.Errorf("%w: truncated origin", ErrCorruptEnvelope)
	}
	pos := 4
	origin := string(b[pos : pos+olen])
	pos += olen
	part := int(binary.BigEndian.Uint32(b[pos : pos+4]))
	pos += 4
	seq := int64(binary.BigEndian.Uint64(b[pos : pos+8]))
	pos += 8
	sub := int(binary.BigEndian.Uint16(b[pos : pos+2]))
	pos += 2
	payload := make([]byte, len(b)-pos)
	copy(payload, b[pos:])
	return MirrorEnvelope{Origin: origin, Partition: part, Seq: seq, Sub: sub, Payload: payload}, nil
}

// --- Checkpoint --------------------------------------------------------------

// mirrorCheckpoint persists per-partition source offsets. Like the partition
// high watermark (hw.checkpoint), it is written to a temp file and renamed,
// so a crash leaves either the old or the new state, never a torn one. A
// stale (low) checkpoint is safe: the mirror re-fetches and re-produces a
// bounded suffix — at-least-once, never loss.
type mirrorCheckpoint struct {
	path string

	mu  sync.Mutex
	off map[string]int64
}

func cpKey(topic string, partition int) string {
	return topic + "/" + strconv.Itoa(partition)
}

// loadMirrorCheckpoint reads the checkpoint file; a missing file is an empty
// checkpoint (first run), a corrupt one is an error — better to stop than to
// silently re-mirror a whole cluster from offset zero.
func loadMirrorCheckpoint(path string) (*mirrorCheckpoint, error) {
	cp := &mirrorCheckpoint{path: path, off: map[string]int64{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cp, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &cp.off); err != nil {
		return nil, fmt.Errorf("kafka: mirror checkpoint %s corrupt: %w", path, err)
	}
	return cp, nil
}

func (cp *mirrorCheckpoint) get(key string) (int64, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	off, ok := cp.off[key]
	return off, ok
}

// set records the offset and persists the whole table atomically.
func (cp *mirrorCheckpoint) set(key string, off int64) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.off[key] = off
	data, err := json.Marshal(cp.off)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(cp.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := cp.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, cp.path)
}

// --- MirrorMaker -------------------------------------------------------------

// MirrorConfig tunes a MirrorMaker.
type MirrorConfig struct {
	Topics         []string      // topics to mirror (every partition of each)
	CheckpointPath string        // per-partition source offsets; required
	Origin         string        // origin cluster ID stamped into envelopes; required in GlobalOrder mode
	GlobalOrder    bool          // wrap payloads in MirrorEnvelope causal stamps
	FetchMaxBytes  int           // per-fetch cap at the source; default 1 MiB
	FetchWait      time.Duration // source long-poll at the tail; default 250ms
	RetryPause     time.Duration // pause after an absorbed fetch/produce failure; default 10ms
}

func (c *MirrorConfig) withDefaults() error {
	if c.CheckpointPath == "" {
		return errors.New("kafka: mirror needs a CheckpointPath")
	}
	if len(c.Topics) == 0 {
		return errors.New("kafka: mirror needs at least one topic")
	}
	if c.GlobalOrder && c.Origin == "" {
		return errors.New("kafka: global-ordering mirror needs an Origin cluster ID")
	}
	if c.FetchMaxBytes == 0 {
		c.FetchMaxBytes = 1 << 20
	}
	if c.FetchWait == 0 {
		c.FetchWait = 250 * time.Millisecond
	}
	if c.RetryPause == 0 {
		c.RetryPause = 10 * time.Millisecond
	}
	return nil
}

// MirrorMaker republishes every partition of the configured topics from a
// source cluster into a destination cluster, partition-for-partition.
// Delivery is at-least-once: a batch is produced to the destination first
// and checkpointed second, so a crash between the two re-delivers that batch
// (and only that batch) on restart. Ordering within a source partition is
// preserved — the mirror is a single sequential reader per partition — and
// in GlobalOrder mode every message carries a MirrorEnvelope so aggregate
// consumers can order updates to a key across several mirrored origins.
//
// The source is a ClusterPeer — typically a RoutedClient (in-process zk) or
// a StaticClient (TCP) — whose own retries ride source-cluster failovers;
// the mirror additionally absorbs and retries any error either side still
// surfaces, so a source leader kill or a destination hiccup shows up as lag,
// not loss.
type MirrorMaker struct {
	src ClusterPeer
	dst BrokerClient
	cfg MirrorConfig
	cp  *mirrorCheckpoint

	mirrored atomic.Int64

	// afterProduce, when set (tests), runs after a batch is produced to the
	// destination and before its checkpoint is persisted — the window a
	// crash re-delivers.
	afterProduce func(topic string, partition int, next int64)

	startOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewMirrorMaker builds a mirror and loads its checkpoint. Partitions whose
// offset is checkpointed resume there; new partitions start at the source's
// earliest retained offset.
func NewMirrorMaker(src ClusterPeer, dst BrokerClient, cfg MirrorConfig) (*MirrorMaker, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	cp, err := loadMirrorCheckpoint(cfg.CheckpointPath)
	if err != nil {
		return nil, err
	}
	return &MirrorMaker{src: src, dst: dst, cfg: cfg, cp: cp, stop: make(chan struct{})}, nil
}

// Start resolves each topic's partition count from the source and launches
// one mirror loop per partition. Topic metadata may not exist until the
// source cluster has elected leaders, so resolution retries briefly.
func (m *MirrorMaker) Start() error {
	type tp struct {
		topic string
		parts int
	}
	var work []tp
	for _, topic := range m.cfg.Topics {
		var n int
		err := resilience.Retry(context.Background(), resilience.Policy{
			MaxAttempts:    20,
			InitialBackoff: 5 * time.Millisecond,
			MaxBackoff:     250 * time.Millisecond,
			Retryable:      func(error) bool { return true },
		}, func() error {
			var err error
			n, err = m.src.Partitions(topic)
			return err
		})
		if err != nil {
			return fmt.Errorf("kafka: mirror cannot resolve partitions of %q: %w", topic, err)
		}
		work = append(work, tp{topic, n})
	}
	m.startOnce.Do(func() {
		for _, w := range work {
			for p := 0; p < w.parts; p++ {
				m.wg.Add(1)
				go m.mirrorLoop(w.topic, p)
			}
		}
	})
	return nil
}

// Mirrored returns how many messages have been produced into the
// destination (including redelivered duplicates).
func (m *MirrorMaker) Mirrored() int64 { return m.mirrored.Load() }

// Checkpoint returns the checkpointed source offset of a partition; ok is
// false before the first batch of that partition is checkpointed.
func (m *MirrorMaker) Checkpoint(topic string, partition int) (int64, bool) {
	return m.cp.get(cpKey(topic, partition))
}

// pause sleeps d unless the mirror is stopping; it reports whether to keep
// running.
func (m *MirrorMaker) pause(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-m.stop:
		return false
	case <-t.C:
		return true
	}
}

// resumeOffset decides where a partition's mirroring starts: the checkpoint
// when one exists, else the source's earliest retained offset.
func (m *MirrorMaker) resumeOffset(topic string, partition int) (int64, bool) {
	if off, ok := m.cp.get(cpKey(topic, partition)); ok {
		return off, true
	}
	for {
		earliest, _, err := m.src.Offsets(topic, partition)
		if err == nil {
			return earliest, true
		}
		mMirrorErrors.Inc()
		if !m.pause(m.cfg.RetryPause) {
			return 0, false
		}
	}
}

// mirrorLoop is the per-partition pipeline: long-poll fetch at the source,
// re-encode (enveloping in GlobalOrder mode), produce to the destination,
// then checkpoint. The produce-before-checkpoint order is the at-least-once
// guarantee; the sequential single-reader structure is the ordering one.
func (m *MirrorMaker) mirrorLoop(topic string, partition int) {
	defer m.wg.Done()
	label := cpKey(topic, partition)
	off, ok := m.resumeOffset(topic, partition)
	if !ok {
		return
	}
	var set MessageSet
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		chunk, err := m.src.FetchWait(topic, partition, off, m.cfg.FetchMaxBytes, m.cfg.FetchWait)
		if err != nil {
			mMirrorErrors.Inc()
			if !m.pause(m.cfg.RetryPause) {
				return
			}
			continue
		}
		if len(chunk) == 0 {
			m.updateLag(label, topic, partition, off)
			continue
		}
		msgs, err := Decode(chunk, off)
		if err != nil {
			mMirrorErrors.Inc()
			if !m.pause(m.cfg.RetryPause) {
				return
			}
			continue
		}
		if len(msgs) == 0 {
			continue
		}
		set.Reset()
		at, sub := off, 0
		for i, msg := range msgs {
			payload := msg.Payload
			if m.cfg.GlobalOrder {
				payload = EncodeEnvelope(MirrorEnvelope{
					Origin:    m.cfg.Origin,
					Partition: partition,
					Seq:       at,
					Sub:       sub,
					Payload:   msg.Payload,
				})
			}
			set.Append(NewMessage(payload))
			// Inner messages of one compressed wrapper share a NextOffset —
			// and therefore a Seq; Sub tells them apart.
			if i+1 < len(msgs) && msgs[i+1].NextOffset == msg.NextOffset {
				sub++
			} else {
				at, sub = msg.NextOffset, 0
			}
		}
		for {
			if _, err := m.dst.Produce(topic, partition, set); err == nil {
				break
			}
			mMirrorErrors.Inc()
			if !m.pause(m.cfg.RetryPause) {
				return
			}
		}
		off = at
		m.mirrored.Add(int64(len(msgs)))
		mMirrorMessages.Add(int64(len(msgs)))
		mMirrorBytes.Add(int64(set.Len()))
		if m.afterProduce != nil {
			m.afterProduce(topic, partition, off)
		}
		if err := m.cp.set(label, off); err == nil {
			mMirrorCheckpoints.Inc()
			mMirrorCheckpointPos.With(label).Set(off)
		} else {
			// A failed checkpoint write only widens the redelivery window;
			// the data itself is already in the destination.
			mMirrorErrors.Inc()
		}
		m.updateLag(label, topic, partition, off)
	}
}

// updateLag refreshes the partition's lag gauge: source log head minus the
// mirrored position, in bytes (offsets are byte positions, §V.B).
func (m *MirrorMaker) updateLag(label, topic string, partition int, off int64) {
	_, latest, err := m.src.Offsets(topic, partition)
	if err != nil {
		return
	}
	lag := latest - off
	if lag < 0 {
		lag = 0
	}
	mMirrorLag.With(label).Set(lag)
}

// Close stops every mirror loop and waits for them to exit. The checkpoint
// already on disk is the resume point of the next MirrorMaker.
func (m *MirrorMaker) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.wg.Wait()
}

// --- StaticClient ------------------------------------------------------------

// StaticClient is the TCP counterpart of RoutedClient for deployments where
// the coordination plane is in-process on the broker side (cmd/kafka-broker
// -replicas): a ClusterPeer over a fixed list of broker addresses that
// discovers the partition leader by walking the list, caches it, and on
// ErrNotLeader or a transport failure invalidates and walks again — so a
// mirror or consumer rides a source failover with nothing but its retry
// budget.
type StaticClient struct {
	brokers []*RemoteBroker
	retry   resilience.Policy

	mu     sync.Mutex
	leader map[topicPartition]int
	next   int
}

// NewStaticClient dials (lazily) every address in addrs.
func NewStaticClient(addrs []string, timeout time.Duration) *StaticClient {
	sc := &StaticClient{
		leader: map[topicPartition]int{},
		retry: resilience.Policy{
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     250 * time.Millisecond,
			Retryable:      retryableRouted,
		},
	}
	for _, a := range addrs {
		sc.brokers = append(sc.brokers, DialBroker(a, timeout))
	}
	// Enough attempts to walk the whole cluster a few times across a
	// failover window.
	sc.retry.MaxAttempts = 4 * len(sc.brokers)
	if sc.retry.MaxAttempts < 8 {
		sc.retry.MaxAttempts = 8
	}
	return sc
}

// pick returns the broker to try for a partition: the cached leader, or the
// next one in rotation.
func (sc *StaticClient) pick(tp topicPartition) (int, *RemoteBroker) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	i, ok := sc.leader[tp]
	if !ok {
		i = sc.next % len(sc.brokers)
		sc.next++
	}
	return i, sc.brokers[i]
}

func (sc *StaticClient) invalidate(tp topicPartition, i int) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if cur, ok := sc.leader[tp]; ok && cur == i {
		delete(sc.leader, tp)
	}
}

func (sc *StaticClient) remember(tp topicPartition, i int) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.leader[tp] = i
}

// do runs fn against the partition's presumed leader, walking the broker
// list on leader changes and transient failures.
func (sc *StaticClient) do(topic string, partition int, fn func(*RemoteBroker) error) error {
	tp := topicPartition{topic, partition}
	return resilience.Retry(context.Background(), sc.retry, func() error {
		i, b := sc.pick(tp)
		if err := fn(b); err != nil {
			if retryableRouted(err) {
				sc.invalidate(tp, i)
			}
			return err
		}
		sc.remember(tp, i)
		return nil
	})
}

// Produce implements BrokerClient.
func (sc *StaticClient) Produce(topic string, partition int, set MessageSet) (int64, error) {
	var off int64
	err := sc.do(topic, partition, func(b *RemoteBroker) error {
		var err error
		off, err = b.Produce(topic, partition, set)
		return err
	})
	return off, err
}

// Fetch implements BrokerClient.
func (sc *StaticClient) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	var chunk []byte
	err := sc.do(topic, partition, func(b *RemoteBroker) error {
		var err error
		chunk, err = b.Fetch(topic, partition, offset, maxBytes)
		return err
	})
	return chunk, err
}

// FetchWait implements BlockingFetcher.
func (sc *StaticClient) FetchWait(topic string, partition int, offset int64, maxBytes int, wait time.Duration) ([]byte, error) {
	var chunk []byte
	err := sc.do(topic, partition, func(b *RemoteBroker) error {
		var err error
		chunk, err = b.FetchWait(topic, partition, offset, maxBytes, wait)
		return err
	})
	return chunk, err
}

// Offsets implements BrokerClient.
func (sc *StaticClient) Offsets(topic string, partition int) (int64, int64, error) {
	var earliest, latest int64
	err := sc.do(topic, partition, func(b *RemoteBroker) error {
		var err error
		earliest, latest, err = b.Offsets(topic, partition)
		return err
	})
	return earliest, latest, err
}

// Partitions implements BrokerClient: any live broker can answer.
func (sc *StaticClient) Partitions(topic string) (int, error) {
	var n int
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		for _, b := range sc.brokers {
			var err error
			n, err = b.Partitions(topic)
			if err == nil {
				return n, nil
			}
			lastErr = err
		}
	}
	if lastErr == nil {
		lastErr = errors.New("kafka: no brokers configured")
	}
	return 0, lastErr
}

// Close closes every broker connection.
func (sc *StaticClient) Close() {
	for _, b := range sc.brokers {
		b.Close()
	}
}

// sortedCheckpointKeys is a debugging helper: the checkpoint table's keys in
// stable order (used by String).
func (cp *mirrorCheckpoint) sortedKeys() []string {
	keys := make([]string, 0, len(cp.off))
	for k := range cp.off {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the checkpoint table (diagnostics and test logs).
func (cp *mirrorCheckpoint) String() string {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	s := "mirror checkpoint{"
	for i, k := range cp.sortedKeys() {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, cp.off[k])
	}
	return s + "}"
}
