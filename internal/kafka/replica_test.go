package kafka

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"datainfra/internal/resilience"
	"datainfra/internal/zk"
)

func zkServerForTest(t *testing.T) *zk.Server {
	t.Helper()
	return zk.NewServer()
}

func replicaRig(t *testing.T) (*ReplicaSet, *Broker, *Broker) {
	t.Helper()
	leader, err := NewBroker(0, t.TempDir(), BrokerConfig{PartitionsPerTopic: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	follower, err := NewBroker(1, t.TempDir(), BrokerConfig{PartitionsPerTopic: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { follower.Close() })
	rs := NewReplicaSet(leader, follower)
	t.Cleanup(rs.Close)
	return rs, leader, follower
}

func countAll(t *testing.T, b BrokerClient, topic string, parts int) int {
	t.Helper()
	sc := NewSimpleConsumer(b, 1<<20)
	got := 0
	for p := 0; p < parts; p++ {
		var off int64
		for {
			msgs, err := sc.Consume(topic, p, off)
			if err != nil || len(msgs) == 0 {
				break
			}
			got += len(msgs)
			off = msgs[len(msgs)-1].NextOffset
		}
	}
	return got
}

func TestReplicaSetReplicatesToFollower(t *testing.T) {
	rs, leader, follower := replicaRig(t)
	const total = 100
	for i := 0; i < total; i++ {
		if _, err := rs.Produce("t", i%2, NewMessageSet([]byte(fmt.Sprintf("m%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for rs.Replicated() < total {
		if time.Now().After(deadline) {
			t.Fatalf("replicated %d/%d", rs.Replicated(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	leader.FlushAll()
	follower.FlushAll()
	if got := countAll(t, follower, "t", 2); got != total {
		t.Fatalf("follower holds %d/%d", got, total)
	}
}

func TestReplicaSetFailover(t *testing.T) {
	rs, _, follower := replicaRig(t)
	const total = 50
	for i := 0; i < total; i++ {
		if _, err := rs.Produce("t", 0, NewMessageSet([]byte(fmt.Sprintf("m%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for rs.Replicated() < total {
		if time.Now().After(deadline) {
			t.Fatalf("replicated %d/%d", rs.Replicated(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	follower.FlushAll()
	// leader dies: produces fail, but fetches keep working from the follower
	rs.SetLeaderUp(false)
	if _, err := rs.Produce("t", 0, NewMessageSet([]byte("late"))); err == nil {
		t.Fatal("produce succeeded with leader down")
	}
	earliest, latest, err := rs.Offsets("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSimpleConsumer(rs, 1<<20)
	got := 0
	for off := earliest; off < latest; {
		msgs, err := sc.Consume("t", 0, off)
		if err != nil || len(msgs) == 0 {
			break
		}
		got += len(msgs)
		off = msgs[len(msgs)-1].NextOffset
	}
	if got != total {
		t.Fatalf("failover read %d/%d messages", got, total)
	}
	// leader recovers: produces resume
	rs.SetLeaderUp(true)
	if _, err := rs.Produce("t", 0, NewMessageSet([]byte("back"))); err != nil {
		t.Fatal(err)
	}
}

func TestBrokerRegistersInZK(t *testing.T) {
	srv := newTestBroker(t)
	coord := zkServerForTest(t)
	if err := srv.Register(coord, "127.0.0.1:9092"); err != nil {
		t.Fatal(err)
	}
	sess := coord.NewSession()
	defer sess.Close()
	data, _, err := sess.Get("/brokers/ids/0")
	if err != nil || string(data) != "127.0.0.1:9092" {
		t.Fatalf("broker registration = (%q, %v)", data, err)
	}
	// producing to a topic announces it
	if _, err := srv.Produce("announced", 0, NewMessageSet([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if data, _, err := sess.Get("/brokers/topics/announced/0"); err == nil && string(data) == "2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("topic never announced in zk")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// closing the broker removes the ephemeral
	srv.Close()
	if ok, _ := sess.Exists("/brokers/ids/0"); ok {
		t.Fatal("broker registration survived close")
	}
}

// flakyClient wraps a broker client, failing the first N calls of selected
// operations with a transient error to exercise retry paths.
type flakyClient struct {
	BrokerClient
	produceFails   atomic.Int64
	partitionFails atomic.Int64
}

func (f *flakyClient) Produce(topic string, partition int, set MessageSet) (int64, error) {
	if f.produceFails.Add(-1) >= 0 {
		return 0, errors.New("kafka: injected produce failure: connection reset")
	}
	return f.BrokerClient.Produce(topic, partition, set)
}

func (f *flakyClient) Partitions(topic string) (int, error) {
	if f.partitionFails.Add(-1) >= 0 {
		return 0, errors.New("kafka: injected partitions failure: connection reset")
	}
	return f.BrokerClient.Partitions(topic)
}

// TestReplicaSetRetriesFollowerProduce: a follower whose Produce fails
// transiently must not end the partition's replication — the fetcher backs
// off and retries until the republish lands.
func TestReplicaSetRetriesFollowerProduce(t *testing.T) {
	leader, err := NewBroker(0, t.TempDir(), BrokerConfig{PartitionsPerTopic: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	follower, err := NewBroker(1, t.TempDir(), BrokerConfig{PartitionsPerTopic: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { follower.Close() })
	flaky := &flakyClient{BrokerClient: follower}
	flaky.produceFails.Store(3)

	rs := NewReplicaSet(leader, flaky)
	rs.SetRetryPolicy(resilience.Policy{
		MaxAttempts: 8, InitialBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	t.Cleanup(rs.Close)
	if _, err := rs.Produce("t", 0, NewMessageSet([]byte("survives"))); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "replication through flaky follower", 5*time.Second, func() bool {
		return rs.Replicated() == 1
	})
	if n := flaky.produceFails.Load(); n >= 0 {
		t.Fatalf("follower produce was never retried (%d injected failures left)", n+1)
	}
}

// TestReplicaSetRecoversFromPartitionsFailure: a failed partition lookup in
// ensureFetcher must not leave a stale entry that marks the topic as
// replicated forever — the next produce retries the lookup.
func TestReplicaSetRecoversFromPartitionsFailure(t *testing.T) {
	leader, err := NewBroker(0, t.TempDir(), BrokerConfig{PartitionsPerTopic: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	follower, err := NewBroker(1, t.TempDir(), BrokerConfig{PartitionsPerTopic: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { follower.Close() })
	flaky := &flakyClient{BrokerClient: leader}
	flaky.partitionFails.Store(1)

	rs := NewReplicaSet(flaky, follower)
	t.Cleanup(rs.Close)
	// First produce hits the injected Partitions failure: no fetcher starts.
	if _, err := rs.Produce("t", 0, NewMessageSet([]byte("one"))); err != nil {
		t.Fatal(err)
	}
	// Second produce must retry the lookup and start replication, which
	// then catches up on both messages.
	if _, err := rs.Produce("t", 0, NewMessageSet([]byte("two"))); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "replication after partitions failure", 5*time.Second, func() bool {
		return rs.Replicated() == 2
	})
}

// TestReplicaFetcherTailLongPollNoBusySpin: a caught-up replica fetcher on a
// FetchWait-capable leader must park in long-polls at the idle tail, not
// fixed-interval poll. A 2ms poll would issue ~100 fetches in the idle
// window; the long-poll path issues a handful and no plain Fetch at all.
func TestReplicaFetcherTailLongPollNoBusySpin(t *testing.T) {
	cb := &countingBlockingBroker{countingBroker{b: newTestBroker(t)}}
	follower, err := NewBroker(1, t.TempDir(), BrokerConfig{PartitionsPerTopic: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { follower.Close() })
	rs := NewReplicaSet(cb, follower)
	t.Cleanup(rs.Close)

	if _, err := rs.Produce("idle", 0, NewMessageSet([]byte("only"))); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "catch-up", 5*time.Second, func() bool { return rs.Replicated() == 1 })

	base := cb.fetchWaits.Load()
	time.Sleep(200 * time.Millisecond)
	idleWaits := cb.fetchWaits.Load() - base
	if fetches := cb.fetches.Load(); fetches != 0 {
		t.Fatalf("replica fetchers issued %d plain fetches; want 0 (long-poll only)", fetches)
	}
	// Two partition fetchers parking replicaPollWait at a time: a couple of
	// wakeups each over 200ms, far below a 2ms poll's ~100.
	if idleWaits > 10 {
		t.Fatalf("idle tail issued %d long-polls in 200ms — busy-spinning", idleWaits)
	}
}
