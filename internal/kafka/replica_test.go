package kafka

import (
	"fmt"
	"testing"
	"time"

	"datainfra/internal/zk"
)

func zkServerForTest(t *testing.T) *zk.Server {
	t.Helper()
	return zk.NewServer()
}

func replicaRig(t *testing.T) (*ReplicaSet, *Broker, *Broker) {
	t.Helper()
	leader, err := NewBroker(0, t.TempDir(), BrokerConfig{PartitionsPerTopic: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	follower, err := NewBroker(1, t.TempDir(), BrokerConfig{PartitionsPerTopic: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { follower.Close() })
	rs := NewReplicaSet(leader, follower)
	t.Cleanup(rs.Close)
	return rs, leader, follower
}

func countAll(t *testing.T, b BrokerClient, topic string, parts int) int {
	t.Helper()
	sc := NewSimpleConsumer(b, 1<<20)
	got := 0
	for p := 0; p < parts; p++ {
		var off int64
		for {
			msgs, err := sc.Consume(topic, p, off)
			if err != nil || len(msgs) == 0 {
				break
			}
			got += len(msgs)
			off = msgs[len(msgs)-1].NextOffset
		}
	}
	return got
}

func TestReplicaSetReplicatesToFollower(t *testing.T) {
	rs, leader, follower := replicaRig(t)
	const total = 100
	for i := 0; i < total; i++ {
		if _, err := rs.Produce("t", i%2, NewMessageSet([]byte(fmt.Sprintf("m%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for rs.Replicated() < total {
		if time.Now().After(deadline) {
			t.Fatalf("replicated %d/%d", rs.Replicated(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	leader.FlushAll()
	follower.FlushAll()
	if got := countAll(t, follower, "t", 2); got != total {
		t.Fatalf("follower holds %d/%d", got, total)
	}
}

func TestReplicaSetFailover(t *testing.T) {
	rs, _, follower := replicaRig(t)
	const total = 50
	for i := 0; i < total; i++ {
		if _, err := rs.Produce("t", 0, NewMessageSet([]byte(fmt.Sprintf("m%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for rs.Replicated() < total {
		if time.Now().After(deadline) {
			t.Fatalf("replicated %d/%d", rs.Replicated(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	follower.FlushAll()
	// leader dies: produces fail, but fetches keep working from the follower
	rs.SetLeaderUp(false)
	if _, err := rs.Produce("t", 0, NewMessageSet([]byte("late"))); err == nil {
		t.Fatal("produce succeeded with leader down")
	}
	earliest, latest, err := rs.Offsets("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSimpleConsumer(rs, 1<<20)
	got := 0
	for off := earliest; off < latest; {
		msgs, err := sc.Consume("t", 0, off)
		if err != nil || len(msgs) == 0 {
			break
		}
		got += len(msgs)
		off = msgs[len(msgs)-1].NextOffset
	}
	if got != total {
		t.Fatalf("failover read %d/%d messages", got, total)
	}
	// leader recovers: produces resume
	rs.SetLeaderUp(true)
	if _, err := rs.Produce("t", 0, NewMessageSet([]byte("back"))); err != nil {
		t.Fatal(err)
	}
}

func TestBrokerRegistersInZK(t *testing.T) {
	srv := newTestBroker(t)
	coord := zkServerForTest(t)
	if err := srv.Register(coord, "127.0.0.1:9092"); err != nil {
		t.Fatal(err)
	}
	sess := coord.NewSession()
	defer sess.Close()
	data, _, err := sess.Get("/brokers/ids/0")
	if err != nil || string(data) != "127.0.0.1:9092" {
		t.Fatalf("broker registration = (%q, %v)", data, err)
	}
	// producing to a topic announces it
	if _, err := srv.Produce("announced", 0, NewMessageSet([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if data, _, err := sess.Get("/brokers/topics/announced/0"); err == nil && string(data) == "2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("topic never announced in zk")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// closing the broker removes the ephemeral
	srv.Close()
	if ok, _ := sess.Exists("/brokers/ids/0"); ok {
		t.Fatal("broker registration survived close")
	}
}
