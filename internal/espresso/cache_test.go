package espresso

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func cachedSoloNode(t testing.TB) *Node {
	t.Helper()
	db := musicDB(t, 4, 1)
	return soloNode(t, db).EnableDocCache(1 << 20)
}

func TestDocCacheServesRepeatReads(t *testing.T) {
	n := cachedSoloNode(t)
	key := DocKey{Table: "Artist", Parts: []string{"Cher"}}
	if _, err := n.Put(key, map[string]any{"name": "Cher", "genre": "pop"}, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		row, err := n.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := n.Document(row)
		if err != nil || doc["name"] != "Cher" {
			t.Fatalf("doc = %v, %v", doc, err)
		}
	}
	st := n.DocCache().Stats()
	if st.Hits != 9 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 9 hits / 1 miss", st)
	}
}

func TestDocCacheInvalidatedOnCommit(t *testing.T) {
	n := cachedSoloNode(t)
	key := DocKey{Table: "Album", Parts: []string{"Akon", "Trouble"}}
	if _, err := n.Put(key, map[string]any{"artist": "Akon", "title": "Trouble", "year": int64(2004)}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get(key); err != nil {
		t.Fatal(err)
	}
	// Overwrite: the commit must fence the cached row.
	if _, err := n.Put(key, map[string]any{"artist": "Akon", "title": "Trouble", "year": int64(2005)}, ""); err != nil {
		t.Fatal(err)
	}
	row, err := n.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := n.Document(row)
	if doc["year"] != int64(2005) {
		t.Fatalf("stale read after commit: %v", doc)
	}
	// Deletes fence too; missing documents are never cached.
	if err := n.Delete(key, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get(key); !errors.Is(err, ErrNoSuchDocument) {
		t.Fatalf("get after delete = %v", err)
	}
	if _, err := n.Get(key); !errors.Is(err, ErrNoSuchDocument) {
		t.Fatalf("second get after delete = %v", err)
	}
}

func TestDocCacheConditionalWritesSeesFreshEtag(t *testing.T) {
	n := cachedSoloNode(t)
	key := DocKey{Table: "Artist", Parts: []string{"Etta"}}
	row, err := n.Put(key, map[string]any{"name": "Etta", "genre": "soul"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get(key); err != nil {
		t.Fatal(err)
	}
	row2, err := n.Put(key, map[string]any{"name": "Etta James", "genre": "soul"}, row.Etag)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Get(key)
	if err != nil || got.Etag != row2.Etag {
		t.Fatalf("etag after conditional put = %v (want %s), err %v", got, row2.Etag, err)
	}
}

// TestDocCacheSlaveInvalidatedOnReplicatedApply proves timeline
// consistency survives caching on slaves: replicated applies fence the
// cache, so a slave poll-read converges to the new value instead of
// pinning the cached one forever.
func TestDocCacheSlaveInvalidatedOnReplicatedApply(t *testing.T) {
	db := musicDB(t, 4, 2)
	c, err := NewCluster(db)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.EnableDocCache(1 << 20)
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitForMasters(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	key := DocKey{Table: "Artist", Parts: []string{"Cher"}}
	clusterPut(t, c, key, map[string]any{"name": "Cher", "genre": "pop"})
	master, err := c.Route(key.ResourceID())
	if err != nil {
		t.Fatal(err)
	}
	var slave *Node
	for i := 0; i < 2; i++ {
		m, ok := c.Member(fmt.Sprintf("node-%d", i))
		if !ok {
			t.Fatal("member missing")
		}
		if m.Node != master {
			slave = m.Node
		}
	}
	if slave == nil {
		t.Fatal("no slave node")
	}

	waitDoc := func(n *Node, wantGenre string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			row, err := n.Get(key)
			if err == nil {
				if doc, _ := n.Document(row); doc["genre"] == wantGenre {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("slave never served genre=%q (err=%v)", wantGenre, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Warm the slave's cache on the old value, then update through the
	// master. If ApplyReplicated did not invalidate, the slave would
	// serve the cached "pop" row forever and this poll would time out.
	waitDoc(slave, "pop")
	waitDoc(slave, "pop")
	clusterPut(t, c, key, map[string]any{"name": "Cher", "genre": "disco"})
	waitDoc(slave, "disco")
	if st := slave.DocCache().Stats(); st.Hits == 0 || st.Invalidations == 0 {
		t.Fatalf("slave cache never engaged: %+v", st)
	}
}

func benchNode(b *testing.B, cacheBytes int64) (*Node, []DocKey) {
	b.Helper()
	db := musicDB(b, 4, 1)
	n := soloNode(b, db)
	if cacheBytes > 0 {
		n.EnableDocCache(cacheBytes)
	}
	const ndocs = 4096
	keys := make([]DocKey, ndocs)
	for i := range keys {
		keys[i] = DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("artist-%05d", i)}}
		if _, err := n.Put(keys[i], map[string]any{"name": fmt.Sprintf("artist-%05d", i), "genre": "rock"}, ""); err != nil {
			b.Fatal(err)
		}
	}
	return n, keys
}

// BenchmarkNodeGet measures the document read path with and without the
// doc cache (uncached = the seed partition-store path).
func BenchmarkNodeGet(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		bytes int64
	}{{"uncached", 0}, {"cached", 64 << 20}} {
		b.Run(cfg.name, func(b *testing.B) {
			n, keys := benchNode(b, cfg.bytes)
			if cfg.bytes > 0 {
				for _, k := range keys {
					if _, err := n.Get(k); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Get(keys[i&4095]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
