package espresso

import "datainfra/internal/metrics"

// Process-wide instruments for the Espresso hot paths (documented in
// OPERATIONS.md, checked by cmd/metriclint). The router tier counts and
// times requests; the storage tier counts document ops and commits and
// tracks replication/index SCN positions so operators can read index lag.
var (
	mRequests = metrics.RegisterCounterVec("espresso_requests_total",
		"HTTP API requests served by the router tier, by method", "method")
	mRequestLatency = metrics.RegisterHistogram("espresso_request_latency_seconds",
		"end-to-end router request latency")
	mGets = metrics.RegisterCounter("espresso_get_total",
		"document reads served by storage nodes")
	mPuts = metrics.RegisterCounter("espresso_put_total",
		"single-document writes applied by master partitions")
	mCommits = metrics.RegisterCounter("espresso_commit_txn_total",
		"multi-write transactions committed (binlog + local apply)")
	mCommitLatency = metrics.RegisterHistogram("espresso_commit_latency_seconds",
		"storage-node commit latency (encode + binlog + index)")
	mAppliedSCN = metrics.RegisterGauge("espresso_replica_applied_scn",
		"highest SCN applied from the replication stream by any slave partition")
)

// The global index registers "espresso_index_lag_scn" as a gauge func in
// NewGlobalIndex — its value (relay last SCN minus index consumer SCN) is
// computed at scrape time against the live relay.
