package espresso

import (
	"encoding/json"
	"time"

	"datainfra/internal/databus"
	"datainfra/internal/docindex"
	"datainfra/internal/metrics"
	"datainfra/internal/schema"
)

// GlobalIndex implements the future enhancement of §IV.A: "global secondary
// indexes maintained via a listener to the update stream". Unlike the local
// per-partition index (which only answers queries scoped to one
// resource_id), the global index subscribes to the database's Databus relay
// and indexes every document, so queries span all resources — at the cost of
// asynchronous (timeline-consistent) freshness.
type GlobalIndex struct {
	db     *Database
	index  *docindex.Index
	client *databus.Client
}

// NewGlobalIndex subscribes a fresh index to the cluster's change stream and
// starts consuming. Close it to detach.
func NewGlobalIndex(c *Cluster) (*GlobalIndex, error) {
	g := &GlobalIndex{db: c.DB, index: docindex.New()}
	client, err := databus.NewClient(databus.ClientConfig{
		Relay:      c.Relay,
		Bootstrap:  c.Boot,
		Consumer:   databus.ConsumerFuncs{Event: g.apply},
		PollExpiry: 5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	g.client = client
	client.Start()
	// Index lag is the distance between the relay head and the position the
	// listener has absorbed — the "asynchronous freshness" cost of a global
	// index, computed at scrape time. Re-registering rebinds the gauge to the
	// newest index (last instance wins).
	relay := c.Relay
	metrics.RegisterGaugeFunc("espresso_index_lag_scn",
		"SCN distance between the relay head and the global index listener",
		func() int64 {
			lag := relay.LastSCN() - g.client.SCN()
			if lag < 0 {
				return 0
			}
			return lag
		})
	return g, nil
}

func (g *GlobalIndex) apply(e databus.Event) error {
	docID := string(e.Key)
	if e.Op == databus.OpDelete {
		g.index.Remove(docID)
		return nil
	}
	var cr changeRecord
	if err := json.Unmarshal(e.Payload, &cr); err != nil {
		return err
	}
	rec, err := g.db.Registry.Get(g.db.Schema.Name+"."+cr.Table, cr.SchemaVersion)
	if err != nil {
		return err
	}
	doc, err := schema.Unmarshal(rec, cr.Val)
	if err != nil {
		return err
	}
	g.index.Remove(docID)
	for _, f := range rec.IndexedFields() {
		v, ok := doc[f.Name].(string)
		if !ok {
			continue
		}
		kind := docindex.Exact
		if f.Index == schema.IndexText {
			kind = docindex.Text
		}
		g.index.Add(docID, f.Name, v, kind)
	}
	return nil
}

// QueryText searches a text-indexed field across the whole database.
func (g *GlobalIndex) QueryText(field, query string) []string {
	return g.index.QueryText(field, query)
}

// QueryExact searches an exact-indexed field across the whole database.
func (g *GlobalIndex) QueryExact(field, value string) []string {
	return g.index.QueryExact(field, value)
}

// SCN returns the stream position the index has absorbed.
func (g *GlobalIndex) SCN() int64 { return g.client.SCN() }

// Docs returns the number of indexed documents.
func (g *GlobalIndex) Docs() int { return g.index.Docs() }

// Close detaches the listener.
func (g *GlobalIndex) Close() { g.client.Close() }
