package espresso

import (
	"fmt"
	"testing"
	"time"

	"datainfra/internal/schema"
)

func mustParseSchema(t *testing.T) *schema.Record {
	t.Helper()
	return schema.MustParse(`{"name":"Setting","fields":[{"name":"value","type":"string"}]}`)
}

func TestGlobalIndexSpansResources(t *testing.T) {
	c := newTestCluster(t, 4, 2, 2)
	g, err := NewGlobalIndex(c)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Songs by different artists land in different partitions; the local
	// index can only answer per-artist queries, the global index spans all.
	artists := []string{"The_Beatles", "Etta_James", "Elton_John"}
	for i, artist := range artists {
		key := DocKey{Table: "Song", Parts: []string{artist, "album", fmt.Sprintf("song%d", i)}}
		clusterPut(t, c, key, map[string]any{
			"title": fmt.Sprintf("song%d", i), "lyrics": "shared magic words here", "durationSec": int64(100)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(g.QueryText("lyrics", "magic words")) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("global index has %d hits, want 3 (docs=%d, scn=%d)",
				len(g.QueryText("lyrics", "magic words")), g.Docs(), g.SCN())
		}
		time.Sleep(5 * time.Millisecond)
	}
	hits := g.QueryText("lyrics", "magic words")
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestGlobalIndexFollowsDeletes(t *testing.T) {
	c := newTestCluster(t, 4, 2, 2)
	g, err := NewGlobalIndex(c)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	key := DocKey{Table: "Artist", Parts: []string{"Vanishing"}}
	clusterPut(t, c, key, map[string]any{"name": "Vanishing", "genre": "synth"})
	deadline := time.Now().Add(5 * time.Second)
	for len(g.QueryExact("genre", "synth")) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("index never absorbed the put")
		}
		time.Sleep(5 * time.Millisecond)
	}
	node, err := c.Route("Vanishing")
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Delete(key, ""); err != nil {
		t.Fatal(err)
	}
	for len(g.QueryExact("genre", "synth")) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("index never absorbed the delete")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGlobalIndexLateSubscriberBootstraps(t *testing.T) {
	// An index attached after the fact must catch up through the
	// bootstrap-backed stream.
	c := newTestCluster(t, 4, 2, 2)
	for i := 0; i < 10; i++ {
		key := DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("old%d", i)}}
		clusterPut(t, c, key, map[string]any{"name": fmt.Sprintf("old%d", i), "genre": "classic"})
	}
	g, err := NewGlobalIndex(c)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(g.QueryExact("genre", "classic")) < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("late subscriber indexed %d/10", len(g.QueryExact("genre", "classic")))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestUnpartitionedDatabase(t *testing.T) {
	db, err := NewDatabase(
		DatabaseSchema{Name: "Config", NumPartitions: 1, Replicas: 1, Unpartitioned: true},
		[]*TableSchema{{Name: "Setting", KeyParts: []string{"key"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Setting", mustParseSchema(t)); err != nil {
		t.Fatal(err)
	}
	// every resource hashes to partition 0
	for _, r := range []string{"a", "b", "zzz"} {
		if p := db.PartitionOf(r); p != 0 {
			t.Fatalf("unpartitioned PartitionOf(%q) = %d", r, p)
		}
	}
}
