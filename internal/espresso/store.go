package espresso

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"time"

	"datainfra/internal/cache"
	"datainfra/internal/databus"
	"datainfra/internal/docindex"
	"datainfra/internal/schema"
)

// changeRecord is the replication envelope carried in Databus event
// payloads: enough to reapply the row on a slave.
type changeRecord struct {
	Table         string   `json:"table"`
	Parts         []string `json:"parts"`
	Timestamp     int64    `json:"timestamp"`
	Etag          string   `json:"etag"`
	Val           []byte   `json:"val"`
	SchemaVersion int      `json:"schemaVersion"`
	Delete        bool     `json:"delete,omitempty"`
}

// partitionStore holds one partition's rows and local secondary index.
type partitionStore struct {
	mu         sync.RWMutex
	rows       map[string]*Row
	index      *docindex.Index
	appliedSCN int64
	master     bool
}

func newPartitionStore() *partitionStore {
	return &partitionStore{rows: map[string]*Row{}, index: docindex.New()}
}

// Node is an Espresso storage node: it masters some partitions (serving
// reads and writes, committing every change to the shared binlog/relay) and
// slaves others (applying the relay stream in commit order — timeline
// consistency, §IV.B).
type Node struct {
	ID string
	db *Database

	// binlog is the node's write-ahead commit stream; in this reproduction
	// all nodes of a database share one LogSource (a single global commit
	// order), which the Databus relay serves per-partition to slaves.
	binlog *databus.LogSource

	mu         sync.RWMutex
	partitions map[int]*partitionStore

	// cache, when non-nil, serves repeated document reads for this
	// node's (db, table, key) space without touching the partition
	// store. Every commit and replicated apply invalidates the touched
	// rows, and in-flight loads are generation-fenced (internal/cache),
	// so a cached read can never return a row older than the last
	// committed version. Rows are immutable once stored, so sharing
	// the *Row pointer is safe.
	cache *cache.Cache[*Row]

	now func() time.Time
}

// EnableDocCache puts a document-read cache with the given byte budget
// in front of the node's partition stores. Call before serving;
// maxBytes <= 0 leaves caching disabled. Returns n for chaining.
func (n *Node) EnableDocCache(maxBytes int64) *Node {
	if maxBytes <= 0 {
		return n
	}
	n.cache = cache.New(cache.Config[*Row]{
		Name:     "espresso",
		MaxBytes: maxBytes,
		SizeOf:   sizeOfRow,
	})
	return n
}

// DocCache exposes the document cache, if enabled (stats, tests).
func (n *Node) DocCache() *cache.Cache[*Row] { return n.cache }

// sizeOfRow charges a cached row against the byte budget: the rowID
// key, the encoded value, the etag, and a fixed struct overhead.
func sizeOfRow(key string, row *Row) int64 {
	size := int64(len(key)) + int64(len(row.Val)) + int64(len(row.Etag)) + 112
	for _, p := range row.Key.Parts {
		size += int64(len(p)) + 16
	}
	return size + int64(len(row.Key.Table))
}

// invalidateDoc fences one rowID after a mutation. Callers hold the
// partition lock, which is safe: the cache never takes partition locks.
func (n *Node) invalidateDoc(rowID string) {
	if n.cache != nil {
		n.cache.Invalidate([]byte(rowID))
	}
}

// NewNode builds a storage node for db committing to binlog.
func NewNode(id string, db *Database, binlog *databus.LogSource) *Node {
	return &Node{
		ID:         id,
		db:         db,
		binlog:     binlog,
		partitions: map[int]*partitionStore{},
		now:        time.Now,
	}
}

// Database returns the node's database definition.
func (n *Node) Database() *Database { return n.db }

func (n *Node) partition(p int, create bool) *partitionStore {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps, ok := n.partitions[p]
	if !ok && create {
		ps = newPartitionStore()
		n.partitions[p] = ps
	}
	return ps
}

// SetRole switches the node's role for partition p (driven by the Helix
// state model). Becoming master enables writes; becoming slave disables
// them. The partition store is created on demand.
func (n *Node) SetRole(p int, master bool) {
	ps := n.partition(p, true)
	ps.mu.Lock()
	ps.master = master
	ps.mu.Unlock()
}

// IsMaster reports the node's role for partition p.
func (n *Node) IsMaster(p int) bool {
	ps := n.partition(p, false)
	if ps == nil {
		return false
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return ps.master
}

// AppliedSCN returns the replication position of partition p on this node.
func (n *Node) AppliedSCN(p int) int64 {
	ps := n.partition(p, false)
	if ps == nil {
		return 0
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return ps.appliedSCN
}

func makeEtag(val []byte, ts int64) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(val)^uint32(ts))
}

// encodeDoc validates doc against the table's latest schema and serializes
// it.
func (n *Node) encodeDoc(table string, doc map[string]any) ([]byte, int, *schema.Record, error) {
	rec, version, err := n.db.DocumentSchema(table)
	if err != nil {
		return nil, 0, nil, err
	}
	val, err := schema.Marshal(rec, doc)
	if err != nil {
		return nil, 0, nil, err
	}
	return val, version, rec, nil
}

// Put writes one document (conditionally if ifMatch is non-empty) — a
// single-row transaction. It returns the stored row.
func (n *Node) Put(key DocKey, doc map[string]any, ifMatch string) (*Row, error) {
	rows, err := n.Commit([]Write{{Key: key, Doc: doc, IfMatch: ifMatch}})
	if err != nil {
		return nil, err
	}
	mPuts.Inc()
	return rows[0], nil
}

// Write is one document operation inside a transaction.
type Write struct {
	Key     DocKey
	Doc     map[string]any // nil means delete
	IfMatch string         // optional etag precondition
}

// Commit applies writes atomically. All rows must share one resource_id
// (hence one partition) — the transactional-update rule of §IV.A: tables
// indexed by the same resource_id partition identically, so a new album and
// its songs commit together or not at all.
func (n *Node) Commit(writes []Write) ([]*Row, error) {
	defer func(start time.Time) {
		mCommitLatency.Observe(time.Since(start))
	}(time.Now())
	if len(writes) == 0 {
		return nil, fmt.Errorf("espresso: empty transaction")
	}
	resource := writes[0].Key.ResourceID()
	for _, w := range writes[1:] {
		if w.Key.ResourceID() != resource {
			return nil, fmt.Errorf("%w: %q vs %q", ErrTxnMixedKeys, resource, w.Key.ResourceID())
		}
	}
	p := n.db.PartitionOf(resource)
	ps := n.partition(p, true)

	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.master {
		return nil, fmt.Errorf("%w: partition %d on node %s", ErrNotMaster, p, n.ID)
	}

	// Validate everything before mutating anything (all-or-nothing).
	type staged struct {
		row    *Row
		rec    *schema.Record
		delete bool
	}
	ts := n.now().UnixMilli()
	stagedWrites := make([]staged, 0, len(writes))
	for _, w := range writes {
		if _, err := n.db.validateKey(w.Key); err != nil {
			return nil, err
		}
		existing := ps.rows[w.Key.rowID()]
		if w.IfMatch != "" {
			if existing == nil || existing.Etag != w.IfMatch {
				have := "<absent>"
				if existing != nil {
					have = existing.Etag
				}
				return nil, fmt.Errorf("%w: have %s, want %s", ErrEtagMismatch, have, w.IfMatch)
			}
		}
		if w.Doc == nil {
			if existing == nil {
				return nil, fmt.Errorf("%w: %s", ErrNoSuchDocument, w.Key)
			}
			stagedWrites = append(stagedWrites, staged{row: &Row{Key: w.Key}, delete: true})
			continue
		}
		val, version, rec, err := n.encodeDoc(w.Key.Table, w.Doc)
		if err != nil {
			return nil, err
		}
		stagedWrites = append(stagedWrites, staged{
			row: &Row{Key: w.Key, Timestamp: ts, Etag: makeEtag(val, ts), Val: val, SchemaVersion: version},
			rec: rec,
		})
	}

	// Build the binlog transaction ("each change is written to two places
	// before being committed — the local binlog and the Databus relay").
	events := make([]databus.Event, 0, len(stagedWrites))
	for _, st := range stagedWrites {
		cr := changeRecord{
			Table: st.row.Key.Table, Parts: st.row.Key.Parts,
			Timestamp: st.row.Timestamp, Etag: st.row.Etag,
			Val: st.row.Val, SchemaVersion: st.row.SchemaVersion, Delete: st.delete,
		}
		payload, err := json.Marshal(cr)
		if err != nil {
			return nil, err
		}
		op := databus.OpUpsert
		if st.delete {
			op = databus.OpDelete
		}
		events = append(events, databus.Event{
			Source:    n.db.Schema.Name + "." + st.row.Key.Table,
			Op:        op,
			Key:       []byte(st.row.Key.rowID()),
			Payload:   payload,
			Partition: p,
			Timestamp: ts,
		})
	}
	scn := n.binlog.Commit(events...)

	// Apply locally in the same commit order. Invalidation happens
	// after each row is applied and inside the partition lock, so any
	// read that loaded the pre-commit state is generation-fenced out of
	// the cache before this transaction's effects become visible.
	rows := make([]*Row, 0, len(stagedWrites))
	for _, st := range stagedWrites {
		ps.applyLocked(n.db, st.row, st.rec, st.delete)
		n.invalidateDoc(st.row.Key.rowID())
		rows = append(rows, st.row)
	}
	ps.appliedSCN = scn
	mCommits.Inc()
	return rows, nil
}

// applyLocked installs (or removes) a row and maintains the secondary index.
func (ps *partitionStore) applyLocked(db *Database, row *Row, rec *schema.Record, del bool) {
	id := row.Key.rowID()
	ps.index.Remove(id)
	if del {
		delete(ps.rows, id)
		return
	}
	ps.rows[id] = row
	if rec == nil {
		var err error
		rec, err = db.Registry.Get(db.Schema.Name+"."+row.Key.Table, row.SchemaVersion)
		if err != nil {
			return
		}
	}
	// Only the indexed string fields matter here; walk them out of the
	// encoded row directly instead of materializing the whole document.
	_ = schema.IndexedStrings(rec, row.Val, func(f *schema.Field, v string) bool {
		kind := docindex.Exact
		if f.Index == schema.IndexText {
			kind = docindex.Text
		}
		ps.index.Add(id, f.Name, v, kind)
		return true
	})
}

// Get returns the row for key from the local store (master or slave — the
// router sends reads to masters; tests may read slaves to verify timeline
// consistency).
func (n *Node) Get(key DocKey) (*Row, error) {
	if _, err := n.db.validateKey(key); err != nil {
		return nil, err
	}
	var row *Row
	var err error
	if n.cache != nil {
		row, err = n.cache.GetOrLoad([]byte(key.rowID()), func([]byte) (*Row, error) {
			return n.getStore(key)
		})
	} else {
		row, err = n.getStore(key)
	}
	if err != nil {
		return nil, err
	}
	mGets.Inc()
	return row, nil
}

// getStore reads key from the partition store, bypassing the cache.
// Missing documents are errors, which the cache never stores — a
// failed load is retried by the next reader.
func (n *Node) getStore(key DocKey) (*Row, error) {
	ps := n.partition(n.db.PartitionOf(key.ResourceID()), false)
	if ps == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchDocument, key)
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	row, ok := ps.rows[key.rowID()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchDocument, key)
	}
	return row, nil
}

// Document decodes a row through the latest document schema (resolving old
// schema versions per the Avro rules).
func (n *Node) Document(row *Row) (map[string]any, error) {
	return n.db.Registry.DecodeLatest(n.db.Schema.Name+"."+row.Key.Table, row.SchemaVersion, row.Val)
}

// Delete removes a document.
func (n *Node) Delete(key DocKey, ifMatch string) error {
	_, err := n.Commit([]Write{{Key: key, Doc: nil, IfMatch: ifMatch}})
	return err
}

// List returns the rows of a collection: every document under resource_id in
// table, sorted by key.
func (n *Node) List(table, resourceID string) ([]*Row, error) {
	ts, ok := n.db.Tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	if ts.KeyDepth() < 2 {
		// singleton table: the "collection" is the single row
		row, err := n.Get(DocKey{Table: table, Parts: []string{resourceID}})
		if err != nil {
			return nil, nil
		}
		return []*Row{row}, nil
	}
	ps := n.partition(n.db.PartitionOf(resourceID), false)
	if ps == nil {
		return nil, nil
	}
	prefix := collectionPrefix(table, resourceID)
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	var out []*Row
	for id, row := range ps.rows {
		if strings.HasPrefix(id, prefix) {
			out = append(out, row)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.rowID() < out[j].Key.rowID() })
	return out, nil
}

// Query runs a secondary-index lookup within the collection under
// resource_id (§IV.A: indexed access is limited to collection resources
// accessed via a common resource_id). The field must carry an index
// annotation in the document schema.
func (n *Node) Query(table, resourceID, field, value string) ([]*Row, error) {
	rec, _, err := n.db.DocumentSchema(table)
	if err != nil {
		return nil, err
	}
	f, ok := rec.FieldByName(field)
	if !ok || f.Index == schema.IndexNone {
		return nil, fmt.Errorf("espresso: field %q of %s is not indexed", field, table)
	}
	ps := n.partition(n.db.PartitionOf(resourceID), false)
	if ps == nil {
		return nil, nil
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	var ids []string
	if f.Index == schema.IndexText {
		ids = ps.index.QueryText(field, value)
	} else {
		ids = ps.index.QueryExact(field, value)
	}
	prefix := collectionPrefix(table, resourceID)
	var out []*Row
	for _, id := range ids {
		if !strings.HasPrefix(id, prefix) && !strings.HasPrefix(id, table+"\x1f"+resourceID) {
			continue
		}
		if row, ok := ps.rows[id]; ok {
			out = append(out, row)
		}
	}
	return out, nil
}

// ApplyReplicated applies one relay event to a slave partition in commit
// order — the timeline-consistency path. Events at or below the applied SCN
// are skipped (idempotent redelivery).
func (n *Node) ApplyReplicated(e databus.Event) error {
	ps := n.partition(e.Partition, true)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if e.SCN <= ps.appliedSCN {
		return nil
	}
	var cr changeRecord
	if err := json.Unmarshal(e.Payload, &cr); err != nil {
		return fmt.Errorf("espresso: bad change record at SCN %d: %w", e.SCN, err)
	}
	row := &Row{
		Key:           DocKey{Table: cr.Table, Parts: cr.Parts},
		Timestamp:     cr.Timestamp,
		Etag:          cr.Etag,
		Val:           cr.Val,
		SchemaVersion: cr.SchemaVersion,
	}
	ps.applyLocked(n.db, row, nil, cr.Delete)
	n.invalidateDoc(row.Key.rowID())
	if e.EndOfTxn {
		ps.appliedSCN = e.SCN
		mAppliedSCN.Set(e.SCN)
	}
	return nil
}

// PartitionRows returns a copy of the partition's rows (test hook for
// master/slave equivalence checks).
func (n *Node) PartitionRows(p int) map[string]Row {
	ps := n.partition(p, false)
	out := map[string]Row{}
	if ps == nil {
		return out
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	for id, row := range ps.rows {
		out[id] = *row
	}
	return out
}
