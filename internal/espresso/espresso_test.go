package espresso

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"datainfra/internal/databus"
	"datainfra/internal/schema"
)

const albumSchema = `{
	"name": "Album",
	"fields": [
		{"name": "artist", "type": "string", "index": "exact"},
		{"name": "title", "type": "string"},
		{"name": "year", "type": "long"}
	]
}`

const songSchema = `{
	"name": "Song",
	"fields": [
		{"name": "title", "type": "string"},
		{"name": "lyrics", "type": "string", "index": "text"},
		{"name": "durationSec", "type": "long"}
	]
}`

// musicDB builds the paper's Music database: Artist (singleton), Album
// (artist/album) and Song (artist/album/song).
func musicDB(t testing.TB, partitions, replicas int) *Database {
	t.Helper()
	db, err := NewDatabase(
		DatabaseSchema{Name: "Music", NumPartitions: partitions, Replicas: replicas},
		[]*TableSchema{
			{Name: "Artist", KeyParts: []string{"artist"}},
			{Name: "Album", KeyParts: []string{"artist", "album"}},
			{Name: "Song", KeyParts: []string{"artist", "album", "song"}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Artist", schema.MustParse(`{
		"name":"Artist","fields":[{"name":"name","type":"string"},{"name":"genre","type":"string","index":"exact"}]}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Album", schema.MustParse(albumSchema)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Song", schema.MustParse(songSchema)); err != nil {
		t.Fatal(err)
	}
	return db
}

func newBinlog() *databus.LogSource { return databus.NewLogSource() }

// soloNode returns a single node mastering every partition (no helix).
func soloNode(t testing.TB, db *Database) *Node {
	t.Helper()
	n := NewNode("solo", db, newBinlog())
	for p := 0; p < db.Schema.NumPartitions; p++ {
		n.SetRole(p, true)
	}
	return n
}

func TestParseURI(t *testing.T) {
	db, key, err := ParseURI("/Music/Song/Etta_James/Gold/At_Last")
	if err != nil || db != "Music" || key.Table != "Song" ||
		!reflect.DeepEqual(key.Parts, []string{"Etta_James", "Gold", "At_Last"}) {
		t.Fatalf("ParseURI = (%s, %+v, %v)", db, key, err)
	}
	for _, bad := range []string{"/", "/Music", "/Music/Artist", "//x/y"} {
		if _, _, err := ParseURI(bad); err == nil {
			t.Errorf("ParseURI(%q) accepted", bad)
		}
	}
}

func TestPutGetDocument(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	key := DocKey{Table: "Album", Parts: []string{"Akon", "Trouble"}}
	row, err := n.Put(key, map[string]any{"artist": "Akon", "title": "Trouble", "year": int64(2004)}, "")
	if err != nil {
		t.Fatal(err)
	}
	if row.Etag == "" || row.SchemaVersion != 1 {
		t.Fatalf("row = %+v", row)
	}
	got, err := n.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := n.Document(got)
	if err != nil {
		t.Fatal(err)
	}
	if doc["title"] != "Trouble" || doc["year"] != int64(2004) {
		t.Fatalf("doc = %v", doc)
	}
	// missing document
	if _, err := n.Get(DocKey{Table: "Album", Parts: []string{"Akon", "Nope"}}); !errors.Is(err, ErrNoSuchDocument) {
		t.Fatalf("missing get err = %v", err)
	}
	// wrong arity
	if _, err := n.Get(DocKey{Table: "Album", Parts: []string{"Akon"}}); !errors.Is(err, ErrKeyArity) {
		t.Fatalf("arity err = %v", err)
	}
	// schema validation on write
	if _, err := n.Put(key, map[string]any{"bogusField": 1}, ""); err == nil {
		t.Fatal("invalid doc accepted")
	}
}

func TestEtagConditionalUpdate(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	key := DocKey{Table: "Artist", Parts: []string{"Coolio"}}
	row, err := n.Put(key, map[string]any{"name": "Coolio", "genre": "rap"}, "")
	if err != nil {
		t.Fatal(err)
	}
	// stale etag rejected
	_, err = n.Put(key, map[string]any{"name": "Coolio", "genre": "hiphop"}, "deadbeef")
	if !errors.Is(err, ErrEtagMismatch) {
		t.Fatalf("stale etag err = %v", err)
	}
	// correct etag accepted
	if _, err := n.Put(key, map[string]any{"name": "Coolio", "genre": "hiphop"}, row.Etag); err != nil {
		t.Fatal(err)
	}
	got, _ := n.Get(key)
	doc, _ := n.Document(got)
	if doc["genre"] != "hiphop" {
		t.Fatalf("doc = %v", doc)
	}
}

func TestDeleteDocument(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	key := DocKey{Table: "Artist", Parts: []string{"Gone"}}
	if _, err := n.Put(key, map[string]any{"name": "Gone", "genre": "x"}, ""); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete(key, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get(key); !errors.Is(err, ErrNoSuchDocument) {
		t.Fatalf("get after delete err = %v", err)
	}
	if err := n.Delete(key, ""); !errors.Is(err, ErrNoSuchDocument) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestCollectionListing(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	albums := []string{"Lovers", "A_Closer_Look", "Face2Face"}
	for i, a := range albums {
		key := DocKey{Table: "Album", Parts: []string{"Babyface", a}}
		if _, err := n.Put(key, map[string]any{"artist": "Babyface", "title": a, "year": int64(1986 + i)}, ""); err != nil {
			t.Fatal(err)
		}
	}
	// unrelated artist in (possibly) the same partition
	n.Put(DocKey{Table: "Album", Parts: []string{"Coolio", "Steal_Hear"}},
		map[string]any{"artist": "Coolio", "title": "Steal Hear", "year": int64(2008)}, "")

	rows, err := n.List("Album", "Babyface")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("collection has %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Key.ResourceID() != "Babyface" {
			t.Fatalf("leaked %v", row.Key)
		}
	}
}

func TestMultiTableTransaction(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	// post a new album and each of its songs in a single transaction (§IV.A)
	writes := []Write{
		{Key: DocKey{Table: "Album", Parts: []string{"Elton_John", "Greatest_Hits"}},
			Doc: map[string]any{"artist": "Elton John", "title": "Greatest Hits", "year": int64(1974)}},
		{Key: DocKey{Table: "Song", Parts: []string{"Elton_John", "Greatest_Hits", "Rocket_Man"}},
			Doc: map[string]any{"title": "Rocket Man", "lyrics": "and I think it's gonna be a long long time", "durationSec": int64(281)}},
		{Key: DocKey{Table: "Song", Parts: []string{"Elton_John", "Greatest_Hits", "Daniel"}},
			Doc: map[string]any{"title": "Daniel", "lyrics": "Daniel is travelling tonight on a plane", "durationSec": int64(223)}},
	}
	rows, err := n.Commit(writes)
	if err != nil || len(rows) != 3 {
		t.Fatalf("Commit = (%d, %v)", len(rows), err)
	}
	songs, _ := n.List("Song", "Elton_John")
	if len(songs) != 2 {
		t.Fatalf("songs = %d", len(songs))
	}
}

func TestTransactionAtomicityOnFailure(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	writes := []Write{
		{Key: DocKey{Table: "Album", Parts: []string{"X", "Good"}},
			Doc: map[string]any{"artist": "X", "title": "Good", "year": int64(2000)}},
		{Key: DocKey{Table: "Song", Parts: []string{"X", "Good", "Bad"}},
			Doc: map[string]any{"notAField": true}}, // schema violation
	}
	if _, err := n.Commit(writes); err == nil {
		t.Fatal("invalid transaction committed")
	}
	// nothing from the failed txn is visible
	if _, err := n.Get(DocKey{Table: "Album", Parts: []string{"X", "Good"}}); !errors.Is(err, ErrNoSuchDocument) {
		t.Fatalf("partial commit leaked: %v", err)
	}
	// and the binlog got nothing
	if n.binlog.Len() != 0 {
		t.Fatalf("failed txn wrote %d binlog entries", n.binlog.Len())
	}
}

func TestTransactionRejectsMixedResources(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	writes := []Write{
		{Key: DocKey{Table: "Artist", Parts: []string{"A"}}, Doc: map[string]any{"name": "A", "genre": "g"}},
		{Key: DocKey{Table: "Artist", Parts: []string{"B"}}, Doc: map[string]any{"name": "B", "genre": "g"}},
	}
	if _, err := n.Commit(writes); !errors.Is(err, ErrTxnMixedKeys) {
		t.Fatalf("mixed txn err = %v", err)
	}
}

func TestSecondaryIndexQueries(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	put := func(album, song, lyrics string) {
		key := DocKey{Table: "Song", Parts: []string{"The_Beatles", album, song}}
		if _, err := n.Put(key, map[string]any{"title": song, "lyrics": lyrics, "durationSec": int64(180)}, ""); err != nil {
			t.Fatal(err)
		}
	}
	put("Sgt_Pepper", "Lucy_in_the_Sky_with_Diamonds", "Picture yourself in a boat on a river, Lucy in the sky with diamonds")
	put("Magical_Mystery_Tour", "I_am_the_Walrus", "I am he as you are he; see how they run like Lucy in the sky")
	put("Abbey_Road", "Here_Comes_the_Sun", "Here comes the sun and I say it's all right")

	// the paper's example query
	rows, err := n.Query("Song", "The_Beatles", "lyrics", "Lucy in the sky")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("query matched %d songs, want 2", len(rows))
	}
	// updates re-index
	key := DocKey{Table: "Song", Parts: []string{"The_Beatles", "Abbey_Road", "Here_Comes_the_Sun"}}
	if _, err := n.Put(key, map[string]any{"title": "Here Comes the Sun", "lyrics": "Lucy in the sky rewrite", "durationSec": int64(185)}, ""); err != nil {
		t.Fatal(err)
	}
	rows, _ = n.Query("Song", "The_Beatles", "lyrics", "Lucy in the sky")
	if len(rows) != 3 {
		t.Fatalf("after update query matched %d", len(rows))
	}
	// deletes un-index
	if err := n.Delete(key, ""); err != nil {
		t.Fatal(err)
	}
	rows, _ = n.Query("Song", "The_Beatles", "lyrics", "Lucy in the sky")
	if len(rows) != 2 {
		t.Fatalf("after delete query matched %d", len(rows))
	}
	// unindexed field rejected
	if _, err := n.Query("Song", "The_Beatles", "title", "x"); err == nil {
		t.Fatal("query on unindexed field accepted")
	}
	// exact index on another table
	n.Put(DocKey{Table: "Album", Parts: []string{"The_Beatles", "Abbey_Road"}},
		map[string]any{"artist": "The Beatles", "title": "Abbey Road", "year": int64(1969)}, "")
	rows, err = n.Query("Album", "The_Beatles", "artist", "The Beatles")
	if err != nil || len(rows) != 1 {
		t.Fatalf("exact query = (%d, %v)", len(rows), err)
	}
}

func TestSchemaEvolutionOnLiveData(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	key := DocKey{Table: "Album", Parts: []string{"Cher", "Greatest_Hits"}}
	if _, err := n.Put(key, map[string]any{"artist": "Cher", "title": "Greatest Hits", "year": int64(1999)}, ""); err != nil {
		t.Fatal(err)
	}
	// evolve: add a label field with a default
	v, err := db.SetDocumentSchema("Album", schema.MustParse(`{
		"name":"Album","fields":[
			{"name":"artist","type":"string","index":"exact"},
			{"name":"title","type":"string"},
			{"name":"year","type":"long"},
			{"name":"label","type":"string","default":"unknown"}
		]}`))
	if err != nil || v != 2 {
		t.Fatalf("evolve = (%d, %v)", v, err)
	}
	// old document (v1) reads through the new schema with the default
	row, _ := n.Get(key)
	if row.SchemaVersion != 1 {
		t.Fatalf("stored version = %d", row.SchemaVersion)
	}
	doc, err := n.Document(row)
	if err != nil {
		t.Fatal(err)
	}
	if doc["label"] != "unknown" {
		t.Fatalf("evolved doc = %v", doc)
	}
	// new writes store v2
	row2, err := n.Put(key, map[string]any{"artist": "Cher", "title": "Greatest Hits", "year": int64(1999), "label": "WEA"}, "")
	if err != nil || row2.SchemaVersion != 2 {
		t.Fatalf("v2 write = (%+v, %v)", row2, err)
	}
	// incompatible evolution rejected
	if _, err := db.SetDocumentSchema("Album", schema.MustParse(`{
		"name":"Album","fields":[{"name":"artist","type":"long"}]}`)); err == nil {
		t.Fatal("incompatible evolution accepted")
	}
}

func TestWriteToSlaveRejected(t *testing.T) {
	db := musicDB(t, 2, 1)
	n := NewNode("n", db, newBinlog())
	n.SetRole(0, false)
	n.SetRole(1, false)
	key := DocKey{Table: "Artist", Parts: []string{"X"}}
	if _, err := n.Put(key, map[string]any{"name": "X", "genre": "g"}, ""); !errors.Is(err, ErrNotMaster) {
		t.Fatalf("slave write err = %v", err)
	}
}

func TestTableIV1Layout(t *testing.T) {
	// Golden test for the storage layout of Table IV.1.
	want := strings.Join([]string{
		"<key columns from table schema>",
		"timestamp bigint(20)",
		"etag varchar(10)",
		"val blob",
		"schema_version smallint(6)",
	}, "\n")
	if got := strings.Join(TableIV1Columns, "\n"); got != want {
		t.Fatalf("Table IV.1 layout drifted:\n%s", got)
	}
	// And the Row struct actually carries those fields.
	row := Row{Key: DocKey{Table: "Song", Parts: []string{"a", "b", "c"}},
		Timestamp: 1, Etag: "abcd1234", Val: []byte{1}, SchemaVersion: 1}
	if row.Timestamp == 0 || row.Etag == "" || row.Val == nil || row.SchemaVersion == 0 {
		t.Fatal("Row missing Table IV.1 fields")
	}
}

// --- cluster-level tests ----------------------------------------------------

func newTestCluster(t testing.TB, partitions, replicas, nodes int) *Cluster {
	t.Helper()
	db := musicDB(t, partitions, replicas)
	c, err := NewCluster(db)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitForMasters(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func clusterPut(t testing.TB, c *Cluster, key DocKey, doc map[string]any) *Row {
	t.Helper()
	var row *Row
	deadline := time.Now().Add(5 * time.Second)
	for {
		node, err := c.Route(key.ResourceID())
		if err == nil {
			row, err = node.Put(key, doc, "")
			if err == nil {
				return row
			}
			if !errors.Is(err, ErrNotMaster) {
				t.Fatal(err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("clusterPut %v never found a master", key)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClusterRoutedWrites(t *testing.T) {
	c := newTestCluster(t, 8, 2, 3)
	for i := 0; i < 40; i++ {
		key := DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("artist-%d", i)}}
		clusterPut(t, c, key, map[string]any{"name": fmt.Sprintf("artist-%d", i), "genre": "rock"})
	}
	for i := 0; i < 40; i++ {
		key := DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("artist-%d", i)}}
		node, err := c.Route(key.ResourceID())
		if err != nil {
			t.Fatal(err)
		}
		row, err := node.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		doc, _ := node.Document(row)
		if doc["name"] != fmt.Sprintf("artist-%d", i) {
			t.Fatalf("doc = %v", doc)
		}
	}
}

func TestTimelineConsistencyMasterSlave(t *testing.T) {
	c := newTestCluster(t, 4, 2, 2)
	// write a stream of updates
	for i := 0; i < 30; i++ {
		key := DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("a%d", i%5)}}
		clusterPut(t, c, key, map[string]any{"name": fmt.Sprintf("v%d", i), "genre": "g"})
	}
	// wait for slaves to catch up, then compare per-partition state
	deadline := time.Now().Add(10 * time.Second)
	for p := 0; p < 4; p++ {
		master, err := c.MasterOf(p)
		if err != nil {
			t.Fatal(err)
		}
		var slave *Member
		c.mu.Lock()
		for id, m := range c.members {
			if id != master.Node.ID {
				states := m.participant.States(c.DB.Schema.Name)
				if _, has := states[p]; has {
					slave = m
				}
			}
		}
		c.mu.Unlock()
		if slave == nil {
			continue // replica count 2 with 2 nodes: other node must hold it
		}
		for {
			mRows := master.Node.PartitionRows(p)
			sRows := slave.Node.PartitionRows(p)
			if rowsEqual(mRows, sRows) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("partition %d: slave never converged (%d vs %d rows)", p, len(sRows), len(mRows))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func rowsEqual(a, b map[string]Row) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.Etag != bv.Etag || string(av.Val) != string(bv.Val) {
			return false
		}
	}
	return true
}

func TestE16FailoverPromotesSlave(t *testing.T) {
	c := newTestCluster(t, 4, 2, 3)
	// seed data
	keys := make([]DocKey, 20)
	for i := range keys {
		keys[i] = DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("f%d", i)}}
		clusterPut(t, c, keys[i], map[string]any{"name": fmt.Sprintf("f%d", i), "genre": "g"})
	}
	// kill the master of partition 0
	victim, err := c.MasterOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(victim.Node.ID); err != nil {
		t.Fatal(err)
	}
	// a new master must emerge and have ALL the data (caught up via relay)
	deadline := time.Now().Add(10 * time.Second)
	var newMaster *Member
	for {
		m, err := c.MasterOf(0)
		if err == nil && m.Node.ID != victim.Node.ID && m.Node.IsMaster(0) {
			newMaster = m
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no new master emerged for partition 0")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, key := range keys {
		if c.DB.PartitionOf(key.ResourceID()) != 0 {
			continue
		}
		row, err := newMaster.Node.Get(key)
		if err != nil {
			t.Fatalf("data lost in failover: %s: %v", key, err)
		}
		doc, _ := newMaster.Node.Document(row)
		if doc["name"] != key.Parts[0] {
			t.Fatalf("corrupt after failover: %v", doc)
		}
	}
	// and the cluster accepts writes for partition 0 again
	probe := DocKey{Table: "Artist", Parts: []string{"post-failover"}}
	clusterPut(t, c, probe, map[string]any{"name": "post", "genre": "g"})
}

func TestElasticExpansionNewNodeServes(t *testing.T) {
	c := newTestCluster(t, 4, 2, 2)
	for i := 0; i < 20; i++ {
		key := DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("e%d", i)}}
		clusterPut(t, c, key, map[string]any{"name": fmt.Sprintf("e%d", i), "genre": "g"})
	}
	// add a third node: helix should eventually hand it partitions
	m, err := c.AddNode("node-new")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		states := m.participant.States(c.DB.Schema.Name)
		if len(states) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("new node never received partitions")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFigIV3PartitionLayout(t *testing.T) {
	// The partition distribution of Figure IV.3: every partition has exactly
	// one master and replicas-1 slaves, spread across nodes.
	c := newTestCluster(t, 6, 2, 3)
	time.Sleep(200 * time.Millisecond) // let slaves finish converging
	masters := map[int]string{}
	slaveCount := map[int]int{}
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, m := range c.members {
		states := m.participant.States(c.DB.Schema.Name)
		for p, st := range states {
			switch st {
			case "MASTER":
				if prev, dup := masters[p]; dup {
					t.Fatalf("partition %d has two masters: %s and %s", p, prev, id)
				}
				masters[p] = id
			case "SLAVE":
				slaveCount[p]++
			}
		}
	}
	if len(masters) != 6 {
		t.Fatalf("only %d/6 partitions mastered", len(masters))
	}
	for p := 0; p < 6; p++ {
		if slaveCount[p] != 1 {
			t.Fatalf("partition %d has %d slaves, want 1", p, slaveCount[p])
		}
	}
	// masters spread: no node masters everything
	byNode := map[string]int{}
	for _, id := range masters {
		byNode[id]++
	}
	if len(byNode) < 2 {
		t.Fatalf("all masters on one node: %v", byNode)
	}
}
