package espresso

import (
	"errors"
	"net/http"
	"testing"
)

func TestConditionalDelete(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	key := DocKey{Table: "Artist", Parts: []string{"Cond"}}
	row, err := n.Put(key, map[string]any{"name": "Cond", "genre": "g"}, "")
	if err != nil {
		t.Fatal(err)
	}
	// stale etag rejected, document survives
	if err := n.Delete(key, "stale"); !errors.Is(err, ErrEtagMismatch) {
		t.Fatalf("stale delete err = %v", err)
	}
	if _, err := n.Get(key); err != nil {
		t.Fatal("document vanished after rejected delete")
	}
	// matching etag deletes
	if err := n.Delete(key, row.Etag); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get(key); !errors.Is(err, ErrNoSuchDocument) {
		t.Fatalf("get after conditional delete err = %v", err)
	}
}

func TestHTTPConditionalDelete(t *testing.T) {
	_, srv := newHTTPRig(t)
	url := srv.URL + "/Music/Artist/CondHTTP"
	resp, _ := doReq(t, http.MethodPut, url, map[string]any{"name": "CondHTTP", "genre": "g"}, nil)
	etag := resp.Header.Get("ETag")

	resp, _ = doReq(t, http.MethodDelete, url, nil, map[string]string{"If-Match": "bogus"})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale If-Match DELETE: %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodDelete, url, nil, map[string]string{"If-Match": etag})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid If-Match DELETE: %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, url, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after conditional delete: %d", resp.StatusCode)
	}
}

func TestTxnWithIfMatchPrecondition(t *testing.T) {
	db := musicDB(t, 4, 1)
	n := soloNode(t, db)
	key := DocKey{Table: "Artist", Parts: []string{"TxnCond"}}
	row, err := n.Put(key, map[string]any{"name": "TxnCond", "genre": "g"}, "")
	if err != nil {
		t.Fatal(err)
	}
	// a transaction whose precondition fails applies nothing
	writes := []Write{
		{Key: key, Doc: map[string]any{"name": "TxnCond", "genre": "updated"}, IfMatch: "wrong"},
		{Key: DocKey{Table: "Album", Parts: []string{"TxnCond", "A1"}},
			Doc: map[string]any{"artist": "TxnCond", "title": "A1", "year": int64(2000)}},
	}
	if _, err := n.Commit(writes); !errors.Is(err, ErrEtagMismatch) {
		t.Fatalf("txn with bad precondition err = %v", err)
	}
	if _, err := n.Get(DocKey{Table: "Album", Parts: []string{"TxnCond", "A1"}}); !errors.Is(err, ErrNoSuchDocument) {
		t.Fatal("failed txn leaked a row")
	}
	// with the right etag, both rows commit
	writes[0].IfMatch = row.Etag
	if _, err := n.Commit(writes); err != nil {
		t.Fatal(err)
	}
	got, _ := n.Get(key)
	doc, _ := n.Document(got)
	if doc["genre"] != "updated" {
		t.Fatalf("doc = %v", doc)
	}
}
