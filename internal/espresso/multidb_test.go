package espresso

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"datainfra/internal/schema"
)

// TestHandlerServesMultipleDatabases: one router tier fronting two
// independent Espresso databases, each with its own cluster, relay and
// Helix domain.
func TestHandlerServesMultipleDatabases(t *testing.T) {
	music := newTestCluster(t, 4, 2, 2)

	members, err := NewDatabase(
		DatabaseSchema{Name: "Members", NumPartitions: 2, Replicas: 1},
		[]*TableSchema{{Name: "Profile", KeyParts: []string{"member"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := members.SetDocumentSchema("Profile", schema.MustParse(`{
		"name":"Profile","fields":[{"name":"name","type":"string"}]}`)); err != nil {
		t.Fatal(err)
	}
	mcluster, err := NewCluster(members)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mcluster.Close)
	if _, err := mcluster.AddNode("m0"); err != nil {
		t.Fatal(err)
	}
	if err := mcluster.WaitForMasters(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewHandler(music, mcluster))
	t.Cleanup(srv.Close)

	// writes to both databases through one router
	resp, body := doReq(t, http.MethodPut, srv.URL+"/Music/Artist/Adele",
		map[string]any{"name": "Adele", "genre": "pop"}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Music PUT: %d %s", resp.StatusCode, body)
	}
	resp, body = doReq(t, http.MethodPut, srv.URL+"/Members/Profile/adele",
		map[string]any{"name": "Adele L."}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Members PUT: %d %s", resp.StatusCode, body)
	}
	// isolation: Members has no Artist table
	resp, _ = doReq(t, http.MethodGet, srv.URL+"/Members/Artist/Adele", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-db table leak: %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, srv.URL+"/Music/Artist/Adele", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Music GET: %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, srv.URL+"/Members/Profile/adele", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Members GET: %d", resp.StatusCode)
	}
}
