package espresso

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newHTTPRig(t *testing.T) (*Cluster, *httptest.Server) {
	t.Helper()
	c := newTestCluster(t, 4, 2, 2)
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return c, srv
}

func doReq(t *testing.T, method, url string, body any, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHTTPPutGetDelete(t *testing.T) {
	_, srv := newHTTPRig(t)
	url := srv.URL + "/Music/Album/Cher/Greatest_Hits"
	resp, _ := doReq(t, http.MethodPut, url,
		map[string]any{"artist": "Cher", "title": "Greatest Hits", "year": 1999}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on PUT")
	}
	resp, body := doReq(t, http.MethodGet, url, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d: %s", resp.StatusCode, body)
	}
	var d docResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Doc["title"] != "Greatest Hits" || d.Etag != etag {
		t.Fatalf("doc = %+v", d)
	}
	if d.URI != "/Music/Album/Cher/Greatest_Hits" {
		t.Fatalf("URI = %s", d.URI)
	}
	// conditional GET: 304
	resp, _ = doReq(t, http.MethodGet, url, nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status %d", resp.StatusCode)
	}
	// DELETE then 404
	resp, _ = doReq(t, http.MethodDelete, url, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, url, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete status %d", resp.StatusCode)
	}
}

func TestHTTPConditionalPut(t *testing.T) {
	_, srv := newHTTPRig(t)
	url := srv.URL + "/Music/Artist/Akon"
	resp, _ := doReq(t, http.MethodPut, url, map[string]any{"name": "Akon", "genre": "r&b"}, nil)
	etag := resp.Header.Get("ETag")
	// stale etag -> 412
	resp, _ = doReq(t, http.MethodPut, url, map[string]any{"name": "Akon", "genre": "pop"},
		map[string]string{"If-Match": "bogus"})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale If-Match status %d", resp.StatusCode)
	}
	// fresh etag -> 200
	resp, _ = doReq(t, http.MethodPut, url, map[string]any{"name": "Akon", "genre": "pop"},
		map[string]string{"If-Match": etag})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid If-Match status %d", resp.StatusCode)
	}
}

func TestHTTPSecondaryIndexQuery(t *testing.T) {
	_, srv := newHTTPRig(t)
	songs := map[string]string{
		"Sgt_Pepper/Lucy_in_the_Sky":  "Lucy in the sky with diamonds",
		"Magical_Mystery_Tour/Walrus": "see how they run, Lucy in the sky watching",
		"Abbey_Road/Sun":              "here comes the sun",
	}
	for path, lyrics := range songs {
		url := srv.URL + "/Music/Song/The_Beatles/" + path
		resp, body := doReq(t, http.MethodPut, url,
			map[string]any{"title": path, "lyrics": lyrics, "durationSec": 200}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %s: %d %s", path, resp.StatusCode, body)
		}
	}
	// the paper's query: /Music/Song/The_Beatles?query=lyrics:"Lucy in the sky"
	url := srv.URL + `/Music/Song/The_Beatles?query=` + strings.ReplaceAll(`lyrics:"Lucy in the sky"`, " ", "%20")
	resp, body := doReq(t, http.MethodGet, url, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var results []docResponse
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("query returned %d docs: %s", len(results), body)
	}
	for _, d := range results {
		if !strings.Contains(d.URI, "/Music/Song/The_Beatles/") {
			t.Fatalf("URI = %s", d.URI)
		}
	}
}

func TestHTTPCollectionListing(t *testing.T) {
	_, srv := newHTTPRig(t)
	for i := 0; i < 3; i++ {
		url := fmt.Sprintf("%s/Music/Album/Babyface/Album_%d", srv.URL, i)
		doReq(t, http.MethodPut, url, map[string]any{"artist": "Babyface", "title": fmt.Sprintf("Album %d", i), "year": 1990 + i}, nil)
	}
	resp, body := doReq(t, http.MethodGet, srv.URL+"/Music/Album/Babyface", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("collection GET %d: %s", resp.StatusCode, body)
	}
	var results []docResponse
	json.Unmarshal(body, &results)
	if len(results) != 3 {
		t.Fatalf("collection size %d", len(results))
	}
}

func TestHTTPTransaction(t *testing.T) {
	_, srv := newHTTPRig(t)
	items := []TxnItem{
		{Table: "Album", Parts: []string{"Elton_John", "Honky"}, Doc: map[string]any{"artist": "Elton John", "title": "Honky", "year": 1973}},
		{Table: "Song", Parts: []string{"Elton_John", "Honky", "Saturday"}, Doc: map[string]any{"title": "Saturday", "lyrics": "la la", "durationSec": 200}},
	}
	resp, body := doReq(t, http.MethodPost, srv.URL+"/Music/*/Elton_John", items, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("txn status %d: %s", resp.StatusCode, body)
	}
	resp, _ = doReq(t, http.MethodGet, srv.URL+"/Music/Song/Elton_John/Honky/Saturday", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("txn row missing: %d", resp.StatusCode)
	}
	// mixed resource ids rejected, nothing applied
	bad := []TxnItem{
		{Table: "Artist", Parts: []string{"Elton_John"}, Doc: map[string]any{"name": "EJ", "genre": "rock"}},
		{Table: "Artist", Parts: []string{"Cher"}, Doc: map[string]any{"name": "Cher", "genre": "pop"}},
	}
	resp, _ = doReq(t, http.MethodPost, srv.URL+"/Music/*/Elton_John", bad, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed txn status %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, srv.URL+"/Music/Artist/Elton_John", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected txn leaked a row: %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newHTTPRig(t)
	cases := []struct {
		method, path string
		status       int
	}{
		{http.MethodGet, "/NoDB/Table/x", http.StatusNotFound},
		{http.MethodGet, "/Music/NoTable/x", http.StatusNotFound},
		{http.MethodGet, "/Music", http.StatusBadRequest},
		{http.MethodPatch, "/Music/Artist/x", http.StatusMethodNotAllowed},
		{http.MethodGet, "/Music/Album/Nobody/Nothing", http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, _ := doReq(t, tc.method, srv.URL+tc.path, nil, nil)
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
	}
	// invalid JSON body
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/Music/Artist/x", strings.NewReader("not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}
}
