package espresso

import (
	"fmt"
	"sync"
	"time"

	"datainfra/internal/bootstrap"
	"datainfra/internal/databus"
	"datainfra/internal/helix"
	"datainfra/internal/zk"
)

// Cluster assembles the four Espresso components of Figure IV.1 — routers,
// storage nodes, (Databus) relays and the cluster manager — around one
// database. The binlog of every master partition flows into the Databus
// relay; slaves subscribe per-partition; Helix drives mastership; a
// bootstrap server covers slaves that fall off the relay buffer.
type Cluster struct {
	DB     *Database
	Binlog *databus.LogSource
	Relay  *databus.Relay
	Boot   *bootstrap.Server
	ZK     *zk.Server

	controller *helix.Controller
	spectator  *helix.Spectator
	bootClient *databus.Client
	cacheBytes int64

	mu      sync.Mutex
	members map[string]*Member
	closed  bool
}

// Member is one storage node plus its Helix participant and its per-partition
// slave subscriptions.
type Member struct {
	Node        *Node
	cluster     *Cluster
	participant *helix.Participant

	mu   sync.Mutex
	subs map[int]*databus.Client
}

// helixCluster names the helix-managed cluster for a database.
func helixCluster(db string) string { return "espresso-" + db }

// NewCluster wires the shared substrate (binlog, relay, bootstrap server,
// zookeeper, controller) for db.
func NewCluster(db *Database) (*Cluster, error) {
	c := &Cluster{
		DB:      db,
		Binlog:  databus.NewLogSource(),
		Relay:   databus.NewRelay(databus.RelayConfig{}),
		Boot:    bootstrap.New(),
		ZK:      zk.NewServer(),
		members: map[string]*Member{},
	}
	c.Relay.AttachSource(c.Binlog, time.Millisecond)

	// The bootstrap server is itself a Databus client of the relay.
	bc, err := databus.NewClient(databus.ClientConfig{
		Relay:      c.Relay,
		Consumer:   c.Boot,
		PollExpiry: 5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	c.bootClient = bc
	bc.Start()

	ctrl, err := helix.NewController(c.ZK, helixCluster(db.Schema.Name))
	if err != nil {
		return nil, err
	}
	c.controller = ctrl
	if err := ctrl.AddResource(&helix.Resource{
		Name:          db.Schema.Name,
		NumPartitions: db.Schema.NumPartitions,
		Replicas:      db.Schema.Replicas,
	}); err != nil {
		return nil, err
	}
	ctrl.Start()
	c.spectator = helix.NewSpectator(c.ZK, helixCluster(db.Schema.Name))
	return c, nil
}

// EnableDocCache gives every node added after this call a document read
// cache of maxBytes (see Node.EnableDocCache). Chainable; ≤0 is a no-op.
func (c *Cluster) EnableDocCache(maxBytes int64) *Cluster {
	c.mu.Lock()
	c.cacheBytes = maxBytes
	c.mu.Unlock()
	return c
}

// AddNode creates a storage node, registers it as a Helix participant and
// returns the member. Helix will assign it partitions (slaving first, then
// mastering), which is also how elastic expansion works (§IV.B).
func (c *Cluster) AddNode(id string) (*Member, error) {
	c.mu.Lock()
	if _, dup := c.members[id]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("espresso: duplicate node %q", id)
	}
	cacheBytes := c.cacheBytes
	c.mu.Unlock()
	m := &Member{
		Node:    NewNode(id, c.DB, c.Binlog).EnableDocCache(cacheBytes),
		cluster: c,
		subs:    map[int]*databus.Client{},
	}
	p, err := helix.NewParticipant(c.ZK, helixCluster(c.DB.Schema.Name), id, helix.StateModelFunc(m.applyTransition))
	if err != nil {
		return nil, err
	}
	m.participant = p
	c.mu.Lock()
	c.members[id] = m
	c.mu.Unlock()
	return m, nil
}

// Member returns a registered member by id.
func (c *Cluster) Member(id string) (*Member, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	return m, ok
}

// KillNode simulates a node failure: its Helix ephemeral disappears and the
// controller fails its partitions over to slaves.
func (c *Cluster) KillNode(id string) error {
	c.mu.Lock()
	m, ok := c.members[id]
	delete(c.members, id)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("espresso: unknown node %q", id)
	}
	m.shutdown()
	return nil
}

// MasterOf returns the member currently mastering partition p.
func (c *Cluster) MasterOf(p int) (*Member, error) {
	inst, err := c.spectator.MasterOf(c.DB.Schema.Name, p)
	if err != nil {
		return nil, err
	}
	m, ok := c.Member(inst)
	if !ok {
		return nil, fmt.Errorf("espresso: master %q not found", inst)
	}
	return m, nil
}

// Route returns the node to contact for resourceID — what the router tier
// does per request (§IV.B Router).
func (c *Cluster) Route(resourceID string) (*Node, error) {
	m, err := c.MasterOf(c.DB.PartitionOf(resourceID))
	if err != nil {
		return nil, err
	}
	return m.Node, nil
}

// WaitForMasters blocks until every partition has a live master (cluster
// convergence), or the timeout expires.
func (c *Cluster) WaitForMasters(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for p := 0; p < c.DB.Schema.NumPartitions; p++ {
			m, err := c.MasterOf(p)
			if err != nil || !m.Node.IsMaster(p) {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("espresso: cluster did not converge within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops everything.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	members := make([]*Member, 0, len(c.members))
	for _, m := range c.members {
		members = append(members, m)
	}
	c.members = map[string]*Member{}
	c.mu.Unlock()
	for _, m := range members {
		m.shutdown()
	}
	c.spectator.Close()
	c.controller.Close()
	c.bootClient.Close()
	c.Relay.Close()
}

// applyTransition is the Helix state model (§IV.B): OFFLINE→SLAVE subscribes
// the partition to the relay stream; SLAVE→MASTER first consumes all
// outstanding changes from the relay and only then accepts writes;
// MASTER→SLAVE re-subscribes; SLAVE→OFFLINE drops the subscription.
func (m *Member) applyTransition(t helix.Transition) error {
	p := t.Partition
	switch {
	case t.From == helix.StateOffline && t.To == helix.StateSlave:
		return m.startSlave(p)
	case t.From == helix.StateSlave && t.To == helix.StateMaster:
		if err := m.catchUp(p); err != nil {
			return err
		}
		m.stopSlave(p)
		m.Node.SetRole(p, true)
		return nil
	case t.From == helix.StateMaster && t.To == helix.StateSlave:
		m.Node.SetRole(p, false)
		return m.startSlave(p)
	case t.From == helix.StateSlave && t.To == helix.StateOffline:
		m.stopSlave(p)
		return nil
	}
	return nil
}

// startSlave subscribes partition p to the relay (bootstrap-backed).
func (m *Member) startSlave(p int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, running := m.subs[p]; running {
		return nil
	}
	m.Node.SetRole(p, false)
	client, err := databus.NewClient(databus.ClientConfig{
		Relay:     m.cluster.Relay,
		Bootstrap: m.cluster.Boot,
		Filter:    &databus.Filter{Partitions: []int{p}},
		FromSCN:   m.Node.AppliedSCN(p),
		Consumer: databus.ConsumerFuncs{
			Event: m.Node.ApplyReplicated,
		},
		PollExpiry: 5 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	m.subs[p] = client
	client.Start()
	return nil
}

func (m *Member) stopSlave(p int) {
	m.mu.Lock()
	client, ok := m.subs[p]
	delete(m.subs, p)
	m.mu.Unlock()
	if ok {
		client.Close()
	}
}

// catchUp synchronously drains the relay for partition p ("the slave
// partition first consumes all outstanding changes ... and then becomes a
// master partition").
func (m *Member) catchUp(p int) error {
	filter := &databus.Filter{Partitions: []int{p}}
	since := m.Node.AppliedSCN(p)
	deadline := time.Now().Add(5 * time.Second)
	for {
		events, err := m.cluster.Relay.Read(since, 1024, filter)
		if err != nil {
			// Fallen off the buffer: catch up through the bootstrap server.
			var bErr error
			since, bErr = m.cluster.Boot.Catchup(since, filter, m.Node.ApplyReplicated)
			if bErr != nil {
				return bErr
			}
			continue
		}
		if len(events) == 0 {
			// Nothing pending for this partition up to the relay's head —
			// but make sure the relay itself has pulled the binlog tail
			// before declaring the slave caught up.
			if m.cluster.Relay.LastSCN() >= m.cluster.Binlog.LastSCN() {
				return nil
			}
		}
		for _, e := range events {
			if err := m.Node.ApplyReplicated(e); err != nil {
				return err
			}
			since = e.SCN
		}
		if len(events) == 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("espresso: catch-up of partition %d timed out", p)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// shutdown stops the participant (dropping the ephemeral) and all
// subscriptions.
func (m *Member) shutdown() {
	m.participant.Close()
	m.mu.Lock()
	subs := make([]*databus.Client, 0, len(m.subs))
	for _, c := range m.subs {
		subs = append(subs, c)
	}
	m.subs = map[int]*databus.Client{}
	m.mu.Unlock()
	for _, c := range subs {
		c.Close()
	}
}
