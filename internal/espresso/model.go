// Package espresso implements the distributed, timeline-consistent document
// store of §IV: hierarchical documents addressed by
// /<database>/<table>/<resource_id>[/<subresource_id>...], Avro-style
// document schemas with index annotations, local secondary indexing, local
// transactions across tables sharing a resource_id, master/slave partitions
// managed by Helix, and internal replication through Databus — which also
// gives downstream consumers a change-capture stream for free.
//
// Observability: router requests, storage-node document ops, commit latency
// and the SCN positions of replication and the global index are exported
// through internal/metrics (names under espresso_*, catalogued in
// OPERATIONS.md). The HTTP surfaces propagate X-Datainfra-Trace IDs
// (internal/trace) end to end: Handler echoes and records them, HTTPClient
// mints them at the client edge.
package espresso

import (
	"errors"
	"fmt"
	"strings"

	"datainfra/internal/ring"
	"datainfra/internal/schema"
)

// Errors.
var (
	ErrNoSuchDatabase = errors.New("espresso: no such database")
	ErrNoSuchTable    = errors.New("espresso: no such table")
	ErrNoSuchDocument = errors.New("espresso: no such document")
	ErrBadURI         = errors.New("espresso: malformed URI")
	ErrKeyArity       = errors.New("espresso: wrong number of key parts for table")
	ErrEtagMismatch   = errors.New("espresso: etag precondition failed")
	ErrNotMaster      = errors.New("espresso: node is not master for partition")
	ErrTxnMixedKeys   = errors.New("espresso: transaction spans multiple resource ids")
)

// DatabaseSchema defines a database: its partitioning and replication
// (§IV.A "a database schema defines how the database is partitioned").
type DatabaseSchema struct {
	Name          string `json:"name"`
	NumPartitions int    `json:"numPartitions"`
	Replicas      int    `json:"replicas"`
	// Unpartitioned stores all documents on all nodes (the only other
	// supported strategy in the paper).
	Unpartitioned bool `json:"unpartitioned,omitempty"`
}

// TableSchema defines how documents in a table are referenced: the
// resource_id plus the named subresource levels. KeyDepth 1 means singleton
// documents per resource; more levels address documents within collections
// (Album: artist/album; Song: artist/album/song).
type TableSchema struct {
	Name     string   `json:"name"`
	KeyParts []string `json:"keyParts"` // e.g. ["artist","album","song"]
}

// KeyDepth returns the number of path elements addressing one document.
func (t *TableSchema) KeyDepth() int { return len(t.KeyParts) }

// Database bundles the database schema, its tables and the versioned
// document schemas.
type Database struct {
	Schema   DatabaseSchema
	Tables   map[string]*TableSchema
	Registry *schema.Registry // subject = "<db>.<table>"
}

// NewDatabase assembles and validates a database definition.
func NewDatabase(ds DatabaseSchema, tables []*TableSchema) (*Database, error) {
	if ds.Name == "" {
		return nil, fmt.Errorf("espresso: database without name")
	}
	if ds.NumPartitions <= 0 {
		return nil, fmt.Errorf("espresso: database %q: numPartitions %d", ds.Name, ds.NumPartitions)
	}
	if ds.Replicas <= 0 {
		ds.Replicas = 1
	}
	db := &Database{Schema: ds, Tables: map[string]*TableSchema{}, Registry: schema.NewRegistry()}
	for _, t := range tables {
		if t.Name == "" || len(t.KeyParts) == 0 {
			return nil, fmt.Errorf("espresso: table %q invalid", t.Name)
		}
		if _, dup := db.Tables[t.Name]; dup {
			return nil, fmt.Errorf("espresso: duplicate table %q", t.Name)
		}
		db.Tables[t.Name] = t
	}
	return db, nil
}

// SetDocumentSchema registers (or evolves) the document schema for table.
// Evolution must satisfy the Avro resolution rules (enforced by the
// registry).
func (db *Database) SetDocumentSchema(table string, rec *schema.Record) (int, error) {
	if _, ok := db.Tables[table]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	return db.Registry.Register(db.Schema.Name+"."+table, rec)
}

// DocumentSchema returns the latest document schema and version for table.
func (db *Database) DocumentSchema(table string) (*schema.Record, int, error) {
	return db.Registry.Latest(db.Schema.Name + "." + table)
}

// PartitionOf applies the database's partitioning function to a resource id.
func (db *Database) PartitionOf(resourceID string) int {
	if db.Schema.Unpartitioned {
		return 0
	}
	return ring.Hash([]byte(resourceID), db.Schema.NumPartitions)
}

// DocKey identifies one document.
type DocKey struct {
	Table string
	// Parts holds resource_id followed by subresource ids; its length must
	// equal the table's KeyDepth.
	Parts []string
}

// ResourceID returns the partitioning component of the key.
func (k DocKey) ResourceID() string { return k.Parts[0] }

// String renders "/table/part0/part1/...".
func (k DocKey) String() string { return "/" + k.Table + "/" + strings.Join(k.Parts, "/") }

// rowID is the storage key within a partition: unit-separated so ids cannot
// collide across tables or key parts.
func (k DocKey) rowID() string { return k.Table + "\x1f" + strings.Join(k.Parts, "\x1f") }

// ParseURI splits "/<database>/<table>/<resource>[/<sub>...]" into database
// and key. A table of "*" (transactions) yields Table "*" and raw parts.
func ParseURI(uri string) (database string, key DocKey, err error) {
	trimmed := strings.TrimPrefix(uri, "/")
	parts := strings.Split(trimmed, "/")
	if len(parts) < 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return "", DocKey{}, fmt.Errorf("%w: %q", ErrBadURI, uri)
	}
	return parts[0], DocKey{Table: parts[1], Parts: parts[2:]}, nil
}

// validateKey checks arity against the table schema.
func (db *Database) validateKey(key DocKey) (*TableSchema, error) {
	ts, ok := db.Tables[key.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, key.Table)
	}
	if len(key.Parts) != ts.KeyDepth() {
		return nil, fmt.Errorf("%w: table %s wants %d parts, got %d (%v)",
			ErrKeyArity, key.Table, ts.KeyDepth(), len(key.Parts), key.Parts)
	}
	for _, p := range key.Parts {
		if p == "" {
			return nil, fmt.Errorf("%w: empty key part", ErrBadURI)
		}
	}
	return ts, nil
}

// collectionPrefix is the rowID prefix addressing every document under a
// resource_id in a table (for collection queries).
func collectionPrefix(table, resourceID string) string {
	return table + "\x1f" + resourceID + "\x1f"
}

// Row is the stored form of a document — exactly the Table IV.1 layout: the
// key columns, timestamp, etag, val blob and schema_version.
type Row struct {
	Key           DocKey `json:"key"`
	Timestamp     int64  `json:"timestamp"`
	Etag          string `json:"etag"`
	Val           []byte `json:"val"` // schema-serialized document
	SchemaVersion int    `json:"schema_version"`
}

// TableIV1Columns documents the physical layout (golden-tested against the
// paper's Table IV.1).
var TableIV1Columns = []string{
	"<key columns from table schema>", // artist, album, song in the example
	"timestamp bigint(20)",
	"etag varchar(10)",
	"val blob",
	"schema_version smallint(6)",
}
