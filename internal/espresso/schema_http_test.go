package espresso

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestSchemaURIGetAndEvolve(t *testing.T) {
	_, srv := newHTTPRig(t)

	// GET the current Album schema
	resp, body := doReq(t, http.MethodGet, srv.URL+"/Music/_schema/Album", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET schema: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Espresso-Schema-Version") != "1" {
		t.Fatalf("version header = %q", resp.Header.Get("X-Espresso-Schema-Version"))
	}
	if !strings.Contains(string(body), `"artist"`) {
		t.Fatalf("schema body = %s", body)
	}

	// Write a v1 document first.
	doReq(t, http.MethodPut, srv.URL+"/Music/Album/Cher/Greatest_Hits",
		map[string]any{"artist": "Cher", "title": "Greatest Hits", "year": 1999}, nil)

	// POST a compatible evolution to the schema URI (§IV.A).
	evolved := `{"name":"Album","fields":[
		{"name":"artist","type":"string","index":"exact"},
		{"name":"title","type":"string"},
		{"name":"year","type":"long"},
		{"name":"label","type":"string","default":"unknown"}]}`
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/Music/_schema/Album", bytes.NewReader([]byte(evolved)))
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if raw.StatusCode != http.StatusOK {
		t.Fatalf("POST schema: %d", raw.StatusCode)
	}
	var out map[string]int
	json.NewDecoder(raw.Body).Decode(&out)
	if out["version"] != 2 {
		t.Fatalf("new version = %d", out["version"])
	}

	// Old documents now read with the default filled in.
	resp, body = doReq(t, http.MethodGet, srv.URL+"/Music/Album/Cher/Greatest_Hits", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET doc after evolution: %d", resp.StatusCode)
	}
	var d docResponse
	json.Unmarshal(body, &d)
	if d.Doc["label"] != "unknown" || d.SchemaVersion != 1 {
		t.Fatalf("evolved read = %+v", d)
	}
}

func TestSchemaURIRejectsIncompatible(t *testing.T) {
	_, srv := newHTTPRig(t)
	bad := `{"name":"Album","fields":[{"name":"artist","type":"long"}]}`
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/Music/_schema/Album", bytes.NewReader([]byte(bad)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("incompatible POST: %d, want 409", resp.StatusCode)
	}
}

func TestSchemaURIErrors(t *testing.T) {
	_, srv := newHTTPRig(t)
	// unknown table
	resp, _ := doReq(t, http.MethodGet, srv.URL+"/Music/_schema/Nope", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table: %d", resp.StatusCode)
	}
	// malformed schema body
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/Music/_schema/Album", strings.NewReader("not json"))
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", raw.StatusCode)
	}
	// wrong arity
	resp, _ = doReq(t, http.MethodGet, srv.URL+"/Music/_schema/Album/extra", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("deep schema URI: %d", resp.StatusCode)
	}
	// method not allowed
	resp, _ = doReq(t, http.MethodDelete, srv.URL+"/Music/_schema/Album", nil, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE schema: %d", resp.StatusCode)
	}
}
